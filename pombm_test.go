package pombm_test

import (
	"math"
	"testing"

	"github.com/pombm/pombm"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200))
	env, err := pombm.NewEnv(region, 16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := pombm.SyntheticInstance(pombm.SyntheticParams{
		NumTasks: 60, NumWorkers: 90, Mu: 100, Sigma: 20,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	pombm.ShuffleTasks(inst, 8)
	for _, alg := range []pombm.Algorithm{pombm.AlgTBF, pombm.AlgLapGR, pombm.AlgLapHG} {
		res, err := pombm.Run(alg, env, inst, pombm.Options{Epsilon: 0.6}, 42)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Matched != 60 || res.TotalDistance <= 0 {
			t.Errorf("%s: matched=%d distance=%v", alg, res.Matched, res.TotalDistance)
		}
	}
	reaches := pombm.UniformReaches(len(inst.Workers), 15, 25, 9)
	for _, alg := range []pombm.Algorithm{pombm.AlgTBF, pombm.AlgProb} {
		res, err := pombm.RunSize(alg, env, inst, reaches, pombm.Options{Epsilon: 0.6}, 43)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.MatchingSize <= 0 {
			t.Errorf("%s: matching size %d", alg, res.MatchingSize)
		}
	}
}

func TestFacadeHSTAndMechanism(t *testing.T) {
	pts := []pombm.Point{pombm.Pt(1, 1), pombm.Pt(2, 3), pombm.Pt(5, 3), pombm.Pt(4, 4)}
	tree, err := pombm.BuildHSTWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 4 || tree.Degree() != 2 {
		t.Fatalf("D=%d c=%d", tree.Depth(), tree.Degree())
	}
	mech, err := pombm.NewHSTMechanism(tree, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rep := pombm.VerifyHSTGeoI(mech, 1e-9)
	if !rep.Satisfied() {
		t.Errorf("Geo-I audit failed: %v", rep)
	}
	if d := pombm.LevelDist(3); d != 28 {
		t.Errorf("LevelDist(3) = %v", d)
	}
	lap, err := pombm.NewPlanarLaplace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lap.Epsilon() != 0.5 {
		t.Error("laplace epsilon lost")
	}
}

func TestFacadeMatching(t *testing.T) {
	cost := [][]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}
	_, total, err := pombm.Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-5) > 1e-9 {
		t.Errorf("Hungarian total = %v", total)
	}
	_, opt, err := pombm.OptimalMatching(2, 3, func(t_, w int) float64 {
		return math.Abs(float64(t_*10) - float64(w*9))
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt < 0 {
		t.Errorf("optimal = %v", opt)
	}
	if pombm.NoWorker != -1 {
		t.Error("NoWorker drifted")
	}
}

func TestFacadeChengdu(t *testing.T) {
	inst, err := pombm.ChengduInstance(1, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Tasks) < 4245 || len(inst.Tasks) > 5034 {
		t.Errorf("day-1 tasks = %d", len(inst.Tasks))
	}
	if len(inst.Workers) != 500 {
		t.Errorf("workers = %d", len(inst.Workers))
	}
	if _, err := pombm.ChengduInstance(99, 10, 1); err == nil {
		t.Error("invalid day accepted")
	}
}

func TestFacadeSpatialIndexes(t *testing.T) {
	pts := []pombm.Point{pombm.Pt(0, 0), pombm.Pt(10, 10), pombm.Pt(20, 0)}
	kd := pombm.NewKDTree(pts)
	i, d := kd.Nearest(pombm.Pt(9, 9))
	if i != 1 || d > 2 {
		t.Errorf("Nearest = (%d, %v)", i, d)
	}
	g, err := pombm.NewGrid(pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(10, 10)), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Errorf("grid len = %d", g.Len())
	}
}
