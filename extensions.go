package pombm

import (
	"io"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/roadnet"
	"github.com/pombm/pombm/internal/workload"
)

// Extensions beyond the paper's evaluation: road-network metrics, the
// Bansal et al. chain matcher, differentially private density analytics,
// budget accounting, and workload file I/O.

// Road networks.
type (
	// RoadGraph is a weighted undirected road network.
	RoadGraph = roadnet.Graph
	// RoadMetric is a dense network-distance table over selected nodes.
	RoadMetric = roadnet.Metric
)

// NewRoadGraph returns an empty road network.
func NewRoadGraph() *RoadGraph { return roadnet.NewGraph() }

// ManhattanNetwork generates a grid road network over a region with
// per-segment congestion factors in [1, 1+congestion] and a blockFrac
// fraction of segments removed while keeping the network connected.
func ManhattanNetwork(region Rect, cols, rows int, congestion, blockFrac float64, seed uint64) (*RoadGraph, error) {
	return roadnet.Manhattan(region, cols, rows, congestion, blockFrac, rng.New(seed))
}

// BuildHSTOverMetric constructs an HST over an arbitrary finite metric
// (e.g. a RoadMetric's Dist): Alg. 1 consumes only pairwise distances.
func BuildHSTOverMetric(n int, dist func(i, j int) float64, seed uint64) (*HST, error) {
	return hst.BuildMetric(n, dist, rng.New(seed))
}

// HSTChain is the randomized chain matcher of Bansal et al. (reference
// [19] of the paper), an alternative to HST-Greedy with better worst-case
// guarantees on trees.
type HSTChain = match.HSTChain

// NewHSTChain returns the chain matcher over reported worker leaves.
func NewHSTChain(tree *HST, workers []Code) (*HSTChain, error) {
	return match.NewHSTChain(tree, workers)
}

// HSTGreedyCapacitated is HST-Greedy with per-worker task capacities
// (couriers batching several orders); capacity 1 recovers Alg. 4.
type HSTGreedyCapacitated = match.HSTGreedyCapacitated

// NewHSTGreedyCapacitated builds the capacitated matcher.
func NewHSTGreedyCapacitated(tree *HST, workers []Code, capacity []int) (*HSTGreedyCapacitated, error) {
	return match.NewHSTGreedyCapacitated(tree, workers, capacity)
}

// OptimalCapacitated computes the offline minimum-cost assignment under
// per-worker capacities via min-cost max-flow.
func OptimalCapacitated(nTasks int, capacity []int, dist func(task, worker int) float64) ([]int, float64, error) {
	return match.OptimalCapacitated(nTasks, capacity, dist)
}

// EuclideanGreedyIndexed answers Euclidean-greedy queries through a
// bucketed dynamic nearest-neighbour index; identical assignments to
// EuclideanGreedy at a fraction of the cost.
type EuclideanGreedyIndexed = match.EuclideanGreedyIndexed

// NewEuclideanGreedyIndexed builds the indexed Euclidean matcher.
func NewEuclideanGreedyIndexed(region Rect, workers []Point) (*EuclideanGreedyIndexed, error) {
	return match.NewEuclideanGreedyIndexed(region, workers)
}

// NoisyQuadtree is an ε-differentially-private spatial decomposition
// (Cormode et al. ICDE'12 / To et al. PVLDB'14): Laplace-noised counts
// over a fixed-depth quadtree, for aggregate density analytics that
// complement the per-location protection of the HST mechanism.
type NoisyQuadtree = privacy.NoisyQuadtree

// NewNoisyQuadtree builds the decomposition over the points with total
// budget eps split geometrically across depth+1 levels.
func NewNoisyQuadtree(region Rect, points []Point, eps float64, depth int, seed uint64) (*NoisyQuadtree, error) {
	return privacy.NewNoisyQuadtree(region, points, eps, depth, rng.New(seed))
}

// Accountant tracks per-agent Geo-I budget under sequential composition.
type Accountant = privacy.Accountant

// NewAccountant returns an accountant enforcing a lifetime ε budget per
// agent id.
func NewAccountant(limit float64) (*Accountant, error) {
	return privacy.NewAccountant(limit)
}

// ReadInstanceCSV parses a workload from "kind,x,y" CSV (tasks in arrival
// order), as produced by WriteInstanceCSV and cmd/pombm-gen.
func ReadInstanceCSV(r io.Reader) (*Instance, error) {
	return workload.ReadCSV(r)
}

// WriteInstanceCSV serialises a workload instance.
func WriteInstanceCSV(w io.Writer, in *Instance) error {
	return in.WriteCSV(w)
}
