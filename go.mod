module github.com/pombm/pombm

go 1.24
