// Package pombm is a Go implementation of privacy-preserving online task
// assignment for spatial crowdsourcing, reproducing "Differentially Private
// Online Task Assignment in Spatial Crowdsourcing: A Tree-based Approach"
// (Tao, Tong, Zhou, Shi, Chen, Xu — ICDE 2020).
//
// The library provides:
//
//   - Hierarchically Well-Separated Trees (HSTs) built over a published set
//     of predefined points (Alg. 1), with O(D) leaf-code operations.
//   - The paper's ε-Geo-Indistinguishable privacy mechanism on HST leaves,
//     with the O(D) random-walk sampler (Algs. 2–3).
//   - Online matchers: HST-Greedy (Alg. 4, scan and trie-indexed forms),
//     Euclidean greedy, offline-optimal solvers (Hungarian, min-cost flow),
//     and the matching-size matchers of the paper's case study.
//   - Baseline mechanisms (planar Laplace of Andrés et al., grid
//     exponential), ready-made pipelines (TBF, Lap-GR, Lap-HG, Prob),
//     workload generators, the full experiment harness for every figure in
//     the paper, and a client/server platform with HTTP transport where
//     obfuscation happens on the agents' side.
//
// This file is the public facade: the implementation lives in internal/
// packages and is re-exported here through type aliases, so downstream
// users import only this package (plus its documented method sets).
//
// Quick start:
//
//	env, _ := pombm.NewEnv(pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200)), 32, 32, 1)
//	inst, _ := pombm.SyntheticInstance(pombm.SyntheticParams{
//		NumTasks: 100, NumWorkers: 150, Mu: 100, Sigma: 20,
//	}, 7)
//	res, _ := pombm.Run(pombm.AlgTBF, env, inst, pombm.Options{Epsilon: 0.6}, 42)
//	fmt.Println(res.TotalDistance)
package pombm

import (
	"github.com/pombm/pombm/internal/core"
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// Geometry.
type (
	// Point is a location in the Euclidean plane.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Grid is a uniform lattice of predefined points.
	Grid = geo.Grid
	// KDTree is a nearest-neighbour index over arbitrary point sets.
	KDTree = geo.KDTree
	// Quadtree is a point-region quadtree with range counting.
	Quadtree = geo.Quadtree
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewRect returns the rectangle spanned by two corners in any order.
func NewRect(a, b Point) Rect { return geo.NewRect(a, b) }

// NewGrid builds a cols × rows grid of predefined points over a region.
func NewGrid(region Rect, cols, rows int) (*Grid, error) {
	return geo.NewGrid(region, cols, rows)
}

// NewKDTree builds a nearest-neighbour index over the points.
func NewKDTree(points []Point) *KDTree { return geo.NewKDTree(points) }

// HST types.
type (
	// HST is a hierarchically well-separated tree over predefined points.
	HST = hst.Tree
	// Code identifies a leaf of the (virtually complete) HST.
	Code = hst.Code
	// PublishedHST is the wire form of an HST.
	PublishedHST = hst.Published
	// LeafIndex is a trie over leaf codes with O(D) nearest queries.
	LeafIndex = hst.LeafIndex
)

// BuildHST constructs an HST over the points (Alg. 1) with randomness
// derived from seed.
func BuildHST(points []Point, seed uint64) (*HST, error) {
	return hst.Build(points, rng.New(seed))
}

// BuildHSTWithParams constructs an HST with an explicit radius factor
// β ∈ [1/2, 1] and pivot permutation, for deterministic deployments.
func BuildHSTWithParams(points []Point, beta float64, perm []int) (*HST, error) {
	return hst.BuildWithParams(points, beta, perm)
}

// LevelDist returns the HST distance between leaves whose LCA is at the
// given level: 2^(ℓ+2) − 4.
func LevelDist(level int) float64 { return hst.LevelDist(level) }

// NewLeafIndex returns an empty leaf-code index for the tree: the
// arena-backed flat trie behind the assignment engine, with O(D)
// insert/remove/nearest and allocation-free steady-state operation.
func NewLeafIndex(tree *HST) *LeafIndex {
	return hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
}

// Privacy mechanisms.
type (
	// HSTMechanism is the paper's ε-Geo-Indistinguishable tree mechanism.
	HSTMechanism = privacy.HSTMechanism
	// PlanarLaplace is the mechanism of Andrés et al. (CCS'13).
	PlanarLaplace = privacy.PlanarLaplace
	// GridExponential is an exponential mechanism over candidate points.
	GridExponential = privacy.GridExponential
	// GeoIReport is the result of a Geo-Indistinguishability audit.
	GeoIReport = privacy.GeoIReport
)

// NewHSTMechanism builds the tree mechanism for budget eps.
func NewHSTMechanism(tree *HST, eps float64) (*HSTMechanism, error) {
	return privacy.NewHSTMechanism(tree, eps)
}

// NewPlanarLaplace builds the planar Laplace mechanism for budget eps.
func NewPlanarLaplace(eps float64) (*PlanarLaplace, error) {
	return privacy.NewPlanarLaplace(eps)
}

// VerifyHSTGeoI audits Theorem 1 by exact enumeration.
func VerifyHSTGeoI(m *HSTMechanism, slack float64) GeoIReport {
	return privacy.VerifyHSTGeoI(m, slack)
}

// Matching.
type (
	// EuclideanGreedy matches tasks to nearest workers in the plane.
	EuclideanGreedy = match.EuclideanGreedy
	// HSTGreedyScan is Alg. 4 with the paper's O(n) scan per task.
	HSTGreedyScan = match.HSTGreedyScan
	// HSTGreedyTrie is Alg. 4 answered in O(D) per task.
	HSTGreedyTrie = match.HSTGreedyTrie
	// HSTGreedyEngine is Alg. 4 answered by the sharded concurrent engine.
	HSTGreedyEngine = match.HSTGreedyEngine
	// AssignmentEngine is the sharded, concurrency-safe assignment engine
	// itself: per-branch shard locking, atomic Assign, and a batched API.
	AssignmentEngine = engine.Engine
)

// NewAssignmentEngine returns an empty sharded assignment engine over a
// published HST (shards ≤ 0 selects the default). Insert workers, then
// Assign or AssignBatch tasks from any number of goroutines.
func NewAssignmentEngine(tree *HST, shards int) (*AssignmentEngine, error) {
	return engine.New(tree, shards)
}

// NewHSTGreedyEngine returns the engine-backed matcher over reported
// worker leaf codes, safe for concurrent Assign calls.
func NewHSTGreedyEngine(tree *HST, workers []Code, shards int) (*HSTGreedyEngine, error) {
	return match.NewHSTGreedyEngine(tree, workers, shards)
}

// NoWorker is returned by matchers when no worker can be assigned.
const NoWorker = match.NoWorker

// Hungarian solves the rectangular assignment problem (rows ≤ columns).
func Hungarian(cost [][]float64) ([]int, float64, error) { return match.Hungarian(cost) }

// OptimalMatching computes the offline optimal matching cost with a
// caller-supplied distance, saturating the smaller side.
func OptimalMatching(nTasks, nWorkers int, dist func(task, worker int) float64) ([]int, float64, error) {
	return match.Optimal(nTasks, nWorkers, dist)
}

// Pipelines.
type (
	// Algorithm names a pipeline (TBF, Lap-GR, Lap-HG, Prob).
	Algorithm = core.Algorithm
	// Env is the published infrastructure: grid plus HST.
	Env = core.Env
	// Options tunes a pipeline run.
	Options = core.Options
	// Result is a distance-objective outcome.
	Result = core.Result
	// SizeResult is a matching-size case-study outcome.
	SizeResult = core.SizeResult
)

// The evaluated pipelines.
const (
	AlgTBF   = core.AlgTBF
	AlgLapGR = core.AlgLapGR
	AlgLapHG = core.AlgLapHG
	AlgProb  = core.AlgProb
)

// NewEnv builds the published infrastructure over a region with randomness
// derived from seed.
func NewEnv(region Rect, cols, rows int, seed uint64) (*Env, error) {
	return core.NewEnv(region, cols, rows, rng.New(seed))
}

// Run executes a distance-objective pipeline (AlgTBF, AlgLapGR, AlgLapHG).
func Run(alg Algorithm, env *Env, inst *Instance, opt Options, seed uint64) (*Result, error) {
	return core.Run(alg, env, inst, opt, rng.New(seed))
}

// RunSize executes a size-objective pipeline (AlgTBF, AlgProb) with
// per-worker reachable radii.
func RunSize(alg Algorithm, env *Env, inst *Instance, reaches []float64, opt Options, seed uint64) (*SizeResult, error) {
	return core.RunSize(alg, env, inst, reaches, opt, rng.New(seed))
}

// Workloads.
type (
	// Instance is one POMBM problem instance.
	Instance = workload.Instance
	// SyntheticParams mirrors Table II.
	SyntheticParams = workload.SyntheticParams
)

// SyntheticInstance draws a Table II workload.
func SyntheticInstance(p SyntheticParams, seed uint64) (*Instance, error) {
	return workload.Synthetic(p, rng.New(seed))
}

// ChengduInstance draws one day (1..30) of the synthetic Chengdu dataset
// with the given fleet size.
func ChengduInstance(day, numWorkers int, seed uint64) (*Instance, error) {
	return workload.Chengdu(workload.ChengduParams{Day: day, NumWorkers: numWorkers}, rng.New(seed))
}

// UniformReaches draws per-worker reachable radii in [lo, hi).
func UniformReaches(n int, lo, hi float64, seed uint64) []float64 {
	return workload.Reaches(n, lo, hi, rng.New(seed))
}

// ShuffleTasks permutes an instance's arrival order (random-order model).
func ShuffleTasks(in *Instance, seed uint64) {
	in.ShuffleTasks(rng.New(seed))
}
