package pombm_test

import (
	"net/http/httptest"
	"testing"

	"github.com/pombm/pombm"
)

// TestDialIsDeploymentShapeAgnostic pins the redesigned facade: Dial
// returns the same API surface against a single server and against a
// coordinator-fronted cluster, and an agent driven through it cannot tell
// the difference.
func TestDialIsDeploymentShapeAgnostic(t *testing.T) {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(100, 100))

	srv, err := pombm.NewServer(region, 8, 8, 0.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(pombm.PlatformHandler(srv))
	defer single.Close()

	coord, err := pombm.NewCluster(pombm.ClusterConfig{
		Region: region, Cols: 8, Rows: 8, Epsilon: 0.6, Seed: 7,
		Nodes: []pombm.NodeConn{localTestNode(t), localTestNode(t), localTestNode(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	multi := httptest.NewServer(coord.Handler())
	defer multi.Close()

	for _, url := range []string{single.URL, multi.URL} {
		api, err := pombm.Dial(url)
		if err != nil {
			t.Fatal(err)
		}
		pub := api.Publication()
		obf, err := pombm.NewObfuscator(pub, 99)
		if err != nil {
			t.Fatal(err)
		}
		w := pombm.Worker{ID: "w0", Loc: pombm.Pt(10, 10)}
		if err := w.Register(api, obf); err != nil {
			t.Fatal(err)
		}
		id, assigned, err := (pombm.Task{ID: "t0", Loc: pombm.Pt(12, 9)}).Submit(api, obf)
		if err != nil {
			t.Fatal(err)
		}
		if !assigned || id != "w0" {
			t.Fatalf("%s: task = (%q,%v), want w0 assigned", url, id, assigned)
		}
		if _, err := api.Stats(); err != nil {
			t.Fatal(err)
		}
	}
}

// localTestNode builds one in-process cluster backend behind real HTTP.
func localTestNode(t *testing.T) pombm.NodeConn {
	t.Helper()
	ts := httptest.NewServer(pombm.NodeHandler())
	t.Cleanup(ts.Close)
	return pombm.DialNode(ts.URL)
}
