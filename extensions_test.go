package pombm_test

import (
	"math"
	"strings"
	"testing"

	"github.com/pombm/pombm"
)

func TestFacadeRoadNetwork(t *testing.T) {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(100, 100))
	g, err := pombm.ManhattanNetwork(region, 6, 6, 0.5, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 36 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	m, err := g.MetricAmong(nodes)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pombm.BuildHSTOverMetric(m.Len(), m.Dist, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumPoints() != 36 {
		t.Errorf("tree points = %d", tree.NumPoints())
	}
	// Non-contraction in the road metric.
	for i := 0; i < 36; i += 5 {
		for j := i + 1; j < 36; j += 7 {
			if tree.Dist(tree.CodeOf(i), tree.CodeOf(j)) < m.Dist(i, j)*tree.Scale()-1e-9 {
				t.Fatalf("contraction at (%d,%d)", i, j)
			}
		}
	}
}

func TestFacadeCapacitatedMatching(t *testing.T) {
	pts := []pombm.Point{pombm.Pt(1, 1), pombm.Pt(2, 3), pombm.Pt(5, 3), pombm.Pt(4, 4)}
	tree, err := pombm.BuildHSTWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := pombm.NewHSTGreedyCapacitated(tree,
		[]pombm.Code{tree.CodeOf(0), tree.CodeOf(2)}, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	task := tree.CodeOf(0)
	if w := g.Assign(task); w != 0 {
		t.Errorf("first = %d", w)
	}
	if w := g.Assign(task); w != 0 {
		t.Errorf("second = %d", w)
	}
	if w := g.Assign(task); w != 1 {
		t.Errorf("third = %d", w)
	}

	assign, cost, err := pombm.OptimalCapacitated(2, []int{2},
		func(t_, w int) float64 { return float64(t_ + 1) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-3) > 1e-9 || assign[0] != 0 || assign[1] != 0 {
		t.Errorf("capacitated optimum: %v cost %v", assign, cost)
	}
}

func TestFacadeIndexedEuclidean(t *testing.T) {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(50, 50))
	g, err := pombm.NewEuclideanGreedyIndexed(region,
		[]pombm.Point{pombm.Pt(10, 10), pombm.Pt(40, 40)})
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Assign(pombm.Pt(12, 12)); w != 0 {
		t.Errorf("assigned %d", w)
	}
	if g.Remaining() != 1 {
		t.Errorf("remaining %d", g.Remaining())
	}
}

func TestFacadeChainMatcher(t *testing.T) {
	pts := []pombm.Point{pombm.Pt(1, 1), pombm.Pt(2, 3), pombm.Pt(5, 3), pombm.Pt(4, 4)}
	tree, err := pombm.BuildHSTWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := pombm.NewHSTChain(tree, []pombm.Code{tree.CodeOf(0), tree.CodeOf(2)})
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Assign(tree.CodeOf(0)); w != 0 {
		t.Errorf("first = %d", w)
	}
	if w := g.Assign(tree.CodeOf(0)); w != 1 {
		t.Errorf("chained second = %d", w)
	}
}

func TestFacadeAccountantAndQuadtree(t *testing.T) {
	acct, err := pombm.NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend("a", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend("a", 0.7); err == nil {
		t.Error("over-budget accepted")
	}
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(100, 100))
	pts := pombm.UniformPoints(region, 500, 3)
	nq, err := pombm.NewNoisyQuadtree(region, pts, 2.0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := nq.CountIn(region); math.Abs(got-500) > 50 {
		t.Errorf("total ≈ %v, want ~500", got)
	}
}

func TestFacadeInstanceCSV(t *testing.T) {
	inst, err := pombm.SyntheticInstance(pombm.SyntheticParams{
		NumTasks: 10, NumWorkers: 15, Mu: 100, Sigma: 20,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := pombm.WriteInstanceCSV(&sb, inst); err != nil {
		t.Fatal(err)
	}
	back, err := pombm.ReadInstanceCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != 10 || len(back.Workers) != 15 {
		t.Errorf("round trip sizes %d/%d", len(back.Tasks), len(back.Workers))
	}
}
