package pombm

import (
	"net/http"

	"github.com/pombm/pombm/internal/cluster"
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/rng"
)

// Platform types: the paper's interaction model (Sec. II-A) as a runnable
// client/server system. Obfuscation happens on the agents' side; the
// untrusted server sees only leaf codes.
type (
	// Server is the untrusted crowdsourcing platform.
	Server = platform.Server
	// ServerClient talks to a Server over JSON/HTTP.
	ServerClient = platform.Client
	// Backend abstracts in-process and HTTP access to a Server.
	Backend = platform.Backend
	// API is the full client surface of any pombm deployment — one server
	// or a coordinator-fronted cluster. Dial hands one out; code written
	// against API is deployment-shape agnostic.
	API = platform.API
	// Error is the structured wire error every refusal carries; match it
	// with errors.Is against ErrStaleEpoch and friends instead of string
	// matching on Reason.
	Error = platform.Error
	// ClusterConfig describes a coordinator deployment: the published
	// infrastructure plus the backends the engine is sharded across.
	ClusterConfig = cluster.Config
	// Coordinator is the multi-node serving tier: the full serving stack
	// over backends, answering byte-identically to a single server.
	Coordinator = cluster.Coordinator
	// NodeConn is the coordinator's handle to one backend.
	NodeConn = cluster.NodeConn
	// Publication is the infrastructure the server makes public.
	Publication = platform.Publication
	// Obfuscator is the client-side snap-and-obfuscate stack.
	Obfuscator = platform.Obfuscator
	// Worker is a crowd worker agent with a private true location.
	Worker = platform.Worker
	// Task is a spatial task agent with a private true location.
	Task = platform.Task
	// StatsResponse reports server counters.
	StatsResponse = platform.StatsResponse
	// RegisterRequest announces a worker's obfuscated leaf.
	RegisterRequest = platform.RegisterRequest
	// RegisterResponse acknowledges registrations, releases, and updates.
	RegisterResponse = platform.RegisterResponse
	// ReregisterRequest replaces a worker's reported leaf.
	ReregisterRequest = platform.ReregisterRequest
	// ReleaseRequest returns an assigned worker to the pool.
	ReleaseRequest = platform.ReleaseRequest
	// WithdrawRequest takes a worker offline (immediately when available,
	// after its current task when assigned).
	WithdrawRequest = platform.WithdrawRequest
	// TaskRequest submits one task's obfuscated leaf.
	TaskRequest = platform.TaskRequest
	// TaskResponse carries one assignment decision.
	TaskResponse = platform.TaskResponse
	// TaskBatchRequest submits a batch of tasks in arrival order.
	TaskBatchRequest = platform.TaskBatchRequest
	// TaskBatchResponse carries per-task decisions in submission order.
	TaskBatchResponse = platform.TaskBatchResponse
	// PrepareRotateRequest stages the next epoch's tree while the current
	// one keeps serving.
	PrepareRotateRequest = platform.PrepareRotateRequest
	// PrepareRotateResponse returns the staged epoch and tree for
	// client-side re-obfuscation.
	PrepareRotateResponse = platform.PrepareRotateResponse
	// WorkerReport is one worker's fresh report under a staged epoch.
	WorkerReport = platform.WorkerReport
	// RotateRequest commits a staged rotation with the collected reports.
	RotateRequest = platform.RotateRequest
	// RotateResponse summarises a rotation commit (rotated / parked /
	// dropped workers).
	RotateResponse = platform.RotateResponse
)

// ServerOption customises server construction (e.g. WithShards).
type ServerOption = platform.ServerOption

// WithShards sets the server's assignment-engine shard count (0 = engine
// default).
func WithShards(n int) ServerOption { return platform.WithShards(n) }

// WithLifetimeBudget enforces a per-worker lifetime ε budget under
// sequential composition: every fresh report spends the publication's ε,
// and a worker that cannot afford another is parked instead of silently
// re-noised past its guarantee.
func WithLifetimeBudget(lifetime float64) ServerOption {
	return platform.WithLifetimeBudget(lifetime)
}

// Policy is the pluggable assignment rule the server's engine runs: which
// available worker serves each task. Built-ins: GreedyPolicy (the paper's
// rule, default), CapacityGreedyPolicy (multi-task workers), and
// BatchOptimalPolicy (window-optimal restricted matching).
type Policy = engine.Policy

// GreedyPolicy is the paper-faithful rule: one task per worker slot,
// nearest worker in tree distance, ties to the smallest id.
func GreedyPolicy() Policy { return engine.Greedy() }

// CapacityGreedyPolicy is the capacitated sequential rule: a worker with
// capacity k serves up to k concurrent tasks.
func CapacityGreedyPolicy() Policy { return engine.CapacityGreedy() }

// BatchOptimalPolicy serves each batch window as a restricted min-cost
// matching over per-task top-k trie candidates (k ≤ 0 = default 8).
func BatchOptimalPolicy(k int) Policy { return engine.BatchOptimal(k) }

// PolicyByName resolves a policy spec: "greedy", "capacity-greedy",
// "batch-optimal", or "batch-optimal:k=<n>".
func PolicyByName(spec string) (Policy, error) { return engine.PolicyByName(spec) }

// WithPolicy selects the server's assignment policy (nil keeps greedy).
func WithPolicy(p Policy) ServerOption { return platform.WithPolicy(p) }

// WithDefaultCapacity sets the per-worker capacity a registration without
// an explicit one receives (default 1); above 1 needs a capacity-aware
// policy.
func WithDefaultCapacity(n int) ServerOption { return platform.WithDefaultCapacity(n) }

// NewServer builds a platform server over a region: grid, HST, and the
// privacy budget agents must use.
func NewServer(region Rect, cols, rows int, eps float64, seed uint64, opts ...ServerOption) (*Server, error) {
	return platform.NewServer(region, cols, rows, eps, seed, opts...)
}

// Typed refusal sentinels for errors.Is against a response's Err.
var (
	// ErrStaleEpoch reports a request built under a rotated-away epoch.
	ErrStaleEpoch = platform.ErrStaleEpoch
	// ErrBudgetExhausted reports a worker whose lifetime ε budget cannot
	// afford another fresh report.
	ErrBudgetExhausted = platform.ErrBudgetExhausted
	// ErrParked reports a terminally parked worker.
	ErrParked = platform.ErrParked
	// ErrNoWorkers reports a task refused for lack of available workers.
	ErrNoWorkers = platform.ErrNoWorkers
	// ErrUnavailable reports a backend or transport failure.
	ErrUnavailable = platform.ErrUnavailable
)

// Dial connects to any pombm deployment — a pombm-server or a pombm-coord
// — and returns the deployment-shape-agnostic client surface. Both speak
// the same /v1 agent protocol, so the caller cannot (and need not) tell
// which it reached.
func Dial(baseURL string) (API, error) {
	return platform.NewClient(baseURL)
}

// NewCluster builds the coordinator tier: the full serving stack sharded
// across the configured backends (see DialNode / pombm-coord).
func NewCluster(cfg ClusterConfig) (*Coordinator, error) {
	return cluster.New(cfg)
}

// DialNode returns a backend handle for a pombm-server's /v2 node API.
func DialNode(baseURL string) NodeConn { return cluster.DialNode(baseURL) }

// NodeHandler serves a fresh cluster backend over the /v2 node API — what
// pombm-server mounts beside /v1 so a coordinator can enlist it.
func NodeHandler() http.Handler { return cluster.NodeHandler(cluster.NewNode()) }

// NewServerClient connects to a platform server's HTTP API.
//
// Deprecated: use Dial, which returns the deployment-shape-agnostic API
// surface. NewServerClient keeps working for callers that need the
// concrete *ServerClient type.
func NewServerClient(baseURL string) (*ServerClient, error) {
	return platform.NewClient(baseURL)
}

// NewObfuscator builds an agent's client-side privacy stack from a
// publication.
func NewObfuscator(pub Publication, seed uint64) (*Obfuscator, error) {
	return platform.NewObfuscator(pub, seed)
}

// PlatformHandler exposes a server over HTTP.
func PlatformHandler(s *Server) http.Handler { return platform.Handler(s) }

// Seed-based randomness helpers for agents that need raw draws.
//
// UniformPoints draws n uniform locations in a region, a convenience for
// examples and demos.
func UniformPoints(region Rect, n int, seed uint64) []Point {
	src := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(src.Uniform(region.MinX, region.MaxX), src.Uniform(region.MinY, region.MaxY))
	}
	return pts
}
