package pombm_test

// One benchmark per table/figure of the paper (deliverable d): each runs
// the corresponding experiment end-to-end at reduced scale through the same
// harness as cmd/pombm-bench and reports the headline series value as a
// custom metric, so `go test -bench=.` regenerates every panel's pipeline.
// Full-scale series for EXPERIMENTS.md come from cmd/pombm-bench.
//
// Micro-benchmarks for the performance-critical primitives (HST build,
// mechanism samplers, matcher implementations, Hungarian) follow at the
// bottom; the scan-vs-trie and walk-vs-enumerate ablations live next to
// their packages (internal/match, experiment abl-walk).

import (
	"fmt"
	"sync"
	"testing"

	"github.com/pombm/pombm"
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/experiments"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// benchFigure runs one experiment per iteration at smoke scale and reports
// the last series' final value (TBF for paper figures) as "series".
func benchFigure(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 2020, Reps: 1, Scale: 0.02, GridCols: 16}
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fig, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Series[len(fig.Series)-1]
		last = s.Values[len(s.Values)-1]
	}
	b.ReportMetric(last, "series")
}

func BenchmarkTable1(b *testing.B) { benchFigure(b, "table1") }

func BenchmarkFig6a(b *testing.B) { benchFigure(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "fig6b") }
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "fig6c") }
func BenchmarkFig6d(b *testing.B) { benchFigure(b, "fig6d") }
func BenchmarkFig6e(b *testing.B) { benchFigure(b, "fig6e") }
func BenchmarkFig6f(b *testing.B) { benchFigure(b, "fig6f") }
func BenchmarkFig6g(b *testing.B) { benchFigure(b, "fig6g") }
func BenchmarkFig6h(b *testing.B) { benchFigure(b, "fig6h") }
func BenchmarkFig6i(b *testing.B) { benchFigure(b, "fig6i") }
func BenchmarkFig6j(b *testing.B) { benchFigure(b, "fig6j") }
func BenchmarkFig6k(b *testing.B) { benchFigure(b, "fig6k") }
func BenchmarkFig6l(b *testing.B) { benchFigure(b, "fig6l") }

func BenchmarkFig7a(b *testing.B) { benchFigure(b, "fig7a") }
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "fig7b") }
func BenchmarkFig7c(b *testing.B) { benchFigure(b, "fig7c") }
func BenchmarkFig7d(b *testing.B) { benchFigure(b, "fig7d") }
func BenchmarkFig7e(b *testing.B) { benchFigure(b, "fig7e") }
func BenchmarkFig7f(b *testing.B) { benchFigure(b, "fig7f") }
func BenchmarkFig7g(b *testing.B) { benchFigure(b, "fig7g") }
func BenchmarkFig7h(b *testing.B) { benchFigure(b, "fig7h") }
func BenchmarkFig7i(b *testing.B) { benchFigure(b, "fig7i") }
func BenchmarkFig7j(b *testing.B) { benchFigure(b, "fig7j") }
func BenchmarkFig7k(b *testing.B) { benchFigure(b, "fig7k") }
func BenchmarkFig7l(b *testing.B) { benchFigure(b, "fig7l") }

func BenchmarkFig8a(b *testing.B) { benchFigure(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFig8c(b *testing.B) { benchFigure(b, "fig8c") }
func BenchmarkFig8d(b *testing.B) { benchFigure(b, "fig8d") }
func BenchmarkFig8e(b *testing.B) { benchFigure(b, "fig8e") }
func BenchmarkFig8f(b *testing.B) { benchFigure(b, "fig8f") }
func BenchmarkFig8g(b *testing.B) { benchFigure(b, "fig8g") }
func BenchmarkFig8h(b *testing.B) { benchFigure(b, "fig8h") }

// Micro-benchmarks.

func benchGridTree(b *testing.B, cols int) (*geo.Grid, *hst.Tree) {
	b.Helper()
	g, err := geo.NewGrid(workload.SyntheticRegion, cols, cols)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := hst.Build(g.Points(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return g, tr
}

func BenchmarkHSTBuild32(b *testing.B) {
	g, err := geo.NewGrid(workload.SyntheticRegion, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hst.Build(g.Points(), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMechanismWalk(b *testing.B) {
	_, tr := benchGridTree(b, 32)
	m, err := privacy.NewHSTMechanism(tr, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	x := tr.CodeOf(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObfuscateWalk(x, src)
	}
}

func BenchmarkMechanismDirect(b *testing.B) {
	_, tr := benchGridTree(b, 32)
	m, err := privacy.NewHSTMechanism(tr, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	x := tr.CodeOf(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObfuscateDirect(x, src)
	}
}

func BenchmarkPlanarLaplaceSample(b *testing.B) {
	lap, err := privacy.NewPlanarLaplace(0.6)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(3)
	p := geo.Pt(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap.ObfuscatePoint(p, src)
	}
}

func BenchmarkHungarian64(b *testing.B) {
	src := rng.New(4)
	const n, m = 64, 96
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = src.Uniform(0, 100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := match.Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}

// Assignment throughput benchmarks: the paper's O(D·n) scan, the O(D)
// trie behind one global lock (the old server path), and the sharded
// concurrent engine, each assigning benchTasks random tasks over a pool of
// benchWorkers random workers split across 1/4/8 goroutines. The reported
// tasks/sec metric is the headline number; ns/op counts one full batch
// (refill excluded via timer control).
const (
	benchWorkers = 16384
	benchTasks   = 8192
)

func benchCodes(b *testing.B, tr *hst.Tree, n int, label string) []hst.Code {
	b.Helper()
	src := rng.New(9).Derive(label)
	out := make([]hst.Code, n)
	for i := range out {
		bs := make([]byte, tr.Depth())
		for j := range bs {
			bs[j] = byte(src.Intn(tr.Degree()))
		}
		out[i] = hst.Code(bs)
	}
	return out
}

// benchAssignConcurrent times `assign the tasks split across g goroutines
// over a freshly refilled pool` once per iteration. newPool rebuilds the
// pool (untimed); run consumes one chunk of tasks on one goroutine.
func benchAssignConcurrent(b *testing.B, g int, tasks []hst.Code, newPool func() func([]hst.Code)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		run := newPool()
		b.StartTimer()
		var wg sync.WaitGroup
		chunk := (len(tasks) + g - 1) / g
		for k := 0; k < g; k++ {
			lo := k * chunk
			hi := lo + chunk
			if hi > len(tasks) {
				hi = len(tasks)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				run(tasks[lo:hi])
			}(lo, hi)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(len(tasks))/b.Elapsed().Seconds(), "tasks/sec")
}

// Shared across benchmark cases; initialised lazily by benchAssignSetup.
var (
	benchSetupOnce  sync.Once
	benchTree       *hst.Tree
	benchWorkerPool []hst.Code
	benchTaskSlice  []hst.Code
)

func benchAssignSetup(b *testing.B) {
	b.Helper()
	benchSetupOnce.Do(func() {
		g, err := geo.NewGrid(workload.SyntheticRegion, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		benchTree, err = hst.Build(g.Points(), rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		benchWorkerPool = benchCodes(b, benchTree, benchWorkers, "workers")
		benchTaskSlice = benchCodes(b, benchTree, benchTasks, "tasks")
	})
}

func BenchmarkAssignScan(b *testing.B) {
	benchAssignSetup(b)
	// The O(D·n) scan is orders of magnitude slower; a reduced task count
	// keeps the benchmark runnable while tasks/sec stays comparable.
	benchAssignConcurrent(b, 1, benchTaskSlice[:512], func() func([]hst.Code) {
		m := match.NewHSTGreedyScan(benchTree, benchWorkerPool)
		return func(tasks []hst.Code) {
			for _, t := range tasks {
				m.Assign(t)
			}
		}
	})
}

func BenchmarkAssignTrieLocked(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchAssignSetup(b)
			benchAssignConcurrent(b, g, benchTaskSlice, func() func([]hst.Code) {
				idx := hst.NewLeafIndex(benchTree.Depth())
				for i, c := range benchWorkerPool {
					if err := idx.Insert(c, i); err != nil {
						b.Fatal(err)
					}
				}
				var mu sync.Mutex
				return func(tasks []hst.Code) {
					for _, t := range tasks {
						mu.Lock()
						idx.PopNearest(t)
						mu.Unlock()
					}
				}
			})
		})
	}
}

func BenchmarkEngineAssign(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchAssignSetup(b)
			benchAssignConcurrent(b, g, benchTaskSlice, func() func([]hst.Code) {
				e, err := engine.New(benchTree, 0)
				if err != nil {
					b.Fatal(err)
				}
				for i, c := range benchWorkerPool {
					if err := e.Insert(c, i); err != nil {
						b.Fatal(err)
					}
				}
				return func(tasks []hst.Code) {
					for _, t := range tasks {
						e.Assign(t)
					}
				}
			})
		})
	}
}

func BenchmarkEngineAssignBatch(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchAssignSetup(b)
			benchAssignConcurrent(b, g, benchTaskSlice, func() func([]hst.Code) {
				e, err := engine.New(benchTree, 0)
				if err != nil {
					b.Fatal(err)
				}
				for i, c := range benchWorkerPool {
					if err := e.Insert(c, i); err != nil {
						b.Fatal(err)
					}
				}
				return func(tasks []hst.Code) {
					e.AssignBatch(tasks)
				}
			})
		})
	}
}

// BenchmarkPolicyGreedy drives the explicit Greedy policy through the
// policy seam: its figures must match BenchmarkEngineAssign's, pinning that
// the seam adds nothing to the hot path.
func BenchmarkPolicyGreedy(b *testing.B) {
	benchPolicy(b, engine.Greedy(), 1)
}

// BenchmarkPolicyCapacityGreedy is the capacitated sequential rule: every
// worker slot carries four units, so pops mostly decrement in place instead
// of repairing the trie.
func BenchmarkPolicyCapacityGreedy(b *testing.B) {
	benchPolicy(b, engine.CapacityGreedy(), 4)
}

func benchPolicy(b *testing.B, pol engine.Policy, capacity int) {
	benchAssignSetup(b)
	benchAssignConcurrent(b, 1, benchTaskSlice, func() func([]hst.Code) {
		e, err := engine.NewWithOptions(benchTree, 0, engine.WithPolicy(pol))
		if err != nil {
			b.Fatal(err)
		}
		for i, c := range benchWorkerPool {
			if err := e.InsertCapEpoch(c, i, capacity, 0); err != nil {
				b.Fatal(err)
			}
		}
		return func(tasks []hst.Code) {
			for _, t := range tasks {
				e.Assign(t)
			}
		}
	})
}

// BenchmarkPolicyBatchOptimal serves the task stream in windows of 256
// through the restricted min-cost matching (candidate mining + flow solve
// per window).
func BenchmarkPolicyBatchOptimal(b *testing.B) {
	benchAssignSetup(b)
	benchAssignConcurrent(b, 1, benchTaskSlice, func() func([]hst.Code) {
		e, err := engine.NewWithOptions(benchTree, 0, engine.WithPolicy(engine.BatchOptimal(0)))
		if err != nil {
			b.Fatal(err)
		}
		for i, c := range benchWorkerPool {
			if err := e.Insert(c, i); err != nil {
				b.Fatal(err)
			}
		}
		return func(tasks []hst.Code) {
			const window = 256
			for lo := 0; lo < len(tasks); lo += window {
				hi := lo + window
				if hi > len(tasks) {
					hi = len(tasks)
				}
				e.AssignBatch(tasks[lo:hi])
			}
		}
	})
}

func BenchmarkTBFPipeline(b *testing.B) {
	env, err := pombm.NewEnv(workload.SyntheticRegion, 32, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := pombm.SyntheticInstance(pombm.SyntheticParams{
		NumTasks: 300, NumWorkers: 500, Mu: 100, Sigma: 20,
	}, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pombm.Run(pombm.AlgTBF, env, inst, pombm.Options{Epsilon: 0.6}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
