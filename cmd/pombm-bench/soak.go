// The soak lane loads a city-scale worker population into the engine and
// measures what the per-request benchmarks cannot: steady-state memory per
// worker, GC pause behaviour under churn, snapshot serialize/restore time,
// and the peak extra memory an epoch rotation costs while the population is
// at its largest. It follows bent's split (golang/benchmarks) between the
// suite — what to run: population size and churn shape — and the config —
// how to run it: seed, tree geometry, shard count — so the same suite is
// comparable across machines and revisions.
//
// Churn runs on a virtual tick counter, not wall time: each tick submits a
// fixed number of tasks (each assignment pops a worker, who then re-reports
// with a fresh obfuscated code) and moves a fixed number of idle workers
// (withdraw + re-report). Wall time only ever divides operation counts, so
// a loaded CI machine changes throughput numbers but never the workload.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"strings"
	"time"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/epoch"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// soakSuite is the workload half of the suite/config split: how many
// workers, how much churn, how many rotations. Everything here is virtual —
// no field is a duration — so a suite means the same work everywhere.
type soakSuite struct {
	Name           string `json:"name"`
	Workers        int    `json:"workers"`
	Ticks          int    `json:"ticks"`
	AssignsPerTick int    `json:"assigns_per_tick"`
	MovesPerTick   int    `json:"moves_per_tick"`
	Rotations      int    `json:"rotations"`
}

var soakSuites = []soakSuite{
	{Name: "smoke-100k", Workers: 100_000, Ticks: 60, AssignsPerTick: 256, MovesPerTick: 64, Rotations: 1},
	{Name: "soak-1m", Workers: 1_000_000, Ticks: 120, AssignsPerTick: 512, MovesPerTick: 128, Rotations: 2},
	{Name: "soak-2m", Workers: 2_000_000, Ticks: 120, AssignsPerTick: 512, MovesPerTick: 128, Rotations: 2},
	{Name: "soak-5m", Workers: 5_000_000, Ticks: 120, AssignsPerTick: 512, MovesPerTick: 128, Rotations: 2},
	{Name: "soak-10m", Workers: 10_000_000, Ticks: 120, AssignsPerTick: 512, MovesPerTick: 128, Rotations: 2},
}

// soakConfig is the environment half: everything that can legitimately
// differ between two runs of the same suite.
type soakConfig struct {
	Seed       uint64 `json:"seed"`
	GridCols   int    `json:"grid_cols"`
	Shards     int    `json:"shards"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GitSHA     string `json:"git_sha"`
}

// gcPauseStats summarises the runtime's GC pause histogram over the load
// and churn phases (steady-state churn reuses freelists and rarely
// allocates, so load contributes most cycles). Quantiles are bucket upper
// bounds, so they round pessimistically.
type gcPauseStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// soakReport is the machine-readable soak result. Byte sizes are exact;
// heap numbers are ReadMemStats.HeapAlloc after a forced GC, so they count
// live bytes, not allocator slack.
type soakReport struct {
	Suite  soakSuite  `json:"suite"`
	Config soakConfig `json:"config"`

	LoadSeconds       float64 `json:"load_seconds"`
	LoadWorkersPerSec float64 `json:"load_workers_per_sec"`

	// Steady state, measured after the churn phase with writers quiesced:
	// arena_bytes is the engine's structural cost (trie slabs across all
	// shards), steady_heap_bytes the whole process's live heap.
	SteadyHeapBytes     int64   `json:"steady_heap_bytes"`
	ArenaBytes          int64   `json:"arena_bytes"`
	HeapBytesPerWorker  float64 `json:"heap_bytes_per_worker"`
	ArenaBytesPerWorker float64 `json:"arena_bytes_per_worker"`
	VmRSSBytes          int64   `json:"vm_rss_bytes,omitempty"`
	VmHWMBytes          int64   `json:"vm_hwm_bytes,omitempty"`

	ChurnSeconds  float64      `json:"churn_seconds"`
	AssignOps     int64        `json:"assign_ops"`
	MoveOps       int64        `json:"move_ops"`
	AssignNsPerOp float64      `json:"assign_ns_per_op"`
	GCPauses      gcPauseStats `json:"gc_pauses"`

	SnapshotBytes        int64   `json:"snapshot_bytes"`
	SnapshotWriteSeconds float64 `json:"snapshot_write_seconds"`
	SnapshotReadSeconds  float64 `json:"snapshot_read_seconds"`
	SnapshotWorkers      int     `json:"snapshot_workers"`

	// Rotation peak memory: extra bytes of live heap the worst rotation
	// held beyond its pre-rotation baseline, sampled concurrently, and that
	// extra as a fraction of the population's arena bytes. The streaming
	// swap contract is ratio < 1 — rotation must not hold a second copy of
	// the population.
	RotateSeconds        []float64 `json:"rotate_seconds"`
	RotatePeakExtraBytes int64     `json:"rotate_peak_extra_bytes"`
	RotatePeakExtraRatio float64   `json:"rotate_peak_extra_ratio"`
}

// codeGen deterministically derives worker id × generation → leaf code, so
// the driver never stores the population's codes: the engine's arenas are
// the only copy, and a rotation can replay the whole next population from
// two integers per worker. Codes are real leaves of the published tree —
// exactly what obfuscation emits — picked by a splitmix64 scramble that is
// independent of the churn rng, so assignment traffic never perturbs
// placement.
type codeGen struct {
	tree *hst.Tree
	seed uint64
}

// code returns the leaf code for one worker stint. The slice aliases the
// tree's stored code for that leaf; the trie copies digits on insert and
// never retains it.
func (g *codeGen) code(id int, gen uint32) hst.Code {
	x := g.seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15 ^ (uint64(gen)+1)<<32
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return g.tree.CodeOf(int(x % uint64(g.tree.NumPoints())))
}

func findSoakSuite(name string) (soakSuite, error) {
	var names []string
	for _, s := range soakSuites {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	return soakSuite{}, fmt.Errorf("unknown soak suite %q (have %s)", name, strings.Join(names, ", "))
}

// runSoak executes one suite end to end: load, churn, steady-state
// measurement, snapshot round trip, rotations under a concurrent heap
// sampler. The report goes to jsonPath ("" = SOAK_<suite>.json) and a
// human summary to stdout.
func runSoak(suiteName string, gridCols, shards int, seed uint64, jsonPath string) error {
	suite, err := findSoakSuite(suiteName)
	if err != nil {
		return err
	}
	grid, err := geo.NewGrid(workload.SyntheticRegion, gridCols, gridCols)
	if err != nil {
		return err
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		return err
	}
	eng, err := engine.New(tree, shards)
	if err != nil {
		return err
	}
	rep := soakReport{
		Suite: suite,
		Config: soakConfig{
			Seed:       seed,
			GridCols:   gridCols,
			Shards:     eng.Shards(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GitSHA:     gitSHA(),
		},
	}
	fmt.Printf("soak %s: %d workers over N=%d D=%d c=%d, %d shards, GOMAXPROCS=%d\n",
		suite.Name, suite.Workers, tree.NumPoints(), tree.Depth(), tree.Degree(), eng.Shards(), rep.Config.GOMAXPROCS)

	// Phase 1: load. gens[i] is worker i's code generation — bumped every
	// time the worker re-reports, so id+gen regenerate its current code.
	codes := &codeGen{tree: tree, seed: seed}
	gens := make([]uint32, suite.Workers)
	pausesBefore := readGCPauses()
	t0 := time.Now()
	for i := 0; i < suite.Workers; i++ {
		if err := eng.Insert(codes.code(i, 0), i); err != nil {
			return fmt.Errorf("load worker %d: %w", i, err)
		}
	}
	rep.LoadSeconds = time.Since(t0).Seconds()
	rep.LoadWorkersPerSec = float64(suite.Workers) / rep.LoadSeconds
	fmt.Printf("  load: %d workers in %.2fs (%.0f workers/sec)\n",
		suite.Workers, rep.LoadSeconds, rep.LoadWorkersPerSec)

	// Phase 2: churn on the virtual tick counter. Assignments pop the
	// nearest worker to a random task point; the popped worker immediately
	// re-reports under a fresh code (gen+1), keeping the population size
	// fixed while the trie's freelists and dense blocks see real turnover.
	// Moves model idle relocation: withdraw + re-report.
	src := rng.New(seed).Derive("soak")
	taskSrc := src.Derive("tasks")
	moveSrc := src.Derive("moves")
	assignTime := time.Duration(0)
	t0 = time.Now()
	for tick := 0; tick < suite.Ticks; tick++ {
		ta := time.Now()
		for a := 0; a < suite.AssignsPerTick; a++ {
			id, _, ok := eng.Assign(tree.CodeOf(taskSrc.Intn(tree.NumPoints())))
			if !ok {
				return fmt.Errorf("tick %d: assignment failed with %d workers loaded", tick, eng.Len())
			}
			rep.AssignOps++
			gens[id]++
			if err := eng.Insert(codes.code(id, gens[id]), id); err != nil {
				return fmt.Errorf("tick %d: re-report worker %d: %w", tick, id, err)
			}
		}
		assignTime += time.Since(ta)
		for m := 0; m < suite.MovesPerTick; m++ {
			id := moveSrc.Intn(suite.Workers)
			if !eng.Remove(codes.code(id, gens[id]), id) {
				return fmt.Errorf("tick %d: move lost worker %d", tick, id)
			}
			gens[id]++
			if err := eng.Insert(codes.code(id, gens[id]), id); err != nil {
				return fmt.Errorf("tick %d: re-insert moved worker %d: %w", tick, id, err)
			}
			rep.MoveOps++
		}
	}
	rep.ChurnSeconds = time.Since(t0).Seconds()
	rep.GCPauses = gcPauseDelta(pausesBefore, readGCPauses())
	if rep.AssignOps > 0 {
		rep.AssignNsPerOp = float64(assignTime.Nanoseconds()) / float64(rep.AssignOps)
	}
	fmt.Printf("  churn: %d ticks, %d assigns + %d moves in %.2fs (assign+rereport %.0f ns/op)\n",
		suite.Ticks, rep.AssignOps, rep.MoveOps, rep.ChurnSeconds, rep.AssignNsPerOp)
	fmt.Printf("  gc: %d pauses, p50 %s p90 %s p99 %s max %s\n",
		rep.GCPauses.Count, secs(rep.GCPauses.P50), secs(rep.GCPauses.P90), secs(rep.GCPauses.P99), secs(rep.GCPauses.Max))

	// Phase 3: steady state with writers quiesced.
	if eng.Len() != suite.Workers {
		return fmt.Errorf("population drifted: %d workers, want %d", eng.Len(), suite.Workers)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.SteadyHeapBytes = int64(ms.HeapAlloc)
	rep.ArenaBytes = eng.ArenaBytes()
	rep.HeapBytesPerWorker = float64(rep.SteadyHeapBytes) / float64(suite.Workers)
	rep.ArenaBytesPerWorker = float64(rep.ArenaBytes) / float64(suite.Workers)
	rep.VmRSSBytes, rep.VmHWMBytes = readVmStatus()
	fmt.Printf("  steady: heap %s (%.1f B/worker), arenas %s (%.1f B/worker), RSS %s, peak RSS %s\n",
		mb(rep.SteadyHeapBytes), rep.HeapBytesPerWorker, mb(rep.ArenaBytes), rep.ArenaBytesPerWorker,
		mb(rep.VmRSSBytes), mb(rep.VmHWMBytes))

	// Phase 4: snapshot round trip through a real file. The write streams
	// (epoch.WriteSnapshot never materialises the worker list); the read
	// restores a full second engine, timed together as "restore".
	if err := soakSnapshot(&rep, eng, shards); err != nil {
		return err
	}
	fmt.Printf("  snapshot: %s written in %.2fs, restored %d workers in %.2fs\n",
		mb(rep.SnapshotBytes), rep.SnapshotWriteSeconds, rep.SnapshotWorkers, rep.SnapshotReadSeconds)

	// Phase 5: epoch rotations under a concurrent heap sampler. Every
	// worker re-reports into the new epoch under a fresh code, replayed
	// from (id, gen+1) — the streaming swap never sees a materialised
	// insert slice, and the sampler catches whatever peak the build holds.
	for r := 0; r < suite.Rotations; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		base := ms.HeapAlloc
		stop := make(chan struct{})
		peakCh := make(chan uint64, 1)
		go sampleHeapPeak(stop, peakCh)
		next := eng.Epoch() + 1
		t0 = time.Now()
		err := eng.SwapEpochSeq(next, tree, 0, func(yield func(engine.EpochInsert) bool) {
			for id := 0; id < suite.Workers; id++ {
				if !yield(engine.EpochInsert{Code: codes.code(id, gens[id]+1), ID: id}) {
					return
				}
			}
		})
		d := time.Since(t0)
		close(stop)
		peak := <-peakCh
		if err != nil {
			return fmt.Errorf("rotation to epoch %d: %w", next, err)
		}
		for i := range gens {
			gens[i]++
		}
		extra := int64(peak) - int64(base)
		if extra < 0 {
			extra = 0
		}
		rep.RotateSeconds = append(rep.RotateSeconds, d.Seconds())
		if extra > rep.RotatePeakExtraBytes {
			rep.RotatePeakExtraBytes = extra
		}
		fmt.Printf("  rotate %d: %.2fs, peak extra heap %s\n", next, d.Seconds(), mb(extra))
	}
	if rep.ArenaBytes > 0 {
		rep.RotatePeakExtraRatio = float64(rep.RotatePeakExtraBytes) / float64(rep.ArenaBytes)
	}
	if suite.Rotations > 0 {
		fmt.Printf("  rotation peak extra: %s = %.2fx the population's arena bytes\n",
			mb(rep.RotatePeakExtraBytes), rep.RotatePeakExtraRatio)
		if eng.Len() != suite.Workers {
			return fmt.Errorf("rotation dropped workers: %d, want %d", eng.Len(), suite.Workers)
		}
	}

	if jsonPath == "" {
		jsonPath = fmt.Sprintf("SOAK_%s.json", suite.Name)
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# wrote %s\n", jsonPath)
	return nil
}

// soakSnapshot times one snapshot round trip: stream the population to a
// temp file, read it back, rebuild an engine, check nothing was lost. The
// restored engine and parsed state are dropped before return so the
// rotation phase starts from a clean baseline.
func soakSnapshot(rep *soakReport, eng *engine.Engine, shards int) error {
	f, err := os.CreateTemp("", "pombm-soak-*.snapshot")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	t0 := time.Now()
	n, err := epoch.WriteSnapshot(f, eng)
	if err != nil {
		return fmt.Errorf("snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return err
	}
	rep.SnapshotWriteSeconds = time.Since(t0).Seconds()
	rep.SnapshotBytes = n
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	t0 = time.Now()
	st, err := epoch.ReadState(f)
	if err != nil {
		return fmt.Errorf("snapshot read: %w", err)
	}
	restored, err := st.Engine(shards)
	if err != nil {
		return fmt.Errorf("snapshot restore: %w", err)
	}
	rep.SnapshotReadSeconds = time.Since(t0).Seconds()
	rep.SnapshotWorkers = restored.Len()
	if rep.SnapshotWorkers != eng.Len() {
		return fmt.Errorf("snapshot lost workers: restored %d, have %d", rep.SnapshotWorkers, eng.Len())
	}
	return nil
}

// sampleHeapPeak polls live heap roughly every millisecond until stop
// closes, then reports the maximum it saw (including one final read, so
// builds shorter than the poll interval still register).
func sampleHeapPeak(stop <-chan struct{}, peakCh chan<- uint64) {
	var peak uint64
	var ms runtime.MemStats
	for {
		select {
		case <-stop:
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			peakCh <- peak
			return
		default:
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// readGCPauses snapshots the runtime's cumulative GC pause histogram,
// preferring the modern metric name with the pre-1.22 one as fallback.
// Counts are copied: metrics.Read may reuse histogram storage.
func readGCPauses() *metrics.Float64Histogram {
	for _, name := range []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"} {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		if s[0].Value.Kind() == metrics.KindFloat64Histogram {
			h := s[0].Value.Float64Histogram()
			cp := &metrics.Float64Histogram{
				Counts:  append([]uint64(nil), h.Counts...),
				Buckets: append([]float64(nil), h.Buckets...),
			}
			return cp
		}
	}
	return nil
}

// gcPauseDelta summarises the pauses that happened between two cumulative
// histogram snapshots. Quantiles report the matching bucket's upper bound
// (its lower bound for the +Inf tail bucket).
func gcPauseDelta(before, after *metrics.Float64Histogram) gcPauseStats {
	var st gcPauseStats
	if before == nil || after == nil || len(before.Counts) != len(after.Counts) {
		return st
	}
	counts := make([]uint64, len(after.Counts))
	for i := range counts {
		counts[i] = after.Counts[i] - before.Counts[i]
		st.Count += counts[i]
	}
	if st.Count == 0 {
		return st
	}
	upper := func(i int) float64 {
		// Bucket i spans Buckets[i]..Buckets[i+1].
		hi := after.Buckets[i+1]
		if hi > after.Buckets[len(after.Buckets)-2] { // +Inf tail
			return after.Buckets[i]
		}
		return hi
	}
	quantile := func(q float64) float64 {
		target := uint64(q * float64(st.Count))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= target {
				return upper(i)
			}
		}
		return upper(len(counts) - 1)
	}
	st.P50 = quantile(0.50)
	st.P90 = quantile(0.90)
	st.P99 = quantile(0.99)
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			st.Max = upper(i)
			break
		}
	}
	return st
}

// readVmStatus reports VmRSS and VmHWM from /proc/self/status in bytes,
// zeros where the platform doesn't provide them.
func readVmStatus() (rss, hwm int64) {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(blob), "\n") {
		var dst *int64
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &rss
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &hwm
		default:
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			var kb int64
			fmt.Sscanf(fields[1], "%d", &kb)
			*dst = kb << 10
		}
	}
	return rss, hwm
}

func mb(b int64) string {
	return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
}

func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
