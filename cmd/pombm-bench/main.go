// pombm-bench reproduces the paper's tables and figures from the command
// line. Each experiment id names one panel (fig6a..fig6l, fig7a..fig7l,
// fig8a..fig8h, table1) or an ablation (abl-walk, abl-index, abl-grid,
// abl-cr, abl-em); see EXPERIMENTS.md for the index.
//
// Usage:
//
//	pombm-bench -list
//	pombm-bench -exp fig7a
//	pombm-bench -exp all -scale 0.2 -reps 3 -out results/
//	pombm-bench -exp fig7b -scale 0.05        # scalability sweep, reduced
//	pombm-bench -instance day.csv -eps 0.6    # your own workload file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/pombm/pombm/internal/core"
	"github.com/pombm/pombm/internal/experiments"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		seed   = flag.Uint64("seed", 2020, "root random seed")
		reps   = flag.Int("reps", 5, "repetitions per sweep point (paper: 10)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes)")
		grid   = flag.Int("grid", 64, "predefined grid columns (N = grid²)")
		trie   = flag.Bool("trie", false, "use the O(D) trie matcher instead of the paper's scan")
		quick  = flag.Bool("quick", false, "shorthand for -scale 0.1 -reps 2 -grid 16")
		out    = flag.String("out", "", "directory for CSV output (optional)")
		format = flag.String("format", "text", "stdout format: text, csv, or markdown")
		file   = flag.String("instance", "", "run the distance pipelines on a workload CSV file instead of a registered experiment")
		eps    = flag.Float64("eps", 0.6, "privacy budget for -instance runs")
		svg    = flag.Bool("svg", false, "also write an SVG chart per experiment into -out")
	)
	flag.Parse()

	if *file != "" {
		if err := runOnFile(*file, *eps, *grid, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-10s %s\n", id, title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "pombm-bench: -exp is required (use -list to see ids)")
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Reps: *reps, Scale: *scale, GridCols: *grid, UseTrie: *trie}
	if *quick {
		cfg.Scale, cfg.Reps, cfg.GridCols = 0.1, 2, 16
	}
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		fatal(err)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := runner.Run(id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		switch *format {
		case "csv":
			fmt.Print(fig.CSV())
		case "markdown":
			fmt.Printf("### %s — %s\n\n%s\n", fig.ID, fig.Title, fig.Markdown())
		default:
			fmt.Println(fig.Render())
		}
		fmt.Fprintf(os.Stderr, "# %s finished in %v\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			if err := writeCSV(*out, fig); err != nil {
				fatal(err)
			}
			if *svg {
				path := filepath.Join(*out, fig.ID+".svg")
				if err := os.WriteFile(path, []byte(fig.SVG()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
			}
		}
	}
}

func writeCSV(dir string, fig interface {
	CSV() string
}) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, ok := fig.(*experiments.Figure)
	if !ok {
		return fmt.Errorf("pombm-bench: unexpected figure type")
	}
	path := filepath.Join(dir, f.ID+".csv")
	if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
	return nil
}

// runOnFile runs TBF and the baselines once on a user-supplied workload.
func runOnFile(path string, eps float64, gridCols int, seed uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("instance: %d workers, %d tasks, region %v\n",
		len(inst.Workers), len(inst.Tasks), inst.Region)
	env, err := core.NewEnv(inst.Region, gridCols, gridCols, rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Printf("published HST: N=%d, D=%d, c=%d; ε=%g\n\n",
		env.Tree.NumPoints(), env.Tree.Depth(), env.Tree.Degree(), eps)
	fmt.Printf("%-8s %16s %10s %14s %12s\n", "alg", "total distance", "matched", "assign time", "memory (MB)")
	for _, alg := range []core.Algorithm{core.AlgLapGR, core.AlgLapHG, core.AlgTBF} {
		res, err := core.Run(alg, env, inst, core.Options{Epsilon: eps}, rng.New(seed).Derive(string(alg)))
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %16.1f %10d %14s %12.2f\n",
			res.Algorithm, res.TotalDistance, res.Matched,
			res.AssignTime.Round(time.Microsecond), float64(res.MemoryBytes)/1e6)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pombm-bench:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
