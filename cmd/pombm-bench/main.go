// pombm-bench reproduces the paper's tables and figures from the command
// line. Each experiment id names one panel (fig6a..fig6l, fig7a..fig7l,
// fig8a..fig8h, table1) or an ablation (abl-walk, abl-index, abl-grid,
// abl-cr, abl-em); see EXPERIMENTS.md for the index.
//
// Usage:
//
//	pombm-bench -list
//	pombm-bench -exp fig7a
//	pombm-bench -exp all -scale 0.2 -reps 3 -out results/
//	pombm-bench -exp fig7b -scale 0.05        # scalability sweep, reduced
//	pombm-bench -instance day.csv -eps 0.6    # your own workload file
//	pombm-bench -procs 4 -repeat 3 -exp fig7a # pinned, repeated for stable numbers
//	pombm-bench -enginebench -workers 16384 -tasks 8192 -goroutines 1,4,8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pombm/pombm/internal/benchfmt"
	"github.com/pombm/pombm/internal/core"
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/experiments"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		seed   = flag.Uint64("seed", 2020, "root random seed")
		reps   = flag.Int("reps", 5, "repetitions per sweep point (paper: 10)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes)")
		grid   = flag.Int("grid", 64, "predefined grid columns (N = grid²)")
		trie   = flag.Bool("trie", false, "use the O(D) trie matcher instead of the paper's scan")
		quick  = flag.Bool("quick", false, "shorthand for -scale 0.1 -reps 2 -grid 16")
		out    = flag.String("out", "", "directory for CSV output (optional)")
		format = flag.String("format", "text", "stdout format: text, csv, or markdown")
		file   = flag.String("instance", "", "run the distance pipelines on a workload CSV file instead of a registered experiment")
		eps    = flag.Float64("eps", 0.6, "privacy budget for -instance runs")
		par    = flag.Int("parallel", 0, "client-side obfuscation parallelism for -instance runs (0/1 = sequential)")
		useEng = flag.Bool("engine", false, "use the sharded concurrent engine matcher for -instance runs")
		svg    = flag.Bool("svg", false, "also write an SVG chart per experiment into -out")

		// Benchmark hygiene: pin the scheduler and repeat runs so numbers
		// are comparable across machines and PRs.
		procs  = flag.Int("procs", 0, "pin GOMAXPROCS to this value (0 = runtime default)")
		repeat = flag.Int("repeat", 1, "repeat each run this many times, reporting per-run wall time and the best")

		// Profilers, for digging into where a regression lives. Mutex and
		// block sampling carry overhead: profile runs are for attribution,
		// not for the numbers that land in a snapshot.
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mutexProf = flag.String("mutexprofile", "", "write a mutex-contention profile to this file (enables mutex sampling)")
		blockProf = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file (enables block sampling)")

		// Engine throughput benchmark (scan vs locked trie vs sharded engine).
		engBench   = flag.Bool("enginebench", false, "run the assignment-engine throughput benchmark and exit")
		engWorkers = flag.Int("workers", 16384, "enginebench: available workers per run")
		engTasks   = flag.Int("tasks", 8192, "enginebench: tasks assigned per run")
		engShards  = flag.Int("shards", 0, "engine shard count for -enginebench and -instance -engine runs (0 = engine default)")
		engGors    = flag.String("goroutines", "1,4,8", "enginebench: comma-separated goroutine counts")
		engJSON    = flag.String("json", "BENCH_engine.json", "enginebench/servebench: write machine-readable results to this file ('' disables; servebench merges into an existing snapshot)")

		// Serving benchmark lane (see serve.go): loopback HTTP throughput of
		// the single-server and coordinator request paths.
		srvBench   = flag.Bool("servebench", false, "run the loopback HTTP serving benchmark and exit")
		srvClients = flag.String("clients", "1,4,8", "servebench: comma-separated concurrent client counts")
		srvNodes   = flag.Int("nodes", 3, "servebench: backend node count for the cluster-submit rows")
		history    = flag.String("history", "", "append the -json snapshot (with git SHA + timestamp) to this append-only history file after the run")

		// Scale soak lane (see soak.go): million-worker populations, churn,
		// snapshot round trips, and rotation peak-memory accounting.
		soakName = flag.String("soak", "", "run the scale soak lane with this suite (smoke-100k, soak-1m, soak-2m, soak-5m, soak-10m) and exit")
		soakJSON = flag.String("soakjson", "", "soak: write the machine-readable soak report to this file ('' = SOAK_<suite>.json)")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	stopProfiles, err := startProfiles(*cpuProf, *mutexProf, *blockProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *soakName != "" {
		if err := runSoak(*soakName, *grid, *engShards, *seed, *soakJSON); err != nil {
			fatal(err)
		}
		return
	}

	if *engBench {
		if err := runEngineBench(*grid, *engWorkers, *engTasks, *engShards, *repeat, *engGors, *seed, *engJSON); err != nil {
			fatal(err)
		}
		if *history != "" {
			if err := appendBenchHistory(*history, *engJSON); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *srvBench {
		if err := runServeBench(*grid, *engWorkers, *engTasks, *engShards, *repeat, *srvClients, *seed, *srvNodes, *engJSON, *history); err != nil {
			fatal(err)
		}
		return
	}

	if *file != "" {
		opt := core.Options{Epsilon: *eps, Parallelism: *par, UseEngine: *useEng, Shards: *engShards}
		if err := runOnFile(*file, *grid, *seed, *repeat, opt); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-10s %s\n", id, title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "pombm-bench: -exp is required (use -list to see ids)")
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Reps: *reps, Scale: *scale, GridCols: *grid, UseTrie: *trie}
	if *quick {
		cfg.Scale, cfg.Reps, cfg.GridCols = 0.1, 2, 16
	}
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		fatal(err)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := runner.Run(id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		// Extra repeats re-run the same experiment for timing stability; the
		// figure from the first run is the one reported and written out.
		best := time.Since(start)
		for r := 1; r < *repeat; r++ {
			t0 := time.Now()
			if _, err := runner.Run(id); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		if *repeat > 1 {
			fmt.Fprintf(os.Stderr, "# %s best of %d runs: %v\n", id, *repeat, best.Round(time.Millisecond))
		}
		switch *format {
		case "csv":
			fmt.Print(fig.CSV())
		case "markdown":
			fmt.Printf("### %s — %s\n\n%s\n", fig.ID, fig.Title, fig.Markdown())
		default:
			fmt.Println(fig.Render())
		}
		fmt.Fprintf(os.Stderr, "# %s finished in %v\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			if err := writeCSV(*out, fig); err != nil {
				fatal(err)
			}
			if *svg {
				path := filepath.Join(*out, fig.ID+".svg")
				if err := os.WriteFile(path, []byte(fig.SVG()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
			}
		}
	}
}

func writeCSV(dir string, fig interface {
	CSV() string
}) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, ok := fig.(*experiments.Figure)
	if !ok {
		return fmt.Errorf("pombm-bench: unexpected figure type")
	}
	path := filepath.Join(dir, f.ID+".csv")
	if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
	return nil
}

// runOnFile runs TBF and the baselines on a user-supplied workload,
// keeping the fastest of repeat runs per algorithm for stable numbers.
func runOnFile(path string, gridCols int, seed uint64, repeat int, opt core.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("instance: %d workers, %d tasks, region %v\n",
		len(inst.Workers), len(inst.Tasks), inst.Region)
	env, err := core.NewEnv(inst.Region, gridCols, gridCols, rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Printf("published HST: N=%d, D=%d, c=%d; ε=%g\n\n",
		env.Tree.NumPoints(), env.Tree.Depth(), env.Tree.Degree(), opt.Epsilon)
	fmt.Printf("%-8s %16s %10s %14s %12s %12s %12s\n",
		"alg", "total distance", "matched", "assign time", "ns/op", "tasks/sec", "memory (MB)")
	for _, alg := range []core.Algorithm{core.AlgLapGR, core.AlgLapHG, core.AlgTBF} {
		var res *core.Result
		for r := 0; r < repeat; r++ {
			rr, err := core.Run(alg, env, inst, opt, rng.New(seed).Derive(string(alg)))
			if err != nil {
				return err
			}
			if res == nil || rr.AssignTime < res.AssignTime {
				res = rr
			}
		}
		// AssignTime accumulates over every submitted task (failed assigns
		// included), so per-op figures divide by submissions, not matches.
		nsPerOp, tasksPerSec := throughput(len(inst.Tasks), res.AssignTime)
		fmt.Printf("%-8s %16.1f %10d %14s %12.0f %12.0f %12.2f\n",
			res.Algorithm, res.TotalDistance, res.Matched,
			res.AssignTime.Round(time.Microsecond), nsPerOp, tasksPerSec,
			float64(res.MemoryBytes)/1e6)
	}
	return nil
}

// throughput converts (tasks, total assignment time) into ns/op and
// tasks/sec; zero-safe.
func throughput(tasks int, d time.Duration) (nsPerOp, tasksPerSec float64) {
	if tasks == 0 || d <= 0 {
		return 0, 0
	}
	return float64(d.Nanoseconds()) / float64(tasks), float64(tasks) / d.Seconds()
}

// gitSHA resolves the current revision: the VCS stamp baked into the
// binary when available, the working tree's HEAD otherwise.
func gitSHA() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return "unknown"
}

// runEngineBench measures online assignment throughput of the three
// HST-Greedy implementations — the paper's O(D·n) scan, the single-lock
// O(D) trie, and the sharded concurrent engine — at several goroutine
// counts. Workers and tasks are uniformly random leaves of a grid HST. The
// scan baseline runs only single-threaded (it is not concurrency-safe and
// exists as the complexity reference). With jsonPath non-empty the results
// are additionally written as machine-readable JSON.
func runEngineBench(gridCols, workers, tasks, shards, repeat int, goroutines string, seed uint64, jsonPath string) error {
	gors, err := parseInts(goroutines)
	if err != nil {
		return fmt.Errorf("-goroutines: %w", err)
	}
	grid, err := geo.NewGrid(workload.SyntheticRegion, gridCols, gridCols)
	if err != nil {
		return err
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		return err
	}
	src := rng.New(seed).Derive("enginebench")
	randCodes := func(n int, s *rng.Source) []hst.Code {
		out := make([]hst.Code, n)
		for i := range out {
			b := make([]byte, tree.Depth())
			for j := range b {
				b[j] = byte(s.Intn(tree.Degree()))
			}
			out[i] = hst.Code(b)
		}
		return out
	}
	workerCodes := randCodes(workers, src.Derive("workers"))
	taskCodes := randCodes(tasks, src.Derive("tasks"))

	baseProcs := runtime.GOMAXPROCS(0)
	fmt.Printf("enginebench: N=%d D=%d c=%d, %d workers, %d tasks, GOMAXPROCS=%d, NumCPU=%d, best of %d\n\n",
		tree.NumPoints(), tree.Depth(), tree.Degree(), workers, tasks, baseProcs, runtime.NumCPU(), repeat)
	fmt.Printf("%-16s %11s %9s %6s %12s %12s %14s\n", "impl", "goroutines", "shards", "procs", "ns/op", "allocs/op", "tasks/sec")

	out := benchfmt.Report{
		GitSHA:     gitSHA(),
		GOMAXPROCS: baseProcs,
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		Tasks:      tasks,
		Repeat:     repeat,
	}

	// setup builds the worker pool (untimed); the returned run assigns the
	// task batch and is the only region measured. Heap allocations are
	// sampled around the best-timed region via MemStats deltas. policy
	// tags the rows produced by a non-default assignment policy.
	//
	// A row claiming g goroutines is only a parallel measurement when g
	// cores are actually schedulable, so GOMAXPROCS is raised to g for the
	// row when the machine has the cores, and the row is marked capped
	// when it does not — a capped multi-goroutine row measures scheduler
	// interleaving, and downstream tooling must not read it as a scaling
	// number.
	report := func(impl string, g, sh int, policy string, setup func() (func() error, error)) error {
		rowProcs := baseProcs
		if g > rowProcs && runtime.NumCPU() > rowProcs {
			rowProcs = min(g, runtime.NumCPU())
		}
		// A -procs pin can push GOMAXPROCS past the physical core count;
		// oversubscription is still not parallelism, so capped considers
		// both.
		capped := g > min(rowProcs, runtime.NumCPU())
		if rowProcs != baseProcs {
			runtime.GOMAXPROCS(rowProcs)
			defer runtime.GOMAXPROCS(baseProcs)
		}
		best := time.Duration(0)
		allocs := 0.0
		var ms0, ms1 runtime.MemStats
		for r := 0; r < repeat; r++ {
			run, err := setup()
			if err != nil {
				return err
			}
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			if err := run(); err != nil {
				return err
			}
			d := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			if best == 0 || d < best {
				best = d
				allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(tasks)
			}
		}
		nsPerOp, tasksPerSec := throughput(tasks, best)
		shCol := "-"
		if sh > 0 {
			shCol = strconv.Itoa(sh)
		}
		note := ""
		if capped {
			note = "  (capped)"
		}
		fmt.Printf("%-16s %11d %9s %6d %12.0f %12.2f %14.0f%s\n",
			impl, g, shCol, rowProcs, nsPerOp, allocs, tasksPerSec, note)
		out.Results = append(out.Results, benchfmt.Record{
			Benchmark:   fmt.Sprintf("%s/goroutines=%d", impl, g),
			Goroutines:  g,
			Shards:      sh,
			Policy:      policy,
			GOMAXPROCS:  rowProcs,
			Capped:      capped,
			NsPerOp:     nsPerOp,
			AllocsPerOp: allocs,
			TasksPerSec: tasksPerSec,
		})
		return nil
	}

	// Paper-faithful scan, single-threaded reference.
	if err := report("scan", 1, 0, "", func() (func() error, error) {
		g := match.NewHSTGreedyScan(tree, workerCodes)
		return func() error {
			for _, t := range taskCodes {
				g.Assign(t)
			}
			return nil
		}, nil
	}); err != nil {
		return err
	}

	clamp, err := engine.New(tree, shards)
	if err != nil {
		return err
	}
	shardCount := clamp.Shards()

	for _, g := range gors {
		// Single global lock around the O(D) trie: the old server path.
		if err := report("trie-lock", g, 0, "", func() (func() error, error) {
			idx := hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
			for i, c := range workerCodes {
				if err := idx.Insert(c, i); err != nil {
					return nil, err
				}
			}
			var mu sync.Mutex
			return func() error {
				var wg sync.WaitGroup
				for k := 0; k < g; k++ {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						for i := k; i < len(taskCodes); i += g {
							mu.Lock()
							idx.PopNearest(taskCodes[i])
							mu.Unlock()
						}
					}(k)
				}
				wg.Wait()
				return nil
			}, nil
		}); err != nil {
			return err
		}
		// Sharded engine, batch API split across goroutines.
		if err := report("engine", g, shardCount, "", func() (func() error, error) {
			e, err := engine.New(tree, shards)
			if err != nil {
				return nil, err
			}
			for i, c := range workerCodes {
				if err := e.Insert(c, i); err != nil {
					return nil, err
				}
			}
			return func() error {
				var wg sync.WaitGroup
				chunk := (len(taskCodes) + g - 1) / g
				for k := 0; k < g; k++ {
					lo := k * chunk
					hi := min(lo+chunk, len(taskCodes))
					if lo >= hi {
						break
					}
					wg.Add(1)
					go func(batch []hst.Code) {
						defer wg.Done()
						e.AssignBatch(batch)
					}(taskCodes[lo:hi])
				}
				wg.Wait()
				return nil
			}, nil
		}); err != nil {
			return err
		}
	}
	// Assignment-policy rows: the capacitated sequential rule (one slot
	// serving four tasks) and the batch-optimal window solver (windows of
	// 256 tasks), each at every goroutine count. Batch-optimal locks the
	// whole shard set per window, so concurrent submitters serialize on the
	// solve itself; the multi-goroutine rows measure that hand-off cost
	// plus the per-shard parallel candidate mining inside each window.
	for _, g := range gors {
		if err := report("policy-capacity", g, shardCount, "capacity-greedy", func() (func() error, error) {
			e, err := engine.NewWithOptions(tree, shards, engine.WithPolicy(engine.CapacityGreedy()))
			if err != nil {
				return nil, err
			}
			for i, c := range workerCodes {
				if err := e.InsertCapEpoch(c, i, 4, 0); err != nil {
					return nil, err
				}
			}
			return func() error {
				var wg sync.WaitGroup
				chunk := (len(taskCodes) + g - 1) / g
				for k := 0; k < g; k++ {
					lo := k * chunk
					hi := min(lo+chunk, len(taskCodes))
					if lo >= hi {
						break
					}
					wg.Add(1)
					go func(batch []hst.Code) {
						defer wg.Done()
						e.AssignBatch(batch)
					}(taskCodes[lo:hi])
				}
				wg.Wait()
				return nil
			}, nil
		}); err != nil {
			return err
		}
	}
	for _, g := range gors {
		if err := report("policy-batchopt", g, shardCount, "batch-optimal:k=8", func() (func() error, error) {
			e, err := engine.NewWithOptions(tree, shards, engine.WithPolicy(engine.BatchOptimal(0)))
			if err != nil {
				return nil, err
			}
			for i, c := range workerCodes {
				if err := e.Insert(c, i); err != nil {
					return nil, err
				}
			}
			return func() error {
				const window = 256
				var wg sync.WaitGroup
				chunk := (len(taskCodes) + g - 1) / g
				for k := 0; k < g; k++ {
					lo := k * chunk
					hi := min(lo+chunk, len(taskCodes))
					if lo >= hi {
						break
					}
					wg.Add(1)
					go func(batch []hst.Code) {
						defer wg.Done()
						for lo := 0; lo < len(batch); lo += window {
							e.AssignBatch(batch[lo:min(lo+window, len(batch))])
						}
					}(taskCodes[lo:hi])
				}
				wg.Wait()
				return nil
			}, nil
		}); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", jsonPath)
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("goroutine count %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no goroutine counts")
	}
	return out, nil
}

// startProfiles turns on the requested runtime profilers and returns a
// stop func that writes every profile out; call it once, after the
// measured work. Mutex and block sampling are enabled only when their
// output file is requested, so plain benchmark runs stay overhead-free.
func startProfiles(cpu, mutex, block string) (stop func(), err error) {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "# wrote %s\n", cpu)
		})
	}
	dump := func(profile, path string) func() {
		return func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pombm-bench:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "pombm-bench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
		}
	}
	if mutex != "" {
		// Sample roughly one in five contended mutex events: cheap enough
		// to leave on for a whole bench run, dense enough to rank the
		// engine's shard locks.
		runtime.SetMutexProfileFraction(5)
		stops = append(stops, dump("mutex", mutex))
	}
	if block != "" {
		// One sample per ~µs of blocking: catches lock convoys and
		// channel waits without drowning the run in samples.
		runtime.SetBlockProfileRate(1000)
		stops = append(stops, dump("block", block))
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pombm-bench:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
