package main

// The serving benchmark lane: where -enginebench measures the bare
// assignment engine, -servebench measures what a requester actually
// experiences — the full request path from platform.Client through loopback
// HTTP into platform.Handler and the engine behind it, and (for the
// cluster-* rows) through a coordinator fanning every routed operation out
// to node backends over their own loopback connections. Rows land in the
// same BENCH_engine.json snapshot as the engine rows (merged, not
// overwritten) so the benchdiff gate covers the wire path too.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	"github.com/pombm/pombm/internal/benchfmt"
	"github.com/pombm/pombm/internal/cluster"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

const serveEpsilon = 0.6

// geoGrid builds the synthetic-region grid the bench lanes share.
func geoGrid(gridCols int) (*geo.Grid, error) {
	return geo.NewGrid(workload.SyntheticRegion, gridCols, gridCols)
}

// appendBenchHistory stamps the snapshot at jsonPath with the current
// revision and time and appends it as one line of the append-only bench
// trajectory (see benchfmt.AppendHistory).
func appendBenchHistory(historyPath, jsonPath string) error {
	if jsonPath == "" {
		return fmt.Errorf("-history needs -json (the snapshot is what gets appended)")
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		return err
	}
	var rep benchfmt.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %w", jsonPath, err)
	}
	if err := benchfmt.AppendHistory(historyPath, benchfmt.HistoryEntry{
		GitSHA:   gitSHA(),
		UnixTime: time.Now().Unix(),
		Report:   &rep,
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# appended %s snapshot to %s\n", jsonPath, historyPath)
	return nil
}

// randLeafCodes draws n uniformly random leaf codes of the tree.
func randLeafCodes(tree *hst.Tree, n int, s *rng.Source) []hst.Code {
	out := make([]hst.Code, n)
	for i := range out {
		b := make([]byte, tree.Depth())
		for j := range b {
			b[j] = byte(s.Intn(tree.Degree()))
		}
		out[i] = hst.Code(b)
	}
	return out
}

// loopbackServer mounts a handler on a fresh loopback listener and returns
// its base URL and a shutdown func.
func loopbackServer(h http.Handler) (baseURL string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// runServeBench measures serving throughput over loopback HTTP at several
// client concurrencies. Two lanes: serve-submit drives one platform.Server
// directly; cluster-submit drives a coordinator over `nodes` HTTP node
// backends. Workers are registered during (untimed) setup; the measured
// region is the concurrent Submit stream, so ns/op is end-to-end request
// latency and allocs/op is the whole process's (client + server + backend)
// allocation bill per request.
func runServeBench(gridCols, workers, tasks, shards, repeat int, clientsCSV string, seed uint64, nodes int, jsonPath, historyPath string) error {
	clientCounts, err := parseInts(clientsCSV)
	if err != nil {
		return fmt.Errorf("-clients: %w", err)
	}
	if nodes < 1 {
		return fmt.Errorf("-nodes: need at least 1, got %d", nodes)
	}
	grid, err := geoGrid(gridCols)
	if err != nil {
		return err
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		return err
	}
	src := rng.New(seed).Derive("servebench")
	workerCodes := randLeafCodes(tree, workers, src.Derive("workers"))
	taskCodes := randLeafCodes(tree, tasks, src.Derive("tasks"))
	workerIDs := make([]string, workers)
	for i := range workerIDs {
		workerIDs[i] = "w" + strconv.Itoa(i)
	}
	taskIDs := make([]string, tasks)
	for i := range taskIDs {
		taskIDs[i] = "t" + strconv.Itoa(i)
	}

	baseProcs := runtime.GOMAXPROCS(0)
	fmt.Printf("servebench: N=%d D=%d c=%d, %d workers, %d tasks, %d cluster nodes, GOMAXPROCS=%d, NumCPU=%d, best of %d\n\n",
		tree.NumPoints(), tree.Depth(), tree.Degree(), workers, tasks, nodes, baseProcs, runtime.NumCPU(), repeat)
	fmt.Printf("%-16s %9s %6s %12s %12s %14s\n", "path", "clients", "procs", "ns/op", "allocs/op", "ops/sec")

	var rows []benchfmt.Record

	// report runs one row: setup builds the serving stack and returns the
	// measured run plus a teardown. Fresh stack per repetition, so every
	// run starts from a full worker pool and a cold connection pool — the
	// steady-state reuse inside one run is exactly what is being measured.
	report := func(impl string, c int, setup func(c int) (run func() error, teardown func(), err error)) error {
		rowProcs := baseProcs
		if c > rowProcs && runtime.NumCPU() > rowProcs {
			rowProcs = min(c, runtime.NumCPU())
		}
		capped := c > min(rowProcs, runtime.NumCPU())
		if rowProcs != baseProcs {
			runtime.GOMAXPROCS(rowProcs)
			defer runtime.GOMAXPROCS(baseProcs)
		}
		best := time.Duration(0)
		allocs := 0.0
		var ms0, ms1 runtime.MemStats
		for r := 0; r < repeat; r++ {
			run, teardown, err := setup(c)
			if err != nil {
				return err
			}
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			err = run()
			d := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			teardown()
			if err != nil {
				return err
			}
			if best == 0 || d < best {
				best = d
				allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(tasks)
			}
		}
		nsPerOp, opsPerSec := throughput(tasks, best)
		note := ""
		if capped {
			note = "  (capped)"
		}
		fmt.Printf("%-16s %9d %6d %12.0f %12.2f %14.0f%s\n", impl, c, rowProcs, nsPerOp, allocs, opsPerSec, note)
		rows = append(rows, benchfmt.Record{
			Benchmark:   fmt.Sprintf("%s/clients=%d", impl, c),
			Goroutines:  c,
			GOMAXPROCS:  rowProcs,
			Capped:      capped,
			NsPerOp:     nsPerOp,
			AllocsPerOp: allocs,
			TasksPerSec: opsPerSec,
		})
		return nil
	}

	// submitRun splits the task stream across c clients, each driving its
	// chunk through its own platform.Client against baseURL.
	submitRun := func(baseURL string, c int) (func() error, error) {
		cls := make([]*platform.Client, c)
		for i := range cls {
			cl, err := platform.NewClient(baseURL)
			if err != nil {
				return nil, err
			}
			cls[i] = cl
		}
		return func() error {
			errc := make(chan error, c)
			chunk := (len(taskCodes) + c - 1) / c
			started := 0
			for k := 0; k < c; k++ {
				lo := k * chunk
				hi := min(lo+chunk, len(taskCodes))
				if lo >= hi {
					break
				}
				started++
				go func(cl *platform.Client, lo, hi int) {
					for i := lo; i < hi; i++ {
						resp := cl.Submit(platform.TaskRequest{TaskID: taskIDs[i], Code: []byte(taskCodes[i])})
						if resp.Err != nil {
							errc <- fmt.Errorf("submit %s: %s", taskIDs[i], resp.Err.Message)
							return
						}
					}
					errc <- nil
				}(cls[k], lo, hi)
			}
			for k := 0; k < started; k++ {
				if err := <-errc; err != nil {
					return err
				}
			}
			return nil
		}, nil
	}

	registerAll := func(srv *platform.Server) error {
		for i := range workerCodes {
			if resp := srv.Register(platform.RegisterRequest{WorkerID: workerIDs[i], Code: []byte(workerCodes[i])}); !resp.OK {
				return fmt.Errorf("register %s: %s", workerIDs[i], resp.Reason)
			}
		}
		return nil
	}

	// Single-server lane.
	serveSetup := func(c int) (func() error, func(), error) {
		opts := []platform.ServerOption{platform.WithTree(tree)}
		if shards > 0 {
			opts = append(opts, platform.WithShards(shards))
		}
		srv, err := platform.NewServer(workload.SyntheticRegion, gridCols, gridCols, serveEpsilon, seed, opts...)
		if err != nil {
			return nil, nil, err
		}
		if err := registerAll(srv); err != nil {
			return nil, nil, err
		}
		baseURL, stop, err := loopbackServer(platform.Handler(srv))
		if err != nil {
			return nil, nil, err
		}
		run, err := submitRun(baseURL, c)
		if err != nil {
			stop()
			return nil, nil, err
		}
		return run, stop, nil
	}
	for _, c := range clientCounts {
		if err := report("serve-submit", c, serveSetup); err != nil {
			return err
		}
	}

	// Cluster lane: a coordinator over `nodes` HTTP node backends, each on
	// its own loopback listener — every routed operation pays a real second
	// HTTP hop, exactly as a deployment would.
	clusterSetup := func(c int) (func() error, func(), error) {
		var stops []func()
		teardown := func() {
			for i := len(stops) - 1; i >= 0; i-- {
				stops[i]()
			}
		}
		conns := make([]cluster.NodeConn, nodes)
		for i := range conns {
			baseURL, stop, err := loopbackServer(cluster.NodeHandler(cluster.NewNode()))
			if err != nil {
				teardown()
				return nil, nil, err
			}
			stops = append(stops, stop)
			conns[i] = cluster.DialNode(baseURL)
		}
		coord, err := cluster.New(cluster.Config{
			Region: workload.SyntheticRegion, Cols: gridCols, Rows: gridCols,
			Epsilon: serveEpsilon, Seed: seed,
			Nodes: conns, Shards: shards, Tree: tree,
		})
		if err != nil {
			teardown()
			return nil, nil, err
		}
		if err := registerAll(coord.Server()); err != nil {
			teardown()
			return nil, nil, err
		}
		baseURL, stop, err := loopbackServer(coord.Handler())
		if err != nil {
			teardown()
			return nil, nil, err
		}
		stops = append(stops, stop)
		run, err := submitRun(baseURL, c)
		if err != nil {
			teardown()
			return nil, nil, err
		}
		return run, teardown, nil
	}
	for _, c := range clientCounts {
		if err := report("cluster-submit", c, clusterSetup); err != nil {
			return err
		}
	}

	if jsonPath != "" {
		if err := mergeBenchJSON(jsonPath, rows, workers, tasks, repeat); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# merged %d serving rows into %s\n", len(rows), jsonPath)
	}
	if historyPath != "" {
		if err := appendBenchHistory(historyPath, jsonPath); err != nil {
			return err
		}
	}
	return nil
}

// mergeBenchJSON folds fresh rows into the snapshot at path, replacing rows
// with the same benchmark name and appending new ones, so the engine lane
// and the serving lane share one gated file. A snapshot produced under a
// different workload is not merged into (benchdiff would refuse the mix);
// it is replaced.
func mergeBenchJSON(path string, fresh []benchfmt.Record, workers, tasks, repeat int) error {
	out := benchfmt.Report{
		GitSHA:     gitSHA(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		Tasks:      tasks,
		Repeat:     repeat,
	}
	if blob, err := os.ReadFile(path); err == nil {
		var old benchfmt.Report
		if json.Unmarshal(blob, &old) == nil && old.Workers == workers && old.Tasks == tasks {
			out.Results = old.Results
		}
	}
	for _, r := range fresh {
		replaced := false
		for i := range out.Results {
			if out.Results[i].Benchmark == r.Benchmark {
				out.Results[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			out.Results = append(out.Results, r)
		}
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
