package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/benchfmt"
)

func rec(ns, allocs float64) benchfmt.Record {
	return benchfmt.Record{Benchmark: "engine/goroutines=1", NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	if fails := compare(rec(700, 0.01), rec(850, 0.02), 0, 0, 0.30, 0.05); len(fails) != 0 {
		t.Errorf("21%% regression within a 30%% budget failed: %v", fails)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	fails := compare(rec(700, 0.01), rec(1000, 0.01), 0, 0, 0.30, 0.05)
	if len(fails) != 1 || !strings.Contains(fails[0], "ns/op") {
		t.Errorf("43%% regression not caught: %v", fails)
	}
}

func TestCompareAllocRiseFails(t *testing.T) {
	fails := compare(rec(700, 0.01), rec(700, 0.5), 0, 0, 0.30, 0.05)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Errorf("alloc rise not caught: %v", fails)
	}
}

func TestCompareNormalizedAbsorbsHardwareDelta(t *testing.T) {
	// The fresh machine is 2× slower across the board: raw ns/op doubles
	// (a false regression), but dividing by the scan yardstick on each
	// side cancels the hardware difference.
	if fails := compare(rec(700, 0), rec(1400, 0), 80000, 160000, 0.30, 0.05); len(fails) != 0 {
		t.Errorf("normalization did not absorb a uniform slowdown: %v", fails)
	}
	// A genuine 2× regression of the engine alone still fails normalized.
	if fails := compare(rec(700, 0), rec(1400, 0), 80000, 80000, 0.30, 0.05); len(fails) != 1 {
		t.Errorf("normalized genuine regression not caught: %v", fails)
	}
}

// TestGateEndToEnd runs the built gate against the checked-in baseline
// compared with itself (trivially clean) and with a doctored regression.
func TestGateEndToEnd(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_engine.json")
	if _, err := os.Stat(baseline); err != nil {
		t.Skipf("baseline snapshot not present: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "benchdiff")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "-base", baseline, "-new", baseline, "-normalize", "scan/goroutines=1")
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, out)
	}

	blob, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// Make the engine benchmark 10× slower in the doctored snapshot.
	doctored := strings.Replace(string(blob), `"ns_per_op": 741`, `"ns_per_op": 7410`, 1)
	if doctored == string(blob) {
		t.Skip("baseline layout changed; update the doctored substitution")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	gate := exec.Command(bin, "-base", baseline, "-new", bad, "-normalize", "scan/goroutines=1")
	out, err := gate.CombinedOutput()
	if err == nil {
		t.Fatalf("10× regression passed the gate:\n%s", out)
	}
	if !strings.Contains(string(out), "FAIL") {
		t.Fatalf("gate failed without explanation:\n%s", out)
	}

	// A snapshot of a different workload must be refused outright: the scan
	// yardstick absorbs hardware deltas, not pool-size deltas.
	mismatched := strings.Replace(string(blob), `"workers": 16384`, `"workers": 4000`, 1)
	if mismatched == string(blob) {
		t.Skip("baseline layout changed; update the workload substitution")
	}
	mis := filepath.Join(t.TempDir(), "mismatch.json")
	if err := os.WriteFile(mis, []byte(mismatched), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-base", baseline, "-new", mis).CombinedOutput()
	if err == nil {
		t.Fatalf("workload mismatch passed the gate:\n%s", out)
	}
	if !strings.Contains(string(out), "workload mismatch") {
		t.Fatalf("mismatch refused without explanation:\n%s", out)
	}
}
