package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/benchfmt"
)

func rec(ns, allocs float64) benchfmt.Record {
	return benchfmt.Record{Benchmark: "engine/goroutines=1", NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	if fails := compare(rec(700, 0.01), rec(850, 0.02), 0, 0, 0.30, 0.05); len(fails) != 0 {
		t.Errorf("21%% regression within a 30%% budget failed: %v", fails)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	fails := compare(rec(700, 0.01), rec(1000, 0.01), 0, 0, 0.30, 0.05)
	if len(fails) != 1 || !strings.Contains(fails[0], "ns/op") {
		t.Errorf("43%% regression not caught: %v", fails)
	}
}

func TestCompareAllocRiseFails(t *testing.T) {
	fails := compare(rec(700, 0.01), rec(700, 0.5), 0, 0, 0.30, 0.05)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Errorf("alloc rise not caught: %v", fails)
	}
}

func TestCompareNormalizedAbsorbsHardwareDelta(t *testing.T) {
	// The fresh machine is 2× slower across the board: raw ns/op doubles
	// (a false regression), but dividing by the scan yardstick on each
	// side cancels the hardware difference.
	if fails := compare(rec(700, 0), rec(1400, 0), 80000, 160000, 0.30, 0.05); len(fails) != 0 {
		t.Errorf("normalization did not absorb a uniform slowdown: %v", fails)
	}
	// A genuine 2× regression of the engine alone still fails normalized.
	if fails := compare(rec(700, 0), rec(1400, 0), 80000, 80000, 0.30, 0.05); len(fails) != 1 {
		t.Errorf("normalized genuine regression not caught: %v", fails)
	}
}

func TestCappedRowRefusedWithoutEscape(t *testing.T) {
	honest := benchfmt.Record{Benchmark: "engine/goroutines=8", Goroutines: 8, GOMAXPROCS: 8}
	capped := benchfmt.Record{Benchmark: "engine/goroutines=8", Goroutines: 8, GOMAXPROCS: 4, Capped: true}
	under := benchfmt.Record{Benchmark: "engine/goroutines=8", Goroutines: 8, GOMAXPROCS: 2}
	legacy := benchfmt.Record{Benchmark: "engine/goroutines=8", Goroutines: 8} // pre-gomaxprocs snapshot

	if skip, err := cappedRow(honest, honest, false); err != nil || skip != "" {
		t.Errorf("honest pair flagged: skip=%q err=%v", skip, err)
	}
	if skip, err := cappedRow(legacy, legacy, false); err != nil || skip != "" {
		t.Errorf("legacy pair without per-row procs flagged: skip=%q err=%v", skip, err)
	}
	for _, pair := range [][2]benchfmt.Record{{honest, capped}, {capped, honest}, {under, under}} {
		if _, err := cappedRow(pair[0], pair[1], false); err == nil {
			t.Errorf("capped pair %+v not refused", pair)
		}
		skip, err := cappedRow(pair[0], pair[1], true)
		if err != nil || !strings.Contains(skip, "skipping") {
			t.Errorf("-allow-capped did not downgrade to a skip: skip=%q err=%v", skip, err)
		}
	}
}

// TestGateEndToEnd runs the built gate against the checked-in baseline
// compared with itself (trivially clean) and with a doctored regression.
func TestGateEndToEnd(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_engine.json")
	if _, err := os.Stat(baseline); err != nil {
		t.Skipf("baseline snapshot not present: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "benchdiff")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// The full gate list CI runs: the greedy engine, the extended-schema
	// policy rows, and the single-client serving rows.
	gated := "engine/goroutines=1,policy-capacity/goroutines=1,policy-batchopt/goroutines=1,serve-submit/clients=1,cluster-submit/clients=1"
	clean := exec.Command(bin, "-base", baseline, "-new", baseline,
		"-bench", gated, "-normalize", "scan/goroutines=1")
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, out)
	}

	blob, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// Make the gated engine benchmark 10× slower in a doctored snapshot.
	doctor := func(t *testing.T, bench string) string {
		t.Helper()
		var r benchfmt.Report
		if err := json.Unmarshal(blob, &r); err != nil {
			t.Fatal(err)
		}
		found := false
		for i := range r.Results {
			if r.Results[i].Benchmark == bench {
				r.Results[i].NsPerOp *= 10
				found = true
			}
		}
		if !found {
			t.Fatalf("baseline lacks %q", bench)
		}
		out, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "doctored.json")
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for _, bench := range []string{"engine/goroutines=1", "policy-batchopt/goroutines=1", "serve-submit/clients=1", "cluster-submit/clients=1"} {
		bad := doctor(t, bench)
		gate := exec.Command(bin, "-base", baseline, "-new", bad,
			"-bench", gated, "-normalize", "scan/goroutines=1")
		out, err := gate.CombinedOutput()
		if err == nil {
			t.Fatalf("10× regression of %s passed the gate:\n%s", bench, out)
		}
		if !strings.Contains(string(out), "FAIL") {
			t.Fatalf("gate failed without explanation:\n%s", out)
		}
	}

	// A gated row marked capped must be refused, and -allow-capped must
	// downgrade the refusal to a warn-and-skip.
	{
		var r benchfmt.Report
		if err := json.Unmarshal(blob, &r); err != nil {
			t.Fatal(err)
		}
		for i := range r.Results {
			if r.Results[i].Benchmark == "engine/goroutines=1" {
				r.Results[i].Capped = true
			}
		}
		out, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		capped := filepath.Join(t.TempDir(), "capped.json")
		if err := os.WriteFile(capped, out, 0o644); err != nil {
			t.Fatal(err)
		}
		refuse := exec.Command(bin, "-base", baseline, "-new", capped, "-bench", gated,
			"-normalize", "scan/goroutines=1")
		if msg, err := refuse.CombinedOutput(); err == nil {
			t.Fatalf("capped gated row passed without -allow-capped:\n%s", msg)
		}
		allow := exec.Command(bin, "-base", baseline, "-new", capped, "-bench", gated,
			"-normalize", "scan/goroutines=1", "-allow-capped")
		msg, err := allow.CombinedOutput()
		if err != nil {
			t.Fatalf("-allow-capped still refused: %v\n%s", err, msg)
		}
		if !strings.Contains(string(msg), "WARN") {
			t.Fatalf("-allow-capped skipped silently:\n%s", msg)
		}
	}

	// A snapshot of a different workload must be refused outright: the scan
	// yardstick absorbs hardware deltas, not pool-size deltas.
	mismatched := strings.Replace(string(blob), `"workers": 16384`, `"workers": 4000`, 1)
	if mismatched == string(blob) {
		t.Skip("baseline layout changed; update the workload substitution")
	}
	mis := filepath.Join(t.TempDir(), "mismatch.json")
	if err := os.WriteFile(mis, []byte(mismatched), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-base", baseline, "-new", mis).CombinedOutput()
	if err == nil {
		t.Fatalf("workload mismatch passed the gate:\n%s", out)
	}
	if !strings.Contains(string(out), "workload mismatch") {
		t.Fatalf("mismatch refused without explanation:\n%s", out)
	}
}

// TestNormalizerMissingOrZeroFatal pins the yardstick contract: a missing
// normalizer row and a zero (or negative) ns/op both fail loudly instead
// of silently disabling normalization.
func TestNormalizerMissingOrZeroFatal(t *testing.T) {
	report := &benchfmt.Report{Results: []benchfmt.Record{
		{Benchmark: "scan/goroutines=1", NsPerOp: 80000},
		{Benchmark: "scan/goroutines=2", NsPerOp: 0},
		{Benchmark: "scan/goroutines=4", NsPerOp: -5},
	}}
	ns, err := normalizerNs(report, "scan/goroutines=1", "BENCH.json")
	if err != nil || ns != 80000 {
		t.Fatalf("healthy normalizer: ns=%g err=%v", ns, err)
	}
	if _, err := normalizerNs(report, "absent/goroutines=1", "BENCH.json"); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing normalizer row not fatal: %v", err)
	}
	for _, name := range []string{"scan/goroutines=2", "scan/goroutines=4"} {
		if _, err := normalizerNs(report, name, "BENCH.json"); err == nil ||
			!strings.Contains(err.Error(), "cannot normalize") {
			t.Fatalf("%s: non-positive normalizer not fatal: %v", name, err)
		}
	}
}
