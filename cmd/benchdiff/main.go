// benchdiff is the bench-regression gate: it compares a freshly produced
// engine benchmark snapshot (BENCH_engine.ci.json) against the checked-in
// baseline (BENCH_engine.json) and exits non-zero when the hot path
// regressed.
//
// Two checks run per gated benchmark:
//
//   - ns/op may not regress by more than -max-regress (default 30%).
//     Because CI machines differ from the machine that produced the
//     baseline, -normalize names a benchmark whose ns/op divides both
//     sides first (the single-threaded scan is a good hardware yardstick:
//     it exercises the same memory system without the code under test's
//     optimisations).
//   - allocs/op may not rise above the baseline by more than -alloc-slack
//     (default 0.05): the engine's steady state is allocation-free, and a
//     new allocation on the hot path shows up here long before it shows up
//     in timings.
//
// A gated row that ran with fewer schedulable cores than goroutines
// (capped, or per-row gomaxprocs < goroutines) is not a parallel
// measurement at all — comparing it would gate scheduler interleaving, not
// throughput. Such rows are refused outright; -allow-capped downgrades the
// refusal to a warning and skips the row, for runners with fewer cores
// than the widest gated fan-out.
//
// Usage:
//
//	benchdiff -base BENCH_engine.json -new BENCH_engine.ci.json
//	benchdiff -base ... -new ... -bench engine/goroutines=1 -normalize scan/goroutines=1
//	benchdiff -base ... -new ... -bench engine/goroutines=8 -allow-capped
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pombm/pombm/internal/benchfmt"
)

// compare gates one benchmark and returns the failures found. The
// normalizer ns/op values divide both sides when positive.
func compare(base, fresh benchfmt.Record, baseNorm, freshNorm float64, maxRegress, allocSlack float64) []string {
	var fails []string
	baseNs, freshNs := base.NsPerOp, fresh.NsPerOp
	unit := "ns/op"
	if baseNorm > 0 && freshNorm > 0 {
		baseNs /= baseNorm
		freshNs /= freshNorm
		unit = "normalized ns/op"
	}
	if baseNs > 0 && freshNs > baseNs*(1+maxRegress) {
		fails = append(fails, fmt.Sprintf("%s: %s %.4g vs baseline %.4g (+%.1f%%, limit +%.0f%%)",
			base.Benchmark, unit, freshNs, baseNs, 100*(freshNs/baseNs-1), 100*maxRegress))
	}
	if fresh.AllocsPerOp > base.AllocsPerOp+allocSlack {
		fails = append(fails, fmt.Sprintf("%s: allocs/op %.4f vs pinned %.4f (slack %.2f)",
			base.Benchmark, fresh.AllocsPerOp, base.AllocsPerOp, allocSlack))
	}
	return fails
}

func main() {
	var (
		basePath    = flag.String("base", "BENCH_engine.json", "checked-in baseline snapshot")
		newPath     = flag.String("new", "BENCH_engine.ci.json", "freshly produced snapshot")
		benchList   = flag.String("bench", "engine/goroutines=1", "comma-separated benchmarks to gate")
		normalize   = flag.String("normalize", "", "divide ns/op by this benchmark's ns/op on each side (hardware yardstick, e.g. scan/goroutines=1)")
		maxRegress  = flag.Float64("max-regress", 0.30, "maximum allowed relative ns/op regression")
		allocSlack  = flag.Float64("alloc-slack", 0.05, "maximum allowed allocs/op rise above the pinned baseline")
		allowCapped = flag.Bool("allow-capped", false, "warn and skip (instead of refusing) gated rows that ran with fewer cores than goroutines")
	)
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	// Normalisation absorbs hardware deltas, not workload deltas: ns/op of
	// every benchmark depends on pool size, so comparing snapshots of
	// different workloads would gate nothing meaningful.
	if base.Workers != fresh.Workers || base.Tasks != fresh.Tasks {
		fatal(fmt.Errorf("workload mismatch: baseline %d workers/%d tasks vs %d/%d — produce the snapshot with the baseline's parameters",
			base.Workers, base.Tasks, fresh.Workers, fresh.Tasks))
	}

	var baseNorm, freshNorm float64
	if *normalize != "" {
		baseNorm, err = normalizerNs(base, *normalize, *basePath)
		if err != nil {
			fatal(err)
		}
		freshNorm, err = normalizerNs(fresh, *normalize, *newPath)
		if err != nil {
			fatal(err)
		}
	}

	var fails []string
	for _, name := range strings.Split(*benchList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := base.Find(name)
		if !ok {
			fatal(fmt.Errorf("benchmark %q missing from baseline %s", name, *basePath))
		}
		f, ok := fresh.Find(name)
		if !ok {
			fatal(fmt.Errorf("benchmark %q missing from %s", name, *newPath))
		}
		if skip, err := cappedRow(b, f, *allowCapped); err != nil {
			fatal(err)
		} else if skip != "" {
			fmt.Fprintln(os.Stderr, "benchdiff: WARN:", skip)
			continue
		}
		fmt.Printf("%-24s ns/op %8.1f → %8.1f   allocs/op %.4f → %.4f\n",
			name, b.NsPerOp, f.NsPerOp, b.AllocsPerOp, f.AllocsPerOp)
		fails = append(fails, compare(b, f, baseNorm, freshNorm, *maxRegress, *allocSlack)...)
	}

	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// normalizerNs extracts the hardware yardstick's ns/op from a snapshot.
// A missing row or a non-positive ns/op is a hard error: compare() would
// otherwise fall back to raw ns/op silently, and a gate that silently
// stops normalizing passes regressions on slow runners and fails honest
// runs on fast ones — the worst kind of flaky.
func normalizerNs(r *benchfmt.Report, name, path string) (float64, error) {
	rec, ok := r.Find(name)
	if !ok {
		return 0, fmt.Errorf("normalizer %q missing from %s", name, path)
	}
	if rec.NsPerOp <= 0 {
		return 0, fmt.Errorf("normalizer %q in %s has ns/op %g — cannot normalize; re-produce the snapshot or drop -normalize",
			name, path, rec.NsPerOp)
	}
	return rec.NsPerOp, nil
}

// cappedRow inspects a gated benchmark pair for under-provisioned rows
// (fewer schedulable cores than goroutines). It returns a non-empty skip
// message when allowCapped permits skipping the row, and an error when it
// does not.
func cappedRow(base, fresh benchfmt.Record, allowCapped bool) (skip string, err error) {
	side := ""
	switch {
	case base.Underprovisioned() && fresh.Underprovisioned():
		side = "both snapshots"
	case base.Underprovisioned():
		side = "the baseline"
	case fresh.Underprovisioned():
		side = "the fresh snapshot"
	default:
		return "", nil
	}
	msg := fmt.Sprintf("%s ran with fewer cores than goroutines in %s — not a parallel measurement",
		base.Benchmark, side)
	if allowCapped {
		return msg + "; skipping", nil
	}
	return "", fmt.Errorf("%s (re-run on a machine with ≥ %d cores, or pass -allow-capped to skip)",
		msg, base.Goroutines)
}

func load(path string) (*benchfmt.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchfmt.Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
