// pombm-coord runs the multi-node serving tier: a coordinator that shards
// the assignment engine across pombm-server backends (their /v2 node API)
// while exposing the same /v1 agent API as a single server — same answers,
// byte for byte.
//
// Usage:
//
//	pombm-server -addr :8081 &    # backends first
//	pombm-server -addr :8082 &
//	pombm-server -addr :8083 &
//	pombm-coord -addr :8080 -backends http://localhost:8081,http://localhost:8082,http://localhost:8083
//	pombm-coord -backends ... -policy batch-optimal:k=16
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"github.com/pombm/pombm/internal/cluster"
	"github.com/pombm/pombm/internal/geo"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "comma-separated pombm-server base URLs (required)")
		grid     = flag.Int("grid", 64, "predefined grid columns/rows")
		side     = flag.Float64("side", 200, "side of the square service region")
		eps      = flag.Float64("eps", 0.6, "privacy budget ε")
		seed     = flag.Uint64("seed", 2020, "coordinator random seed")
		shards   = flag.Int("shards", 0, "per-node engine shard count (0 = engine default)")
		lifetime = flag.Float64("lifetime", 0, "per-worker lifetime ε budget (0 = unlimited)")
		policy   = flag.String("policy", "greedy", "assignment policy: greedy, capacity-greedy, or batch-optimal[:k=<n>]")
		capacity = flag.Int("capacity", 0, "default per-worker task capacity (0 = 1); above 1 needs a capacity-aware -policy")
		opTO     = flag.Duration("op-timeout", 0, "per-backend deadline for routed operations (0 = default 30s)")
		prepTO   = flag.Duration("prepare-timeout", 0, "per-backend deadline for rotation prepare; scale with population (0 = default 10m)")
		noCoal   = flag.Bool("no-coalesce", false, "disable op coalescing: ship every routed op on its own single-op endpoint")
	)
	flag.Parse()

	urls := strings.Split(*backends, ",")
	var nodes []cluster.NodeConn
	timeouts := cluster.NodeTimeouts{Op: *opTO, Prepare: *prepTO}
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, cluster.DialNodeTimeouts(u, timeouts))
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "pombm-coord: -backends requires at least one pombm-server URL")
		os.Exit(1)
	}

	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(*side, *side))
	coord, err := cluster.New(cluster.Config{
		Region: region, Cols: *grid, Rows: *grid,
		Epsilon: *eps, Seed: *seed,
		Nodes: nodes, Shards: *shards,
		Policy: *policy, DefaultCapacity: *capacity,
		Lifetime: *lifetime, NoCoalesce: *noCoal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pombm-coord:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pombm-coord:", err)
		os.Exit(1)
	}
	srv := coord.Server()
	log.Printf("coordinating %d backends on %s (grid %dx%d, ε=%g, tree depth %d, %d engine shards, policy %s)",
		len(nodes), ln.Addr(), *grid, *grid, *eps,
		srv.Publication().Tree.Depth(), srv.Core().Shards(), srv.Core().Policy().Name())
	log.Fatal(http.Serve(ln, coord.Handler()))
}
