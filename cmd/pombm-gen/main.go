// pombm-gen generates POMBM workloads as CSV files — synthetic Table II
// workloads or days of the synthetic Chengdu dataset — and summarises
// existing workload files. The CSV format ("kind,x,y"; tasks in arrival
// order) is what the library's ReadCSV accepts, so deployments can also
// bring their own data.
//
// Usage:
//
//	pombm-gen -kind synthetic -tasks 3000 -workers 5000 -out day.csv
//	pombm-gen -kind chengdu -day 7 -workers 8000 -out chengdu7.csv
//	pombm-gen -describe day.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "synthetic", "generator: synthetic or chengdu")
		tasks    = flag.Int("tasks", workload.DefaultNumTasks, "number of tasks (synthetic)")
		workers  = flag.Int("workers", workload.DefaultNumWorkers, "number of workers")
		mu       = flag.Float64("mu", workload.DefaultMu, "location mean (synthetic)")
		sigma    = flag.Float64("sigma", workload.DefaultSigma, "location std dev (synthetic)")
		day      = flag.Int("day", 1, "day 1..30 (chengdu)")
		seed     = flag.Uint64("seed", 2020, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		describe = flag.String("describe", "", "summarise an existing workload CSV and exit")
	)
	flag.Parse()

	if *describe != "" {
		describeFile(*describe)
		return
	}

	var inst *workload.Instance
	var err error
	switch *kind {
	case "synthetic":
		inst, err = workload.Synthetic(workload.SyntheticParams{
			NumTasks: *tasks, NumWorkers: *workers, Mu: *mu, Sigma: *sigma,
		}, rng.New(*seed))
	case "chengdu":
		inst, err = workload.Chengdu(workload.ChengduParams{
			Day: *day, NumWorkers: *workers,
		}, rng.New(*seed))
	default:
		err = fmt.Errorf("unknown kind %q (want synthetic or chengdu)", *kind)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := inst.WriteCSV(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d workers, %d tasks to %s\n",
			len(inst.Workers), len(inst.Tasks), *out)
	}
}

func describeFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	inst, err := workload.ReadCSV(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workers: %d\n", len(inst.Workers))
	fmt.Printf("tasks:   %d\n", len(inst.Tasks))
	fmt.Printf("region:  %v\n", inst.Region)
	// Density snapshot through the quadtree substrate.
	q := geo.NewQuadtree(inst.Region, 64, 8)
	for _, p := range inst.Tasks {
		q.Insert(p)
	}
	var maxCount int
	var hot geo.Rect
	q.Leaves(func(b geo.Rect, c int) {
		if c > maxCount {
			maxCount, hot = c, b
		}
	})
	if maxCount > 0 {
		fmt.Printf("hottest task cell: %v (%d tasks)\n", hot, maxCount)
	}
	cw := geo.Centroid(inst.Workers)
	ct := geo.Centroid(inst.Tasks)
	fmt.Printf("worker centroid: %v\ntask centroid:   %v\n", cw, ct)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pombm-gen:", err)
	os.Exit(1)
}
