// pombm-sim runs the deterministic event-driven churn simulator
// (internal/sim) against the assignment stack.
//
// Usage:
//
//	pombm-sim -list
//	pombm-sim -scenario churn-heavy -seed 1
//	pombm-sim -scenario churn-heavy -seed 1 -json        # canonical report on stdout
//	pombm-sim -scenario all -crosscheck                  # verify vs the sequential rule
//	pombm-sim -scenario chengdu-day -driver platform     # exercise the server wrapper
//	pombm-sim -scenario all -driver cluster -nodes 3     # 3-backend coordinator, same bytes
//	pombm-sim -preset capacity-heavy -crosscheck         # capacitated sequential rule
//	pombm-sim -scenario all -policy batch-optimal        # override the assignment policy
//
// The -json report is a pure function of (scenario, seed, driver, shards):
// two runs with the same flags emit byte-identical output. Wall-clock
// throughput goes to stderr only, so it never perturbs the report.
// With -crosscheck, any violation of the sequential nearest-worker rule
// makes the process exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/sim"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario preset to run, comma-separated list, or 'all'")
		preset   = flag.String("preset", "", "alias for -scenario")
		list     = flag.Bool("list", false, "list scenario presets and exit")
		seed     = flag.Uint64("seed", 1, "root random seed")
		driver   = flag.String("driver", "engine", "system under test: engine, platform, or cluster (coordinator over in-process nodes)")
		shards   = flag.Int("shards", 0, "engine shard count (0 = engine default)")
		nodes    = flag.Int("nodes", 0, "cluster driver backend count (0 = 3)")
		duration = flag.Float64("duration", 0, "override the preset's simulated duration (seconds)")
		policy   = flag.String("policy", "", "override the preset's assignment policy (greedy, capacity-greedy, batch-optimal[:k=<n>]); a non-capacity-aware override resets the preset's worker capacity to 1")
		check    = flag.Bool("crosscheck", false, "verify every assignment against the sequential brute-force rule (feasibility-only under window-solving policies); violations exit non-zero")
		asJSON   = flag.Bool("json", false, "emit the canonical deterministic JSON report on stdout")
	)
	flag.Parse()

	var policyOverride engine.Policy
	if *policy != "" {
		p, err := engine.PolicyByName(*policy)
		if err != nil {
			fatal(err)
		}
		policyOverride = p
	}

	if *list {
		for _, name := range sim.Scenarios() {
			sc, _ := sim.Preset(name)
			fmt.Printf("%-12s %4.0fs  %-8s batch=%gs  %d workers up front\n",
				name, sc.Duration, sc.Spatial, sc.BatchWindow, sc.InitialWorkers)
		}
		return
	}
	if *preset != "" && *scenario != "" && *preset != *scenario {
		fmt.Fprintln(os.Stderr, "pombm-sim: -scenario and -preset disagree; pass one of them")
		os.Exit(2)
	}
	if *scenario == "" {
		*scenario = *preset
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "pombm-sim: -scenario is required (use -list to see presets)")
		flag.Usage()
		os.Exit(2)
	}

	names := strings.Split(*scenario, ",")
	if *scenario == "all" {
		names = sim.Scenarios()
	}
	violations := 0
	var reports []*sim.Report
	for _, name := range names {
		sc, err := sim.Preset(name)
		if err != nil {
			fatal(err)
		}
		if *duration > 0 {
			sc = sc.WithDuration(*duration)
		}
		if policyOverride != nil {
			sc.Policy = *policy
			if !policyOverride.CapacityAware() {
				// Capacities above 1 (and any skew mix) need a
				// capacity-aware policy.
				sc.Capacity = 0
				sc.CapacitySkew = 0
			}
		}
		report, stats, err := sim.Run(sim.Config{
			Scenario:   sc,
			Seed:       *seed,
			Driver:     sim.Driver(*driver),
			Shards:     *shards,
			Nodes:      *nodes,
			CrossCheck: *check,
		})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			reports = append(reports, report)
		} else {
			printSummary(report)
		}
		fmt.Fprintf(os.Stderr, "# %s: %d events in %.3fs wall (%.0f events/sec)\n",
			name, report.Events, stats.WallSeconds, stats.EventsPerSec)
		if report.Check != nil {
			violations += report.Check.Violations
			if !report.Check.PoolConsistent {
				violations++
				fmt.Fprintf(os.Stderr, "# %s: POOL INCONSISTENT with sequential reference\n", name)
			}
		}
	}
	if *asJSON {
		// One scenario emits its report object; several emit a JSON array,
		// so the output is always a single valid document. Both forms are
		// byte-deterministic for fixed flags.
		blob, err := marshalReports(reports)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(blob)
	}
	if *check {
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "pombm-sim: %d cross-check violations\n", violations)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "# cross-check: all assignments match the sequential rule")
	}
}

// marshalReports renders the canonical JSON: the bare report for a single
// scenario, an indented array for a multi-scenario run.
func marshalReports(reports []*sim.Report) ([]byte, error) {
	if len(reports) == 1 {
		return reports[0].JSON()
	}
	blob, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

func printSummary(r *sim.Report) {
	fmt.Printf("scenario %s  seed %d  driver %s  shards %d  (grid %d², D=%d, c=%d, ε=%g)\n",
		r.Scenario, r.Seed, r.Driver, r.Shards, r.GridCols, r.Depth, r.Degree, r.Epsilon)
	if r.Policy != "" || r.Capacity > 1 {
		capacity := r.Capacity
		if capacity == 0 {
			capacity = 1
		}
		policy := r.Policy
		if policy == "" {
			policy = "greedy"
		}
		fmt.Printf("  policy   %s, worker capacity %d\n", policy, capacity)
	}
	fmt.Printf("  tasks    %d arrived, %d assigned (%.1f%%), %d expired, %d pending at end, mean wait %.2fs\n",
		r.Tasks.Arrived, r.Tasks.Assigned, 100*r.Tasks.AssignmentRate, r.Tasks.Expired, r.Tasks.PendingAtEnd, r.Tasks.MeanWait)
	fmt.Printf("  match    mean level %.3f, mean tree dist %.2f, true dist mean %.2f p50 %.2f p90 %.2f p99 %.2f\n",
		r.Match.MeanLevel, r.Match.MeanTreeDist, r.Match.TrueDist.Mean, r.Match.TrueDist.P50, r.Match.TrueDist.P90, r.Match.TrueDist.P99)
	fmt.Printf("  workers  %d arrived, %d returns, %d departed, %d registrations, utilisation %.1f%%, %d online at end\n",
		r.Workers.Arrived, r.Workers.Returns, r.Workers.Departed, r.Workers.Registrations, 100*r.Workers.Utilisation, r.Workers.OnlineAtEnd)
	if r.Epochs != nil {
		fmt.Printf("  epochs   %d rotations (final epoch %d), %d re-reports, %d workers parked, total ε spent %.1f (lifetime %g/worker)\n",
			r.Epochs.Rotations, r.Epochs.FinalEpoch, r.Epochs.RotatedReports, r.Epochs.ParkedWorkers,
			r.Epochs.BudgetSpent, r.Epochs.BudgetLimit)
	}
	if r.Check != nil {
		fmt.Printf("  check    %d assignments verified, %d violations, pool consistent: %v\n",
			r.Check.Checked, r.Check.Violations, r.Check.PoolConsistent)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pombm-sim:", err)
	os.Exit(1)
}
