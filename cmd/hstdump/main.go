// hstdump builds a Hierarchically Well-Separated Tree over a predefined
// point grid and reports its structure: depth, branching factor, node
// counts, a distortion sample, and optionally Graphviz DOT output.
//
// Usage:
//
//	hstdump -grid 16 -side 200 -seed 7
//	hstdump -grid 8 -dot tree.dot
//	hstdump -example          # the paper's Example 1 tree
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func main() {
	var (
		grid    = flag.Int("grid", 16, "grid columns/rows (N = grid²)")
		side    = flag.Float64("side", 200, "side length of the square region")
		seed    = flag.Uint64("seed", 2020, "random seed for permutation and β")
		dotPath = flag.String("dot", "", "write the cluster tree in DOT format to this file")
		example = flag.Bool("example", false, "build the paper's Example 1 tree instead of a grid")
		sample  = flag.Int("sample", 2000, "random pairs for the distortion report")
	)
	flag.Parse()

	var tree *hst.Tree
	var err error
	if *example {
		pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
		tree, err = hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	} else {
		g, gerr := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(*side, *side)), *grid, *grid)
		if gerr != nil {
			fatal(gerr)
		}
		tree, err = hst.Build(g.Points(), rng.New(*seed))
	}
	if err != nil {
		fatal(err)
	}

	st := tree.Stats()
	fmt.Printf("points (N):          %d\n", st.NumPoints)
	fmt.Printf("depth (D):           %d\n", st.Depth)
	fmt.Printf("degree (c):          %d\n", st.Degree)
	fmt.Printf("real cluster nodes:  %d\n", st.RealNodes)
	fmt.Printf("complete-tree leaves (c^D): %.4g\n", st.TotalLeaves)
	fmt.Printf("beta:                %.4f\n", st.Beta)
	fmt.Printf("metric scale:        %.4g\n", st.Scale)

	// Distortion sample: dT/d over random point pairs.
	src := rng.New(*seed).Derive("distortion")
	n := tree.NumPoints()
	if n >= 2 && *sample > 0 {
		var min, max, sum float64
		min = 1e300
		count := 0
		for i := 0; i < *sample; i++ {
			a, b := src.Intn(n), src.Intn(n)
			if a == b {
				continue
			}
			d := tree.Point(a).Dist(tree.Point(b)) * tree.Scale()
			dt := tree.Dist(tree.CodeOf(a), tree.CodeOf(b))
			r := dt / d
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
			count++
		}
		if count > 0 {
			fmt.Printf("distortion dT/d over %d pairs: min %.2f  mean %.2f  max %.2f\n",
				count, min, sum/float64(count), max)
			if min < 1 {
				fmt.Println("WARNING: contraction detected — this violates the FRT guarantee")
			}
		}
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tree.WriteDOT(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote DOT to %s\n", *dotPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hstdump:", err)
	os.Exit(1)
}
