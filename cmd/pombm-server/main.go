// pombm-server runs the privacy-preserving crowdsourcing platform over
// HTTP: it publishes the predefined grid and HST, accepts obfuscated worker
// registrations, and assigns arriving tasks with HST-Greedy. With -demo it
// also drives a fleet of simulated workers and tasks against itself.
//
// Beside the /v1 agent API it exposes the /v2 node API, so the same binary
// serves standalone or as a backend a pombm-coord shards the engine across.
//
// Usage:
//
//	pombm-server -addr :8080 -grid 32 -eps 0.6
//	pombm-server -addr :8080 -demo 200
//	pombm-server -policy capacity-greedy -capacity 4
//	pombm-server -policy batch-optimal:k=16
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/pombm/pombm/internal/cluster"
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/rng"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		grid     = flag.Int("grid", 64, "predefined grid columns/rows")
		side     = flag.Float64("side", 200, "side of the square service region")
		eps      = flag.Float64("eps", 0.6, "privacy budget ε")
		seed     = flag.Uint64("seed", 2020, "server random seed")
		shards   = flag.Int("shards", 0, "assignment engine shard count (0 = engine default)")
		lifetime = flag.Float64("lifetime", 0, "per-worker lifetime ε budget; every fresh report spends ε and exhausted workers are parked (0 = unlimited)")
		policy   = flag.String("policy", "greedy", "assignment policy: greedy, capacity-greedy, or batch-optimal[:k=<n>]")
		capacity = flag.Int("capacity", 0, "default per-worker task capacity (0 = 1); above 1 needs a capacity-aware -policy")
		demo     = flag.Int("demo", 0, "run a self-demo with this many workers (0 = serve only)")
	)
	flag.Parse()

	pol, err := engine.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pombm-server:", err)
		os.Exit(1)
	}
	opts := []platform.ServerOption{
		platform.WithShards(*shards), platform.WithLifetimeBudget(*lifetime), platform.WithPolicy(pol),
	}
	if *capacity != 0 {
		opts = append(opts, platform.WithDefaultCapacity(*capacity))
	}
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(*side, *side))
	srv, err := platform.NewServer(region, *grid, *grid, *eps, *seed, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pombm-server:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pombm-server:", err)
		os.Exit(1)
	}
	log.Printf("serving on %s (grid %dx%d, ε=%g, tree depth %d, %d engine shards, policy %s)",
		ln.Addr(), *grid, *grid, *eps, srv.Publication().Tree.Depth(), srv.Core().Shards(), pol.Name())

	if *demo > 0 {
		go runDemo(ln.Addr().String(), *demo, *seed)
	}
	// Beside the /v1 agent API, expose the /v2 node API: a pombm-coord can
	// enlist this process as a cluster backend. The node's engine is
	// separate from the standalone /v1 server's and is built by the
	// coordinator's Init.
	mux := http.NewServeMux()
	mux.Handle("/v1/", platform.Handler(srv))
	mux.Handle("/v2/", cluster.NodeHandler(cluster.NewNode()))
	log.Fatal(http.Serve(ln, mux))
}

// runDemo exercises the server with simulated agents over real HTTP.
func runDemo(addr string, workers int, seed uint64) {
	time.Sleep(200 * time.Millisecond) // let the listener start serving
	base := "http://" + addr
	client, err := platform.NewClient(base)
	if err != nil {
		log.Printf("demo: %v", err)
		return
	}
	obf, err := platform.NewObfuscator(client.Publication(), seed+1)
	if err != nil {
		log.Printf("demo: %v", err)
		return
	}
	src := rng.New(seed + 2)
	region := client.Publication().Region
	// The whole worker wave obfuscates through one batch: the sampled codes
	// share a single slab instead of allocating one buffer per worker.
	locs := make([]geo.Point, workers)
	for i := range locs {
		locs[i] = geo.Pt(src.Uniform(region.MinX, region.MaxX), src.Uniform(region.MinY, region.MaxY))
	}
	for i, code := range obf.ObfuscateBatch(locs) {
		resp := client.Register(platform.RegisterRequest{
			WorkerID: fmt.Sprintf("demo-worker-%d", i),
			Code:     []byte(code),
		})
		if !resp.OK {
			log.Printf("demo: registration failed: %s", resp.Reason)
			return
		}
	}
	log.Printf("demo: registered %d workers", workers)
	assigned := 0
	for i := 0; i < workers/2; i++ {
		t := platform.Task{
			ID:  fmt.Sprintf("demo-task-%d", i),
			Loc: geo.Pt(src.Uniform(region.MinX, region.MaxX), src.Uniform(region.MinY, region.MaxY)),
		}
		if _, ok, err := t.Submit(client, obf); err != nil {
			log.Printf("demo: %v", err)
			return
		} else if ok {
			assigned++
		}
	}
	stats, err := client.Stats()
	if err != nil {
		log.Printf("demo: %v", err)
		return
	}
	log.Printf("demo: %d/%d tasks assigned; server stats %+v", assigned, workers/2, stats)
}
