// Analytics: differentially private fleet-density dashboards.
//
// The POMBM mechanisms protect individual locations during assignment;
// platforms additionally publish aggregate statistics ("how many drivers
// per district?"). This example builds the related-work baseline the paper
// contrasts with — a private spatial decomposition (noisy-count quadtree,
// To et al. PVLDB'14) — over a Chengdu worker fleet, and shows how close
// the private densities track the real ones at different budgets.
//
// Run with: go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/pombm/pombm"
)

func main() {
	// One day of the synthetic Chengdu fleet.
	inst, err := pombm.ChengduInstance(5, 8000, 99)
	if err != nil {
		log.Fatal(err)
	}
	region := inst.Region
	fmt.Printf("fleet: %d drivers over %v\n\n", len(inst.Workers), region)

	// True district counts (4×4 districts).
	const districts = 4
	trueCount := func(r pombm.Rect) int {
		c := 0
		for _, w := range inst.Workers {
			if r.Contains(w) {
				c++
			}
		}
		return c
	}

	for _, eps := range []float64{0.1, 0.5, 2.0} {
		nq, err := pombm.NewNoisyQuadtree(region, inst.Workers, eps, 4, 7)
		if err != nil {
			log.Fatal(err)
		}
		var worst, sumErr float64
		cells := 0
		w := region.Width() / districts
		h := region.Height() / districts
		for i := 0; i < districts; i++ {
			for j := 0; j < districts; j++ {
				r := pombm.NewRect(
					pombm.Pt(region.MinX+float64(i)*w, region.MinY+float64(j)*h),
					pombm.Pt(region.MinX+float64(i+1)*w, region.MinY+float64(j+1)*h),
				)
				truth := float64(trueCount(r))
				noisy := nq.CountIn(r)
				e := math.Abs(noisy - truth)
				sumErr += e
				if e > worst {
					worst = e
				}
				cells++
			}
		}
		cell, count := nq.DensestCell()
		fmt.Printf("ε=%-4g  mean district error %6.1f drivers, worst %6.1f;"+
			"  densest cell %v (~%.0f drivers)\n",
			eps, sumErr/float64(cells), worst, cell, count)
	}

	fmt.Println("\nSmaller ε → stronger privacy → noisier districts; the total")
	fmt.Println("budget is split geometrically across the quadtree's levels.")
}
