// Quickstart: the whole POMBM workflow in one file.
//
// A server publishes a grid of predefined points with an HST over it;
// workers and a stream of tasks obfuscate their snapped locations with the
// ε-Geo-Indistinguishable tree mechanism; the server matches each arriving
// task to the tree-nearest worker; we score the matching on the true
// locations and compare against the offline optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/pombm/pombm"
)

func main() {
	// 1. Infrastructure: a 200×200 city, 32×32 predefined points, HST.
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200))
	env, err := pombm.NewEnv(region, 64, 64, 2020)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published HST: N=%d predefined points, depth D=%d, degree c=%d\n",
		env.Tree.NumPoints(), env.Tree.Depth(), env.Tree.Degree())

	// 2. A workload: 200 tasks arriving online, 300 available workers.
	inst, err := pombm.SyntheticInstance(pombm.SyntheticParams{
		NumTasks: 200, NumWorkers: 300, Mu: 100, Sigma: 20,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	pombm.ShuffleTasks(inst, 99) // random-order arrival model

	// 3. Run the paper's framework and the two baselines at ε = 0.6.
	opt := pombm.Options{Epsilon: 0.6}
	fmt.Printf("\n%-8s %14s %12s %10s\n", "alg", "total distance", "mean latency", "memory")
	for _, alg := range []pombm.Algorithm{pombm.AlgLapGR, pombm.AlgLapHG, pombm.AlgTBF} {
		res, err := pombm.Run(alg, env, inst, opt, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %14.1f %12s %9.2fKB\n",
			res.Algorithm, res.TotalDistance, res.MeanLatency(), float64(res.MemoryBytes)/1e3)
	}

	// 4. How far from the offline optimum (which sees true locations)?
	_, optimal, err := pombm.OptimalMatching(len(inst.Tasks), len(inst.Workers),
		func(t, w int) float64 { return inst.Tasks[t].Dist(inst.Workers[w]) })
	if err != nil {
		log.Fatal(err)
	}
	res, err := pombm.Run(pombm.AlgTBF, env, inst, opt, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffline optimum (no privacy): %.1f\n", optimal)
	fmt.Printf("TBF empirical ratio vs optimum: %.2fx\n", res.TotalDistance/optimal)
}
