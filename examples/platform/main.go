// Platform: the full interaction model of Sec. II-A over real HTTP.
//
// A server process publishes the grid + HST; worker agents snap and
// obfuscate their true locations on *their* side of the wire and register;
// task agents do the same when they appear; the server assigns each task
// with HST-Greedy seeing only leaf codes. After assignment, worker and task
// exchange true locations over the private channel (modelled in-process)
// and we report the true travel distances the platform achieved.
//
// Run with: go run ./examples/platform
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"github.com/pombm/pombm"
)

func main() {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200))
	srv, err := pombm.NewServer(region, 64, 64, 0.6, 2020)
	if err != nil {
		log.Fatal(err)
	}
	// Real HTTP loopback: agents only ever see the URL.
	ts := httptest.NewServer(pombm.PlatformHandler(srv))
	defer ts.Close()
	fmt.Printf("server listening at %s\n", ts.URL)

	client, err := pombm.NewServerClient(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	pub := client.Publication()
	fmt.Printf("publication: N=%d points, D=%d, ε=%g\n",
		pub.Tree.NumPoints(), pub.Tree.Depth(), pub.Epsilon)

	// Worker fleet: each agent holds its true location privately.
	workerLocs := pombm.UniformPoints(region, 400, 31)
	workers := make(map[string]pombm.Point, len(workerLocs))
	obf, err := pombm.NewObfuscator(pub, 77)
	if err != nil {
		log.Fatal(err)
	}
	for i, loc := range workerLocs {
		w := pombm.Worker{ID: fmt.Sprintf("courier-%03d", i), Loc: loc}
		if err := w.Register(client, obf); err != nil {
			log.Fatal(err)
		}
		workers[w.ID] = w.Loc
	}
	fmt.Printf("registered %d workers (server saw only obfuscated leaf codes)\n", len(workers))

	// Tasks appear dynamically; the private channel reveals the true task
	// location to the assigned worker only.
	taskLocs := pombm.UniformPoints(region, 250, 32)
	var totalTravel float64
	assigned := 0
	for i, loc := range taskLocs {
		t := pombm.Task{ID: fmt.Sprintf("order-%03d", i), Loc: loc}
		workerID, ok, err := t.Submit(client, obf)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		assigned++
		totalTravel += workers[workerID].Dist(t.Loc) // private-channel exchange
	}

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assigned %d/%d tasks; mean true travel distance %.1f units\n",
		assigned, len(taskLocs), totalTravel/float64(assigned))
	fmt.Printf("server stats: %+v\n", stats)

	// The server never handled a true coordinate: the only location-bearing
	// fields on the wire were obfuscated leaf codes.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("done — all communication went over HTTP with client-side obfuscation")
}
