// Rideshare: a peak-hour ride-hailing day on the synthetic Chengdu dataset.
//
// Drivers (workers) report obfuscated positions before the 14:00 peak;
// passenger requests (tasks) arrive one by one and are dispatched
// immediately. We compare the paper's tree-based framework against the two
// planar-Laplace baselines across privacy budgets — the ride-hailing view
// of Fig. 7c/7d.
//
// Run with: go run ./examples/rideshare
package main

import (
	"fmt"
	"log"

	"github.com/pombm/pombm"
)

func main() {
	// The Chengdu region: 10 km × 10 km in units of 50 m.
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200))
	env, err := pombm.NewEnv(region, 64, 64, 2020)
	if err != nil {
		log.Fatal(err)
	}

	const fleet = 8000
	days := []int{1, 2, 3}
	budgets := []float64{0.2, 0.6, 1.0}
	algs := []pombm.Algorithm{pombm.AlgLapGR, pombm.AlgLapHG, pombm.AlgTBF}

	fmt.Printf("synthetic Chengdu, %d drivers, days %v (distances in 50 m units)\n\n", fleet, days)
	fmt.Printf("%-6s", "ε")
	for _, alg := range algs {
		fmt.Printf("%16s", alg)
	}
	fmt.Println()

	for _, eps := range budgets {
		fmt.Printf("%-6g", eps)
		for _, alg := range algs {
			var total float64
			var served int
			for _, day := range days {
				inst, err := pombm.ChengduInstance(day, fleet, uint64(1000+day))
				if err != nil {
					log.Fatal(err)
				}
				pombm.ShuffleTasks(inst, uint64(2000+day))
				res, err := pombm.Run(alg, env, inst, pombm.Options{Epsilon: eps}, uint64(3000+day))
				if err != nil {
					log.Fatal(err)
				}
				total += res.TotalDistance
				served += res.Matched
			}
			fmt.Printf("%16.0f", total/float64(len(days)))
			_ = served
		}
		fmt.Println()
	}

	// Latency check: dispatching must be real-time even at fleet scale.
	inst, err := pombm.ChengduInstance(1, fleet, 1001)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pombm.Run(pombm.AlgTBF, env, inst, pombm.Options{Epsilon: 0.6}, 3001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTBF dispatch latency: %v per request over %d requests (paper target: < 2 ms)\n",
		res.MeanLatency(), res.Matched)
}
