// Delivery: the matching-size case study (Sec. IV-C) as a food-delivery
// scenario. Couriers have limited reachable radii — the bipartite graph is
// incomplete — and the platform maximises the number of orders that a
// courier can actually serve. We compare the paper's tree-based matcher
// against the Prob baseline (To et al., ICDE'18) across privacy budgets,
// reproducing the shape of Fig. 8b.
//
// Run with: go run ./examples/delivery
package main

import (
	"fmt"
	"log"

	"github.com/pombm/pombm"
)

func main() {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200))
	env, err := pombm.NewEnv(region, 64, 64, 2020)
	if err != nil {
		log.Fatal(err)
	}

	// 3000 orders, 5000 couriers with reach 10–20 units (Table II defaults).
	inst, err := pombm.SyntheticInstance(pombm.SyntheticParams{
		NumTasks: 3000, NumWorkers: 5000, Mu: 100, Sigma: 20,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	pombm.ShuffleTasks(inst, 12)
	reaches := pombm.UniformReaches(len(inst.Workers), 10, 20, 13)

	fmt.Printf("%d orders, %d couriers, reach ∈ [10,20)\n\n", len(inst.Tasks), len(inst.Workers))
	fmt.Printf("%-6s %18s %18s %12s\n", "ε", "Prob size (valid)", "TBF size (valid)", "TBF gain")
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		opt := pombm.Options{Epsilon: eps}
		prob, err := pombm.RunSize(pombm.AlgProb, env, inst, reaches, opt, 21)
		if err != nil {
			log.Fatal(err)
		}
		tbf, err := pombm.RunSize(pombm.AlgTBF, env, inst, reaches, opt, 22)
		if err != nil {
			log.Fatal(err)
		}
		gain := 0.0
		if prob.MatchingSize > 0 {
			gain = 100 * float64(tbf.MatchingSize-prob.MatchingSize) / float64(prob.MatchingSize)
		}
		fmt.Printf("%-6g %10d (%5d) %10d (%5d) %+11.1f%%\n",
			eps, prob.Assigned, prob.MatchingSize, tbf.Assigned, tbf.MatchingSize, gain)
	}
	fmt.Println("\n\"size\" counts server assignments; \"valid\" counts pairs within true reach —")
	fmt.Println("the matching size the paper reports corresponds to the valid column.")
}
