package pombm_test

// Godoc examples: runnable documentation for the main public entry points.
// Outputs are deterministic because every constructor takes a seed.

import (
	"fmt"

	"github.com/pombm/pombm"
)

// ExampleBuildHSTWithParams rebuilds the paper's worked Example 1: four
// points, β = 1/2, identity pivot permutation.
func ExampleBuildHSTWithParams() {
	pts := []pombm.Point{
		pombm.Pt(1, 1), pombm.Pt(2, 3), pombm.Pt(5, 3), pombm.Pt(4, 4),
	}
	tree, err := pombm.BuildHSTWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("depth D = %d, degree c = %d\n", tree.Depth(), tree.Degree())
	fmt.Printf("dT(o1, o2) = %.0f\n", tree.Dist(tree.CodeOf(0), tree.CodeOf(1)))
	fmt.Printf("dT(o3, o4) = %.0f\n", tree.Dist(tree.CodeOf(2), tree.CodeOf(3)))
	// Output:
	// depth D = 4, degree c = 2
	// dT(o1, o2) = 28
	// dT(o3, o4) = 12
}

// ExampleNewHSTMechanism reproduces Table I of the paper: per-leaf
// obfuscation probabilities at ε = 0.1.
func ExampleNewHSTMechanism() {
	pts := []pombm.Point{
		pombm.Pt(1, 1), pombm.Pt(2, 3), pombm.Pt(5, 3), pombm.Pt(4, 4),
	}
	tree, _ := pombm.BuildHSTWithParams(pts, 0.5, []int{0, 1, 2, 3})
	mech, err := pombm.NewHSTMechanism(tree, 0.1)
	if err != nil {
		panic(err)
	}
	for lvl := 0; lvl <= tree.Depth(); lvl++ {
		fmt.Printf("level %d: %.3f\n", lvl, mech.Weight(lvl)/mech.TotalWeight())
	}
	// Output:
	// level 0: 0.394
	// level 1: 0.264
	// level 2: 0.119
	// level 3: 0.024
	// level 4: 0.001
}

// ExampleHungarian solves a small assignment instance.
func ExampleHungarian() {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := pombm.Hungarian(cost)
	if err != nil {
		panic(err)
	}
	fmt.Printf("assignment %v, total cost %.0f\n", assign, total)
	// Output:
	// assignment [1 0 2], total cost 5
}

// ExampleVerifyHSTGeoI audits Theorem 1 exactly on a small tree.
func ExampleVerifyHSTGeoI() {
	pts := []pombm.Point{
		pombm.Pt(1, 1), pombm.Pt(2, 3), pombm.Pt(5, 3), pombm.Pt(4, 4),
	}
	tree, _ := pombm.BuildHSTWithParams(pts, 0.5, []int{0, 1, 2, 3})
	mech, _ := pombm.NewHSTMechanism(tree, 0.5)
	report := pombm.VerifyHSTGeoI(mech, 1e-9)
	fmt.Printf("satisfied: %v, violations: %d\n", report.Satisfied(), report.Violations)
	// Output:
	// satisfied: true, violations: 0
}

// ExampleRun executes the paper's full pipeline on a small instance.
func ExampleRun() {
	region := pombm.NewRect(pombm.Pt(0, 0), pombm.Pt(200, 200))
	env, _ := pombm.NewEnv(region, 16, 16, 1)
	inst, _ := pombm.SyntheticInstance(pombm.SyntheticParams{
		NumTasks: 50, NumWorkers: 80, Mu: 100, Sigma: 20,
	}, 7)
	res, err := pombm.Run(pombm.AlgTBF, env, inst, pombm.Options{Epsilon: 0.6}, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("matched %d of %d tasks\n", res.Matched, len(inst.Tasks))
	// Output:
	// matched 50 of 50 tasks
}
