package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Std() != 0 || a.CI95() != 0 {
		t.Error("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", a.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if math.Abs(a.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", a.Var(), 32.0/7.0)
	}
}

func TestAccumulatorMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(wantVar))
		return math.Abs(a.Mean()-mean) <= 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(a.Var()-wantVar) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, tt := range cases {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P%.0f%% = %v, want %v", tt.p*100, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("empty percentile did not panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	xs := []float64{9, 1, 5, 3, 7}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 9 || s.Median != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Input must not be reordered.
	if xs[0] != 9 || xs[4] != 7 {
		t.Error("Summarize mutated its input")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, big Accumulator
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		big.Add(float64(i % 5))
	}
	if big.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", big.CI95(), small.CI95())
	}
}
