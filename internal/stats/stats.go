// Package stats provides the summary statistics the experiment harness
// reports: numerically stable mean/variance accumulation (Welford),
// percentiles, and normal-approximation confidence intervals.
package stats

import (
	"math"
	"sort"
)

// Accumulator accumulates a stream of observations with Welford's
// algorithm; the zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval on the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.Std() / math.Sqrt(float64(a.n))
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes a Summary. It returns the zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var acc Accumulator
	for _, x := range sorted {
		acc.Add(x)
	}
	return Summary{
		N:      len(sorted),
		Mean:   acc.Mean(),
		Std:    acc.Std(),
		Min:    sorted[0],
		Median: Percentile(sorted, 0.5),
		Max:    sorted[len(sorted)-1],
		P90:    Percentile(sorted, 0.9),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample using
// linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
