package sim

import (
	"fmt"

	"github.com/pombm/pombm/internal/hst"
)

// crossCheck is the sequential reference: it mirrors the available pool in
// a plain map and re-derives every assignment by brute-force scan, exactly
// the paper-faithful rule (minimal LCA level, ties to the smallest id —
// match.HSTGreedyScan's order). Because the simulator drives the engine
// from a single goroutine, the engine's answers must agree decision for
// decision; any divergence is a correctness violation, not a tie-break
// artefact.
type crossCheck struct {
	tree        *hst.Tree
	avail       map[int]hst.Code // registration id → reported code
	checked     int
	nViolations int
	samples     []string // first few violation descriptions
}

// maxSamples bounds the retained violation details.
const maxSamples = 5

func newCrossCheck(tree *hst.Tree) *crossCheck {
	return &crossCheck{tree: tree, avail: map[int]hst.Code{}}
}

func (c *crossCheck) register(id int, code hst.Code) { c.avail[id] = code }

func (c *crossCheck) withdraw(id int) { delete(c.avail, id) }

// retree swaps the reference to a rotated epoch's tree. The caller must
// have replaced (or withdrawn) every mirrored worker first: codes from the
// old epoch are meaningless under the new tree.
func (c *crossCheck) retree(tree *hst.Tree) { c.tree = tree }

// observe verifies one assignment decision and consumes the chosen worker
// from the mirror pool.
func (c *crossCheck) observe(taskCode hst.Code, gotID int, ok bool) {
	c.checked++
	if !ok {
		if len(c.avail) > 0 {
			c.fail(fmt.Sprintf("task %q unassigned with %d workers available", taskCode, len(c.avail)))
		}
		return
	}
	code, present := c.avail[gotID]
	if !present {
		c.fail(fmt.Sprintf("task %q assigned to worker %d, which is not available", taskCode, gotID))
		return
	}
	bestLvl, bestID := c.tree.Depth()+1, -1
	for id, wc := range c.avail {
		lvl := c.tree.LCALevel(taskCode, wc)
		if lvl < bestLvl || (lvl == bestLvl && id < bestID) {
			bestLvl, bestID = lvl, id
		}
	}
	if got := c.tree.LCALevel(taskCode, code); got != bestLvl {
		c.fail(fmt.Sprintf("task %q matched at level %d, nearest available is level %d", taskCode, got, bestLvl))
	} else if gotID != bestID {
		c.fail(fmt.Sprintf("task %q matched worker %d, sequential rule picks %d", taskCode, gotID, bestID))
	}
	delete(c.avail, gotID)
}

func (c *crossCheck) fail(msg string) {
	c.nViolations++
	if len(c.samples) < maxSamples {
		c.samples = append(c.samples, msg)
	}
}
