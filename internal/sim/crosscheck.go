package sim

import (
	"fmt"

	"github.com/pombm/pombm/internal/hst"
)

// crossCheck is the sequential reference: it mirrors the available pool —
// worker codes and remaining capacity units — in a plain map and verifies
// every assignment against it.
//
// In strict mode (the greedy policies) it re-derives each decision by
// brute-force scan, exactly the capacitated sequential rule: the minimal
// LCA level among workers with remaining capacity, ties to the smallest
// registration id — match.HSTGreedyScan's order, generalised so a worker
// leaves the pool only when its last unit is consumed. Because the
// simulator drives the engine from a single goroutine, the engine's answers
// must agree decision for decision; any divergence is a correctness
// violation, not a tie-break artefact.
//
// In feasibility mode (window-solving policies like batch-optimal, whose
// decisions are deliberately not the sequential rule) it still verifies
// that every assigned worker was genuinely available with spare capacity
// and consumes units from the mirror, so pool-consistency and
// never-assign-a-gone-worker keep holding.
type crossCheck struct {
	tree        *hst.Tree
	strict      bool
	avail       map[int]refWorker // registration id → reported code + units
	checked     int
	nViolations int
	samples     []string // first few violation descriptions
}

// refWorker is one mirrored pool entry.
type refWorker struct {
	code hst.Code
	cap  int
}

// maxSamples bounds the retained violation details.
const maxSamples = 5

func newCrossCheck(tree *hst.Tree, strict bool) *crossCheck {
	return &crossCheck{tree: tree, strict: strict, avail: map[int]refWorker{}}
}

// register mirrors a fresh report: a worker enters (or re-enters) the pool
// at the given code with the given remaining capacity. Releases re-use it
// to overwrite the entry with the post-completion code and units.
func (c *crossCheck) register(id int, code hst.Code, capacity int) {
	c.avail[id] = refWorker{code: code, cap: capacity}
}

func (c *crossCheck) withdraw(id int) { delete(c.avail, id) }

// retree swaps the reference to a rotated epoch's tree. The caller must
// have replaced (or withdrawn) every mirrored worker first: codes from the
// old epoch are meaningless under the new tree.
func (c *crossCheck) retree(tree *hst.Tree) { c.tree = tree }

// observe verifies one assignment decision and consumes one capacity unit
// of the chosen worker from the mirror pool.
func (c *crossCheck) observe(taskCode hst.Code, gotID int, ok bool) {
	c.checked++
	if !ok {
		// Under the sequential rule an assignment fails only on an empty
		// pool; a window-solving policy may leave a task unassigned when
		// its mined candidate graph cannot cover it.
		if c.strict && len(c.avail) > 0 {
			c.fail(fmt.Sprintf("task %q unassigned with %d workers available", taskCode, len(c.avail)))
		}
		return
	}
	w, present := c.avail[gotID]
	if !present {
		c.fail(fmt.Sprintf("task %q assigned to worker %d, which is not available", taskCode, gotID))
		return
	}
	if c.strict {
		bestLvl, bestID := c.tree.Depth()+1, -1
		for id, rw := range c.avail {
			lvl := c.tree.LCALevel(taskCode, rw.code)
			if lvl < bestLvl || (lvl == bestLvl && id < bestID) {
				bestLvl, bestID = lvl, id
			}
		}
		if got := c.tree.LCALevel(taskCode, w.code); got != bestLvl {
			c.fail(fmt.Sprintf("task %q matched at level %d, nearest available is level %d", taskCode, got, bestLvl))
		} else if gotID != bestID {
			c.fail(fmt.Sprintf("task %q matched worker %d, sequential rule picks %d", taskCode, gotID, bestID))
		}
	}
	w.cap--
	if w.cap <= 0 {
		delete(c.avail, gotID)
	} else {
		c.avail[gotID] = w
	}
}

func (c *crossCheck) fail(msg string) {
	c.nViolations++
	if len(c.samples) < maxSamples {
		c.samples = append(c.samples, msg)
	}
}
