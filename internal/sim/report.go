package sim

import (
	"encoding/json"
	"math"
	"sort"
)

// Report is the machine-readable outcome of one run. Every field is a pure
// function of (scenario, seed, driver, shards) — marshalling it twice for
// the same inputs yields byte-identical JSON, which the CI smoke lane
// relies on. Wall-clock figures are deliberately excluded from the JSON
// (they vary run to run); RunStats carries them separately.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Driver   string `json:"driver"`
	Shards   int    `json:"shards"`
	// Policy is the resolved assignment-policy name, Capacity the
	// per-worker task capacity, and CapacitySkew the deterministic
	// capacity-mix modulus; omitted for the historical defaults (greedy,
	// capacity 1, no skew) so pre-policy reports are byte-unchanged.
	Policy       string `json:"policy,omitempty"`
	Capacity     int    `json:"capacity,omitempty"`
	CapacitySkew int    `json:"capacity_skew,omitempty"`

	GridCols int     `json:"grid_cols"`
	Epsilon  float64 `json:"epsilon"`
	Depth    int     `json:"tree_depth"`
	Degree   int     `json:"tree_degree"`

	SimDuration float64 `json:"sim_duration"`
	Events      int     `json:"events"`

	Tasks   TaskMetrics       `json:"tasks"`
	Match   MatchMetrics      `json:"match"`
	Workers WorkerMetrics     `json:"workers"`
	Epochs  *EpochMetrics     `json:"epochs,omitempty"`
	Check   *CrossCheckReport `json:"crosscheck,omitempty"`
}

// EpochMetrics summarises epoch rotation and budget accounting; present
// only for scenarios that rotate or enforce a lifetime budget, so the
// reports of non-rotating scenarios are unchanged.
type EpochMetrics struct {
	Rotations      int   `json:"rotations"`
	FinalEpoch     int64 `json:"final_epoch"`
	RotatedReports int   `json:"rotated_reports"` // successful rotation re-obfuscations
	ParkedWorkers  int   `json:"parked_workers"`  // lifetime budgets exhausted
	// BudgetSpent is the accountant's grand total — exactly Σ ε over every
	// accepted fresh report (registrations, releases, rotations).
	BudgetLimit float64 `json:"budget_limit"`
	BudgetSpent float64 `json:"budget_spent"`
}

// TaskMetrics summarises the task stream's fate.
type TaskMetrics struct {
	Arrived        int     `json:"arrived"`
	Assigned       int     `json:"assigned"`
	Expired        int     `json:"expired"`
	PendingAtEnd   int     `json:"pending_at_end"`
	AssignmentRate float64 `json:"assignment_rate"` // assigned / arrived (0 when none arrived)
	MeanWait       float64 `json:"mean_wait"`       // mean arrival→assignment delay over assigned tasks
}

// MatchMetrics summarises assignment quality. Tree distance is the
// server-observable proxy (LCA level); true distance is the Definition 5
// objective the evaluation scores, measured between true locations the
// server never sees.
type MatchMetrics struct {
	LevelCounts  []int     `json:"level_counts"` // histogram over LCA levels 0..D
	MeanLevel    float64   `json:"mean_level"`
	MeanTreeDist float64   `json:"mean_tree_dist"`
	TrueDist     Quantiles `json:"true_dist"`
}

// Quantiles is a deterministic five-number summary.
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// WorkerMetrics summarises pool dynamics.
type WorkerMetrics struct {
	Arrived        int     `json:"arrived"`       // distinct workers that ever came online
	Returns        int     `json:"returns"`       // comebacks after a departure
	Departed       int     `json:"departed"`      // completed departures
	Registrations  int     `json:"registrations"` // engine registrations incl. post-task re-registrations
	OnlineAtEnd    int     `json:"online_at_end"`
	AvailableAtEnd int     `json:"available_at_end"`
	Utilisation    float64 `json:"utilisation"` // Σ busy time / Σ online time
}

// CrossCheckReport is present when the run verified every assignment
// against the sequential brute-force rule. PoolConsistent is false when
// the backend's final available count disagrees with the reference pool —
// a leak in engine accounting.
type CrossCheckReport struct {
	Checked        int      `json:"checked"`
	Violations     int      `json:"violations"`
	PoolConsistent bool     `json:"pool_consistent"`
	Samples        []string `json:"samples,omitempty"`
}

// RunStats carries the wall-clock figures of a run, kept out of Report so
// the JSON stays deterministic.
type RunStats struct {
	WallSeconds  float64
	EventsPerSec float64
}

// JSON is the canonical serialisation: indented, stable key order (struct
// order), trailing newline — suitable for byte-compare in CI.
func (r *Report) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// quantiles computes the summary of xs, sorting a copy. Empty input yields
// zeros.
func quantiles(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	rank := func(q float64) float64 {
		// Nearest-rank on the sorted sample: deterministic and monotone.
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return Quantiles{
		Mean: sum / float64(len(sorted)),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		Max:  sorted[len(sorted)-1],
	}
}
