package sim

import (
	"bytes"
	"testing"
)

// shortPreset returns the named preset cut down to a quick horizon so the
// full matrix of tests stays fast; structure (rates, churn, spatial model)
// is untouched.
func shortPreset(t *testing.T, name string, duration float64) Scenario {
	t.Helper()
	sc, err := Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc.WithDuration(duration)
}

func TestWithDuration(t *testing.T) {
	sc, err := Preset("rush-hour") // multi-segment profile
	if err != nil {
		t.Fatal(err)
	}
	short := sc.WithDuration(200)
	if short.Duration != 200 || short.TaskRate.Duration() != 200 {
		t.Errorf("trim: duration %v, profile ends %v", short.Duration, short.TaskRate.Duration())
	}
	if err := short.Validate(); err != nil {
		t.Errorf("trimmed scenario invalid: %v", err)
	}
	long := sc.WithDuration(2000)
	if long.Duration != 2000 || long.TaskRate.Duration() != 2000 {
		t.Errorf("extend: duration %v, profile ends %v — tasks would stop arriving early",
			long.Duration, long.TaskRate.Duration())
	}
	if err := long.Validate(); err != nil {
		t.Errorf("extended scenario invalid: %v", err)
	}
	if same := sc.WithDuration(sc.Duration); same.TaskRate.Duration() != sc.TaskRate.Duration() {
		t.Error("no-op override changed the profile")
	}
	// The extended run actually generates tasks across the whole horizon.
	r, _, err := Run(Config{Scenario: long.WithDuration(900), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks.Arrived < 2000 { // ≥2/s for 900s at the lowest segment rate
		t.Errorf("extended horizon arrived only %d tasks", r.Tasks.Arrived)
	}
}

func TestPresetsValidate(t *testing.T) {
	names := Scenarios()
	want := []string{"batch-heavy", "capacity-heavy", "chengdu-day", "churn-heavy", "epoch-rotate", "flash-crowd", "rush-hour", "steady"}
	if len(names) != len(want) {
		t.Fatalf("Scenarios() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Scenarios() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	base, _ := Preset("steady")
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero duration", func(sc *Scenario) { sc.Duration = 0 }},
		{"zero grid", func(sc *Scenario) { sc.GridCols = 0 }},
		{"zero epsilon", func(sc *Scenario) { sc.Epsilon = 0 }},
		{"negative workers", func(sc *Scenario) { sc.InitialWorkers = -1 }},
		{"bad return prob", func(sc *Scenario) { sc.ReturnProb = 1.5 }},
		{"returns without away time", func(sc *Scenario) { sc.ReturnProb = 0.5; sc.MeanAway = 0 }},
		{"zero service", func(sc *Scenario) { sc.MeanService = 0 }},
		{"empty task rate", func(sc *Scenario) { sc.TaskRate = nil }},
		{"unknown spatial", func(sc *Scenario) { sc.Spatial = "hyperbolic" }},
		{"normal without sigma", func(sc *Scenario) { sc.Spatial = SpatialNormal; sc.Sigma = 0 }},
		{"negative rotate interval", func(sc *Scenario) { sc.RotateEvery = -1 }},
		{"negative lifetime budget", func(sc *Scenario) { sc.LifetimeEps = -1 }},
		{"lifetime below epsilon", func(sc *Scenario) { sc.LifetimeEps = sc.Epsilon / 2 }},
		{"refit without rotation", func(sc *Scenario) { sc.RotateRefit = true }},
		{"negative capacity", func(sc *Scenario) { sc.Capacity = -1 }},
		{"capacity without capacity-aware policy", func(sc *Scenario) { sc.Capacity = 2 }},
		{"unknown policy", func(sc *Scenario) { sc.Policy = "telepathy" }},
	}
	for _, tc := range cases {
		sc := base
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRunDeterministic is the determinism contract: same (scenario, seed,
// driver) → byte-identical canonical JSON.
func TestRunDeterministic(t *testing.T) {
	for _, driver := range []Driver{DriverEngine, DriverPlatform} {
		sc := shortPreset(t, "churn-heavy", 120)
		cfg := Config{Scenario: sc, Seed: 1, Driver: driver, CrossCheck: true}
		r1, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := r1.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := r2.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: reports differ between identical runs:\n%s\n---\n%s", driver, b1, b2)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	sc := shortPreset(t, "steady", 120)
	r1, _, err := Run(Config{Scenario: sc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(Config{Scenario: sc, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := r1.JSON()
	b2, _ := r2.JSON()
	if bytes.Equal(b1, b2) {
		t.Error("different seeds produced identical reports")
	}
}

// TestCrossCheckAllPresets is the acceptance criterion: zero
// nearest-worker violations across every preset, on the engine driver.
func TestCrossCheckAllPresets(t *testing.T) {
	for _, name := range Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := shortPreset(t, name, 180)
			r, _, err := Run(Config{Scenario: sc, Seed: 1, CrossCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Check == nil {
				t.Fatal("crosscheck report missing")
			}
			if r.Check.Violations != 0 {
				t.Errorf("%d violations of %d checked: %v", r.Check.Violations, r.Check.Checked, r.Check.Samples)
			}
			if !r.Check.PoolConsistent {
				t.Error("backend pool size diverged from the sequential reference")
			}
			if r.Check.Checked == 0 {
				t.Error("crosscheck observed no assignment attempts")
			}
			if r.Tasks.Assigned == 0 {
				t.Error("scenario assigned no tasks")
			}
		})
	}
}

// TestCrossCheckPlatformDriver runs the churn-heavy preset through the
// platform server: same engine underneath, plus slot bookkeeping on top.
func TestCrossCheckPlatformDriver(t *testing.T) {
	sc := shortPreset(t, "churn-heavy", 180)
	r, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: DriverPlatform, CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Check.Violations != 0 {
		t.Errorf("%d violations: %v", r.Check.Violations, r.Check.Samples)
	}
	if !r.Check.PoolConsistent {
		t.Error("platform pool size diverged from the sequential reference")
	}
}

func TestMetricsInvariants(t *testing.T) {
	for _, name := range Scenarios() {
		sc := shortPreset(t, name, 180)
		r, stats, err := Run(Config{Scenario: sc, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		m := r.Tasks
		if m.Assigned+m.Expired+m.PendingAtEnd > m.Arrived {
			t.Errorf("%s: task accounting exceeds arrivals: %+v", name, m)
		}
		if m.AssignmentRate < 0 || m.AssignmentRate > 1 {
			t.Errorf("%s: assignment rate %v outside [0,1]", name, m.AssignmentRate)
		}
		if r.Workers.Utilisation < 0 || r.Workers.Utilisation > 1 {
			t.Errorf("%s: utilisation %v outside [0,1]", name, r.Workers.Utilisation)
		}
		if r.Workers.AvailableAtEnd > r.Workers.OnlineAtEnd {
			t.Errorf("%s: more available than online: %+v", name, r.Workers)
		}
		var levelTotal int
		for _, c := range r.Match.LevelCounts {
			levelTotal += c
		}
		if levelTotal != m.Assigned {
			t.Errorf("%s: level histogram sums to %d, assigned %d", name, levelTotal, m.Assigned)
		}
		if q := r.Match.TrueDist; q.P50 > q.P90 || q.P90 > q.P99 || q.P99 > q.Max {
			t.Errorf("%s: quantiles not monotone: %+v", name, q)
		}
		if r.Events <= 0 || stats.WallSeconds < 0 {
			t.Errorf("%s: events %d, wall %v", name, r.Events, stats.WallSeconds)
		}
	}
}

func TestChurnHeavyActuallyChurns(t *testing.T) {
	sc := shortPreset(t, "churn-heavy", 300)
	r, _, err := Run(Config{Scenario: sc, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers.Departed == 0 {
		t.Error("no departures in churn-heavy")
	}
	if r.Workers.Returns == 0 {
		t.Error("no comebacks in churn-heavy")
	}
	if r.Workers.Registrations <= r.Workers.Arrived {
		t.Errorf("registrations %d not above fresh arrivals %d — no re-registration happened",
			r.Workers.Registrations, r.Workers.Arrived)
	}
}

func TestFlashCrowdExpiresTasks(t *testing.T) {
	sc := shortPreset(t, "flash-crowd", 360) // includes the spike at [240, 300)
	r, _, err := Run(Config{Scenario: sc, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks.Expired == 0 {
		t.Error("flash crowd spike expired no tasks — the preset is not stressing the pool")
	}
}

func TestBatchWindowMode(t *testing.T) {
	sc := shortPreset(t, "chengdu-day", 200)
	r, _, err := Run(Config{Scenario: sc, Seed: 9, CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks.Assigned == 0 {
		t.Fatal("batch mode assigned nothing")
	}
	// Windowed assignment delays every task to its window close: mean wait
	// must be positive (immediate mode with spare capacity keeps it 0).
	if r.Tasks.MeanWait <= 0 {
		t.Errorf("mean wait %v in batch mode, want > 0", r.Tasks.MeanWait)
	}
	if r.Check.Violations != 0 {
		t.Errorf("batch mode violations: %v", r.Check.Samples)
	}
}

// TestEpochRotatePreset runs the epoch-rotate preset far enough to cross
// two rotations on both drivers, cross-checked: rotation must leave the
// sequential nearest-worker contract intact, actually rotate and park, and
// conserve budget — the accountant total equals ε times every fresh report
// (registrations, post-task re-reports, rotation re-obfuscations).
func TestEpochRotatePreset(t *testing.T) {
	for _, driver := range []Driver{DriverEngine, DriverPlatform} {
		driver := driver
		t.Run(string(driver), func(t *testing.T) {
			sc := shortPreset(t, "epoch-rotate", 660) // rotations at 300 and 600
			r, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: driver, CrossCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Check.Violations != 0 {
				t.Errorf("%d violations: %v", r.Check.Violations, r.Check.Samples)
			}
			if !r.Check.PoolConsistent {
				t.Error("pool diverged from the sequential reference across rotations")
			}
			if r.Epochs == nil {
				t.Fatal("epoch metrics missing")
			}
			if r.Epochs.Rotations != 2 || r.Epochs.FinalEpoch != 3 {
				t.Errorf("rotations = %d, final epoch %d", r.Epochs.Rotations, r.Epochs.FinalEpoch)
			}
			if r.Epochs.RotatedReports == 0 {
				t.Error("no worker ever re-reported across a rotation")
			}
			if r.Epochs.ParkedWorkers == 0 {
				t.Error("lifetime budgets never exhausted — the preset is not stressing accounting")
			}
			if r.Epochs.BudgetLimit != sc.LifetimeEps {
				t.Errorf("budget limit %v, want %v", r.Epochs.BudgetLimit, sc.LifetimeEps)
			}
			// Budget conservation: every accepted fresh report spends ε
			// exactly once — registrations (incl. post-task re-reports) plus
			// rotation re-obfuscations.
			want := sc.Epsilon * float64(r.Workers.Registrations+r.Epochs.RotatedReports)
			if diff := r.Epochs.BudgetSpent - want; diff < -1e-6 || diff > 1e-6 {
				t.Errorf("budget spent %v, fresh reports say %v", r.Epochs.BudgetSpent, want)
			}
			if r.Tasks.Assigned == 0 {
				t.Error("no assignments across rotations")
			}
		})
	}
}

// TestRotationChangesTree asserts a rotation actually republishes: with
// everything else fixed, enabling rotation changes downstream assignment
// outcomes (the tree the codes live in is different after t=300).
func TestRotationChangesTree(t *testing.T) {
	base := shortPreset(t, "steady", 450)
	rotated := base
	rotated.RotateEvery = 300
	r1, _, err := Run(Config{Scenario: base, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(Config{Scenario: rotated, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epochs == nil || r2.Epochs.Rotations != 1 {
		t.Fatalf("rotated run: %+v", r2.Epochs)
	}
	if r1.Epochs != nil {
		t.Error("non-rotating run emitted epoch metrics")
	}
	b1, _ := r1.JSON()
	b2, _ := r2.JSON()
	if bytes.Equal(b1, b2) {
		t.Error("enabling rotation changed nothing")
	}
}

// TestLifetimeBudgetWithoutRotation exercises accounting alone: short
// lifetimes park workers through the ordinary register/release path even
// when no rotation ever happens.
func TestLifetimeBudgetWithoutRotation(t *testing.T) {
	sc := shortPreset(t, "churn-heavy", 300)
	sc.LifetimeEps = 2 * sc.Epsilon // two reports per worker, ever
	r, _, err := Run(Config{Scenario: sc, Seed: 1, CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Check.Violations != 0 {
		t.Errorf("violations: %v", r.Check.Samples)
	}
	if r.Epochs == nil || r.Epochs.ParkedWorkers == 0 {
		t.Fatal("tight lifetime budget parked nobody")
	}
	if r.Epochs.Rotations != 0 {
		t.Errorf("rotations = %d without RotateEvery", r.Epochs.Rotations)
	}
	want := sc.Epsilon * float64(r.Workers.Registrations)
	if diff := r.Epochs.BudgetSpent - want; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("budget spent %v, registrations say %v", r.Epochs.BudgetSpent, want)
	}
}

// TestCapacityHeavyPreset is the policy layer's acceptance test: the
// capacitated sequential rule survives the full churn + rotation gauntlet
// with zero cross-check violations, and the engine and platform drivers
// produce bit-identical assignment outcomes.
func TestCapacityHeavyPreset(t *testing.T) {
	sc := shortPreset(t, "capacity-heavy", 300) // crosses the rotation at 240
	var blobs [][]byte
	for _, driver := range []Driver{DriverEngine, DriverPlatform} {
		r, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: driver, CrossCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Check.Violations != 0 {
			t.Fatalf("%s: %d violations of %d checked: %v",
				driver, r.Check.Violations, r.Check.Checked, r.Check.Samples)
		}
		if !r.Check.PoolConsistent {
			t.Fatalf("%s: pool diverged from the capacitated reference", driver)
		}
		if r.Policy != "capacity-greedy" || r.Capacity != 3 {
			t.Fatalf("%s: report policy %q capacity %d", driver, r.Policy, r.Capacity)
		}
		if r.Epochs == nil || r.Epochs.Rotations != 1 {
			t.Fatalf("%s: epochs %+v, want one rotation", driver, r.Epochs)
		}
		if r.Tasks.Assigned == 0 {
			t.Fatalf("%s: no assignments", driver)
		}
		// Capacity must actually matter: more tasks assigned than distinct
		// worker stints would allow under the one-task rule at peak.
		if r.Tasks.Assigned <= r.Workers.Registrations && r.Workers.Utilisation == 0 {
			t.Fatalf("%s: capacity never exercised: %+v", driver, r.Tasks)
		}
		// Neutralise the driver tag: everything else must be byte-identical
		// across drivers.
		r.Driver = ""
		blob, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("capacity-heavy reports differ across drivers:\n%s\n---\n%s", blobs[0], blobs[1])
	}
}

// TestBatchOptimalScenario runs the windowed chengdu-day preset under the
// batch-optimal policy with the feasibility cross-check: every assignment
// must consume a genuinely available unit and the pool must stay
// consistent, even though the decisions deviate from the sequential rule.
func TestBatchOptimalScenario(t *testing.T) {
	sc := shortPreset(t, "chengdu-day", 200)
	sc.Policy = "batch-optimal"
	sc.Capacity = 2
	for _, driver := range []Driver{DriverEngine, DriverPlatform} {
		r, _, err := Run(Config{Scenario: sc, Seed: 9, Driver: driver, CrossCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Check.Violations != 0 {
			t.Errorf("%s: feasibility violations: %v", driver, r.Check.Samples)
		}
		if !r.Check.PoolConsistent {
			t.Errorf("%s: pool diverged", driver)
		}
		if r.Tasks.Assigned == 0 {
			t.Errorf("%s: batch-optimal assigned nothing", driver)
		}
		if r.Policy != "batch-optimal:k=8" {
			t.Errorf("%s: report policy %q", driver, r.Policy)
		}
	}
}

func TestUnknownDriverRejected(t *testing.T) {
	sc := shortPreset(t, "steady", 60)
	if _, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: "carrier-pigeon"}); err == nil {
		t.Error("unknown driver accepted")
	}
}
