package sim

import (
	"bytes"
	"testing"
)

// TestClusterDriverMatchesEngine is the multi-node determinism contract:
// every preset, run through a 3-backend coordinator, produces zero
// crosscheck violations and a byte-identical canonical report to the
// engine driver (driver tag aside). epoch-rotate runs long enough to
// cross a rotation boundary, so at least one distributed two-phase
// rotation is inside the pinned bytes.
func TestClusterDriverMatchesEngine(t *testing.T) {
	for _, name := range Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			duration := 180.0
			if name == "epoch-rotate" {
				duration = 660 // two rotations (RotateEvery 300)
			}
			sc := shortPreset(t, name, duration)
			ref, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: DriverEngine})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: DriverCluster, CrossCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			if got.Check == nil || got.Check.Checked == 0 {
				t.Fatal("cluster crosscheck observed nothing")
			}
			if got.Check.Violations != 0 {
				t.Errorf("%d violations of %d checked: %v", got.Check.Violations, got.Check.Checked, got.Check.Samples)
			}
			if !got.Check.PoolConsistent {
				t.Error("cluster pool size diverged from the sequential reference")
			}
			if name == "epoch-rotate" && (got.Epochs == nil || got.Epochs.Rotations == 0) {
				t.Error("epoch-rotate run crossed no rotation boundary")
			}
			ref.Driver, got.Driver = "", ""
			ref.Check = nil
			got.Check = nil
			b1, err := ref.JSON()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("cluster report diverged from engine driver:\n%s\n---\n%s", b1, b2)
			}
		})
	}
}

// TestClusterDriverNodeCounts pins the answer against the backend count:
// sharding across 1, 2, 3, or 5 nodes must not change a single byte.
func TestClusterDriverNodeCounts(t *testing.T) {
	sc := shortPreset(t, "batch-heavy", 180)
	ref, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: DriverEngine})
	if err != nil {
		t.Fatal(err)
	}
	bref, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 5} {
		got, _, err := Run(Config{Scenario: sc, Seed: 1, Driver: DriverCluster, Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		got.Driver = ref.Driver
		bgot, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bref, bgot) {
			t.Errorf("%d nodes: report diverged from engine driver", nodes)
		}
	}
}
