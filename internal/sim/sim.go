// Package sim is a deterministic, seed-driven event simulator for the
// online assignment stack. It drives the sharded engine (or the platform
// server wrapped around it) through temporal scenarios the static
// batch pipelines cannot express: Poisson and bursty task arrivals, worker
// churn (arrive, serve, go offline, come back with a freshly obfuscated
// code), task deadlines with expiry, and time-sliced batch assignment
// windows.
//
// The simulator owns a virtual clock and an event heap ordered by (time,
// insertion sequence); every stochastic choice is drawn from an rng.Source
// derived from the run seed, and the loop is single-threaded, so a run —
// including its metrics report — is a bit-for-bit pure function of
// (scenario, seed, driver, shards). An optional cross-check mode replays
// every assignment against the sequential brute-force rule of Alg. 4 and
// counts divergences (zero expected: the engine's tie-breaking makes a
// sequentially driven engine identical to the scanning matcher).
package sim

import (
	"errors"
	"fmt"
	"time"

	"github.com/pombm/pombm/internal/cluster"
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/epoch"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// Config selects what to run.
type Config struct {
	Scenario   Scenario
	Seed       uint64
	Driver     Driver // DriverEngine when empty
	Shards     int    // engine shard count; 0 = engine default
	Nodes      int    // cluster driver backend count; 0 = 3
	CrossCheck bool   // verify every assignment against the sequential rule
}

type workerState uint8

const (
	wOffline workerState = iota
	wAvailable
	wBusy
)

// simWorker is one worker's ground truth: the true location and lifecycle
// the server never sees. active counts its outstanding assignments; the
// worker is in the pool (wAvailable) exactly while online, not leaving, and
// active < capacity.
type simWorker struct {
	loc     geo.Point
	state   workerState
	active  int  // outstanding assignments
	leaving bool // stop taking work; go offline at the last completion
	parked  bool // lifetime ε budget exhausted; offline for good
	regID   int  // current registration id; fresh per online stint
	code    hst.Code

	onlineSince float64
	busySince   float64 // start of the current active ≥ 1 stretch
	onlineTotal float64
	busyTotal   float64
}

type taskStatus uint8

const (
	tPending taskStatus = iota
	tAssigned
	tExpired
)

type simTask struct {
	loc      geo.Point
	code     hst.Code // reported code; drawn at first assignment attempt
	arriveAt float64
	status   taskStatus
}

// sim is one run's mutable state.
type sim struct {
	sc      Scenario
	backend backend
	tree    *hst.Tree
	grid    *geo.Grid
	mech    *privacy.HSTMechanism
	check   *crossCheck
	policy  engine.Policy
	cap     int // per-worker capacity units (≥ 1)

	heap eventHeap
	seq  int64
	now  float64

	workers  []simWorker
	tasks    []simTask
	pending  []int // task indexes awaiting assignment, arrival order
	regOwner []int // registration id → worker index

	// Derived randomness, one stream per concern so adding draws to one
	// cannot reseed another.
	workerLocSrc *rng.Source
	taskLocSrc   *rng.Source
	obfSrc       *rng.Source
	lifeSrc      *rng.Source
	serviceSrc   *rng.Source
	churnSrc     *rng.Source

	sampleWorker workload.PointSampler
	sampleTask   workload.PointSampler

	events        int
	expired       int
	assignedTasks int
	waitSum       float64
	levelCounts   []int
	levelSum      int
	treeDistSum   float64
	trueDists     []float64
	freshArrivals int
	returns       int
	departures    int
	registrations int
	rotations     int
	rotatedRep    int // successful rotation re-reports
	parkedCount   int
}

// Run executes the configured scenario and returns its deterministic
// report plus wall-clock stats.
func Run(cfg Config) (*Report, *RunStats, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Driver == "" {
		cfg.Driver = DriverEngine
	}
	sc := cfg.Scenario
	root := rng.New(cfg.Seed)

	pol, err := engine.PolicyByName(sc.Policy)
	if err != nil {
		return nil, nil, err
	}
	capacity := sc.Capacity
	if capacity == 0 {
		capacity = 1
	}

	grid, err := geo.NewGrid(sc.region(), sc.GridCols, sc.GridCols)
	if err != nil {
		return nil, nil, err
	}

	// One tree serves both drivers: built from the run seed and injected
	// into the platform server, so a scenario's assignment decisions — and
	// its report bytes, driver tag aside — coincide across the stack.
	// Rotated epochs coincide too: both drivers' rotation controllers
	// derive staged trees from the same (seed, epoch) stream.
	tree, err := hst.Build(grid.Points(), root.Derive("sim-hst"))
	if err != nil {
		return nil, nil, err
	}
	var be backend
	var shards int
	switch cfg.Driver {
	case DriverEngine:
		eng, err := engine.NewWithOptions(tree, cfg.Shards,
			engine.WithPolicy(pol), engine.WithDefaultCapacity(capacity))
		if err != nil {
			return nil, nil, err
		}
		ctrl, err := epoch.NewController(epoch.Config{
			Tree:     tree,
			Seed:     cfg.Seed,
			Epsilon:  sc.Epsilon,
			Lifetime: sc.LifetimeEps,
		})
		if err != nil {
			return nil, nil, err
		}
		be, shards = &engineBackend{eng: eng, ctrl: ctrl, refit: sc.RotateRefit}, eng.Shards()
	case DriverPlatform:
		srv, err := platform.NewServer(sc.region(), sc.GridCols, sc.GridCols, sc.Epsilon, cfg.Seed,
			platform.WithShards(cfg.Shards), platform.WithLifetimeBudget(sc.LifetimeEps),
			platform.WithPolicy(pol), platform.WithDefaultCapacity(capacity),
			platform.WithTree(tree))
		if err != nil {
			return nil, nil, err
		}
		be, shards = newPlatformBackend(srv, sc.RotateRefit), srv.Core().Shards()
	case DriverCluster:
		// The coordinator's server is a platform.Server over a fanned-out
		// core, so the platform backend drives it verbatim: identical slot,
		// budget, and rotation bookkeeping, with every engine operation
		// sharded across in-process nodes.
		nNodes := cfg.Nodes
		if nNodes == 0 {
			nNodes = 3
		}
		nodes := make([]cluster.NodeConn, nNodes)
		for i := range nodes {
			nodes[i] = cluster.LocalNode(cluster.NewNode())
		}
		coord, err := cluster.New(cluster.Config{
			Region: sc.region(), Cols: sc.GridCols, Rows: sc.GridCols,
			Epsilon: sc.Epsilon, Seed: cfg.Seed,
			Nodes: nodes, Shards: cfg.Shards,
			Policy: sc.Policy, DefaultCapacity: capacity,
			Lifetime: sc.LifetimeEps, Tree: tree,
		})
		if err != nil {
			return nil, nil, err
		}
		be, shards = newPlatformBackend(coord.Server(), sc.RotateRefit), coord.Server().Core().Shards()
	default:
		return nil, nil, fmt.Errorf("sim: unknown driver %q", cfg.Driver)
	}
	mech, err := privacy.NewHSTMechanism(tree, sc.Epsilon)
	if err != nil {
		return nil, nil, err
	}

	s := &sim{
		sc:           sc,
		backend:      be,
		tree:         tree,
		grid:         grid,
		mech:         mech,
		policy:       pol,
		cap:          capacity,
		workerLocSrc: root.Derive("worker-loc"),
		taskLocSrc:   root.Derive("task-loc"),
		obfSrc:       root.Derive("obfuscate"),
		lifeSrc:      root.Derive("lifetime"),
		serviceSrc:   root.Derive("service"),
		churnSrc:     root.Derive("churn"),
		levelCounts:  make([]int, tree.Depth()+1),
	}
	s.sampleWorker, s.sampleTask = sc.samplers()
	if cfg.CrossCheck {
		// The greedy policies follow the (capacitated) sequential rule and
		// are checked strictly; window-solving policies diverge from it by
		// design, so only feasibility and pool consistency are asserted.
		strict := pol.Name() == engine.Greedy().Name() || pol.Name() == engine.CapacityGreedy().Name()
		s.check = newCrossCheck(tree, strict)
	}

	if err := s.schedule(root); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	s.loop()
	wall := time.Since(start).Seconds()

	report := s.report(cfg, shards)
	stats := &RunStats{WallSeconds: wall}
	if wall > 0 {
		stats.EventsPerSec = float64(s.events) / wall
	}
	return report, stats, nil
}

// schedule seeds the heap: initial workers at t = 0, fresh worker arrivals
// and tasks at their drawn times, and the batch window ticks.
func (s *sim) schedule(root *rng.Source) error {
	for i := 0; i < s.sc.InitialWorkers; i++ {
		s.newWorker(0)
	}
	for _, t := range workload.PoissonTimes(s.sc.WorkerArrivalRate, s.sc.Duration, root.Derive("worker-times")) {
		s.newWorker(t)
	}
	taskTimes, err := s.sc.TaskRate.Times(root.Derive("task-times"))
	if err != nil {
		return err
	}
	for _, t := range taskTimes {
		s.push(event{at: t, kind: evTaskArrive, task: len(s.tasks)})
		s.tasks = append(s.tasks, simTask{arriveAt: t})
	}
	if s.sc.BatchWindow > 0 {
		s.push(event{at: s.sc.BatchWindow, kind: evBatchTick})
	}
	if s.sc.RotateEvery > 0 {
		for t := s.sc.RotateEvery; t < s.sc.Duration; t += s.sc.RotateEvery {
			s.push(event{at: t, kind: evRotate})
		}
	}
	return nil
}

// newWorker creates a fresh worker arriving at time t.
func (s *sim) newWorker(t float64) {
	s.push(event{at: t, kind: evWorkerArrive, worker: len(s.workers)})
	s.workers = append(s.workers, simWorker{regID: -1})
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.heap.push(e)
}

func (s *sim) loop() {
	for s.heap.Len() > 0 {
		e := s.heap.pop()
		if e.at > s.sc.Duration {
			// Pops come in time order and handlers never schedule into the
			// past, so everything left is past the horizon too: stop here
			// and close the books at Duration.
			break
		}
		s.now = e.at
		s.events++
		switch e.kind {
		case evWorkerArrive:
			s.workerArrive(e.worker)
		case evWorkerDepart:
			s.workerDepart(e.worker)
		case evTaskArrive:
			s.taskArrive(e.task)
		case evTaskExpire:
			s.taskExpire(e.task)
		case evTaskComplete:
			s.taskComplete(e.worker, e.task)
		case evBatchTick:
			s.batchTick()
		case evRotate:
			s.rotate()
		}
	}
	s.closeBooks()
}

// capOf returns worker w's registration capacity: the scenario's uniform
// Capacity, or — under CapacitySkew — the deterministic per-worker mix
// 1 + (w mod CapacitySkew), never above Capacity. Keying on the stable
// worker index keeps a worker's capacity fixed across re-registrations,
// rotations, and drivers.
func (s *sim) capOf(w int) int {
	if s.sc.CapacitySkew <= 0 {
		return s.cap
	}
	c := 1 + w%s.sc.CapacitySkew
	if c > s.cap {
		c = s.cap
	}
	return c
}

// registerWorker brings worker w online at its current true location under
// a fresh registration id, a freshly obfuscated code, and a full capacity.
// It reports false — and parks the worker — when the lifetime budget cannot
// afford the fresh report.
func (s *sim) registerWorker(w int) bool {
	wk := &s.workers[w]
	snapped := s.tree.CodeOf(s.grid.Snap(wk.loc))
	wk.code = s.mech.ObfuscateWalk(snapped, s.obfSrc)
	regID := len(s.regOwner)
	s.regOwner = append(s.regOwner, w)
	if err := s.backend.register(regID, w, wk.code, s.capOf(w)); err != nil {
		if errors.Is(err, epoch.ErrBudgetExhausted) {
			// The registration id was never seen by the backend: drop it so
			// sim regIDs stay aligned with platform slot numbers.
			s.regOwner = s.regOwner[:len(s.regOwner)-1]
			s.parkWorker(w)
			return false
		}
		// Codes come from the mechanism over the same tree; any other
		// failure is a bug worth surfacing loudly rather than skewing
		// metrics.
		panic(fmt.Sprintf("sim: register worker %d: %v", w, err))
	}
	wk.regID = regID
	wk.state = wAvailable
	wk.active = 0
	s.registrations++
	if s.check != nil {
		s.check.register(wk.regID, wk.code, s.capOf(w))
	}
	return true
}

// parkWorker retires a worker whose lifetime ε budget is exhausted: it is
// offline for good — no comeback is ever scheduled.
func (s *sim) parkWorker(w int) {
	wk := &s.workers[w]
	if wk.state != wOffline {
		wk.onlineTotal += s.now - wk.onlineSince
	}
	wk.state = wOffline
	wk.parked = true
	s.parkedCount++
}

func (s *sim) workerArrive(w int) {
	wk := &s.workers[w]
	if wk.state != wOffline || wk.parked {
		return
	}
	wk.loc = s.sampleWorker(s.workerLocSrc)
	wk.leaving = false
	wk.onlineSince = s.now
	if wk.regID == -1 {
		s.freshArrivals++
	} else {
		s.returns++
	}
	if !s.registerWorker(w) {
		return // parked: the arrival happened, the registration was refused
	}
	if s.sc.MeanOnline > 0 {
		s.push(event{at: s.now + s.lifeSrc.Exponential(1/s.sc.MeanOnline), kind: evWorkerDepart, worker: w})
	}
	s.drainPending()
}

// workerDepart ends worker w's online stint. An idle worker leaves
// immediately and may come back; a worker with outstanding tasks stops
// taking new work now — its pooled spare units are withdrawn — finishes
// what it carries, and goes fully offline at its last completion.
func (s *sim) workerDepart(w int) {
	wk := &s.workers[w]
	if wk.state == wOffline {
		return // already left (e.g. completed its last task while leaving)
	}
	if wk.active == 0 {
		if !s.backend.withdraw(wk.regID, wk.code) {
			panic(fmt.Sprintf("sim: withdraw of available worker %d (reg %d) failed", w, wk.regID))
		}
		if s.check != nil {
			s.check.withdraw(wk.regID)
		}
		s.goOffline(w)
		return
	}
	wk.leaving = true
	// The withdrawal pulls any spare pooled units out immediately (for a
	// fully busy worker there is nothing pooled, and the engine driver's
	// removal is a no-op — both drivers converge on the same pool).
	s.backend.withdraw(wk.regID, wk.code)
	if s.check != nil {
		s.check.withdraw(wk.regID)
	}
	wk.state = wBusy
}

// goOffline finalises a departure and possibly schedules a comeback.
func (s *sim) goOffline(w int) {
	wk := &s.workers[w]
	wk.state = wOffline
	wk.onlineTotal += s.now - wk.onlineSince
	s.departures++
	if s.sc.ReturnProb > 0 && s.churnSrc.Float64() < s.sc.ReturnProb {
		away := s.churnSrc.Exponential(1 / s.sc.MeanAway)
		if at := s.now + away; at < s.sc.Duration {
			s.push(event{at: at, kind: evWorkerArrive, worker: w})
		}
	}
}

func (s *sim) taskArrive(ti int) {
	t := &s.tasks[ti]
	t.loc = s.sampleTask(s.taskLocSrc)
	s.pending = append(s.pending, ti)
	if s.sc.Deadline > 0 {
		s.push(event{at: s.now + s.sc.Deadline, kind: evTaskExpire, task: ti})
	}
	if s.sc.BatchWindow == 0 {
		s.drainPending()
	}
}

func (s *sim) taskExpire(ti int) {
	t := &s.tasks[ti]
	if t.status != tPending {
		return
	}
	t.status = tExpired
	s.expired++
}

// taskComplete hands one capacity unit back: the worker has travelled to
// the task, so its true location is now the task's, and the unit re-enters
// the pool through the release path — a re-report at a freshly obfuscated
// code under the same stint id, moving any spare pooled units along with
// it. A leaving (or parked, or rotation-dropped) worker's units do not
// return: each completion is acknowledged through the backend's finish
// path, and the worker goes fully offline at its last one.
func (s *sim) taskComplete(w, ti int) {
	wk := &s.workers[w]
	wk.active--
	if wk.active == 0 {
		wk.busyTotal += s.now - wk.busySince
	}
	wk.loc = s.tasks[ti].loc
	if wk.parked || wk.leaving {
		s.backend.finish(wk.regID, w)
		if wk.leaving && wk.active == 0 {
			s.goOffline(w)
		}
		return
	}
	oldCode := wk.code
	snapped := s.tree.CodeOf(s.grid.Snap(wk.loc))
	code := s.mech.ObfuscateWalk(snapped, s.obfSrc)
	capLeft := s.capOf(w) - wk.active
	if err := s.backend.release(wk.regID, w, oldCode, code, capLeft); err != nil {
		if errors.Is(err, epoch.ErrBudgetExhausted) {
			// The post-task re-report is unaffordable: the worker is parked
			// instead of re-entering the pool, its spare units withdrawn.
			if s.check != nil {
				s.check.withdraw(wk.regID)
			}
			s.parkWorker(w)
			return
		}
		panic(fmt.Sprintf("sim: release worker %d: %v", w, err))
	}
	wk.code = code
	s.registrations++
	if s.check != nil {
		s.check.register(wk.regID, wk.code, capLeft)
	}
	wk.state = wAvailable
	if s.sc.BatchWindow == 0 {
		s.drainPending()
	}
}

// batchTick closes one time-sliced window: all pending tasks are assigned
// as a batch in arrival order; leftovers stay pending for the next window.
func (s *sim) batchTick() {
	s.compactPending() // drop expired tasks in place before batching
	if len(s.pending) > 0 {
		codes := make([]hst.Code, len(s.pending))
		for i, ti := range s.pending {
			codes[i] = s.obfuscateTask(ti)
		}
		ids := s.backend.assignBatch(codes)
		for i, id := range ids {
			if s.check != nil {
				s.check.observe(codes[i], id, id != engine.None)
			}
			if id != engine.None {
				s.completeAssignment(s.pending[i], codes[i], id)
			}
		}
		s.compactPending() // drop the just-assigned
	}
	if next := s.now + s.sc.BatchWindow; next <= s.sc.Duration {
		s.push(event{at: next, kind: evBatchTick})
	}
}

// rotate swaps the serving epoch: the backend publishes a fresh tree and
// every available worker re-reports under it with a freshly obfuscated
// code (and a fresh registration id — a new stint in the new epoch), with
// each re-report spending lifetime budget; exhausted workers are parked.
// Busy workers keep serving their assignment and re-report under the new
// tree at completion. Pending tasks re-obfuscate lazily: their old-epoch
// codes are meaningless under the new tree.
func (s *sim) rotate() {
	var order []int
	var capLeft []int
	for i := range s.workers {
		if s.workers[i].state == wAvailable {
			order = append(order, i)
			capLeft = append(capLeft, s.capOf(i)-s.workers[i].active)
		}
	}
	var newMech *privacy.HSTMechanism
	res, err := s.backend.rotate(order, capLeft,
		func(w int, tree *hst.Tree) hst.Code {
			if newMech == nil || newMech.Tree() != tree {
				m, err := privacy.NewHSTMechanism(tree, s.sc.Epsilon)
				if err != nil {
					panic(fmt.Sprintf("sim: rotate mechanism: %v", err))
				}
				newMech = m
			}
			wk := &s.workers[w]
			return newMech.ObfuscateWalk(tree.CodeOf(s.grid.Snap(wk.loc)), s.obfSrc)
		},
		func(w int) int {
			id := len(s.regOwner)
			s.regOwner = append(s.regOwner, w)
			return id
		})
	if err != nil {
		panic(fmt.Sprintf("sim: rotate: %v", err))
	}
	for i, w := range order {
		wk := &s.workers[w]
		if s.check != nil {
			s.check.withdraw(wk.regID)
		}
		if res.parked[i] {
			s.parkWorker(w)
			continue
		}
		wk.regID = res.newID[i]
		wk.code = res.codes[i]
		s.rotatedRep++
		if s.check != nil {
			s.check.register(wk.regID, wk.code, capLeft[i])
		}
	}
	s.tree = res.tree
	if newMech == nil || newMech.Tree() != res.tree {
		// No available worker reported (empty pool): build the new epoch's
		// mechanism now for future reports and tasks.
		m, err := privacy.NewHSTMechanism(res.tree, s.sc.Epsilon)
		if err != nil {
			panic(fmt.Sprintf("sim: rotate mechanism: %v", err))
		}
		newMech = m
	}
	s.mech = newMech
	if s.check != nil {
		s.check.retree(res.tree)
	}
	for _, ti := range s.pending {
		s.tasks[ti].code = "" // re-draw under the new tree at the next attempt
	}
	s.rotations++
	s.drainPending()
}

// obfuscateTask draws the task's reported code. Each task reports once; in
// batch mode the report is drawn when the window containing its assignment
// attempt first closes — subsequent windows reuse it.
func (s *sim) obfuscateTask(ti int) hst.Code {
	t := &s.tasks[ti]
	if t.code == "" {
		snapped := s.tree.CodeOf(s.grid.Snap(t.loc))
		t.code = s.mech.ObfuscateWalk(snapped, s.obfSrc)
	}
	return t.code
}

// drainPending serves the immediate-mode queue: assign the oldest pending
// tasks until one fails (the pool is empty) or the queue drains.
func (s *sim) drainPending() {
	if s.sc.BatchWindow > 0 {
		return
	}
	for len(s.pending) > 0 {
		ti := s.pending[0]
		if s.tasks[ti].status != tPending {
			s.pending = s.pending[1:]
			continue
		}
		code := s.obfuscateTask(ti)
		id, ok := s.backend.assign(code)
		if s.check != nil {
			s.check.observe(code, id, ok)
		}
		if !ok {
			return
		}
		s.pending = s.pending[1:]
		s.completeAssignment(ti, code, id)
	}
}

// completeAssignment records the match and schedules the completion. The
// worker leaves the pool only when the assignment consumed its last
// capacity unit.
func (s *sim) completeAssignment(ti int, taskCode hst.Code, regID int) {
	t := &s.tasks[ti]
	t.status = tAssigned
	w := s.regOwner[regID]
	wk := &s.workers[w]
	if wk.active == 0 {
		wk.busySince = s.now
	}
	wk.active++
	if wk.active >= s.capOf(w) {
		wk.state = wBusy
	}

	lvl := s.tree.LCALevel(taskCode, wk.code)
	for lvl >= len(s.levelCounts) {
		s.levelCounts = append(s.levelCounts, 0) // a rotated tree may be deeper
	}
	s.levelCounts[lvl]++
	s.levelSum += lvl
	s.treeDistSum += hst.LevelDist(lvl)
	s.trueDists = append(s.trueDists, t.loc.Dist(wk.loc))
	s.waitSum += s.now - t.arriveAt
	s.assignedTasks++

	s.push(event{at: s.now + s.serviceSrc.Exponential(1/s.sc.MeanService), kind: evTaskComplete, worker: w, task: ti})
}

// compactPending drops assigned and expired tasks from the queue in place,
// preserving arrival order without allocating.
func (s *sim) compactPending() {
	live := s.pending[:0]
	for _, ti := range s.pending {
		if s.tasks[ti].status == tPending {
			live = append(live, ti)
		}
	}
	s.pending = live
}

// closeBooks accrues online/busy time up to the horizon for workers still
// active at the end.
func (s *sim) closeBooks() {
	s.now = s.sc.Duration
	for i := range s.workers {
		wk := &s.workers[i]
		if wk.state != wOffline {
			if wk.active > 0 {
				wk.busyTotal += s.now - wk.busySince
			}
			wk.onlineTotal += s.now - wk.onlineSince
		}
	}
}

func (s *sim) report(cfg Config, shards int) *Report {
	r := &Report{
		Scenario:     s.sc.Name,
		Seed:         cfg.Seed,
		Driver:       string(cfg.Driver),
		Shards:       shards,
		GridCols:     s.sc.GridCols,
		Capacity:     s.sc.Capacity,
		CapacitySkew: s.sc.CapacitySkew,
		Epsilon:      s.sc.Epsilon,
		Depth:        s.tree.Depth(),
		Degree:       s.tree.Degree(),
		SimDuration:  s.sc.Duration,
		Events:       s.events,
	}
	if s.policy.Name() != engine.Greedy().Name() {
		r.Policy = s.policy.Name()
	}

	arrived := len(s.tasks)
	pendingAtEnd := 0
	for i := range s.tasks {
		if s.tasks[i].status == tPending {
			pendingAtEnd++
		}
	}
	r.Tasks = TaskMetrics{
		Arrived:      arrived,
		Assigned:     s.assignedTasks,
		Expired:      s.expired,
		PendingAtEnd: pendingAtEnd,
	}
	if arrived > 0 {
		r.Tasks.AssignmentRate = float64(s.assignedTasks) / float64(arrived)
	}
	if s.assignedTasks > 0 {
		r.Tasks.MeanWait = s.waitSum / float64(s.assignedTasks)
	}

	r.Match = MatchMetrics{
		LevelCounts: s.levelCounts,
		TrueDist:    quantiles(s.trueDists),
	}
	if s.assignedTasks > 0 {
		r.Match.MeanLevel = float64(s.levelSum) / float64(s.assignedTasks)
		r.Match.MeanTreeDist = s.treeDistSum / float64(s.assignedTasks)
	}

	var onlineAtEnd, availableAtEnd int
	var busyTotal, onlineTotal float64
	for i := range s.workers {
		wk := &s.workers[i]
		busyTotal += wk.busyTotal
		onlineTotal += wk.onlineTotal
		if wk.state != wOffline {
			onlineAtEnd++
		}
		if wk.state == wAvailable {
			availableAtEnd++
		}
	}
	r.Workers = WorkerMetrics{
		Arrived:        s.freshArrivals,
		Returns:        s.returns,
		Departed:       s.departures,
		Registrations:  s.registrations,
		OnlineAtEnd:    onlineAtEnd,
		AvailableAtEnd: availableAtEnd,
	}
	if onlineTotal > 0 {
		r.Workers.Utilisation = busyTotal / onlineTotal
	}

	if s.sc.RotateEvery > 0 || s.sc.LifetimeEps > 0 {
		finalEpoch, spent, limit := s.backend.epochInfo()
		r.Epochs = &EpochMetrics{
			Rotations:      s.rotations,
			FinalEpoch:     finalEpoch,
			RotatedReports: s.rotatedRep,
			ParkedWorkers:  s.parkedCount,
			BudgetLimit:    limit,
			BudgetSpent:    spent,
		}
	}

	if s.check != nil {
		r.Check = &CrossCheckReport{
			Checked:        s.check.checked,
			Violations:     s.check.nViolations,
			PoolConsistent: s.backend.poolSize() == len(s.check.avail),
			Samples:        s.check.samples,
		}
	}
	return r
}
