package sim

import (
	"fmt"
	"sort"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/workload"
)

// Spatial selects the location model arrivals draw from.
type Spatial string

// The spatial models, backed by internal/workload samplers.
const (
	SpatialUniform Spatial = "uniform" // uniform over the region
	SpatialNormal  Spatial = "normal"  // Normal(µ, σ) per coordinate (Table II)
	SpatialChengdu Spatial = "chengdu" // fixed Chengdu hotspot mixture (Table III)
)

// Scenario describes one temporal workload: how workers and tasks arrive,
// linger, and leave. All times are in simulated seconds; all stochastic
// choices are drawn from sources derived from the run seed, so a scenario
// is a pure function of (Scenario, seed).
type Scenario struct {
	Name     string  `json:"name"`
	Duration float64 `json:"duration"` // simulated horizon

	// Infrastructure published by the server.
	GridCols int     `json:"grid_cols"` // predefined grid is GridCols × GridCols
	Epsilon  float64 `json:"epsilon"`

	// Worker population dynamics.
	InitialWorkers    int     `json:"initial_workers"`     // online at t = 0
	WorkerArrivalRate float64 `json:"worker_arrival_rate"` // fresh workers per second (Poisson)
	MeanOnline        float64 `json:"mean_online"`         // mean online stint before departing; 0 = never departs
	ReturnProb        float64 `json:"return_prob"`         // chance a departed worker re-registers later
	MeanAway          float64 `json:"mean_away"`           // mean offline gap before returning

	// Task stream.
	TaskRate    workload.RateProfile `json:"task_rate"`    // piecewise-constant arrival intensity
	MeanService float64              `json:"mean_service"` // mean service time once assigned
	Deadline    float64              `json:"deadline"`     // pending tasks expire after this; 0 = never
	BatchWindow float64              `json:"batch_window"` // > 0: assign in windows of this length; 0: immediately

	// Spatial model.
	Spatial Spatial `json:"spatial"`
	Mu      float64 `json:"mu,omitempty"`    // SpatialNormal center
	Sigma   float64 `json:"sigma,omitempty"` // SpatialNormal spread

	// Epoch dynamics. RotateEvery > 0 rotates the serving epoch on that
	// period: a fresh tree is published and every available worker
	// re-reports under it (spending budget when LifetimeEps is set;
	// exhausted workers are parked). RotateRefit orders each new tree's
	// carving permutation by the report density observed during the
	// outgoing epoch. LifetimeEps > 0 enforces a per-worker lifetime ε
	// budget on every fresh report, rotation or not.
	RotateEvery float64 `json:"rotate_every,omitempty"`
	RotateRefit bool    `json:"rotate_refit,omitempty"`
	LifetimeEps float64 `json:"lifetime_eps,omitempty"`

	// Assignment rule. Policy selects the engine's assignment policy by
	// spec ("" = "greedy"; see engine.PolicyByName); Capacity is the task
	// capacity every worker registers with (0 = 1). Capacities above 1
	// need a capacity-aware policy. CapacitySkew > 0 spreads capacities
	// deterministically across the population instead of registering every
	// worker at Capacity: worker w gets 1 + (w mod CapacitySkew), never
	// above Capacity — a fixed mix of light and heavy workers, the regime
	// where a window solver's capacity bounds actually bind.
	Policy       string `json:"policy,omitempty"`
	Capacity     int    `json:"capacity,omitempty"`
	CapacitySkew int    `json:"capacity_skew,omitempty"`
}

// Validate reports the first structural problem with the scenario.
func (sc *Scenario) Validate() error {
	switch {
	case sc.Duration <= 0:
		return fmt.Errorf("sim: duration %v must be positive", sc.Duration)
	case sc.GridCols < 1:
		return fmt.Errorf("sim: grid cols %d must be positive", sc.GridCols)
	case sc.Epsilon <= 0:
		return fmt.Errorf("sim: epsilon %v must be positive", sc.Epsilon)
	case sc.InitialWorkers < 0:
		return fmt.Errorf("sim: negative initial workers %d", sc.InitialWorkers)
	case sc.WorkerArrivalRate < 0:
		return fmt.Errorf("sim: negative worker arrival rate %v", sc.WorkerArrivalRate)
	case sc.MeanOnline < 0 || sc.MeanAway < 0 || sc.MeanService <= 0:
		return fmt.Errorf("sim: online/away/service times must be non-negative (service positive)")
	case sc.ReturnProb < 0 || sc.ReturnProb > 1:
		return fmt.Errorf("sim: return probability %v outside [0, 1]", sc.ReturnProb)
	case sc.ReturnProb > 0 && sc.MeanAway <= 0:
		return fmt.Errorf("sim: returning workers need a positive mean away time, got %v", sc.MeanAway)
	case sc.Deadline < 0 || sc.BatchWindow < 0:
		return fmt.Errorf("sim: deadline and batch window must be non-negative")
	case len(sc.TaskRate) == 0:
		return fmt.Errorf("sim: empty task rate profile")
	case sc.RotateEvery < 0 || sc.LifetimeEps < 0:
		return fmt.Errorf("sim: rotate interval and lifetime budget must be non-negative")
	case sc.LifetimeEps > 0 && sc.LifetimeEps < sc.Epsilon:
		return fmt.Errorf("sim: lifetime budget %v below per-report ε %v; every report would be refused",
			sc.LifetimeEps, sc.Epsilon)
	case sc.RotateRefit && sc.RotateEvery <= 0:
		return fmt.Errorf("sim: rotate refit needs a positive rotate interval")
	case sc.Capacity < 0:
		return fmt.Errorf("sim: negative worker capacity %d", sc.Capacity)
	case sc.CapacitySkew < 0:
		return fmt.Errorf("sim: negative capacity skew %d", sc.CapacitySkew)
	}
	pol, err := engine.PolicyByName(sc.Policy)
	if err != nil {
		return err
	}
	if sc.Capacity > 1 && !pol.CapacityAware() {
		return fmt.Errorf("sim: capacity %d needs a capacity-aware policy, have %s", sc.Capacity, pol.Name())
	}
	if sc.CapacitySkew > 0 && sc.Capacity <= 1 {
		return fmt.Errorf("sim: capacity skew %d needs a worker capacity above 1, got %d", sc.CapacitySkew, sc.Capacity)
	}
	switch sc.Spatial {
	case SpatialUniform, SpatialChengdu:
	case SpatialNormal:
		if sc.Sigma <= 0 {
			return fmt.Errorf("sim: normal spatial model needs positive sigma, got %v", sc.Sigma)
		}
	default:
		return fmt.Errorf("sim: unknown spatial model %q", sc.Spatial)
	}
	return nil
}

// WithDuration returns a copy of the scenario running for d simulated
// seconds: the task-rate profile is trimmed to d, or its last segment
// extended, so the task stream always spans the whole horizon.
func (sc Scenario) WithDuration(d float64) Scenario {
	if d <= 0 || d == sc.Duration {
		return sc
	}
	sc.Duration = d
	trimmed := sc.TaskRate[:0:0]
	for _, seg := range sc.TaskRate {
		if seg.Until >= d {
			seg.Until = d
			trimmed = append(trimmed, seg)
			break
		}
		trimmed = append(trimmed, seg)
	}
	if n := len(trimmed); n > 0 && trimmed[n-1].Until < d {
		trimmed[n-1].Until = d // extend the final rate to the new horizon
	}
	sc.TaskRate = trimmed
	return sc
}

// region returns the scenario's spatial region.
func (sc *Scenario) region() geo.Rect {
	if sc.Spatial == SpatialChengdu {
		return workload.ChengduRegion
	}
	return workload.SyntheticRegion
}

// samplers returns the worker and task location samplers. Chengdu workers
// cruise with a wider uniform background than task demand, matching the
// batch generator.
func (sc *Scenario) samplers() (workers, tasks workload.PointSampler) {
	switch sc.Spatial {
	case SpatialNormal:
		s := workload.NormalSampler(sc.Mu, sc.Sigma, sc.region())
		return s, s
	case SpatialChengdu:
		return workload.ChengduSampler(0.25), workload.ChengduSampler(0.12)
	default:
		s := workload.UniformSampler(sc.region())
		return s, s
	}
}

// presets are the named scenarios shipped with pombm-sim. Durations are
// sized so every preset finishes in well under a second of wall clock —
// they run in CI smoke tests and the nightly lane.
var presets = map[string]Scenario{
	// steady: a calm weekday — constant demand comfortably below capacity,
	// mild churn. The baseline every other preset perturbs.
	"steady": {
		Name:              "steady",
		Duration:          600,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    300,
		WorkerArrivalRate: 0.5,
		MeanOnline:        300,
		ReturnProb:        0.5,
		MeanAway:          120,
		TaskRate:          workload.Constant(3, 600),
		MeanService:       60,
		Deadline:          30,
		Spatial:           SpatialUniform,
	},
	// rush-hour: two demand peaks over a skewed city (everyone heads for
	// the same districts), capacity tight at the peaks.
	"rush-hour": {
		Name:              "rush-hour",
		Duration:          720,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    400,
		WorkerArrivalRate: 0.8,
		MeanOnline:        400,
		ReturnProb:        0.5,
		MeanAway:          90,
		TaskRate: workload.RateProfile{
			{Until: 180, Rate: 2},
			{Until: 330, Rate: 8},
			{Until: 510, Rate: 3},
			{Until: 660, Rate: 8},
			{Until: 720, Rate: 2},
		},
		MeanService: 45,
		Deadline:    20,
		Spatial:     SpatialNormal,
		Mu:          100,
		Sigma:       40,
	},
	// flash-crowd: a stadium empties — a >10× demand spike against a small
	// pool with tight deadlines; the backlog outruns capacity and tasks
	// expire.
	"flash-crowd": {
		Name:              "flash-crowd",
		Duration:          600,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    180,
		WorkerArrivalRate: 0.3,
		MeanOnline:        500,
		ReturnProb:        0.4,
		MeanAway:          150,
		TaskRate: workload.RateProfile{
			{Until: 240, Rate: 1.5},
			{Until: 300, Rate: 20},
			{Until: 600, Rate: 1.5},
		},
		MeanService: 30,
		Deadline:    15,
		Spatial:     SpatialUniform,
	},
	// churn-heavy: short online stints and frequent comebacks — the pool
	// turns over constantly, every comeback re-obfuscating afresh. The
	// stress preset for register/assign/withdraw/re-register interleaving.
	"churn-heavy": {
		Name:              "churn-heavy",
		Duration:          600,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    200,
		WorkerArrivalRate: 2,
		MeanOnline:        60,
		ReturnProb:        0.7,
		MeanAway:          45,
		TaskRate:          workload.Constant(4, 600),
		MeanService:       30,
		Deadline:          25,
		Spatial:           SpatialUniform,
	},
	// epoch-rotate: the long-horizon regime — the tree is republished every
	// 300 s (refit from the observed report history) and every available
	// worker re-noises under it, with a lifetime budget of 5 reports
	// (ε=0.6 each); long-lived workers exhaust their budget and are parked.
	"epoch-rotate": {
		Name:              "epoch-rotate",
		Duration:          900,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    250,
		WorkerArrivalRate: 0.5,
		MeanOnline:        400,
		ReturnProb:        0.5,
		MeanAway:          120,
		TaskRate:          workload.Constant(3, 900),
		MeanService:       45,
		Deadline:          30,
		Spatial:           SpatialUniform,
		RotateEvery:       300,
		RotateRefit:       true,
		LifetimeEps:       3.0,
	},
	// capacity-heavy: multi-task couriers — every worker registers with
	// capacity 3 under the capacitated sequential rule, demand high enough
	// that workers routinely juggle several tasks, and the tree rotates
	// mid-run so capacitated stints cross epochs with their remaining
	// units. The acceptance preset for the policy layer: zero cross-check
	// violations and bit-identical reports on both drivers.
	"capacity-heavy": {
		Name:              "capacity-heavy",
		Duration:          600,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    120,
		WorkerArrivalRate: 0.5,
		MeanOnline:        300,
		ReturnProb:        0.5,
		MeanAway:          90,
		TaskRate:          workload.Constant(5, 600),
		MeanService:       60,
		Deadline:          30,
		Spatial:           SpatialUniform,
		Policy:            "capacity-greedy",
		Capacity:          3,
		RotateEvery:       240,
		RotateRefit:       true,
	},
	// batch-heavy: the window solver under load — every assignment decision
	// is a 10 s batched window solved cost-optimally with k=16 candidate
	// pools over a capacity-skewed courier mix (capacities cycle 1..4), and
	// the tree rotates mid-run so warm-started windows cross an epoch swap.
	// The acceptance preset for the optimized batch path: zero feasibility
	// violations and bit-identical reports on both drivers.
	"batch-heavy": {
		Name:              "batch-heavy",
		Duration:          600,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    500,
		WorkerArrivalRate: 0.5,
		MeanOnline:        300,
		ReturnProb:        0.5,
		MeanAway:          90,
		TaskRate:          workload.Constant(8, 600),
		MeanService:       60,
		Deadline:          40,
		BatchWindow:       10,
		Spatial:           SpatialUniform,
		Policy:            "batch-optimal:k=16",
		Capacity:          4,
		CapacitySkew:      4,
		RotateEvery:       240,
	},
	// chengdu-day: the Chengdu hotspot mixture under time-sliced batch
	// assignment (5 s windows), long ride-like service times.
	"chengdu-day": {
		Name:              "chengdu-day",
		Duration:          900,
		GridCols:          32,
		Epsilon:           0.6,
		InitialWorkers:    350,
		WorkerArrivalRate: 0.4,
		MeanOnline:        600,
		ReturnProb:        0.6,
		MeanAway:          180,
		TaskRate:          workload.Constant(1.8, 900),
		MeanService:       90,
		Deadline:          60,
		BatchWindow:       5,
		Spatial:           SpatialChengdu,
	},
}

// Scenarios lists the preset names in sorted order.
func Scenarios() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named scenario.
func Preset(name string) (Scenario, error) {
	sc, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("sim: unknown scenario %q (have %v)", name, Scenarios())
	}
	return sc, nil
}
