package sim

import (
	"fmt"
	"strconv"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
)

// Driver selects which layer of the stack the simulator exercises.
type Driver string

// The available drivers. Both sit on the same sharded engine, so a
// scenario produces the same assignments under either; the platform driver
// additionally covers the server's slot bookkeeping and wire types.
const (
	DriverEngine   Driver = "engine"   // internal/engine directly
	DriverPlatform Driver = "platform" // platform.Server (in-process, no HTTP)
)

// backend is the simulator's view of the system under test. Registration
// ids are fresh per online stint — a worker that departs and returns gets
// a new id and a freshly obfuscated code — while the worker argument is
// the stable sim-worker index, so the platform driver can keep one
// external WorkerID per worker across stints and thereby exercise the
// server's withdraw → same-id re-registration (revival) path. Within a
// stint, a worker finishing a task re-enters the pool through release (a
// re-report at a fresh code under the same id), mirroring the platform's
// Release.
//
// Both drivers make identical assignment decisions: the engine ties
// towards the smallest id, regIDs and platform slots are allocated in the
// same (registration-event) order, and the platform's revival path also
// allocates a fresh slot per stint.
type backend interface {
	register(id, worker int, code hst.Code) error
	release(id int, code hst.Code) error
	withdraw(id int, code hst.Code) bool
	assign(code hst.Code) (id int, ok bool)
	assignBatch(codes []hst.Code) []int // engine.None where unassigned
	poolSize() int
}

type engineBackend struct{ eng *engine.Engine }

func (b engineBackend) register(id, worker int, code hst.Code) error { return b.eng.Insert(code, id) }
func (b engineBackend) release(id int, code hst.Code) error          { return b.eng.Insert(code, id) }
func (b engineBackend) withdraw(id int, code hst.Code) bool          { return b.eng.Remove(code, id) }
func (b engineBackend) assign(code hst.Code) (int, bool) {
	id, _, ok := b.eng.Assign(code)
	return id, ok
}
func (b engineBackend) assignBatch(codes []hst.Code) []int {
	ids, _ := b.eng.AssignBatch(codes)
	return ids
}
func (b engineBackend) poolSize() int { return b.eng.Len() }

// platformBackend maps stable sim workers to external WorkerIDs and
// translates the server's string answers back to the current registration
// id of the named worker.
type platformBackend struct {
	srv      *platform.Server
	ownerOf  map[int]int // registration id → sim worker
	curRegOf map[int]int // sim worker → current registration id
}

func newPlatformBackend(srv *platform.Server) *platformBackend {
	return &platformBackend{srv: srv, ownerOf: map[int]int{}, curRegOf: map[int]int{}}
}

func workerName(worker int) string { return "w" + strconv.Itoa(worker) }

func (b *platformBackend) register(id, worker int, code hst.Code) error {
	resp := b.srv.Register(platform.RegisterRequest{WorkerID: workerName(worker), Code: []byte(code)})
	if !resp.OK {
		return fmt.Errorf("sim: platform register: %s", resp.Reason)
	}
	b.ownerOf[id] = worker
	b.curRegOf[worker] = id
	return nil
}

func (b *platformBackend) release(id int, code hst.Code) error {
	resp := b.srv.Release(platform.ReleaseRequest{WorkerID: workerName(b.ownerOf[id]), Code: []byte(code)})
	if !resp.OK {
		return fmt.Errorf("sim: platform release: %s", resp.Reason)
	}
	return nil
}

func (b *platformBackend) withdraw(id int, code hst.Code) bool {
	return b.srv.Withdraw(platform.WithdrawRequest{WorkerID: workerName(b.ownerOf[id])}).OK
}

// decode maps a served WorkerID back to that worker's current registration.
func (b *platformBackend) decode(workerID string) int {
	w, err := strconv.Atoi(workerID[1:])
	if err != nil {
		return engine.None
	}
	return b.curRegOf[w]
}

func (b *platformBackend) assign(code hst.Code) (int, bool) {
	resp := b.srv.Submit(platform.TaskRequest{Code: []byte(code)})
	if !resp.Assigned {
		return engine.None, false
	}
	return b.decode(resp.WorkerID), true
}

func (b *platformBackend) assignBatch(codes []hst.Code) []int {
	req := platform.TaskBatchRequest{Tasks: make([]platform.TaskRequest, len(codes))}
	for i, c := range codes {
		req.Tasks[i] = platform.TaskRequest{Code: []byte(c)}
	}
	resp := b.srv.SubmitBatch(req)
	ids := make([]int, len(codes))
	for i, r := range resp.Results {
		if !r.Assigned {
			ids[i] = engine.None
			continue
		}
		ids[i] = b.decode(r.WorkerID)
	}
	return ids
}

func (b *platformBackend) poolSize() int { return b.srv.Stats().AvailableWorkers }
