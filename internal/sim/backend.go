package sim

import (
	"errors"
	"fmt"
	"strconv"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/epoch"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
)

// Driver selects which layer of the stack the simulator exercises.
type Driver string

// The available drivers. All sit on the same sharded engine, so a
// scenario produces the same assignments under any of them; the platform
// driver additionally covers the server's slot bookkeeping and wire
// types, and the cluster driver the coordinator's fan-out (routing,
// scatter-gather windows, distributed rotation) across in-process nodes.
const (
	DriverEngine   Driver = "engine"   // internal/engine directly
	DriverPlatform Driver = "platform" // platform.Server (in-process, no HTTP)
	DriverCluster  Driver = "cluster"  // cluster.Coordinator over in-process nodes
)

// backend is the simulator's view of the system under test. Registration
// ids are fresh per online stint — a worker that departs and returns gets
// a new id and a freshly obfuscated code — while the worker argument is
// the stable sim-worker index, so the platform driver can keep one
// external WorkerID per worker across stints and thereby exercise the
// server's withdraw → same-id re-registration (revival) path. Within a
// stint, a worker finishing a task re-enters the pool through release (a
// re-report at a fresh code under the same id), mirroring the platform's
// Release. An epoch rotation hands every available worker a fresh
// registration id too: its re-obfuscated report is a new stint in the new
// epoch's shard set.
//
// Both drivers make identical assignment decisions: the engine ties
// towards the smallest id, regIDs and platform slots are allocated in the
// same (registration-event) order — including rotation order — and the
// platform's revival and rotation paths also allocate a fresh slot per
// stint. Budget decisions coincide as well: both drivers spend the same ε
// for the same worker names in the same operation order, so the same
// workers park at the same instants.
//
// register and release return an error wrapping epoch.ErrBudgetExhausted
// when the worker's lifetime budget cannot afford the fresh report; the
// simulator then parks the worker.
type backend interface {
	// register brings a fresh stint online with the given capacity units.
	register(id, worker int, code hst.Code, capacity int) error
	// release records a completed task whose unit returns to the pool at a
	// freshly obfuscated code (a fresh report, so a fresh spend). capLeft
	// is the stint's remaining units after this completion — a capacitated
	// worker with spare units in the pool moves wholesale to the new code.
	release(id, worker int, oldCode, newCode hst.Code, capLeft int) error
	// finish records a completed task whose unit does not return: the
	// worker withdrew (or was parked/dropped) while the task was running.
	finish(id, worker int)
	withdraw(id int, code hst.Code) bool
	assign(code hst.Code) (id int, ok bool)
	assignBatch(codes []hst.Code) []int // engine.None where unassigned
	poolSize() int
	// rotate swaps the backend to a fresh epoch. workers lists the
	// available population in the simulator's deterministic order, capLeft
	// their remaining units (aligned); report draws each one's fresh
	// obfuscated code under the new tree (called exactly once per worker,
	// in order — the rng contract); alloc hands out a fresh registration
	// id, called exactly once per non-parked worker, in order. The
	// returned outcome is aligned with workers.
	rotate(workers []int, capLeft []int, report func(worker int, tree *hst.Tree) hst.Code, alloc func(worker int) int) (*rotateResult, error)
	// epochInfo reports the serving epoch and the budget accounting
	// totals (zeros when no lifetime budget is configured).
	epochInfo() (epoch int64, spent, limit float64)
}

// rotateResult is one rotation's outcome, aligned with the worker list
// given to rotate.
type rotateResult struct {
	epoch  int64
	tree   *hst.Tree
	codes  []hst.Code // fresh report per worker ("" when parked)
	parked []bool
	newID  []int // fresh registration id; -1 when parked
}

// engineBackend drives the sharded engine directly, with an epoch
// controller owning rotation bookkeeping and budget accounting — the same
// controller the platform server embeds, so both drivers park the same
// workers at the same spends.
type engineBackend struct {
	eng   *engine.Engine
	ctrl  *epoch.Controller
	refit bool
}

func workerName(worker int) string { return "w" + strconv.Itoa(worker) }

func (b *engineBackend) register(id, worker int, code hst.Code, capacity int) error {
	if err := b.ctrl.Spend(workerName(worker)); err != nil {
		return err
	}
	if err := b.eng.InsertCapEpoch(code, id, capacity, 0); err != nil {
		return err
	}
	b.ctrl.Observe(code)
	return nil
}

// release re-reports at a freshly obfuscated code — a fresh spend, then the
// completed unit (and any spare units, moved wholesale from the old code)
// re-enters at the new leaf, mirroring the platform's Release-with-code
// path. A refused spend pulls the spare units out of the pool: the worker
// is being parked, exactly as the platform does server-side.
func (b *engineBackend) release(id, worker int, oldCode, newCode hst.Code, capLeft int) error {
	if err := b.ctrl.Spend(workerName(worker)); err != nil {
		if capLeft > 1 {
			b.eng.Remove(oldCode, id)
		}
		return err
	}
	if capLeft > 1 {
		// The stint still had capLeft−1 units pooled at the old code.
		b.eng.Remove(oldCode, id)
	}
	if err := b.eng.InsertCapEpoch(newCode, id, capLeft, 0); err != nil {
		return err
	}
	b.ctrl.Observe(newCode)
	return nil
}

func (b *engineBackend) finish(int, int) {} // nothing pooled to update

func (b *engineBackend) withdraw(id int, code hst.Code) bool { return b.eng.Remove(code, id) }

func (b *engineBackend) assign(code hst.Code) (int, bool) {
	id, _, ok := b.eng.Assign(code)
	return id, ok
}

func (b *engineBackend) assignBatch(codes []hst.Code) []int {
	ids, _ := b.eng.AssignBatch(codes)
	return ids
}

func (b *engineBackend) poolSize() int { return b.eng.Len() }

func (b *engineBackend) rotate(workers []int, capLeft []int, report func(int, *hst.Tree) hst.Code, alloc func(int) int) (*rotateResult, error) {
	staged, err := b.ctrl.Prepare(0, b.refit)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = workerName(w)
	}
	idx := 0
	plan, err := b.ctrl.PlanRotation(staged, names, func(_ string, tree *hst.Tree) (hst.Code, error) {
		code := report(workers[idx], tree)
		idx++
		return code, nil
	})
	if err != nil {
		return nil, err
	}
	res := &rotateResult{
		epoch:  plan.Epoch,
		tree:   plan.Tree,
		codes:  make([]hst.Code, len(workers)),
		parked: make([]bool, len(workers)),
		newID:  make([]int, len(workers)),
	}
	inserts := make([]engine.EpochInsert, 0, len(workers))
	for i := range plan.Outcomes {
		o := &plan.Outcomes[i]
		if o.Parked {
			res.parked[i], res.newID[i] = true, -1
			continue
		}
		id := alloc(workers[i])
		res.codes[i], res.newID[i] = o.Code, id
		inserts = append(inserts, engine.EpochInsert{Code: o.Code, ID: id, Cap: capLeft[i]})
	}
	if err := b.eng.SwapEpoch(plan.Epoch, plan.Tree, 0, inserts); err != nil {
		return nil, err
	}
	if err := b.ctrl.Commit(plan); err != nil {
		return nil, err
	}
	return res, nil
}

func (b *engineBackend) epochInfo() (int64, float64, float64) {
	st := b.ctrl.Stats()
	return st.Epoch, st.SpentTotal, st.Limit
}

// platformBackend maps stable sim workers to external WorkerIDs and
// translates the server's string answers back to the current registration
// id of the named worker.
type platformBackend struct {
	srv      *platform.Server
	refit    bool
	epoch    int64       // serving epoch; reports and tasks are tagged with it
	ownerOf  map[int]int // registration id → sim worker
	curRegOf map[int]int // sim worker → current registration id
}

func newPlatformBackend(srv *platform.Server, refit bool) *platformBackend {
	return &platformBackend{
		srv:      srv,
		refit:    refit,
		epoch:    srv.Publication().Epoch,
		ownerOf:  map[int]int{},
		curRegOf: map[int]int{},
	}
}

// budgetErr folds a Parked refusal back into the sentinel the simulator
// handles; any other refusal is a hard failure.
func budgetErr(op string, resp platform.RegisterResponse) error {
	if resp.Parked {
		return fmt.Errorf("sim: platform %s: %w", op, epoch.ErrBudgetExhausted)
	}
	return fmt.Errorf("sim: platform %s: %s", op, resp.Reason)
}

func (b *platformBackend) register(id, worker int, code hst.Code, capacity int) error {
	resp := b.srv.Register(platform.RegisterRequest{
		WorkerID: workerName(worker), Code: []byte(code), Epoch: b.epoch, Capacity: capacity,
	})
	if !resp.OK {
		return budgetErr("register", resp)
	}
	b.ownerOf[id] = worker
	b.curRegOf[worker] = id
	return nil
}

// release hands the completed unit back through the server's Release; the
// server owns the move-spare-units bookkeeping, so oldCode and capLeft are
// the engine driver's concern only.
func (b *platformBackend) release(id, worker int, _, newCode hst.Code, _ int) error {
	resp := b.srv.Release(platform.ReleaseRequest{WorkerID: workerName(worker), Code: []byte(newCode), Epoch: b.epoch})
	if !resp.OK {
		return budgetErr("release", resp)
	}
	return nil
}

// finish acknowledges a withdrawn (or parked) worker's completed task: the
// server decrements the outstanding count and refuses the pool re-entry,
// which is exactly what the simulator expects — the refusal is the
// protocol, not an error.
func (b *platformBackend) finish(id, worker int) {
	resp := b.srv.Release(platform.ReleaseRequest{WorkerID: workerName(worker)})
	if resp.OK {
		panic(fmt.Sprintf("sim: platform finish of worker %d re-entered the pool", worker))
	}
}

func (b *platformBackend) withdraw(id int, code hst.Code) bool {
	return b.srv.Withdraw(platform.WithdrawRequest{WorkerID: workerName(b.ownerOf[id])}).OK
}

// decode maps a served WorkerID back to that worker's current registration.
func (b *platformBackend) decode(workerID string) int {
	w, err := strconv.Atoi(workerID[1:])
	if err != nil {
		return engine.None
	}
	return b.curRegOf[w]
}

func (b *platformBackend) assign(code hst.Code) (int, bool) {
	resp := b.srv.Submit(platform.TaskRequest{Code: []byte(code), Epoch: b.epoch})
	if !resp.Assigned {
		return engine.None, false
	}
	return b.decode(resp.WorkerID), true
}

func (b *platformBackend) assignBatch(codes []hst.Code) []int {
	req := platform.TaskBatchRequest{Tasks: make([]platform.TaskRequest, len(codes))}
	for i, c := range codes {
		req.Tasks[i] = platform.TaskRequest{Code: []byte(c), Epoch: b.epoch}
	}
	resp := b.srv.SubmitBatch(req)
	ids := make([]int, len(codes))
	for i, r := range resp.Results {
		if !r.Assigned {
			ids[i] = engine.None
			continue
		}
		ids[i] = b.decode(r.WorkerID)
	}
	return ids
}

func (b *platformBackend) poolSize() int { return b.srv.Stats().AvailableWorkers }

func (b *platformBackend) rotate(workers []int, _ []int, report func(int, *hst.Tree) hst.Code, alloc func(int) int) (*rotateResult, error) {
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = workerName(w)
	}
	res := &rotateResult{
		codes:  make([]hst.Code, len(workers)),
		parked: make([]bool, len(workers)),
		newID:  make([]int, len(workers)),
	}
	// RotateNow invokes the callback once per listed worker, in order —
	// the same rng contract the engine driver's plan follows.
	idx := 0
	resp := b.srv.RotateNow(platform.PrepareRotateRequest{Refit: b.refit}, names, func(_ string, tree *hst.Tree) (hst.Code, error) {
		res.codes[idx] = report(workers[idx], tree)
		idx++
		return res.codes[idx-1], nil
	})
	if !resp.OK {
		return nil, fmt.Errorf("sim: platform rotate: %s", resp.Reason)
	}
	if len(resp.Dropped) > 0 || resp.Skipped > 0 {
		// The simulator lists exactly the available population; the server
		// dropping or skipping any of it means the two disagree about who
		// is online — a bookkeeping bug, not a scenario outcome.
		return nil, errors.New("sim: platform rotate dropped or skipped listed workers")
	}
	parked := make(map[string]bool, len(resp.Parked))
	for _, name := range resp.Parked {
		parked[name] = true
	}
	for i, w := range workers {
		if parked[names[i]] {
			res.parked[i], res.newID[i], res.codes[i] = true, -1, ""
			continue
		}
		id := alloc(w)
		res.newID[i] = id
		b.ownerOf[id] = w
		b.curRegOf[w] = id
	}
	pub := b.srv.Publication()
	res.epoch, res.tree = pub.Epoch, pub.Tree
	b.epoch = pub.Epoch
	return res, nil
}

func (b *platformBackend) epochInfo() (int64, float64, float64) {
	st := b.srv.Stats()
	return st.Epoch, st.BudgetSpentTotal, st.BudgetLimit
}
