package sim

import "container/heap"

// The simulator is event-driven: every state change is an event on a
// virtual clock, ordered by time with an insertion sequence number as the
// tie-breaker. Because event times and payloads are drawn from derived
// rng.Sources and processing is single-threaded, a run is a pure function
// of (scenario, seed) — bit-for-bit reproducible.

type eventKind uint8

const (
	evWorkerArrive eventKind = iota // a worker comes online (initial, fresh, or returning)
	evWorkerDepart                  // a worker's online lifetime ends
	evTaskArrive                    // a task enters the system
	evTaskExpire                    // a pending task hits its deadline
	evTaskComplete                  // an assigned task finishes service
	evBatchTick                     // a time-sliced assignment window closes
	evRotate                        // an epoch rotation: republish the tree, re-noise the pool
)

type event struct {
	at     float64
	seq    int64 // insertion order; breaks ties deterministically
	kind   eventKind
	worker int // worker index, for worker events and evTaskComplete
	task   int // task index, for task events
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }
