package epoch

import (
	"bytes"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// fuzzTrees builds the fixed pair of trees the round-trip fuzz rotates
// between; construction is deterministic, so every fuzz input exercises
// the same infrastructure.
func fuzzTrees(t *testing.T) (*hst.Tree, *hst.Tree) {
	t.Helper()
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := hst.Build(grid.Points(), rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := hst.Build(grid.Points(), rng.New(202))
	if err != nil {
		t.Fatal(err)
	}
	return t1, t2
}

// drainCompare asserts two engines answer an identical probe tape answer
// for answer until both drain. It consumes both populations.
func drainCompare(t *testing.T, a, b *engine.Engine, tree *hst.Tree, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	for {
		q := randCode(tree, src)
		idA, lvlA, epA, okA := a.AssignEpoch(q)
		idB, lvlB, epB, okB := b.AssignEpoch(q)
		if idA != idB || lvlA != lvlB || epA != epB || okA != okB {
			t.Fatalf("engines diverge on %v: (%d,%d,%d,%v) ≠ (%d,%d,%d,%v)",
				[]byte(q), idA, lvlA, epA, okA, idB, lvlB, epB, okB)
		}
		if !okA {
			return
		}
	}
}

// FuzzEpochRoundTrip drives an engine's population from a fuzz tape, then
// serialize → rotate → deserialize: the snapshot of the rotated engine
// must restore to an engine whose leaf index answers identically, and the
// snapshot JSON itself must be a fixed point (restore → snapshot →
// identical bytes).
func FuzzEpochRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 255, 9, 9, 9, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tree1, tree2 := fuzzTrees(t)
		eng, err := engine.New(tree1, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Build a population from the tape: groups of depth+1 bytes are
		// (op, digits...) — inserts weighted over removals/pops.
		d := tree1.Depth()
		live := map[int]hst.Code{}
		nextID := 0
		readCode := func(pos int, tr *hst.Tree) hst.Code {
			buf := make([]byte, tr.Depth())
			for i := range buf {
				if pos+i < len(tape) {
					buf[i] = tape[pos+i] % byte(tr.Degree())
				}
			}
			return hst.Code(buf)
		}
		for pos := 0; pos+d < len(tape); pos += d + 1 {
			code := readCode(pos+1, tree1)
			switch tape[pos] % 4 {
			case 0, 1: // insert
				if err := eng.Insert(code, nextID); err != nil {
					t.Fatal(err)
				}
				live[nextID] = code
				nextID++
			case 2: // pop nearest
				if id, _, ok := eng.Assign(code); ok {
					delete(live, id)
				}
			case 3: // remove the smallest live id
				min, found := -1, false
				for id := range live {
					if !found || id < min {
						min, found = id, true
					}
				}
				if found {
					if !eng.Remove(live[min], min) {
						t.Fatalf("remove of live worker %d failed", min)
					}
					delete(live, min)
				}
			}
		}

		// Serialize epoch 1, restore, and require identical answers.
		snap1 := Snapshot(eng)
		if snap1.Epoch != engine.FirstEpoch || len(snap1.Workers) != len(live) {
			t.Fatalf("snapshot = epoch %d with %d workers, want %d/%d",
				snap1.Epoch, len(snap1.Workers), engine.FirstEpoch, len(live))
		}
		blob1, err := snap1.JSON()
		if err != nil {
			t.Fatal(err)
		}
		// The streaming encoder/decoder must agree with the materialized
		// codec byte for byte on every fuzzed population.
		assertStreamIdentity(t, eng, snap1, blob1)
		parsed1, err := ParseState(blob1)
		if err != nil {
			t.Fatal(err)
		}
		restored1, err := parsed1.Engine(5) // shard layout must not matter
		if err != nil {
			t.Fatal(err)
		}

		// Rotate the original: every live worker re-reports under tree2 at
		// a tape-derived code with a fresh id.
		ctrl, err := NewController(Config{Tree: tree1, Seed: 7, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		ctrl.stageForTest(tree2)
		order := make([]int, 0, len(live))
		for id := range live {
			order = append(order, id)
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j] < order[j-1]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		names := make([]string, len(order))
		for i, id := range order {
			names[i] = workerNameFor(id)
		}
		k := 0
		plan, err := ctrl.PlanRotation(nil, names, func(_ string, tr *hst.Tree) (hst.Code, error) {
			pos := 0
			if len(tape) > 0 {
				pos = k % len(tape)
			}
			code := readCode(pos, tr)
			k += tr.Depth()
			return code, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		inserts := make([]engine.EpochInsert, len(plan.Outcomes))
		for i := range plan.Outcomes {
			inserts[i] = engine.EpochInsert{Code: plan.Outcomes[i].Code, ID: nextID}
			nextID++
		}
		if err := eng.SwapEpoch(plan.Epoch, plan.Tree, 0, inserts); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Commit(plan); err != nil {
			t.Fatal(err)
		}

		// Serialize the rotated epoch → restore → the snapshot must be a
		// fixed point and the restored engine must answer identically.
		snap2 := Snapshot(eng)
		if snap2.Epoch != engine.FirstEpoch+1 {
			t.Fatalf("rotated snapshot epoch %d", snap2.Epoch)
		}
		blob2, err := snap2.JSON()
		if err != nil {
			t.Fatal(err)
		}
		assertStreamIdentity(t, eng, snap2, blob2)
		parsed2, err := ParseState(blob2)
		if err != nil {
			t.Fatal(err)
		}
		restored2, err := parsed2.Engine(2)
		if err != nil {
			t.Fatal(err)
		}
		blob2b, err := snapshotJSON(restored2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob2, blob2b) {
			t.Fatalf("snapshot not a fixed point:\n%s\n---\n%s", blob2, blob2b)
		}

		// Answer equivalence, destructive (last): the pre-rotation restore
		// against the original tree's probes, then the rotated pair.
		preRotate, err := parsed1.Engine(2)
		if err != nil {
			t.Fatal(err)
		}
		drainCompare(t, restored1, preRotate, tree1, 11)
		drainCompare(t, eng, restored2, tree2, 13)
	})
}

// stageForTest stages an explicit tree as the next epoch, bypassing
// Prepare's construction — fuzzing needs a fixed target tree.
func (c *Controller) stageForTest(tree *hst.Tree) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.staged = &Staged{Epoch: c.epoch + 1, Tree: tree}
}

// snapshotJSON snapshots an engine and serialises it, for fixed-point
// checks.
func snapshotJSON(eng *engine.Engine) ([]byte, error) {
	return Snapshot(eng).JSON()
}
