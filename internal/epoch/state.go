package epoch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
)

// State is a serialisable snapshot of one serving epoch: the epoch id, the
// published tree, and the available population with their obfuscated
// codes. It is what a deployment persists to survive a restart without
// forcing every worker to re-report (and re-spend) — restoring a snapshot
// reproduces the exact serving state, answer for answer.
type State struct {
	Epoch   int64         `json:"epoch"`
	Tree    *hst.Tree     `json:"tree"` // marshals via its Published form
	Workers []WorkerEntry `json:"workers"`
}

// WorkerEntry is one available worker in a snapshot. Cap is its remaining
// capacity; 0 (the historical wire form) means 1.
type WorkerEntry struct {
	ID   int    `json:"id"`
	Code []byte `json:"code"`
	Cap  int    `json:"cap,omitempty"`
}

// Snapshot captures the engine's current epoch. The engine is walked shard
// by shard, so the caller must have quiesced writers; entries are sorted
// by id, making the snapshot — and its JSON — deterministic regardless of
// shard layout. Capacity-1 workers serialise without a cap field, so
// snapshots of uncapacitated populations are byte-identical to the
// historical form.
func Snapshot(eng *engine.Engine) *State {
	st := &State{Epoch: eng.Epoch(), Tree: eng.Tree()}
	eng.WalkCap(func(code hst.Code, id, capacity int) {
		w := WorkerEntry{ID: id, Code: []byte(code)}
		if capacity > 1 {
			w.Cap = capacity
		}
		st.Workers = append(st.Workers, w)
	})
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	return st
}

// Engine rebuilds a serving engine from the snapshot with the given shard
// count (0 = engine default) and engine options (e.g. a capacity-aware
// policy for capacitated snapshots). The restored engine serves the
// snapshot's epoch id and answers every assignment exactly as the
// snapshotted one would.
func (s *State) Engine(shards int, opts ...engine.Option) (*engine.Engine, error) {
	if s.Tree == nil {
		return nil, fmt.Errorf("epoch: state %d has no tree", s.Epoch)
	}
	eng, err := engine.NewWithOptions(s.Tree, shards, opts...)
	if err != nil {
		return nil, err
	}
	if s.Epoch < engine.FirstEpoch {
		return nil, fmt.Errorf("epoch: state has invalid epoch %d", s.Epoch)
	}
	// A missing cap field is exactly capacity 1 (not the engine default):
	// restoring must reproduce the snapshotted pool unit for unit.
	capOf := func(w WorkerEntry) int {
		if w.Cap <= 0 {
			return 1
		}
		return w.Cap
	}
	if s.Epoch == engine.FirstEpoch {
		for _, w := range s.Workers {
			if err := eng.InsertCapEpoch(hst.Code(w.Code), w.ID, capOf(w), 0); err != nil {
				return nil, fmt.Errorf("epoch: restore worker %d: %w", w.ID, err)
			}
		}
		return eng, nil
	}
	// Later epochs restore through the same swap path a live rotation
	// takes, stamping the engine with the snapshot's epoch id. The
	// population is streamed out of the snapshot's worker list instead of
	// being copied into a second []EpochInsert: at 10M workers the copy is
	// the difference between restoring in 1× and 2× the population's
	// memory.
	err = eng.SwapEpochSeq(s.Epoch, s.Tree, shards, func(yield func(engine.EpochInsert) bool) {
		for _, w := range s.Workers {
			if !yield(engine.EpochInsert{Code: hst.Code(w.Code), ID: w.ID, Cap: capOf(w)}) {
				return
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("epoch: restore: %w", err)
	}
	return eng, nil
}

// JSON emits the canonical snapshot document. Large deployments prefer
// WriteTo, which produces the identical bytes without materializing them.
func (s *State) JSON() ([]byte, error) {
	return json.Marshal(s)
}

// ParseState reconstructs a snapshot from its JSON form. It is ReadState
// over an in-memory blob: entries decode one at a time, so the only full
// copy of the document is the caller's.
func ParseState(blob []byte) (*State, error) {
	return ReadState(bytes.NewReader(blob))
}
