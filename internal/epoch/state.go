package epoch

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
)

// State is a serialisable snapshot of one serving epoch: the epoch id, the
// published tree, and the available population with their obfuscated
// codes. It is what a deployment persists to survive a restart without
// forcing every worker to re-report (and re-spend) — restoring a snapshot
// reproduces the exact serving state, answer for answer.
type State struct {
	Epoch   int64         `json:"epoch"`
	Tree    *hst.Tree     `json:"tree"` // marshals via its Published form
	Workers []WorkerEntry `json:"workers"`
}

// WorkerEntry is one available worker in a snapshot.
type WorkerEntry struct {
	ID   int    `json:"id"`
	Code []byte `json:"code"`
}

// Snapshot captures the engine's current epoch. The engine is walked shard
// by shard, so the caller must have quiesced writers; entries are sorted
// by id, making the snapshot — and its JSON — deterministic regardless of
// shard layout.
func Snapshot(eng *engine.Engine) *State {
	st := &State{Epoch: eng.Epoch(), Tree: eng.Tree()}
	eng.Walk(func(code hst.Code, id int) {
		st.Workers = append(st.Workers, WorkerEntry{ID: id, Code: []byte(code)})
	})
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	return st
}

// Engine rebuilds a serving engine from the snapshot with the given shard
// count (0 = engine default). The restored engine serves the snapshot's
// epoch id and answers every assignment exactly as the snapshotted one
// would.
func (s *State) Engine(shards int) (*engine.Engine, error) {
	if s.Tree == nil {
		return nil, fmt.Errorf("epoch: state %d has no tree", s.Epoch)
	}
	eng, err := engine.New(s.Tree, shards)
	if err != nil {
		return nil, err
	}
	if s.Epoch < engine.FirstEpoch {
		return nil, fmt.Errorf("epoch: state has invalid epoch %d", s.Epoch)
	}
	if s.Epoch == engine.FirstEpoch {
		for _, w := range s.Workers {
			if err := eng.Insert(hst.Code(w.Code), w.ID); err != nil {
				return nil, fmt.Errorf("epoch: restore worker %d: %w", w.ID, err)
			}
		}
		return eng, nil
	}
	// Later epochs restore through the same swap path a live rotation
	// takes, stamping the engine with the snapshot's epoch id.
	inserts := make([]engine.EpochInsert, len(s.Workers))
	for i, w := range s.Workers {
		inserts[i] = engine.EpochInsert{Code: hst.Code(w.Code), ID: w.ID}
	}
	if err := eng.SwapEpoch(s.Epoch, s.Tree, shards, inserts); err != nil {
		return nil, fmt.Errorf("epoch: restore: %w", err)
	}
	return eng, nil
}

// JSON emits the canonical snapshot document.
func (s *State) JSON() ([]byte, error) {
	return json.Marshal(s)
}

// ParseState reconstructs a snapshot from its JSON form.
func ParseState(blob []byte) (*State, error) {
	var s State
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("epoch: parse state: %w", err)
	}
	if s.Tree == nil {
		return nil, fmt.Errorf("epoch: state has no tree")
	}
	for _, w := range s.Workers {
		if err := s.Tree.CheckCode(hst.Code(w.Code)); err != nil {
			return nil, fmt.Errorf("epoch: state worker %d: %w", w.ID, err)
		}
	}
	return &s, nil
}
