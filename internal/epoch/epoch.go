// Package epoch owns live HST epoch rotation: the bookkeeping that lets a
// long-lived deployment periodically republish the tree and re-noise the
// live worker population without stopping assignment.
//
// The paper's setting is one-shot — every agent obfuscates once under a
// fixed ε — but an online platform composes: every fresh report of (a
// perturbation of) the same location spends budget, and a tree served
// forever leaks structure about the population that built it. A rotation
// closes both gaps. It proceeds in three phases:
//
//  1. Prepare: build the next epoch's tree in the background (optionally
//     reseeded, optionally refit from the report history observed during
//     the serving epoch) while the current epoch keeps serving.
//  2. Plan: collect a fresh obfuscated report from every available worker
//     under the staged tree — reports are drawn client-side; the
//     controller only sees the resulting codes — and record each spend
//     against the worker's lifetime budget. Workers whose budget cannot
//     afford another report are parked: permanently retired from serving
//     rather than silently re-noised past their guarantee.
//  3. Commit: the serving layer swaps its engine to the planned population
//     (engine.SwapEpoch) and the controller advances its epoch counter.
//
// The controller is deliberately engine-agnostic: the sharded engine and
// the platform server both drive it, applying the plan's outcomes to their
// own id spaces (engine ids, platform slots). What the controller owns is
// the invariant pair the tests assert — epoch consistency (no assignment
// pairs codes from different epochs; the engine swap plus the serving
// layer's stale-pop retry enforce it) and budget conservation (the
// accountant's total equals the sum of recorded spends, and no worker ever
// exceeds its lifetime ε).
package epoch

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
)

// ErrBudgetExhausted aliases the privacy sentinel so serving layers can
// match budget refusals without importing privacy directly.
var ErrBudgetExhausted = privacy.ErrBudgetExhausted

// ErrNotStaged is returned by PlanRotation and Commit when no rotation has
// been prepared (or a previous one was already committed).
var ErrNotStaged = errors.New("epoch: no rotation staged")

// FirstEpoch is the epoch id of the initial publication; the controller's
// epoch ids are the engine's.
const FirstEpoch = engine.FirstEpoch

// Config configures a Controller.
type Config struct {
	// Tree is the initial (epoch-1) publication, already built by the
	// owner. Rotated trees embed the same predefined points.
	Tree *hst.Tree
	// Seed roots the derivation of per-epoch construction randomness when
	// a rotation is prepared without an explicit reseed.
	Seed uint64
	// Epsilon is the per-report privacy spend (the publication's ε).
	Epsilon float64
	// Lifetime is the per-worker lifetime ε budget; every fresh report
	// spends Epsilon against it. 0 disables budget accounting — reports
	// are free and no worker is ever parked.
	Lifetime float64
}

// Controller tracks the serving epoch, stages the next one, and accounts
// every fresh report against per-worker lifetime budgets. It is safe for
// concurrent use; one rotation is staged at a time.
type Controller struct {
	seed uint64
	eps  float64
	acct *privacy.Accountant // nil when accounting is disabled

	mu        sync.Mutex
	epoch     int64
	tree      *hst.Tree
	staged    *Staged
	parked    map[string]struct{}
	rotations int
	rotated   int         // workers successfully re-obfuscated across all rotations
	hist      map[int]int // observed reports per predefined point, for refit
	histN     int
}

// Staged is a prepared (not yet committed) rotation: the next epoch id and
// the tree workers must re-obfuscate under.
type Staged struct {
	Epoch int64
	Tree  *hst.Tree
}

// NewController returns a controller serving cfg.Tree as epoch 1.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Tree == nil {
		return nil, errors.New("epoch: nil tree")
	}
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("epoch: epsilon %v must be positive", cfg.Epsilon)
	}
	if cfg.Lifetime < 0 {
		return nil, fmt.Errorf("epoch: lifetime budget %v must be non-negative", cfg.Lifetime)
	}
	c := &Controller{
		seed:   cfg.Seed,
		eps:    cfg.Epsilon,
		epoch:  FirstEpoch,
		tree:   cfg.Tree,
		parked: map[string]struct{}{},
		hist:   map[int]int{},
	}
	if cfg.Lifetime > 0 {
		acct, err := privacy.NewAccountant(cfg.Lifetime)
		if err != nil {
			return nil, err
		}
		if cfg.Lifetime < cfg.Epsilon {
			return nil, fmt.Errorf("epoch: lifetime budget %v below per-report ε %v; every report would be refused",
				cfg.Lifetime, cfg.Epsilon)
		}
		c.acct = acct
	}
	return c, nil
}

// Epoch returns the id of the serving epoch.
func (c *Controller) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Tree returns the serving epoch's tree.
func (c *Controller) Tree() *hst.Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree
}

// Epsilon returns the per-report spend.
func (c *Controller) Epsilon() float64 { return c.eps }

// Accounting reports whether lifetime budgets are being enforced.
func (c *Controller) Accounting() bool { return c.acct != nil }

// Spend records one fresh report for the worker against its lifetime
// budget. On exhaustion the worker is parked and the returned error wraps
// ErrBudgetExhausted; an already-parked worker is refused the same way.
// With accounting disabled it always succeeds.
func (c *Controller) Spend(worker string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spendLocked(worker)
}

func (c *Controller) spendLocked(worker string) error {
	if _, gone := c.parked[worker]; gone {
		return fmt.Errorf("%w: worker %q is parked", ErrBudgetExhausted, worker)
	}
	if c.acct == nil {
		return nil
	}
	err := c.acct.Spend(worker, c.eps)
	if errors.Is(err, privacy.ErrBudgetExhausted) {
		c.parked[worker] = struct{}{}
	}
	return err
}

// Spent returns the budget the worker has consumed (0 when accounting is
// disabled).
func (c *Controller) Spent(worker string) float64 {
	if c.acct == nil {
		return 0
	}
	return c.acct.Spent(worker)
}

// Parked reports whether the worker has been parked (lifetime budget
// exhausted).
func (c *Controller) Parked(worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.parked[worker]
	return ok
}

// Observe records one accepted report for refit history. Only real leaves
// count — obfuscated codes frequently land on fake leaves, which say
// nothing about where demand concentrates. Observing obfuscated output is
// post-processing and spends no budget.
func (c *Controller) Observe(code hst.Code) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.tree.PointOf(code); ok {
		c.hist[p]++
		c.histN++
	}
}

// Prepare stages the next epoch: a fresh tree over the same predefined
// points, built in the background while the current epoch keeps serving.
// seed 0 derives the construction randomness from the controller's root
// seed and the next epoch id; a non-zero seed reseeds explicitly. With
// refit, the carving permutation is ordered by the report density observed
// during the serving epoch (hottest points first, so ball carving tightens
// clusters where demand actually concentrates) instead of drawn uniformly.
// Re-preparing replaces a previously staged rotation.
func (c *Controller) Prepare(seed uint64, refit bool) (*Staged, error) {
	c.mu.Lock()
	next := c.epoch + 1
	points := c.tree.Points()
	var histCopy map[int]int
	if refit {
		histCopy = make(map[int]int, len(c.hist))
		for p, n := range c.hist {
			histCopy[p] = n
		}
	}
	c.mu.Unlock()

	// Tree construction happens outside the lock: it is the slow part, and
	// the serving epoch must not stall behind it.
	if seed == 0 {
		seed = rng.New(c.seed).DeriveN("epoch-tree", int(next)).Seed()
	}
	src := rng.New(seed)
	var tree *hst.Tree
	var err error
	if refit {
		tree, err = buildRefit(points, histCopy, src)
	} else {
		tree, err = hst.Build(points, src)
	}
	if err != nil {
		return nil, fmt.Errorf("epoch: prepare %d: %w", next, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch+1 != next {
		return nil, fmt.Errorf("epoch: rotation committed while preparing %d", next)
	}
	c.staged = &Staged{Epoch: next, Tree: tree}
	return c.staged, nil
}

// buildRefit builds the tree with the carving permutation ordered by
// observed report counts (descending, ties towards the lower point index —
// deterministic), so historically hot points become early pivots. β is
// still drawn from the construction randomness.
func buildRefit(points []geo.Point, hist map[int]int, src *rng.Source) (*hst.Tree, error) {
	perm := make([]int, len(points))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		if hist[perm[a]] != hist[perm[b]] {
			return hist[perm[a]] > hist[perm[b]]
		}
		return perm[a] < perm[b]
	})
	beta := src.Derive("hst-beta").Uniform(0.5, 1.0)
	return hst.BuildWithParams(points, beta, perm)
}

// StagedRotation returns the currently staged rotation, or nil.
func (c *Controller) StagedRotation() *Staged {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.staged
}

// ReportFunc produces one worker's fresh obfuscated report under the
// staged tree. It runs client-side — the serving layer never sees true
// locations — and its error means the worker could not re-report (it is
// then parked from serving this epoch's swap, though not budget-parked).
type ReportFunc func(worker string, tree *hst.Tree) (hst.Code, error)

// Outcome is one worker's fate in a rotation plan, in input order.
type Outcome struct {
	Worker string
	// Code is the fresh report (valid for the plan's tree); empty when the
	// worker was parked.
	Code hst.Code
	// Parked is true when the worker's lifetime budget could not afford
	// the fresh report (or it was already parked): it must leave the
	// serving pool instead of being re-noised past its guarantee.
	Parked bool
}

// Plan is a fully budgeted rotation awaiting commit: the staged epoch and
// tree plus the per-worker outcomes, aligned with the workers given to
// PlanRotation.
type Plan struct {
	Epoch    int64
	Tree     *hst.Tree
	Outcomes []Outcome
}

// PlanRotation collects fresh reports for the listed workers (in the given
// order — the order is the deterministic contract the serving layer's id
// allocation relies on) under the staged tree, spending each worker's
// budget and parking the exhausted. staged must be the staging the caller
// observed (nil selects whatever is currently staged); if a concurrent
// re-Prepare replaced it, the plan is refused before any budget is spent —
// reports drawn against one tree are never committed under another. A
// report error from the client aborts the plan; budget refusals do not.
//
// Reports are collected without holding the controller's lock — ReportFunc
// is arbitrary client-side code and must be free to call back into the
// controller, and serving-path spends must not stall behind a population's
// re-obfuscation. The spends are then recorded under the lock, after
// re-verifying the staging.
func (c *Controller) PlanRotation(staged *Staged, workers []string, report ReportFunc) (*Plan, error) {
	c.mu.Lock()
	if staged == nil {
		staged = c.staged
	} else if c.staged != staged {
		c.mu.Unlock()
		return nil, fmt.Errorf("epoch: rotation restaged while planning")
	}
	c.mu.Unlock()
	if staged == nil {
		return nil, ErrNotStaged
	}
	p := &Plan{
		Epoch:    staged.Epoch,
		Tree:     staged.Tree,
		Outcomes: make([]Outcome, 0, len(workers)),
	}
	codes := make([]hst.Code, len(workers))
	for i, w := range workers {
		code, err := report(w, p.Tree)
		if err != nil {
			return nil, fmt.Errorf("epoch: report for %q: %w", w, err)
		}
		if err := p.Tree.CheckCode(code); err != nil {
			return nil, fmt.Errorf("epoch: report for %q: %w", w, err)
		}
		codes[i] = code
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staged != staged {
		return nil, fmt.Errorf("epoch: rotation restaged while planning %d", staged.Epoch)
	}
	for i, w := range workers {
		if err := c.spendLocked(w); err != nil {
			if !errors.Is(err, ErrBudgetExhausted) {
				return nil, err
			}
			p.Outcomes = append(p.Outcomes, Outcome{Worker: w, Parked: true})
			continue
		}
		p.Outcomes = append(p.Outcomes, Outcome{Worker: w, Code: codes[i]})
	}
	return p, nil
}

// Commit advances the controller to the planned epoch. The serving layer
// calls it after (not before) its engine swap succeeded, so a failed swap
// leaves the controller still serving — and still able to re-plan — the
// old epoch. The refit history resets: each epoch refits from what the
// previous one observed.
func (c *Controller) Commit(p *Plan) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staged == nil {
		return ErrNotStaged
	}
	if p.Epoch != c.staged.Epoch {
		return fmt.Errorf("epoch: commit of %d, staged is %d", p.Epoch, c.staged.Epoch)
	}
	c.epoch = p.Epoch
	c.tree = p.Tree
	c.staged = nil
	c.rotations++
	for i := range p.Outcomes {
		if !p.Outcomes[i].Parked {
			c.rotated++
		}
	}
	c.hist = map[int]int{}
	c.histN = 0
	return nil
}

// Stats is a point-in-time summary of the controller's bookkeeping.
type Stats struct {
	Epoch     int64
	Rotations int
	Rotated   int // successful re-obfuscations across all rotations
	Parked    int
	// Budget accounting; zero values when accounting is disabled.
	Limit      float64
	SpentTotal float64
	Agents     int
}

// Stats returns the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Epoch:     c.epoch,
		Rotations: c.rotations,
		Rotated:   c.rotated,
		Parked:    len(c.parked),
	}
	if c.acct != nil {
		st.Limit = c.acct.Limit()
		st.SpentTotal = c.acct.TotalSpent()
		st.Agents = c.acct.Agents()
	}
	return st
}
