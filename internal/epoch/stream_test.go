package epoch

import (
	"bytes"
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// assertStreamIdentity pins the streaming codec byte-identical to the
// materialized one: State.WriteTo and WriteSnapshot(eng) must both produce
// exactly want (= json.Marshal of the state), and ReadState must parse
// those bytes back to a state that re-serializes to them. Shared with
// FuzzEpochRoundTrip so the nightly fuzz budget hammers the identity too.
func assertStreamIdentity(t *testing.T, eng *engine.Engine, s *State, want []byte) {
	t.Helper()
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("WriteTo diverges from json.Marshal:\n%s\n---\n%s", buf.Bytes(), want)
	}
	if eng != nil {
		buf.Reset()
		if _, err := WriteSnapshot(&buf, eng); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("WriteSnapshot diverges from Snapshot().JSON():\n%s\n---\n%s", buf.Bytes(), want)
		}
	}
	parsed, err := ReadState(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	back, err := parsed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, want) {
		t.Fatalf("ReadState round trip diverges:\n%s\n---\n%s", back, want)
	}
}

// Differential: random populations (capacities, duplicate leaves, empty
// pools, rotated epochs) must stream byte-identical to the materialized
// encoding.
func TestStreamedSnapshotByteIdentity(t *testing.T) {
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := hst.Build(grid.Points(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		workers int
		caps    bool
		rotate  bool
	}{
		{"empty", 0, false, false},
		{"small", 17, false, false},
		{"capacitated", 500, true, false},
		{"large", 5000, false, false},
		{"rotated", 800, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var opts []engine.Option
			if tc.caps {
				opts = append(opts, engine.WithPolicy(engine.CapacityGreedy()))
			}
			eng, err := engine.NewWithOptions(tree, 3, opts...)
			if err != nil {
				t.Fatal(err)
			}
			src := rng.New(uint64(1000 + tc.workers))
			randCodeOf := func(tr *hst.Tree) hst.Code {
				buf := make([]byte, tr.Depth())
				for i := range buf {
					buf[i] = byte(src.Intn(tr.Degree()))
				}
				return hst.Code(buf)
			}
			for id := 0; id < tc.workers; id++ {
				c := 0
				if tc.caps {
					c = 1 + id%5
				}
				if err := eng.InsertCapEpoch(randCodeOf(tree), id, c, 0); err != nil {
					t.Fatal(err)
				}
			}
			if tc.rotate {
				err := eng.SwapEpochSeq(2, tree2, 0, func(yield func(engine.EpochInsert) bool) {
					for id := 0; id < tc.workers; id++ {
						if !yield(engine.EpochInsert{Code: randCodeOf(tree2), ID: id, Cap: 1 + id%3}) {
							return
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				// The seq above draws fresh random codes per invocation —
				// fine for a one-shot test swap, but re-derive the snapshot
				// only after the swap settles.
			}
			snap := Snapshot(eng)
			want, err := snap.JSON()
			if err != nil {
				t.Fatal(err)
			}
			assertStreamIdentity(t, eng, snap, want)
		})
	}
}

// ReadState must accept the liberties json.Unmarshal allowed: any key
// order, unknown keys, null workers — and reject what ParseState rejected.
func TestReadStateCompatibility(t *testing.T) {
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, tree.Depth()) // all-zero digits are always valid
	if err := eng.Insert(hst.Code(code), 3); err != nil {
		t.Fatal(err)
	}
	canonical, err := Snapshot(eng).JSON()
	if err != nil {
		t.Fatal(err)
	}
	doc := string(canonical)
	treeJSON := doc[strings.Index(doc, `"tree":`)+len(`"tree":`) : strings.Index(doc, `,"workers"`)]
	workersJSON := doc[strings.Index(doc, `"workers":`)+len(`"workers":`) : len(doc)-1]

	reordered := `{"workers":` + workersJSON + `,"unknown":{"a":[1,2]},"tree":` + treeJSON + `,"epoch":1}`
	s, err := ParseState([]byte(reordered))
	if err != nil {
		t.Fatalf("reordered document refused: %v", err)
	}
	back, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, canonical) {
		t.Fatalf("reordered parse lost data:\n%s\n---\n%s", back, canonical)
	}

	if s, err := ParseState([]byte(`{"epoch":1,"tree":` + treeJSON + `,"workers":null}`)); err != nil || s.Workers != nil {
		t.Fatalf("null workers: s=%+v err=%v", s, err)
	}
	if _, err := ParseState([]byte(`{"epoch":1,"workers":null}`)); err == nil {
		t.Fatal("treeless document accepted")
	}
	if _, err := ParseState(append(append([]byte{}, canonical...), []byte("garbage")...)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := ParseState([]byte(`{"epoch":1,"tree":` + treeJSON +
		`,"workers":[{"id":9,"code":"/////w=="}]}`)); err == nil {
		t.Fatal("out-of-tree worker code accepted")
	}
}
