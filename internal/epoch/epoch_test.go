package epoch

import (
	"errors"
	"fmt"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func buildTree(t *testing.T, seed uint64, cols int) *hst.Tree {
	t.Helper()
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200)), cols, cols)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func randCode(tree *hst.Tree, src *rng.Source) hst.Code {
	b := make([]byte, tree.Depth())
	for j := range b {
		b[j] = byte(src.Intn(tree.Degree()))
	}
	return hst.Code(b)
}

// echoReporter returns a deterministic fresh code per worker: the tree's
// real leaf indexed by a hash of the name — a stand-in for client-side
// re-obfuscation in tests that do not care about the distribution.
func echoReporter(tree *hst.Tree, worker string) hst.Code {
	h := 0
	for _, c := range worker {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return tree.CodeOf(h % tree.NumPoints())
}

func TestControllerValidation(t *testing.T) {
	tree := buildTree(t, 1, 4)
	if _, err := NewController(Config{Tree: nil, Epsilon: 1}); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := NewController(Config{Tree: tree, Epsilon: 0}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewController(Config{Tree: tree, Epsilon: 1, Lifetime: 0.5}); err == nil {
		t.Error("lifetime below per-report ε accepted")
	}
	if _, err := NewController(Config{Tree: tree, Epsilon: 1, Lifetime: -1}); err == nil {
		t.Error("negative lifetime accepted")
	}
}

func TestControllerLifecycle(t *testing.T) {
	tree := buildTree(t, 1, 8)
	c, err := NewController(Config{Tree: tree, Seed: 7, Epsilon: 0.5, Lifetime: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != FirstEpoch || c.Tree() != tree {
		t.Fatalf("fresh controller: epoch %d", c.Epoch())
	}
	if !c.Accounting() || c.Epsilon() != 0.5 {
		t.Fatal("accounting/epsilon not wired")
	}

	// Plan and commit require a staged rotation.
	if _, err := c.PlanRotation(nil, nil, nil); !errors.Is(err, ErrNotStaged) {
		t.Fatalf("plan without prepare: %v", err)
	}
	if err := c.Commit(&Plan{Epoch: 2}); !errors.Is(err, ErrNotStaged) {
		t.Fatalf("commit without prepare: %v", err)
	}

	staged, err := c.Prepare(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if staged.Epoch != 2 || staged.Tree == nil {
		t.Fatalf("staged = %+v", staged)
	}
	if c.StagedRotation() != staged {
		t.Fatal("StagedRotation does not return the staged rotation")
	}
	// The staged tree embeds the same predefined points.
	if staged.Tree.NumPoints() != tree.NumPoints() {
		t.Fatalf("staged tree has %d points, want %d", staged.Tree.NumPoints(), tree.NumPoints())
	}

	// Two spends per worker fit in the lifetime budget; the third parks.
	workers := []string{"a", "b"}
	if err := c.Spend("a"); err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanRotation(nil, workers, func(w string, tr *hst.Tree) (hst.Code, error) {
		return echoReporter(tr, w), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Outcomes) != 2 || plan.Outcomes[0].Parked || plan.Outcomes[1].Parked {
		t.Fatalf("outcomes = %+v", plan.Outcomes)
	}
	if err := c.Commit(plan); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 2 || c.Tree() != plan.Tree {
		t.Fatalf("post-commit epoch %d", c.Epoch())
	}
	if c.StagedRotation() != nil {
		t.Fatal("staged rotation survives commit")
	}

	// "a" has spent 1.0 of 1.0: the next rotation parks it; "b" (0.5) still
	// affords one more report.
	if _, err := c.Prepare(0, false); err != nil {
		t.Fatal(err)
	}
	plan, err = c.PlanRotation(nil, workers, func(w string, tr *hst.Tree) (hst.Code, error) {
		return echoReporter(tr, w), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Outcomes[0].Parked || plan.Outcomes[1].Parked {
		t.Fatalf("outcomes = %+v", plan.Outcomes)
	}
	if !c.Parked("a") || c.Parked("b") {
		t.Fatal("parked bookkeeping wrong")
	}
	// Parked is terminal: even a spend that would otherwise fit is refused.
	if err := c.Spend("a"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spend on parked worker: %v", err)
	}
	if err := c.Commit(plan); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Epoch != 3 || st.Rotations != 2 || st.Parked != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Budget conservation: 1.0 (a) + 1.0 (b: plan1 + plan2) = 2.0.
	if st.SpentTotal != 2.0 {
		t.Fatalf("SpentTotal = %v, want 2", st.SpentTotal)
	}
	if st.Limit != 1.0 || st.Agents != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Rotated != 3 { // 2 in plan1 + 1 in plan2
		t.Fatalf("Rotated = %d, want 3", st.Rotated)
	}
}

func TestPlanRotationRejectsBadReports(t *testing.T) {
	tree := buildTree(t, 2, 8)
	c, err := NewController(Config{Tree: tree, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlanRotation(nil, []string{"w"}, func(string, *hst.Tree) (hst.Code, error) {
		return "", fmt.Errorf("client offline")
	}); err == nil {
		t.Error("reporter error swallowed")
	}
	if _, err := c.PlanRotation(nil, []string{"w"}, func(string, *hst.Tree) (hst.Code, error) {
		return hst.Code("not a code"), nil
	}); err == nil {
		t.Error("malformed report accepted")
	}
}

func TestSpendWithoutAccounting(t *testing.T) {
	tree := buildTree(t, 3, 4)
	c, err := NewController(Config{Tree: tree, Epsilon: 0.5}) // Lifetime 0
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Spend("w"); err != nil {
			t.Fatalf("unbudgeted spend %d refused: %v", i, err)
		}
	}
	if st := c.Stats(); st.SpentTotal != 0 || st.Limit != 0 {
		t.Fatalf("accounting stats leak without accountant: %+v", st)
	}
}

func TestPrepareDeterministicAndReseedable(t *testing.T) {
	tree := buildTree(t, 4, 8)
	mk := func() *Controller {
		c, err := NewController(Config{Tree: tree, Seed: 42, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	s1, err := mk().Prepare(0, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := mk().Prepare(0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Same root seed, same epoch → identical construction (codes match).
	for i := 0; i < tree.NumPoints(); i++ {
		if s1.Tree.CodeOf(i) != s2.Tree.CodeOf(i) {
			t.Fatal("derived preparation not deterministic")
		}
	}
	// An explicit reseed changes the construction.
	s3, err := mk().Prepare(999, false)
	if err != nil {
		t.Fatal(err)
	}
	same := s3.Tree.Depth() == s1.Tree.Depth()
	if same {
		for i := 0; i < tree.NumPoints(); i++ {
			if s1.Tree.CodeOf(i) != s3.Tree.CodeOf(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("explicit reseed produced the identical tree")
	}
}

func TestRefitUsesObservedHistory(t *testing.T) {
	tree := buildTree(t, 5, 8)
	c, err := NewController(Config{Tree: tree, Seed: 1, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Observe a heavily skewed report history: every report at point 17.
	hot := tree.CodeOf(17)
	for i := 0; i < 50; i++ {
		c.Observe(hot)
	}
	// Fake-leaf observations must not count.
	src := rng.New(8)
	for i := 0; i < 50; i++ {
		if code := randCode(tree, src); !tree.IsReal(code) {
			c.Observe(code)
		}
	}
	staged, err := c.Prepare(0, true)
	if err != nil {
		t.Fatal(err)
	}
	// The hot point must be the first carving pivot.
	if perm := staged.Tree.Perm(); len(perm) == 0 || perm[0] != 17 {
		t.Fatalf("refit perm starts %v, want point 17 first", perm[:3])
	}
	// Commit resets the history: the next refit orders by index only.
	plan, err := c.PlanRotation(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(plan); err != nil {
		t.Fatal(err)
	}
	staged, err = c.Prepare(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if perm := staged.Tree.Perm(); perm[0] != 0 {
		t.Fatalf("post-commit refit perm starts %d, want 0 (history not reset)", perm[0])
	}
}

func TestPrepareReplacesStaged(t *testing.T) {
	tree := buildTree(t, 6, 4)
	c, err := NewController(Config{Tree: tree, Seed: 1, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.Prepare(1, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Prepare(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch != s2.Epoch {
		t.Fatalf("re-prepare advanced the epoch: %d then %d", s1.Epoch, s2.Epoch)
	}
	if c.StagedRotation() != s2 {
		t.Fatal("re-prepare did not replace the staged rotation")
	}
	// Committing a plan from the replaced staging is refused only when the
	// epochs disagree; both stage epoch 2 here, so commit goes through.
	plan, err := c.PlanRotation(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(&Plan{Epoch: plan.Epoch + 5}); err == nil {
		t.Error("commit of mismatched epoch accepted")
	}
	if err := c.Commit(plan); err != nil {
		t.Fatal(err)
	}
}
