package epoch

import (
	"strconv"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// The rotation differential, extending the hst op-tape style to epoch
// swaps: after any number of rotations, an engine that lived through them
// must be assignment-for-assignment identical to an engine built fresh
// from the same post-rotation worker set — a rotation leaves no residue
// (no stale shard state, no leaked ids, no tie-break drift).

// driveRotationDifferential churns an engine through random
// insert/remove/assign ops interleaved with rotations driven by a
// Controller; after every rotation (and at the end) it rebuilds a fresh
// engine from the live population and replays an identical assignment tape
// on both, comparing every answer.
func driveRotationDifferential(t *testing.T, seed uint64, rotations, opsPerEpoch int) {
	t.Helper()
	src := rng.New(seed)
	tree := buildTree(t, seed, 8)
	eng, err := engine.New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(Config{Tree: tree, Seed: seed, Epsilon: 0.6})
	if err != nil {
		t.Fatal(err)
	}

	live := map[int]hst.Code{} // id → code, the ground-truth population
	nextID := 0

	churn := func() {
		for op := 0; op < opsPerEpoch; op++ {
			switch {
			case src.Float64() < 0.5: // insert
				c := randCode(tree, src)
				if err := eng.Insert(c, nextID); err != nil {
					t.Fatal(err)
				}
				live[nextID] = c
				nextID++
			case src.Float64() < 0.5: // assign
				if id, _, ok := eng.Assign(randCode(tree, src)); ok {
					delete(live, id)
				}
			default: // remove an arbitrary live worker
				for id, c := range live {
					if !eng.Remove(c, id) {
						t.Fatalf("remove of live worker %d failed", id)
					}
					delete(live, id)
					break
				}
			}
		}
	}

	// compare rebuilds a fresh engine from the live population and drains
	// both engines with one probe tape, answer for answer.
	compare := func(round int) {
		fresh, err := engine.New(tree, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Inserting in arbitrary map order must not matter — the engines
		// tie-break on ids, not insertion order.
		for id, c := range live {
			if err := fresh.Insert(c, id); err != nil {
				t.Fatal(err)
			}
		}
		if fresh.Len() != eng.Len() {
			t.Fatalf("round %d: rotated engine holds %d, fresh %d", round, eng.Len(), fresh.Len())
		}
		probeSrc := rng.New(seed).DeriveN("probe", round)
		for {
			q := randCode(tree, probeSrc)
			idR, lvlR, okR := eng.Assign(q)
			idF, lvlF, okF := fresh.Assign(q)
			if idR != idF || lvlR != lvlF || okR != okF {
				t.Fatalf("round %d: rotated engine assigned (%d,%d,%v), fresh (%d,%d,%v)",
					round, idR, lvlR, okR, idF, lvlF, okF)
			}
			if !okR {
				break
			}
			delete(live, idR)
		}
		// Drained: both empty. Rebuild the rotated engine's population for
		// the next epoch from the (now empty) live set by reinserting a
		// fresh wave, so later rounds start populated.
		for i := 0; i < 40; i++ {
			c := randCode(tree, src)
			if err := eng.Insert(c, nextID); err != nil {
				t.Fatal(err)
			}
			live[nextID] = c
			nextID++
		}
	}

	for round := 0; round < rotations; round++ {
		churn()

		// Rotate: every live worker re-reports under the staged tree with
		// a fresh id, exactly as the serving layers do.
		if _, err := ctrl.Prepare(0, false); err != nil {
			t.Fatal(err)
		}
		order := make([]int, 0, len(live))
		for id := range live {
			order = append(order, id)
		}
		// Deterministic order: ascending id.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j] < order[j-1]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		names := make([]string, len(order))
		for i, id := range order {
			names[i] = workerNameFor(id)
		}
		var planTree *hst.Tree
		plan, err := ctrl.PlanRotation(nil, names, func(_ string, tr *hst.Tree) (hst.Code, error) {
			planTree = tr
			return randCode(tr, src), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(order) > 0 && planTree == nil {
			t.Fatal("reporter never called")
		}
		newLive := map[int]hst.Code{}
		inserts := make([]engine.EpochInsert, 0, len(plan.Outcomes))
		for i := range plan.Outcomes {
			id := nextID
			nextID++
			newLive[id] = plan.Outcomes[i].Code
			inserts = append(inserts, engine.EpochInsert{Code: plan.Outcomes[i].Code, ID: id})
		}
		if err := eng.SwapEpoch(plan.Epoch, plan.Tree, 0, inserts); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Commit(plan); err != nil {
			t.Fatal(err)
		}
		tree = plan.Tree
		live = newLive

		compare(round)
	}
}

func workerNameFor(id int) string { return "w" + strconv.Itoa(id) }

func TestRotatedEngineMatchesFreshBuild(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		driveRotationDifferential(t, uint64(3000+trial), 5, 300)
	}
}

// TestRotationDifferentialAcrossShardCounts repeats a smaller differential
// at shard counts around the degree clamp: the swap must preserve the
// sequential contract regardless of shard layout on either side.
func TestRotationDifferentialAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run("", func(t *testing.T) {
			src := rng.New(uint64(40 + shards))
			tree := buildTree(t, uint64(50+shards), 8)
			eng, err := engine.New(tree, shards)
			if err != nil {
				t.Fatal(err)
			}
			live := map[int]hst.Code{}
			for id := 0; id < 100; id++ {
				live[id] = randCode(tree, src)
				if err := eng.Insert(live[id], id); err != nil {
					t.Fatal(err)
				}
			}
			tree2 := buildTree(t, uint64(60+shards), 8)
			inserts := make([]engine.EpochInsert, 0, len(live))
			newLive := map[int]hst.Code{}
			for id := 0; id < 100; id++ {
				c := randCode(tree2, src)
				newLive[1000+id] = c
				inserts = append(inserts, engine.EpochInsert{Code: c, ID: 1000 + id})
			}
			if err := eng.SwapEpoch(2, tree2, 0, inserts); err != nil {
				t.Fatal(err)
			}
			// Fresh engine at a different shard count must still agree.
			fresh, err := engine.New(tree2, 3)
			if err != nil {
				t.Fatal(err)
			}
			for id, c := range newLive {
				if err := fresh.Insert(c, id); err != nil {
					t.Fatal(err)
				}
			}
			for {
				q := randCode(tree2, src)
				idR, lvlR, okR := eng.Assign(q)
				idF, lvlF, okF := fresh.Assign(q)
				if idR != idF || lvlR != lvlF || okR != okF {
					t.Fatalf("shards=%d: rotated (%d,%d,%v) ≠ fresh (%d,%d,%v)",
						shards, idR, lvlR, okR, idF, lvlF, okF)
				}
				if !okR {
					break
				}
			}
		})
	}
}
