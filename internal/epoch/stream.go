package epoch

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
)

// Streaming snapshot codec. A 10M-worker snapshot is hundreds of megabytes
// of JSON; materializing it as one json.Marshal allocation (and parsing it
// back from one blob) doubles the deployment's peak memory exactly at
// persistence time. WriteTo/WriteSnapshot emit the document through an
// io.Writer with O(1) encoder state, and ReadState decodes worker entries
// one token at a time off an io.Reader. The wire format is pinned
// byte-identical to the materialized encoder (json.Marshal of State) by
// differential test and by the FuzzEpochRoundTrip harness: a snapshot
// written by either path restores through either parser.

// WriteTo streams the canonical snapshot document — the exact bytes
// State.JSON would produce — without materializing it. It implements
// io.WriterTo.
func (s *State) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if err := writeStateHead(bw, s.Epoch, s.Tree); err != nil {
		return cw.n, err
	}
	if s.Workers == nil {
		if _, err := bw.WriteString("null}"); err != nil {
			return cw.n, err
		}
		if err := bw.Flush(); err != nil {
			return cw.n, err
		}
		return cw.n, nil
	}
	var scratch []byte
	if err := bw.WriteByte('['); err != nil {
		return cw.n, err
	}
	for i := range s.Workers {
		w := &s.Workers[i]
		scratch = appendWorker(scratch[:0], i > 0, w.ID, w.Code, w.Cap)
		if _, err := bw.Write(scratch); err != nil {
			return cw.n, err
		}
	}
	if _, err := bw.WriteString("]}"); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteSnapshot captures the engine's current epoch straight onto w,
// producing the exact bytes Snapshot(eng).JSON() would — without ever
// holding the worker list as a []WorkerEntry. The population is gathered
// into one contiguous code slab plus fixed-width entry records (sorted by
// id for determinism), so the transient cost is one compact copy of the
// codes, not a JSON document plus per-entry allocations. The caller must
// have quiesced writers, exactly as for Snapshot.
func WriteSnapshot(w io.Writer, eng *engine.Engine) (int64, error) {
	type entry struct {
		id   int32
		cap  int32
		off  int32 // code start in the slab; end is the next entry's off
		klen int32
	}
	var (
		entries []entry
		slab    []byte
	)
	eng.WalkCap(func(code hst.Code, id, capacity int) {
		off := len(slab)
		slab = append(slab, code...)
		entries = append(entries, entry{id: int32(id), cap: int32(capacity), off: int32(off), klen: int32(len(code))})
	})
	sort.Slice(entries, func(a, b int) bool { return entries[a].id < entries[b].id })

	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if err := writeStateHead(bw, eng.Epoch(), eng.Tree()); err != nil {
		return cw.n, err
	}
	if entries == nil {
		// Snapshot leaves Workers nil for an empty population, which
		// marshals as null; the streamed form must match byte for byte.
		if _, err := bw.WriteString("null}"); err != nil {
			return cw.n, err
		}
		if err := bw.Flush(); err != nil {
			return cw.n, err
		}
		return cw.n, nil
	}
	if err := bw.WriteByte('['); err != nil {
		return cw.n, err
	}
	var scratch []byte
	for i, e := range entries {
		cap := 0
		if e.cap > 1 {
			cap = int(e.cap)
		}
		scratch = appendWorker(scratch[:0], i > 0, int(e.id), slab[e.off:e.off+e.klen], cap)
		if _, err := bw.Write(scratch); err != nil {
			return cw.n, err
		}
	}
	if _, err := bw.WriteString("]}"); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeStateHead emits `{"epoch":N,"tree":<tree>,"workers":` — everything
// before the worker array. The tree is small (its published form is the
// leaf permutation and parameters, not the population), so delegating it to
// json.Marshal costs O(tree), not O(workers).
func writeStateHead(bw *bufio.Writer, epoch int64, tree *hst.Tree) error {
	if _, err := bw.WriteString(`{"epoch":`); err != nil {
		return err
	}
	var num [20]byte
	if _, err := bw.Write(strconv.AppendInt(num[:0], epoch, 10)); err != nil {
		return err
	}
	if _, err := bw.WriteString(`,"tree":`); err != nil {
		return err
	}
	tb, err := json.Marshal(tree)
	if err != nil {
		return err
	}
	if _, err := bw.Write(tb); err != nil {
		return err
	}
	_, err = bw.WriteString(`,"workers":`)
	return err
}

// appendWorker appends one worker entry's JSON. Base64's standard alphabet
// contains none of the characters encoding/json escapes, so hand-encoding
// here is byte-identical to json.Marshal of a WorkerEntry.
func appendWorker(dst []byte, comma bool, id int, code []byte, cap int) []byte {
	if comma {
		dst = append(dst, ',')
	}
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, int64(id), 10)
	dst = append(dst, `,"code":"`...)
	n := base64.StdEncoding.EncodedLen(len(code))
	off := len(dst)
	dst = append(dst, make([]byte, n)...)
	base64.StdEncoding.Encode(dst[off:], code)
	dst = append(dst, '"')
	if cap > 1 {
		dst = append(dst, `,"cap":`...)
		dst = strconv.AppendInt(dst, int64(cap), 10)
	}
	return append(dst, '}')
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadState reconstructs a snapshot from its JSON form, decoding worker
// entries one at a time instead of buffering the whole document. It
// accepts any key order and skips unknown keys (the same liberality
// json.Unmarshal gave the materialized parser) and, like ParseState,
// rejects trailing data after the document.
func ReadState(r io.Reader) (*State, error) {
	dec := json.NewDecoder(r)
	s, err := decodeState(dec)
	if err != nil {
		return nil, fmt.Errorf("epoch: parse state: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("epoch: parse state: trailing data after document")
	}
	if s.Tree == nil {
		return nil, fmt.Errorf("epoch: state has no tree")
	}
	for _, w := range s.Workers {
		if err := s.Tree.CheckCode(hst.Code(w.Code)); err != nil {
			return nil, fmt.Errorf("epoch: state worker %d: %w", w.ID, err)
		}
	}
	return s, nil
}

func decodeState(dec *json.Decoder) (*State, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("expected object, got %v", tok)
	}
	s := &State{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, _ := keyTok.(string)
		switch key {
		case "epoch":
			if err := dec.Decode(&s.Epoch); err != nil {
				return nil, fmt.Errorf("epoch field: %w", err)
			}
		case "tree":
			if err := dec.Decode(&s.Tree); err != nil {
				return nil, fmt.Errorf("tree field: %w", err)
			}
		case "workers":
			if err := decodeWorkers(dec, s); err != nil {
				return nil, err
			}
		default:
			if err := skipValue(dec); err != nil {
				return nil, err
			}
		}
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return nil, err
	}
	return s, nil
}

func decodeWorkers(dec *json.Decoder, s *State) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil {
		return nil // "workers":null — the empty-population form
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("workers field: expected array, got %v", tok)
	}
	for dec.More() {
		var w WorkerEntry
		if err := dec.Decode(&w); err != nil {
			return fmt.Errorf("worker entry %d: %w", len(s.Workers), err)
		}
		s.Workers = append(s.Workers, w)
	}
	_, err = dec.Token() // consume ']'
	return err
}

// skipValue consumes one JSON value of any shape.
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}
