package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// stressN scales iteration counts: the nightly CI lane sets POMBM_STRESS
// to hammer the interleavings much harder than the per-push run.
func stressN(base int) int {
	if os.Getenv("POMBM_STRESS") != "" {
		return base * 10
	}
	return base
}

// churnLedger is the test's ground truth for worker lifecycles. Per-id
// locks serialise bookkeeping for one worker without serialising the
// engine itself, so cross-worker engine races stay live while the ledger
// stays consistent.
type churnLedger struct {
	mu    []sync.Mutex
	state []uint8 // 0 offline, 1 available, 2 assigned, 3 departed
	code  []hst.Code
}

const (
	lOffline uint8 = iota
	lAvailable
	lAssigned
	lDeparted
)

func newChurnLedger(n int) *churnLedger {
	return &churnLedger{
		mu:    make([]sync.Mutex, n),
		state: make([]uint8, n),
		code:  make([]hst.Code, n),
	}
}

func randCode(tree *hst.Tree, src *rng.Source) hst.Code {
	b := make([]byte, tree.Depth())
	for j := range b {
		b[j] = byte(src.Intn(tree.Degree()))
	}
	return hst.Code(b)
}

// TestConcurrentChurn interleaves Register (Insert), Assign, Release
// (re-Insert by the assigner), departure (Remove) and re-registration at a
// fresh code across goroutines, asserting under -race that no task is ever
// matched to a departed, offline, or already-assigned worker, and that the
// engine's shard accounting survives the churn intact.
func TestConcurrentChurn(t *testing.T) {
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200)), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}

	const nWorkers = 512
	const nChurners = 4
	const nAssigners = 4
	opsPerChurner := stressN(400)
	opsPerAssigner := stressN(600)

	led := newChurnLedger(nWorkers)
	var violations atomic.Int64
	var assignedTotal atomic.Int64
	fail := func(format string, args ...any) {
		violations.Add(1)
		t.Errorf(format, args...)
	}

	// Seed half the pool so assigners have something to pop immediately.
	seedSrc := rng.New(1).Derive("seed-pool")
	for id := 0; id < nWorkers/2; id++ {
		led.code[id] = randCode(tree, seedSrc)
		led.state[id] = lAvailable
		if err := eng.Insert(led.code[id], id); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < nChurners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(7).DeriveN("churner", g)
			for op := 0; op < opsPerChurner; op++ {
				id := src.Intn(nWorkers)
				led.mu[id].Lock()
				switch led.state[id] {
				case lOffline, lDeparted:
					// (Re-)register at a freshly obfuscated code.
					led.code[id] = randCode(tree, src)
					if err := eng.Insert(led.code[id], id); err != nil {
						fail("insert worker %d: %v", id, err)
					} else {
						led.state[id] = lAvailable
					}
				case lAvailable:
					// Worker goes offline. A failed Remove means a
					// concurrent Assign popped it first: the assignment
					// wins and its goroutine updates the ledger.
					if eng.Remove(led.code[id], id) {
						led.state[id] = lDeparted
					}
				case lAssigned:
					// Busy worker: leave it to its assigner.
				}
				led.mu[id].Unlock()
			}
		}(g)
	}
	for g := 0; g < nAssigners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(13).DeriveN("assigner", g)
			for op := 0; op < opsPerAssigner; op++ {
				task := randCode(tree, src)
				id, _, ok := eng.Assign(task)
				if !ok {
					continue
				}
				assignedTotal.Add(1)
				led.mu[id].Lock()
				switch led.state[id] {
				case lAvailable:
					led.state[id] = lAssigned
				case lDeparted:
					fail("task matched departed worker %d", id)
				case lOffline:
					fail("task matched offline worker %d", id)
				case lAssigned:
					fail("worker %d double-assigned", id)
				}
				led.mu[id].Unlock()
				// Half the time the worker finishes quickly and is
				// released back at a new report.
				if src.Intn(2) == 0 {
					led.mu[id].Lock()
					if led.state[id] == lAssigned {
						led.code[id] = randCode(tree, src)
						if err := eng.Insert(led.code[id], id); err != nil {
							fail("release worker %d: %v", id, err)
						} else {
							led.state[id] = lAvailable
						}
					}
					led.mu[id].Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	if assignedTotal.Load() == 0 {
		t.Fatal("no assignments happened; the interleaving test exercised nothing")
	}

	// Quiesced: shard accounting must agree with the ledger exactly.
	want := map[int]bool{}
	for id := 0; id < nWorkers; id++ {
		if led.state[id] == lAvailable {
			want[id] = true
		}
	}
	if n := eng.Len(); n != len(want) {
		t.Errorf("engine.Len() = %d, ledger has %d available", n, len(want))
	}
	occ := 0
	for _, o := range eng.Occupancy() {
		occ += o
	}
	if occ != len(want) {
		t.Errorf("Σ Occupancy = %d, ledger has %d available", occ, len(want))
	}

	// Drain through Assign: every pop walks the trie's count/minID
	// bookkeeping, so a corrupted shard surfaces as a wrong or missing id.
	drainSrc := rng.New(21).Derive("drain")
	got := map[int]bool{}
	for {
		id, _, ok := eng.Assign(randCode(tree, drainSrc))
		if !ok {
			break
		}
		if got[id] {
			t.Fatalf("worker %d drained twice", id)
		}
		got[id] = true
	}
	if len(got) != len(want) {
		t.Errorf("drained %d workers, ledger has %d available", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("available worker %d missing from drain", id)
		}
	}
	if eng.Len() != 0 {
		t.Errorf("engine.Len() = %d after drain", eng.Len())
	}
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d lifecycle violations", v)
	}
}

// TestConcurrentChurnAcrossShardCounts re-runs a smaller churn at shard
// counts around the degree clamp, including the single-shard degenerate
// case where every operation contends on one lock.
func TestConcurrentChurnAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200)), 8, 8)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := hst.Build(grid.Points(), rng.New(5))
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(tree, shards)
			if err != nil {
				t.Fatal(err)
			}
			const n = 128
			led := newChurnLedger(n)
			var wg sync.WaitGroup
			var bad atomic.Int64
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					src := rng.New(31).DeriveN("mix", g)
					for op := 0; op < stressN(300); op++ {
						id := src.Intn(n)
						led.mu[id].Lock()
						switch led.state[id] {
						case lAvailable:
							if eng.Remove(led.code[id], id) {
								led.state[id] = lOffline
							} else {
								// Lost to a concurrent Assign by another
								// goroutine of this same mix: reconcile.
								led.state[id] = lAssigned
							}
						default:
							led.code[id] = randCode(tree, src)
							if err := eng.Insert(led.code[id], id); err != nil {
								bad.Add(1)
							} else {
								led.state[id] = lAvailable
							}
						}
						led.mu[id].Unlock()
						if op%3 == 0 {
							if id, _, ok := eng.Assign(randCode(tree, src)); ok {
								led.mu[id].Lock()
								if led.state[id] == lAvailable {
									led.state[id] = lAssigned
								}
								led.mu[id].Unlock()
							}
						}
					}
				}(g)
			}
			wg.Wait()
			if bad.Load() > 0 {
				t.Fatalf("%d unexpected insert failures", bad.Load())
			}
			occ := 0
			for _, o := range eng.Occupancy() {
				occ += o
			}
			if occ != eng.Len() {
				t.Errorf("Σ Occupancy %d != Len %d", occ, eng.Len())
			}
		})
	}
}
