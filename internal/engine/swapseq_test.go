package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// populationOf flattens an engine's available pool into a canonical,
// comparable form.
func populationOf(e *Engine) []string {
	var got []string
	e.WalkCap(func(code hst.Code, id, capacity int) {
		got = append(got, fmt.Sprintf("%x/%d/%d", string(code), id, capacity))
	})
	sort.Strings(got)
	return got
}

// The streaming swap must land the exact state the materialized swap lands:
// same epoch, same tree, same population unit for unit, same subsequent
// assignments.
func TestSwapEpochSeqMatchesSwapEpoch(t *testing.T) {
	tree1 := buildTestTree(t, 1, 8)
	tree2 := buildTestTree(t, 2, 8)
	mkEngine := func() *Engine {
		eng, err := NewWithOptions(tree1, 4, WithPolicy(CapacityGreedy()))
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(7)
		for id := 0; id < 64; id++ {
			if err := eng.InsertCapEpoch(randCode(tree1, src), id, 1+id%3, 0); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}
	src := rng.New(9)
	inserts := make([]EpochInsert, 200)
	for i := range inserts {
		inserts[i] = EpochInsert{Code: randCode(tree2, src), ID: 1000 + i, Cap: 1 + i%4}
	}

	matEng := mkEngine()
	if err := matEng.SwapEpoch(2, tree2, 0, inserts); err != nil {
		t.Fatal(err)
	}
	seqEng := mkEngine()
	err := seqEng.SwapEpochSeq(2, tree2, 0, func(yield func(EpochInsert) bool) {
		for _, in := range inserts {
			if !yield(in) {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	if seqEng.Epoch() != 2 || seqEng.Tree() != tree2 {
		t.Fatalf("seq swap: epoch=%d tree ok=%v", seqEng.Epoch(), seqEng.Tree() == tree2)
	}
	mat, seq := populationOf(matEng), populationOf(seqEng)
	if len(mat) != len(seq) {
		t.Fatalf("population sizes differ: %d vs %d", len(mat), len(seq))
	}
	for i := range mat {
		if mat[i] != seq[i] {
			t.Fatalf("population[%d]: %q vs %q", i, mat[i], seq[i])
		}
	}
	// Drain both with the same task stream: answer-for-answer identical.
	drain := rng.New(11)
	for i := 0; i < 300; i++ {
		code := randCode(tree2, drain)
		mid, mlvl, mok := matEng.Assign(code)
		sid, slvl, sok := seqEng.Assign(code)
		if mid != sid || mlvl != slvl || mok != sok {
			t.Fatalf("assign %d diverged: (%d,%d,%v) vs (%d,%d,%v)", i, mid, mlvl, mok, sid, slvl, sok)
		}
	}
}

// Validation failures surface before anything is torn down: the old epoch
// keeps serving its full population.
func TestSwapEpochSeqValidationKeepsServing(t *testing.T) {
	tree1 := buildTestTree(t, 3, 8)
	tree2 := buildTestTree(t, 4, 8)
	eng, err := New(tree1, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for id := 0; id < 32; id++ {
		if err := eng.Insert(randCode(tree1, src), id); err != nil {
			t.Fatal(err)
		}
	}
	good := randCode(tree2, src)
	cases := []struct {
		name string
		in   EpochInsert
		want string
	}{
		{"bad code", EpochInsert{Code: hst.Code("\x00"), ID: 1}, "code"},
		{"negative id", EpochInsert{Code: good, ID: -1}, "id"},
	}
	for _, tc := range cases {
		err := eng.SwapEpochSeq(2, tree2, 0, func(yield func(EpochInsert) bool) {
			yield(EpochInsert{Code: good, ID: 100})
			yield(tc.in)
		})
		if err == nil {
			t.Fatalf("%s: swap accepted", tc.name)
		}
		if eng.Epoch() != FirstEpoch || eng.Len() != 32 {
			t.Fatalf("%s: old epoch damaged: epoch=%d len=%d", tc.name, eng.Epoch(), eng.Len())
		}
	}
	// Stale epoch refused without invoking the sequence at all.
	if err := eng.SwapEpochSeq(FirstEpoch, tree2, 0, func(func(EpochInsert) bool) {}); err == nil ||
		!strings.Contains(err.Error(), "already serving") {
		t.Fatalf("stale swap: %v", err)
	}
	if err := eng.SwapEpochSeq(2, nil, 0, func(func(EpochInsert) bool) {}); err == nil {
		t.Fatal("nil tree accepted")
	}
}

// PrepareSwapSeq builds the staged state straight off a pull iterator; a
// mid-stream error aborts with the serving epoch untouched, and a committed
// prepare matches the materialized two-phase path.
func TestPrepareSwapSeq(t *testing.T) {
	tree1 := buildTestTree(t, 6, 8)
	tree2 := buildTestTree(t, 7, 8)
	eng, err := New(tree1, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	for id := 0; id < 16; id++ {
		if err := eng.Insert(randCode(tree1, src), id); err != nil {
			t.Fatal(err)
		}
	}
	inserts := make([]EpochInsert, 40)
	for i := range inserts {
		inserts[i] = EpochInsert{Code: randCode(tree2, src), ID: 500 + i}
	}

	// Decode-error abort.
	i := 0
	_, err = eng.PrepareSwapSeq(2, tree2, 0, func() (EpochInsert, bool, error) {
		if i >= 20 {
			return EpochInsert{}, false, fmt.Errorf("wire decode failed")
		}
		in := inserts[i]
		i++
		return in, true, nil
	})
	if err == nil || !strings.Contains(err.Error(), "wire decode failed") {
		t.Fatalf("stream error not propagated: %v", err)
	}
	if eng.Epoch() != FirstEpoch || eng.Len() != 16 {
		t.Fatalf("aborted prepare damaged serving state: epoch=%d len=%d", eng.Epoch(), eng.Len())
	}

	// Full stream, then commit.
	i = 0
	p, err := eng.PrepareSwapSeq(2, tree2, 0, func() (EpochInsert, bool, error) {
		if i >= len(inserts) {
			return EpochInsert{}, false, nil
		}
		in := inserts[i]
		i++
		return in, true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CommitSwap(p); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 2 || eng.Len() != len(inserts) {
		t.Fatalf("after streamed prepare+commit: epoch=%d len=%d", eng.Epoch(), eng.Len())
	}
}

// ArenaBytes must scale with the population — it is the numerator of the
// soak lane's structural bytes-per-worker figure.
func TestEngineArenaBytes(t *testing.T) {
	tree := buildTestTree(t, 8, 8)
	eng, err := New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	empty := eng.ArenaBytes()
	src := rng.New(17)
	for id := 0; id < 4096; id++ {
		if err := eng.Insert(randCode(tree, src), id); err != nil {
			t.Fatal(err)
		}
	}
	full := eng.ArenaBytes()
	if full <= empty {
		t.Fatalf("ArenaBytes did not grow: %d -> %d", empty, full)
	}
	if perWorker := float64(full) / 4096; perWorker > 512 {
		t.Fatalf("structural bytes/worker = %.0f, expected well under 512", perWorker)
	}
}
