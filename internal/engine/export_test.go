package engine

// SetBatchRouteThreshold overrides the routed-batch size gate so tests can
// force (or suppress) the routed path on small batches. It returns a
// restore func and must not be called while engines are serving.
func SetBatchRouteThreshold(n int) (restore func()) {
	old := batchRouteThreshold
	batchRouteThreshold = n
	return func() { batchRouteThreshold = old }
}
