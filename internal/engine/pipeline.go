package engine

import (
	"sync"

	"github.com/pombm/pombm/internal/hst"
)

// This file pipelines the batch-optimal policy over long batches. A batch
// longer than batchWindowSize splits into consecutive windows, each
// solved as its own restricted matching — exactly the outcome of
// submitting the chunks as separate batches back to back. The win is how
// the windows overlap: the matching solve touches nothing but refs mined
// into the window's scratch, so while window i's solver runs on its own
// goroutine the serving thread mines window i+1's candidates from the
// tries. That mining is speculative — window i's commit has not consumed
// its matched units yet — so between commit i and solve i+1 a repair pass
// re-verifies the mined refs against the post-commit tries: refs whose
// worker lost units are re-capped in place, tasks that lost a candidate
// entirely are re-mined, and both checks are skipped wholesale for shards
// the commit never touched. The repair leaves the mined state exactly as
// a fresh post-commit mine would have, so the pipeline's answers are
// bit-identical to the unpipelined window sequence.
//
// Every shard lock is held across the whole pipeline (a window is a
// global decision, and the epoch cannot rotate mid-batch while the locks
// are held — rotation itself takes them all). The per-shard insert
// generation snapshotted at mine time proves the only mutations between
// mine and repair were our own commits: consumption can strand a ref
// (caught by RefUnits) but never redirect one — only inserts can, and an
// insert would bump the generation, which the repair pass treats as a
// full re-mine of that shard's speculation.

// batchWindowSize is the pipelined batch-optimal window length: batches
// up to this size solve as a single matching; longer batches split into
// windows of this size. Larger windows buy a wider matching scope at
// quadratically growing solve cost — 256 tasks keeps a window's solve
// comfortably inside the time the next window's mine needs, so neither
// pipeline stage starves the other.
const batchWindowSize = 256

// solvePipelined serves a long batch as a pipeline of windows under one
// all-shards lock session. It reports false when an epoch swap won the
// lock race, in which case the caller retries against the new state.
func (p *batchOptimalPolicy) solvePipelined(e *Engine, st *epochState, codes []hst.Code, ids, lvls []int) bool {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return false
	}

	// Two scratches alternate: cur is solving while nxt is mining. The
	// warm potentials live on the policy — every read and write of them is
	// ordered (a window's solve starts only after the previous window's
	// commit banked its duals), so the pipeline warm-starts exactly like
	// the sequential window loop.
	cur := p.pool.Get().(*windowScratch)
	nxt := p.pool.Get().(*windowScratch)
	defer p.pool.Put(cur)
	defer p.pool.Put(nxt)

	n := len(codes)
	nw := (n + batchWindowSize - 1) / batchWindowSize
	window := func(w int) (lo, hi int) {
		lo = w * batchWindowSize
		hi = lo + batchWindowSize
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	dirty := make([]bool, len(st.shards))

	lo, hi := window(0)
	ntCur := p.mineWindow(cur, st, codes[lo:hi], ids[lo:hi], lvls[lo:hi])
	var solveWG sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := window(w)
		if ntCur > 0 {
			// The window was mined speculatively; the commit since then may
			// have drained the pool entirely, leaving nothing to match (a
			// partially drained pool is fine — repair re-mined against it,
			// and pads cover tasks whose own shard emptied).
			pool := 0
			for i := range st.shards {
				pool += st.shards[i].index.Len()
			}
			if pool == 0 {
				ntCur = 0 // answers stay None; later windows early-out in mineWindow
			}
		}
		if ntCur > 0 {
			p.padWindow(cur, st, codes[lo:hi])
			solveWG.Add(1)
			go func(ws *windowScratch) {
				defer solveWG.Done()
				p.buildAndSolve(ws, st)
			}(cur)
		}
		ntNxt := 0
		if w+1 < nw {
			nlo, nhi := window(w + 1)
			ntNxt = p.mineWindow(nxt, st, codes[nlo:nhi], ids[nlo:nhi], lvls[nlo:nhi])
		}
		if ntCur > 0 {
			solveWG.Wait()
			for i := range dirty {
				dirty[i] = false
			}
			p.commitWindow(cur, st, ids[lo:hi], lvls[lo:hi], dirty)
			if ntNxt > 0 {
				nlo, nhi := window(w + 1)
				p.repairWindow(nxt, st, codes[nlo:nhi], dirty)
			}
		}
		cur, nxt = nxt, cur
		ntCur = ntNxt
	}
	e.windows.n.Add(int64(nw))
	return true
}

// repairWindow re-verifies a window's speculatively mined own-shard
// candidates after the previous window's commit: for tasks homed on a
// shard the commit consumed from, every ref is probed — still-live refs
// are re-capped to their remaining units (membership in the top-k is
// unaffected: consumption elsewhere only removes competitors), and a task
// whose candidate was fully consumed is re-mined from the live trie. A
// shard whose insert generation moved since the mine invalidates ref
// identity itself, so its tasks re-mine unconditionally. Caller holds
// every shard lock; pads have not been built yet (padWindow runs after).
func (p *batchOptimalPolicy) repairWindow(ws *windowScratch, st *epochState, codes []hst.Code, dirty []bool) {
	k := p.k
	for ti := range ws.valid {
		s := ws.taskShard[ti]
		idx := st.shards[s].index
		stale := idx.InsertGen() != ws.genSnap[s]
		if !stale {
			if !dirty[s] {
				continue
			}
			for j := 0; j < int(ws.candCnt[ti]); j++ {
				c := &ws.cands[ti*k+j]
				units, ok := idx.RefUnits(*c)
				if !ok || units == 0 {
					stale = true
					break
				}
				c.Cap = int32(units)
			}
		}
		if stale {
			region := ws.cands[ti*k : ti*k : (ti+1)*k]
			got := idx.NearestKRef(codes[ws.valid[ti]], k, region)
			ws.candCnt[ti] = int32(len(got))
			for j := range got {
				ws.candSh[ti*k+j] = s
			}
		}
	}
}
