package engine_test

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// TestRoutedBatchDifferentialOpTape is the routed batch path's acceptance
// test: with the size gate forced open so every batch routes, random
// operation tapes — batches of assigns, inserts, withdraws, epoch
// rotations — served through AssignBatch must match, decision for
// decision, a mirror engine fed the same tape one Assign at a time. The
// mirror's one-by-one path is itself pinned to the paper's scanning rule
// by TestGreedyDifferentialOpTape, so this transitively pins the routed
// path (speculative pops, rollback-and-replay resolution, sub-shard
// tiers) to sequential semantics.
func TestRoutedBatchDifferentialOpTape(t *testing.T) {
	defer engine.SetBatchRouteThreshold(1)()
	// 33 and 1000 land past any grid-16 tree's degree, driving the
	// sub-sharded layout and its two-tier resolution through the tape.
	for _, shards := range []int{2, 5, 33, 1000} {
		for seed := uint64(1); seed <= 2; seed++ {
			tree := buildTree(t, 16, 60+seed)
			eb := newTestEngine(t, tree, nil, shards)
			es := newTestEngine(t, tree, nil, shards)
			src := rng.New(1300 + uint64(shards)*7 + seed)
			nextID := 0
			epoch := int64(engine.FirstEpoch)
			codes := map[int]hst.Code{}
			live := []int{}
			for step := 0; step < 400; step++ {
				switch op := src.Intn(10); {
				case op < 3: // insert a fresh worker into both engines
					code := randCode(tree, src)
					for _, e := range []*engine.Engine{eb, es} {
						if err := e.Insert(code, nextID); err != nil {
							t.Fatal(err)
						}
					}
					codes[nextID] = code
					live = append(live, nextID)
					nextID++
				case op < 8: // a batch through eb, one by one through es
					m := 1 + src.Intn(64)
					batch := make([]hst.Code, m)
					for i := range batch {
						if src.Intn(20) == 0 {
							batch[i] = hst.Code("malformed")
						} else {
							batch[i] = randCode(tree, src)
						}
					}
					gotIDs, gotLvls := eb.AssignBatch(batch)
					for i, q := range batch {
						wid, wlvl, wok := es.Assign(q)
						if !wok {
							wid, wlvl = engine.None, 0
						}
						if gotIDs[i] != wid || gotLvls[i] != wlvl {
							t.Fatalf("shards=%d seed=%d step %d task %d: batch (%d,%d) ≠ sequential (%d,%d)",
								shards, seed, step, i, gotIDs[i], gotLvls[i], wid, wlvl)
						}
						if wok {
							for j, id := range live {
								if id == wid {
									live = append(live[:j], live[j+1:]...)
									break
								}
							}
						}
					}
				case op < 9: // withdraw a random available worker from both
					if len(live) == 0 {
						continue
					}
					i := src.Intn(len(live))
					id := live[i]
					for _, e := range []*engine.Engine{eb, es} {
						if !e.Remove(codes[id], id) {
							t.Fatalf("step %d: Remove(%d) failed", step, id)
						}
					}
					live = append(live[:i], live[i+1:]...)
				default: // rotate both engines to an identical fresh epoch
					epoch++
					newTree := buildTree(t, 16, 8000+uint64(step)+seed)
					inserts := make([]engine.EpochInsert, 0, len(live))
					for _, id := range live {
						c := randCode(newTree, src)
						inserts = append(inserts, engine.EpochInsert{Code: c, ID: id})
						codes[id] = c
					}
					for _, e := range []*engine.Engine{eb, es} {
						if err := e.SwapEpoch(epoch, newTree, 0, inserts); err != nil {
							t.Fatal(err)
						}
					}
					tree = newTree
				}
			}
			if eb.Len() != es.Len() {
				t.Fatalf("shards=%d seed=%d: pools diverged, batch %d ≠ sequential %d",
					shards, seed, eb.Len(), es.Len())
			}
		}
	}
}

// TestRoutedBatchCapacityDifferential runs the same batch-vs-sequential
// tape under the capacitated greedy rule: speculative pops consume single
// units, so the resolution rollback must return units (not whole slots)
// and replays must re-consume them exactly as the sequential path would.
func TestRoutedBatchCapacityDifferential(t *testing.T) {
	defer engine.SetBatchRouteThreshold(1)()
	for _, shards := range []int{5, 33} {
		tree := buildTree(t, 16, 70)
		mk := func() *engine.Engine {
			e, err := engine.NewWithOptions(tree, shards, engine.WithPolicy(engine.CapacityGreedy()))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		eb, es := mk(), mk()
		src := rng.New(1500 + uint64(shards))
		nextID := 0
		codes := map[int]hst.Code{}
		outstanding := map[int]int{} // units handed out, eligible for return
		for step := 0; step < 400; step++ {
			switch op := src.Intn(10); {
			case op < 3: // insert with a random capacity
				code, capUnits := randCode(tree, src), 1+src.Intn(3)
				for _, e := range []*engine.Engine{eb, es} {
					if err := e.InsertCapEpoch(code, nextID, capUnits, 0); err != nil {
						t.Fatal(err)
					}
				}
				codes[nextID] = code
				nextID++
			case op < 8: // batch vs sequential
				m := 1 + src.Intn(48)
				batch := make([]hst.Code, m)
				for i := range batch {
					batch[i] = randCode(tree, src)
				}
				gotIDs, gotLvls := eb.AssignBatch(batch)
				for i, q := range batch {
					wid, wlvl, wok := es.Assign(q)
					if !wok {
						wid, wlvl = engine.None, 0
					}
					if gotIDs[i] != wid || gotLvls[i] != wlvl {
						t.Fatalf("shards=%d step %d task %d: batch (%d,%d) ≠ sequential (%d,%d)",
							shards, step, i, gotIDs[i], gotLvls[i], wid, wlvl)
					}
					if wok {
						outstanding[wid]++
					}
				}
			default: // return one consumed unit to both engines
				for id, n := range outstanding {
					if n > 0 {
						for _, e := range []*engine.Engine{eb, es} {
							if err := e.AddCapacity(codes[id], id); err != nil {
								t.Fatal(err)
							}
						}
						outstanding[id]--
						break
					}
				}
			}
		}
		if eb.CapacityUnits() != es.CapacityUnits() || eb.Len() != es.Len() {
			t.Fatalf("shards=%d: pools diverged, batch %d workers/%d units ≠ sequential %d/%d",
				shards, eb.Len(), eb.CapacityUnits(), es.Len(), es.CapacityUnits())
		}
	}
}

// TestRoutedBatchChurnRace drives the routed batch path (batches well past
// the route gate) against concurrent inserts, withdrawals, and epoch
// rotations, for the race detector and the resolution pass's internal
// invariant checks. Rotations republish the same tree so every code stays
// valid while the epoch pointer — and with it the reroute machinery —
// churns underneath in-flight batches.
func TestRoutedBatchChurnRace(t *testing.T) {
	tree := buildTree(t, 16, 80)
	eng, err := engine.New(tree, 33) // sub-sharded: both resolution tiers live
	if err != nil {
		t.Fatal(err)
	}
	const nWorkers = 256
	led := struct {
		mu    []sync.Mutex
		state []uint8 // 0 out of pool, 1 available
		code  []hst.Code
	}{
		mu:    make([]sync.Mutex, nWorkers),
		state: make([]uint8, nWorkers),
		code:  make([]hst.Code, nWorkers),
	}
	seedSrc := rng.New(3)
	for id := 0; id < nWorkers; id++ {
		led.code[id] = randCode(tree, seedSrc)
		led.state[id] = 1
		if err := eng.Insert(led.code[id], id); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 3; g++ { // batch assigners
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(11).DeriveN("batcher", g)
			for op := 0; op < 60; op++ {
				batch := make([]hst.Code, 48)
				for i := range batch {
					batch[i] = randCode(tree, src)
				}
				ids, _ := eng.AssignBatch(batch)
				for _, id := range ids {
					if id == engine.None {
						continue
					}
					led.mu[id].Lock()
					led.state[id] = 0
					if src.Intn(2) == 0 { // release back at a fresh report
						led.code[id] = randCode(tree, src)
						if err := eng.Insert(led.code[id], id); err != nil {
							bad.Add(1)
						} else {
							led.state[id] = 1
						}
					}
					led.mu[id].Unlock()
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ { // churners
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(17).DeriveN("churner", g)
			for op := 0; op < 800; op++ {
				id := src.Intn(nWorkers)
				led.mu[id].Lock()
				if led.state[id] == 1 {
					// A failed Remove lost to a concurrent pop; either way the
					// worker is out of the pool now.
					eng.Remove(led.code[id], id)
					led.state[id] = 0
				} else {
					led.code[id] = randCode(tree, src)
					if err := eng.Insert(led.code[id], id); err != nil {
						bad.Add(1)
					} else {
						led.state[id] = 1
					}
				}
				led.mu[id].Unlock()
			}
		}(g)
	}
	wg.Add(1)
	go func() { // rotator: same tree, fresh epoch, keeps whoever is live
		defer wg.Done()
		epoch := int64(engine.FirstEpoch)
		for i := 0; i < 12; i++ {
			// The WalkCap view races the churn, which is exactly the point:
			// the rotation republishes some recent population and in-flight
			// batches must reroute cleanly. The ledger reconciles afterwards
			// through failed Removes and fresh Inserts.
			var inserts []engine.EpochInsert
			eng.WalkCap(func(code hst.Code, id, capacity int) {
				inserts = append(inserts, engine.EpochInsert{Code: code, ID: id, Cap: capacity})
			})
			epoch++
			if err := eng.SwapEpoch(epoch, tree, 0, inserts); err != nil {
				bad.Add(1)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if bad.Load() > 0 {
		t.Fatalf("%d unexpected operation failures", bad.Load())
	}
	occ := 0
	for _, o := range eng.Occupancy() {
		occ += o
	}
	if occ != eng.Len() {
		t.Errorf("Σ Occupancy %d ≠ Len %d after churn", occ, eng.Len())
	}
}

// TestRoutedBatchScalabilitySmoke is the multi-core throughput check: on a
// machine with at least four cores, eight concurrent batch streams must
// move at least twice the throughput of one. It only runs on the stress
// lane (POMBM_STRESS) — on fewer cores, or a loaded runner, the ratio is
// noise, so it skips rather than flake.
func TestRoutedBatchScalabilitySmoke(t *testing.T) {
	if os.Getenv("POMBM_STRESS") == "" {
		t.Skip("set POMBM_STRESS to run the scalability smoke")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU = %d, scaling measurement needs ≥ 4 cores", runtime.NumCPU())
	}
	tree := buildTree(t, 32, 90)
	const nWorkers = 1 << 15
	const batchSize = 256
	run := func(goroutines int) time.Duration {
		src := rng.New(7)
		codes := make([]hst.Code, nWorkers)
		for i := range codes {
			codes[i] = randCode(tree, src)
		}
		e := newTestEngine(t, tree, codes, 2*tree.Degree())
		perG := nWorkers / goroutines / batchSize
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := rng.New(uint64(g))
				batch := make([]hst.Code, batchSize)
				for b := 0; b < perG; b++ {
					for i := range batch {
						batch[i] = codes[s.Intn(nWorkers)]
					}
					e.AssignBatch(batch)
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}
	best := func(goroutines int) time.Duration {
		d := run(goroutines)
		if d2 := run(goroutines); d2 < d {
			d = d2
		}
		return d
	}
	t1, t8 := best(1), best(8)
	speedup := float64(t1) / float64(t8)
	t.Logf("1 goroutine %v, 8 goroutines %v, speedup %.2fx", t1, t8, speedup)
	if speedup < 2 {
		t.Errorf("8 batch streams sped up only %.2fx over 1, want ≥ 2x", speedup)
	}
}
