package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func buildTree(t testing.TB, cols int, seed uint64) *hst.Tree {
	t.Helper()
	grid, err := geo.NewGrid(workload.SyntheticRegion, cols, cols)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// randCode draws a uniformly random (possibly fake) leaf code.
func randCode(tree *hst.Tree, s *rng.Source) hst.Code {
	b := make([]byte, tree.Depth())
	for i := range b {
		b[i] = byte(s.Intn(tree.Degree()))
	}
	return hst.Code(b)
}

func newTestEngine(t testing.TB, tree *hst.Tree, codes []hst.Code, shards int) *engine.Engine {
	t.Helper()
	e, err := engine.New(tree, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if err := e.Insert(c, i); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := engine.New(nil, 4); err == nil {
		t.Error("nil tree accepted")
	}
	tree := buildTree(t, 8, 1)
	e, err := engine.New(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() < 1 {
		t.Errorf("Shards = %d", e.Shards())
	}
	d := tree.Degree()
	// Counts beyond the degree sub-shard by second digit: the engine rounds
	// to a full degree×sub grid, capped at degree² (two digits of routing).
	if e, _ := engine.New(tree, 10_000); e.Shards() != d*d {
		t.Errorf("Shards = %d for an oversized request, want the degree² grid %d", e.Shards(), d*d)
	}
	if e, _ := engine.New(tree, d+1); e.Shards() != d {
		t.Errorf("Shards = %d for degree+1, want round-down to %d", e.Shards(), d)
	}
	if e, _ := engine.New(tree, 3*d); e.Shards() != 3*d {
		t.Errorf("Shards = %d, want the requested 3×degree grid %d", e.Shards(), 3*d)
	}
}

func TestInsertRemoveLen(t *testing.T) {
	tree := buildTree(t, 8, 2)
	e, err := engine.New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(hst.Code("x"), 0); err == nil {
		t.Error("malformed code accepted")
	}
	c0, c1 := tree.CodeOf(0), tree.CodeOf(17)
	if err := e.Insert(c0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(c1, 1); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Errorf("Len = %d", e.Len())
	}
	total := 0
	for _, n := range e.Occupancy() {
		total += n
	}
	if total != 2 {
		t.Errorf("Occupancy sums to %d", total)
	}
	if !e.Remove(c0, 0) {
		t.Error("Remove existing failed")
	}
	if e.Remove(c0, 0) {
		t.Error("Remove twice succeeded")
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d after removal", e.Len())
	}
}

// TestAssignIsTreeNearest is the Alg. 4 validity property test: every
// assigned worker must be tree-nearest among the workers available at the
// moment of assignment, for every shard count.
func TestAssignIsTreeNearest(t *testing.T) {
	tree := buildTree(t, 16, 3)
	// Counts past the degree exercise second-digit sub-sharding, up to the
	// full degree² grid.
	for _, shards := range []int{1, 2, 3, 8, tree.Degree(), 2 * tree.Degree(), 1000} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			src := rng.New(uint64(100 + shards))
			n := 300
			codes := make([]hst.Code, n)
			for i := range codes {
				codes[i] = randCode(tree, src)
			}
			e := newTestEngine(t, tree, codes, shards)
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = true
			}
			for task := 0; task < n+10; task++ {
				q := randCode(tree, src)
				id, lvl, ok := e.Assign(q)
				best := tree.Depth() + 1
				for i, c := range codes {
					if alive[i] {
						if l := tree.LCALevel(q, c); l < best {
							best = l
						}
					}
				}
				if best > tree.Depth() { // no workers left
					if ok {
						t.Fatalf("task %d assigned worker %d with none available", task, id)
					}
					continue
				}
				if !ok {
					t.Fatalf("task %d unassigned with workers available", task)
				}
				if !alive[id] {
					t.Fatalf("task %d got already-assigned worker %d", task, id)
				}
				if got := tree.LCALevel(q, codes[id]); got != best || lvl != best {
					t.Fatalf("task %d: worker %d at level %d (reported %d), nearest is %d",
						task, id, got, lvl, best)
				}
				alive[id] = false
			}
		})
	}
}

// TestAssignMatchesScan checks the stronger sequential guarantee: with
// lowest-id tie-breaking throughout, the engine reproduces the paper's
// scanning matcher assignment for assignment.
func TestAssignMatchesScan(t *testing.T) {
	tree := buildTree(t, 16, 4)
	for _, shards := range []int{1, 4, 7, 2*tree.Degree() + 1} {
		src := rng.New(uint64(40 + shards))
		n := 250
		codes := make([]hst.Code, n)
		for i := range codes {
			codes[i] = randCode(tree, src)
		}
		e := newTestEngine(t, tree, codes, shards)
		scan := match.NewHSTGreedyScan(tree, codes)
		for task := 0; task < n+5; task++ {
			q := randCode(tree, src)
			want := scan.Assign(q)
			id, _, ok := e.Assign(q)
			if !ok {
				id = match.NoWorker
			}
			if id != want {
				t.Fatalf("shards=%d task %d: engine chose %d, scan chose %d", shards, task, id, want)
			}
		}
	}
}

// TestAssignBatchMatchesSequential: a batch must produce exactly the
// outcome of assigning its codes one by one.
func TestAssignBatchMatchesSequential(t *testing.T) {
	tree := buildTree(t, 16, 5)
	src := rng.New(77)
	n := 200
	codes := make([]hst.Code, n)
	for i := range codes {
		codes[i] = randCode(tree, src)
	}
	tasks := make([]hst.Code, n+20)
	for i := range tasks {
		tasks[i] = randCode(tree, src)
	}
	tasks[3] = hst.Code("bogus") // malformed codes yield engine.None, consume nothing

	eb := newTestEngine(t, tree, codes, 5)
	es := newTestEngine(t, tree, codes, 5)
	got, lvls := eb.AssignBatch(tasks)
	for i, q := range tasks {
		id, lvl, ok := es.Assign(q)
		if !ok {
			id = engine.None
		}
		if got[i] != id {
			t.Fatalf("task %d: batch chose %d, sequential chose %d", i, got[i], id)
		}
		if ok && lvls[i] != lvl {
			t.Fatalf("task %d: batch reported level %d, sequential %d", i, lvls[i], lvl)
		}
	}
	if eb.Len() != es.Len() {
		t.Fatalf("Len diverged: batch %d, sequential %d", eb.Len(), es.Len())
	}
}

func TestSinglePointTree(t *testing.T) {
	// One predefined point: hst.Build clamps depth to 1 with a single
	// branch, so the shard count clamps to the degree and every item sits
	// on the query leaf (level 0).
	tree, err := hst.Build([]geo.Point{geo.Pt(1, 1)}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != tree.Degree() {
		t.Fatalf("Shards = %d, want clamp to degree %d", e.Shards(), tree.Degree())
	}
	code := tree.CodeOf(0)
	for i := 0; i < 3; i++ {
		if err := e.Insert(code, i); err != nil {
			t.Fatal(err)
		}
	}
	for want := 0; want < 3; want++ {
		id, lvl, ok := e.Assign(code)
		if !ok || id != want || lvl != 0 {
			t.Fatalf("Assign = (%d,%d,%v), want (%d,0,true)", id, lvl, ok, want)
		}
	}
	if _, _, ok := e.Assign(code); ok {
		t.Error("Assign on drained engine returned ok")
	}
}

// TestConcurrentAssignNoDoubleAssignment drives many goroutines through
// Assign and AssignBatch at once (run under -race) and checks that every
// worker is handed out exactly once and the counts add up.
func TestConcurrentAssignNoDoubleAssignment(t *testing.T) {
	tree := buildTree(t, 16, 6)
	const nWorkers = 600
	const nGoroutines = 8
	const tasksPer = 100 // 800 tasks for 600 workers: some must be rejected
	src := rng.New(55)
	codes := make([]hst.Code, nWorkers)
	for i := range codes {
		codes[i] = randCode(tree, src)
	}
	e := newTestEngine(t, tree, codes, 6)

	results := make([][]int, nGoroutines)
	var wg sync.WaitGroup
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := rng.New(uint64(g))
			if g%2 == 0 {
				batch := make([]hst.Code, tasksPer)
				for i := range batch {
					batch[i] = randCode(tree, s)
				}
				results[g], _ = e.AssignBatch(batch)
			} else {
				out := make([]int, 0, tasksPer)
				for i := 0; i < tasksPer; i++ {
					id, _, ok := e.Assign(randCode(tree, s))
					if !ok {
						id = engine.None
					}
					out = append(out, id)
				}
				results[g] = out
			}
		}(g)
	}
	wg.Wait()

	seen := map[int]bool{}
	assigned, rejected := 0, 0
	for _, rs := range results {
		for _, id := range rs {
			if id == engine.None {
				rejected++
				continue
			}
			if seen[id] {
				t.Fatalf("worker %d assigned twice", id)
			}
			seen[id] = true
			assigned++
		}
	}
	if assigned != nWorkers {
		t.Errorf("assigned %d workers, want all %d", assigned, nWorkers)
	}
	if assigned+rejected != nGoroutines*tasksPer {
		t.Errorf("assigned %d + rejected %d ≠ %d tasks", assigned, rejected, nGoroutines*tasksPer)
	}
	if e.Len() != 0 {
		t.Errorf("Len = %d after draining", e.Len())
	}
}
