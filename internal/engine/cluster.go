package engine

import (
	"fmt"

	"github.com/pombm/pombm/internal/hst"
)

// This file is the engine's export surface for a cluster coordinator
// (internal/cluster): the pieces of the single-process decision rules that
// must be recomposed across nodes without changing a single answer.
//
// The cross-node decomposition leans on the same property the in-process
// sharding does: every worker sharing a task's top branch lives in one
// shard, and a shard (plus, under sub-sharding, its whole sibling group)
// can be pinned to one node. A node can therefore resolve everything up to
// the root tier of the greedy rule locally (AssignSubtree), while the root
// tier — where every remaining worker is equidistant and only the global
// minimum id matters — reduces to a min-of-mins across nodes
// (MinAvailableID + PopMinID). The batch-optimal window decomposes the
// same way: each node mines its tasks' own-branch candidates and its
// shards' smallest-k pad lists (MineWindowCandidates), the coordinator
// merges and solves exactly the single-process matching, and commits are
// code-addressed unit consumptions (ConsumeUnit) because an arena ref
// means nothing across a process boundary.

// BatchWindowSize is the batch-optimal window length: batches longer than
// this split into consecutive windows, each solved as its own restricted
// matching. Exported so a cluster coordinator chunks exactly as the
// single-process policy does.
const BatchWindowSize = batchWindowSize

// TopKer is implemented by window-solving policies that mine a bounded
// per-task candidate pool; a coordinator replicating the window solve
// needs the same k.
type TopKer interface {
	TopK() int
}

// Layout is the engine's shard geometry for a (tree, shard count) pair:
// how codes map to shards, and how shards group into routable top-branch
// units. A coordinator uses it to place whole shard groups on nodes so
// that every decision below the root tier stays node-local.
type Layout struct {
	// Shards is the effective shard count after rounding (see New).
	Shards int
	// Degree and Depth echo the tree.
	Degree int
	Depth  int
	// Sub is the second-digit split factor (1 = plain top-branch sharding).
	Sub int
}

// LayoutFor returns the layout an engine built over tree with the given
// requested shard count would use.
func LayoutFor(tree *hst.Tree, shards int) Layout {
	S, d, sub, depth := layoutFor(tree, shards)
	return Layout{Shards: S, Degree: d, Depth: depth, Sub: sub}
}

// ShardIdx returns the shard owning a code, exactly as the engine routes.
func (l Layout) ShardIdx(code hst.Code) int {
	if l.Depth == 0 || l.Shards == 1 {
		return 0
	}
	if l.Sub > 1 {
		return int(code[0]) + l.Degree*(int(code[1])%l.Sub)
	}
	return int(code[0]) % l.Shards
}

// Groups returns the number of routable shard groups: the units that must
// stay whole on one node for AssignSubtree to be exact. Under sub-sharding
// a group is a top branch (the own shard plus its sibling sub-shards);
// under plain sharding each shard is its own group.
func (l Layout) Groups() int {
	if l.Depth == 0 || l.Shards == 1 {
		return 1
	}
	if l.Sub > 1 {
		return l.Degree
	}
	return l.Shards
}

// GroupOf returns the routable group a code belongs to.
func (l Layout) GroupOf(code hst.Code) int {
	if l.Depth == 0 || l.Shards == 1 {
		return 0
	}
	if l.Sub > 1 {
		return int(code[0])
	}
	return int(code[0]) % l.Shards
}

// GroupOfShard returns the routable group a shard index belongs to.
func (l Layout) GroupOfShard(s int) int {
	if l.Sub > 1 {
		return s % l.Degree
	}
	return s
}

// Layout returns the serving epoch's shard geometry.
func (e *Engine) Layout() Layout {
	st := e.state.Load()
	return Layout{Shards: len(st.shards), Degree: st.degree, Depth: st.depth, Sub: st.sub}
}

// AssignSubtreeEpoch runs the greedy rule's node-local tiers for a task
// code: the own-shard fast path, the locked own-shard re-check, and (under
// sub-sharding) the sibling sub-shard tier — everything except the root
// tier, which needs the global population and belongs to the coordinator.
// ok is false when no worker shares the task's top branch on this engine;
// the coordinator then resolves the root tier via MinAvailableID/PopMinID
// across all nodes. A non-zero epoch pins the pop: ErrStaleEpoch reports
// the engine has rotated past it.
func (e *Engine) AssignSubtreeEpoch(code hst.Code, epoch int64) (id, lcaLevel int, ok bool, err error) {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return None, 0, false, fmt.Errorf("%w (assign for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		if st.tree.CheckCode(code) != nil {
			return None, 0, false, nil
		}
		if st.depth == 0 {
			// A depth-0 tree has no branches to own: everything is the root
			// tier.
			return None, 0, false, nil
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue
		}
		id, lvl, popped := s.index.PopNearestWithin(code, st.ownLimit())
		if popped {
			s.assigns++
		} else {
			s.fallbacks++
		}
		s.mu.Unlock()
		if popped {
			return id, lvl, true, nil
		}
		id, lvl, popped, swapped := e.assignSubtreeAcross(st, code)
		if swapped {
			continue
		}
		return id, lvl, popped, nil
	}
}

// assignSubtreeAcross is assignAcross without the root tier: the locked
// own-shard re-check plus the sibling sub-shard tier. It follows the same
// all-shards-ascending lock order.
func (e *Engine) assignSubtreeAcross(st *epochState, code hst.Code) (id, lcaLevel int, ok, swapped bool) {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return None, 0, false, true
	}
	own := &st.shards[st.shardIdx(code)]
	if id, lvl, ok := own.index.PopNearestWithin(code, st.ownLimit()); ok {
		own.assigns++
		return id, lvl, true, false
	}
	if st.sub > 1 {
		maxInt := int(^uint(0) >> 1)
		d0 := int(code[0])
		best, bestID := -1, maxInt
		for t := 0; t < st.sub; t++ {
			si := d0 + st.degree*t
			if m, ok := st.shards[si].index.MinID(); ok && m < bestID {
				best, bestID = si, m
			}
		}
		if best >= 0 {
			id, _ := st.shards[best].index.PopMin()
			st.shards[best].assigns++
			return id, st.depth - 1, true, false
		}
	}
	return None, 0, false, false
}

// MinAvailableID returns the smallest available worker id on this engine,
// for the coordinator's root-tier min-of-mins. It reads under every shard
// lock so the answer is consistent with the epoch check.
func (e *Engine) MinAvailableID(epoch int64) (id int, ok bool, err error) {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return None, false, fmt.Errorf("%w (min-id for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		for i := range st.shards {
			st.shards[i].mu.Lock()
		}
		if e.state.Load() != st {
			for i := range st.shards {
				st.shards[i].mu.Unlock()
			}
			continue
		}
		maxInt := int(^uint(0) >> 1)
		id, ok = None, false
		bestID := maxInt
		for i := range st.shards {
			if m, has := st.shards[i].index.MinID(); has && m < bestID {
				bestID, ok = m, true
			}
		}
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
		if ok {
			id = bestID
		}
		return id, ok, nil
	}
}

// PopMinID pops the smallest available worker id on this engine — the
// root-tier commit, after MinAvailableID elected this node. The match
// level is the tree depth: every worker reachable only through the root
// tier is at the maximal LCA level.
func (e *Engine) PopMinID(epoch int64) (id, lcaLevel int, ok bool, err error) {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return None, 0, false, fmt.Errorf("%w (pop-min for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		for i := range st.shards {
			st.shards[i].mu.Lock()
		}
		if e.state.Load() != st {
			for i := range st.shards {
				st.shards[i].mu.Unlock()
			}
			continue
		}
		maxInt := int(^uint(0) >> 1)
		best, bestID := -1, maxInt
		for i := range st.shards {
			if m, has := st.shards[i].index.MinID(); has && m < bestID {
				best, bestID = i, m
			}
		}
		if best >= 0 {
			id, _ = st.shards[best].index.PopMin()
			st.shards[best].assigns++
			ok = true
		} else {
			id, ok = None, false
		}
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
		return id, st.depth, ok, nil
	}
}

// ConsumeUnit takes one capacity unit from the worker id at the given leaf
// code: the code-addressed commit for a candidate mined on this engine by
// MineWindowCandidates. It fails when the worker is no longer at that leaf
// with a unit to give — the coordinator undoes the window's earlier
// consumptions (AddCapacityEpoch) and re-mines.
func (e *Engine) ConsumeUnit(code hst.Code, id int, epoch int64) error {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return fmt.Errorf("%w (consume for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		if err := st.tree.CheckCode(code); err != nil {
			return err
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue
		}
		ok := s.index.Consume(code, id)
		if ok {
			s.assigns++
		}
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("engine: consume: worker %d not available at reported leaf", id)
		}
		return nil
	}
}

// WindowMine is one engine's contribution to a cluster batch window: the
// node-local pool size, each requested task's own-branch top-k candidates,
// and per-shard smallest-k pad lists. Everything is gathered under every
// shard lock in one hold, so the snapshot is internally consistent — and,
// with the coordinator serialising windows against every other mutation,
// consistent until the window's commits.
type WindowMine struct {
	// Epoch stamps the snapshot.
	Epoch int64
	// Pool is the number of available workers on this engine.
	Pool int
	// Own[i] holds the own-shard NearestK candidates for the i-th requested
	// code, exactly the region the single-process mineWindow would mine.
	Own [][]hst.Candidate
	// Pads[s] holds shard s's smallest-k list stamped at level depth (the
	// coordinator restamps sibling-tier pads), nil for empty shards. Shard
	// indices are global: every node shares the layout, so its local shard
	// s holds exactly the population of single-process shard s routed here.
	Pads [][]hst.Candidate
}

// MineWindowCandidates mines this engine's share of a batch window for the
// coordinator's scatter-gather solve. codes are the window tasks routed to
// this node (their own shards live here); k is the policy's per-task pool.
func (e *Engine) MineWindowCandidates(codes []hst.Code, k int, epoch int64) (*WindowMine, error) {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return nil, fmt.Errorf("%w (mine for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		for i := range st.shards {
			st.shards[i].mu.Lock()
		}
		if e.state.Load() != st {
			for i := range st.shards {
				st.shards[i].mu.Unlock()
			}
			continue
		}
		wm := &WindowMine{
			Epoch: st.epoch,
			Own:   make([][]hst.Candidate, len(codes)),
			Pads:  make([][]hst.Candidate, len(st.shards)),
		}
		for i := range st.shards {
			wm.Pool += st.shards[i].index.Len()
		}
		for i, code := range codes {
			if st.tree.CheckCode(code) != nil {
				continue
			}
			wm.Own[i] = st.shardOf(code).index.NearestK(code, k, nil)
		}
		for s := range st.shards {
			if st.shards[s].index.Len() > 0 {
				wm.Pads[s] = st.shards[s].index.SmallestK(k, st.depth, nil)
			}
		}
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
		return wm, nil
	}
}
