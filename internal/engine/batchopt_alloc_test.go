package engine_test

import (
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// TestBatchOptimalAllocsSteadyState pins the batch-optimal window path's
// allocation contract: once the pooled window scratch, the solver arena,
// and the shard freelists have reached their high-water marks, a window
// costs single-digit heap allocations per task (the budget the enginebench
// gate enforces is ≤ 9/task; steady state runs far below it — the result
// slices plus the per-shard mining goroutines, amortised over the window).
func TestBatchOptimalAllocsSteadyState(t *testing.T) {
	tree := buildTree(t, 16, 9)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.BatchOptimal(8)))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(33)
	const n = 1024
	codes := make([]hst.Code, n)
	for i := range codes {
		codes[i] = randCode(tree, src)
		if err := e.Insert(codes[i], i); err != nil {
			t.Fatal(err)
		}
	}
	const window = 256
	batch := make([]hst.Code, window)
	fill := func() {
		for i := range batch {
			batch[i] = codes[src.Intn(n)]
		}
	}
	runWindow := func() {
		ids, _ := e.AssignBatch(batch)
		for _, id := range ids {
			if id >= 0 {
				if err := e.Insert(codes[id], id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Warm the scratch pool, solver slabs, warm-potential map, and shard
	// freelists to their steady-state high-water marks.
	for i := 0; i < 40; i++ {
		fill()
		runWindow()
	}
	fill()
	perWindow := testing.AllocsPerRun(200, runWindow)
	if perTask := perWindow / window; perTask > 9 {
		t.Errorf("batch-optimal window allocates %.1f/window = %.2f/task, want ≤ 9/task", perWindow, perTask)
	}
	// The steady-state figure should in fact be far below the gate: a
	// regression to per-candidate or per-worker allocation shows up as
	// hundreds per window.
	if perWindow > 64 {
		t.Errorf("batch-optimal window allocates %.1f/window, want ≤ 64", perWindow)
	}
}
