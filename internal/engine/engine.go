// Package engine provides a sharded, concurrency-safe HST assignment
// engine: the online greedy of Alg. 4 behind an API that many goroutines
// can drive at once without funnelling through one global lock.
//
// The leaf-code trie is sharded by top-level HST branch: workers whose
// obfuscated codes start with digit d live in shard d mod S, each shard
// owning its own hst.LeafIndex and mutex. Because every leaf sharing at
// least the first digit with a query lives in the query's own shard, a
// task's tree-nearest worker at any LCA level below the root is found
// entirely inside that shard — disjoint traffic never contends. Only when
// the query's shard holds no worker in the query's top-level branch (the
// nearest worker sits at the maximal LCA level D, where every available
// worker is equidistant) does the engine take the slow path that locks all
// shards in order and picks the globally smallest id.
//
// Tie-breaking is everywhere towards the smallest worker id, which makes a
// sequentially driven Engine assignment-for-assignment identical to the
// paper-faithful scanning matcher (match.HSTGreedyScan). Under concurrent
// use the interleaving of requests is arbitrary — exactly the freedom the
// online model grants — and every individual answer is still tree-nearest
// among the workers available at that instant.
//
// Sharding is pure server-side post-processing of already-obfuscated
// reports, so the privacy guarantee (Theorem 1) is untouched.
package engine

import (
	"errors"
	"sync"

	"github.com/pombm/pombm/internal/hst"
)

// None is returned by Assign and AssignBatch when no worker is available.
const None = -1

// DefaultShards is the shard count used when a caller passes 0: enough to
// spread top-level branches without making the cross-shard fallback scan
// long. New clamps it to the tree's degree.
const DefaultShards = 8

// Engine is a sharded concurrent assignment engine over one published HST.
// All methods are safe for concurrent use.
type Engine struct {
	tree   *hst.Tree
	depth  int
	shards []engineShard
}

type engineShard struct {
	mu    sync.Mutex
	index *hst.LeafIndex
}

// New returns an engine for the published tree with the given shard count.
// Shards ≤ 0 selects DefaultShards; the count is clamped to the tree's
// degree (more shards than top-level branches cannot help) and to 1 for
// trees of depth 0.
func New(tree *hst.Tree, shards int) (*Engine, error) {
	if tree == nil {
		return nil, errors.New("engine: nil tree")
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	if d := tree.Degree(); shards > d && d > 0 {
		shards = d
	}
	if tree.Depth() == 0 {
		shards = 1
	}
	e := &Engine{
		tree:   tree,
		depth:  tree.Depth(),
		shards: make([]engineShard, shards),
	}
	for i := range e.shards {
		e.shards[i].index = hst.NewLeafIndexDegree(e.depth, tree.Degree())
	}
	return e, nil
}

// Tree returns the published HST the engine serves.
func (e *Engine) Tree() *hst.Tree { return e.tree }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

func (e *Engine) shardOf(code hst.Code) *engineShard {
	if e.depth == 0 || len(e.shards) == 1 {
		return &e.shards[0]
	}
	return &e.shards[int(code[0])%len(e.shards)]
}

// Insert registers an available worker id at its obfuscated leaf code.
func (e *Engine) Insert(code hst.Code, id int) error {
	if err := e.tree.CheckCode(code); err != nil {
		return err
	}
	s := e.shardOf(code)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.Insert(code, id)
}

// Remove withdraws a worker previously inserted at the given code. It
// reports whether the worker was still available.
func (e *Engine) Remove(code hst.Code, id int) bool {
	if e.tree.CheckCode(code) != nil {
		return false
	}
	s := e.shardOf(code)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.Remove(code, id)
}

// Len returns the number of available workers.
func (e *Engine) Len() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		n += s.index.Len()
		s.mu.Unlock()
	}
	return n
}

// Occupancy returns the number of available workers per shard, for
// monitoring and load inspection.
func (e *Engine) Occupancy() []int {
	occ := make([]int, len(e.shards))
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		occ[i] = s.index.Len()
		s.mu.Unlock()
	}
	return occ
}

// Assign atomically finds, removes, and returns the tree-nearest available
// worker for a task's obfuscated leaf code, together with the LCA level of
// the match. ok is false when the code is malformed or no worker is
// available.
func (e *Engine) Assign(code hst.Code) (id, lcaLevel int, ok bool) {
	if e.tree.CheckCode(code) != nil {
		return None, 0, false
	}
	return e.assign(code)
}

func (e *Engine) assign(code hst.Code) (id, lcaLevel int, ok bool) {
	if e.depth > 0 {
		s := e.shardOf(code)
		s.mu.Lock()
		id, lvl, ok := s.index.PopNearestWithin(code, e.depth-1)
		s.mu.Unlock()
		if ok {
			return id, lvl, true
		}
	}
	return e.assignAcross(code)
}

// assignAcross is the slow path: the query's own shard holds no worker
// below the root LCA, so every available worker (in any shard) is at the
// maximal level and the globally smallest id wins. All shard locks are
// taken in index order — the single lock order in the package, so the fast
// path (one shard) and slow path (all shards, ascending) cannot deadlock.
func (e *Engine) assignAcross(code hst.Code) (id, lcaLevel int, ok bool) {
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
	defer func() {
		for i := range e.shards {
			e.shards[i].mu.Unlock()
		}
	}()
	// The own shard may have gained a closer worker since the fast path
	// gave up; re-check it now that the state is frozen.
	if e.depth > 0 {
		if id, lvl, ok := e.shardOf(code).index.PopNearestWithin(code, e.depth-1); ok {
			return id, lvl, true
		}
	}
	best := -1
	bestID := int(^uint(0) >> 1) // max int
	for i := range e.shards {
		if m, ok := e.shards[i].index.MinID(); ok && m < bestID {
			best, bestID = i, m
		}
	}
	if best < 0 {
		return None, 0, false
	}
	id, _ = e.shards[best].index.PopMin()
	return id, e.depth, true
}

// AssignBatch assigns a batch of task codes in order, amortising shard
// locking across runs of tasks that hit the same shard. The results hold
// one worker id (or None) per task together with the LCA level of each
// match (0 for unassigned tasks), so batch callers can keep the same
// match-quality statistics as the one-by-one path. The outcome is exactly
// the outcome of calling Assign sequentially on each code.
func (e *Engine) AssignBatch(codes []hst.Code) (ids, lcaLevels []int) {
	ids = make([]int, len(codes))
	lcaLevels = make([]int, len(codes))
	var held *engineShard
	release := func() {
		if held != nil {
			held.mu.Unlock()
			held = nil
		}
	}
	defer release()
	for i, code := range codes {
		if e.tree.CheckCode(code) != nil {
			ids[i] = None
			continue
		}
		if e.depth > 0 {
			s := e.shardOf(code)
			if s != held {
				release()
				s.mu.Lock()
				held = s
			}
			if id, lvl, ok := held.index.PopNearestWithin(code, e.depth-1); ok {
				ids[i], lcaLevels[i] = id, lvl
				continue
			}
		}
		// Fall back without holding any shard lock.
		release()
		if id, lvl, ok := e.assignAcross(code); ok {
			ids[i], lcaLevels[i] = id, lvl
		} else {
			ids[i] = None
		}
	}
	return ids, lcaLevels
}
