// Package engine provides a sharded, concurrency-safe HST assignment
// engine: the online greedy of Alg. 4 behind an API that many goroutines
// can drive at once without funnelling through one global lock.
//
// The leaf-code trie is sharded by top-level HST branch: workers whose
// obfuscated codes start with digit d live in shard d mod S, each shard
// owning its own hst.LeafIndex and mutex. Because every leaf sharing at
// least the first digit with a query lives in the query's own shard, a
// task's tree-nearest worker at any LCA level below the root is found
// entirely inside that shard — disjoint traffic never contends. Only when
// the query's shard holds no worker in the query's top-level branch (the
// nearest worker sits at the maximal LCA level D, where every available
// worker is equidistant) does the engine take the slow path that locks all
// shards in order and picks the globally smallest id.
//
// Tie-breaking is everywhere towards the smallest worker id, which makes a
// sequentially driven Engine assignment-for-assignment identical to the
// paper-faithful scanning matcher (match.HSTGreedyScan). Under concurrent
// use the interleaving of requests is arbitrary — exactly the freedom the
// online model grants — and every individual answer is still tree-nearest
// among the workers available at that instant.
//
// # Epochs
//
// A long-lived deployment periodically republishes the tree and re-noises
// the live population (sequential composition spends budget on every fresh
// report). The engine supports this as an atomic epoch swap: everything
// that must change together — the tree, its shard set, and the epoch id
// stamping them — lives in one immutable epochState behind an atomic
// pointer. SwapEpoch builds the next state fully populated off to the
// side while the current epoch keeps serving, then acquires every old
// shard lock and publishes the new pointer, so each operation lands
// entirely in one epoch or the other, never straddling both. Mutating
// operations re-check the pointer after locking their shard and retry on
// the new state when a swap won; an Assign that popped from the old state
// just before the swap returns a stamp from the old epoch, which the
// serving layer detects (the worker's slot was superseded) and retries —
// the same staleness rule that governs withdraw races.
//
// Sharding and epoch swapping are pure server-side post-processing of
// already-obfuscated reports, so the privacy guarantee (Theorem 1) is
// untouched.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/pombm/pombm/internal/hst"
)

// None is returned by Assign and AssignBatch when no worker is available.
const None = -1

// FirstEpoch is the epoch id a freshly constructed engine serves.
const FirstEpoch = 1

// ErrStaleEpoch is returned by epoch-pinned mutations when the engine has
// rotated past the caller's epoch: the caller's code was obfuscated under
// a tree that is no longer being served.
var ErrStaleEpoch = errors.New("engine: epoch rotated")

// DefaultShards is the shard count used when a caller passes 0: enough to
// spread top-level branches without making the cross-shard fallback scan
// long. New clamps it to the tree's degree.
const DefaultShards = 8

// Engine is a sharded concurrent assignment engine over one published HST
// per epoch. All methods are safe for concurrent use.
//
// The assignment decision itself is pluggable: a Policy owns the rule that
// pairs each task with a worker (see policy.go). The default Greedy policy
// is the paper's rule exactly; capacity-aware policies let one worker slot
// carry several capacity units, and the batch-optimal policy serves whole
// windows through a restricted min-cost matching.
type Engine struct {
	// state holds everything that swaps atomically at an epoch rotation.
	// Reads are lock-free; mutators validate the pointer again under their
	// shard lock (see op comments) so no operation ever lands in a state
	// that has been swapped out.
	state atomic.Pointer[epochState]
	// swapMu serialises SwapEpoch calls only; serving ops never take it.
	swapMu sync.Mutex

	// policy and defaultCap are fixed at construction: the assignment rule
	// and the capacity an Insert without an explicit capacity receives.
	policy     Policy
	defaultCap int
	// windows counts the batch windows served through a window-solving
	// policy (monitoring only; greedy batch serving does not count).
	windows atomic.Int64
}

// epochState is one epoch's immutable identity (id, tree) plus its mutable
// shard set. It is never mutated after being swapped out.
type epochState struct {
	epoch  int64
	tree   *hst.Tree
	depth  int
	shards []engineShard
}

type engineShard struct {
	mu    sync.Mutex
	index *hst.LeafIndex
}

// newEpochState builds a shard set for the tree, clamping the shard count
// exactly as New documents.
func newEpochState(epoch int64, tree *hst.Tree, shards int) *epochState {
	if shards <= 0 {
		shards = DefaultShards
	}
	if d := tree.Degree(); shards > d && d > 0 {
		shards = d
	}
	if tree.Depth() == 0 {
		shards = 1
	}
	st := &epochState{
		epoch:  epoch,
		tree:   tree,
		depth:  tree.Depth(),
		shards: make([]engineShard, shards),
	}
	for i := range st.shards {
		st.shards[i].index = hst.NewLeafIndexDegree(st.depth, tree.Degree())
	}
	return st
}

// Option customises engine construction beyond the tree and shard count.
type Option func(*engineConfig)

type engineConfig struct {
	policy     Policy
	defaultCap int
}

// WithPolicy selects the assignment policy (nil keeps the default Greedy).
func WithPolicy(p Policy) Option {
	return func(c *engineConfig) { c.policy = p }
}

// WithDefaultCapacity sets the capacity an Insert without an explicit
// capacity receives (default 1). Values above 1 require a capacity-aware
// policy.
func WithDefaultCapacity(n int) Option {
	return func(c *engineConfig) { c.defaultCap = n }
}

// New returns an engine for the published tree with the given shard count,
// serving FirstEpoch under the Greedy policy. Shards ≤ 0 selects
// DefaultShards; the count is clamped to the tree's degree (more shards
// than top-level branches cannot help) and to 1 for trees of depth 0.
func New(tree *hst.Tree, shards int) (*Engine, error) {
	return NewWithOptions(tree, shards)
}

// NewWithOptions is New with a policy and capacity configuration.
func NewWithOptions(tree *hst.Tree, shards int, opts ...Option) (*Engine, error) {
	if tree == nil {
		return nil, errors.New("engine: nil tree")
	}
	cfg := engineConfig{defaultCap: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.policy == nil {
		cfg.policy = Greedy()
	}
	if cfg.defaultCap < 1 {
		return nil, fmt.Errorf("engine: default capacity %d must be positive", cfg.defaultCap)
	}
	if cfg.defaultCap > 1 && !cfg.policy.CapacityAware() {
		return nil, fmt.Errorf("engine: default capacity %d needs a capacity-aware policy, have %s",
			cfg.defaultCap, cfg.policy.Name())
	}
	e := &Engine{policy: cfg.policy, defaultCap: cfg.defaultCap}
	e.state.Store(newEpochState(FirstEpoch, tree, shards))
	return e, nil
}

// Tree returns the published HST of the epoch the engine currently serves.
func (e *Engine) Tree() *hst.Tree { return e.state.Load().tree }

// Shards returns the current shard count.
func (e *Engine) Shards() int { return len(e.state.Load().shards) }

// Epoch returns the id of the epoch currently being served.
func (e *Engine) Epoch() int64 { return e.state.Load().epoch }

// Policy returns the engine's assignment policy.
func (e *Engine) Policy() Policy { return e.policy }

// DefaultCapacity returns the capacity an Insert without an explicit
// capacity receives.
func (e *Engine) DefaultCapacity() int { return e.defaultCap }

// Windows returns the number of batch windows served through a
// window-solving policy.
func (e *Engine) Windows() int64 { return e.windows.Load() }

// effCap resolves an insert's effective capacity: non-positive selects the
// engine default, and any value is clamped to 1 unless the policy is
// capacity-aware — the greedy contract is that every slot serves one task.
func (e *Engine) effCap(capacity int) int {
	if !e.policy.CapacityAware() {
		return 1
	}
	if capacity <= 0 {
		return e.defaultCap
	}
	return capacity
}

func (st *epochState) shardIdx(code hst.Code) int {
	if st.depth == 0 || len(st.shards) == 1 {
		return 0
	}
	return int(code[0]) % len(st.shards)
}

func (st *epochState) shardOf(code hst.Code) *engineShard {
	return &st.shards[st.shardIdx(code)]
}

// EpochInsert seeds one worker of a new epoch's population for SwapEpoch.
// Cap is the worker's remaining capacity; ≤ 0 selects the engine default
// (and, like every insert, it is clamped to 1 under a non-capacity-aware
// policy), so a capacitated worker carries its unconsumed units across a
// rotation.
type EpochInsert struct {
	Code hst.Code
	ID   int
	Cap  int
}

// SwapEpoch atomically replaces the serving state: a fresh shard set over
// tree, pre-populated with inserts (the re-obfuscated population) and
// stamped with the given epoch id, which must exceed the current one.
// The new state is built entirely off to the side — the current epoch
// keeps serving throughout — and published with one pointer store while
// every old shard lock is held, so no operation ever straddles epochs.
// Shards ≤ 0 keeps the current shard count (re-clamped to the new tree).
//
// Workers of the old epoch that are not in inserts are dropped: their old
// codes are meaningless under the new tree, and it is the rotation
// controller's job to have re-obfuscated (or parked) them.
func (e *Engine) SwapEpoch(epoch int64, tree *hst.Tree, shards int, inserts []EpochInsert) error {
	if tree == nil {
		return errors.New("engine: nil tree")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	old := e.state.Load()
	if epoch <= old.epoch {
		return fmt.Errorf("engine: swap to epoch %d, already serving %d", epoch, old.epoch)
	}
	if shards <= 0 {
		shards = len(old.shards)
	}
	st := newEpochState(epoch, tree, shards)
	for _, in := range inserts {
		if err := tree.CheckCode(in.Code); err != nil {
			return fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
		}
		if err := st.shardOf(in.Code).index.InsertCap(in.Code, in.ID, e.effCap(in.Cap)); err != nil {
			return fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
		}
	}
	// Holding every old shard lock while storing the pointer guarantees
	// that each in-flight mutator either completed on the old state before
	// the swap or will observe the new pointer when it re-checks under its
	// shard lock and retry there.
	for i := range old.shards {
		old.shards[i].mu.Lock()
	}
	e.state.Store(st)
	for i := range old.shards {
		old.shards[i].mu.Unlock()
	}
	return nil
}

// Insert registers an available worker id at its obfuscated leaf code in
// the current epoch, with the engine's default capacity.
func (e *Engine) Insert(code hst.Code, id int) error {
	return e.InsertCapEpoch(code, id, 0, 0)
}

// InsertEpoch is Insert pinned to an epoch: when epoch is non-zero and the
// engine has rotated past it, the insert is refused with ErrStaleEpoch
// instead of landing a stale-tree code in the new index.
func (e *Engine) InsertEpoch(code hst.Code, id int, epoch int64) error {
	return e.InsertCapEpoch(code, id, 0, epoch)
}

// InsertCapEpoch is InsertEpoch with an explicit per-worker capacity:
// the slot serves that many tasks before leaving the pool. Capacity ≤ 0
// selects the engine default; any capacity is clamped to 1 unless the
// engine's policy is capacity-aware.
func (e *Engine) InsertCapEpoch(code hst.Code, id, capacity int, epoch int64) error {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return fmt.Errorf("%w (insert for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		if err := st.tree.CheckCode(code); err != nil {
			return err
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue // swapped while waiting for the lock; retry on the new state
		}
		err := s.index.InsertCap(code, id, e.effCap(capacity))
		s.mu.Unlock()
		return err
	}
}

// AddCapacity returns one capacity unit to the worker id at the given code
// in the current epoch: the inverse of a single pop. A slot still in the
// pool gains a unit in place; a fully consumed (hence removed) slot is
// re-inserted with one unit. The serving layer uses it to undo stale pops
// and to return a capacitated worker's unit when a task completes.
func (e *Engine) AddCapacity(code hst.Code, id int) error {
	return e.AddCapacityEpoch(code, id, 0)
}

// AddCapacityEpoch is AddCapacity pinned to an epoch (0 accepts whatever is
// being served).
func (e *Engine) AddCapacityEpoch(code hst.Code, id int, epoch int64) error {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return fmt.Errorf("%w (capacity return for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		if err := st.tree.CheckCode(code); err != nil {
			return err
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue
		}
		var err error
		if !s.index.AddCap(code, id, 1) {
			err = s.index.InsertCap(code, id, 1)
		}
		s.mu.Unlock()
		return err
	}
}

// Remove withdraws a worker previously inserted at the given code. It
// reports whether the worker was still available in the current epoch.
func (e *Engine) Remove(code hst.Code, id int) bool {
	_, ok := e.RemoveUnits(code, id)
	return ok
}

// RemoveUnits is Remove reporting the capacity units the worker still had
// pooled. Callers relocating a live worker (a Release re-reporting a fresh
// leaf) must size the re-insert from this ground truth, not from their own
// accounting: a concurrent Assign may have consumed a unit whose pop has
// not been recorded yet, and re-inserting it would let the worker serve
// beyond its capacity.
func (e *Engine) RemoveUnits(code hst.Code, id int) (units int, ok bool) {
	for {
		st := e.state.Load()
		if st.tree.CheckCode(code) != nil {
			return 0, false
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue
		}
		units, ok = s.index.RemoveUnits(code, id)
		s.mu.Unlock()
		return units, ok
	}
}

// Len returns the number of available workers in the current epoch.
func (e *Engine) Len() int {
	st := e.state.Load()
	n := 0
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.index.Len()
		s.mu.Unlock()
	}
	return n
}

// CapacityUnits returns the total remaining capacity across available
// workers in the current epoch. Equal to Len for a capacity-1 population.
func (e *Engine) CapacityUnits() int {
	st := e.state.Load()
	n := 0
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.index.Units()
		s.mu.Unlock()
	}
	return n
}

// Occupancy returns the number of available workers per shard, for
// monitoring and load inspection.
func (e *Engine) Occupancy() []int {
	st := e.state.Load()
	occ := make([]int, len(st.shards))
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		occ[i] = s.index.Len()
		s.mu.Unlock()
	}
	return occ
}

// Walk visits every available (code, id) pair of the current epoch, one
// shard at a time. The view is consistent only when writers are quiesced;
// it exists for snapshots and monitoring, not for serving decisions.
func (e *Engine) Walk(fn func(code hst.Code, id int)) {
	e.WalkCap(func(code hst.Code, id, _ int) { fn(code, id) })
}

// WalkCap is Walk carrying each worker's remaining capacity, so snapshots
// of capacitated populations restore with their unconsumed units intact.
func (e *Engine) WalkCap(fn func(code hst.Code, id, capacity int)) {
	st := e.state.Load()
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		s.index.WalkCap(fn)
		s.mu.Unlock()
	}
}

// Assign atomically finds, consumes, and returns an available worker for a
// task's obfuscated leaf code according to the engine's policy, together
// with the LCA level of the match. Under the default Greedy policy this is
// the tree-nearest available worker. ok is false when the code is malformed
// or no worker is available.
func (e *Engine) Assign(code hst.Code) (id, lcaLevel int, ok bool) {
	id, lcaLevel, _, ok = e.AssignEpoch(code)
	return id, lcaLevel, ok
}

// AssignEpoch is Assign stamped with the epoch that served the pop. A
// caller that tagged the task's code with the epoch it was obfuscated
// under compares the stamp and treats a mismatch as stale — the engine
// rotated between the task's obfuscation and its assignment.
func (e *Engine) AssignEpoch(code hst.Code) (id, lcaLevel int, epoch int64, ok bool) {
	return e.policy.assignOne(e, code)
}

// greedyAssignOne is the Greedy policy's one-task path: pop the
// tree-nearest available worker, fast-pathing the task's own shard.
func (e *Engine) greedyAssignOne(code hst.Code) (id, lcaLevel int, epoch int64, ok bool) {
	for {
		st := e.state.Load()
		if st.tree.CheckCode(code) != nil {
			return None, 0, st.epoch, false
		}
		if st.depth > 0 {
			s := st.shardOf(code)
			s.mu.Lock()
			if e.state.Load() != st {
				s.mu.Unlock()
				continue
			}
			id, lvl, ok := s.index.PopNearestWithin(code, st.depth-1)
			s.mu.Unlock()
			if ok {
				return id, lvl, st.epoch, true
			}
		}
		id, lvl, ok, swapped := e.assignAcross(st, code)
		if swapped {
			continue
		}
		return id, lvl, st.epoch, ok
	}
}

// assignAcross is the slow path: the query's own shard holds no worker
// below the root LCA, so every available worker (in any shard) is at the
// maximal level and the globally smallest id wins. All shard locks are
// taken in index order — the single lock order in the package, so the fast
// path (one shard) and slow path (all shards, ascending) cannot deadlock.
// swapped reports that an epoch swap beat the lock acquisition and the
// caller must retry against the new state.
func (e *Engine) assignAcross(st *epochState, code hst.Code) (id, lcaLevel int, ok, swapped bool) {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return None, 0, false, true
	}
	// The own shard may have gained a closer worker since the fast path
	// gave up; re-check it now that the state is frozen.
	if st.depth > 0 {
		if id, lvl, ok := st.shardOf(code).index.PopNearestWithin(code, st.depth-1); ok {
			return id, lvl, true, false
		}
	}
	best := -1
	bestID := int(^uint(0) >> 1) // max int
	for i := range st.shards {
		if m, ok := st.shards[i].index.MinID(); ok && m < bestID {
			best, bestID = i, m
		}
	}
	if best < 0 {
		return None, 0, false, false
	}
	id, _ = st.shards[best].index.PopMin()
	return id, st.depth, true, false
}

// AssignBatch assigns a batch of task codes through the engine's policy.
// The results hold one worker id (or None) per task together with the LCA
// level of each match (0 for unassigned tasks), so batch callers can keep
// the same match-quality statistics as the one-by-one path. Under the
// greedy policies the outcome is exactly the outcome of calling Assign
// sequentially on each code, with shard locking amortised across runs of
// tasks that hit the same shard; a window-solving policy (batch-optimal)
// instead serves the whole batch as one restricted min-cost matching.
func (e *Engine) AssignBatch(codes []hst.Code) (ids, lcaLevels []int) {
	return e.policy.assignWindow(e, codes)
}

// greedyAssignWindow is the greedy policies' batch path: sequential pops
// with shard locks amortised across same-shard runs.
func (e *Engine) greedyAssignWindow(codes []hst.Code) (ids, lcaLevels []int) {
	ids = make([]int, len(codes))
	lcaLevels = make([]int, len(codes))
	var held *engineShard
	release := func() {
		if held != nil {
			held.mu.Unlock()
			held = nil
		}
	}
	defer release()
	for i, code := range codes {
	retry:
		st := e.state.Load()
		if st.tree.CheckCode(code) != nil {
			ids[i] = None
			continue
		}
		if st.depth > 0 {
			s := st.shardOf(code)
			if s != held {
				release()
				s.mu.Lock()
				held = s
			}
			if e.state.Load() != st {
				// An epoch swap landed between loading the state and taking
				// (or reusing) the shard lock: the held shard belongs to the
				// old epoch. Drop it and redo this task on the new state.
				release()
				goto retry
			}
			if id, lvl, ok := held.index.PopNearestWithin(code, st.depth-1); ok {
				ids[i], lcaLevels[i] = id, lvl
				continue
			}
		}
		// Fall back without holding any shard lock.
		release()
		id, lvl, ok, swapped := e.assignAcross(st, code)
		if swapped {
			goto retry
		}
		if ok {
			ids[i], lcaLevels[i] = id, lvl
		} else {
			ids[i] = None
		}
	}
	return ids, lcaLevels
}
