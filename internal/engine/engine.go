// Package engine provides a sharded, concurrency-safe HST assignment
// engine: the online greedy of Alg. 4 behind an API that many goroutines
// can drive at once without funnelling through one global lock.
//
// The leaf-code trie is sharded by top-level HST branch: workers whose
// obfuscated codes start with digit d live in shard d mod S, each shard
// owning its own hst.LeafIndex and mutex. Because every leaf sharing at
// least the first digit with a query lives in the query's own shard, a
// task's tree-nearest worker at any LCA level below the root is found
// entirely inside that shard — disjoint traffic never contends. Only when
// the query's shard holds no worker in the query's top-level branch (the
// nearest worker sits at the maximal LCA level D, where every available
// worker is equidistant) does the engine take the slow path that locks all
// shards in order and picks the globally smallest id.
//
// Tie-breaking is everywhere towards the smallest worker id, which makes a
// sequentially driven Engine assignment-for-assignment identical to the
// paper-faithful scanning matcher (match.HSTGreedyScan). Under concurrent
// use the interleaving of requests is arbitrary — exactly the freedom the
// online model grants — and every individual answer is still tree-nearest
// among the workers available at that instant.
//
// # Epochs
//
// A long-lived deployment periodically republishes the tree and re-noises
// the live population (sequential composition spends budget on every fresh
// report). The engine supports this as an atomic epoch swap: everything
// that must change together — the tree, its shard set, and the epoch id
// stamping them — lives in one immutable epochState behind an atomic
// pointer. SwapEpoch builds the next state fully populated off to the
// side while the current epoch keeps serving, then acquires every old
// shard lock and publishes the new pointer, so each operation lands
// entirely in one epoch or the other, never straddling both. Mutating
// operations re-check the pointer after locking their shard and retry on
// the new state when a swap won; an Assign that popped from the old state
// just before the swap returns a stamp from the old epoch, which the
// serving layer detects (the worker's slot was superseded) and retries —
// the same staleness rule that governs withdraw races.
//
// Sharding and epoch swapping are pure server-side post-processing of
// already-obfuscated reports, so the privacy guarantee (Theorem 1) is
// untouched.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/pombm/pombm/internal/hst"
)

// None is returned by Assign and AssignBatch when no worker is available.
const None = -1

// FirstEpoch is the epoch id a freshly constructed engine serves.
const FirstEpoch = 1

// ErrStaleEpoch is returned by epoch-pinned mutations when the engine has
// rotated past the caller's epoch: the caller's code was obfuscated under
// a tree that is no longer being served.
var ErrStaleEpoch = errors.New("engine: epoch rotated")

// DefaultShards is the shard count used when a caller passes 0: enough to
// spread top-level branches without making the cross-shard fallback scan
// long. New rounds it to the sharding scheme's grid (see newEpochState).
const DefaultShards = 8

// cacheLine is the padding quantum for per-shard state: one shard must
// never share a line with its neighbour, or the shard locks ping-pong the
// line between cores and "independent" shards contend anyway.
const cacheLine = 64

// Engine is a sharded concurrent assignment engine over one published HST
// per epoch. All methods are safe for concurrent use.
//
// The assignment decision itself is pluggable: a Policy owns the rule that
// pairs each task with a worker (see policy.go). The default Greedy policy
// is the paper's rule exactly; capacity-aware policies let one worker slot
// carry several capacity units, and the batch-optimal policy serves whole
// windows through a restricted min-cost matching.
type Engine struct {
	// state holds everything that swaps atomically at an epoch rotation.
	// Reads are lock-free; mutators validate the pointer again under their
	// shard lock (see op comments) so no operation ever lands in a state
	// that has been swapped out.
	state atomic.Pointer[epochState]
	// swapMu serialises SwapEpoch calls only; serving ops never take it.
	swapMu sync.Mutex

	// policy and defaultCap are fixed at construction: the assignment rule
	// and the capacity an Insert without an explicit capacity receives.
	policy     Policy
	defaultCap int
	// windows counts the batch windows served through a window-solving
	// policy (monitoring only; greedy batch serving does not count). It is
	// padded onto its own cache line: the state pointer above is read on
	// every operation by every goroutine, and a counter bump sharing that
	// line would invalidate it fleet-wide once per window.
	windows paddedCounter
}

// paddedCounter is an atomic counter alone on its cache line, so bumping
// it cannot steal the line under a hot read-mostly neighbour.
type paddedCounter struct {
	_ [cacheLine]byte
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// epochState is one epoch's immutable identity (id, tree) plus its mutable
// shard set. It is never mutated after being swapped out.
type epochState struct {
	epoch  int64
	tree   *hst.Tree
	depth  int
	degree int
	// sub is the second-digit split factor: shard (d0, t) holds the workers
	// whose codes start with digit d0 and whose second digit is ≡ t mod sub,
	// at index d0 + degree·t. sub == 1 is plain top-branch sharding.
	sub    int
	shards []engineShard
}

// shardData is one shard's payload: its lock, its trie, and monitoring
// counters that are only ever touched under mu (plain fields, not atomics,
// so bumping them costs nothing beyond the lock already held).
type shardData struct {
	mu    sync.Mutex
	index *hst.LeafIndex

	// assigns counts pops served from this shard's trie; fallbacks counts
	// tasks homed here whose own-shard probe came up empty and went to the
	// cross-shard path. A high fallback share on one shard is the load-
	// imbalance signal that says re-shard (or re-noise) that branch.
	assigns   int64
	fallbacks int64
}

// engineShard pads shardData to a cache-line multiple. The bare struct is
// well under one line, so an unpadded []engineShard packs several shard
// locks per 64-byte line and "independent" shards false-share: every lock
// acquisition bounces its neighbours' line. The pad is computed, not
// hand-counted, so a field added to shardData cannot silently misalign the
// array.
type engineShard struct {
	shardData
	_ [(cacheLine - unsafe.Sizeof(shardData{})%cacheLine) % cacheLine]byte
}

// layoutFor rounds a requested shard count to the sharding grid the tree
// supports, exactly as New documents. It is the single source of the
// scheme's geometry, shared by newEpochState and the exported Layout so a
// cluster coordinator can mirror shard placement without building a state.
func layoutFor(tree *hst.Tree, shards int) (S, degree, sub, depth int) {
	if shards <= 0 {
		shards = DefaultShards
	}
	d := tree.Degree()
	depth = tree.Depth()
	if depth == 0 || d == 0 {
		shards = 1
	}
	sub = 1
	if d > 0 && depth > 0 && shards > d {
		// More shards requested than top branches: split every top branch
		// into sub second-digit groups (needs two digits to exist). sub is
		// capped at the degree — beyond that a third digit would be needed —
		// and the count rounds down to the full degree×sub grid so every
		// (first digit, second-digit group) pair owns exactly one shard.
		if depth >= 2 {
			sub = shards / d
			if sub > d {
				sub = d
			}
		}
		shards = d * sub
	}
	return shards, d, sub, depth
}

// newEpochState builds a shard set for the tree, rounding the shard count
// exactly as New documents.
func newEpochState(epoch int64, tree *hst.Tree, shards int) *epochState {
	shards, d, sub, depth := layoutFor(tree, shards)
	st := &epochState{
		epoch:  epoch,
		tree:   tree,
		depth:  depth,
		degree: d,
		sub:    sub,
		shards: make([]engineShard, shards),
	}
	for i := range st.shards {
		st.shards[i].index = hst.NewLeafIndexDegree(st.depth, tree.Degree())
	}
	return st
}

// ownLimit is the deepest LCA level a query's own shard can fully resolve:
// every worker within this level of any query lives in the query's shard.
// Plain top-branch sharding owns everything below the root; a sub-sharded
// state owns everything below the second level, because workers sharing
// only the first digit may sit in a sibling sub-shard.
func (st *epochState) ownLimit() int {
	if st.sub > 1 {
		return st.depth - 2
	}
	return st.depth - 1
}

// Option customises engine construction beyond the tree and shard count.
type Option func(*engineConfig)

type engineConfig struct {
	policy     Policy
	defaultCap int
}

// WithPolicy selects the assignment policy (nil keeps the default Greedy).
func WithPolicy(p Policy) Option {
	return func(c *engineConfig) { c.policy = p }
}

// WithDefaultCapacity sets the capacity an Insert without an explicit
// capacity receives (default 1). Values above 1 require a capacity-aware
// policy.
func WithDefaultCapacity(n int) Option {
	return func(c *engineConfig) { c.defaultCap = n }
}

// New returns an engine for the published tree with the given shard count,
// serving FirstEpoch under the Greedy policy. Shards ≤ 0 selects
// DefaultShards. Counts up to the tree's degree shard by top-level branch;
// a count beyond the degree splits hot top branches by their second digit
// (rounded down to a full degree×sub grid, capped at degree², and requiring
// depth ≥ 2), so shard count can exceed tree degree on deep trees. Trees of
// depth 0 always serve from a single shard.
func New(tree *hst.Tree, shards int) (*Engine, error) {
	return NewWithOptions(tree, shards)
}

// NewWithOptions is New with a policy and capacity configuration.
func NewWithOptions(tree *hst.Tree, shards int, opts ...Option) (*Engine, error) {
	if tree == nil {
		return nil, errors.New("engine: nil tree")
	}
	cfg := engineConfig{defaultCap: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.policy == nil {
		cfg.policy = Greedy()
	}
	if cfg.defaultCap < 1 {
		return nil, fmt.Errorf("engine: default capacity %d must be positive", cfg.defaultCap)
	}
	if cfg.defaultCap > 1 && !cfg.policy.CapacityAware() {
		return nil, fmt.Errorf("engine: default capacity %d needs a capacity-aware policy, have %s",
			cfg.defaultCap, cfg.policy.Name())
	}
	e := &Engine{policy: cfg.policy, defaultCap: cfg.defaultCap}
	e.state.Store(newEpochState(FirstEpoch, tree, shards))
	return e, nil
}

// Tree returns the published HST of the epoch the engine currently serves.
func (e *Engine) Tree() *hst.Tree { return e.state.Load().tree }

// Shards returns the current shard count.
func (e *Engine) Shards() int { return len(e.state.Load().shards) }

// Epoch returns the id of the epoch currently being served.
func (e *Engine) Epoch() int64 { return e.state.Load().epoch }

// Policy returns the engine's assignment policy.
func (e *Engine) Policy() Policy { return e.policy }

// DefaultCapacity returns the capacity an Insert without an explicit
// capacity receives.
func (e *Engine) DefaultCapacity() int { return e.defaultCap }

// Windows returns the number of batch windows served through a
// window-solving policy.
func (e *Engine) Windows() int64 { return e.windows.n.Load() }

// ShardStat is one shard's monitoring counters.
type ShardStat struct {
	// Assigns counts pops served from the shard's trie (fast path, batch,
	// and cross-shard resolutions that landed here).
	Assigns int64
	// Fallbacks counts tasks homed on this shard whose own-shard probe came
	// up empty and escalated to the cross-shard path.
	Fallbacks int64
}

// ShardStats returns per-shard assign/fallback counters for the current
// epoch, for monitoring and load inspection. Counters reset at an epoch
// swap (they live with the epoch's shard set).
func (e *Engine) ShardStats() []ShardStat {
	st := e.state.Load()
	out := make([]ShardStat, len(st.shards))
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		out[i] = ShardStat{Assigns: s.assigns, Fallbacks: s.fallbacks}
		s.mu.Unlock()
	}
	return out
}

// effCap resolves an insert's effective capacity: non-positive selects the
// engine default, and any value is clamped to 1 unless the policy is
// capacity-aware — the greedy contract is that every slot serves one task.
func (e *Engine) effCap(capacity int) int {
	if !e.policy.CapacityAware() {
		return 1
	}
	if capacity <= 0 {
		return e.defaultCap
	}
	return capacity
}

func (st *epochState) shardIdx(code hst.Code) int {
	if st.depth == 0 || len(st.shards) == 1 {
		return 0
	}
	if st.sub > 1 {
		return int(code[0]) + st.degree*(int(code[1])%st.sub)
	}
	return int(code[0]) % len(st.shards)
}

func (st *epochState) shardOf(code hst.Code) *engineShard {
	return &st.shards[st.shardIdx(code)]
}

// EpochInsert seeds one worker of a new epoch's population for SwapEpoch.
// Cap is the worker's remaining capacity; ≤ 0 selects the engine default
// (and, like every insert, it is clamped to 1 under a non-capacity-aware
// policy), so a capacitated worker carries its unconsumed units across a
// rotation.
type EpochInsert struct {
	Code hst.Code
	ID   int
	Cap  int
}

// SwapEpoch atomically replaces the serving state: a fresh shard set over
// tree, pre-populated with inserts (the re-obfuscated population) and
// stamped with the given epoch id, which must exceed the current one.
// The new state is built entirely off to the side — the current epoch
// keeps serving throughout — and published with one pointer store while
// every old shard lock is held, so no operation ever straddles epochs.
// Shards ≤ 0 keeps the current shard count (re-clamped to the new tree).
//
// Workers of the old epoch that are not in inserts are dropped: their old
// codes are meaningless under the new tree, and it is the rotation
// controller's job to have re-obfuscated (or parked) them.
func (e *Engine) SwapEpoch(epoch int64, tree *hst.Tree, shards int, inserts []EpochInsert) error {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	p, err := e.prepareSwapLocked(epoch, tree, shards, inserts)
	if err != nil {
		return err
	}
	return e.commitSwapLocked(p)
}

// PreparedSwap is a fully built next-epoch state staged by PrepareSwap,
// waiting for CommitSwap (or to be dropped, which aborts it — it holds no
// locks and the serving state does not reference it).
type PreparedSwap struct {
	st *epochState
}

// Epoch returns the staged state's epoch id.
func (p *PreparedSwap) Epoch() int64 { return p.st.epoch }

// PrepareSwap is the build half of SwapEpoch, split out so a cluster
// coordinator can drive rotation as a distributed two-phase commit: every
// node prepares its partition of the new population while the old epoch
// keeps serving, and only when all prepares succeed does the coordinator
// commit each. A prepare that fails (or is abandoned) leaves the serving
// state untouched. The epoch check here is advisory — CommitSwap re-checks
// under the swap lock — so a prepare staged before a competing swap simply
// fails at commit.
func (e *Engine) PrepareSwap(epoch int64, tree *hst.Tree, shards int, inserts []EpochInsert) (*PreparedSwap, error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.prepareSwapLocked(epoch, tree, shards, inserts)
}

// CommitSwap publishes a prepared state, atomically replacing the serving
// epoch exactly as SwapEpoch does.
func (e *Engine) CommitSwap(p *PreparedSwap) error {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.commitSwapLocked(p)
}

func (e *Engine) prepareSwapLocked(epoch int64, tree *hst.Tree, shards int, inserts []EpochInsert) (*PreparedSwap, error) {
	if tree == nil {
		return nil, errors.New("engine: nil tree")
	}
	old := e.state.Load()
	if epoch <= old.epoch {
		return nil, fmt.Errorf("engine: swap to epoch %d, already serving %d", epoch, old.epoch)
	}
	if shards <= 0 {
		shards = len(old.shards)
	}
	st := newEpochState(epoch, tree, shards)
	for _, in := range inserts {
		if err := tree.CheckCode(in.Code); err != nil {
			return nil, fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
		}
		if err := st.shardOf(in.Code).index.InsertCap(in.Code, in.ID, e.effCap(in.Cap)); err != nil {
			return nil, fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
		}
	}
	return &PreparedSwap{st: st}, nil
}

func (e *Engine) commitSwapLocked(p *PreparedSwap) error {
	old := e.state.Load()
	if p.st.epoch <= old.epoch {
		return fmt.Errorf("engine: swap to epoch %d, already serving %d", p.st.epoch, old.epoch)
	}
	// Holding every old shard lock while storing the pointer guarantees
	// that each in-flight mutator either completed on the old state before
	// the swap or will observe the new pointer when it re-checks under its
	// shard lock and retry there.
	for i := range old.shards {
		old.shards[i].mu.Lock()
	}
	e.state.Store(p.st)
	for i := range old.shards {
		old.shards[i].mu.Unlock()
	}
	return nil
}

// Insert registers an available worker id at its obfuscated leaf code in
// the current epoch, with the engine's default capacity.
func (e *Engine) Insert(code hst.Code, id int) error {
	return e.InsertCapEpoch(code, id, 0, 0)
}

// InsertEpoch is Insert pinned to an epoch: when epoch is non-zero and the
// engine has rotated past it, the insert is refused with ErrStaleEpoch
// instead of landing a stale-tree code in the new index.
func (e *Engine) InsertEpoch(code hst.Code, id int, epoch int64) error {
	return e.InsertCapEpoch(code, id, 0, epoch)
}

// InsertCapEpoch is InsertEpoch with an explicit per-worker capacity:
// the slot serves that many tasks before leaving the pool. Capacity ≤ 0
// selects the engine default; any capacity is clamped to 1 unless the
// engine's policy is capacity-aware.
func (e *Engine) InsertCapEpoch(code hst.Code, id, capacity int, epoch int64) error {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return fmt.Errorf("%w (insert for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		if err := st.tree.CheckCode(code); err != nil {
			return err
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue // swapped while waiting for the lock; retry on the new state
		}
		err := s.index.InsertCap(code, id, e.effCap(capacity))
		s.mu.Unlock()
		return err
	}
}

// AddCapacity returns one capacity unit to the worker id at the given code
// in the current epoch: the inverse of a single pop. A slot still in the
// pool gains a unit in place; a fully consumed (hence removed) slot is
// re-inserted with one unit. The serving layer uses it to undo stale pops
// and to return a capacitated worker's unit when a task completes.
func (e *Engine) AddCapacity(code hst.Code, id int) error {
	return e.AddCapacityEpoch(code, id, 0)
}

// AddCapacityEpoch is AddCapacity pinned to an epoch (0 accepts whatever is
// being served).
func (e *Engine) AddCapacityEpoch(code hst.Code, id int, epoch int64) error {
	for {
		st := e.state.Load()
		if epoch != 0 && st.epoch != epoch {
			return fmt.Errorf("%w (capacity return for epoch %d, serving %d)", ErrStaleEpoch, epoch, st.epoch)
		}
		if err := st.tree.CheckCode(code); err != nil {
			return err
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue
		}
		var err error
		if !s.index.AddCap(code, id, 1) {
			err = s.index.InsertCap(code, id, 1)
		}
		s.mu.Unlock()
		return err
	}
}

// Remove withdraws a worker previously inserted at the given code. It
// reports whether the worker was still available in the current epoch.
func (e *Engine) Remove(code hst.Code, id int) bool {
	_, ok := e.RemoveUnits(code, id)
	return ok
}

// RemoveUnits is Remove reporting the capacity units the worker still had
// pooled. Callers relocating a live worker (a Release re-reporting a fresh
// leaf) must size the re-insert from this ground truth, not from their own
// accounting: a concurrent Assign may have consumed a unit whose pop has
// not been recorded yet, and re-inserting it would let the worker serve
// beyond its capacity.
func (e *Engine) RemoveUnits(code hst.Code, id int) (units int, ok bool) {
	for {
		st := e.state.Load()
		if st.tree.CheckCode(code) != nil {
			return 0, false
		}
		s := st.shardOf(code)
		s.mu.Lock()
		if e.state.Load() != st {
			s.mu.Unlock()
			continue
		}
		units, ok = s.index.RemoveUnits(code, id)
		s.mu.Unlock()
		return units, ok
	}
}

// Len returns the number of available workers in the current epoch.
func (e *Engine) Len() int {
	st := e.state.Load()
	n := 0
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.index.Len()
		s.mu.Unlock()
	}
	return n
}

// CapacityUnits returns the total remaining capacity across available
// workers in the current epoch. Equal to Len for a capacity-1 population.
func (e *Engine) CapacityUnits() int {
	st := e.state.Load()
	n := 0
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.index.Units()
		s.mu.Unlock()
	}
	return n
}

// Occupancy returns the number of available workers per shard, for
// monitoring and load inspection.
func (e *Engine) Occupancy() []int {
	st := e.state.Load()
	occ := make([]int, len(st.shards))
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		occ[i] = s.index.Len()
		s.mu.Unlock()
	}
	return occ
}

// Walk visits every available (code, id) pair of the current epoch, one
// shard at a time. The view is consistent only when writers are quiesced;
// it exists for snapshots and monitoring, not for serving decisions.
func (e *Engine) Walk(fn func(code hst.Code, id int)) {
	e.WalkCap(func(code hst.Code, id, _ int) { fn(code, id) })
}

// WalkCap is Walk carrying each worker's remaining capacity, so snapshots
// of capacitated populations restore with their unconsumed units intact.
func (e *Engine) WalkCap(fn func(code hst.Code, id, capacity int)) {
	st := e.state.Load()
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		s.index.WalkCap(fn)
		s.mu.Unlock()
	}
}

// Assign atomically finds, consumes, and returns an available worker for a
// task's obfuscated leaf code according to the engine's policy, together
// with the LCA level of the match. Under the default Greedy policy this is
// the tree-nearest available worker. ok is false when the code is malformed
// or no worker is available.
func (e *Engine) Assign(code hst.Code) (id, lcaLevel int, ok bool) {
	id, lcaLevel, _, ok = e.AssignEpoch(code)
	return id, lcaLevel, ok
}

// AssignEpoch is Assign stamped with the epoch that served the pop. A
// caller that tagged the task's code with the epoch it was obfuscated
// under compares the stamp and treats a mismatch as stale — the engine
// rotated between the task's obfuscation and its assignment.
func (e *Engine) AssignEpoch(code hst.Code) (id, lcaLevel int, epoch int64, ok bool) {
	return e.policy.assignOne(e, code)
}

// greedyAssignOne is the Greedy policy's one-task path: pop the
// tree-nearest available worker, fast-pathing the task's own shard.
func (e *Engine) greedyAssignOne(code hst.Code) (id, lcaLevel int, epoch int64, ok bool) {
	for {
		st := e.state.Load()
		if st.tree.CheckCode(code) != nil {
			return None, 0, st.epoch, false
		}
		if st.depth > 0 {
			s := st.shardOf(code)
			s.mu.Lock()
			if e.state.Load() != st {
				s.mu.Unlock()
				continue
			}
			id, lvl, ok := s.index.PopNearestWithin(code, st.ownLimit())
			if ok {
				s.assigns++
			} else {
				s.fallbacks++
			}
			s.mu.Unlock()
			if ok {
				return id, lvl, st.epoch, true
			}
		}
		id, lvl, ok, swapped := e.assignAcross(st, code)
		if swapped {
			continue
		}
		return id, lvl, st.epoch, ok
	}
}

// assignAcross is the slow path: the query's own shard holds no worker
// within its ownLimit, so the nearest worker sits at a level the shard
// cannot resolve alone. All shard locks are taken in index order — the
// single lock order in the package, so the fast path (one shard) and slow
// path (all shards, ascending) cannot deadlock. swapped reports that an
// epoch swap beat the lock acquisition and the caller must retry against
// the new state.
//
// Under plain sharding there is one escalation tier: every worker outside
// the own shard's reach is at the maximal level and the globally smallest
// id wins. Under sub-sharding there are two: workers sharing the query's
// top digit live spread across the sub sibling sub-shards — all at level
// depth−1 exactly, since anything deeper would be in the own shard — and
// only when that whole group is empty does the root tier (level depth,
// global minimum id) decide.
func (e *Engine) assignAcross(st *epochState, code hst.Code) (id, lcaLevel int, ok, swapped bool) {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return None, 0, false, true
	}
	// The own shard may have gained a closer worker since the fast path
	// gave up; re-check it now that the state is frozen.
	if st.depth > 0 {
		own := &st.shards[st.shardIdx(code)]
		if id, lvl, ok := own.index.PopNearestWithin(code, st.ownLimit()); ok {
			own.assigns++
			return id, lvl, true, false
		}
	}
	maxInt := int(^uint(0) >> 1)
	if st.sub > 1 {
		// Top-digit tier: the sibling sub-shards of the query's top branch
		// hold exactly the workers whose codes start with the query's first
		// digit, every one of them at level depth−1 (a deeper match would
		// have been popped by the own-shard re-check above).
		d0 := int(code[0])
		best, bestID := -1, maxInt
		for t := 0; t < st.sub; t++ {
			si := d0 + st.degree*t
			if m, ok := st.shards[si].index.MinID(); ok && m < bestID {
				best, bestID = si, m
			}
		}
		if best >= 0 {
			id, _ := st.shards[best].index.PopMin()
			st.shards[best].assigns++
			return id, st.depth - 1, true, false
		}
	}
	best, bestID := -1, maxInt
	for i := range st.shards {
		if m, ok := st.shards[i].index.MinID(); ok && m < bestID {
			best, bestID = i, m
		}
	}
	if best < 0 {
		return None, 0, false, false
	}
	id, _ = st.shards[best].index.PopMin()
	st.shards[best].assigns++
	return id, st.depth, true, false
}

// AssignBatch assigns a batch of task codes through the engine's policy.
// The results hold one worker id (or None) per task together with the LCA
// level of each match (0 for unassigned tasks), so batch callers can keep
// the same match-quality statistics as the one-by-one path. Under the
// greedy policies the outcome is exactly the outcome of calling Assign
// sequentially on each code, with shard locking amortised across runs of
// tasks that hit the same shard; a window-solving policy (batch-optimal)
// instead serves the whole batch as one restricted min-cost matching.
func (e *Engine) AssignBatch(codes []hst.Code) (ids, lcaLevels []int) {
	return e.policy.assignWindow(e, codes)
}

// greedyAssignWindow is the greedy policies' batch path. Batches large
// enough to amortise grouping go through the shard-routed parallel path
// (batch.go), which serves each shard's tasks under one lock acquisition
// — on separate goroutines when cores allow — and resolves cross-shard
// fallbacks to the exact sequential outcome. Small batches (and engines
// with no routing structure) keep the sequential walk below, with shard
// locks amortised across same-shard runs. Both paths return bit-identical
// results when writers are quiesced.
func (e *Engine) greedyAssignWindow(codes []hst.Code) (ids, lcaLevels []int) {
	if len(codes) >= batchRouteThreshold {
		if st := e.state.Load(); len(st.shards) > 1 && st.depth > 0 {
			return e.routedAssignWindow(codes)
		}
	}
	ids = make([]int, len(codes))
	lcaLevels = make([]int, len(codes))
	var held *engineShard
	release := func() {
		if held != nil {
			held.mu.Unlock()
			held = nil
		}
	}
	defer release()
	for i, code := range codes {
	retry:
		st := e.state.Load()
		if st.tree.CheckCode(code) != nil {
			ids[i] = None
			continue
		}
		if st.depth > 0 {
			s := st.shardOf(code)
			if s != held {
				release()
				s.mu.Lock()
				held = s
			}
			if e.state.Load() != st {
				// An epoch swap landed between loading the state and taking
				// (or reusing) the shard lock: the held shard belongs to the
				// old epoch. Drop it and redo this task on the new state.
				release()
				goto retry
			}
			if id, lvl, ok := held.index.PopNearestWithin(code, st.ownLimit()); ok {
				held.assigns++
				ids[i], lcaLevels[i] = id, lvl
				continue
			}
			held.fallbacks++
		}
		// Fall back without holding any shard lock.
		release()
		id, lvl, ok, swapped := e.assignAcross(st, code)
		if swapped {
			goto retry
		}
		if ok {
			ids[i], lcaLevels[i] = id, lvl
		} else {
			ids[i] = None
		}
	}
	return ids, lcaLevels
}
