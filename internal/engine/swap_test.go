package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func buildTestTree(t *testing.T, seed uint64, cols int) *hst.Tree {
	t.Helper()
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200)), cols, cols)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSwapEpochBasics(t *testing.T) {
	tree1 := buildTestTree(t, 1, 8)
	tree2 := buildTestTree(t, 2, 8)
	eng, err := New(tree1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != FirstEpoch {
		t.Fatalf("fresh engine serves epoch %d", eng.Epoch())
	}
	src := rng.New(3)
	for id := 0; id < 50; id++ {
		if err := eng.Insert(randCode(tree1, src), id); err != nil {
			t.Fatal(err)
		}
	}

	// Swapping to a non-advancing epoch is refused.
	if err := eng.SwapEpoch(FirstEpoch, tree2, 0, nil); err == nil {
		t.Error("swap to the same epoch accepted")
	}

	// Swap with a re-obfuscated population: only the inserts survive.
	inserts := make([]EpochInsert, 10)
	for i := range inserts {
		inserts[i] = EpochInsert{Code: randCode(tree2, src), ID: 100 + i}
	}
	if err := eng.SwapEpoch(2, tree2, 0, inserts); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 2 {
		t.Fatalf("Epoch = %d after swap", eng.Epoch())
	}
	if eng.Tree() != tree2 {
		t.Error("Tree() still returns the old epoch's tree")
	}
	if eng.Len() != len(inserts) {
		t.Fatalf("Len = %d after swap, want %d", eng.Len(), len(inserts))
	}
	// Every assignment now pops a new-epoch worker, stamped epoch 2.
	got := map[int]bool{}
	for {
		id, _, ep, ok := eng.AssignEpoch(randCode(tree2, src))
		if !ok {
			break
		}
		if ep != 2 {
			t.Fatalf("pop stamped epoch %d, want 2", ep)
		}
		if id < 100 {
			t.Fatalf("pop returned old-epoch worker %d", id)
		}
		got[id] = true
	}
	if len(got) != len(inserts) {
		t.Fatalf("drained %d workers, want %d", len(got), len(inserts))
	}
}

func TestInsertEpochRefusesStale(t *testing.T) {
	tree1 := buildTestTree(t, 1, 8)
	tree2 := buildTestTree(t, 2, 8)
	eng, err := New(tree1, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	code1 := randCode(tree1, src)
	if err := eng.InsertEpoch(code1, 1, FirstEpoch); err != nil {
		t.Fatal(err)
	}
	if err := eng.SwapEpoch(2, tree2, 0, nil); err != nil {
		t.Fatal(err)
	}
	// A release pinned to the rotated-away epoch must be refused, not land
	// a stale-tree code in the fresh index.
	err = eng.InsertEpoch(code1, 2, FirstEpoch)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale insert error = %v, want ErrStaleEpoch", err)
	}
	if eng.Len() != 0 {
		t.Fatalf("stale insert mutated the new epoch: Len = %d", eng.Len())
	}
	// Unpinned (epoch 0) inserts follow the current epoch.
	if err := eng.InsertEpoch(randCode(tree2, src), 3, 0); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 1 {
		t.Fatalf("Len = %d", eng.Len())
	}
}

func TestSwapEpochValidatesInserts(t *testing.T) {
	tree1 := buildTestTree(t, 1, 8)
	tree2 := buildTestTree(t, 2, 8)
	eng, err := New(tree1, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	if err := eng.Insert(randCode(tree1, src), 7); err != nil {
		t.Fatal(err)
	}
	// A malformed insert aborts the swap and leaves the old epoch serving.
	bad := hst.Code(make([]byte, tree2.Depth()+3))
	if err := eng.SwapEpoch(2, tree2, 0, []EpochInsert{{Code: bad, ID: 1}}); err == nil {
		t.Fatal("swap with malformed insert accepted")
	}
	if eng.Epoch() != FirstEpoch || eng.Len() != 1 {
		t.Fatalf("failed swap disturbed serving state: epoch %d, len %d", eng.Epoch(), eng.Len())
	}
}

func TestWalkSeesPopulation(t *testing.T) {
	tree := buildTestTree(t, 5, 8)
	eng, err := New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	want := map[int]hst.Code{}
	for id := 0; id < 64; id++ {
		c := randCode(tree, src)
		want[id] = c
		if err := eng.Insert(c, id); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]hst.Code{}
	eng.Walk(func(code hst.Code, id int) { got[id] = code })
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d items, want %d", len(got), len(want))
	}
	for id, c := range want {
		if got[id] != c {
			t.Errorf("Walk: worker %d at %v, want %v", id, []byte(got[id]), []byte(c))
		}
	}
}

// TestConcurrentSwapBarrier hammers Assign/Insert/Remove while another
// goroutine repeatedly swaps epochs, asserting under -race that (a) every
// pop is stamped with a consistent epoch, (b) epoch stamps never go
// backwards, and (c) a drain after quiescing finds only current-epoch
// workers.
func TestConcurrentSwapBarrier(t *testing.T) {
	trees := []*hst.Tree{
		buildTestTree(t, 11, 8),
		buildTestTree(t, 12, 8),
		buildTestTree(t, 13, 8),
		buildTestTree(t, 14, 8),
	}
	eng, err := New(trees[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	const nWorkers = 256
	rotations := stressN(20)
	var wg sync.WaitGroup
	var stop atomic.Bool
	var maxSeen atomic.Int64
	maxSeen.Store(FirstEpoch)

	// Mutators: insert and assign against whatever epoch is current.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(100).DeriveN("mutator", g)
			for !stop.Load() {
				tree := eng.Tree()
				id := src.Intn(nWorkers)
				// Insert against the loaded tree; a swap in between makes
				// the code invalid for the new tree (depths differ) or
				// places it fine — both acceptable; never a panic or a
				// cross-tree code in the index.
				_ = eng.InsertEpoch(randCode(tree, src), id, 0)
				if _, _, ep, ok := eng.AssignEpoch(randCode(eng.Tree(), src)); ok {
					for {
						prev := maxSeen.Load()
						if ep <= prev || maxSeen.CompareAndSwap(prev, ep) {
							break
						}
					}
					if ep < FirstEpoch {
						t.Errorf("pop stamped invalid epoch %d", ep)
					}
				}
			}
		}(g)
	}

	src := rng.New(200)
	for r := 0; r < rotations; r++ {
		tree := trees[(r+1)%len(trees)]
		epoch := int64(FirstEpoch + r + 1)
		inserts := make([]EpochInsert, 32)
		for i := range inserts {
			inserts[i] = EpochInsert{Code: randCode(tree, src), ID: 1000 + r*100 + i}
		}
		if err := eng.SwapEpoch(epoch, tree, 0, inserts); err != nil {
			t.Fatalf("rotation %d: %v", r, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := maxSeen.Load(); got > int64(FirstEpoch+rotations) {
		t.Errorf("observed epoch %d beyond the last rotation %d", got, FirstEpoch+rotations)
	}
	// Quiesced: the index holds only codes valid for the final tree, and
	// occupancy bookkeeping is intact.
	final := eng.Tree()
	eng.Walk(func(code hst.Code, id int) {
		if err := final.CheckCode(code); err != nil {
			t.Errorf("worker %d holds a cross-epoch code: %v", id, err)
		}
	})
	occ := 0
	for _, o := range eng.Occupancy() {
		occ += o
	}
	if occ != eng.Len() {
		t.Errorf("Σ Occupancy %d != Len %d after swaps", occ, eng.Len())
	}
}
