package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"github.com/pombm/pombm/internal/hst"
)

// SwapEpochSeq is SwapEpoch fed by a re-iterable insert sequence instead of
// a materialized slice, for populations too large to hold twice. seq must
// yield the same inserts every time it is invoked (the platform's rotation
// path derives them deterministically from the rotation plan; a snapshot
// restore replays its worker list).
//
// The memory contract is the point: SwapEpoch builds the full next-epoch
// population beside the live one, doubling peak memory exactly when a
// deployment is largest. SwapEpochSeq instead validates every insert in a
// first pass while the old epoch keeps serving, then freezes serving under
// every old shard lock, releases the old epoch's trie arenas, and builds
// the new population in their place — peak extra memory is one shard's
// build-in-progress, not a second copy of the population (the soak lane
// reports the measured ratio). The trade is a serving pause for the length
// of the build; callers that need the old epoch serving throughout (the
// cluster's two-phase prepare) keep using SwapEpoch/PrepareSwap.
//
// Failures every materialized swap can report — stale epoch, nil tree,
// malformed codes, out-of-range ids or capacities — are caught in the
// validation pass and returned with the old epoch untouched. A second-pass
// insert failure is only reachable through arena exhaustion
// (hst.ErrIndexFull) after the old population is already torn down, so it
// panics rather than serving a half-built epoch.
//
// Readers racing the swap (Len, Occupancy, Walk — monitoring surfaces
// documented as needing quiesced writers) that loaded the old state before
// the freeze may observe it empty afterwards; mutators re-check the state
// pointer under their shard lock and retry on the new epoch, exactly as
// with SwapEpoch.
func (e *Engine) SwapEpochSeq(epoch int64, tree *hst.Tree, shards int, seq func(yield func(EpochInsert) bool)) error {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	if tree == nil {
		return errors.New("engine: nil tree")
	}
	old := e.state.Load()
	if epoch <= old.epoch {
		return fmt.Errorf("engine: swap to epoch %d, already serving %d", epoch, old.epoch)
	}
	if shards <= 0 {
		shards = len(old.shards)
	}
	var verr error
	seq(func(in EpochInsert) bool {
		verr = checkEpochInsert(tree, in, e.effCap(in.Cap))
		return verr == nil
	})
	if verr != nil {
		return verr
	}
	// Freeze the old epoch and return its arenas to the allocator before
	// the new population grows: each old shard keeps a well-formed (empty)
	// index so a stale monitoring read stays safe, while the slabs behind
	// it become garbage.
	for i := range old.shards {
		old.shards[i].mu.Lock()
	}
	// The old arenas' entry counts size the new ones: across a rotation
	// the population is the same workers re-obfuscated, so per-shard sizes
	// are stationary and the old shard's counts (plus slack for drift) let
	// the build fill each new slab in one allocation instead of climbing
	// the append doubling ladder, whose dead half-size slabs would
	// themselves peak at a population's worth of garbage. A changed shard
	// count redistributes the population, so only the per-shard average
	// remains as a hint.
	type arenaHint struct{ nodes, kids, items int }
	hints := make([]arenaHint, len(old.shards))
	var total arenaHint
	for i := range old.shards {
		n, k, it := old.shards[i].index.ArenaLens()
		hints[i] = arenaHint{n, k, it}
		total.nodes += n
		total.kids += k
		total.items += it
	}
	for i := range old.shards {
		old.shards[i].index = hst.NewLeafIndexDegree(old.depth, old.degree)
	}
	// Collect the released arenas before the build starts. Without this the
	// pacer is free to let the old population sit as garbage while the new
	// one allocates beside it — exactly the doubled peak this path exists
	// to avoid. The mark phase scans live objects only, which no longer
	// includes the old population, so the collection is cheap relative to
	// the build it precedes.
	runtime.GC()
	st := newEpochState(epoch, tree, shards)
	slack := func(n int) int { return n + n/8 }
	for i := range st.shards {
		h := arenaHint{total.nodes / len(st.shards), total.kids / len(st.shards), total.items / len(st.shards)}
		if len(st.shards) == len(old.shards) {
			h = hints[i]
		}
		st.shards[i].index.Reserve(slack(h.nodes), slack(h.kids), slack(h.items))
	}
	seq(func(in EpochInsert) bool {
		if err := st.shardOf(in.Code).index.InsertCap(in.Code, in.ID, e.effCap(in.Cap)); err != nil {
			panic(fmt.Sprintf("engine: swap epoch %d insert %d failed after validation: %v", epoch, in.ID, err))
		}
		return true
	})
	e.state.Store(st)
	for i := range old.shards {
		old.shards[i].mu.Unlock()
	}
	return nil
}

// checkEpochInsert pre-validates one next-epoch insert against everything
// the trie's InsertCap would refuse, so a streaming swap can fail before
// tearing anything down.
func checkEpochInsert(tree *hst.Tree, in EpochInsert, capacity int) error {
	if err := tree.CheckCode(in.Code); err != nil {
		return fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
	}
	if in.ID < 0 || in.ID > math.MaxInt32 {
		return fmt.Errorf("engine: swap insert %d: id outside int32 range", in.ID)
	}
	if capacity > math.MaxInt32 {
		return fmt.Errorf("engine: swap insert %d: capacity %d outside int32 range", in.ID, capacity)
	}
	return nil
}

// PrepareSwapSeq is PrepareSwap fed by a pull iterator instead of a
// materialized slice: next returns the next insert, ok=false at the end of
// the stream, or an error (a node handler decoding inserts straight off the
// wire propagates its decode error here). The staged state is built
// incrementally while the old epoch keeps serving — a prepare must remain
// abortable, so unlike SwapEpochSeq it cannot cannibalize the serving
// arenas, but it never needs the inserts materialized either: the
// coordinator streams a multi-gigabyte prepare body and the node indexes it
// entry by entry. Any failure discards the partial state and leaves the
// serving epoch untouched.
func (e *Engine) PrepareSwapSeq(epoch int64, tree *hst.Tree, shards int, next func() (EpochInsert, bool, error)) (*PreparedSwap, error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	if tree == nil {
		return nil, errors.New("engine: nil tree")
	}
	old := e.state.Load()
	if epoch <= old.epoch {
		return nil, fmt.Errorf("engine: swap to epoch %d, already serving %d", epoch, old.epoch)
	}
	if shards <= 0 {
		shards = len(old.shards)
	}
	st := newEpochState(epoch, tree, shards)
	for {
		in, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return &PreparedSwap{st: st}, nil
		}
		if err := tree.CheckCode(in.Code); err != nil {
			return nil, fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
		}
		if err := st.shardOf(in.Code).index.InsertCap(in.Code, in.ID, e.effCap(in.Cap)); err != nil {
			return nil, fmt.Errorf("engine: swap insert %d: %w", in.ID, err)
		}
	}
}

// ArenaBytes returns the bytes the serving epoch's trie arenas currently
// reserve across all shards — the engine's structural contribution to a
// bytes-per-worker accounting (slot tables, scratch, and allocator overhead
// excluded). Taken shard by shard under each shard lock; like every
// monitoring surface it is exact only with writers quiesced.
func (e *Engine) ArenaBytes() int64 {
	st := e.state.Load()
	var b int64
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		b += s.index.ArenaBytes()
		s.mu.Unlock()
	}
	return b
}
