package engine

import (
	"testing"
	"unsafe"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// TestEngineShardCacheLinePadding pins the contention contract: one shard
// per cache line, whatever fields shardData grows. Without the pad,
// adjacent shard locks share a 64-byte line and every acquisition bounces
// its neighbours.
func TestEngineShardCacheLinePadding(t *testing.T) {
	if s := unsafe.Sizeof(engineShard{}); s%cacheLine != 0 {
		t.Fatalf("engineShard is %d bytes, not a multiple of the %d-byte line", s, cacheLine)
	}
	var shards [2]engineShard
	a := uintptr(unsafe.Pointer(&shards[0].mu))
	b := uintptr(unsafe.Pointer(&shards[1].mu))
	if (b-a)%cacheLine != 0 {
		t.Fatalf("adjacent shard locks are %d bytes apart", b-a)
	}
}

// TestSubShardRouting pins the sub-sharded partition: shard d0 + degree·t
// holds exactly the codes with first digit d0 and second digit ≡ t mod sub,
// so every worker sharing a query's first two digits is in the query's own
// shard and every worker in a sibling sub-shard shares exactly the first.
func TestSubShardRouting(t *testing.T) {
	grid, err := geo.NewGrid(workload.SyntheticRegion, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 2 {
		t.Skip("tree too shallow to sub-shard")
	}
	d := tree.Degree()
	st := newEpochState(1, tree, 3*d)
	if st.sub != 3 || len(st.shards) != 3*d {
		t.Fatalf("sub=%d shards=%d, want 3 and %d", st.sub, len(st.shards), 3*d)
	}
	if st.ownLimit() != st.depth-2 {
		t.Fatalf("ownLimit = %d under sub-sharding, want %d", st.ownLimit(), st.depth-2)
	}
	src := rng.New(17)
	for i := 0; i < 500; i++ {
		code := make([]byte, tree.Depth())
		for j := range code {
			code[j] = byte(src.Intn(d))
		}
		si := st.shardIdx(hst.Code(code))
		if si%d != int(code[0]) {
			t.Fatalf("code %v routed to shard %d: first digit %d ≠ shard group %d",
				code, si, code[0], si%d)
		}
		if si/d != int(code[1])%st.sub {
			t.Fatalf("code %v routed to shard %d: second digit group %d ≠ %d",
				code, si, int(code[1])%st.sub, si/d)
		}
	}
}

// TestShardStatsAccounting: the per-shard counters must add up to the
// serving traffic — every successful pop is one assign, every own-shard
// miss one fallback.
func TestShardStatsAccounting(t *testing.T) {
	grid, err := geo.NewGrid(workload.SyntheticRegion, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(27)
	randCode := func() hst.Code {
		b := make([]byte, tree.Depth())
		for i := range b {
			b[i] = byte(src.Intn(tree.Degree()))
		}
		return hst.Code(b)
	}
	const n = 120
	for i := 0; i < n; i++ {
		if err := e.Insert(randCode(), i); err != nil {
			t.Fatal(err)
		}
	}
	assigned := 0
	for i := 0; i < n+20; i++ {
		if _, _, ok := e.Assign(randCode()); ok {
			assigned++
		}
	}
	var gotAssigns int64
	for _, s := range e.ShardStats() {
		gotAssigns += s.Assigns
	}
	if gotAssigns != int64(assigned) {
		t.Fatalf("Σ ShardStats.Assigns = %d, served %d", gotAssigns, assigned)
	}
}
