package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/pombm/pombm/internal/flow"
	"github.com/pombm/pombm/internal/hst"
)

// Policy is the pluggable assignment rule: it decides which available
// worker serves each task, against the engine's sharded trie state. The
// decision methods are unexported — implementations need the engine's
// shard-locking internals, so policies live in this package and callers
// select one with Greedy, CapacityGreedy, BatchOptimal, or PolicyByName.
type Policy interface {
	// Name identifies the policy in stats, reports, and flags.
	Name() string
	// CapacityAware reports whether worker capacities above one are
	// honoured. The engine clamps every insert to capacity 1 otherwise, so
	// a non-capacity-aware policy always sees the paper's one-task-per-
	// worker pool.
	CapacityAware() bool

	assignOne(e *Engine, code hst.Code) (id, lcaLevel int, epoch int64, ok bool)
	assignWindow(e *Engine, codes []hst.Code) (ids, lcaLevels []int)
}

// greedyPolicy is the sequential nearest-worker rule of Alg. 4: each task
// pops the tree-nearest available worker, ties to the smallest id. With
// capacity enabled a pop consumes one capacity unit instead of the whole
// slot — the capacitated sequential rule — and with it disabled the policy
// is bit-identical to the engine's historical hardwired greedy.
type greedyPolicy struct {
	capacity bool
}

var (
	greedySingleton    = &greedyPolicy{capacity: false}
	capGreedySingleton = &greedyPolicy{capacity: true}
)

// Greedy returns the paper-faithful assignment policy: one task per worker
// slot, nearest worker in tree distance, ties to the smallest id. It is the
// default, and its serving path preserves the engine's zero-allocation
// steady-state contract.
func Greedy() Policy { return greedySingleton }

// CapacityGreedy returns the capacitated sequential rule: the same
// nearest-worker decision, but a worker with remaining capacity k serves up
// to k tasks, leaving the pool only when its last unit is consumed.
func CapacityGreedy() Policy { return capGreedySingleton }

func (p *greedyPolicy) Name() string {
	if p.capacity {
		return "capacity-greedy"
	}
	return "greedy"
}

func (p *greedyPolicy) CapacityAware() bool { return p.capacity }

func (p *greedyPolicy) assignOne(e *Engine, code hst.Code) (int, int, int64, bool) {
	return e.greedyAssignOne(code)
}

func (p *greedyPolicy) assignWindow(e *Engine, codes []hst.Code) ([]int, []int) {
	return e.greedyAssignWindow(codes)
}

// DefaultBatchTopK is the candidate pool mined per task by the
// batch-optimal policy when no explicit k is configured.
const DefaultBatchTopK = 8

// batchOptimalPolicy serves each batch window as one restricted bipartite
// matching: every task mines its top-k nearest candidates from the trie
// (non-destructively), and the window is solved cost-optimally over the
// candidate union with the shared min-cost max-flow solver, worker
// capacities becoming sink-edge capacities. One-task serving degenerates to
// the greedy rule (the cost-optimal choice for a single task is its nearest
// candidate), so only batch submissions pay the solve.
type batchOptimalPolicy struct {
	k int
}

// BatchOptimal returns the window-solving policy with a per-task candidate
// pool of k (≤ 0 selects DefaultBatchTopK). It is capacity-aware.
func BatchOptimal(k int) Policy {
	if k <= 0 {
		k = DefaultBatchTopK
	}
	return &batchOptimalPolicy{k: k}
}

func (p *batchOptimalPolicy) Name() string {
	return fmt.Sprintf("batch-optimal:k=%d", p.k)
}

func (p *batchOptimalPolicy) CapacityAware() bool { return true }

func (p *batchOptimalPolicy) assignOne(e *Engine, code hst.Code) (int, int, int64, bool) {
	return e.greedyAssignOne(code)
}

func (p *batchOptimalPolicy) assignWindow(e *Engine, codes []hst.Code) ([]int, []int) {
	ids := make([]int, len(codes))
	lvls := make([]int, len(codes))
	for i := range ids {
		ids[i] = None
	}
	for {
		st := e.state.Load()
		if p.solveWindow(e, st, codes, ids, lvls) {
			e.windows.Add(1)
			return ids, lvls
		}
	}
}

// batchArc records one task→candidate edge of the window's flow graph.
type batchArc struct {
	edge int // forward edge id in the solver
	w    int // candidate index
	lvl  int // LCA level of the pairing
}

// solveWindow serves one window under every shard lock (a window is a
// global decision; per-shard locking cannot express it). It reports false
// when an epoch swap won the lock race, in which case the caller retries
// against the new state.
func (p *batchOptimalPolicy) solveWindow(e *Engine, st *epochState, codes []hst.Code, ids, lvls []int) bool {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return false
	}

	// Valid tasks only; malformed codes answer None without touching state.
	valid := make([]int, 0, len(codes))
	for i, code := range codes {
		ids[i], lvls[i] = None, 0
		if st.tree.CheckCode(code) == nil {
			valid = append(valid, i)
		}
	}
	pool := 0
	for i := range st.shards {
		pool += st.shards[i].index.Len()
	}
	if len(valid) == 0 || pool == 0 {
		return true
	}

	// Mine each task's candidates: the k nearest from its own shard (every
	// worker sharing the task's top branch lives there), padded — when the
	// own shard runs short — with the smallest-id workers from the other
	// shards, all of which sit at the maximal LCA level and are therefore
	// equidistant. The pad pool is snapshotted once per window.
	type wkey struct {
		id   int
		code hst.Code
	}
	workerNode := map[wkey]int{}
	var workers []hst.Candidate // unique candidates, first-seen order
	cands := make([][]hst.Candidate, len(valid))
	var pad padPool
	var scratch []hst.Candidate
	for ti, i := range valid {
		code := codes[i]
		own := st.shardIdx(code)
		scratch = st.shards[own].index.NearestK(code, p.k, scratch[:0])
		if len(scratch) < p.k && len(st.shards) > 1 {
			pad.init(st, st.depth)
			scratch = pad.fill(own, p.k-len(scratch), scratch)
		}
		for _, c := range scratch {
			key := wkey{c.ID, c.Code}
			if _, seen := workerNode[key]; !seen {
				workerNode[key] = len(workers)
				workers = append(workers, c)
			}
			cands[ti] = append(cands[ti], c)
		}
	}

	// Restricted bipartite min-cost matching over the candidate union:
	// source → task (1 unit) → candidate (cost = tree distance of the LCA
	// level) → sink (the candidate's remaining capacity). Successive
	// shortest paths yield a maximum-cardinality assignment of minimum
	// total tree distance within the mined graph.
	T, W := len(valid), len(workers)
	src, sink := 0, T+W+1
	f := flow.NewMinCostFlow(T + W + 2)
	for ti := 0; ti < T; ti++ {
		f.AddEdge(src, 1+ti, 1, 0)
	}
	arcs := make([][]batchArc, T)
	for ti := range cands {
		for _, c := range cands[ti] {
			w := workerNode[wkey{c.ID, c.Code}]
			edge := f.AddEdge(1+ti, 1+T+w, 1, hst.LevelDist(c.Level))
			arcs[ti] = append(arcs[ti], batchArc{edge: edge, w: w, lvl: c.Level})
		}
	}
	for w, c := range workers {
		capacity := c.Cap
		if capacity > T {
			capacity = T
		}
		f.AddEdge(1+T+w, sink, capacity, 0)
	}
	f.Run(src, sink, T)

	// Extract and commit: consume one capacity unit per saturated arc.
	for ti, i := range valid {
		for _, a := range arcs[ti] {
			if f.Residual(a.edge) != 0 {
				continue
			}
			c := workers[a.w]
			if !st.shardOf(c.Code).index.Consume(c.Code, c.ID) {
				// Unreachable: the candidate was mined under the same locks
				// the commit holds. Surfacing beats silently double-booking.
				panic(fmt.Sprintf("engine: batch-optimal commit lost candidate %d at %q", c.ID, c.Code))
			}
			ids[i], lvls[i] = c.ID, a.lvl
			break
		}
	}
	return true
}

// padPool picks the smallest-id workers across a window's foreign shards —
// all at the maximal LCA level — by merging per-shard id-sorted snapshots.
// Built lazily: windows whose tasks find k candidates in their own shard
// never pay for it.
type padPool struct {
	shards [][]hst.Candidate // id-sorted snapshot per shard
	heads  []int             // per-task merge cursors, reset by fill
}

func (p *padPool) init(st *epochState, depth int) {
	if p.shards != nil {
		return
	}
	p.shards = make([][]hst.Candidate, len(st.shards))
	for i := range st.shards {
		var items []hst.Candidate
		st.shards[i].index.WalkCap(func(code hst.Code, id, capacity int) {
			items = append(items, hst.Candidate{ID: id, Code: code, Level: depth, Cap: capacity})
		})
		sortCandidatesByID(items)
		p.shards[i] = items
	}
	p.heads = make([]int, len(st.shards))
}

// fill appends up to need smallest-id candidates from every shard except
// exclude.
func (p *padPool) fill(exclude, need int, out []hst.Candidate) []hst.Candidate {
	for i := range p.heads {
		p.heads[i] = 0
	}
	for ; need > 0; need-- {
		best := -1
		for s := range p.shards {
			if s == exclude || p.heads[s] >= len(p.shards[s]) {
				continue
			}
			if best < 0 || p.shards[s][p.heads[s]].ID < p.shards[best][p.heads[best]].ID {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out = append(out, p.shards[best][p.heads[best]])
		p.heads[best]++
	}
	return out
}

// sortCandidatesByID orders a snapshot by id.
func sortCandidatesByID(items []hst.Candidate) {
	sort.Slice(items, func(a, b int) bool { return items[a].ID < items[b].ID })
}

// PolicyNames lists the selectable policy specs for flag help.
func PolicyNames() []string {
	return []string{"greedy", "capacity-greedy", "batch-optimal", "batch-optimal:k=<n>"}
}

// PolicyByName resolves a policy spec: "greedy", "capacity-greedy",
// "batch-optimal", or "batch-optimal:k=<n>" for an explicit per-task
// candidate pool.
func PolicyByName(spec string) (Policy, error) {
	switch spec {
	case "", "greedy":
		return Greedy(), nil
	case "capacity-greedy":
		return CapacityGreedy(), nil
	case "batch-optimal":
		return BatchOptimal(0), nil
	}
	if rest, ok := strings.CutPrefix(spec, "batch-optimal:k="); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("engine: bad batch-optimal candidate pool %q", rest)
		}
		return BatchOptimal(k), nil
	}
	return nil, fmt.Errorf("engine: unknown policy %q (have %s)", spec, strings.Join(PolicyNames(), ", "))
}
