package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/pombm/pombm/internal/flow"
	"github.com/pombm/pombm/internal/hst"
)

// Policy is the pluggable assignment rule: it decides which available
// worker serves each task, against the engine's sharded trie state. The
// decision methods are unexported — implementations need the engine's
// shard-locking internals, so policies live in this package and callers
// select one with Greedy, CapacityGreedy, BatchOptimal, or PolicyByName.
type Policy interface {
	// Name identifies the policy in stats, reports, and flags.
	Name() string
	// CapacityAware reports whether worker capacities above one are
	// honoured. The engine clamps every insert to capacity 1 otherwise, so
	// a non-capacity-aware policy always sees the paper's one-task-per-
	// worker pool.
	CapacityAware() bool

	assignOne(e *Engine, code hst.Code) (id, lcaLevel int, epoch int64, ok bool)
	assignWindow(e *Engine, codes []hst.Code) (ids, lcaLevels []int)
}

// greedyPolicy is the sequential nearest-worker rule of Alg. 4: each task
// pops the tree-nearest available worker, ties to the smallest id. With
// capacity enabled a pop consumes one capacity unit instead of the whole
// slot — the capacitated sequential rule — and with it disabled the policy
// is bit-identical to the engine's historical hardwired greedy.
type greedyPolicy struct {
	capacity bool
}

var (
	greedySingleton    = &greedyPolicy{capacity: false}
	capGreedySingleton = &greedyPolicy{capacity: true}
)

// Greedy returns the paper-faithful assignment policy: one task per worker
// slot, nearest worker in tree distance, ties to the smallest id. It is the
// default, and its serving path preserves the engine's zero-allocation
// steady-state contract.
func Greedy() Policy { return greedySingleton }

// CapacityGreedy returns the capacitated sequential rule: the same
// nearest-worker decision, but a worker with remaining capacity k serves up
// to k tasks, leaving the pool only when its last unit is consumed.
func CapacityGreedy() Policy { return capGreedySingleton }

func (p *greedyPolicy) Name() string {
	if p.capacity {
		return "capacity-greedy"
	}
	return "greedy"
}

func (p *greedyPolicy) CapacityAware() bool { return p.capacity }

func (p *greedyPolicy) assignOne(e *Engine, code hst.Code) (int, int, int64, bool) {
	return e.greedyAssignOne(code)
}

func (p *greedyPolicy) assignWindow(e *Engine, codes []hst.Code) ([]int, []int) {
	return e.greedyAssignWindow(codes)
}

// DefaultBatchTopK is the candidate pool mined per task by the
// batch-optimal policy when no explicit k is configured.
const DefaultBatchTopK = 8

// parallelMineMin is the window size below which candidate mining stays
// sequential: fanning goroutines across shards only pays once a window
// carries enough probes to amortise the spawn cost.
const parallelMineMin = 32

// batchOptimalPolicy serves each batch window as one restricted bipartite
// matching: every task mines its top-k nearest candidates from the trie
// (non-destructively, by arena ref — no code string ever materialises),
// and the window is solved cost-optimally over the candidate union with
// the warm-started flow.Bipartite solver, worker capacities bounding how
// many tasks one candidate absorbs. One-task serving degenerates to the
// greedy rule (the cost-optimal choice for a single task is its nearest
// candidate), so only batch submissions pay the solve.
//
// The hot path is arena-backed end to end: all window scratch — candidate
// regions, pad lists, the dedup table, the solver — lives in a pooled
// windowScratch that reaches its high-water mark after a few windows and
// then serves steady state at single-digit allocations per window. Worker
// potentials (the solver's dual prices) carry from window to window keyed
// by worker id, so a typical task's augmenting search pops its final
// worker immediately; an epoch swap invalidates the warm state wholesale —
// the check is pointer identity on the epoch's state, so a scratch that
// last served another epoch (or another engine) always starts cold.
type batchOptimalPolicy struct {
	k    int
	pool sync.Pool // *windowScratch
}

// BatchOptimal returns the window-solving policy with a per-task candidate
// pool of k (≤ 0 selects DefaultBatchTopK). It is capacity-aware.
func BatchOptimal(k int) Policy {
	if k <= 0 {
		k = DefaultBatchTopK
	}
	p := &batchOptimalPolicy{k: k}
	p.pool.New = func() any {
		return &windowScratch{
			dedup:  map[refKey]int32{},
			warm:   map[int32]float64{},
			solver: flow.NewBipartite(),
		}
	}
	return p
}

func (p *batchOptimalPolicy) Name() string {
	return fmt.Sprintf("batch-optimal:k=%d", p.k)
}

func (p *batchOptimalPolicy) CapacityAware() bool { return true }

func (p *batchOptimalPolicy) assignOne(e *Engine, code hst.Code) (int, int, int64, bool) {
	return e.greedyAssignOne(code)
}

func (p *batchOptimalPolicy) assignWindow(e *Engine, codes []hst.Code) ([]int, []int) {
	ids := make([]int, len(codes))
	lvls := make([]int, len(codes))
	for i := range ids {
		ids[i] = None
	}
	for {
		st := e.state.Load()
		if p.solveWindow(e, st, codes, ids, lvls) {
			e.windows.Add(1)
			return ids, lvls
		}
	}
}

// refKey identifies one candidate across a window: the same worker mined
// by several tasks (or padded in from a foreign shard) must collapse to
// one solver column so its capacity is respected window-wide.
type refKey struct {
	shard int32
	node  int32
	id    int32
}

// shardWorker is a deduplicated candidate: the shard owning it plus its
// arena ref.
type shardWorker struct {
	shard int32
	ref   hst.CandidateRef
}

// windowScratch is the reusable arena behind one window solve. It lives in
// the policy's sync.Pool; every slice grows to the policy's (window × k)
// envelope once and is then reused, and the two maps are cleared, not
// reallocated. warm and lastState survive between windows — they are the
// warm-start seam.
type windowScratch struct {
	valid      []int32            // positions of well-formed tasks in the window
	taskShard  []int32            // own shard per valid task
	shardOff   []int32            // per-shard offsets into shardTasks (len S+1)
	shardTasks []int32            // valid-task positions grouped by own shard
	cands      []hst.CandidateRef // per-task candidate regions, k slots each
	candSh     []int32            // source shard per candidate slot
	candCnt    []int32            // live candidates per task
	padBuf     []hst.CandidateRef // per-shard smallest-k pad lists, k slots each
	padLen     []int32            // live pads per shard (-1 = not yet built)
	padHeads   []int32            // per-task pad merge cursors
	dedup      map[refKey]int32   // candidate → solver worker column
	workers    []shardWorker      // unique candidates, first-seen order
	arcLvl     []int32            // LCA level per solver arc
	solver     *flow.Bipartite
	wg         sync.WaitGroup

	// Warm state: worker potentials carried across windows, valid only for
	// the epoch state they were learned under.
	warm      map[int32]float64
	lastState *epochState
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growRef(s []hst.CandidateRef, n int) []hst.CandidateRef {
	if cap(s) < n {
		return make([]hst.CandidateRef, n)
	}
	return s[:n]
}

// solveWindow serves one window under every shard lock (a window is a
// global decision; per-shard locking cannot express it). It reports false
// when an epoch swap won the lock race, in which case the caller retries
// against the new state.
func (p *batchOptimalPolicy) solveWindow(e *Engine, st *epochState, codes []hst.Code, ids, lvls []int) bool {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return false
	}

	ws := p.pool.Get().(*windowScratch)
	defer p.pool.Put(ws)
	// Warm potentials are duals learned against one epoch's population; a
	// different state pointer — a rotation, or a scratch migrating between
	// engines — invalidates them wholesale.
	if ws.lastState != st {
		clear(ws.warm)
		ws.lastState = st
	}

	// Valid tasks only; malformed codes answer None without touching state.
	ws.valid = ws.valid[:0]
	for i, code := range codes {
		ids[i], lvls[i] = None, 0
		if st.tree.CheckCode(code) == nil {
			ws.valid = append(ws.valid, int32(i))
		}
	}
	pool := 0
	for i := range st.shards {
		pool += st.shards[i].index.Len()
	}
	nt, S := len(ws.valid), len(st.shards)
	if nt == 0 || pool == 0 {
		return true
	}
	k := p.k

	// Group tasks by their own shard (every worker sharing the task's top
	// branch lives there), so each shard's probes run as one batch.
	ws.taskShard = growI32(ws.taskShard, nt)
	ws.shardOff = growI32(ws.shardOff, S+1)
	ws.shardTasks = growI32(ws.shardTasks, nt)
	for i := range ws.shardOff {
		ws.shardOff[i] = 0
	}
	for ti, i := range ws.valid {
		s := int32(st.shardIdx(codes[i]))
		ws.taskShard[ti] = s
		ws.shardOff[s+1]++
	}
	for s := 0; s < S; s++ {
		ws.shardOff[s+1] += ws.shardOff[s]
	}
	fill := ws.shardOff // reuse as cursors; restore below
	for ti := range ws.taskShard {
		s := ws.taskShard[ti]
		ws.shardTasks[fill[s]] = int32(ti)
		fill[s]++
	}
	for s := S; s > 0; s-- {
		ws.shardOff[s] = ws.shardOff[s-1]
	}
	ws.shardOff[0] = 0

	// Mine each task's own-shard top-k, one batch per shard. The probes
	// are independent across shards — each touches only its shard's index
	// (whose scratch buffers make NearestKRef exclusive per shard), and
	// every shard lock is already held — so large windows fan out across
	// goroutines.
	ws.cands = growRef(ws.cands, nt*k)
	ws.candSh = growI32(ws.candSh, nt*k)
	ws.candCnt = growI32(ws.candCnt, nt)
	mineShard := func(s int) {
		for _, ti := range ws.shardTasks[ws.shardOff[s]:ws.shardOff[s+1]] {
			code := codes[ws.valid[ti]]
			region := ws.cands[int(ti)*k : int(ti)*k : (int(ti)+1)*k]
			got := st.shards[s].index.NearestKRef(code, k, region)
			ws.candCnt[ti] = int32(len(got))
			for j := range got {
				ws.candSh[int(ti)*k+j] = int32(s)
			}
		}
	}
	if nt >= parallelMineMin && S > 1 {
		for s := 0; s < S; s++ {
			if ws.shardOff[s] == ws.shardOff[s+1] {
				continue
			}
			ws.wg.Add(1)
			go func(s int) {
				defer ws.wg.Done()
				mineShard(s)
			}(s)
		}
		ws.wg.Wait()
	} else {
		for s := 0; s < S; s++ {
			mineShard(s)
		}
	}

	// Pad tasks whose own shard ran short with the smallest-id workers
	// from the other shards, all of which sit at the maximal LCA level and
	// are therefore equidistant. Instead of snapshotting whole shards, each
	// foreign shard contributes a keep-k list (a task needs at most k pads
	// even if one shard supplies them all), built lazily once per window
	// and merge-scanned per task — no padded rows ever materialise.
	if S > 1 {
		ws.padLen = growI32(ws.padLen, S)
		ws.padHeads = growI32(ws.padHeads, S)
		for s := range ws.padLen {
			ws.padLen[s] = -1 // unbuilt
		}
		ws.padBuf = growRef(ws.padBuf, S*k)
		for ti := 0; ti < nt; ti++ {
			need := k - int(ws.candCnt[ti])
			if need <= 0 {
				continue
			}
			own := ws.taskShard[ti]
			for s := 0; s < S; s++ {
				ws.padHeads[s] = 0
				if ws.padLen[s] < 0 && int32(s) != own {
					region := ws.padBuf[s*k : s*k : (s+1)*k]
					got := st.shards[s].index.SmallestKRef(k, st.depth, region)
					ws.padLen[s] = int32(len(got))
				}
			}
			region := ws.cands[int(ti)*k : int(ti)*k+int(ws.candCnt[ti]) : (int(ti)+1)*k]
			for ; need > 0; need-- {
				best := -1
				for s := 0; s < S; s++ {
					if int32(s) == own || ws.padHeads[s] >= ws.padLen[s] {
						continue
					}
					if best < 0 || ws.padBuf[s*k+int(ws.padHeads[s])].ID < ws.padBuf[best*k+int(ws.padHeads[best])].ID {
						best = s
					}
				}
				if best < 0 {
					break
				}
				ws.candSh[int(ti)*k+len(region)] = int32(best)
				region = append(region, ws.padBuf[best*k+int(ws.padHeads[best])])
				ws.padHeads[best]++
			}
			ws.candCnt[ti] = int32(len(region))
		}
	}

	// Deduplicate candidates into solver columns (first-seen order) and
	// build the restricted bipartite problem: one arc per mined pairing at
	// cost = tree distance of its LCA level, one column per worker bounded
	// by its remaining capacity, potentials seeded warm.
	clear(ws.dedup)
	ws.workers = ws.workers[:0]
	ws.arcLvl = ws.arcLvl[:0]
	for ti := 0; ti < nt; ti++ {
		for j := 0; j < int(ws.candCnt[ti]); j++ {
			c := ws.cands[ti*k+j]
			key := refKey{shard: ws.candSh[ti*k+j], node: c.Node, id: c.ID}
			if _, seen := ws.dedup[key]; !seen {
				ws.dedup[key] = int32(len(ws.workers))
				ws.workers = append(ws.workers, shardWorker{shard: key.shard, ref: c})
			}
		}
	}
	sol := ws.solver
	sol.Reset(nt, len(ws.workers))
	for w, sw := range ws.workers {
		sol.SetWorker(w, int(sw.ref.Cap), ws.warm[sw.ref.ID])
	}
	for ti := 0; ti < nt; ti++ {
		for j := 0; j < int(ws.candCnt[ti]); j++ {
			c := ws.cands[ti*k+j]
			key := refKey{shard: ws.candSh[ti*k+j], node: c.Node, id: c.ID}
			w := ws.dedup[key]
			if err := sol.AddArc(ti, int(w), hst.LevelDist(int(c.Level))); err != nil {
				// Unreachable: arcs are built from mined refs in task order
				// with finite level distances. Surfacing beats a silently
				// wrong matching.
				panic(fmt.Sprintf("engine: batch-optimal arc build: %v", err))
			}
			ws.arcLvl = append(ws.arcLvl, c.Level)
		}
	}
	sol.Run()

	// Extract and commit: consume one capacity unit per matched arc, then
	// bank the closing potentials for the next window's warm start.
	for ti, i := range ws.valid {
		a := sol.MatchedArc(ti)
		if a < 0 {
			continue
		}
		sw := ws.workers[sol.MatchedWorker(ti)]
		if !st.shards[sw.shard].index.ConsumeRef(sw.ref) {
			// Unreachable: the candidate was mined under the same locks
			// the commit holds. Surfacing beats silently double-booking.
			panic(fmt.Sprintf("engine: batch-optimal commit lost candidate %d", sw.ref.ID))
		}
		ids[i], lvls[i] = int(sw.ref.ID), int(ws.arcLvl[a])
	}
	for w, sw := range ws.workers {
		ws.warm[sw.ref.ID] = sol.WorkerPot(w)
	}
	return true
}

// PolicyNames lists the selectable policy specs for flag help.
func PolicyNames() []string {
	return []string{"greedy", "capacity-greedy", "batch-optimal", "batch-optimal:k=<n>"}
}

// PolicyByName resolves a policy spec: "greedy", "capacity-greedy",
// "batch-optimal", or "batch-optimal:k=<n>" for an explicit per-task
// candidate pool.
func PolicyByName(spec string) (Policy, error) {
	switch spec {
	case "", "greedy":
		return Greedy(), nil
	case "capacity-greedy":
		return CapacityGreedy(), nil
	case "batch-optimal":
		return BatchOptimal(0), nil
	}
	if rest, ok := strings.CutPrefix(spec, "batch-optimal:k="); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("engine: bad batch-optimal candidate pool %q", rest)
		}
		return BatchOptimal(k), nil
	}
	return nil, fmt.Errorf("engine: unknown policy %q (have %s)", spec, strings.Join(PolicyNames(), ", "))
}
