package engine

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"github.com/pombm/pombm/internal/flow"
	"github.com/pombm/pombm/internal/hst"
)

// Policy is the pluggable assignment rule: it decides which available
// worker serves each task, against the engine's sharded trie state. The
// decision methods are unexported — implementations need the engine's
// shard-locking internals, so policies live in this package and callers
// select one with Greedy, CapacityGreedy, BatchOptimal, or PolicyByName.
type Policy interface {
	// Name identifies the policy in stats, reports, and flags.
	Name() string
	// CapacityAware reports whether worker capacities above one are
	// honoured. The engine clamps every insert to capacity 1 otherwise, so
	// a non-capacity-aware policy always sees the paper's one-task-per-
	// worker pool.
	CapacityAware() bool

	assignOne(e *Engine, code hst.Code) (id, lcaLevel int, epoch int64, ok bool)
	assignWindow(e *Engine, codes []hst.Code) (ids, lcaLevels []int)
}

// greedyPolicy is the sequential nearest-worker rule of Alg. 4: each task
// pops the tree-nearest available worker, ties to the smallest id. With
// capacity enabled a pop consumes one capacity unit instead of the whole
// slot — the capacitated sequential rule — and with it disabled the policy
// is bit-identical to the engine's historical hardwired greedy.
type greedyPolicy struct {
	capacity bool
}

var (
	greedySingleton    = &greedyPolicy{capacity: false}
	capGreedySingleton = &greedyPolicy{capacity: true}
)

// Greedy returns the paper-faithful assignment policy: one task per worker
// slot, nearest worker in tree distance, ties to the smallest id. It is the
// default, and its serving path preserves the engine's zero-allocation
// steady-state contract.
func Greedy() Policy { return greedySingleton }

// CapacityGreedy returns the capacitated sequential rule: the same
// nearest-worker decision, but a worker with remaining capacity k serves up
// to k tasks, leaving the pool only when its last unit is consumed.
func CapacityGreedy() Policy { return capGreedySingleton }

func (p *greedyPolicy) Name() string {
	if p.capacity {
		return "capacity-greedy"
	}
	return "greedy"
}

func (p *greedyPolicy) CapacityAware() bool { return p.capacity }

func (p *greedyPolicy) assignOne(e *Engine, code hst.Code) (int, int, int64, bool) {
	return e.greedyAssignOne(code)
}

func (p *greedyPolicy) assignWindow(e *Engine, codes []hst.Code) ([]int, []int) {
	return e.greedyAssignWindow(codes)
}

// DefaultBatchTopK is the candidate pool mined per task by the
// batch-optimal policy when no explicit k is configured.
const DefaultBatchTopK = 8

// parallelMineMin is the window size below which candidate mining stays
// sequential: fanning goroutines across shards only pays once a window
// carries enough probes to amortise the spawn cost. Measured crossover on
// a multi-core host: at 8 shards the fan-out overhead (~2 µs of spawns and
// a wait) is repaid somewhere between 8 and 32 probes, so 16 keeps the
// mid-size windows that used to serialise on the parallel path without
// ever paying fan-out on windows too small to amortise it. Mining also
// never fans out under GOMAXPROCS=1 — goroutines without a second core are
// pure scheduling overhead.
const parallelMineMin = 16

// batchOptimalPolicy serves each batch window as one restricted bipartite
// matching: every task mines its top-k nearest candidates from the trie
// (non-destructively, by arena ref — no code string ever materialises),
// and the window is solved cost-optimally over the candidate union with
// the warm-started flow.Bipartite solver, worker capacities bounding how
// many tasks one candidate absorbs. One-task serving degenerates to the
// greedy rule (the cost-optimal choice for a single task is its nearest
// candidate), so only batch submissions pay the solve.
//
// The hot path is arena-backed end to end: all window scratch — candidate
// regions, pad lists, the dedup table, the solver — lives in a pooled
// windowScratch that reaches its high-water mark after a few windows and
// then serves steady state at single-digit allocations per window. Worker
// potentials (the solver's dual prices) carry from window to window keyed
// by worker id, so a typical task's augmenting search pops its final
// worker immediately; an epoch swap invalidates the warm state wholesale —
// the check is pointer identity on the epoch's state, so a scratch that
// last served another epoch (or another engine) always starts cold.
type batchOptimalPolicy struct {
	k    int
	pool sync.Pool // *windowScratch

	// Warm solver potentials, keyed by worker id, shared by every window
	// this policy serves. They live on the policy — not in the pooled
	// scratch — so the warm history a window sees does not depend on which
	// scratch the pool happened to hand out (the pipeline checks out two at
	// once); the matching a window picks among cost-equal alternatives can
	// depend on its seed potentials, and scratch-resident warmth would make
	// long-batch results depend on pool checkout order. warmMu guards the
	// map for the shared-policy case (one policy serving several engines);
	// within one engine every access is already ordered by the all-shards
	// lock session. warmState pins the potentials to the epoch state they
	// were learned under — any other state starts cold.
	warmMu    sync.Mutex
	warm      map[int32]float64
	warmState *epochState
}

// BatchOptimal returns the window-solving policy with a per-task candidate
// pool of k (≤ 0 selects DefaultBatchTopK). It is capacity-aware.
func BatchOptimal(k int) Policy {
	if k <= 0 {
		k = DefaultBatchTopK
	}
	p := &batchOptimalPolicy{k: k, warm: map[int32]float64{}}
	p.pool.New = func() any {
		return &windowScratch{
			dedup:  map[refKey]int32{},
			solver: flow.NewBipartite(),
		}
	}
	return p
}

func (p *batchOptimalPolicy) Name() string {
	return fmt.Sprintf("batch-optimal:k=%d", p.k)
}

func (p *batchOptimalPolicy) CapacityAware() bool { return true }

// TopK returns the per-task candidate pool, satisfying TopKer so a cluster
// coordinator mines with exactly this policy's k.
func (p *batchOptimalPolicy) TopK() int { return p.k }

func (p *batchOptimalPolicy) assignOne(e *Engine, code hst.Code) (int, int, int64, bool) {
	return e.greedyAssignOne(code)
}

func (p *batchOptimalPolicy) assignWindow(e *Engine, codes []hst.Code) ([]int, []int) {
	ids := make([]int, len(codes))
	lvls := make([]int, len(codes))
	for i := range ids {
		ids[i] = None
	}
	if len(codes) > batchWindowSize {
		// Long batches split into windows served through the mine/solve
		// pipeline (pipeline.go): window i's solve overlaps window i+1's
		// mining.
		for {
			st := e.state.Load()
			if p.solvePipelined(e, st, codes, ids, lvls) {
				return ids, lvls
			}
		}
	}
	for {
		st := e.state.Load()
		if p.solveWindow(e, st, codes, ids, lvls) {
			e.windows.n.Add(1)
			return ids, lvls
		}
	}
}

// refKey identifies one candidate across a window: the same worker mined
// by several tasks (or padded in from a foreign shard) must collapse to
// one solver column so its capacity is respected window-wide.
type refKey struct {
	shard int32
	node  int32
	id    int32
}

// shardWorker is a deduplicated candidate: the shard owning it plus its
// arena ref.
type shardWorker struct {
	shard int32
	ref   hst.CandidateRef
}

// windowScratch is the reusable arena behind one window solve. It lives in
// the policy's sync.Pool; every slice grows to the policy's (window × k)
// envelope once and is then reused, and the two maps are cleared, not
// reallocated. warm and lastState survive between windows — they are the
// warm-start seam.
type windowScratch struct {
	valid      []int32            // positions of well-formed tasks in the window
	taskShard  []int32            // own shard per valid task
	shardOff   []int32            // per-shard offsets into shardTasks (len S+1)
	shardTasks []int32            // valid-task positions grouped by own shard
	cands      []hst.CandidateRef // per-task candidate regions, k slots each
	candSh     []int32            // source shard per candidate slot
	candCnt    []int32            // live candidates per task
	padBuf     []hst.CandidateRef // per-shard smallest-k pad lists, k slots each
	padLen     []int32            // live pads per shard (-1 = not yet built)
	padHeads   []int32            // per-task pad merge cursors
	dedup      map[refKey]int32   // candidate → solver worker column
	workers    []shardWorker      // unique candidates, first-seen order
	arcLvl     []int32            // LCA level per solver arc
	genSnap    []uint64           // per-shard InsertGen at mine time (repair proof)
	solver     *flow.Bipartite
	wg         sync.WaitGroup
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growRef(s []hst.CandidateRef, n int) []hst.CandidateRef {
	if cap(s) < n {
		return make([]hst.CandidateRef, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// solveWindow serves one window under every shard lock (a window is a
// global decision; per-shard locking cannot express it). It reports false
// when an epoch swap won the lock race, in which case the caller retries
// against the new state. The body is a straight-line composition of the
// stage methods below; the pipelined long-batch path (pipeline.go)
// interleaves the same stages across two windows.
func (p *batchOptimalPolicy) solveWindow(e *Engine, st *epochState, codes []hst.Code, ids, lvls []int) bool {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		return false
	}

	ws := p.pool.Get().(*windowScratch)
	defer p.pool.Put(ws)
	if p.mineWindow(ws, st, codes, ids, lvls) == 0 {
		return true
	}
	p.padWindow(ws, st, codes)
	p.buildAndSolve(ws, st)
	p.commitWindow(ws, st, ids, lvls, nil)
	return true
}

// mineWindow admits the window's well-formed tasks, groups them by their
// own shard, and mines each task's own-shard top-k candidates (one batch
// per shard, fanned across goroutines for large windows). It returns the
// number of tasks needing a solve — 0 when the window or the pool is
// empty. Per-shard insert generations are snapshotted so a later repair
// (pipeline speculation) can prove the mined refs were never redirected.
// Caller holds every shard lock.
func (p *batchOptimalPolicy) mineWindow(ws *windowScratch, st *epochState, codes []hst.Code, ids, lvls []int) int {
	// Valid tasks only; malformed codes answer None without touching state.
	ws.valid = ws.valid[:0]
	for i, code := range codes {
		ids[i], lvls[i] = None, 0
		if st.tree.CheckCode(code) == nil {
			ws.valid = append(ws.valid, int32(i))
		}
	}
	pool := 0
	for i := range st.shards {
		pool += st.shards[i].index.Len()
	}
	nt, S := len(ws.valid), len(st.shards)
	if nt == 0 || pool == 0 {
		return 0
	}
	k := p.k
	ws.genSnap = growU64(ws.genSnap, S)
	for s := 0; s < S; s++ {
		ws.genSnap[s] = st.shards[s].index.InsertGen()
	}

	// Group tasks by their own shard (every worker sharing the task's top
	// branch lives there), so each shard's probes run as one batch.
	ws.taskShard = growI32(ws.taskShard, nt)
	ws.shardOff = growI32(ws.shardOff, S+1)
	ws.shardTasks = growI32(ws.shardTasks, nt)
	for i := range ws.shardOff {
		ws.shardOff[i] = 0
	}
	for ti, i := range ws.valid {
		s := int32(st.shardIdx(codes[i]))
		ws.taskShard[ti] = s
		ws.shardOff[s+1]++
	}
	for s := 0; s < S; s++ {
		ws.shardOff[s+1] += ws.shardOff[s]
	}
	fill := ws.shardOff // reuse as cursors; restore below
	for ti := range ws.taskShard {
		s := ws.taskShard[ti]
		ws.shardTasks[fill[s]] = int32(ti)
		fill[s]++
	}
	for s := S; s > 0; s-- {
		ws.shardOff[s] = ws.shardOff[s-1]
	}
	ws.shardOff[0] = 0

	// Mine each task's own-shard top-k, one batch per shard. The probes
	// are independent across shards — each touches only its shard's index
	// (whose scratch buffers make NearestKRef exclusive per shard), and
	// every shard lock is already held — so large windows fan out across
	// goroutines.
	ws.cands = growRef(ws.cands, nt*k)
	ws.candSh = growI32(ws.candSh, nt*k)
	ws.candCnt = growI32(ws.candCnt, nt)
	mineShard := func(s int) {
		for _, ti := range ws.shardTasks[ws.shardOff[s]:ws.shardOff[s+1]] {
			code := codes[ws.valid[ti]]
			region := ws.cands[int(ti)*k : int(ti)*k : (int(ti)+1)*k]
			got := st.shards[s].index.NearestKRef(code, k, region)
			ws.candCnt[ti] = int32(len(got))
			for j := range got {
				ws.candSh[int(ti)*k+j] = int32(s)
			}
		}
	}
	if nt >= parallelMineMin && S > 1 && runtime.GOMAXPROCS(0) > 1 {
		for s := 0; s < S; s++ {
			if ws.shardOff[s] == ws.shardOff[s+1] {
				continue
			}
			ws.wg.Add(1)
			go func(s int) {
				defer ws.wg.Done()
				mineShard(s)
			}(s)
		}
		ws.wg.Wait()
	} else {
		for s := 0; s < S; s++ {
			mineShard(s)
		}
	}
	return nt
}

// padWindow tops up tasks whose own shard mined fewer than k candidates
// with cross-shard pads. Caller holds every shard lock; run it after any
// repair, never before — pads are built against the live pool.
func (p *batchOptimalPolicy) padWindow(ws *windowScratch, st *epochState, codes []hst.Code) {
	nt, S, k := len(ws.valid), len(st.shards), p.k

	// Pad tasks whose own shard ran short with the smallest-id workers
	// from the other shards. Under plain sharding every foreign worker sits
	// at the maximal LCA level and they are all equidistant; under
	// sub-sharding the sibling sub-shards of the task's top branch are one
	// level closer (depth−1: they hold exactly the workers sharing the
	// task's first digit), so the merge ranks pads by (level, id), sibling
	// groups first, and restamps their level. Instead of snapshotting whole
	// shards, each foreign shard contributes a keep-k list (a task needs at
	// most k pads even if one shard supplies them all), built lazily once
	// per window and merge-scanned per task — no padded rows ever
	// materialise.
	if S > 1 {
		ws.padLen = growI32(ws.padLen, S)
		ws.padHeads = growI32(ws.padHeads, S)
		for s := range ws.padLen {
			ws.padLen[s] = -1 // unbuilt
		}
		ws.padBuf = growRef(ws.padBuf, S*k)
		for ti := 0; ti < nt; ti++ {
			need := k - int(ws.candCnt[ti])
			if need <= 0 {
				continue
			}
			own := ws.taskShard[ti]
			q0 := -1
			if st.sub > 1 {
				q0 = int(codes[ws.valid[ti]][0])
			}
			padLvl := func(s int) int32 {
				if q0 >= 0 && s%st.degree == q0 {
					return int32(st.depth - 1)
				}
				return int32(st.depth)
			}
			for s := 0; s < S; s++ {
				ws.padHeads[s] = 0
				if ws.padLen[s] < 0 && int32(s) != own {
					region := ws.padBuf[s*k : s*k : (s+1)*k]
					got := st.shards[s].index.SmallestKRef(k, st.depth, region)
					ws.padLen[s] = int32(len(got))
				}
			}
			region := ws.cands[int(ti)*k : int(ti)*k+int(ws.candCnt[ti]) : (int(ti)+1)*k]
			for ; need > 0; need-- {
				best := -1
				for s := 0; s < S; s++ {
					if int32(s) == own || ws.padHeads[s] >= ws.padLen[s] {
						continue
					}
					if best < 0 {
						best = s
						continue
					}
					ls, lb := padLvl(s), padLvl(best)
					if ls < lb || (ls == lb &&
						ws.padBuf[s*k+int(ws.padHeads[s])].ID < ws.padBuf[best*k+int(ws.padHeads[best])].ID) {
						best = s
					}
				}
				if best < 0 {
					break
				}
				c := ws.padBuf[best*k+int(ws.padHeads[best])]
				c.Level = padLvl(best)
				ws.candSh[int(ti)*k+len(region)] = int32(best)
				region = append(region, c)
				ws.padHeads[best]++
			}
			ws.candCnt[ti] = int32(len(region))
		}
	}
}

// buildAndSolve deduplicates candidates into solver columns (first-seen
// order), builds the restricted bipartite problem — one arc per mined
// pairing at cost = tree distance of its LCA level, one column per worker
// bounded by its remaining capacity, potentials seeded from the policy's
// warm map — and runs the solver. It reads only the scratch's mined refs
// and the warm map (learned under st, else cleared), never the tries, so
// the pipeline runs it concurrently with the next window's mining.
func (p *batchOptimalPolicy) buildAndSolve(ws *windowScratch, st *epochState) {
	nt, k := len(ws.valid), p.k
	clear(ws.dedup)
	ws.workers = ws.workers[:0]
	ws.arcLvl = ws.arcLvl[:0]
	for ti := 0; ti < nt; ti++ {
		for j := 0; j < int(ws.candCnt[ti]); j++ {
			c := ws.cands[ti*k+j]
			key := refKey{shard: ws.candSh[ti*k+j], node: c.Node, id: c.ID}
			if _, seen := ws.dedup[key]; !seen {
				ws.dedup[key] = int32(len(ws.workers))
				ws.workers = append(ws.workers, shardWorker{shard: key.shard, ref: c})
			}
		}
	}
	sol := ws.solver
	sol.Reset(nt, len(ws.workers))
	p.warmMu.Lock()
	if p.warmState != st {
		clear(p.warm)
		p.warmState = st
	}
	for w, sw := range ws.workers {
		sol.SetWorker(w, int(sw.ref.Cap), p.warm[sw.ref.ID])
	}
	p.warmMu.Unlock()
	for ti := 0; ti < nt; ti++ {
		for j := 0; j < int(ws.candCnt[ti]); j++ {
			c := ws.cands[ti*k+j]
			key := refKey{shard: ws.candSh[ti*k+j], node: c.Node, id: c.ID}
			w := ws.dedup[key]
			if err := sol.AddArc(ti, int(w), hst.LevelDist(int(c.Level))); err != nil {
				// Unreachable: arcs are built from mined refs in task order
				// with finite level distances. Surfacing beats a silently
				// wrong matching.
				panic(fmt.Sprintf("engine: batch-optimal arc build: %v", err))
			}
			ws.arcLvl = append(ws.arcLvl, c.Level)
		}
	}
	sol.Run()
}

// commitWindow consumes one capacity unit per matched arc, stamps the
// window's answers, and banks the closing potentials for the next
// window's warm start. dirty, when non-nil, collects the shards the
// commit consumed from, so the pipeline's repair pass knows which mined
// speculation to re-verify. Caller holds every shard lock; between the
// mine that produced these refs and this commit nothing may have mutated
// the tries except earlier commits (which repair accounts for), so a
// missing candidate is a bug, not a race.
func (p *batchOptimalPolicy) commitWindow(ws *windowScratch, st *epochState, ids, lvls []int, dirty []bool) {
	sol := ws.solver
	for ti, i := range ws.valid {
		a := sol.MatchedArc(ti)
		if a < 0 {
			continue
		}
		sw := ws.workers[sol.MatchedWorker(ti)]
		if !st.shards[sw.shard].index.ConsumeRef(sw.ref) {
			// Unreachable: the candidate was mined under the same locks
			// the commit holds. Surfacing beats silently double-booking.
			panic(fmt.Sprintf("engine: batch-optimal commit lost candidate %d", sw.ref.ID))
		}
		st.shards[sw.shard].assigns++
		if dirty != nil {
			dirty[sw.shard] = true
		}
		ids[i], lvls[i] = int(sw.ref.ID), int(ws.arcLvl[a])
	}
	p.warmMu.Lock()
	if p.warmState == st {
		for w, sw := range ws.workers {
			p.warm[sw.ref.ID] = sol.WorkerPot(w)
		}
	}
	p.warmMu.Unlock()
}

// PolicyNames lists the selectable policy specs for flag help.
func PolicyNames() []string {
	return []string{"greedy", "capacity-greedy", "batch-optimal", "batch-optimal:k=<n>"}
}

// PolicyByName resolves a policy spec: "greedy", "capacity-greedy",
// "batch-optimal", or "batch-optimal:k=<n>" for an explicit per-task
// candidate pool.
func PolicyByName(spec string) (Policy, error) {
	switch spec {
	case "", "greedy":
		return Greedy(), nil
	case "capacity-greedy":
		return CapacityGreedy(), nil
	case "batch-optimal":
		return BatchOptimal(0), nil
	}
	if rest, ok := strings.CutPrefix(spec, "batch-optimal:k="); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("engine: bad batch-optimal candidate pool %q", rest)
		}
		return BatchOptimal(k), nil
	}
	return nil, fmt.Errorf("engine: unknown policy %q (have %s)", spec, strings.Join(PolicyNames(), ", "))
}
