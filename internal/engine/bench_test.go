package engine_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// BenchmarkBatchOptimalWindow measures one steady-state batch-optimal
// window end to end (mine, pad, solve, commit, reinsert), per task. It is
// the in-repo twin of the enginebench policy-batchopt rows: profile this
// to see where a window's time goes.
func BenchmarkBatchOptimalWindow(b *testing.B) {
	tree := buildTree(b, 64, 9)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.BatchOptimal(8)))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(33)
	const n = 16384
	codes := make([]hst.Code, n)
	for i := range codes {
		codes[i] = randCode(tree, src)
		if err := e.Insert(codes[i], i); err != nil {
			b.Fatal(err)
		}
	}
	const window = 256
	batch := make([]hst.Code, window)
	runWindow := func() {
		for i := range batch {
			batch[i] = codes[src.Intn(n)]
		}
		ids, _ := e.AssignBatch(batch)
		for _, id := range ids {
			if id >= 0 {
				if err := e.Insert(codes[id], id); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 20; i++ {
		runWindow() // reach the scratch pool's high-water mark
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWindow()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*window), "ns/task")
}

// BenchmarkAssignBatchParallel measures greedy AssignBatch throughput at
// several submitter counts and reports each multi-goroutine run's speedup
// over the 1-goroutine run of the same invocation. The gomaxprocs metric
// records how many cores the row actually had: when it is below the
// goroutine count the row is an interleaving measurement, not a scaling
// one, and no speedup is reported (the honest counterpart of the capped
// rows in BENCH_engine.json).
func BenchmarkAssignBatchParallel(b *testing.B) {
	tree := buildTree(b, 64, 10)
	src := rng.New(55)
	const nWorkers = 16384
	const nTasks = 4096
	workerCodes := make([]hst.Code, nWorkers)
	for i := range workerCodes {
		workerCodes[i] = randCode(tree, src)
	}
	taskCodes := make([]hst.Code, nTasks)
	for i := range taskCodes {
		taskCodes[i] = randCode(tree, src)
	}

	baseline := 0.0 // 1-goroutine ns/task, cached across the sub-benchmarks
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			e, err := engine.New(tree, 0)
			if err != nil {
				b.Fatal(err)
			}
			for i, c := range workerCodes {
				if err := e.Insert(c, i); err != nil {
					b.Fatal(err)
				}
			}
			chunk := (nTasks + g - 1) / g
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for k := 0; k < g; k++ {
					lo := k * chunk
					hi := min(lo+chunk, nTasks)
					if lo >= hi {
						break
					}
					wg.Add(1)
					go func(batch []hst.Code) {
						defer wg.Done()
						e.AssignBatch(batch)
					}(taskCodes[lo:hi])
				}
				wg.Wait()
				b.StopTimer()
				// Refill the pool so every iteration assigns from the same
				// 16384-worker state.
				for id := 0; id < nWorkers; id++ {
					e.Remove(workerCodes[id], id)
				}
				for id, c := range workerCodes {
					if err := e.Insert(c, id); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			b.StopTimer()
			nsPerTask := float64(b.Elapsed().Nanoseconds()) / float64(b.N*nTasks)
			b.ReportMetric(nsPerTask, "ns/task")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			if g == 1 {
				baseline = nsPerTask
			} else if baseline > 0 && runtime.GOMAXPROCS(0) >= g && nsPerTask > 0 {
				b.ReportMetric(baseline/nsPerTask, "speedup")
			}
		})
	}
}
