package engine_test

import (
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// BenchmarkBatchOptimalWindow measures one steady-state batch-optimal
// window end to end (mine, pad, solve, commit, reinsert), per task. It is
// the in-repo twin of the enginebench policy-batchopt rows: profile this
// to see where a window's time goes.
func BenchmarkBatchOptimalWindow(b *testing.B) {
	tree := buildTree(b, 64, 9)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.BatchOptimal(8)))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(33)
	const n = 16384
	codes := make([]hst.Code, n)
	for i := range codes {
		codes[i] = randCode(tree, src)
		if err := e.Insert(codes[i], i); err != nil {
			b.Fatal(err)
		}
	}
	const window = 256
	batch := make([]hst.Code, window)
	runWindow := func() {
		for i := range batch {
			batch[i] = codes[src.Intn(n)]
		}
		ids, _ := e.AssignBatch(batch)
		for _, id := range ids {
			if id >= 0 {
				if err := e.Insert(codes[id], id); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 20; i++ {
		runWindow() // reach the scratch pool's high-water mark
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWindow()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*window), "ns/task")
}
