package engine_test

import (
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// TestAssignZeroAllocSteadyState pins the serving hot path's allocation
// contract: in steady state (assignments balanced by released workers, the
// shard arenas at their high-water mark) Engine.Assign on the fast path
// must not allocate at all.
func TestAssignZeroAllocSteadyState(t *testing.T) {
	tree := buildTree(t, 16, 9)
	e, err := engine.New(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(21)
	const n = 1024
	codes := make([]hst.Code, n)
	for i := range codes {
		codes[i] = randCode(tree, src)
		if err := e.Insert(codes[i], i); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every shard's arenas and freelists through one churn cycle.
	for i := 0; i < 4*n; i++ {
		q := codes[src.Intn(n)]
		if id, _, ok := e.Assign(q); ok {
			if err := e.Insert(codes[id], id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Querying at a live worker's own code keeps the assignment on the
	// single-shard fast path (LCA level 0 < depth).
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		q := codes[i%n]
		i++
		id, _, ok := e.Assign(q)
		if !ok {
			t.Fatal("assign failed on a populated engine")
		}
		if err := e.Insert(codes[id], id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Engine.Assign steady state allocates %.1f/op, want 0", allocs)
	}
}
