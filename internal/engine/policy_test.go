package engine_test

import (
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// refPool is the pre-refactor sequential reference: the scanning rule of
// Alg. 4 exactly as match.HSTGreedyScan implements it — minimal LCA level,
// ties to the lowest id — over a live map of available workers.
type refPool struct {
	tree  *hst.Tree
	codes map[int]hst.Code
}

func (r *refPool) assign(code hst.Code) (id, lvl int, ok bool) {
	if r.tree.CheckCode(code) != nil || len(r.codes) == 0 {
		return engine.None, 0, false
	}
	best, bestLvl := -1, r.tree.Depth()+1
	for i, c := range r.codes {
		l := r.tree.LCALevel(code, c)
		if l < bestLvl || (l == bestLvl && i < best) {
			best, bestLvl = i, l
		}
	}
	delete(r.codes, best)
	return best, bestLvl, true
}

// TestGreedyDifferentialOpTape is the refactor's acceptance test: random
// operation tapes — insert, assign, withdraw, epoch rotation — replayed
// through the policy-seamed engine under Greedy and through the
// pre-refactor scanning semantics must produce identical assignments,
// decision for decision, at several shard counts.
func TestGreedyDifferentialOpTape(t *testing.T) {
	// 33 and 1000 land past any grid-16 tree's degree, driving the
	// sub-sharded (second-digit split) layout through the same tape.
	for _, shards := range []int{1, 3, 8, 33, 1000} {
		for seed := uint64(1); seed <= 3; seed++ {
			tree := buildTree(t, 16, 40+seed)
			e, err := engine.New(tree, shards)
			if err != nil {
				t.Fatal(err)
			}
			if e.Policy().Name() != "greedy" {
				t.Fatalf("default policy = %q", e.Policy().Name())
			}
			ref := &refPool{tree: tree, codes: map[int]hst.Code{}}
			src := rng.New(900 + seed)
			nextID := 0
			epoch := int64(engine.FirstEpoch)
			live := []int{} // ids currently available, for withdraw picks
			reinsert := func(id int, code hst.Code) {
				if err := e.InsertEpoch(code, id, epoch); err != nil {
					t.Fatal(err)
				}
				ref.codes[id] = code
				live = append(live, id)
			}
			for step := 0; step < 600; step++ {
				switch op := src.Intn(10); {
				case op < 4: // insert
					code := randCode(tree, src)
					reinsert(nextID, code)
					nextID++
				case op < 8: // assign
					q := randCode(tree, src)
					gid, glvl, gok := e.Assign(q)
					wid, wlvl, wok := ref.assign(q)
					if gid != wid || glvl != wlvl || gok != wok {
						t.Fatalf("shards=%d seed=%d step %d: engine (%d,%d,%v) ≠ scan (%d,%d,%v)",
							shards, seed, step, gid, glvl, gok, wid, wlvl, wok)
					}
					if gok {
						for i, id := range live {
							if id == gid {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
				case op < 9: // withdraw a random available worker
					if len(live) == 0 {
						continue
					}
					i := src.Intn(len(live))
					id := live[i]
					code := ref.codes[id]
					if !e.Remove(code, id) {
						t.Fatalf("step %d: Remove(%d) failed", step, id)
					}
					delete(ref.codes, id)
					live = append(live[:i], live[i+1:]...)
				default: // rotate: fresh tree, re-obfuscated population
					epoch++
					newTree := buildTree(t, 16, 7000+uint64(step)+seed)
					inserts := make([]engine.EpochInsert, 0, len(live))
					newCodes := map[int]hst.Code{}
					for _, id := range live {
						c := randCode(newTree, src)
						inserts = append(inserts, engine.EpochInsert{Code: c, ID: id})
						newCodes[id] = c
					}
					if err := e.SwapEpoch(epoch, newTree, 0, inserts); err != nil {
						t.Fatal(err)
					}
					tree = newTree
					ref.tree = newTree
					ref.codes = newCodes
				}
			}
			if e.Len() != len(ref.codes) {
				t.Fatalf("shards=%d seed=%d: pool %d ≠ reference %d", shards, seed, e.Len(), len(ref.codes))
			}
		}
	}
}

func TestCapacityGreedyConsumesUnits(t *testing.T) {
	tree := buildTree(t, 8, 11)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.CapacityGreedy()))
	if err != nil {
		t.Fatal(err)
	}
	c := tree.CodeOf(3)
	if err := e.InsertCapEpoch(c, 0, 3, 0); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 || e.CapacityUnits() != 3 {
		t.Fatalf("Len=%d Units=%d, want 1/3", e.Len(), e.CapacityUnits())
	}
	for i := 0; i < 3; i++ {
		id, lvl, ok := e.Assign(c)
		if !ok || id != 0 || lvl != 0 {
			t.Fatalf("assign %d = (%d,%d,%v)", i, id, lvl, ok)
		}
	}
	if _, _, ok := e.Assign(c); ok {
		t.Error("assign succeeded on an exhausted worker")
	}
	if e.Len() != 0 || e.CapacityUnits() != 0 {
		t.Fatalf("Len=%d Units=%d after draining", e.Len(), e.CapacityUnits())
	}
}

// TestGreedyClampsCapacity pins the paper-faithful contract: under the
// default policy every slot serves exactly one task, whatever capacity the
// insert requested.
func TestGreedyClampsCapacity(t *testing.T) {
	tree := buildTree(t, 8, 12)
	e, err := engine.New(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := tree.CodeOf(5)
	if err := e.InsertCapEpoch(c, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if e.CapacityUnits() != 1 {
		t.Fatalf("Units = %d under greedy, want 1", e.CapacityUnits())
	}
	if _, _, ok := e.Assign(c); !ok {
		t.Fatal("first assign failed")
	}
	if _, _, ok := e.Assign(c); ok {
		t.Error("greedy served a second task from one slot")
	}
}

func TestDefaultCapacityNeedsCapacityAwarePolicy(t *testing.T) {
	tree := buildTree(t, 8, 13)
	if _, err := engine.NewWithOptions(tree, 0, engine.WithDefaultCapacity(2)); err == nil {
		t.Error("default capacity 2 accepted under greedy")
	}
	if _, err := engine.NewWithOptions(tree, 0, engine.WithDefaultCapacity(0)); err == nil {
		t.Error("zero default capacity accepted")
	}
	e, err := engine.NewWithOptions(tree, 0,
		engine.WithPolicy(engine.CapacityGreedy()), engine.WithDefaultCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(tree.CodeOf(0), 0); err != nil {
		t.Fatal(err)
	}
	if e.CapacityUnits() != 4 {
		t.Fatalf("Units = %d, want the default capacity 4", e.CapacityUnits())
	}
}

func TestAddCapacityRoundTrip(t *testing.T) {
	tree := buildTree(t, 8, 14)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.CapacityGreedy()))
	if err != nil {
		t.Fatal(err)
	}
	c := tree.CodeOf(9)
	if err := e.InsertCapEpoch(c, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	// Consume both units, then return them one at a time: the second return
	// must re-insert the fully drained slot.
	e.Assign(c)
	e.Assign(c)
	if e.Len() != 0 {
		t.Fatal("slot not drained")
	}
	if err := e.AddCapacity(c, 2); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 || e.CapacityUnits() != 1 {
		t.Fatalf("Len=%d Units=%d after first return", e.Len(), e.CapacityUnits())
	}
	if err := e.AddCapacity(c, 2); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 || e.CapacityUnits() != 2 {
		t.Fatalf("Len=%d Units=%d after second return", e.Len(), e.CapacityUnits())
	}
	if id, _, ok := e.Assign(c); !ok || id != 2 {
		t.Fatalf("assign after returns = (%d,%v)", id, ok)
	}
}

// TestBatchOptimalAvoidsGreedySteal is the window-solving policy's raison
// d'être: a first task that would greedily grab a second task's co-located
// worker is instead routed to the equidistant alternative, minimising the
// window's total tree distance.
func TestBatchOptimalAvoidsGreedySteal(t *testing.T) {
	tree := buildTree(t, 16, 15)
	c1 := tree.CodeOf(0) // worker 0's leaf; task 2 sits here too
	near := []byte(c1)
	near[len(near)-1] = byte((int(near[len(near)-1]) + 1) % tree.Degree())
	taskA := hst.Code(near) // LCA level 1 with c1
	far := []byte(c1)
	far[0] = byte((int(far[0]) + 1) % tree.Degree())
	c2 := hst.Code(far) // worker 1's leaf, across the root

	build := func(p engine.Policy) *engine.Engine {
		e, err := engine.NewWithOptions(tree, 1, engine.WithPolicy(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Insert(c1, 0); err != nil {
			t.Fatal(err)
		}
		if err := e.Insert(c2, 1); err != nil {
			t.Fatal(err)
		}
		return e
	}
	window := []hst.Code{taskA, c1}

	gIDs, _ := build(engine.Greedy()).AssignBatch(window)
	if gIDs[0] != 0 || gIDs[1] != 1 {
		t.Fatalf("greedy assigned %v, want [0 1]", gIDs)
	}
	bIDs, bLvls := build(engine.BatchOptimal(4)).AssignBatch(window)
	if bIDs[0] != 1 || bIDs[1] != 0 {
		t.Fatalf("batch-optimal assigned %v, want [1 0]", bIDs)
	}
	if bLvls[1] != 0 {
		t.Fatalf("batch-optimal matched the co-located pair at level %d", bLvls[1])
	}
}

// TestBatchOptimalPadsAcrossShards: tasks whose own shard is empty must
// still be served, from the cross-shard pad pool, smallest ids first.
func TestBatchOptimalPadsAcrossShards(t *testing.T) {
	tree := buildTree(t, 16, 16)
	e, err := engine.NewWithOptions(tree, 8, engine.WithPolicy(engine.BatchOptimal(2)))
	if err != nil {
		t.Fatal(err)
	}
	// All workers in top branch 1; all tasks in top branch 0 (different
	// shard as long as the engine kept ≥ 2 shards).
	if e.Shards() < 2 {
		t.Skip("tree degree clamped the engine to one shard")
	}
	wcode := []byte(tree.CodeOf(0))
	wcode[0] = 1
	for id := 0; id < 4; id++ {
		if err := e.Insert(hst.Code(wcode), id); err != nil {
			t.Fatal(err)
		}
	}
	tcode := []byte(tree.CodeOf(0))
	tcode[0] = 0
	ids, lvls := e.AssignBatch([]hst.Code{hst.Code(tcode), hst.Code(tcode)})
	if ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("pad assignment %v, want [0 1]", ids)
	}
	for _, lvl := range lvls {
		if lvl != tree.Depth() {
			t.Fatalf("pad levels %v, want all %d", lvls, tree.Depth())
		}
	}
	if e.Windows() != 1 {
		t.Errorf("Windows = %d, want 1", e.Windows())
	}
}

// TestBatchOptimalRespectsCapacity: a single capacitated worker can absorb
// a whole window.
func TestBatchOptimalRespectsCapacity(t *testing.T) {
	tree := buildTree(t, 8, 17)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.BatchOptimal(0)))
	if err != nil {
		t.Fatal(err)
	}
	c := tree.CodeOf(1)
	if err := e.InsertCapEpoch(c, 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	ids, _ := e.AssignBatch([]hst.Code{c, c, c})
	assigned := 0
	for _, id := range ids {
		if id == 0 {
			assigned++
		} else if id != engine.None {
			t.Fatalf("unexpected worker %d", id)
		}
	}
	if assigned != 2 {
		t.Fatalf("capacitated worker served %d tasks, want 2", assigned)
	}
	if e.Len() != 0 {
		t.Error("exhausted worker still in the pool")
	}
}

func TestEpochInsertCarriesCapacity(t *testing.T) {
	tree := buildTree(t, 8, 18)
	e, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(engine.CapacityGreedy()))
	if err != nil {
		t.Fatal(err)
	}
	next := buildTree(t, 8, 19)
	c := next.CodeOf(2)
	if err := e.SwapEpoch(2, next, 0, []engine.EpochInsert{{Code: c, ID: 7, Cap: 2}}); err != nil {
		t.Fatal(err)
	}
	if e.CapacityUnits() != 2 {
		t.Fatalf("Units = %d after swap, want 2", e.CapacityUnits())
	}
	for i := 0; i < 2; i++ {
		if id, _, ok := e.Assign(c); !ok || id != 7 {
			t.Fatalf("assign %d = (%d,%v)", i, id, ok)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	cases := map[string]string{
		"":                  "greedy",
		"greedy":            "greedy",
		"capacity-greedy":   "capacity-greedy",
		"batch-optimal":     "batch-optimal:k=8",
		"batch-optimal:k=3": "batch-optimal:k=3",
	}
	for spec, want := range cases {
		p, err := engine.PolicyByName(spec)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", spec, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"optimal", "batch-optimal:k=0", "batch-optimal:k=x"} {
		if _, err := engine.PolicyByName(bad); err == nil {
			t.Errorf("PolicyByName(%q) accepted", bad)
		}
	}
}
