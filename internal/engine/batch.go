package engine

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/pombm/pombm/internal/hst"
)

// This file is the greedy policies' routed batch path: instead of walking
// the batch task by task (locking shards as the walk crosses them), the
// batch is grouped by destination shard and every shard's group is served
// in task order under a single lock acquisition — one goroutine per
// non-empty shard when more than one core is available. The pops taken in
// that pass are speculative: a task whose own shard cannot resolve it
// needs the cross-shard decision, and that decision must see the pool *as
// it was at the task's position in the batch*, not as the speculative
// pass left it. The resolution pass therefore runs under all shard locks
// and, for each fallback in batch order, reconstructs the task-time pool
// view from the speculative pops still outstanding after it: the winning
// worker is the smallest id over every shard's current minimum and every
// later speculative pop, and if the winner is buried under later pops the
// winner's shard is rolled back past them, the winner popped, and the
// rolled-back tasks replayed in order (a replayed task may lose its
// worker to the fallback — exactly as it would have sequentially).
//
// The invariant this buys: with writers quiesced, AssignBatch through the
// routed path returns bit-identical results to assigning the codes one by
// one — independent of how many goroutines served the speculative pass —
// because per-shard serving is order-preserving, shards are disjoint, and
// the resolution replay reconstructs exact sequential pool states. Under
// concurrent writers the per-answer guarantee is the same as Assign's:
// each pop is tree-nearest among the workers available at that instant.
//
// An epoch swap observed by a shard group refuses the whole group; its
// tasks re-route against the new state in a fresh round, matching the
// sequential path's retry-on-swap semantics.

// batchRouteMin is the batch size below which AssignBatch keeps the
// sequential amortised path: grouping, a scratch checkout, and (on
// multi-core hosts) goroutine fan-out only pay for themselves once a
// batch carries enough tasks to spread over the shards.
const batchRouteMin = 16

// batchRouteThreshold is batchRouteMin behind a test seam (see
// export_test.go); serving code treats it as a constant.
var batchRouteThreshold = batchRouteMin

// Entry lifecycle in one routed round. Entries are the round's
// well-formed tasks, indexed in batch order, so comparing entry indexes
// compares batch positions.
const (
	batchPending  uint8 = iota // grouped, not yet served
	batchPopped                // holds a speculative pop (undoable)
	batchFailed                // own-shard probe missed; awaiting resolution
	batchResolved              // final answer written; never revisited
	batchReroute               // epoch swap won; redo on the new state
)

// batchScratch is the pooled workspace of one routed AssignBatch: the
// grouping arrays, the per-entry lifecycle state, and the undo log (the
// popped worker and the leaf code it was popped from, which is exactly
// what AddCap needs to put the unit back). Slices grow to the caller's
// batch envelope once and are reused.
type batchScratch struct {
	cur, nxt   []int32 // this round's positions / next round's re-routes
	entryPos   []int32 // batch position per entry
	taskShard  []int32 // destination shard per entry
	shardOff   []int32 // per-shard offsets into shardTasks (len S+1)
	shardTasks []int32 // entries grouped by shard, batch order within
	status     []uint8
	undoID     []int32 // speculative pop's worker, valid when batchPopped
	slab       []byte  // depth bytes per entry: the popped worker's leaf
	wg         sync.WaitGroup
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// routedAssignWindow serves one greedy batch through the shard-routed
// path. Rounds retry only the positions an epoch swap refused.
func (e *Engine) routedAssignWindow(codes []hst.Code) (ids, lcaLevels []int) {
	ids = make([]int, len(codes))
	lvls := make([]int, len(codes))
	bs := batchScratchPool.Get().(*batchScratch)
	cur := growI32(bs.cur, len(codes))
	for i := range cur {
		cur[i] = int32(i)
	}
	nxt := bs.nxt[:0]
	for len(cur) > 0 {
		st := e.state.Load()
		if st.depth == 0 || len(st.shards) == 1 {
			// A swap shrank the engine under the batch (or the gate raced a
			// shrink): no routing structure to exploit; serve the remainder
			// through the one-task path, which handles further swaps itself.
			for _, p := range cur {
				id, lvl, _, ok := e.greedyAssignOne(codes[p])
				if !ok {
					id, lvl = None, 0
				}
				ids[p], lvls[p] = id, lvl
			}
			break
		}
		nxt = e.serveBatchRound(bs, st, codes, cur, ids, lvls, nxt)
		cur, nxt = nxt, cur[:0]
	}
	bs.cur, bs.nxt = cur[:0], nxt[:0]
	batchScratchPool.Put(bs)
	return ids, lvls
}

// serveBatchRound runs one speculative pass plus (if needed) one
// resolution pass against st, appending any swap-refused positions to nxt.
func (e *Engine) serveBatchRound(bs *batchScratch, st *epochState, codes []hst.Code, cur []int32, ids, lvls []int, nxt []int32) []int32 {
	depth, S := st.depth, len(st.shards)

	// Admit well-formed tasks as entries; malformed codes answer None
	// without touching state, exactly like the sequential path.
	bs.entryPos = bs.entryPos[:0]
	for _, p := range cur {
		ids[p], lvls[p] = None, 0
		if st.tree.CheckCode(codes[p]) == nil {
			bs.entryPos = append(bs.entryPos, p)
		}
	}
	ne := len(bs.entryPos)
	if ne == 0 {
		return nxt
	}
	bs.taskShard = growI32(bs.taskShard, ne)
	bs.shardOff = growI32(bs.shardOff, S+1)
	bs.shardTasks = growI32(bs.shardTasks, ne)
	bs.status = growBytes(bs.status, ne)
	bs.undoID = growI32(bs.undoID, ne)
	bs.slab = growBytes(bs.slab, ne*depth)
	for i := range bs.shardOff {
		bs.shardOff[i] = 0
	}
	for j, p := range bs.entryPos {
		s := int32(st.shardIdx(codes[p]))
		bs.taskShard[j] = s
		bs.status[j] = batchPending
		bs.shardOff[s+1]++
	}
	for s := 0; s < S; s++ {
		bs.shardOff[s+1] += bs.shardOff[s]
	}
	fill := bs.shardOff // reuse as cursors; restored below
	for j := range bs.taskShard {
		s := bs.taskShard[j]
		bs.shardTasks[fill[s]] = int32(j)
		fill[s]++
	}
	for s := S; s > 0; s-- {
		bs.shardOff[s] = bs.shardOff[s-1]
	}
	bs.shardOff[0] = 0

	// Speculative pass: each shard serves its group in batch order under
	// one lock hold. Groups touch disjoint entries and disjoint tries, so
	// they fan out across goroutines when a second core exists to run them.
	limit := st.ownLimit()
	serve := func(s int) {
		sh := &st.shards[s]
		grp := bs.shardTasks[bs.shardOff[s]:bs.shardOff[s+1]]
		sh.mu.Lock()
		if e.state.Load() != st {
			sh.mu.Unlock()
			for _, j := range grp {
				bs.status[j] = batchReroute
			}
			return
		}
		for _, j := range grp {
			p := bs.entryPos[j]
			id, lvl, ok := sh.index.PopNearestWithinCode(codes[p], limit, bs.slab[int(j)*depth:(int(j)+1)*depth])
			if ok {
				sh.assigns++
				ids[p], lvls[p] = id, lvl
				bs.undoID[j] = int32(id)
				bs.status[j] = batchPopped
			} else {
				sh.fallbacks++
				bs.status[j] = batchFailed
			}
		}
		sh.mu.Unlock()
	}
	nonEmpty := 0
	for s := 0; s < S; s++ {
		if bs.shardOff[s] != bs.shardOff[s+1] {
			nonEmpty++
		}
	}
	if nonEmpty > 1 && runtime.GOMAXPROCS(0) > 1 {
		for s := 0; s < S; s++ {
			if bs.shardOff[s] == bs.shardOff[s+1] {
				continue
			}
			bs.wg.Add(1)
			go func(s int) {
				defer bs.wg.Done()
				serve(s)
			}(s)
		}
		bs.wg.Wait()
	} else {
		for s := 0; s < S; s++ {
			if bs.shardOff[s] != bs.shardOff[s+1] {
				serve(s)
			}
		}
	}

	anyFailed := false
	for j := 0; j < ne; j++ {
		if bs.status[j] == batchFailed {
			anyFailed = true
			break
		}
	}
	if anyFailed {
		e.resolveBatchFallbacks(bs, st, codes, ids, lvls)
	}
	for j := 0; j < ne; j++ {
		if bs.status[j] == batchReroute {
			nxt = append(nxt, bs.entryPos[j])
		}
	}
	return nxt
}

// resolveBatchFallbacks serves every batchFailed entry under all shard
// locks, in batch order, each against the exact pool its batch position
// would have seen sequentially (speculative pops after it are treated as
// not-yet-taken: counted as candidates, rolled back and replayed when the
// fallback claims a worker buried under them).
func (e *Engine) resolveBatchFallbacks(bs *batchScratch, st *epochState, codes []hst.Code, ids, lvls []int) {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()
	if e.state.Load() != st {
		// A swap landed between the speculative pass and these locks. The
		// speculative pops stand (old-epoch answers, same as a sequential
		// pop racing the swap); unresolved tasks redo on the new state.
		for j := range bs.status[:len(bs.entryPos)] {
			if bs.status[j] == batchFailed {
				bs.status[j] = batchReroute
			}
		}
		return
	}
	depth, limit, S := st.depth, st.ownLimit(), len(st.shards)
	ne := len(bs.entryPos)
	maxInt := int(^uint(0) >> 1)

	grpOf := func(s int) []int32 {
		return bs.shardTasks[bs.shardOff[s]:bs.shardOff[s+1]]
	}
	// shardBest is shard s's smallest worker id as seen from entry j's
	// batch position: its current minimum, or a later entry's speculative
	// pop — a worker j would have reached first sequentially.
	shardBest := func(s int, j int32) int {
		best := maxInt
		if m, ok := st.shards[s].index.MinID(); ok {
			best = m
		}
		for _, j2 := range grpOf(s) {
			if j2 > j && bs.status[j2] == batchPopped && int(bs.undoID[j2]) < best {
				best = int(bs.undoID[j2])
			}
		}
		return best
	}
	// steal hands shard s's position-j minimum (want) to entry j: roll the
	// shard back past every speculative pop after j (reverse order), pop
	// the winner — now necessarily the shard's minimum — and replay the
	// rolled-back entries in order. A replayed entry may pop a different
	// worker than before, or none at all; a new miss surfaces as
	// batchFailed at a later index, which the ascending scan resolves.
	steal := func(j int32, s, want, level int) {
		sh := &st.shards[s]
		grp := grpOf(s)
		for t := len(grp) - 1; t >= 0; t-- {
			j2 := grp[t]
			if j2 <= j || bs.status[j2] != batchPopped {
				continue
			}
			c := hst.Code(bs.slab[int(j2)*depth : (int(j2)+1)*depth])
			id2 := int(bs.undoID[j2])
			if !sh.index.AddCap(c, id2, 1) {
				if err := sh.index.InsertCap(c, id2, 1); err != nil {
					// Unreachable: the code was read off this shard's own pop.
					panic(fmt.Sprintf("engine: batch rollback of worker %d: %v", id2, err))
				}
			}
			sh.assigns--
		}
		id, ok := sh.index.PopMin()
		if !ok || id != want {
			// Unreachable: want is the minimum over this shard's remaining
			// workers and its rolled-back pops, all of which the rollback
			// just restored. Surfacing beats silently mis-assigning.
			panic(fmt.Sprintf("engine: batch steal wanted worker %d from shard %d, popped %d (ok=%v)", want, s, id, ok))
		}
		sh.assigns++
		p := bs.entryPos[j]
		ids[p], lvls[p] = id, level
		bs.status[j] = batchResolved
		for _, j2 := range grp {
			if j2 <= j || bs.status[j2] == batchResolved {
				continue
			}
			p2 := bs.entryPos[j2]
			id2, lvl2, ok2 := sh.index.PopNearestWithinCode(codes[p2], limit, bs.slab[int(j2)*depth:(int(j2)+1)*depth])
			if ok2 {
				sh.assigns++
				ids[p2], lvls[p2] = id2, lvl2
				bs.undoID[j2] = int32(id2)
				bs.status[j2] = batchPopped
			} else {
				ids[p2], lvls[p2] = None, 0
				bs.status[j2] = batchFailed
			}
		}
	}

	for j := int32(0); int(j) < ne; j++ {
		if bs.status[j] != batchFailed {
			continue
		}
		p := bs.entryPos[j]
		code := codes[p]
		// The own shard may have gained a closer worker between the
		// speculative pass and these locks (concurrent writers only; with
		// writers quiesced this probe fails exactly as it did then).
		own := &st.shards[bs.taskShard[j]]
		if id, lvl, ok := own.index.PopNearestWithin(code, limit); ok {
			own.assigns++
			ids[p], lvls[p] = id, lvl
			bs.status[j] = batchResolved
			continue
		}
		if st.sub > 1 {
			// Top-digit tier: the sibling sub-shards of the task's top branch
			// hold exactly the workers sharing its first digit, every one at
			// level depth−1 from this task (see assignAcross).
			d0 := int(code[0])
			bestS, bestID := -1, maxInt
			for t := 0; t < st.sub; t++ {
				si := d0 + st.degree*t
				if m := shardBest(si, j); m < bestID {
					bestS, bestID = si, m
				}
			}
			if bestS >= 0 {
				steal(j, bestS, bestID, st.depth-1)
				continue
			}
		}
		bestS, bestID := -1, maxInt
		for s := 0; s < S; s++ {
			if m := shardBest(s, j); m < bestID {
				bestS, bestID = s, m
			}
		}
		if bestS < 0 {
			// Nothing available anywhere at this entry's batch position and
			// no speculative pop outstanding after it: the pool is truly
			// empty from here on, so every later fallback is None too.
			for j2 := j; int(j2) < ne; j2++ {
				if bs.status[j2] == batchFailed {
					bs.status[j2] = batchResolved // ids already None
				}
			}
			return
		}
		steal(j, bestS, bestID, st.depth)
	}
}
