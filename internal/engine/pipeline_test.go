package engine_test

import (
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// pipelineWindow mirrors the engine's internal batchWindowSize. The tests
// below build batches long enough to span several windows; if the window
// size ever changes, the chunked twin must chunk at the new boundary too.
const pipelineWindow = 256

// TestPipelinedMatchesChunkedWindows is the pipeline's acceptance test: a
// long batch served through one AssignBatch call (the pipelined path) must
// produce exactly the answers of the same codes submitted window by window
// as separate AssignBatch calls (the unpipelined path), on a twin engine
// with its own policy instance. The batch drains the pool partway through
// the last window so the empty-pool guard and the trailing Nones are
// exercised too.
func TestPipelinedMatchesChunkedWindows(t *testing.T) {
	for _, shards := range []int{1, 8, 33} {
		tree := buildTree(t, 16, 70)
		src := rng.New(71)

		const nWorkers = 600
		workers := make([]hst.Code, nWorkers)
		for i := range workers {
			workers[i] = randCode(tree, src)
		}
		build := func() *engine.Engine {
			e, err := engine.NewWithOptions(tree, shards, engine.WithPolicy(engine.BatchOptimal(4)))
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range workers {
				if err := e.Insert(c, i); err != nil {
					t.Fatal(err)
				}
			}
			return e
		}
		eb, es := build(), build()

		const nTasks = 700
		tasks := make([]hst.Code, nTasks)
		for i := range tasks {
			if src.Intn(20) == 0 {
				tasks[i] = hst.Code("malformed")
			} else {
				tasks[i] = randCode(tree, src)
			}
		}

		gotIDs, gotLvls := eb.AssignBatch(tasks)
		var wantIDs, wantLvls []int
		for lo := 0; lo < nTasks; lo += pipelineWindow {
			hi := lo + pipelineWindow
			if hi > nTasks {
				hi = nTasks
			}
			ids, lvls := es.AssignBatch(tasks[lo:hi])
			wantIDs = append(wantIDs, ids...)
			wantLvls = append(wantLvls, lvls...)
		}

		for i := range tasks {
			if gotIDs[i] != wantIDs[i] || gotLvls[i] != wantLvls[i] {
				t.Fatalf("shards=%d task %d: pipelined (%d,%d) != chunked (%d,%d)",
					shards, i, gotIDs[i], gotLvls[i], wantIDs[i], wantLvls[i])
			}
		}
		if eb.Len() != es.Len() {
			t.Fatalf("shards=%d: pipelined Len=%d, chunked Len=%d", shards, eb.Len(), es.Len())
		}
		// The restricted top-k matching need not drain the pool fully, but an
		// over-subscribed batch must consume most of it.
		if eb.Len() > nWorkers/2 {
			t.Fatalf("shards=%d: %d tasks left %d of %d workers unassigned",
				shards, nTasks, eb.Len(), nWorkers)
		}
		wantWindows := int64((nTasks + pipelineWindow - 1) / pipelineWindow)
		if eb.Windows() != wantWindows || es.Windows() != wantWindows {
			t.Fatalf("shards=%d: Windows pipelined=%d chunked=%d, want %d",
				shards, eb.Windows(), es.Windows(), wantWindows)
		}
	}
}

// TestPipelinedMatchesChunkedCapacity repeats the pipelined-vs-chunked
// differential with capacitated workers, so the repair pass sees refs whose
// units shrink without vanishing (a worker consumed by window i stays a
// valid, re-capped candidate for window i+1).
func TestPipelinedMatchesChunkedCapacity(t *testing.T) {
	for _, shards := range []int{8, 33} {
		tree := buildTree(t, 16, 80)
		src := rng.New(81)

		const nWorkers = 300
		type capWorker struct {
			code hst.Code
			cap  int
		}
		workers := make([]capWorker, nWorkers)
		for i := range workers {
			workers[i] = capWorker{randCode(tree, src), 1 + src.Intn(3)}
		}
		build := func() *engine.Engine {
			e, err := engine.NewWithOptions(tree, shards, engine.WithPolicy(engine.BatchOptimal(4)))
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range workers {
				if err := e.InsertCapEpoch(w.code, i, w.cap, engine.FirstEpoch); err != nil {
					t.Fatal(err)
				}
			}
			return e
		}
		eb, es := build(), build()
		units := eb.CapacityUnits()

		nTasks := units + 100 // over-subscribe so the pool drains mid-pipeline
		tasks := make([]hst.Code, nTasks)
		for i := range tasks {
			tasks[i] = randCode(tree, src)
		}

		gotIDs, gotLvls := eb.AssignBatch(tasks)
		var wantIDs, wantLvls []int
		for lo := 0; lo < nTasks; lo += pipelineWindow {
			hi := lo + pipelineWindow
			if hi > nTasks {
				hi = nTasks
			}
			ids, lvls := es.AssignBatch(tasks[lo:hi])
			wantIDs = append(wantIDs, ids...)
			wantLvls = append(wantLvls, lvls...)
		}

		for i := range tasks {
			if gotIDs[i] != wantIDs[i] || gotLvls[i] != wantLvls[i] {
				t.Fatalf("shards=%d task %d: pipelined (%d,%d) != chunked (%d,%d)",
					shards, i, gotIDs[i], gotLvls[i], wantIDs[i], wantLvls[i])
			}
		}
		if eb.CapacityUnits() != es.CapacityUnits() || eb.Len() != es.Len() {
			t.Fatalf("shards=%d: pipelined (units=%d,len=%d) != chunked (units=%d,len=%d)",
				shards, eb.CapacityUnits(), eb.Len(), es.CapacityUnits(), es.Len())
		}
		if eb.CapacityUnits() > units/2 {
			t.Fatalf("shards=%d: over-subscribed batch left %d of %d units", shards, eb.CapacityUnits(), units)
		}
	}
}
