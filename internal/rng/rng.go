// Package rng provides deterministic, splittable random sources.
//
// Every stochastic component in pombm (HST construction, privacy
// mechanisms, workload generation, arrival-order shuffling) takes an
// explicit *rng.Source so that experiments are reproducible bit-for-bit
// from a single root seed, and so that changing the number of draws in one
// component does not silently reseed another.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with
// derivation helpers; it is not safe for concurrent use (derive one Source
// per goroutine instead).
type Source struct {
	*rand.Rand
	seed uint64
}

// New returns a Source for the given seed.
func New(seed uint64) *Source {
	return &Source{
		Rand: rand.New(rand.NewSource(int64(seed))),
		seed: seed,
	}
}

// Seed returns the seed this source was created from.
func (s *Source) Seed() uint64 { return s.seed }

// Derive returns an independent child source identified by a label.
// Children with distinct labels produce uncorrelated streams; the same
// (seed, label) pair always yields the same stream regardless of how much
// the parent has been consumed.
func (s *Source) Derive(label string) *Source {
	return New(mix(s.seed, label))
}

// DeriveN returns an independent child source identified by a label and an
// index, for per-repetition or per-agent streams.
func (s *Source) DeriveN(label string, n int) *Source {
	return New(mix(mix(s.seed, label), uint64ToLabel(uint64(n))))
}

// mix hashes (seed, label) into a new 64-bit seed with FNV-1a followed by
// a splitmix64 finalizer to decorrelate nearby seeds.
func mix(seed uint64, label string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	h.Write([]byte(label))
	return splitmix64(h.Sum64())
}

func uint64ToLabel(n uint64) string {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], n)
	return string(buf[:])
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche function on uint64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uniform returns a float64 uniformly in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + s.Float64()*(hi-lo)
}

// Normal returns a Normal(mu, sigma) draw.
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + s.NormFloat64()*sigma
}

// Exponential returns an Exponential draw with the given rate (mean 1/rate).
func (s *Source) Exponential(rate float64) float64 {
	return s.ExpFloat64() / rate
}

// PermInPlace shuffles xs deterministically.
func PermInPlace[T any](s *Source, xs []T) {
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// WeightedIndex samples an index proportional to the non-negative weights.
// It returns -1 when all weights are zero or the slice is empty.
func (s *Source) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	r := s.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1 // float rounding: fall back to the last index
}
