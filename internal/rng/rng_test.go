package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependentOfParentConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 50; i++ {
		a.Float64() // consume the parent stream
	}
	ca, cb := a.Derive("child"), b.Derive("child")
	for i := 0; i < 100; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("Derive depends on parent consumption")
		}
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	s := New(1)
	x := s.Derive("alpha").Uint64()
	y := s.Derive("beta").Uint64()
	if x == y {
		t.Error("distinct labels produced identical first draws")
	}
}

func TestDeriveNDistinct(t *testing.T) {
	s := New(1)
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		v := s.DeriveN("rep", i).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("DeriveN(%d) collides with DeriveN(%d)", i, prev)
		}
		seen[v] = i
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Errorf("std = %v, want ~3", std)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(0.5)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Errorf("mean = %v, want ~2", mean)
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(17)
	if got := s.WeightedIndex(nil); got != -1 {
		t.Errorf("empty = %d", got)
	}
	if got := s.WeightedIndex([]float64{0, 0, 0}); got != -1 {
		t.Errorf("all-zero = %d", got)
	}
	// Only one positive weight: always picked.
	for i := 0; i < 100; i++ {
		if got := s.WeightedIndex([]float64{0, 5, 0}); got != 1 {
			t.Fatalf("singleton weight picked %d", got)
		}
	}
	// Frequencies approach the weights.
	counts := [3]int{}
	w := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestPermInPlaceIsPermutation(t *testing.T) {
	s := New(23)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	PermInPlace(s, xs)
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate %d after shuffle", x)
		}
		seen[x] = true
	}
	if len(seen) != 50 {
		t.Errorf("lost elements: %d", len(seen))
	}
}

func TestSplitmix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window of inputs.
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		v := splitmix64(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision: splitmix64(%d) == splitmix64(%d)", i, prev)
		}
		seen[v] = i
	}
}
