// Package benchfmt defines the BENCH_engine.json schema shared by its
// writer (cmd/pombm-bench -enginebench) and its reader (cmd/benchdiff, the
// CI regression gate), so field renames are compile errors instead of
// silently-zero JSON fields on one side.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Record is one benchmark measurement.
type Record struct {
	Benchmark   string  `json:"benchmark"` // e.g. "engine/goroutines=4"
	Goroutines  int     `json:"goroutines"`
	Shards      int     `json:"shards,omitempty"`
	Policy      string  `json:"policy,omitempty"` // assignment policy for the BenchmarkPolicy* rows
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	Capped      bool    `json:"capped,omitempty"` // fewer schedulable cores than goroutines: not a parallel measurement
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	TasksPerSec float64 `json:"tasks_per_sec"`
}

// Underprovisioned reports whether the row ran with fewer schedulable
// cores than goroutines, so its multi-goroutine timing measures scheduler
// interleaving rather than parallel speedup. Rows from snapshots predating
// the per-row gomaxprocs field (zero value) are not flagged.
func (r Record) Underprovisioned() bool {
	return r.Capped || (r.GOMAXPROCS > 0 && r.GOMAXPROCS < r.Goroutines)
}

// Report is the file-level envelope.
type Report struct {
	GitSHA     string   `json:"git_sha"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Workers    int      `json:"workers"`
	Tasks      int      `json:"tasks"`
	Repeat     int      `json:"repeat"`
	Results    []Record `json:"results"`
}

// HistoryEntry is one point of the append-only bench trajectory: a full
// snapshot stamped with the revision and wall time it was produced at. The
// nightly lane appends one line per run to bench/history.jsonl (the
// github-action-benchmark data.js shape, one JSON object per line), so the
// perf trajectory across commits is a file, not an artifact diff. Drift
// detection and the rendered dashboard over this history are future work.
type HistoryEntry struct {
	GitSHA   string  `json:"git_sha"`
	UnixTime int64   `json:"unix_time"`
	Report   *Report `json:"report"`
}

// AppendHistory appends the entry as one JSON line to the history file,
// creating the file (and its directory) when missing. It never rewrites
// existing lines: the history is append-only by contract.
func AppendHistory(path string, e HistoryEntry) error {
	blob, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(blob, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// ReadHistory parses a history file back into its entries.
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	dec := json.NewDecoder(f)
	for dec.More() {
		var e HistoryEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("%s: entry %d: %w", path, len(out), err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Find returns the named benchmark's record.
func (r *Report) Find(name string) (Record, bool) {
	for _, rec := range r.Results {
		if rec.Benchmark == name {
			return rec, true
		}
	}
	return Record{}, false
}
