// Package benchfmt defines the BENCH_engine.json schema shared by its
// writer (cmd/pombm-bench -enginebench) and its reader (cmd/benchdiff, the
// CI regression gate), so field renames are compile errors instead of
// silently-zero JSON fields on one side.
package benchfmt

// Record is one benchmark measurement.
type Record struct {
	Benchmark   string  `json:"benchmark"` // e.g. "engine/goroutines=4"
	Goroutines  int     `json:"goroutines"`
	Shards      int     `json:"shards,omitempty"`
	Policy      string  `json:"policy,omitempty"` // assignment policy for the BenchmarkPolicy* rows
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	Capped      bool    `json:"capped,omitempty"` // fewer schedulable cores than goroutines: not a parallel measurement
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	TasksPerSec float64 `json:"tasks_per_sec"`
}

// Underprovisioned reports whether the row ran with fewer schedulable
// cores than goroutines, so its multi-goroutine timing measures scheduler
// interleaving rather than parallel speedup. Rows from snapshots predating
// the per-row gomaxprocs field (zero value) are not flagged.
func (r Record) Underprovisioned() bool {
	return r.Capped || (r.GOMAXPROCS > 0 && r.GOMAXPROCS < r.Goroutines)
}

// Report is the file-level envelope.
type Report struct {
	GitSHA     string   `json:"git_sha"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Workers    int      `json:"workers"`
	Tasks      int      `json:"tasks"`
	Repeat     int      `json:"repeat"`
	Results    []Record `json:"results"`
}

// Find returns the named benchmark's record.
func (r *Report) Find(name string) (Record, bool) {
	for _, rec := range r.Results {
		if rec.Benchmark == name {
			return rec, true
		}
	}
	return Record{}, false
}
