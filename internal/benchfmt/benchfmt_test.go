package benchfmt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHistoryAppendIsAppendOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "history.jsonl")
	first := HistoryEntry{
		GitSHA: "aaaa", UnixTime: 100,
		Report: &Report{GitSHA: "aaaa", Workers: 7, Results: []Record{
			{Benchmark: "serve-submit/clients=1", Goroutines: 1, NsPerOp: 123, TasksPerSec: 8130},
		}},
	}
	if err := AppendHistory(path, first); err != nil {
		t.Fatal(err)
	}
	second := HistoryEntry{GitSHA: "bbbb", UnixTime: 200, Report: &Report{GitSHA: "bbbb"}}
	if err := AppendHistory(path, second); err != nil {
		t.Fatal(err)
	}

	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d entries, want 2", len(got))
	}
	if got[0].GitSHA != "aaaa" || got[1].GitSHA != "bbbb" {
		t.Fatalf("entries out of order: %q, %q", got[0].GitSHA, got[1].GitSHA)
	}
	if got[0].UnixTime != 100 || got[1].UnixTime != 200 {
		t.Fatalf("timestamps lost: %d, %d", got[0].UnixTime, got[1].UnixTime)
	}
	rec, ok := got[0].Report.Find("serve-submit/clients=1")
	if !ok {
		t.Fatal("snapshot row lost through the history round trip")
	}
	if rec.NsPerOp != 123 || rec.TasksPerSec != 8130 || got[0].Report.Workers != 7 {
		t.Fatalf("snapshot fields mangled: %+v (workers %d)", rec, got[0].Report.Workers)
	}
}

func TestHistorySurvivesPartialTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := AppendHistory(path, HistoryEntry{GitSHA: "aaaa", UnixTime: 1}); err != nil {
		t.Fatal(err)
	}
	// A torn write (crash mid-append) leaves a partial trailing line; the
	// reader must surface a typed error, not silently drop history.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"git_sha":"bb`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadHistory(path); err == nil {
		t.Fatal("truncated history read back without error")
	}
}
