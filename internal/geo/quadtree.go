package geo

import "math"

// Quadtree is a point-region quadtree over a bounded region. It supports
// insertion, counting, and range counting, and is the substrate for the
// private-spatial-decomposition style analyses in the related-work baselines
// as well as density inspection of workloads.
//
// The zero value is not usable; construct with NewQuadtree.
type Quadtree struct {
	root     *quadNode
	maxDepth int
	capacity int
}

type quadNode struct {
	bounds   Rect
	pts      []Point // leaf payload; nil after split
	children *[4]*quadNode
	count    int
	depth    int
}

// NewQuadtree returns an empty quadtree over region. capacity is the number
// of points a leaf holds before splitting; maxDepth bounds the recursion so
// coincident points cannot split forever.
func NewQuadtree(region Rect, capacity, maxDepth int) *Quadtree {
	if capacity < 1 {
		capacity = 1
	}
	if maxDepth < 1 {
		maxDepth = 1
	}
	return &Quadtree{
		root:     &quadNode{bounds: region},
		maxDepth: maxDepth,
		capacity: capacity,
	}
}

// Insert adds p to the tree. Points outside the region are clamped to it,
// so Insert is total (workload generators can produce boundary values).
func (q *Quadtree) Insert(p Point) {
	p = q.root.bounds.Clamp(p)
	q.insert(q.root, p)
}

func (q *Quadtree) insert(n *quadNode, p Point) {
	n.count++
	if n.children == nil {
		if len(n.pts) < q.capacity || n.depth >= q.maxDepth {
			n.pts = append(n.pts, p)
			return
		}
		q.split(n)
	}
	q.insert(n.children[childIndex(n.bounds, p)], p)
}

func (q *Quadtree) split(n *quadNode) {
	quads := n.bounds.Quadrants()
	var ch [4]*quadNode
	for i := range ch {
		ch[i] = &quadNode{bounds: quads[i], depth: n.depth + 1}
	}
	n.children = &ch
	pts := n.pts
	n.pts = nil
	for _, p := range pts {
		c := ch[childIndex(n.bounds, p)]
		c.pts = append(c.pts, p)
		c.count++
	}
}

func childIndex(b Rect, p Point) int {
	c := b.Center()
	if p.Y >= c.Y {
		if p.X < c.X {
			return 0 // NW
		}
		return 1 // NE
	}
	if p.X < c.X {
		return 2 // SW
	}
	return 3 // SE
}

// Len returns the number of inserted points.
func (q *Quadtree) Len() int { return q.root.count }

// CountIn returns the number of points inside r. Points exactly on shared
// quadrant boundaries are counted once (they live in exactly one leaf).
func (q *Quadtree) CountIn(r Rect) int {
	return countIn(q.root, r)
}

func countIn(n *quadNode, r Rect) int {
	if n == nil || n.count == 0 || !n.bounds.Intersects(r) {
		return 0
	}
	if r.Contains(Point{n.bounds.MinX, n.bounds.MinY}) &&
		r.Contains(Point{n.bounds.MaxX, n.bounds.MaxY}) {
		return n.count
	}
	if n.children == nil {
		c := 0
		for _, p := range n.pts {
			if r.Contains(p) {
				c++
			}
		}
		return c
	}
	c := 0
	for _, ch := range n.children {
		c += countIn(ch, r)
	}
	return c
}

// Depth returns the maximum depth of any populated node; 0 for a tree that
// has never split.
func (q *Quadtree) Depth() int { return depthOf(q.root) }

func depthOf(n *quadNode) int {
	if n == nil {
		return 0
	}
	if n.children == nil {
		return n.depth
	}
	d := n.depth
	for _, ch := range n.children {
		if cd := depthOf(ch); cd > d {
			d = cd
		}
	}
	return d
}

// Leaves calls fn for every leaf node with its bounds and point count.
// Used by density reports and the noisy-count decomposition baseline.
func (q *Quadtree) Leaves(fn func(bounds Rect, count int)) {
	var walk func(*quadNode)
	walk = func(n *quadNode) {
		if n.children == nil {
			fn(n.bounds, n.count)
			return
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(q.root)
}

// helpers shared inside package geo

func inf() float64 { return math.Inf(1) }

func sqrt(x float64) float64 { return math.Sqrt(x) }
