package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestDynamicNNBasics(t *testing.T) {
	region := NewRect(Pt(0, 0), Pt(100, 100))
	d, err := NewDynamicNN(region, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Nearest(Pt(50, 50)); ok {
		t.Error("empty index returned a neighbour")
	}
	d.Insert(1, Pt(10, 10))
	d.Insert(2, Pt(90, 90))
	id, p, ok := d.Nearest(Pt(20, 20))
	if !ok || id != 1 || p != Pt(10, 10) {
		t.Errorf("Nearest = (%d, %v, %v)", id, p, ok)
	}
	if !d.Remove(1, Pt(10, 10)) {
		t.Error("Remove failed")
	}
	if d.Remove(1, Pt(10, 10)) {
		t.Error("double Remove succeeded")
	}
	id, _, ok = d.Nearest(Pt(20, 20))
	if !ok || id != 2 {
		t.Errorf("after removal Nearest = (%d, %v)", id, ok)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDynamicNNValidation(t *testing.T) {
	if _, err := NewDynamicNN(Rect{}, 10); err == nil {
		t.Error("degenerate region accepted")
	}
}

func TestDynamicNNMatchesBruteForceWithDeletions(t *testing.T) {
	region := NewRect(Pt(0, 0), Pt(200, 200))
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(400)
		d, err := NewDynamicNN(region, n)
		if err != nil {
			t.Fatal(err)
		}
		type item struct {
			p    Point
			live bool
		}
		items := make([]item, n)
		for i := range items {
			p := Pt(rng.Float64()*200, rng.Float64()*200)
			items[i] = item{p: p, live: true}
			d.Insert(i, p)
		}
		live := n
		for step := 0; step < n+20; step++ {
			q := Pt(rng.Float64()*200, rng.Float64()*200)
			id, _, ok := d.Nearest(q)
			if ok != (live > 0) {
				t.Fatalf("trial %d: ok=%v live=%d", trial, ok, live)
			}
			if !ok {
				continue
			}
			// Brute force: minimal distance, ties to lower id.
			bi, bd := -1, math.Inf(1)
			for i, it := range items {
				if !it.live {
					continue
				}
				dd := q.Dist2(it.p)
				if dd < bd || (dd == bd && i < bi) {
					bi, bd = i, dd
				}
			}
			if q.Dist2(items[id].p) != bd {
				t.Fatalf("trial %d: Nearest dist %v, brute %v", trial,
					q.Dist2(items[id].p), bd)
			}
			_ = bi
			// Extract-min behaviour: remove what we found, like the
			// greedy matcher does.
			if !d.Remove(id, items[id].p) {
				t.Fatalf("failed to remove found item %d", id)
			}
			items[id].live = false
			live--
		}
	}
}

func TestDynamicNNOutOfRegionPoints(t *testing.T) {
	region := NewRect(Pt(0, 0), Pt(10, 10))
	d, err := NewDynamicNN(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Laplace noise can push reported points outside the region; they must
	// remain findable with true coordinates respected.
	d.Insert(1, Pt(-5, -5))
	d.Insert(2, Pt(15, 15))
	id, p, ok := d.Nearest(Pt(0, 0))
	if !ok || id != 1 {
		t.Errorf("Nearest = (%d, %v, %v)", id, p, ok)
	}
	if p != Pt(-5, -5) {
		t.Errorf("coordinates clamped: %v", p)
	}
	if !d.Remove(1, Pt(-5, -5)) {
		t.Error("out-of-region Remove failed")
	}
}

func BenchmarkDynamicNNExtract(b *testing.B) {
	region := NewRect(Pt(0, 0), Pt(200, 200))
	rng := rand.New(rand.NewSource(5))
	const n = 8192
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*200, rng.Float64()*200)
	}
	b.ResetTimer()
	var d *DynamicNN
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			b.StopTimer()
			d, _ = NewDynamicNN(region, n)
			for j, p := range pts {
				d.Insert(j, p)
			}
			b.StartTimer()
		}
		q := pts[(i*7919)%n]
		id, p, ok := d.Nearest(q)
		if ok {
			d.Remove(id, p)
		}
	}
}
