package geo

import "sort"

// KDTree is a static 2-d tree over a fixed point set, supporting
// nearest-neighbour queries. It is used to snap locations to arbitrary
// (non-grid) predefined point sets, e.g. points sampled from a workload.
//
// The tree stores indexes into the original slice so callers can map the
// nearest point back to application data. Construction is O(n log² n)
// (sort per level); queries are O(log n) expected.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	root  int
}

type kdNode struct {
	idx         int // index into pts
	left, right int // node indexes, -1 when absent
	axis        uint8
}

// NewKDTree builds a kd-tree over pts. The slice is not copied; the caller
// must not mutate it while the tree is in use. An empty tree is valid and
// Nearest on it returns (-1, +Inf).
func NewKDTree(pts []Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idx, 0)
	return t
}

func (t *KDTree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := t.pts[idx[a]], t.pts[idx[b]]
		if axis == 0 {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	mid := len(idx) / 2
	n := kdNode{idx: idx[mid], axis: axis, left: -1, right: -1}
	pos := len(t.nodes)
	t.nodes = append(t.nodes, n)
	// Children must be built after appending so pos is stable.
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[pos].left = left
	t.nodes[pos].right = right
	return pos
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Nearest returns the index of the point closest to q and its distance.
// For an empty tree it returns (-1, +Inf).
func (t *KDTree) Nearest(q Point) (int, float64) {
	best := -1
	bestD2 := inf()
	t.search(t.root, q, &best, &bestD2)
	if best < 0 {
		return -1, inf()
	}
	return best, sqrt(bestD2)
}

func (t *KDTree) search(node int, q Point, best *int, bestD2 *float64) {
	if node < 0 {
		return
	}
	n := t.nodes[node]
	p := t.pts[n.idx]
	if d2 := q.Dist2(p); d2 < *bestD2 {
		*bestD2 = d2
		*best = n.idx
	}
	var delta float64
	if n.axis == 0 {
		delta = q.X - p.X
	} else {
		delta = q.Y - p.Y
	}
	near, far := n.left, n.right
	if delta > 0 {
		near, far = far, near
	}
	t.search(near, q, best, bestD2)
	if delta*delta < *bestD2 {
		t.search(far, q, best, bestD2)
	}
}
