package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	want := Rect{MinX: 2, MinY: 1, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %+v, want %+v", r, want)
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		p       Point
		inside  bool
		clamped Point
	}{
		{Pt(5, 5), true, Pt(5, 5)},
		{Pt(0, 0), true, Pt(0, 0)},
		{Pt(10, 10), true, Pt(10, 10)},
		{Pt(-1, 5), false, Pt(0, 5)},
		{Pt(11, 5), false, Pt(10, 5)},
		{Pt(5, -3), false, Pt(5, 0)},
		{Pt(20, 20), false, Pt(10, 10)},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.inside {
			t.Errorf("Contains(%v) = %v", tt.p, got)
		}
		if got := r.Clamp(tt.p); got != tt.clamped {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.clamped)
		}
	}
}

func TestClampIsIdempotentAndInside(t *testing.T) {
	r := Rect{-3, 2, 8, 9}
	f := func(x, y float64) bool {
		p := Pt(x, y)
		if !p.IsFinite() {
			return true
		}
		c := r.Clamp(p)
		return r.Contains(c) && r.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectDistTo(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if d := r.DistTo(Pt(5, 5)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistTo(Pt(13, 14)); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner dist = %v, want 5", d)
	}
	if d := r.DistTo(Pt(-2, 5)); math.Abs(d-2) > 1e-12 {
		t.Errorf("edge dist = %v, want 2", d)
	}
}

func TestRectQuadrants(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	qs := r.Quadrants()
	// Every quadrant has a quarter of the area and they tile the rect.
	var area float64
	for _, q := range qs {
		area += q.Width() * q.Height()
	}
	if math.Abs(area-100) > 1e-9 {
		t.Errorf("quadrant total area = %v, want 100", area)
	}
	if qs[0].Center() != Pt(2.5, 7.5) || qs[3].Center() != Pt(7.5, 2.5) {
		t.Errorf("quadrant layout wrong: NW=%v SE=%v", qs[0], qs[3])
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 5, 5}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 2, 2}, true},  // contained
		{Rect{4, 4, 9, 9}, true},  // overlap
		{Rect{5, 0, 9, 5}, true},  // shared edge
		{Rect{6, 6, 9, 9}, false}, // disjoint
		{Rect{-5, -5, -1, -1}, false},
	}
	for _, tt := range tests {
		if got := a.Intersects(tt.b); got != tt.want {
			t.Errorf("Intersects(%v) = %v, want %v", tt.b, got, tt.want)
		}
		if got := tt.b.Intersects(a); got != tt.want {
			t.Errorf("Intersects not symmetric for %v", tt.b)
		}
	}
}

func TestRectDiameterAndCenter(t *testing.T) {
	r := Rect{0, 0, 3, 4}
	if d := r.Diameter(); math.Abs(d-5) > 1e-12 {
		t.Errorf("Diameter = %v, want 5", d)
	}
	if c := r.Center(); c != Pt(1.5, 2) {
		t.Errorf("Center = %v", c)
	}
}
