// Package geo provides the planar geometry substrate for pombm: points,
// rectangles, uniform grids of predefined points, and spatial indexes
// (kd-tree, quadtree) for nearest-neighbour snapping.
//
// All coordinates are float64 in an arbitrary Euclidean plane; the paper's
// synthetic space is [0,200]² and its real space is a 10 km × 10 km region.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only uses such as nearest-neighbour search.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// MaxPairwiseDist returns the diameter of the point set: the maximum
// pairwise Euclidean distance. It returns 0 for sets of size < 2.
// The HST construction (Alg. 1) needs this to size the top level.
func MaxPairwiseDist(pts []Point) float64 {
	// O(n²) is acceptable for predefined point sets (N ≤ a few thousand);
	// Alg. 1 itself is O(N²·D) so this does not dominate.
	var max float64
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d > max {
				max = d
			}
		}
	}
	return max
}

// Centroid returns the arithmetic mean of the points, or the origin for an
// empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return Point{c.X / float64(len(pts)), c.Y / float64(len(pts))}
}
