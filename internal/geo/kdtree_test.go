package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestKDTreeEmpty(t *testing.T) {
	tr := NewKDTree(nil)
	if i, d := tr.Nearest(Pt(1, 1)); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Nearest = (%d, %v)", i, d)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestKDTreeSingle(t *testing.T) {
	tr := NewKDTree([]Point{Pt(3, 4)})
	i, d := tr.Nearest(Pt(0, 0))
	if i != 0 || math.Abs(d-5) > 1e-12 {
		t.Errorf("Nearest = (%d, %v), want (0, 5)", i, d)
	}
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.NormFloat64()*50, rng.NormFloat64()*50)
		}
		tr := NewKDTree(pts)
		for q := 0; q < 50; q++ {
			query := Pt(rng.NormFloat64()*60, rng.NormFloat64()*60)
			gi, gd := tr.Nearest(query)
			bi, bd := 0, math.Inf(1)
			for i, p := range pts {
				if d := query.Dist(p); d < bd {
					bi, bd = i, d
				}
			}
			if math.Abs(gd-bd) > 1e-9 {
				t.Fatalf("trial %d: kd nearest dist %v (idx %d), brute %v (idx %d)",
					trial, gd, gi, bd, bi)
			}
		}
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1), Pt(5, 5)}
	tr := NewKDTree(pts)
	i, d := tr.Nearest(Pt(1.1, 1))
	if d > 0.11 {
		t.Errorf("Nearest dist = %v", d)
	}
	if i == 3 {
		t.Errorf("picked far duplicate")
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 4096)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*200, rng.Float64()*200)
	}
	tr := NewKDTree(pts)
	queries := make([]Point, 1024)
	for i := range queries {
		queries[i] = Pt(rng.Float64()*200, rng.Float64()*200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(queries[i%len(queries)])
	}
}
