package geo

import (
	"math/rand"
	"testing"
)

func TestQuadtreeInsertAndCount(t *testing.T) {
	q := NewQuadtree(Rect{0, 0, 100, 100}, 4, 10)
	if q.Len() != 0 {
		t.Fatalf("new tree Len = %d", q.Len())
	}
	pts := []Point{Pt(10, 10), Pt(90, 90), Pt(90, 10), Pt(10, 90), Pt(50, 50)}
	for _, p := range pts {
		q.Insert(p)
	}
	if q.Len() != len(pts) {
		t.Errorf("Len = %d, want %d", q.Len(), len(pts))
	}
	if c := q.CountIn(Rect{0, 0, 100, 100}); c != len(pts) {
		t.Errorf("CountIn(all) = %d", c)
	}
	if c := q.CountIn(Rect{0, 0, 20, 20}); c != 1 {
		t.Errorf("CountIn(SW corner) = %d, want 1", c)
	}
}

func TestQuadtreeSplitsAndMatchesBrute(t *testing.T) {
	region := Rect{0, 0, 200, 200}
	q := NewQuadtree(region, 8, 12)
	rng := rand.New(rand.NewSource(99))
	var pts []Point
	for i := 0; i < 3000; i++ {
		p := Pt(rng.Float64()*200, rng.Float64()*200)
		pts = append(pts, p)
		q.Insert(p)
	}
	if q.Depth() == 0 {
		t.Error("tree never split with 3000 points and capacity 8")
	}
	for trial := 0; trial < 100; trial++ {
		r := NewRect(
			Pt(rng.Float64()*200, rng.Float64()*200),
			Pt(rng.Float64()*200, rng.Float64()*200),
		)
		want := 0
		for _, p := range pts {
			if r.Contains(p) {
				want++
			}
		}
		if got := q.CountIn(r); got != want {
			t.Fatalf("CountIn(%v) = %d, brute = %d", r, got, want)
		}
	}
}

func TestQuadtreeClampsOutside(t *testing.T) {
	q := NewQuadtree(Rect{0, 0, 10, 10}, 2, 5)
	q.Insert(Pt(-5, -5))
	q.Insert(Pt(100, 100))
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	if c := q.CountIn(Rect{0, 0, 10, 10}); c != 2 {
		t.Errorf("clamped points not counted, CountIn = %d", c)
	}
}

func TestQuadtreeCoincidentPointsRespectMaxDepth(t *testing.T) {
	q := NewQuadtree(Rect{0, 0, 10, 10}, 1, 4)
	for i := 0; i < 100; i++ {
		q.Insert(Pt(5, 5)) // would split forever without maxDepth
	}
	if q.Len() != 100 {
		t.Errorf("Len = %d", q.Len())
	}
	if d := q.Depth(); d > 4 {
		t.Errorf("Depth = %d exceeds maxDepth", d)
	}
}

func TestQuadtreeLeavesTileCounts(t *testing.T) {
	q := NewQuadtree(Rect{0, 0, 64, 64}, 3, 8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		q.Insert(Pt(rng.Float64()*64, rng.Float64()*64))
	}
	total := 0
	q.Leaves(func(_ Rect, count int) { total += count })
	if total != 500 {
		t.Errorf("leaf counts sum to %d, want 500", total)
	}
}
