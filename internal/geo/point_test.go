package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	sym := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.IsInf(d1, 1) { // coordinate deltas can overflow to +Inf
			return math.IsInf(d2, 1)
		}
		return math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	tri := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if !a.IsFinite() || !b.IsFinite() || !c.IsFinite() {
			return true
		}
		// Allow relative slack for float rounding on huge magnitudes.
		lhs := a.Dist(c)
		rhs := a.Dist(b) + b.Dist(c)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		d := a.Dist(b)
		d2 := a.Dist2(b)
		if math.IsInf(d2, 1) {
			return math.IsInf(d*d, 1) || d*d > math.MaxFloat64/2
		}
		return math.Abs(d*d-d2) <= 1e-9*math.Max(1, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, -1)); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(3, -1)); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestMaxPairwiseDist(t *testing.T) {
	if got := MaxPairwiseDist(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := MaxPairwiseDist([]Point{Pt(1, 1)}); got != 0 {
		t.Errorf("singleton = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(3, 4)}
	if got := MaxPairwiseDist(pts); math.Abs(got-5) > 1e-12 {
		t.Errorf("diameter = %v, want 5", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("empty centroid = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); got != Pt(1, 1) {
		t.Errorf("centroid = %v, want (1,1)", got)
	}
}
