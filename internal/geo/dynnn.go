package geo

import (
	"fmt"
	"math"
)

// DynamicNN is a deletion-capable nearest-neighbour index over a bounded
// region, backed by uniform grid buckets searched in expanding rings. It
// serves the Euclidean greedy matcher, which repeatedly extracts the
// nearest remaining worker — a workload kd-trees handle poorly without
// rebalancing.
//
// Query cost is O(ring cells + candidates) and degrades gracefully as the
// index empties; insertion and removal are O(1).
type DynamicNN struct {
	region Rect
	cols   int
	rows   int
	cellW  float64
	cellH  float64
	cells  [][]nnItem
	size   int
}

type nnItem struct {
	id int
	p  Point
}

// NewDynamicNN builds an empty index with roughly cellTarget items per
// bucket assuming n items uniform in region. n is only a sizing hint.
func NewDynamicNN(region Rect, n int) (*DynamicNN, error) {
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("geo: DynamicNN region %v must have positive area", region)
	}
	if n < 1 {
		n = 1
	}
	side := int(math.Sqrt(float64(n)/2)) + 1
	if side > 512 {
		side = 512
	}
	d := &DynamicNN{
		region: region,
		cols:   side,
		rows:   side,
		cellW:  region.Width() / float64(side),
		cellH:  region.Height() / float64(side),
	}
	d.cells = make([][]nnItem, side*side)
	return d, nil
}

// Len returns the number of indexed items.
func (d *DynamicNN) Len() int { return d.size }

func (d *DynamicNN) cellOf(p Point) (int, int) {
	p = d.region.Clamp(p)
	c := int((p.X - d.region.MinX) / d.cellW)
	r := int((p.Y - d.region.MinY) / d.cellH)
	if c >= d.cols {
		c = d.cols - 1
	}
	if r >= d.rows {
		r = d.rows - 1
	}
	return c, r
}

// Insert adds an item. Points outside the region are clamped for bucketing
// but retain their true coordinates for distance computation.
func (d *DynamicNN) Insert(id int, p Point) {
	c, r := d.cellOf(p)
	idx := r*d.cols + c
	d.cells[idx] = append(d.cells[idx], nnItem{id: id, p: p})
	d.size++
}

// Remove deletes one item with the given id near p (the same point used at
// insertion). It reports whether the item was found.
func (d *DynamicNN) Remove(id int, p Point) bool {
	c, r := d.cellOf(p)
	idx := r*d.cols + c
	cell := d.cells[idx]
	for i, it := range cell {
		if it.id == id {
			last := len(cell) - 1
			cell[i] = cell[last]
			d.cells[idx] = cell[:last]
			d.size--
			return true
		}
	}
	return false
}

// Nearest returns the indexed item closest to q, or ok=false when empty.
// Ties break towards the lower id so results are deterministic.
func (d *DynamicNN) Nearest(q Point) (id int, p Point, ok bool) {
	if d.size == 0 {
		return 0, Point{}, false
	}
	qc, qr := d.cellOf(q)
	best := nnItem{id: -1}
	bestD := math.Inf(1)
	maxRing := d.cols
	if d.rows > maxRing {
		maxRing = d.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate exists, stop after the first ring whose cells
		// cannot contain anything closer: ring distance lower bound.
		if best.id >= 0 {
			lb := (float64(ring-1) * math.Min(d.cellW, d.cellH))
			if lb*lb > bestD {
				break
			}
		}
		found := d.scanRing(qc, qr, ring, q, &best, &bestD)
		_ = found
	}
	return best.id, best.p, best.id >= 0
}

// scanRing visits the cells at Chebyshev distance exactly `ring` from
// (qc, qr) and updates the best candidate.
func (d *DynamicNN) scanRing(qc, qr, ring int, q Point, best *nnItem, bestD *float64) bool {
	any := false
	visit := func(c, r int) {
		if c < 0 || c >= d.cols || r < 0 || r >= d.rows {
			return
		}
		for _, it := range d.cells[r*d.cols+c] {
			any = true
			dd := q.Dist2(it.p)
			if dd < *bestD || (dd == *bestD && it.id < best.id) {
				*best = it
				*bestD = dd
			}
		}
	}
	if ring == 0 {
		visit(qc, qr)
		return any
	}
	for c := qc - ring; c <= qc+ring; c++ {
		visit(c, qr-ring)
		visit(c, qr+ring)
	}
	for r := qr - ring + 1; r <= qr+ring-1; r++ {
		visit(qc-ring, r)
		visit(qc+ring, r)
	}
	return any
}
