package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(Rect{0, 0, 10, 10}, 0, 5); err == nil {
		t.Error("expected error for zero columns")
	}
	if _, err := NewGrid(Rect{0, 0, 10, 10}, 5, 0); err == nil {
		t.Error("expected error for zero rows")
	}
	if _, err := NewGrid(Rect{0, 0, 0, 10}, 5, 5); err == nil {
		t.Error("expected error for degenerate region")
	}
}

func TestGridLayout(t *testing.T) {
	g := MustGrid(Rect{0, 0, 10, 10}, 2, 2)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	want := []Point{Pt(2.5, 2.5), Pt(7.5, 2.5), Pt(2.5, 7.5), Pt(7.5, 7.5)}
	for i, w := range want {
		if g.Point(i) != w {
			t.Errorf("Point(%d) = %v, want %v", i, g.Point(i), w)
		}
	}
}

func TestGridSnapExactOnPoints(t *testing.T) {
	g := MustGrid(Rect{0, 0, 200, 200}, 8, 8)
	for i := 0; i < g.Len(); i++ {
		if got := g.Snap(g.Point(i)); got != i {
			t.Errorf("Snap(Point(%d)) = %d", i, got)
		}
	}
}

func TestGridSnapIsNearest(t *testing.T) {
	// Snap must agree with a brute-force nearest search, including on the
	// boundary and outside the region.
	g := MustGrid(Rect{-5, 3, 19, 17}, 5, 7)
	rng := rand.New(rand.NewSource(42))
	brute := func(p Point) int {
		p = g.Region.Clamp(p)
		best, bestD := 0, math.Inf(1)
		for i, q := range g.Points() {
			if d := p.Dist2(q); d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	for i := 0; i < 2000; i++ {
		p := Pt(rng.Float64()*40-15, rng.Float64()*30-5)
		got, want := g.Snap(p), brute(p)
		if got == want {
			continue
		}
		// Equidistant ties may legitimately differ; accept equal distances.
		c := g.Region.Clamp(p)
		if math.Abs(c.Dist(g.Point(got))-c.Dist(g.Point(want))) > 1e-9 {
			t.Fatalf("Snap(%v) = %d (d=%v), brute = %d (d=%v)",
				p, got, c.Dist(g.Point(got)), want, c.Dist(g.Point(want)))
		}
	}
}

func TestGridSnapBoundary(t *testing.T) {
	g := MustGrid(Rect{0, 0, 10, 10}, 4, 4)
	if got := g.Snap(Pt(10, 10)); got != g.Len()-1 {
		t.Errorf("Snap(max corner) = %d, want %d", got, g.Len()-1)
	}
	if got := g.Snap(Pt(0, 0)); got != 0 {
		t.Errorf("Snap(min corner) = %d, want 0", got)
	}
	if got := g.Snap(Pt(-100, -100)); got != 0 {
		t.Errorf("Snap(far outside) = %d, want 0", got)
	}
}

func TestGridSnapErrorBound(t *testing.T) {
	// Any in-region point must be within half the cell diagonal of its
	// snapped predefined point.
	g := MustGrid(Rect{0, 0, 200, 200}, 32, 32)
	bound := g.CellDiagonal()/2 + 1e-9
	f := func(x, y float64) bool {
		p := Pt(math.Mod(math.Abs(x), 200), math.Mod(math.Abs(y), 200))
		if !p.IsFinite() {
			return true
		}
		return p.Dist(g.SnapPoint(p)) <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
