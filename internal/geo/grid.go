package geo

import (
	"errors"
	"fmt"
	"math"
)

// Grid is a uniform Cols × Rows lattice of predefined points covering a
// rectangle. The paper's server publishes such a predefined point set and
// builds the HST over it; workers and tasks snap their true locations to the
// nearest predefined point before obfuscation (Sec. III-B).
//
// Points are laid out at cell centers so that every location in the region
// is within half a cell diagonal of some predefined point. Index order is
// row-major: index = row*Cols + col.
type Grid struct {
	Region Rect
	Cols   int
	Rows   int

	points []Point
	cellW  float64
	cellH  float64
}

// ErrEmptyGrid is returned when a grid with no cells is requested.
var ErrEmptyGrid = errors.New("geo: grid must have at least 1 column and 1 row")

// NewGrid builds a cols × rows grid of predefined points over region.
func NewGrid(region Rect, cols, rows int) (*Grid, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("%w (got %dx%d)", ErrEmptyGrid, cols, rows)
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("geo: grid region %v must have positive area", region)
	}
	g := &Grid{
		Region: region,
		Cols:   cols,
		Rows:   rows,
		cellW:  region.Width() / float64(cols),
		cellH:  region.Height() / float64(rows),
	}
	g.points = make([]Point, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.points = append(g.points, Point{
				X: region.MinX + (float64(c)+0.5)*g.cellW,
				Y: region.MinY + (float64(r)+0.5)*g.cellH,
			})
		}
	}
	return g, nil
}

// MustGrid is NewGrid that panics on error; for tests and examples with
// constant arguments.
func MustGrid(region Rect, cols, rows int) *Grid {
	g, err := NewGrid(region, cols, rows)
	if err != nil {
		panic(err)
	}
	return g
}

// Points returns the predefined points in index order. The caller must not
// modify the returned slice.
func (g *Grid) Points() []Point { return g.points }

// Len returns the number of predefined points (N in the paper).
func (g *Grid) Len() int { return len(g.points) }

// Point returns the predefined point with the given index.
func (g *Grid) Point(i int) Point { return g.points[i] }

// Snap returns the index of the predefined point nearest to p. Locations
// outside the region are clamped to it first, so Snap is total. It runs in
// O(1) by exploiting the uniform layout.
func (g *Grid) Snap(p Point) int {
	p = g.Region.Clamp(p)
	c := int(math.Floor((p.X - g.Region.MinX) / g.cellW))
	r := int(math.Floor((p.Y - g.Region.MinY) / g.cellH))
	// A point exactly on the max boundary floors to Cols/Rows; pull it in.
	if c >= g.Cols {
		c = g.Cols - 1
	}
	if r >= g.Rows {
		r = g.Rows - 1
	}
	return r*g.Cols + c
}

// SnapPoint returns the nearest predefined point itself.
func (g *Grid) SnapPoint(p Point) Point { return g.points[g.Snap(p)] }

// CellDiagonal returns the diagonal of one grid cell: an upper bound on
// twice the snapping error.
func (g *Grid) CellDiagonal() float64 {
	return math.Hypot(g.cellW, g.cellH)
}
