package geo

import "fmt"

// Rect is an axis-aligned rectangle [MinX,MaxX] × [MinY,MaxY].
// The zero Rect is the degenerate point at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	r := Rect{MinX: a.X, MinY: a.Y, MaxX: b.X, MaxY: b.Y}
	if r.MinX > r.MaxX {
		r.MinX, r.MaxX = r.MaxX, r.MinX
	}
	if r.MinY > r.MaxY {
		r.MinY, r.MaxY = r.MaxY, r.MinY
	}
	return r
}

// Square returns the axis-aligned square with the given lower-left corner
// and side length.
func Square(origin Point, side float64) Rect {
	return Rect{MinX: origin.X, MinY: origin.Y, MaxX: origin.X + side, MaxY: origin.Y + side}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns the point in r closest to p.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.MinX {
		p.X = r.MinX
	} else if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	} else if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}

// DistTo returns the Euclidean distance from p to the rectangle, 0 when p
// is inside. Used by spatial-index pruning.
func (r Rect) DistTo(p Point) float64 {
	return p.Dist(r.Clamp(p))
}

// Diameter returns the length of the rectangle's diagonal.
func (r Rect) Diameter() float64 {
	return Point{r.MinX, r.MinY}.Dist(Point{r.MaxX, r.MaxY})
}

// Intersects reports whether the two rectangles overlap (boundary inclusive).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Quadrants splits r into its four quadrants in the order NW, NE, SW, SE.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{r.MinX, c.Y, c.X, r.MaxY}, // NW
		{c.X, c.Y, r.MaxX, r.MaxY}, // NE
		{r.MinX, r.MinY, c.X, c.Y}, // SW
		{c.X, r.MinY, r.MaxX, c.Y}, // SE
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4g,%.4g]x[%.4g,%.4g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
