package privacy

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/numeric"
	"github.com/pombm/pombm/internal/rng"
)

// PlanarLaplace is the polar Laplacian mechanism of Andrés et al. (CCS'13):
// the reported point is the true point plus noise with density
// ε²/(2π)·e^{−ε·r}, which is ε-Geo-Indistinguishable in the Euclidean
// metric. It is the mechanism inside the Lap-GR, Lap-HG and Prob baselines.
type PlanarLaplace struct {
	eps float64
}

// NewPlanarLaplace returns the mechanism for budget ε.
func NewPlanarLaplace(eps float64) (*PlanarLaplace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, eps)
	}
	return &PlanarLaplace{eps: eps}, nil
}

// Epsilon returns the privacy budget.
func (l *PlanarLaplace) Epsilon() float64 { return l.eps }

// ObfuscatePoint adds planar Laplace noise to p: a uniform angle and a
// radius drawn by inverting the radial CDF through the Lambert W −1 branch.
func (l *PlanarLaplace) ObfuscatePoint(p geo.Point, src *rng.Source) geo.Point {
	theta := src.Uniform(0, 2*math.Pi)
	r := l.SampleRadius(src)
	return geo.Pt(p.X+r*math.Cos(theta), p.Y+r*math.Sin(theta))
}

// SampleRadius draws the noise magnitude: C_ε⁻¹(u) for uniform u, where
// C_ε(r) = 1 − (1+εr)e^{−εr} and C_ε⁻¹(u) = −(W₋₁((u−1)/e) + 1)/ε.
func (l *PlanarLaplace) SampleRadius(src *rng.Source) float64 {
	u := src.Float64()
	r, err := InverseRadialCDF(l.eps, u)
	if err != nil {
		// u outside [0,1) cannot occur from Float64; fall back to the mean.
		return 2 / l.eps
	}
	return r
}

// PDF returns the density of reporting z when the true point is p.
func (l *PlanarLaplace) PDF(p, z geo.Point) float64 {
	return l.eps * l.eps / (2 * math.Pi) * math.Exp(-l.eps*p.Dist(z))
}

// RadialCDF returns C_ε(r) = P[noise magnitude ≤ r].
func RadialCDF(eps, r float64) float64 {
	if r <= 0 {
		return 0
	}
	return 1 - (1+eps*r)*math.Exp(-eps*r)
}

// InverseRadialCDF inverts RadialCDF: it returns the radius r with
// C_ε(r) = u, for u ∈ [0, 1).
func InverseRadialCDF(eps, u float64) (float64, error) {
	if u < 0 || u >= 1 {
		return 0, fmt.Errorf("privacy: CDF value %v outside [0,1)", u)
	}
	if u == 0 {
		return 0, nil
	}
	w, err := numeric.LambertWm1((u - 1) / math.E)
	if err != nil {
		return 0, err
	}
	return -(w + 1) / eps, nil
}

// CaptureProb returns the probability that the true location lies within
// reach of a target point at distance dObf from the *reported* location,
// under planar Laplace noise with budget ε:
//
//	P = ∫ ε²ρe^{−ερ} · ArcFraction(ρ, dObf, reach) dρ.
//
// This is the reachability posterior the Prob baseline (To et al. ICDE'18)
// ranks workers by. The integrand is 1 on [0, reach−dObf] when the disc
// covers the small circle entirely, handled in closed form.
func CaptureProb(eps, dObf, reach float64) float64 {
	if reach <= 0 {
		return 0
	}
	if dObf < 0 {
		dObf = -dObf
	}
	full := 0.0
	if reach > dObf {
		full = RadialCDF(eps, reach-dObf)
	}
	lo := math.Abs(reach - dObf)
	hi := reach + dObf
	if hi <= lo {
		return clampProb(full)
	}
	integrand := func(rho float64) float64 {
		return eps * eps * rho * math.Exp(-eps*rho) * numeric.ArcFraction(rho, dObf, reach)
	}
	partial := numeric.AdaptiveSimpson(integrand, lo, hi, 1e-9)
	return clampProb(full + partial)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
