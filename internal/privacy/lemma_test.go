package privacy

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// These tests verify the paper's Lemmas 1 and 2 — the bounds on the
// expected tree distance between an obfuscated leaf and any other leaf that
// drive the competitive-ratio proof (Theorem 3) — by computing the
// expectation EXACTLY via enumeration of the complete tree's leaves.

// exactExpectedDist computes E_M[dT(u', v)] = Σ_z M(u)(z)·dT(z, v).
func exactExpectedDist(t *testing.T, m *HSTMechanism, u, v hst.Code) float64 {
	t.Helper()
	codes, probs, err := m.EnumerateDistribution(u)
	if err != nil {
		t.Fatal(err)
	}
	var e float64
	for i, z := range codes {
		e += probs[i] * m.Tree().Dist(z, v)
	}
	return e
}

// enumerableTrees builds small trees whose complete form can be enumerated.
func enumerableTrees(t *testing.T) []*hst.Tree {
	t.Helper()
	var trees []*hst.Tree
	trees = append(trees, paperTree(t))
	src := rng.New(31337)
	for trial := 0; len(trees) < 4 && trial < 50; trial++ {
		tr := randomTree(t, src.DeriveN("t", trial), 5+trial%3, 30)
		if tr.TotalLeaves() <= 100000 && tr.Degree() >= 2 {
			trees = append(trees, tr)
		}
	}
	if len(trees) < 2 {
		t.Fatal("could not build enumerable trees")
	}
	return trees
}

// TestLemma1LowerBound: E[dT(u′,v)] ≥ dT(u,v) / (3(2c−1)) for all real
// leaf pairs and a range of budgets.
func TestLemma1LowerBound(t *testing.T) {
	for ti, tr := range enumerableTrees(t) {
		c := float64(tr.Degree())
		lb := 1 / (3 * (2*c - 1))
		for _, eps := range []float64{0.1, 0.5, 1.0} {
			m, err := NewHSTMechanism(tr, eps)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tr.NumPoints(); i++ {
				for j := 0; j < tr.NumPoints(); j++ {
					if i == j {
						continue
					}
					u, v := tr.CodeOf(i), tr.CodeOf(j)
					e := exactExpectedDist(t, m, u, v)
					bound := lb * tr.Dist(u, v)
					if e < bound-1e-9 {
						t.Fatalf("tree %d ε=%v pair (%d,%d): E=%v < bound %v (dT=%v, c=%v)",
							ti, eps, i, j, e, bound, tr.Dist(u, v), c)
					}
				}
			}
		}
	}
}

// TestLemma2UpperBoundShape: E[dT(u′,v)] ≤ C·(ln(2c)/ε)^{log₂(2c)}·dT(u,v)
// for a generous constant C — the asymptotic form of Lemma 2. The bound
// must also tighten as ε grows (at large ε the expectation approaches
// dT(u,v) itself, since u′ ≈ u).
func TestLemma2UpperBoundShape(t *testing.T) {
	const C = 60
	for ti, tr := range enumerableTrees(t) {
		c := float64(tr.Degree())
		for _, eps := range []float64{0.2, 0.6, 1.0, 3.0} {
			m, err := NewHSTMechanism(tr, eps)
			if err != nil {
				t.Fatal(err)
			}
			factor := C * math.Pow(math.Max(math.Log(2*c)/eps, 1), math.Log2(2*c))
			for i := 0; i < tr.NumPoints(); i++ {
				for j := 0; j < tr.NumPoints(); j++ {
					if i == j {
						continue
					}
					u, v := tr.CodeOf(i), tr.CodeOf(j)
					e := exactExpectedDist(t, m, u, v)
					if e > factor*tr.Dist(u, v) {
						t.Fatalf("tree %d ε=%v pair (%d,%d): E=%v exceeds %v·dT",
							ti, eps, i, j, e, factor)
					}
				}
			}
		}
	}
}

// TestExpectationConvergesToTruthAtLargeEps: as ε → ∞ the mechanism stops
// moving leaves, so E[dT(u′,v)] → dT(u,v) exactly.
func TestExpectationConvergesToTruthAtLargeEps(t *testing.T) {
	tr := paperTree(t)
	m, err := NewHSTMechanism(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	u, v := tr.CodeOf(0), tr.CodeOf(2)
	e := exactExpectedDist(t, m, u, v)
	if math.Abs(e-tr.Dist(u, v)) > 1e-6 {
		t.Errorf("E = %v, want dT = %v", e, tr.Dist(u, v))
	}
}

// TestExpectationMonotoneInEpsilonNearTruth: with stronger privacy (smaller
// ε) the expected displacement of the obfuscated leaf can only grow, so the
// expected distance to the input leaf itself (v = u) is antitone in ε.
func TestExpectationMonotoneInEpsilonNearTruth(t *testing.T) {
	tr := paperTree(t)
	u := tr.CodeOf(1)
	prev := math.Inf(1)
	for _, eps := range []float64{0.05, 0.1, 0.3, 0.6, 1, 2, 5} {
		m, err := NewHSTMechanism(tr, eps)
		if err != nil {
			t.Fatal(err)
		}
		e := exactExpectedDist(t, m, u, u)
		if e > prev+1e-9 {
			t.Fatalf("E[dT(u',u)] grew from %v to %v as ε rose to %v", prev, e, eps)
		}
		prev = e
	}
}
