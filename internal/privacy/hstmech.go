package privacy

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// HSTMechanism is the paper's tree-based privacy mechanism M: a leaf x of
// the complete HST is reported as leaf z with probability
//
//	M(x)(z) = wt_lvl(x,z) / WT,   wt_i = e^{−ε·(2^{i+2}−4)},  wt_0 = 1,
//
// i.e. an exponential mechanism in the tree metric with an x-independent
// normaliser, which makes it ε-Geo-Indistinguishable w.r.t. tree distance
// (Theorem 1).
//
// Three samplers are provided:
//
//   - ObfuscateEnumerate — the literal Alg. 2: materialise the probability
//     of every leaf of the complete tree and sample. O(c^D); refuses trees
//     with more than EnumerateLimit leaves. Kept for validation/ablation.
//   - ObfuscateDirect — samples the LCA level from the closed-form level
//     distribution, then a uniform leaf within the level's sibling set.
//   - ObfuscateWalk — the random-walk sampler of Alg. 3; O(D).
//
// All three induce exactly the same distribution (Theorem 2); the tests
// verify this analytically, not statistically.
type HSTMechanism struct {
	tree *hst.Tree
	eps  float64

	wt        []float64 // wt[i], i = 0..D
	levelProb []float64 // P[lvl(x,z)=i] = |L_i|·wt_i / WT
	tw        []float64 // tw[k] = Σ_{i≥k} |L_i|·wt_i (tw[0] = WT)
	pu        []float64 // pu[i] = tw[i+1]/tw[i], walk-up probability at level i
	wtTotal   float64
}

// NewHSTMechanism builds the mechanism for a published tree and budget ε.
func NewHSTMechanism(tree *hst.Tree, eps float64) (*HSTMechanism, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, eps)
	}
	d := tree.Depth()
	m := &HSTMechanism{
		tree:      tree,
		eps:       eps,
		wt:        make([]float64, d+1),
		levelProb: make([]float64, d+1),
		tw:        make([]float64, d+2),
		pu:        make([]float64, d+1),
	}
	for i := 0; i <= d; i++ {
		m.wt[i] = math.Exp(-eps * hst.LevelDist(i))
	}
	// tw[k] = Σ_{i≥k} |L_i|·wt_i, built from the top down. tw[D+1] = 0.
	for i := d; i >= 0; i-- {
		m.tw[i] = m.tw[i+1] + tree.SiblingSetSize(i)*m.wt[i]
	}
	m.wtTotal = m.tw[0]
	for i := 0; i <= d; i++ {
		m.levelProb[i] = tree.SiblingSetSize(i) * m.wt[i] / m.wtTotal
		if m.tw[i] > 0 {
			m.pu[i] = m.tw[i+1] / m.tw[i]
		}
	}
	return m, nil
}

// Epsilon returns the privacy budget.
func (m *HSTMechanism) Epsilon() float64 { return m.eps }

// Tree returns the tree the mechanism operates on.
func (m *HSTMechanism) Tree() *hst.Tree { return m.tree }

// Weight returns wt_i, the unnormalised probability of each leaf whose LCA
// with the input is at level i.
func (m *HSTMechanism) Weight(i int) float64 { return m.wt[i] }

// TotalWeight returns WT = Σ_i |L_i|·wt_i.
func (m *HSTMechanism) TotalWeight() float64 { return m.wtTotal }

// LevelProbs returns, for each level i, the probability that the obfuscated
// leaf's LCA with the input is at level i. The slice is shared; do not
// modify.
func (m *HSTMechanism) LevelProbs() []float64 { return m.levelProb }

// WalkUpProb returns pu_i, the probability the random walk continues upward
// from a node at level i.
func (m *HSTMechanism) WalkUpProb(i int) float64 { return m.pu[i] }

// LeafProb returns M(x)(z) exactly.
func (m *HSTMechanism) LeafProb(x, z hst.Code) float64 {
	return m.wt[m.tree.LCALevel(x, z)] / m.wtTotal
}

// LogLeafProb returns ln M(x)(z) computed without underflow: the weights
// e^{−ε·(2^{i+2}−4)} round to zero in float64 on deep trees, but their
// logarithms are exact. The Geo-I verifier works in this domain.
func (m *HSTMechanism) LogLeafProb(x, z hst.Code) float64 {
	lvl := m.tree.LCALevel(x, z)
	return -m.eps*hst.LevelDist(lvl) - math.Log(m.wtTotal)
}

// Obfuscate reports an obfuscated leaf for x using the random-walk sampler.
func (m *HSTMechanism) Obfuscate(x hst.Code, src *rng.Source) hst.Code {
	return m.ObfuscateWalk(x, src)
}

// ObfuscateDirect samples the LCA level from the closed-form level
// distribution and then a uniform leaf of that sibling set.
func (m *HSTMechanism) ObfuscateDirect(x hst.Code, src *rng.Source) hst.Code {
	lvl := src.WeightedIndex(m.levelProb)
	if lvl <= 0 {
		return x
	}
	return m.sampleSibling(x, lvl, src)
}

// ObfuscateWalk is Alg. 3: walk upward from x, at each level i continuing
// with probability pu_i; on turning downward at level i, pick uniformly
// among the c−1 non-ancestor children and then descend uniformly to a leaf.
//
// ObfuscateWalk performs at most one allocation — the final Code
// materialisation — and none at all when the walk stops at level 0. For
// batches, ObfuscateInto amortises even that allocation across the batch.
func (m *HSTMechanism) ObfuscateWalk(x hst.Code, src *rng.Source) hst.Code {
	lvl := m.walkLevel(src)
	if lvl == 0 {
		return x
	}
	return m.sampleSibling(x, lvl, src)
}

// walkLevel draws the stopping level of the Alg. 3 random walk.
func (m *HSTMechanism) walkLevel(src *rng.Source) int {
	d := m.tree.Depth()
	lvl := 0
	// pu[d] is 0 by construction (tw[d+1] = 0), so lvl ≤ d; reaching d
	// through the loop bound alone cannot happen with consistent weights,
	// but guard anyway: turning down at the root is well defined.
	for lvl < d && src.Float64() < m.pu[lvl] {
		lvl++
	}
	return lvl
}

// walkStackDepth is the deepest tree whose walk buffer fits on the stack;
// realistic HSTs are far shallower (D ≈ 10 for a 64×64 grid).
const walkStackDepth = 64

// ObfuscateWalkInto is ObfuscateWalk drawing the same distribution from the
// same random stream, but writing the sampled digits through the
// caller-owned scratch buffer (len ≥ D) instead of a fresh one. It
// allocates only the final Code materialisation — nothing when the walk
// stops at level 0 — so a caller obfuscating a wave of agents reuses one
// scratch per goroutine. The returned Code never aliases scratch.
func (m *HSTMechanism) ObfuscateWalkInto(x hst.Code, src *rng.Source, scratch []byte) hst.Code {
	lvl := m.walkLevel(src)
	if lvl == 0 {
		return x
	}
	m.sampleSiblingInto(scratch, x, lvl, src)
	return hst.Code(scratch[:m.tree.Depth()])
}

// ObfuscateInto obfuscates every code of xs into dst (allocated when nil or
// short), drawing exactly the random stream that calling ObfuscateWalk on
// each element in order would draw — batch and loop are interchangeable,
// result for result. All sampled codes are materialised through one shared
// slab with a single string conversion, so the per-item allocation cost is
// amortised to two allocations per batch.
func (m *HSTMechanism) ObfuscateInto(dst []hst.Code, xs []hst.Code, src *rng.Source) []hst.Code {
	if len(dst) < len(xs) {
		dst = make([]hst.Code, len(xs))
	}
	d := m.tree.Depth()
	if d == 0 {
		// Depth-0 trees have a single leaf: every walk stops at level 0.
		for i, x := range xs {
			m.walkLevel(src)
			dst[i] = x
		}
		return dst[:len(xs)]
	}
	slab := make([]byte, len(xs)*d)
	for i, x := range xs {
		lvl := m.walkLevel(src)
		if lvl == 0 {
			dst[i] = x // reported unchanged; no slab entry needed
			continue
		}
		m.sampleSiblingInto(slab[i*d:(i+1)*d], x, lvl, src)
		dst[i] = "" // sampled; resolved against the slab string below
	}
	// One string materialisation covers every sampled code; slices of it
	// share the backing, so per-item cost is zero. A valid depth-d code is
	// never the empty string, making "" a safe sentinel.
	all := string(slab)
	for i := range xs {
		if dst[i] == "" {
			dst[i] = hst.Code(all[i*d : (i+1)*d])
		}
	}
	return dst[:len(xs)]
}

// ObfuscateEnumerate is the literal Alg. 2: it materialises M(x)(·) over
// every leaf of the complete tree and samples from it.
func (m *HSTMechanism) ObfuscateEnumerate(x hst.Code, src *rng.Source) (hst.Code, error) {
	codes, probs, err := m.EnumerateDistribution(x)
	if err != nil {
		return "", err
	}
	i := src.WeightedIndex(probs)
	if i < 0 {
		return "", fmt.Errorf("privacy: degenerate leaf distribution")
	}
	return codes[i], nil
}

// EnumerateLimit bounds the size of complete trees ObfuscateEnumerate and
// EnumerateDistribution will materialise.
const EnumerateLimit = 1 << 21

// EnumerateDistribution returns every leaf code of the complete tree
// together with M(x)(code). It errors when c^D exceeds EnumerateLimit.
func (m *HSTMechanism) EnumerateDistribution(x hst.Code) ([]hst.Code, []float64, error) {
	total := m.tree.TotalLeaves()
	if total > EnumerateLimit {
		return nil, nil, fmt.Errorf("privacy: complete tree has %.3g leaves, over the enumeration limit %d", total, EnumerateLimit)
	}
	n := int(total)
	d, c := m.tree.Depth(), m.tree.Degree()
	codes := make([]hst.Code, 0, n)
	probs := make([]float64, 0, n)
	buf := make([]byte, d)
	var rec func(j int)
	rec = func(j int) {
		if j == d {
			z := hst.Code(buf)
			codes = append(codes, z)
			probs = append(probs, m.LeafProb(x, z))
			return
		}
		for digit := 0; digit < c; digit++ {
			buf[j] = byte(digit)
			rec(j + 1)
		}
	}
	rec(0)
	return codes, probs, nil
}

// sampleSibling returns a uniform leaf of L_lvl(x): keep x's ancestor at
// level lvl, replace the child step below it by a uniform non-ancestor
// digit, and fill the remaining lvl−1 digits uniformly.
func (m *HSTMechanism) sampleSibling(x hst.Code, lvl int, src *rng.Source) hst.Code {
	var stack [walkStackDepth]byte
	buf := stack[:]
	if d := m.tree.Depth(); d > len(buf) {
		buf = make([]byte, d)
	}
	m.sampleSiblingInto(buf, x, lvl, src)
	return hst.Code(buf[:m.tree.Depth()])
}

// sampleSiblingInto writes a uniform leaf of L_lvl(x) into out[:D] without
// allocating: the digits of x's level-lvl ancestor, then a uniform
// non-ancestor digit, then uniform fill.
func (m *HSTMechanism) sampleSiblingInto(out []byte, x hst.Code, lvl int, src *rng.Source) {
	d, c := m.tree.Depth(), m.tree.Degree()
	copy(out, x[:d-lvl])
	// Uniform digit different from x's at this depth.
	own := int(x[d-lvl])
	digit := src.Intn(c - 1)
	if digit >= own {
		digit++
	}
	out[d-lvl] = byte(digit)
	for j := d - lvl + 1; j < d; j++ {
		out[j] = byte(src.Intn(c))
	}
}

// WalkDistribution computes, analytically, the probability that the
// random walk of Alg. 3 stops at each LCA level: P[level i] =
// (Π_{j<i} pu_j)·(1−pu_i). The tests compare it against LevelProbs to
// prove Theorem 2 (identical distributions) without sampling.
func (m *HSTMechanism) WalkDistribution() []float64 {
	d := m.tree.Depth()
	out := make([]float64, d+1)
	acc := 1.0
	for i := 0; i <= d; i++ {
		out[i] = acc * (1 - m.pu[i])
		acc *= m.pu[i]
	}
	return out
}
