package privacy

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestNewGridExponentialValidation(t *testing.T) {
	cands := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}
	if _, err := NewGridExponential(0, cands); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewGridExponential(1, nil); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestGridExponentialProbSumsToOne(t *testing.T) {
	g := geo.MustGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(50, 50)), 5, 5)
	m, err := NewGridExponential(0.4, g.Points())
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Pt(12, 33)
	var sum float64
	for z := range g.Points() {
		sum += m.Prob(p, z)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ probs = %v", sum)
	}
}

func TestGridExponentialSamplingMatchesProb(t *testing.T) {
	g := geo.MustGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(20, 20)), 3, 3)
	m, err := NewGridExponential(0.5, g.Points())
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Pt(4, 4)
	src := rng.New(13)
	const n = 80000
	counts := make([]int, g.Len())
	for i := 0; i < n; i++ {
		counts[m.ObfuscateIndex(p, src)]++
	}
	for z := range counts {
		want := m.Prob(p, z)
		got := float64(counts[z]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("candidate %d: freq %v, prob %v", z, got, want)
		}
	}
}

func TestGridExponentialGeoI(t *testing.T) {
	g := geo.MustGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(40, 40)), 4, 4)
	m, err := NewGridExponential(0.6, g.Points())
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]int, g.Len())
	for i := range inputs {
		inputs[i] = i
	}
	rep := VerifyGridExponentialGeoI(m, inputs, 1e-9)
	if !rep.Satisfied() {
		t.Errorf("%v", rep)
	}
}

func TestGridExponentialUnderflowFallback(t *testing.T) {
	// With an enormous ε and a faraway point, all weights underflow to 0;
	// the mechanism must fall back to the nearest candidate, not panic.
	cands := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0)}
	m, err := NewGridExponential(1000, cands)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	if got := m.ObfuscateIndex(geo.Pt(1e6, 1e6), src); got != 1 {
		t.Errorf("fallback picked %d, want nearest (1)", got)
	}
}
