package privacy

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// paperTree rebuilds the Example 1 HST: 4 points, β = 1/2, identity
// permutation, giving D = 4 and c = 2.
func paperTree(t *testing.T) *hst.Tree {
	t.Helper()
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomTree(t *testing.T, src *rng.Source, n int, side float64) *hst.Tree {
	t.Helper()
	pts := make([]geo.Point, 0, n)
	seen := map[geo.Point]bool{}
	for len(pts) < n {
		p := geo.Pt(src.Uniform(0, side), src.Uniform(0, side))
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	tr, err := hst.Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewHSTMechanismValidation(t *testing.T) {
	tr := paperTree(t)
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewHSTMechanism(tr, eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

// TestPaperTableI reproduces Table I of the paper: per-leaf obfuscation
// probabilities for x = o1 at ε = 0.1.
func TestPaperTableI(t *testing.T) {
	tr := paperTree(t)
	m, err := NewHSTMechanism(tr, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wantWt := []float64{1, 0.670, 0.301, 0.061, 0.002}
	wantProb := []float64{0.394, 0.264, 0.119, 0.024, 0.001}
	for i := 0; i <= 4; i++ {
		if got := m.Weight(i); math.Abs(got-wantWt[i]) > 5e-4 {
			t.Errorf("wt_%d = %.4f, want %.3f", i, got, wantWt[i])
		}
		perLeaf := m.Weight(i) / m.TotalWeight()
		if math.Abs(perLeaf-wantProb[i]) > 5e-4 {
			t.Errorf("per-leaf prob at level %d = %.4f, want %.3f", i, perLeaf, wantProb[i])
		}
	}
}

// TestPaperExample3WalkProbabilities reproduces Example 3: pu₀ = 0.606,
// pu₁ = 0.564, and P[o1 → f3] = 0.119.
func TestPaperExample3WalkProbabilities(t *testing.T) {
	tr := paperTree(t)
	m, err := NewHSTMechanism(tr, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.WalkUpProb(0); math.Abs(got-0.606) > 1e-3 {
		t.Errorf("pu0 = %.4f, want 0.606", got)
	}
	if got := m.WalkUpProb(1); math.Abs(got-0.564) > 1e-3 {
		t.Errorf("pu1 = %.4f, want 0.564", got)
	}
	// f3 in the paper's Fig. 3/4 is a fake leaf whose LCA with o1 is at
	// level 2; every such leaf has probability wt_2/WT ≈ 0.119.
	o1 := tr.CodeOf(0)
	f3 := []byte(o1)
	f3[len(f3)-2] ^= 1 // flip the digit two levels up: LCA level 2
	z := hst.Code(f3)
	if lvl := tr.LCALevel(o1, z); lvl != 2 {
		t.Fatalf("constructed leaf has LCA level %d, want 2", lvl)
	}
	if got := m.LeafProb(o1, z); math.Abs(got-0.119) > 5e-4 {
		t.Errorf("P[o1→f3] = %.4f, want 0.119", got)
	}
}

// TestTheorem2WalkEqualsDirect proves Alg. 3 ≡ Alg. 2 analytically: the
// walk's stopping-level distribution equals the closed-form level
// distribution for every level, across trees and budgets.
func TestTheorem2WalkEqualsDirect(t *testing.T) {
	src := rng.New(404)
	for trial := 0; trial < 6; trial++ {
		tr := randomTree(t, src.DeriveN("t", trial), 20+trial*17, 150)
		for _, eps := range []float64{0.1, 0.2, 0.6, 1.0, 2.0} {
			m, err := NewHSTMechanism(tr, eps)
			if err != nil {
				t.Fatal(err)
			}
			direct := m.LevelProbs()
			walk := m.WalkDistribution()
			for i := range direct {
				if math.Abs(direct[i]-walk[i]) > 1e-12 {
					t.Fatalf("trial %d ε=%v: level %d direct %v walk %v",
						trial, eps, i, direct[i], walk[i])
				}
			}
		}
	}
}

func TestLevelProbsSumToOne(t *testing.T) {
	src := rng.New(7)
	tr := randomTree(t, src, 40, 200)
	for _, eps := range []float64{0.05, 0.2, 1, 5} {
		m, err := NewHSTMechanism(tr, eps)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range m.LevelProbs() {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("ε=%v: Σ level probs = %v", eps, sum)
		}
	}
}

// TestSamplersAgreeChiSquare draws from all three samplers on the Example 1
// tree and checks each against the exact leaf distribution with a χ² test.
func TestSamplersAgreeChiSquare(t *testing.T) {
	tr := paperTree(t)
	m, err := NewHSTMechanism(tr, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	x := tr.CodeOf(0)
	codes, probs, err := m.EnumerateDistribution(x)
	if err != nil {
		t.Fatal(err)
	}
	index := map[hst.Code]int{}
	for i, c := range codes {
		index[c] = i
	}
	const n = 60000
	samplers := map[string]func(src *rng.Source) hst.Code{
		"walk":   func(src *rng.Source) hst.Code { return m.ObfuscateWalk(x, src) },
		"direct": func(src *rng.Source) hst.Code { return m.ObfuscateDirect(x, src) },
		"enumerate": func(src *rng.Source) hst.Code {
			z, err := m.ObfuscateEnumerate(x, src)
			if err != nil {
				t.Fatal(err)
			}
			return z
		},
	}
	for name, sample := range samplers {
		src := rng.New(1).Derive(name)
		counts := make([]int, len(codes))
		for i := 0; i < n; i++ {
			z := sample(src)
			j, ok := index[z]
			if !ok {
				t.Fatalf("%s produced non-leaf code %q", name, z)
			}
			counts[j]++
		}
		var chi2 float64
		dof := 0
		for j, p := range probs {
			expected := p * n
			if expected < 5 {
				continue // merge-tail convention; tiny cells skipped
			}
			dof++
			d := float64(counts[j]) - expected
			chi2 += d * d / expected
		}
		// 99.9th percentile of χ² with ~16 dof is ≈ 39; use a loose 80.
		if chi2 > 80 {
			t.Errorf("%s: χ² = %v over %d cells", name, chi2, dof)
		}
	}
}

// TestTheorem1GeoI audits Geo-Indistinguishability exactly on several trees
// and budgets by full enumeration of (x1, x2, z) triples.
func TestTheorem1GeoI(t *testing.T) {
	src := rng.New(2025)
	trees := []*hst.Tree{
		paperTree(t),
		randomTree(t, src.Derive("a"), 12, 60),
		randomTree(t, src.Derive("b"), 25, 300),
	}
	for ti, tr := range trees {
		for _, eps := range []float64{0.1, 0.5, 1.0} {
			m, err := NewHSTMechanism(tr, eps)
			if err != nil {
				t.Fatal(err)
			}
			rep := VerifyHSTGeoI(m, 1e-9)
			if !rep.Satisfied() {
				t.Errorf("tree %d ε=%v: %v", ti, eps, rep)
			}
			if rep.Checked == 0 {
				t.Errorf("tree %d ε=%v: no triples audited", ti, eps)
			}
		}
	}
}

func TestLeafProbMatchesEnumeration(t *testing.T) {
	tr := paperTree(t)
	m, err := NewHSTMechanism(tr, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.NumPoints(); i++ {
		x := tr.CodeOf(i)
		codes, probs, err := m.EnumerateDistribution(x)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for j, z := range codes {
			if got := m.LeafProb(x, z); math.Abs(got-probs[j]) > 1e-15 {
				t.Fatalf("LeafProb(%q,%q) inconsistent", x, z)
			}
			sum += probs[j]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("leaf distribution for point %d sums to %v", i, sum)
		}
	}
}

func TestEnumerateRefusesHugeTrees(t *testing.T) {
	src := rng.New(88)
	tr := randomTree(t, src, 400, 4000) // deep tree: c^D will be huge
	m, err := NewHSTMechanism(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalLeaves() <= EnumerateLimit {
		t.Skip("tree unexpectedly small; nothing to refuse")
	}
	if _, _, err := m.EnumerateDistribution(tr.CodeOf(0)); err == nil {
		t.Error("enumeration of huge tree accepted")
	}
}

func TestObfuscatePreservesCodeValidity(t *testing.T) {
	src := rng.New(3)
	tr := randomTree(t, src, 60, 250)
	m, err := NewHSTMechanism(tr, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	s := src.Derive("samples")
	for i := 0; i < 2000; i++ {
		x := tr.CodeOf(s.Intn(tr.NumPoints()))
		z := m.Obfuscate(x, s)
		if err := tr.CheckCode(z); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
}

func TestWalkStaysAtLeafForLargeEps(t *testing.T) {
	// With ε huge, P[stay] → 1: the mechanism must return x essentially
	// always (and the level distribution must say so).
	tr := paperTree(t)
	m, err := NewHSTMechanism(tr, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.LevelProbs()[0]; p < 0.9999 {
		t.Errorf("P[level 0] = %v at ε=50", p)
	}
	src := rng.New(9)
	x := tr.CodeOf(2)
	for i := 0; i < 100; i++ {
		if z := m.ObfuscateWalk(x, src); z != x {
			t.Fatalf("walked away from x at ε=50")
		}
	}
}
