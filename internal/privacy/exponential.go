package privacy

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// GridExponential is the classic exponential mechanism over a finite set of
// candidate points with utility −d(x, z): candidate z is reported with
// probability ∝ e^{−ε·d(x,z)/2}. It is ε-Geo-Indistinguishable in the
// Euclidean metric and serves as an ablation comparator for the HST
// mechanism (same finite output domain, no tree structure, O(N) sampling).
type GridExponential struct {
	eps        float64
	candidates []geo.Point
}

// NewGridExponential returns the mechanism over the candidate set.
func NewGridExponential(eps float64, candidates []geo.Point) (*GridExponential, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, eps)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("privacy: exponential mechanism needs candidates")
	}
	return &GridExponential{eps: eps, candidates: candidates}, nil
}

// Epsilon returns the privacy budget.
func (g *GridExponential) Epsilon() float64 { return g.eps }

// ObfuscateIndex samples a candidate index for true location p.
func (g *GridExponential) ObfuscateIndex(p geo.Point, src *rng.Source) int {
	w := make([]float64, len(g.candidates))
	for i, c := range g.candidates {
		w[i] = math.Exp(-g.eps / 2 * p.Dist(c))
	}
	i := src.WeightedIndex(w)
	if i < 0 {
		// All weights underflowed: fall back to the nearest candidate,
		// which is the mode of the intended distribution.
		best, bestD := 0, math.Inf(1)
		for j, c := range g.candidates {
			if d := p.Dist(c); d < bestD {
				best, bestD = j, d
			}
		}
		return best
	}
	return i
}

// ObfuscatePoint samples a candidate point for true location p.
func (g *GridExponential) ObfuscatePoint(p geo.Point, src *rng.Source) geo.Point {
	return g.candidates[g.ObfuscateIndex(p, src)]
}

// Prob returns the exact probability of reporting candidate z for true
// location p (for the Geo-I verifier).
func (g *GridExponential) Prob(p geo.Point, z int) float64 {
	var total float64
	for _, c := range g.candidates {
		total += math.Exp(-g.eps / 2 * p.Dist(c))
	}
	return math.Exp(-g.eps/2*p.Dist(g.candidates[z])) / total
}
