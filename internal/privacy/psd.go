package privacy

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// NoisyQuadtree is an ε-differentially-private spatial decomposition in the
// style of Cormode et al. (ICDE'12), the construction To et al. (PVLDB'14)
// use to protect *worker densities* — the paper's related-work baseline for
// aggregate (rather than per-location) privacy. A fixed-depth quadtree is
// built over the region; every node stores its point count perturbed with
// Laplace noise, with the budget split geometrically across levels (deeper
// levels, which answer finer queries, receive larger shares).
//
// Unlike Geo-Indistinguishability, this protects presence in *counts*: any
// single location change alters one count per level, so by sequential
// composition the whole tree is ε-differentially private.
type NoisyQuadtree struct {
	eps   float64
	depth int
	root  *nqNode
}

type nqNode struct {
	bounds   geo.Rect
	noisy    float64
	children *[4]*nqNode
}

// NewNoisyQuadtree builds the decomposition over the points. depth is the
// number of split levels (the tree has depth+1 count layers; 4^depth leaf
// cells). src supplies the Laplace noise.
func NewNoisyQuadtree(region geo.Rect, points []geo.Point, eps float64, depth int, src *rng.Source) (*NoisyQuadtree, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, eps)
	}
	if depth < 0 || depth > 12 {
		return nil, fmt.Errorf("privacy: quadtree depth %d outside [0, 12]", depth)
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("privacy: region %v must have positive area", region)
	}
	budgets := levelBudgets(eps, depth)
	t := &NoisyQuadtree{eps: eps, depth: depth}
	clamped := make([]geo.Point, len(points))
	for i, p := range points {
		clamped[i] = region.Clamp(p)
	}
	t.root = buildNQ(region, clamped, budgets, 0, depth, src)
	return t, nil
}

// levelBudgets splits ε geometrically: level i (root = 0) receives a share
// proportional to 2^(i/3), the allocation Cormode et al. show balances
// noise against uniformity error.
func levelBudgets(eps float64, depth int) []float64 {
	n := depth + 1
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(2, float64(i)/3)
		total += weights[i]
	}
	for i := range weights {
		weights[i] = eps * weights[i] / total
	}
	return weights
}

func buildNQ(bounds geo.Rect, pts []geo.Point, budgets []float64, level, depth int, src *rng.Source) *nqNode {
	n := &nqNode{
		bounds: bounds,
		noisy:  float64(len(pts)) + LaplaceScalar(1/budgets[level], src),
	}
	if level == depth {
		return n
	}
	quads := bounds.Quadrants()
	buckets := [4][]geo.Point{}
	for _, p := range pts {
		buckets[nqChild(bounds, p)] = append(buckets[nqChild(bounds, p)], p)
	}
	var ch [4]*nqNode
	for i := range ch {
		ch[i] = buildNQ(quads[i], buckets[i], budgets, level+1, depth, src)
	}
	n.children = &ch
	return n
}

func nqChild(b geo.Rect, p geo.Point) int {
	c := b.Center()
	if p.Y >= c.Y {
		if p.X < c.X {
			return 0
		}
		return 1
	}
	if p.X < c.X {
		return 2
	}
	return 3
}

// Epsilon returns the total differential-privacy budget of the tree.
func (t *NoisyQuadtree) Epsilon() float64 { return t.eps }

// Depth returns the number of split levels.
func (t *NoisyQuadtree) Depth() int { return t.depth }

// TotalCount returns the noisy total population (the root count).
func (t *NoisyQuadtree) TotalCount() float64 { return t.root.noisy }

// CountIn estimates the number of points inside r: counts of nodes fully
// contained in r are used whole; partially overlapping leaf cells
// contribute under the standard uniformity assumption (count scaled by the
// overlap area fraction).
func (t *NoisyQuadtree) CountIn(r geo.Rect) float64 {
	return nqCount(t.root, r)
}

func nqCount(n *nqNode, r geo.Rect) float64 {
	if !n.bounds.Intersects(r) {
		return 0
	}
	if rectContainsRect(r, n.bounds) {
		return n.noisy
	}
	if n.children == nil {
		frac := overlapArea(n.bounds, r) / (n.bounds.Width() * n.bounds.Height())
		return n.noisy * frac
	}
	var sum float64
	for _, ch := range n.children {
		sum += nqCount(ch, r)
	}
	return sum
}

// DensestCell returns the leaf cell with the largest noisy count — the
// primitive To et al.'s offline assignment uses to pick the region whose
// workers receive a task.
func (t *NoisyQuadtree) DensestCell() (geo.Rect, float64) {
	best := t.root
	var walk func(n *nqNode)
	walk = func(n *nqNode) {
		if n.children == nil {
			if best.children != nil || n.noisy > best.noisy {
				best = n
			}
			return
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(t.root)
	return best.bounds, best.noisy
}

func rectContainsRect(outer, inner geo.Rect) bool {
	return inner.MinX >= outer.MinX && inner.MaxX <= outer.MaxX &&
		inner.MinY >= outer.MinY && inner.MaxY <= outer.MaxY
}

func overlapArea(a, b geo.Rect) float64 {
	w := math.Min(a.MaxX, b.MaxX) - math.Max(a.MinX, b.MinX)
	h := math.Min(a.MaxY, b.MaxY) - math.Max(a.MinY, b.MinY)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// LaplaceScalar draws one-dimensional Laplace noise with scale b via
// inverse-CDF sampling. It is the noise primitive of differentially private
// counts (distinct from the *planar* Laplace used for locations).
func LaplaceScalar(b float64, src *rng.Source) float64 {
	u := src.Float64() - 0.5
	mag := 1 - 2*math.Abs(u)
	if mag <= 0 { // u landed exactly on −1/2; the next float is fine
		mag = math.SmallestNonzeroFloat64
	}
	if u < 0 {
		return b * math.Log(mag)
	}
	return -b * math.Log(mag)
}
