package privacy

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/numeric"
	"github.com/pombm/pombm/internal/rng"
)

func TestNewPlanarLaplaceValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.5, math.NaN(), math.Inf(1)} {
		if _, err := NewPlanarLaplace(eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	if l, err := NewPlanarLaplace(0.7); err != nil || l.Epsilon() != 0.7 {
		t.Errorf("valid eps rejected: %v", err)
	}
}

func TestRadialCDFInverseRoundTrip(t *testing.T) {
	for _, eps := range []float64{0.2, 0.6, 1.0, 3.0} {
		for _, u := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.9999} {
			r, err := InverseRadialCDF(eps, u)
			if err != nil {
				t.Fatalf("eps=%v u=%v: %v", eps, u, err)
			}
			if back := RadialCDF(eps, r); math.Abs(back-u) > 1e-9 {
				t.Errorf("eps=%v: CDF(CDF⁻¹(%v)) = %v", eps, u, back)
			}
		}
	}
	if _, err := InverseRadialCDF(1, 1); err == nil {
		t.Error("u=1 accepted")
	}
	if _, err := InverseRadialCDF(1, -0.1); err == nil {
		t.Error("u<0 accepted")
	}
}

func TestSampleRadiusMoments(t *testing.T) {
	// The planar Laplace radial distribution has mean 2/ε.
	for _, eps := range []float64{0.2, 1.0} {
		l, err := NewPlanarLaplace(eps)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(11)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += l.SampleRadius(src)
		}
		mean := sum / n
		want := 2 / eps
		if math.Abs(mean-want) > 0.03*want {
			t.Errorf("eps=%v: mean radius %v, want %v", eps, mean, want)
		}
	}
}

func TestObfuscatePointIsotropy(t *testing.T) {
	// Noise must be unbiased: the average reported point converges to the
	// true point in both coordinates.
	l, err := NewPlanarLaplace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(21)
	p := geo.Pt(10, -7)
	const n = 200000
	var sx, sy float64
	for i := 0; i < n; i++ {
		z := l.ObfuscatePoint(p, src)
		sx += z.X
		sy += z.Y
	}
	if math.Abs(sx/n-p.X) > 0.05 || math.Abs(sy/n-p.Y) > 0.05 {
		t.Errorf("mean reported point (%v, %v), want %v", sx/n, sy/n, p)
	}
}

func TestPlanarLaplacePDFGeoIBound(t *testing.T) {
	// Density ratio respects e^{ε·d(x1,x2)} for arbitrary triples.
	l, err := NewPlanarLaplace(0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	for i := 0; i < 5000; i++ {
		x1 := geo.Pt(src.Uniform(0, 100), src.Uniform(0, 100))
		x2 := geo.Pt(src.Uniform(0, 100), src.Uniform(0, 100))
		z := geo.Pt(src.Uniform(-50, 150), src.Uniform(-50, 150))
		bound := math.Exp(l.Epsilon() * x1.Dist(x2))
		ratio := l.PDF(x1, z) / l.PDF(x2, z)
		if ratio > bound*(1+1e-9) {
			t.Fatalf("pdf ratio %v exceeds bound %v", ratio, bound)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	l, err := NewPlanarLaplace(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Radial integration of the planar pdf: ∫ 2πρ·pdf(ρ) dρ = 1.
	f := func(rho float64) float64 {
		return 2 * math.Pi * rho * l.PDF(geo.Pt(0, 0), geo.Pt(rho, 0))
	}
	got := numeric.AdaptiveSimpson(f, 0, 60, 1e-10)
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("∫ pdf = %v", got)
	}
}

func TestCaptureProbAgainstMonteCarlo(t *testing.T) {
	cases := []struct{ eps, d, reach float64 }{
		{0.5, 3, 5}, {0.5, 8, 5}, {1.0, 0, 4}, {0.2, 10, 15}, {1.5, 2, 2},
	}
	for _, c := range cases {
		l, err := NewPlanarLaplace(c.eps)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(77)
		const n = 150000
		in := 0
		target := geo.Pt(c.d, 0)
		for i := 0; i < n; i++ {
			// True point at origin; reported point z = noise. The capture
			// question is symmetric: P[ ||true − target|| ≤ reach | z at
			// distance d ] with true = z − noise ~ z + noise by isotropy.
			z := l.ObfuscatePoint(geo.Pt(0, 0), src)
			if z.Dist(target) <= c.reach {
				in++
			}
		}
		mc := float64(in) / n
		got := CaptureProb(c.eps, c.d, c.reach)
		if math.Abs(got-mc) > 0.01 {
			t.Errorf("CaptureProb(ε=%v,d=%v,r=%v) = %v, Monte Carlo = %v",
				c.eps, c.d, c.reach, got, mc)
		}
	}
}

func TestCaptureProbProperties(t *testing.T) {
	if got := CaptureProb(0.5, 3, 0); got != 0 {
		t.Errorf("zero reach = %v", got)
	}
	// d = 0 reduces to the radial CDF.
	if got, want := CaptureProb(0.7, 0, 4), RadialCDF(0.7, 4); math.Abs(got-want) > 1e-9 {
		t.Errorf("d=0: %v, want %v", got, want)
	}
	// Monotone in reach, antitone in distance.
	prev := 0.0
	for r := 0.0; r <= 20; r += 0.5 {
		cur := CaptureProb(0.5, 6, r)
		if cur+1e-9 < prev {
			t.Fatalf("not monotone in reach at r=%v", r)
		}
		prev = cur
	}
	prev = 1.0
	for d := 0.0; d <= 20; d += 0.5 {
		cur := CaptureProb(0.5, d, 6)
		if cur > prev+1e-9 {
			t.Fatalf("not antitone in distance at d=%v", d)
		}
		prev = cur
	}
}
