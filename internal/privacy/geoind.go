package privacy

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/hst"
)

// GeoIReport is the result of an exact Geo-Indistinguishability audit.
// The audit is carried out in log space: a triple (x1, x2, z) satisfies
// the definition when ln M(x1)(z) − ln M(x2)(z) ≤ ε·d(x1, x2), so
// WorstMargin records the maximum of the left side minus the right side
// (≤ 0 when the mechanism is ε-Geo-I).
type GeoIReport struct {
	Checked     int     // number of (x1, x2, z) triples examined
	Violations  int     // triples violating the bound beyond the slack
	WorstMargin float64 // max ln ratio − ε·d over all triples
}

// Satisfied reports whether no violation was found.
func (r GeoIReport) Satisfied() bool { return r.Violations == 0 }

// String implements fmt.Stringer.
func (r GeoIReport) String() string {
	return fmt.Sprintf("geo-indistinguishability: %d triples, %d violations, worst log-margin %.3g",
		r.Checked, r.Violations, r.WorstMargin)
}

// VerifyHSTGeoI audits the HST mechanism exactly: for every ordered pair of
// real-leaf inputs (x1, x2) and every output leaf z of the complete tree
// (enumerated when feasible, else all real leaves), it checks Theorem 1:
//
//	ln M(x1)(z) − ln M(x2)(z) ≤ ε·dT(x1, x2).
//
// Probabilities come from the closed form in log space, so this is a
// proof-by-enumeration over the audited triples, immune to the weight
// underflow that affects linear-space probabilities on deep trees.
func VerifyHSTGeoI(m *HSTMechanism, slack float64) GeoIReport {
	t := m.Tree()
	var outputs []hst.Code
	if t.TotalLeaves() <= EnumerateLimit {
		outputs, _, _ = m.EnumerateDistribution(t.CodeOf(0))
	} else {
		for i := 0; i < t.NumPoints(); i++ {
			outputs = append(outputs, t.CodeOf(i))
		}
	}
	rep := GeoIReport{WorstMargin: math.Inf(-1)}
	eps := m.Epsilon()
	for i := 0; i < t.NumPoints(); i++ {
		x1 := t.CodeOf(i)
		for j := 0; j < t.NumPoints(); j++ {
			x2 := t.CodeOf(j)
			bound := eps * t.Dist(x1, x2)
			for _, z := range outputs {
				rep.Checked++
				margin := m.LogLeafProb(x1, z) - m.LogLeafProb(x2, z) - bound
				if margin > rep.WorstMargin {
					rep.WorstMargin = margin
				}
				if margin > slack {
					rep.Violations++
				}
			}
		}
	}
	return rep
}

// VerifyGridExponentialGeoI audits the grid exponential mechanism exactly
// over the given input points and all candidate outputs, also in log space.
func VerifyGridExponentialGeoI(g *GridExponential, inputs []int, slack float64) GeoIReport {
	rep := GeoIReport{WorstMargin: math.Inf(-1)}
	logProb := func(x, z int) float64 {
		p := g.candidates[x]
		var terms []float64
		for _, c := range g.candidates {
			terms = append(terms, -g.eps/2*p.Dist(c))
		}
		return -g.eps/2*p.Dist(g.candidates[z]) - logSum(terms)
	}
	for _, i := range inputs {
		for _, j := range inputs {
			bound := g.eps * g.candidates[i].Dist(g.candidates[j])
			for z := range g.candidates {
				rep.Checked++
				margin := logProb(i, z) - logProb(j, z) - bound
				if margin > rep.WorstMargin {
					rep.WorstMargin = margin
				}
				if margin > slack {
					rep.Violations++
				}
			}
		}
	}
	return rep
}

func logSum(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}
