package privacy

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExhausted is wrapped by Spend when a report would push an agent
// past its lifetime budget. Serving layers match it to park the agent
// instead of silently re-noising.
var ErrBudgetExhausted = errors.New("privacy: lifetime budget exhausted")

// Accountant tracks cumulative Geo-Indistinguishability budget per agent
// under sequential composition: each report of (a perturbation of) the same
// location adds its ε to the agent's total, and the accountant refuses
// reports that would exceed the agent's lifetime budget.
//
// The paper's model is one-shot (every worker and task reports once), so
// the evaluation never composes; a deployed platform, where workers
// re-report as they move, needs exactly this bookkeeping to keep the
// advertised guarantee meaningful.
type Accountant struct {
	limit float64

	mu    sync.Mutex
	spent map[string]float64
	total float64 // Σ spent over all agents; conserved by construction
}

// NewAccountant returns an accountant enforcing a lifetime ε budget per
// agent id.
func NewAccountant(limit float64) (*Accountant, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("%w (lifetime budget %v)", ErrBadEpsilon, limit)
	}
	return &Accountant{limit: limit, spent: map[string]float64{}}, nil
}

// Limit returns the lifetime budget.
func (a *Accountant) Limit() float64 { return a.limit }

// Spend records a report with budget eps for the agent. It returns an
// error — and records nothing — when the agent's total would exceed the
// lifetime budget or eps is not positive.
func (a *Accountant) Spend(agentID string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("%w (got %v)", ErrBadEpsilon, eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent[agentID]+eps > a.limit+1e-12 {
		return fmt.Errorf("%w: agent %q spent %.4g of %.4g, requested %.4g",
			ErrBudgetExhausted, agentID, a.spent[agentID], a.limit, eps)
	}
	a.spent[agentID] += eps
	a.total += eps
	return nil
}

// Spent returns the budget the agent has consumed so far.
func (a *Accountant) Spent(agentID string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[agentID]
}

// TotalSpent returns the sum of every recorded spend across all agents.
// Budget conservation — TotalSpent equals the sum the caller's own ledger
// of successful Spend calls — is the invariant the rotation tests assert.
func (a *Accountant) TotalSpent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Agents returns the number of agents with recorded spend.
func (a *Accountant) Agents() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spent)
}

// Remaining returns the budget the agent has left.
func (a *Accountant) Remaining(agentID string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.limit - a.spent[agentID]
	if r < 0 {
		return 0
	}
	return r
}
