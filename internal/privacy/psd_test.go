package privacy

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestLaplaceScalarMoments(t *testing.T) {
	src := rng.New(8)
	const n = 300000
	b := 2.5
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := LaplaceScalar(b, src)
		sum += v
		sumAbs += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.03 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(b).
	if meanAbs := sumAbs / n; math.Abs(meanAbs-b) > 0.03 {
		t.Errorf("E|X| = %v, want %v", meanAbs, b)
	}
}

func TestLevelBudgetsSumToEpsilon(t *testing.T) {
	for _, depth := range []int{0, 1, 3, 7} {
		bs := levelBudgets(1.5, depth)
		if len(bs) != depth+1 {
			t.Fatalf("depth %d: %d budgets", depth, len(bs))
		}
		var sum float64
		for i, b := range bs {
			if b <= 0 {
				t.Fatalf("budget %d non-positive", i)
			}
			if i > 0 && b < bs[i-1] {
				t.Errorf("budgets not increasing with depth: %v", bs)
			}
			sum += b
		}
		if math.Abs(sum-1.5) > 1e-9 {
			t.Errorf("depth %d: budgets sum to %v", depth, sum)
		}
	}
}

func TestNoisyQuadtreeValidation(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	src := rng.New(1)
	if _, err := NewNoisyQuadtree(region, nil, 0, 3, src); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewNoisyQuadtree(region, nil, 1, -1, src); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := NewNoisyQuadtree(region, nil, 1, 13, src); err == nil {
		t.Error("huge depth accepted")
	}
	if _, err := NewNoisyQuadtree(geo.Rect{}, nil, 1, 2, src); err == nil {
		t.Error("degenerate region accepted")
	}
}

func TestNoisyQuadtreeUnbiasedCounts(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	src := rng.New(13)
	pts := make([]geo.Point, 800)
	for i := range pts {
		pts[i] = geo.Pt(src.Uniform(0, 100), src.Uniform(0, 100))
	}
	query := geo.NewRect(geo.Pt(0, 0), geo.Pt(50, 50)) // aligns with quadrants
	trueCount := 0
	for _, p := range pts {
		if query.Contains(p) {
			trueCount++
		}
	}
	const trees = 300
	var sumTotal, sumQuery float64
	for i := 0; i < trees; i++ {
		nq, err := NewNoisyQuadtree(region, pts, 1.0, 4, src.DeriveN("tree", i))
		if err != nil {
			t.Fatal(err)
		}
		sumTotal += nq.TotalCount()
		sumQuery += nq.CountIn(query)
	}
	if got := sumTotal / trees; math.Abs(got-800) > 15 {
		t.Errorf("mean total = %v, want ~800", got)
	}
	if got := sumQuery / trees; math.Abs(got-float64(trueCount)) > 15 {
		t.Errorf("mean query count = %v, true %d", got, trueCount)
	}
}

func TestNoisyQuadtreeQueryGeometry(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(64, 64))
	src := rng.New(5)
	pts := []geo.Point{geo.Pt(10, 10), geo.Pt(50, 50)}
	nq, err := NewNoisyQuadtree(region, pts, 50 /* tiny noise */, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint query.
	if c := nq.CountIn(geo.NewRect(geo.Pt(200, 200), geo.Pt(300, 300))); c != 0 {
		t.Errorf("disjoint count = %v", c)
	}
	// Whole region: close to 2 with ε=50.
	if c := nq.CountIn(region); math.Abs(c-2) > 1 {
		t.Errorf("total = %v, want ~2", c)
	}
	// Containment of the SW quadrant captures the (10,10) point.
	if c := nq.CountIn(geo.NewRect(geo.Pt(0, 0), geo.Pt(32, 32))); math.Abs(c-1) > 1 {
		t.Errorf("SW count = %v, want ~1", c)
	}
}

func TestNoisyQuadtreeDensestCell(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(80, 80))
	src := rng.New(77)
	// Cluster in the NE corner.
	var pts []geo.Point
	for i := 0; i < 400; i++ {
		pts = append(pts, geo.Pt(src.Uniform(70, 80), src.Uniform(70, 80)))
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, geo.Pt(src.Uniform(0, 80), src.Uniform(0, 80)))
	}
	nq, err := NewNoisyQuadtree(region, pts, 5, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	cell, count := nq.DensestCell()
	if count < 100 {
		t.Errorf("densest count = %v, want the NE cluster", count)
	}
	if cell.MinX < 60 || cell.MinY < 60 {
		t.Errorf("densest cell = %v, want the NE corner", cell)
	}
}

func TestNoisyQuadtreeDepthZero(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	nq, err := NewNoisyQuadtree(region, []geo.Point{geo.Pt(5, 5)}, 10, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := nq.CountIn(region); math.Abs(got-1) > 1 {
		t.Errorf("depth-0 total = %v", got)
	}
	if nq.Depth() != 0 || nq.Epsilon() != 10 {
		t.Error("accessors wrong")
	}
}
