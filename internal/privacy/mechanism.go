// Package privacy implements the location-obfuscation mechanisms of the
// POMBM problem: the paper's tree-based mechanism on HST leaves (Alg. 2 and
// its O(D) random-walk implementation, Alg. 3), the planar Laplace
// mechanism of Andrés et al. (CCS'13) used by the Lap-GR/Lap-HG/Prob
// baselines, and a grid exponential mechanism used for ablations. It also
// provides an exact Geo-Indistinguishability verifier used by the tests.
package privacy

import (
	"errors"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// PointMechanism obfuscates locations in the plane. Implementations must be
// safe for concurrent use when each call receives its own rng.Source.
type PointMechanism interface {
	// ObfuscatePoint maps a true location to a reported location.
	ObfuscatePoint(p geo.Point, src *rng.Source) geo.Point
	// Epsilon returns the privacy budget the mechanism was built with.
	Epsilon() float64
}

// ErrBadEpsilon is returned when a non-positive privacy budget is supplied.
var ErrBadEpsilon = errors.New("privacy: epsilon must be positive")
