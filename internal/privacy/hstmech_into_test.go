package privacy

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func intoTestMech(t testing.TB, cols int, eps float64) *HSTMechanism {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200)), cols, cols)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(g.Points(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHSTMechanism(tree, eps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestObfuscateIntoMatchesWalkLoop: the batch sampler must consume exactly
// the random stream of the per-item walk sampler and produce identical
// codes — batch and loop are interchangeable result for result, which is
// what keeps the evaluation pipelines bit-for-bit reproducible across the
// batch migration.
func TestObfuscateIntoMatchesWalkLoop(t *testing.T) {
	m := intoTestMech(t, 16, 0.6)
	tree := m.Tree()
	src := rng.New(42)
	xs := make([]hst.Code, 500)
	for i := range xs {
		xs[i] = tree.CodeOf(src.Intn(tree.NumPoints()))
	}

	loopSrc := rng.New(1234)
	want := make([]hst.Code, len(xs))
	for i, x := range xs {
		want[i] = m.ObfuscateWalk(x, loopSrc)
	}

	batchSrc := rng.New(1234)
	got := m.ObfuscateInto(nil, xs, batchSrc)
	for i := range xs {
		if got[i] != want[i] {
			t.Fatalf("item %d: batch %v ≠ loop %v", i, []byte(got[i]), []byte(want[i]))
		}
	}

	// And the scratch variant draws the same stream too.
	intoSrc := rng.New(1234)
	scratch := make([]byte, tree.Depth())
	for i, x := range xs {
		if z := m.ObfuscateWalkInto(x, intoSrc, scratch); z != want[i] {
			t.Fatalf("item %d: Into %v ≠ loop %v", i, []byte(z), []byte(want[i]))
		}
	}
}

// TestObfuscateIntoReusesDst: a dst slice of sufficient length is reused,
// not reallocated.
func TestObfuscateIntoReusesDst(t *testing.T) {
	m := intoTestMech(t, 8, 0.6)
	xs := []hst.Code{m.Tree().CodeOf(0), m.Tree().CodeOf(1)}
	dst := make([]hst.Code, 8)
	out := m.ObfuscateInto(dst, xs, rng.New(9))
	if len(out) != len(xs) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(xs))
	}
	if &out[0] != &dst[0] {
		t.Error("ObfuscateInto reallocated a sufficient dst")
	}
}

// TestObfuscateWalkIntoNoScratchAlias: the returned code must be detached
// from the scratch buffer — later reuse of scratch must not mutate it.
func TestObfuscateWalkIntoNoScratchAlias(t *testing.T) {
	m := intoTestMech(t, 16, 0.2) // strict ε: walks move often
	tree := m.Tree()
	src := rng.New(3)
	scratch := make([]byte, tree.Depth())
	x := tree.CodeOf(7)
	var z hst.Code
	for i := 0; i < 200; i++ {
		z = m.ObfuscateWalkInto(x, src, scratch)
		if z != x {
			break
		}
	}
	if z == x {
		t.Skip("walk never left the true leaf in 200 draws")
	}
	snapshot := string(z)
	for i := range scratch {
		scratch[i] = 0xFF
	}
	if string(z) != snapshot {
		t.Fatal("returned code aliases the scratch buffer")
	}
}

// TestObfuscateWalkAllocs pins the hot-path allocation contract: at most
// one allocation per ObfuscateWalk (the final Code materialisation), at
// most one for the scratch variant, and amortised ~2 per batch for
// ObfuscateInto.
func TestObfuscateWalkAllocs(t *testing.T) {
	m := intoTestMech(t, 32, 0.6)
	tree := m.Tree()
	src := rng.New(8)
	x := tree.CodeOf(100)

	if a := testing.AllocsPerRun(1000, func() { m.ObfuscateWalk(x, src) }); a > 1 {
		t.Errorf("ObfuscateWalk allocates %.1f/op, want ≤ 1", a)
	}
	scratch := make([]byte, tree.Depth())
	if a := testing.AllocsPerRun(1000, func() { m.ObfuscateWalkInto(x, src, scratch) }); a > 1 {
		t.Errorf("ObfuscateWalkInto allocates %.1f/op, want ≤ 1", a)
	}

	xs := make([]hst.Code, 256)
	for i := range xs {
		xs[i] = tree.CodeOf(i)
	}
	dst := make([]hst.Code, len(xs))
	a := testing.AllocsPerRun(100, func() { m.ObfuscateInto(dst, xs, src) })
	if a > 2 {
		t.Errorf("ObfuscateInto allocates %.1f/batch of %d, want ≤ 2", a, len(xs))
	}
}

func BenchmarkObfuscateWalkInto(b *testing.B) {
	m := intoTestMech(b, 32, 0.6)
	src := rng.New(2)
	x := m.Tree().CodeOf(100)
	scratch := make([]byte, m.Tree().Depth())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObfuscateWalkInto(x, src, scratch)
	}
}

func BenchmarkObfuscateInto(b *testing.B) {
	m := intoTestMech(b, 32, 0.6)
	tree := m.Tree()
	src := rng.New(2)
	xs := make([]hst.Code, 1024)
	for i := range xs {
		xs[i] = tree.CodeOf(i % tree.NumPoints())
	}
	dst := make([]hst.Code, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObfuscateInto(dst, xs, src)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(xs)), "ns/code")
}
