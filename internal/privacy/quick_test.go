package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// quickMechTree builds one moderately deep tree for the property tests.
func quickMechTree(t *testing.T) *hst.Tree {
	t.Helper()
	return randomTree(t, rng.New(4242), 60, 300)
}

func quickLeaf(tr *hst.Tree, seed uint64) hst.Code {
	s := rng.New(seed)
	buf := make([]byte, tr.Depth())
	for i := range buf {
		buf[i] = byte(s.Intn(tr.Degree()))
	}
	return hst.Code(buf)
}

// TestQuickGeoIPairwise is Theorem 1 as a property: for arbitrary leaf
// triples and budgets, the log-probability gap never exceeds ε times the
// tree distance between the inputs.
func TestQuickGeoIPairwise(t *testing.T) {
	tr := quickMechTree(t)
	mechs := map[float64]*HSTMechanism{}
	for _, eps := range []float64{0.1, 0.6, 2.0} {
		m, err := NewHSTMechanism(tr, eps)
		if err != nil {
			t.Fatal(err)
		}
		mechs[eps] = m
	}
	f := func(x, y, z uint64, pick uint8) bool {
		eps := []float64{0.1, 0.6, 2.0}[int(pick)%3]
		m := mechs[eps]
		x1, x2, out := quickLeaf(tr, x), quickLeaf(tr, y), quickLeaf(tr, z)
		gap := m.LogLeafProb(x1, out) - m.LogLeafProb(x2, out)
		return gap <= eps*tr.Dist(x1, x2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickWalkDistributionIsProbability checks Σ P = 1 and P ≥ 0 for the
// analytic walk distribution across random budgets.
func TestQuickWalkDistributionIsProbability(t *testing.T) {
	tr := quickMechTree(t)
	f := func(raw float64) bool {
		eps := math.Abs(math.Mod(raw, 5)) + 0.01
		m, err := NewHSTMechanism(tr, eps)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range m.WalkDistribution() {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickWeightsMonotone: wt_i strictly decreases with the level (farther
// sibling sets are exponentially less likely), for any ε.
func TestQuickWeightsMonotone(t *testing.T) {
	tr := quickMechTree(t)
	f := func(raw float64) bool {
		eps := math.Abs(math.Mod(raw, 3)) + 0.01
		m, err := NewHSTMechanism(tr, eps)
		if err != nil {
			return false
		}
		for i := 1; i <= tr.Depth(); i++ {
			if m.Weight(i) > m.Weight(i-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickLaplaceRadiusCDF: sampled radii honour the analytic CDF at
// arbitrary thresholds (one-sample check on quantiles).
func TestQuickLaplaceRadiusCDF(t *testing.T) {
	l, err := NewPlanarLaplace(0.7)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	const n = 50000
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = l.SampleRadius(src)
	}
	f := func(raw float64) bool {
		r := math.Abs(math.Mod(raw, 20))
		want := RadialCDF(0.7, r)
		count := 0
		for _, v := range radii {
			if v <= r {
				count++
			}
		}
		got := float64(count) / n
		return math.Abs(got-want) < 0.015
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
