package privacy

import (
	"fmt"
	"sync"
	"testing"
)

func TestAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewAccountant(-1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestAccountantSequentialComposition(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("w1", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("w1", 0.6); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent("w1"); got != 1.0 {
		t.Errorf("Spent = %v", got)
	}
	if got := a.Remaining("w1"); got != 0 {
		t.Errorf("Remaining = %v", got)
	}
	if err := a.Spend("w1", 0.01); err == nil {
		t.Error("over-budget spend accepted")
	}
	// A failed spend must not consume budget.
	if got := a.Spent("w1"); got != 1.0 {
		t.Errorf("failed spend changed total to %v", got)
	}
	// Other agents are independent.
	if err := a.Spend("w2", 0.9); err != nil {
		t.Errorf("independent agent rejected: %v", err)
	}
	if err := a.Spend("w1", -0.1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a, err := NewAccountant(100)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("agent-%d", g%2) // two contended agents
			for i := 0; i < 100; i++ {
				a.Spend(id, 0.1)
			}
		}(g)
	}
	wg.Wait()
	// 4 goroutines × 100 spends × 0.1 = 40 requested per agent; limit 100
	// admits all of them, and the total must be exact (no lost updates).
	for _, id := range []string{"agent-0", "agent-1"} {
		if got := a.Spent(id); got < 39.99 || got > 40.01 {
			t.Errorf("%s spent %v, want 40", id, got)
		}
	}
}
