package privacy

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewAccountant(-1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestAccountantSequentialComposition(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("w1", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("w1", 0.6); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent("w1"); got != 1.0 {
		t.Errorf("Spent = %v", got)
	}
	if got := a.Remaining("w1"); got != 0 {
		t.Errorf("Remaining = %v", got)
	}
	if err := a.Spend("w1", 0.01); err == nil {
		t.Error("over-budget spend accepted")
	}
	// A failed spend must not consume budget.
	if got := a.Spent("w1"); got != 1.0 {
		t.Errorf("failed spend changed total to %v", got)
	}
	// Other agents are independent.
	if err := a.Spend("w2", 0.9); err != nil {
		t.Errorf("independent agent rejected: %v", err)
	}
	if err := a.Spend("w1", -0.1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestAccountantExhaustionSentinel(t *testing.T) {
	a, err := NewAccountant(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("w", 0.4); err != nil {
		t.Fatal(err)
	}
	err = a.Spend("w", 0.4)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("over-budget spend error %v does not wrap ErrBudgetExhausted", err)
	}
	// A malformed spend is a different failure, not an exhaustion.
	if err := a.Spend("w", 0); errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("zero-eps spend reported as exhaustion: %v", err)
	}
}

func TestAccountantTotalConservation(t *testing.T) {
	a, err := NewAccountant(2.0)
	if err != nil {
		t.Fatal(err)
	}
	// The accountant's grand total must equal the caller's own ledger of
	// successful spends exactly — failed spends contribute nothing.
	var ledger float64
	for i, sp := range []struct {
		id  string
		eps float64
	}{
		{"a", 0.6}, {"b", 1.9}, {"a", 0.6}, {"a", 0.9}, // last "a" spend fails (2.1 > 2)
		{"b", 0.2}, {"c", 2.0}, {"c", 0.1}, // "b" fails, then "c" fails
	} {
		if err := a.Spend(sp.id, sp.eps); err == nil {
			ledger += sp.eps
		} else if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("spend %d: unexpected error %v", i, err)
		}
	}
	if got := a.TotalSpent(); got != ledger {
		t.Errorf("TotalSpent = %v, ledger says %v", got, ledger)
	}
	if got := a.Agents(); got != 3 {
		t.Errorf("Agents = %d, want 3", got)
	}
	// Per-agent totals never exceed the limit.
	for _, id := range []string{"a", "b", "c"} {
		if got := a.Spent(id); got > a.Limit()+1e-12 {
			t.Errorf("agent %s spent %v over limit %v", id, got, a.Limit())
		}
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a, err := NewAccountant(100)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("agent-%d", g%2) // two contended agents
			for i := 0; i < 100; i++ {
				a.Spend(id, 0.1)
			}
		}(g)
	}
	wg.Wait()
	// 4 goroutines × 100 spends × 0.1 = 40 requested per agent; limit 100
	// admits all of them, and the total must be exact (no lost updates).
	for _, id := range []string{"agent-0", "agent-1"} {
		if got := a.Spent(id); got < 39.99 || got > 40.01 {
			t.Errorf("%s spent %v, want 40", id, got)
		}
	}
}
