package cluster

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
)

// opsConn is the optional NodeConn extension the coordinator's coalescer
// rides on: a connection that can carry N single-worker operations in one
// round trip. httpNode implements it; LocalNode does not (an in-process
// call has no round trip to amortize).
type opsConn interface {
	Ops(ops []OpRequest) ([]json.RawMessage, error)
}

// maxOpsPerEnvelope bounds one flush so a burst cannot build an
// arbitrarily large request body (and a lost envelope retries a bounded
// amount of work).
const maxOpsPerEnvelope = 128

// batchedOp is one caller's slot in a pending envelope.
type batchedOp struct {
	op   OpRequest
	done chan struct{}
	raw  json.RawMessage
	err  error
}

// batcher coalesces concurrent single-worker operations bound for one node
// into /v2/node/ops envelopes. Callers enqueue their op and block;
// whichever enqueue finds no flusher running starts one, and the flusher
// drains the queue in envelope-sized batches until it is empty, then
// exits. A sequential caller stream degenerates to singleton envelopes —
// one op per round trip, the same wire cost as the single-op endpoints —
// so coalescing only ever removes round trips, never adds latency waiting
// for company.
//
// Coalescing is a legal serialization: the ops in one envelope are
// concurrent with each other (each caller is blocked in its own request),
// so they have no defined order, and the node applies the envelope's ops
// in sequence. Order between non-concurrent ops is preserved — an op
// enqueued after another completed necessarily lands in a later envelope.
type batcher struct {
	conn opsConn

	mu      sync.Mutex
	pending []*batchedOp
	active  bool
}

// do ships one op through the coalescer and blocks until its envelope
// lands. An envelope-level failure (transport, refused envelope) is
// returned to every op it carried; per-op refusals come back as the op's
// own raw result.
func (b *batcher) do(op OpRequest) (json.RawMessage, error) {
	bo := &batchedOp{op: op, done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, bo)
	spawn := !b.active
	b.active = true
	b.mu.Unlock()
	if spawn {
		go b.flush()
	}
	<-bo.done
	return bo.raw, bo.err
}

func (b *batcher) flush() {
	// Yield once before the first drain: the op that spawned this flusher
	// is rarely alone — its sibling request handlers are runnable right
	// now, and letting them enqueue first turns a singleton envelope into a
	// full one. Steady state needs no such nudge (the previous envelope's
	// round trip is the accumulation window); for a sequential caller the
	// cost is one scheduler pass.
	runtime.Gosched()
	for {
		b.mu.Lock()
		batch := b.pending
		if len(batch) == 0 {
			b.active = false
			b.mu.Unlock()
			return
		}
		if len(batch) > maxOpsPerEnvelope {
			rest := batch[maxOpsPerEnvelope:]
			batch = batch[:maxOpsPerEnvelope:maxOpsPerEnvelope]
			b.pending = append(make([]*batchedOp, 0, len(rest)), rest...)
		} else {
			b.pending = nil
		}
		b.mu.Unlock()

		ops := make([]OpRequest, len(batch))
		for i, bo := range batch {
			ops[i] = bo.op
		}
		results, err := b.conn.Ops(ops)
		for i, bo := range batch {
			if err != nil {
				// The caller retries with the same idem; any sub-op the node
				// did apply before the envelope was lost replays from its
				// cache instead of double-applying.
				bo.err = err
			} else {
				bo.raw = results[i]
			}
			close(bo.done)
		}
	}
}

// decodeOpResult decodes one raw sub-result into the op's response shape.
// An undecodable result is a transport failure (the retry taxonomy the
// call sites already handle), never an application refusal.
func decodeOpResult(raw json.RawMessage, kind string, out any) error {
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%w: decode %s result: %v", errTransport, kind, err)
	}
	return nil
}

// The op* dispatchers below are the coalescing-aware twins of the NodeConn
// methods: through the node's batcher when it has one, directly otherwise
// (in-process conns, coalescing disabled). Each mirrors the corresponding
// httpNode wrapper exactly — same response shape, same envErr taxonomy —
// which is what keeps the coalesced and per-op paths byte-identical on the
// wire and value-identical here.

func (c *fanCore) opInsert(nd int, code hst.Code, id, capacity int, epoch int64, idem string) error {
	b := c.batchers[nd]
	if b == nil {
		return c.nodes[nd].Insert(code, id, capacity, epoch, idem)
	}
	raw, err := b.do(OpRequest{Kind: OpInsert, Idem: idem, Code: []byte(code), ID: id, Capacity: capacity, Epoch: epoch})
	if err != nil {
		return err
	}
	var resp nodeAck
	if err := decodeOpResult(raw, OpInsert, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (c *fanCore) opAddCapacity(nd int, code hst.Code, id int, epoch int64, idem string) error {
	b := c.batchers[nd]
	if b == nil {
		return c.nodes[nd].AddCapacity(code, id, epoch, idem)
	}
	raw, err := b.do(OpRequest{Kind: OpAddCapacity, Idem: idem, Code: []byte(code), ID: id, Epoch: epoch})
	if err != nil {
		return err
	}
	var resp nodeAck
	if err := decodeOpResult(raw, OpAddCapacity, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (c *fanCore) opRemove(nd int, code hst.Code, id int, idem string) (int, bool, error) {
	b := c.batchers[nd]
	if b == nil {
		return c.nodes[nd].Remove(code, id, idem)
	}
	raw, err := b.do(OpRequest{Kind: OpRemove, Idem: idem, Code: []byte(code), ID: id})
	if err != nil {
		return 0, false, err
	}
	var resp RemoveResponse
	if err := decodeOpResult(raw, OpRemove, &resp); err != nil {
		return 0, false, err
	}
	return resp.Units, resp.Found, envErr(resp.Err)
}

func (c *fanCore) opAssignSubtree(nd int, code hst.Code, epoch int64, idem string) (int, int, bool, error) {
	b := c.batchers[nd]
	if b == nil {
		return c.nodes[nd].AssignSubtree(code, epoch, idem)
	}
	raw, err := b.do(OpRequest{Kind: OpAssignSubtree, Idem: idem, Code: []byte(code), Epoch: epoch})
	if err != nil {
		return engine.None, 0, false, err
	}
	var resp AssignResponse
	if err := decodeOpResult(raw, OpAssignSubtree, &resp); err != nil {
		return engine.None, 0, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, 0, false, err
	}
	return resp.ID, resp.Level, resp.Found, nil
}

func (c *fanCore) opConsume(nd int, code hst.Code, id int, epoch int64, idem string) error {
	b := c.batchers[nd]
	if b == nil {
		return c.nodes[nd].Consume(code, id, epoch, idem)
	}
	raw, err := b.do(OpRequest{Kind: OpConsume, Idem: idem, Code: []byte(code), ID: id, Epoch: epoch})
	if err != nil {
		return err
	}
	var resp nodeAck
	if err := decodeOpResult(raw, OpConsume, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}
