package cluster

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/rng"
)

var testRegion = geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))

// buildTree derives a test tree the same way the server does.
func buildTree(t *testing.T, seed uint64) *hst.Tree {
	t.Helper()
	grid, err := geo.NewGrid(testRegion, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// httpNodes spins up n pombm-server node sides over real HTTP.
func httpNodes(t *testing.T, n int) []NodeConn {
	t.Helper()
	nodes := make([]NodeConn, n)
	for i := range nodes {
		ts := httptest.NewServer(NodeHandler(NewNode()))
		t.Cleanup(ts.Close)
		nodes[i] = DialNode(ts.URL)
	}
	return nodes
}

func localNodes(n int) []NodeConn {
	nodes := make([]NodeConn, n)
	for i := range nodes {
		nodes[i] = LocalNode(NewNode())
	}
	return nodes
}

// runTape drives the same randomised operation tape — inserts, removals,
// batch assignments spanning multiple windows — through a core and a
// reference engine, and fails on the first diverging answer.
func runTape(t *testing.T, core platform.Core, eng *engine.Engine, tree *hst.Tree, seed int64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	leaves := tree.NumPoints()
	nextID := 0
	live := []struct {
		id   int
		code hst.Code
	}{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 120; i++ {
			code := tree.CodeOf(rnd.Intn(leaves))
			id := nextID
			nextID++
			if err := core.InsertEpoch(code, id, 0); err != nil {
				t.Fatalf("round %d: cluster insert %d: %v", round, id, err)
			}
			if err := eng.InsertEpoch(code, id, 0); err != nil {
				t.Fatalf("round %d: engine insert %d: %v", round, id, err)
			}
			live = append(live, struct {
				id   int
				code hst.Code
			}{id, code})
		}
		for i := 0; i < 15 && len(live) > 0; i++ {
			j := rnd.Intn(len(live))
			w := live[j]
			got := core.Remove(w.code, w.id)
			want := eng.Remove(w.code, w.id)
			if got != want {
				t.Fatalf("round %d: remove %d: cluster %v engine %v", round, w.id, got, want)
			}
			live = append(live[:j], live[j+1:]...)
		}
		n := 40 + rnd.Intn(engine.BatchWindowSize+40) // some rounds span two windows
		codes := make([]hst.Code, n)
		for i := range codes {
			codes[i] = tree.CodeOf(rnd.Intn(leaves))
		}
		gotIDs, gotLvls := core.AssignBatch(codes)
		wantIDs, wantLvls := eng.AssignBatch(codes)
		for i := range codes {
			if gotIDs[i] != wantIDs[i] || gotLvls[i] != wantLvls[i] {
				t.Fatalf("round %d task %d: cluster (%d,%d) engine (%d,%d)",
					round, i, gotIDs[i], gotLvls[i], wantIDs[i], wantLvls[i])
			}
		}
		// Keep live in sync: drop consumed units (capacity 1 → an assigned
		// worker is gone).
		assigned := map[int]bool{}
		for _, id := range wantIDs {
			if id != engine.None {
				assigned[id] = true
			}
		}
		kept := live[:0]
		for _, w := range live {
			if !assigned[w.id] {
				kept = append(kept, w)
			}
		}
		live = kept
		if core.Len() != eng.Len() {
			t.Fatalf("round %d: pool %d vs engine %d", round, core.Len(), eng.Len())
		}
		if core.Windows() != eng.Windows() {
			t.Fatalf("round %d: windows %d vs engine %d", round, core.Windows(), eng.Windows())
		}
	}
}

// TestScatterGatherBatchOptimalIdentity pins the tentpole acceptance
// criterion at the core level: the coordinator's scatter-gather window
// solve, over three real-HTTP backends, is bit-identical to the
// single-process batch-optimal policy on the same operation tape.
func TestScatterGatherBatchOptimalIdentity(t *testing.T) {
	tree := buildTree(t, 7)
	for _, tc := range []struct {
		name  string
		nodes []NodeConn
	}{
		{"http-3", httpNodes(t, 3)},
		{"local-2", localNodes(2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := engine.PolicyByName("batch-optimal:k=4")
			if err != nil {
				t.Fatal(err)
			}
			core, err := newFanCore(tc.nodes, tree, 0, pol, "batch-optimal:k=4", 1, false)
			if err != nil {
				t.Fatal(err)
			}
			refPol, _ := engine.PolicyByName("batch-optimal:k=4")
			eng, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(refPol))
			if err != nil {
				t.Fatal(err)
			}
			runTape(t, core, eng, tree, 42)
		})
	}
}

// TestGreedyFanoutIdentity pins the routed + root-tier greedy path across
// nodes against the single-process rule.
func TestGreedyFanoutIdentity(t *testing.T) {
	tree := buildTree(t, 9)
	pol, err := engine.PolicyByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	core, err := newFanCore(localNodes(3), tree, 0, pol, "greedy", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	refPol, _ := engine.PolicyByName("greedy")
	eng, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(refPol))
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(3))
	leaves := tree.NumPoints()
	for i := 0; i < 200; i++ {
		if err := core.InsertEpoch(tree.CodeOf(rnd.Intn(leaves)), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	rnd = rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if err := eng.InsertEpoch(tree.CodeOf(rnd.Intn(leaves)), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 260; i++ { // drains past empty: the unmatched tail must agree too
		code := tree.CodeOf(rnd.Intn(leaves))
		gid, glvl, gok := core.Assign(code)
		wid, wlvl, wok := eng.Assign(code)
		if gid != wid || glvl != wlvl || gok != wok {
			t.Fatalf("assign %d: cluster (%d,%d,%v) engine (%d,%d,%v)", i, gid, glvl, gok, wid, wlvl, wok)
		}
	}
}

// TestDistributedSwapIdentity pins the two-phase rotation: the same swap
// (new tree, new population) lands the same post-rotation answers as a
// single-process SwapEpoch, and the epoch is advanced on every node.
func TestDistributedSwapIdentity(t *testing.T) {
	tree := buildTree(t, 7)
	next := buildTree(t, 8)
	pol, _ := engine.PolicyByName("greedy")
	nodes := httpNodes(t, 3)
	core, err := newFanCore(nodes, tree, 0, pol, "greedy", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	refPol, _ := engine.PolicyByName("greedy")
	eng, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(refPol))
	if err != nil {
		t.Fatal(err)
	}
	var inserts []engine.EpochInsert
	for i := 0; i < 50; i++ {
		inserts = append(inserts, engine.EpochInsert{Code: next.CodeOf((i * 7) % next.NumPoints()), ID: i, Cap: 1})
	}
	if err := core.SwapEpoch(2, next, 0, inserts); err != nil {
		t.Fatal(err)
	}
	if err := eng.SwapEpoch(2, next, 0, inserts); err != nil {
		t.Fatal(err)
	}
	if core.Epoch() != 2 {
		t.Fatalf("coordinator epoch %d after swap", core.Epoch())
	}
	for _, nd := range nodes {
		st, err := nd.Status(0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Epoch != 2 {
			t.Fatalf("node epoch %d after commit", st.Epoch)
		}
	}
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 70; i++ {
		code := next.CodeOf(rnd.Intn(next.NumPoints()))
		gid, glvl, gok := core.Assign(code)
		wid, wlvl, wok := eng.Assign(code)
		if gid != wid || glvl != wlvl || gok != wok {
			t.Fatalf("post-swap assign %d: cluster (%d,%d,%v) engine (%d,%d,%v)", i, gid, glvl, gok, wid, wlvl, wok)
		}
	}
	// A swap to a non-advancing epoch is refused without touching nodes.
	if err := core.SwapEpoch(2, next, 0, nil); err == nil {
		t.Fatal("re-swap to the serving epoch accepted")
	}
}

// failPrepareNode wraps a healthy node with a Prepare that always fails:
// the minority node of a rigged two-phase commit.
type failPrepareNode struct {
	NodeConn
	prepares int
}

func (f *failPrepareNode) Prepare(int64, *hst.Tree, int, []engine.EpochInsert, string) error {
	f.prepares++
	return errors.New("rigged: prepare refused")
}

// TestPrepareFailureAbortsClusterWide is the rotation fault path: one
// backend refusing Prepare must abort the epoch everywhere — every node
// keeps serving the old epoch, and assignment keeps working.
func TestPrepareFailureAbortsClusterWide(t *testing.T) {
	tree := buildTree(t, 7)
	next := buildTree(t, 8)
	pol, _ := engine.PolicyByName("greedy")
	bad := &failPrepareNode{NodeConn: LocalNode(NewNode())}
	nodes := []NodeConn{LocalNode(NewNode()), bad, LocalNode(NewNode())}
	core, err := newFanCore(nodes, tree, 0, pol, "greedy", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	code := tree.CodeOf(0)
	if err := core.InsertEpoch(code, 1, 0); err != nil {
		t.Fatal(err)
	}
	err = core.SwapEpoch(2, next, 0, []engine.EpochInsert{{Code: next.CodeOf(0), ID: 9, Cap: 1}})
	if err == nil {
		t.Fatal("swap committed past a failed prepare")
	}
	if bad.prepares == 0 {
		t.Fatal("rigged prepare never reached")
	}
	if core.Epoch() != engine.FirstEpoch {
		t.Fatalf("coordinator advanced to epoch %d past an aborted swap", core.Epoch())
	}
	for i, nd := range nodes {
		st, serr := nd.Status(0)
		if serr != nil {
			t.Fatal(serr)
		}
		if st.Epoch != engine.FirstEpoch {
			t.Fatalf("node %d serving epoch %d after cluster-wide abort", i, st.Epoch)
		}
	}
	// The old epoch still serves: the pre-swap worker is assignable and the
	// aborted epoch's population never landed.
	id, _, ok := core.Assign(code)
	if !ok || id != 1 {
		t.Fatalf("post-abort assign = (%d,%v), want worker 1", id, ok)
	}
	if id, _, ok = core.Assign(code); ok {
		t.Fatalf("aborted epoch's population leaked: assigned %d", id)
	}
}

// TestSubmitWithBackendDown is the serving fault path: a dead backend
// turns a routed Submit into a typed retryable unavailable error, while
// tasks routed to healthy backends keep being served.
func TestSubmitWithBackendDown(t *testing.T) {
	servers := make([]*httptest.Server, 3)
	nodes := make([]NodeConn, 3)
	for i := range nodes {
		servers[i] = httptest.NewServer(NodeHandler(NewNode()))
		nodes[i] = DialNodeClient(servers[i].URL, servers[i].Client())
	}
	defer func() {
		for _, ts := range servers[1:] {
			ts.Close()
		}
	}()
	// Seed 7's tree spreads its top branches across all three nodes (some
	// seeds put every leaf under one branch, which cannot stage a partial
	// outage).
	coord, err := New(Config{
		Region: testRegion, Cols: 8, Rows: 8, Epsilon: 0.6, Seed: 7,
		Nodes: nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := coord.Server()
	tree := srv.Publication().Tree
	layout := engine.LayoutFor(tree, srv.Core().Shards())
	// The tree's population needn't spread across all three nodes; pick the
	// dead and live nodes from groups that actually hold leaves.
	codeOn := map[int]hst.Code{}
	for i := 0; i < tree.NumPoints(); i++ {
		c := tree.CodeOf(i)
		nd := layout.GroupOf(c) % 3
		if _, ok := codeOn[nd]; !ok {
			codeOn[nd] = c
		}
	}
	if len(codeOn) < 2 {
		t.Fatalf("tree routes to %d nodes, need 2 to stage a partial outage", len(codeOn))
	}
	deadNode := -1
	var dead, live hst.Code
	for nd, c := range codeOn {
		if deadNode < 0 {
			deadNode, dead = nd, c
		} else if live == "" {
			live = c
		}
	}
	if r := srv.Register(platform.RegisterRequest{WorkerID: "wl", Code: []byte(live)}); !r.OK {
		t.Fatalf("register on live node: %s", r.Reason)
	}
	servers[deadNode].Close() // that backend goes dark

	resp := srv.Submit(platform.TaskRequest{TaskID: "t-dead", Code: []byte(dead)})
	if resp.Assigned {
		t.Fatal("task routed to a dead backend was assigned")
	}
	if resp.Err == nil || !errors.Is(resp.Err, platform.ErrUnavailable) {
		t.Fatalf("dead-backend submit Err = %v, want unavailable", resp.Err)
	}
	if !resp.Err.Retryable {
		t.Error("unavailable refusal not marked retryable")
	}

	resp = srv.Submit(platform.TaskRequest{TaskID: "t-live", Code: []byte(live)})
	if !resp.Assigned || resp.WorkerID != "wl" {
		t.Fatalf("healthy-node submit = %+v, want wl assigned", resp)
	}
}

// TestIdempotentReplay pins the /v2 idempotency contract: re-POSTing a
// mutation with the same key returns byte-identical bytes and applies the
// mutation once; error responses are never cached.
func TestIdempotentReplay(t *testing.T) {
	tree := buildTree(t, 7)
	node := NewNode()
	ts := httptest.NewServer(NodeHandler(node))
	defer ts.Close()
	conn := DialNode(ts.URL)
	if err := conn.Init(InitRequest{Tree: tree, Idem: "init-1"}); err != nil {
		t.Fatal(err)
	}

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}
	code := tree.CodeOf(0)
	body := `{"code":` + jsonBytes(code) + `,"id":5,"epoch":1,"idem":"k1"}`
	_, first := post(PathNodeInsert, body)
	_, second := post(PathNodeInsert, body)
	if first != second {
		t.Fatalf("replay differs:\n%s\n---\n%s", first, second)
	}
	if !strings.Contains(first, `"ok":true`) {
		t.Fatalf("insert refused: %s", first)
	}
	eng, _ := node.engine()
	if got := eng.Len(); got != 1 {
		t.Fatalf("insert applied %d times", got)
	}

	// A refused mutation (stale epoch pin) is never cached: the keyed retry
	// re-executes and is refused again, not replayed as a success.
	bad := `{"code":` + jsonBytes(code) + `,"id":6,"epoch":99,"idem":"k2"}`
	status, dup := post(PathNodeInsert, bad)
	if status != http.StatusOK || !strings.Contains(dup, "stale_epoch") {
		t.Fatalf("stale insert did not surface a stale_epoch error: %d %s", status, dup)
	}
	_, dup2 := post(PathNodeInsert, bad)
	if !strings.Contains(dup2, "stale_epoch") {
		t.Fatal("failed mutation was replayed from cache as a success")
	}
	if got := eng.Len(); got != 1 {
		t.Fatalf("refused inserts mutated the pool: len %d", got)
	}
}

// jsonBytes renders a code as a JSON byte-array literal.
func jsonBytes(code hst.Code) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, d := range []byte(code) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string('0' + d))
	}
	b.WriteByte(']')
	return b.String()
}

// TestCoordinatorEndToEndHTTP drives the full stack over two real HTTP
// hops — agent → coordinator → node — through the public Dial surface.
func TestCoordinatorEndToEndHTTP(t *testing.T) {
	coord, err := New(Config{
		Region: testRegion, Cols: 8, Rows: 8, Epsilon: 0.6, Seed: 42,
		Nodes: httpNodes(t, 3), Policy: "batch-optimal:k=4",
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord.Handler())
	defer front.Close()
	client, err := Dial(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	var api platform.API = client // the redesigned surface
	pub := client.Publication()
	if pub.Tree == nil {
		t.Fatal("coordinator published no tree")
	}
	obf, err := platform.NewObfuscator(pub, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w := platform.Worker{ID: "w" + string(rune('a'+i)), Loc: geo.Pt(float64(i*4), float64(i*4))}
		if err := w.Register(api, obf); err != nil {
			t.Fatal(err)
		}
	}
	req := platform.TaskBatchRequest{}
	for i := 0; i < 12; i++ {
		req.Tasks = append(req.Tasks, platform.TaskRequest{
			TaskID: "t" + string(rune('a'+i)),
			Code:   []byte(obf.Obfuscate(geo.Pt(float64(i*7), float64(i*5)))),
		})
	}
	resp := api.SubmitBatch(req)
	assigned := 0
	for _, r := range resp.Results {
		if r.Assigned {
			assigned++
		}
	}
	if assigned == 0 {
		t.Fatal("no task assigned through the coordinator")
	}
	stats, err := api.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.AvailableWorkers != 20-assigned {
		t.Fatalf("stats pool %d, want %d", stats.AvailableWorkers, 20-assigned)
	}
}
