package cluster

import (
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/engine"
)

// TestSubmitsDuringDistributedRotation races assignments against the
// two-phase epoch swap: every answer must come from exactly one epoch's
// population, no unit may be handed out twice, and the swap must land on
// every node with the racing traffic unable to observe a half-committed
// cluster.
func TestSubmitsDuringDistributedRotation(t *testing.T) {
	tree := buildTree(t, 7)
	next := buildTree(t, 8)
	pol, _ := engine.PolicyByName("greedy")
	nodes := localNodes(3)
	core, err := newFanCore(nodes, tree, 0, pol, "greedy", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	const oldPop, newBase, newPop = 60, 1000, 40
	for i := 0; i < oldPop; i++ {
		if err := core.InsertEpoch(tree.CodeOf((i*3)%tree.NumPoints()), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	var inserts []engine.EpochInsert
	for i := 0; i < newPop; i++ {
		inserts = append(inserts, engine.EpochInsert{Code: next.CodeOf((i * 5) % next.NumPoints()), ID: newBase + i, Cap: 1})
	}

	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				// Codes from both trees: pre-swap draws on the new tree (and
				// post-swap draws on the old) are refused as malformed, which
				// is the protocol, not a failure.
				var code = tree.CodeOf((g*41 + i*13) % tree.NumPoints())
				if i%2 == 1 {
					code = next.CodeOf((g*29 + i*7) % next.NumPoints())
				}
				if id, _, ok := core.Assign(code); ok {
					mu.Lock()
					seen[id]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := core.SwapEpoch(2, next, 0, inserts); err != nil {
			t.Errorf("swap under load: %v", err)
		}
	}()
	close(start)
	wg.Wait()

	for id, n := range seen {
		if n != 1 {
			t.Errorf("unit %d handed out %d times", id, n)
		}
		if !(id < oldPop || (id >= newBase && id < newBase+newPop)) {
			t.Errorf("assigned id %d belongs to no epoch's population", id)
		}
	}
	if core.Epoch() != 2 {
		t.Fatalf("epoch %d after racing swap", core.Epoch())
	}
	for i, nd := range nodes {
		st, err := nd.Status(0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Epoch != 2 {
			t.Fatalf("node %d on epoch %d", i, st.Epoch)
		}
	}
	// Post-swap, only the new population serves.
	for {
		id, _, ok := core.Assign(next.CodeOf(0))
		if !ok {
			break
		}
		if id < newBase {
			t.Fatalf("old-epoch unit %d served after the swap", id)
		}
	}
}
