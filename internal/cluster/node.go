package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
)

// NodeConn is the coordinator's handle to one backend: the engine surface
// a node exposes over /v2, plus the two-phase rotation verbs. LocalNode
// implements it in-process (tests, the simulator, single-binary
// deployments); DialNode implements it over HTTP against a pombm-server.
//
// The idem argument on mutating calls is the idempotency key: a transport
// that retries after a lost response sends the same key, and the node
// replays the recorded answer instead of applying the mutation twice.
// In-process connections ignore it (calls cannot be duplicated).
type NodeConn interface {
	Init(req InitRequest) error
	Status(epoch int64) (StatusResponse, error)
	Insert(code hst.Code, id, capacity int, epoch int64, idem string) error
	AddCapacity(code hst.Code, id int, epoch int64, idem string) error
	Remove(code hst.Code, id int, idem string) (units int, found bool, err error)
	AssignSubtree(code hst.Code, epoch int64, idem string) (id, level int, found bool, err error)
	MinID(epoch int64) (id int, found bool, err error)
	PopMin(epoch int64, idem string) (id, level int, found bool, err error)
	Mine(codes []hst.Code, k int, epoch int64) (*engine.WindowMine, error)
	Consume(code hst.Code, id int, epoch int64, idem string) error
	Prepare(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert, idem string) error
	Commit(epoch int64, idem string) error
	Abort(epoch int64, idem string) error
}

// Node is the backend half of a cluster member: a bare assignment engine
// (built at Init) plus the staged state of an in-flight distributed
// rotation. It has no slot tables and no budget accountant — those live
// once, at the coordinator — so a pombm-server hosting a Node serves /v2
// with nothing but engine state.
type Node struct {
	mu     sync.Mutex
	eng    *engine.Engine
	staged *engine.PreparedSwap
}

// NewNode returns an uninitialised node; the coordinator's Init call (or a
// direct Init) gives it an engine.
func NewNode() *Node { return &Node{} }

// errNotInitialised is returned by every operation before Init.
var errNotInitialised = errors.New("cluster: node not initialised")

func (n *Node) engine() (*engine.Engine, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng == nil {
		return nil, errNotInitialised
	}
	return n.eng, nil
}

// Init builds (or replaces) the node's engine from the cluster-shared
// configuration. Replacing drops any staged rotation.
func (n *Node) Init(req InitRequest) error {
	if req.Tree == nil {
		return errors.New("cluster: init without a tree")
	}
	pol, err := engine.PolicyByName(req.Policy)
	if err != nil {
		return err
	}
	opts := []engine.Option{engine.WithPolicy(pol)}
	if req.DefaultCapacity != 0 {
		opts = append(opts, engine.WithDefaultCapacity(req.DefaultCapacity))
	}
	eng, err := engine.NewWithOptions(req.Tree, req.Shards, opts...)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.eng = eng
	n.staged = nil
	n.mu.Unlock()
	return nil
}

// Status reports the serving epoch and pool size. A non-zero epoch pin
// that mismatches is reported as engine staleness.
func (n *Node) Status(epoch int64) (StatusResponse, error) {
	eng, err := n.engine()
	if err != nil {
		return StatusResponse{}, err
	}
	cur := eng.Epoch()
	if epoch != 0 && cur != epoch {
		return StatusResponse{}, fmt.Errorf("%w (status for epoch %d, serving %d)", engine.ErrStaleEpoch, epoch, cur)
	}
	return StatusResponse{OK: true, Epoch: cur, Len: eng.Len(), Units: eng.CapacityUnits()}, nil
}

// Insert lands a worker (see engine.InsertCapEpoch).
func (n *Node) Insert(code hst.Code, id, capacity int, epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	return eng.InsertCapEpoch(code, id, capacity, epoch)
}

// AddCapacity returns one unit (see engine.AddCapacityEpoch).
func (n *Node) AddCapacity(code hst.Code, id int, epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	return eng.AddCapacityEpoch(code, id, epoch)
}

// Remove withdraws a worker's pooled units (see engine.RemoveUnits).
func (n *Node) Remove(code hst.Code, id int, _ string) (int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return 0, false, err
	}
	units, ok := eng.RemoveUnits(code, id)
	return units, ok, nil
}

// AssignSubtree runs the greedy rule's node-local tiers (see
// engine.AssignSubtreeEpoch).
func (n *Node) AssignSubtree(code hst.Code, epoch int64, _ string) (int, int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return engine.None, 0, false, err
	}
	return eng.AssignSubtreeEpoch(code, epoch)
}

// MinID answers the root-tier poll (see engine.MinAvailableID).
func (n *Node) MinID(epoch int64) (int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return engine.None, false, err
	}
	return eng.MinAvailableID(epoch)
}

// PopMin commits the root tier on this node (see engine.PopMinID).
func (n *Node) PopMin(epoch int64, _ string) (int, int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return engine.None, 0, false, err
	}
	return eng.PopMinID(epoch)
}

// Mine gathers this node's window contribution (see
// engine.MineWindowCandidates).
func (n *Node) Mine(codes []hst.Code, k int, epoch int64) (*engine.WindowMine, error) {
	eng, err := n.engine()
	if err != nil {
		return nil, err
	}
	return eng.MineWindowCandidates(codes, k, epoch)
}

// Consume commits one matched window unit (see engine.ConsumeUnit).
func (n *Node) Consume(code hst.Code, id int, epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	return eng.ConsumeUnit(code, id, epoch)
}

// Prepare stages this node's partition of the next epoch (phase one). A
// later Prepare for a different epoch replaces the staged state (staging
// holds no locks, so dropping it is a free abort).
func (n *Node) Prepare(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	staged, err := eng.PrepareSwap(epoch, tree, shards, inserts)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.staged = staged
	n.mu.Unlock()
	return nil
}

// Commit publishes the staged epoch (phase two). Committing an epoch the
// engine already serves acks idempotently: the effect landed, only the
// response was lost.
func (n *Node) Commit(epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	n.mu.Lock()
	staged := n.staged
	n.mu.Unlock()
	if staged == nil || staged.Epoch() != epoch {
		if eng.Epoch() == epoch {
			return nil
		}
		return fmt.Errorf("cluster: commit for epoch %d, nothing staged", epoch)
	}
	if err := eng.CommitSwap(staged); err != nil {
		if eng.Epoch() == epoch {
			return nil
		}
		return err
	}
	n.mu.Lock()
	if n.staged == staged {
		n.staged = nil
	}
	n.mu.Unlock()
	return nil
}

// Abort drops the staged epoch (a sibling node's prepare failed).
// Aborting an epoch that is not staged is a no-op: the abort may be a
// retry, or the prepare it cancels may never have arrived.
func (n *Node) Abort(epoch int64, _ string) error {
	n.mu.Lock()
	if n.staged != nil && n.staged.Epoch() == epoch {
		n.staged = nil
	}
	n.mu.Unlock()
	return nil
}

var _ NodeConn = (*Node)(nil)

// LocalNode returns an in-process NodeConn over a Node: the connection the
// simulator's cluster driver and single-binary deployments use. It is the
// Node itself — in-process calls cannot be duplicated, so the idempotency
// layer (which guards HTTP retries) is not in the path.
func LocalNode(n *Node) NodeConn { return n }

// replayCache remembers the response bytes of recently applied mutations
// keyed by idempotency key, with two-generation rotation bounding memory:
// a key survives at least capPerGen further distinct mutations, far longer
// than any transport retry window.
type replayCache struct {
	mu   sync.Mutex
	cur  map[string][]byte
	prev map[string][]byte
}

const replayCapPerGen = 4096

func newReplayCache() *replayCache {
	return &replayCache{cur: map[string][]byte{}}
}

func (c *replayCache) get(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.cur[key]; ok {
		return b, true
	}
	b, ok := c.prev[key]
	return b, ok
}

func (c *replayCache) put(key string, body []byte) {
	if key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cur) >= replayCapPerGen {
		c.prev = c.cur
		c.cur = map[string][]byte{}
	}
	c.cur[key] = body
}

// nodeError folds a node-side error into the structured taxonomy for the
// wire: engine staleness becomes stale_epoch, an uninitialised node is a
// conflict, anything else a bad request.
func nodeError(err error, epoch int64) *platform.Error {
	if errors.Is(err, errNotInitialised) {
		return &platform.Error{Code: platform.CodeConflict, Message: err.Error(), Retryable: true}
	}
	return platform.AsError(err, epoch)
}

// NodeHandler exposes a Node over the /v2 wire protocol. Mutating
// endpoints honour idempotency keys: a request whose key was already
// applied is answered from the replay cache byte-for-byte.
func NodeHandler(n *Node) http.Handler {
	cache := newReplayCache()
	mux := http.NewServeMux()

	// handle wires one POST endpoint: decode, optionally replay, execute,
	// record. fn returns the response value to encode; responses are
	// recorded under the request's idempotency key only when the mutation
	// was actually applied (fn ran).
	handle := func(path string, fn func(body []byte) (any, string)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				writeNodeJSON(w, http.StatusMethodNotAllowed, &platform.Error{
					Code:    platform.CodeMethodNotAllowed,
					Message: fmt.Sprintf("cluster: %s requires POST, got %s", path, r.Method),
				})
				return
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
			if err != nil {
				writeNodeJSON(w, http.StatusBadRequest, &platform.Error{
					Code: platform.CodeBadRequest, Message: "cluster: read body: " + err.Error(),
				})
				return
			}
			// Peek the idempotency key before decoding the full request so
			// replays skip the work entirely.
			var keyed struct {
				Idem string `json:"idem"`
			}
			_ = json.Unmarshal(body, &keyed)
			if cached, ok := cache.get(keyed.Idem); ok {
				w.Header().Set("Content-Type", "application/json")
				w.Write(cached)
				return
			}
			resp, idem := fn(body)
			out, err := json.Marshal(resp)
			if err != nil {
				writeNodeJSON(w, http.StatusInternalServerError, &platform.Error{
					Code: platform.CodeInternal, Message: err.Error(),
				})
				return
			}
			cache.put(idem, out)
			w.Header().Set("Content-Type", "application/json")
			w.Write(out)
		})
	}

	handle(PathNodeInit, func(body []byte) (any, string) {
		var req InitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Init(req); err != nil {
			return nodeAck{Err: nodeError(err, 0)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handle(PathNodeStatus, func(body []byte) (any, string) {
		var req StatusRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return StatusResponse{Err: badBody(err)}, ""
		}
		resp, err := n.Status(req.Epoch)
		if err != nil {
			return StatusResponse{Err: nodeError(err, 0)}, ""
		}
		return resp, ""
	})
	handle(PathNodeInsert, func(body []byte) (any, string) {
		var req InsertRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Insert(hst.Code(req.Code), req.ID, req.Capacity, req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handle(PathNodeAddCapacity, func(body []byte) (any, string) {
		var req AddCapacityRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.AddCapacity(hst.Code(req.Code), req.ID, req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handle(PathNodeRemove, func(body []byte) (any, string) {
		var req RemoveRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return RemoveResponse{Err: badBody(err)}, ""
		}
		units, found, err := n.Remove(hst.Code(req.Code), req.ID, req.Idem)
		if err != nil {
			return RemoveResponse{Err: nodeError(err, 0)}, ""
		}
		return RemoveResponse{OK: true, Units: units, Found: found}, req.Idem
	})
	handle(PathNodeAssignSubtree, func(body []byte) (any, string) {
		var req AssignSubtreeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return AssignResponse{Err: badBody(err)}, ""
		}
		id, lvl, found, err := n.AssignSubtree(hst.Code(req.Code), req.Epoch, req.Idem)
		if err != nil {
			return AssignResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return AssignResponse{OK: true, ID: id, Level: lvl, Found: found}, req.Idem
	})
	handle(PathNodeMinID, func(body []byte) (any, string) {
		var req MinIDRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return MinIDResponse{Err: badBody(err)}, ""
		}
		id, found, err := n.MinID(req.Epoch)
		if err != nil {
			return MinIDResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return MinIDResponse{OK: true, ID: id, Found: found}, ""
	})
	handle(PathNodePopMin, func(body []byte) (any, string) {
		var req PopMinRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return AssignResponse{Err: badBody(err)}, ""
		}
		id, lvl, found, err := n.PopMin(req.Epoch, req.Idem)
		if err != nil {
			return AssignResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return AssignResponse{OK: true, ID: id, Level: lvl, Found: found}, req.Idem
	})
	handle(PathNodeMine, func(body []byte) (any, string) {
		var req MineRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return MineResponse{Err: badBody(err)}, ""
		}
		codes := make([]hst.Code, len(req.Codes))
		for i, c := range req.Codes {
			codes[i] = hst.Code(c)
		}
		wm, err := n.Mine(codes, req.K, req.Epoch)
		if err != nil {
			return MineResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return MineResponse{
			OK: true, Epoch: wm.Epoch, Pool: wm.Pool,
			Own: toWireCands(wm.Own), Pads: toWireCands(wm.Pads),
		}, ""
	})
	handle(PathNodeConsume, func(body []byte) (any, string) {
		var req ConsumeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Consume(hst.Code(req.Code), req.ID, req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handle(PathNodePrepare, func(body []byte) (any, string) {
		var req PrepareRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Prepare(req.Epoch, req.Tree, req.Shards, fromWireInserts(req.Inserts), req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handle(PathNodeCommit, func(body []byte) (any, string) {
		var req CommitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Commit(req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handle(PathNodeAbort, func(body []byte) (any, string) {
		var req AbortRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Abort(req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	return mux
}

func badBody(err error) *platform.Error {
	return &platform.Error{Code: platform.CodeBadRequest, Message: "cluster: bad request: " + err.Error()}
}

func writeNodeJSON(w http.ResponseWriter, status int, e *platform.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e)
}

// httpNode is a NodeConn over the /v2 wire protocol.
type httpNode struct {
	baseURL string
	client  *http.Client
}

// DialNode returns a NodeConn for a backend base URL (e.g.
// "http://node0:8080"). The connection is stateless; no eager handshake
// happens — the coordinator's Init is the first contact.
func DialNode(baseURL string) NodeConn {
	return &httpNode{baseURL: baseURL, client: &http.Client{Timeout: 30 * time.Second}}
}

// DialNodeClient is DialNode with a caller-supplied HTTP client (tests pin
// timeouts; deployments pin transports).
func DialNodeClient(baseURL string, hc *http.Client) NodeConn {
	return &httpNode{baseURL: baseURL, client: hc}
}

// post sends one /v2 request and decodes the response envelope. An error
// status or an envelope Err decodes into a typed error: stale_epoch
// refusals surface as engine.ErrStaleEpoch so the coordinator's staleness
// handling does not depend on the transport. Failures of the transport
// itself — connection refused, truncated reads, undecodable responses —
// wrap errTransport: the coordinator retries those (with the same
// idempotency key), never application refusals.
func (h *httpNode) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	resp, err := h.client.Post(h.baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: POST %s: %v", errTransport, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("%w: read %s: %v", errTransport, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var we platform.Error
		if json.Unmarshal(bytes.TrimSpace(raw), &we) == nil && we.Code != "" {
			return &we
		}
		return fmt.Errorf("%w: %s returned %s: %s", errTransport, path, resp.Status, bytes.TrimSpace(raw))
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%w: decode %s: %v", errTransport, path, err)
	}
	return nil
}

// envErr converts a response envelope's Err into a Go error, restoring the
// engine staleness sentinel for stale_epoch codes.
func envErr(e *platform.Error) error {
	if e == nil {
		return nil
	}
	if e.Code == platform.CodeStaleEpoch {
		return fmt.Errorf("%w: %s", engine.ErrStaleEpoch, e.Message)
	}
	return e
}

func (h *httpNode) Init(req InitRequest) error {
	var resp nodeAck
	if err := h.post(PathNodeInit, req, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Status(epoch int64) (StatusResponse, error) {
	var resp StatusResponse
	if err := h.post(PathNodeStatus, StatusRequest{Epoch: epoch}, &resp); err != nil {
		return StatusResponse{}, err
	}
	return resp, envErr(resp.Err)
}

func (h *httpNode) Insert(code hst.Code, id, capacity int, epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeInsert, InsertRequest{
		Code: []byte(code), ID: id, Capacity: capacity, Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) AddCapacity(code hst.Code, id int, epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeAddCapacity, AddCapacityRequest{
		Code: []byte(code), ID: id, Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Remove(code hst.Code, id int, idem string) (int, bool, error) {
	var resp RemoveResponse
	if err := h.post(PathNodeRemove, RemoveRequest{Code: []byte(code), ID: id, Idem: idem}, &resp); err != nil {
		return 0, false, err
	}
	return resp.Units, resp.Found, envErr(resp.Err)
}

func (h *httpNode) AssignSubtree(code hst.Code, epoch int64, idem string) (int, int, bool, error) {
	var resp AssignResponse
	if err := h.post(PathNodeAssignSubtree, AssignSubtreeRequest{
		Code: []byte(code), Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return engine.None, 0, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, 0, false, err
	}
	return resp.ID, resp.Level, resp.Found, nil
}

func (h *httpNode) MinID(epoch int64) (int, bool, error) {
	var resp MinIDResponse
	if err := h.post(PathNodeMinID, MinIDRequest{Epoch: epoch}, &resp); err != nil {
		return engine.None, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, false, err
	}
	return resp.ID, resp.Found, nil
}

func (h *httpNode) PopMin(epoch int64, idem string) (int, int, bool, error) {
	var resp AssignResponse
	if err := h.post(PathNodePopMin, PopMinRequest{Epoch: epoch, Idem: idem}, &resp); err != nil {
		return engine.None, 0, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, 0, false, err
	}
	return resp.ID, resp.Level, resp.Found, nil
}

func (h *httpNode) Mine(codes []hst.Code, k int, epoch int64) (*engine.WindowMine, error) {
	wire := make([][]byte, len(codes))
	for i, c := range codes {
		wire[i] = []byte(c)
	}
	var resp MineResponse
	if err := h.post(PathNodeMine, MineRequest{Codes: wire, K: k, Epoch: epoch}, &resp); err != nil {
		return nil, err
	}
	if err := envErr(resp.Err); err != nil {
		return nil, err
	}
	wm := &engine.WindowMine{
		Epoch: resp.Epoch,
		Pool:  resp.Pool,
		Own:   fromWireCands(resp.Own),
		Pads:  fromWireCands(resp.Pads),
	}
	// JSON drops empty inner slices to null; re-shape so indexing by task
	// and shard stays valid.
	if wm.Own == nil {
		wm.Own = make([][]hst.Candidate, len(codes))
	}
	return wm, nil
}

func (h *httpNode) Consume(code hst.Code, id int, epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeConsume, ConsumeRequest{
		Code: []byte(code), ID: id, Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Prepare(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodePrepare, PrepareRequest{
		Epoch: epoch, Tree: tree, Shards: shards, Inserts: toWireInserts(inserts), Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Commit(epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeCommit, CommitRequest{Epoch: epoch, Idem: idem}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Abort(epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeAbort, AbortRequest{Epoch: epoch, Idem: idem}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

var _ NodeConn = (*httpNode)(nil)
