package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/wire"
)

// NodeConn is the coordinator's handle to one backend: the engine surface
// a node exposes over /v2, plus the two-phase rotation verbs. LocalNode
// implements it in-process (tests, the simulator, single-binary
// deployments); DialNode implements it over HTTP against a pombm-server.
//
// The idem argument on mutating calls is the idempotency key: a transport
// that retries after a lost response sends the same key, and the node
// replays the recorded answer instead of applying the mutation twice.
// In-process connections ignore it (calls cannot be duplicated).
type NodeConn interface {
	Init(req InitRequest) error
	Status(epoch int64) (StatusResponse, error)
	Insert(code hst.Code, id, capacity int, epoch int64, idem string) error
	AddCapacity(code hst.Code, id int, epoch int64, idem string) error
	Remove(code hst.Code, id int, idem string) (units int, found bool, err error)
	AssignSubtree(code hst.Code, epoch int64, idem string) (id, level int, found bool, err error)
	MinID(epoch int64) (id int, found bool, err error)
	PopMin(epoch int64, idem string) (id, level int, found bool, err error)
	Mine(codes []hst.Code, k int, epoch int64) (*engine.WindowMine, error)
	Consume(code hst.Code, id int, epoch int64, idem string) error
	Prepare(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert, idem string) error
	Commit(epoch int64, idem string) error
	Abort(epoch int64, idem string) error
}

// seqPreparer is an optional NodeConn extension: a connection that ships
// the prepare-phase population as a stream instead of a materialized
// slice. The coordinator prefers it — a 10M-worker rotation otherwise
// holds the whole partition in memory three times over (the inserts, the
// wire structs, and the encoded body). next returns one insert at a time
// and (zero, false, nil) at end; an error aborts the prepare. The
// coordinator may retry a transport failure with the same idem, so the
// sequence behind next must be replayable.
type seqPreparer interface {
	PrepareSeq(epoch int64, tree *hst.Tree, shards int, next func() (engine.EpochInsert, bool, error), idem string) error
}

// Node is the backend half of a cluster member: a bare assignment engine
// (built at Init) plus the staged state of an in-flight distributed
// rotation. It has no slot tables and no budget accountant — those live
// once, at the coordinator — so a pombm-server hosting a Node serves /v2
// with nothing but engine state.
type Node struct {
	mu     sync.Mutex
	eng    *engine.Engine
	staged *engine.PreparedSwap
}

// NewNode returns an uninitialised node; the coordinator's Init call (or a
// direct Init) gives it an engine.
func NewNode() *Node { return &Node{} }

// errNotInitialised is returned by every operation before Init.
var errNotInitialised = errors.New("cluster: node not initialised")

func (n *Node) engine() (*engine.Engine, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng == nil {
		return nil, errNotInitialised
	}
	return n.eng, nil
}

// Init builds (or replaces) the node's engine from the cluster-shared
// configuration. Replacing drops any staged rotation.
func (n *Node) Init(req InitRequest) error {
	if req.Tree == nil {
		return errors.New("cluster: init without a tree")
	}
	pol, err := engine.PolicyByName(req.Policy)
	if err != nil {
		return err
	}
	opts := []engine.Option{engine.WithPolicy(pol)}
	if req.DefaultCapacity != 0 {
		opts = append(opts, engine.WithDefaultCapacity(req.DefaultCapacity))
	}
	eng, err := engine.NewWithOptions(req.Tree, req.Shards, opts...)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.eng = eng
	n.staged = nil
	n.mu.Unlock()
	return nil
}

// Status reports the serving epoch and pool size. A non-zero epoch pin
// that mismatches is reported as engine staleness.
func (n *Node) Status(epoch int64) (StatusResponse, error) {
	eng, err := n.engine()
	if err != nil {
		return StatusResponse{}, err
	}
	cur := eng.Epoch()
	if epoch != 0 && cur != epoch {
		return StatusResponse{}, fmt.Errorf("%w (status for epoch %d, serving %d)", engine.ErrStaleEpoch, epoch, cur)
	}
	return StatusResponse{OK: true, Epoch: cur, Len: eng.Len(), Units: eng.CapacityUnits()}, nil
}

// Insert lands a worker (see engine.InsertCapEpoch).
func (n *Node) Insert(code hst.Code, id, capacity int, epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	return eng.InsertCapEpoch(code, id, capacity, epoch)
}

// AddCapacity returns one unit (see engine.AddCapacityEpoch).
func (n *Node) AddCapacity(code hst.Code, id int, epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	return eng.AddCapacityEpoch(code, id, epoch)
}

// Remove withdraws a worker's pooled units (see engine.RemoveUnits).
func (n *Node) Remove(code hst.Code, id int, _ string) (int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return 0, false, err
	}
	units, ok := eng.RemoveUnits(code, id)
	return units, ok, nil
}

// AssignSubtree runs the greedy rule's node-local tiers (see
// engine.AssignSubtreeEpoch).
func (n *Node) AssignSubtree(code hst.Code, epoch int64, _ string) (int, int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return engine.None, 0, false, err
	}
	return eng.AssignSubtreeEpoch(code, epoch)
}

// MinID answers the root-tier poll (see engine.MinAvailableID).
func (n *Node) MinID(epoch int64) (int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return engine.None, false, err
	}
	return eng.MinAvailableID(epoch)
}

// PopMin commits the root tier on this node (see engine.PopMinID).
func (n *Node) PopMin(epoch int64, _ string) (int, int, bool, error) {
	eng, err := n.engine()
	if err != nil {
		return engine.None, 0, false, err
	}
	return eng.PopMinID(epoch)
}

// Mine gathers this node's window contribution (see
// engine.MineWindowCandidates).
func (n *Node) Mine(codes []hst.Code, k int, epoch int64) (*engine.WindowMine, error) {
	eng, err := n.engine()
	if err != nil {
		return nil, err
	}
	return eng.MineWindowCandidates(codes, k, epoch)
}

// Consume commits one matched window unit (see engine.ConsumeUnit).
func (n *Node) Consume(code hst.Code, id int, epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	return eng.ConsumeUnit(code, id, epoch)
}

// Prepare stages this node's partition of the next epoch (phase one). A
// later Prepare for a different epoch replaces the staged state (staging
// holds no locks, so dropping it is a free abort).
func (n *Node) Prepare(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	staged, err := eng.PrepareSwap(epoch, tree, shards, inserts)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.staged = staged
	n.mu.Unlock()
	return nil
}

// PrepareSeq stages this node's partition pulled one insert at a time —
// the staged arenas are the only copy of the population this node ever
// holds. Semantics are Prepare's: a later prepare for a different epoch
// replaces the staged state.
func (n *Node) PrepareSeq(epoch int64, tree *hst.Tree, shards int, next func() (engine.EpochInsert, bool, error), _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	staged, err := eng.PrepareSwapSeq(epoch, tree, shards, next)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.staged = staged
	n.mu.Unlock()
	return nil
}

// Commit publishes the staged epoch (phase two). Committing an epoch the
// engine already serves acks idempotently: the effect landed, only the
// response was lost.
func (n *Node) Commit(epoch int64, _ string) error {
	eng, err := n.engine()
	if err != nil {
		return err
	}
	n.mu.Lock()
	staged := n.staged
	n.mu.Unlock()
	if staged == nil || staged.Epoch() != epoch {
		if eng.Epoch() == epoch {
			return nil
		}
		return fmt.Errorf("cluster: commit for epoch %d, nothing staged", epoch)
	}
	if err := eng.CommitSwap(staged); err != nil {
		if eng.Epoch() == epoch {
			return nil
		}
		return err
	}
	n.mu.Lock()
	if n.staged == staged {
		n.staged = nil
	}
	n.mu.Unlock()
	return nil
}

// Abort drops the staged epoch (a sibling node's prepare failed).
// Aborting an epoch that is not staged is a no-op: the abort may be a
// retry, or the prepare it cancels may never have arrived.
func (n *Node) Abort(epoch int64, _ string) error {
	n.mu.Lock()
	if n.staged != nil && n.staged.Epoch() == epoch {
		n.staged = nil
	}
	n.mu.Unlock()
	return nil
}

var _ NodeConn = (*Node)(nil)

// LocalNode returns an in-process NodeConn over a Node: the connection the
// simulator's cluster driver and single-binary deployments use. It is the
// Node itself — in-process calls cannot be duplicated, so the idempotency
// layer (which guards HTTP retries) is not in the path.
func LocalNode(n *Node) NodeConn { return n }

// replayCache remembers the response bytes of recently applied mutations
// keyed by idempotency key, with two-generation rotation bounding memory:
// a key survives at least capPerGen further distinct mutations, far longer
// than any transport retry window.
type replayCache struct {
	mu   sync.Mutex
	cur  map[string][]byte
	prev map[string][]byte
}

const replayCapPerGen = 4096

func newReplayCache() *replayCache {
	return &replayCache{cur: map[string][]byte{}}
}

func (c *replayCache) get(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.cur[key]; ok {
		return b, true
	}
	b, ok := c.prev[key]
	return b, ok
}

func (c *replayCache) put(key string, body []byte) {
	if key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cur) >= replayCapPerGen {
		c.prev = c.cur
		c.cur = map[string][]byte{}
	}
	c.cur[key] = body
}

// nodeError folds a node-side error into the structured taxonomy for the
// wire: engine staleness becomes stale_epoch, an uninitialised node is a
// conflict, anything else a bad request.
func nodeError(err error, epoch int64) *platform.Error {
	if errors.Is(err, errNotInitialised) {
		return &platform.Error{Code: platform.CodeConflict, Message: err.Error(), Retryable: true}
	}
	return platform.AsError(err, epoch)
}

// NodeHandler exposes a Node over the /v2 wire protocol. Mutating
// endpoints honour idempotency keys: a request whose key was already
// applied is answered from the replay cache byte-for-byte.
func NodeHandler(n *Node) http.Handler {
	cache := newReplayCache()
	mux := http.NewServeMux()

	// handlePost wires one POST endpoint: decode, optionally replay,
	// execute, record. fn returns the response value to encode; responses
	// are recorded under the request's idempotency key only when the
	// mutation was actually applied (fn ran). peekIdem gates the
	// whole-request replay probe — endpoints whose body carries no
	// top-level idem (the ops envelope: replay is per sub-op) skip it,
	// saving a full parse of the largest bodies on the hot path.
	handlePost := func(path string, peekIdem bool, fn func(body []byte) (any, string)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				writeNodeJSON(w, http.StatusMethodNotAllowed, &platform.Error{
					Code:    platform.CodeMethodNotAllowed,
					Message: fmt.Sprintf("cluster: %s requires POST, got %s", path, r.Method),
				})
				return
			}
			cb := wire.Get()
			defer wire.Put(cb)
			if err := cb.ReadAll(r.Body, 64<<20); err != nil {
				writeNodeJSON(w, http.StatusBadRequest, &platform.Error{
					Code: platform.CodeBadRequest, Message: "cluster: read body: " + err.Error(),
				})
				return
			}
			body := cb.Bytes()
			if peekIdem {
				// Peek the idempotency key before decoding the full request
				// so replays skip the work entirely.
				var keyed struct {
					Idem string `json:"idem"`
				}
				_ = json.Unmarshal(body, &keyed)
				if cached, ok := cache.get(keyed.Idem); ok {
					h := w.Header()
					h.Set("Content-Type", "application/json")
					h.Set("Content-Length", strconv.Itoa(len(cached)))
					w.Write(cached)
					return
				}
			}
			resp, idem := fn(body)
			// The request bytes are decoded into owned structs by now;
			// reuse the pooled scratch for the response. The replay cache
			// must outlive it, so it gets a copy.
			cb.Reset()
			if err := cb.Encode(resp); err != nil {
				writeNodeJSON(w, http.StatusInternalServerError, &platform.Error{
					Code: platform.CodeInternal, Message: err.Error(),
				})
				return
			}
			if idem != "" {
				cache.put(idem, cb.Clone())
			}
			h := w.Header()
			h.Set("Content-Type", "application/json")
			h.Set("Content-Length", strconv.Itoa(cb.Len()))
			w.Write(cb.Bytes())
		})
	}

	handlePost(PathNodeInit, true, func(body []byte) (any, string) {
		var req InitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Init(req); err != nil {
			return nodeAck{Err: nodeError(err, 0)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handlePost(PathNodeStatus, true, func(body []byte) (any, string) {
		var req StatusRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return StatusResponse{Err: badBody(err)}, ""
		}
		resp, err := n.Status(req.Epoch)
		if err != nil {
			return StatusResponse{Err: nodeError(err, 0)}, ""
		}
		return resp, ""
	})
	handlePost(PathNodeInsert, true, func(body []byte) (any, string) {
		var req InsertRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Insert(hst.Code(req.Code), req.ID, req.Capacity, req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handlePost(PathNodeAddCapacity, true, func(body []byte) (any, string) {
		var req AddCapacityRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.AddCapacity(hst.Code(req.Code), req.ID, req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handlePost(PathNodeRemove, true, func(body []byte) (any, string) {
		var req RemoveRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return RemoveResponse{Err: badBody(err)}, ""
		}
		units, found, err := n.Remove(hst.Code(req.Code), req.ID, req.Idem)
		if err != nil {
			return RemoveResponse{Err: nodeError(err, 0)}, ""
		}
		return RemoveResponse{OK: true, Units: units, Found: found}, req.Idem
	})
	handlePost(PathNodeAssignSubtree, true, func(body []byte) (any, string) {
		var req AssignSubtreeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return AssignResponse{Err: badBody(err)}, ""
		}
		id, lvl, found, err := n.AssignSubtree(hst.Code(req.Code), req.Epoch, req.Idem)
		if err != nil {
			return AssignResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return AssignResponse{OK: true, ID: id, Level: lvl, Found: found}, req.Idem
	})
	handlePost(PathNodeMinID, true, func(body []byte) (any, string) {
		var req MinIDRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return MinIDResponse{Err: badBody(err)}, ""
		}
		id, found, err := n.MinID(req.Epoch)
		if err != nil {
			return MinIDResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return MinIDResponse{OK: true, ID: id, Found: found}, ""
	})
	handlePost(PathNodePopMin, true, func(body []byte) (any, string) {
		var req PopMinRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return AssignResponse{Err: badBody(err)}, ""
		}
		id, lvl, found, err := n.PopMin(req.Epoch, req.Idem)
		if err != nil {
			return AssignResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return AssignResponse{OK: true, ID: id, Level: lvl, Found: found}, req.Idem
	})
	handlePost(PathNodeMine, true, func(body []byte) (any, string) {
		var req MineRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return MineResponse{Err: badBody(err)}, ""
		}
		codes := make([]hst.Code, len(req.Codes))
		for i, c := range req.Codes {
			codes[i] = hst.Code(c)
		}
		wm, err := n.Mine(codes, req.K, req.Epoch)
		if err != nil {
			return MineResponse{Err: nodeError(err, req.Epoch)}, ""
		}
		return MineResponse{
			OK: true, Epoch: wm.Epoch, Pool: wm.Pool,
			Own: toWireCands(wm.Own), Pads: toWireCands(wm.Pads),
		}, ""
	})
	handlePost(PathNodeConsume, true, func(body []byte) (any, string) {
		var req ConsumeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Consume(hst.Code(req.Code), req.ID, req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handlePost(PathNodeOps, false, func(body []byte) (any, string) {
		var req OpsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return OpsResponse{Err: badBody(err)}, ""
		}
		// The success envelope is assembled by hand: every sub-result is
		// already compact JSON (json.Marshal output, cached verbatim), so
		// splicing them between literal framing produces exactly the bytes
		// OpsResponse would encode to — without reflecting over the struct
		// or re-compacting each result. Envelope-level refusals still go
		// through the normal encoder.
		env := make([]byte, 0, 32+len(body))
		env = append(env, `{"ok":true,"results":[`...)
		for i, op := range req.Ops {
			if i > 0 {
				env = append(env, ',')
			}
			// Sub-ops share the replay cache with the single-op endpoints:
			// a duplicated envelope (or the same op re-sent individually)
			// replays the recorded bytes instead of re-applying.
			if cached, ok := cache.get(op.Idem); ok {
				env = append(env, cached...)
				continue
			}
			resp, idem := execOp(n, op)
			out, err := json.Marshal(resp)
			if err != nil {
				return OpsResponse{Err: &platform.Error{
					Code: platform.CodeInternal, Message: err.Error(),
				}}, ""
			}
			cache.put(idem, out)
			env = append(env, out...)
		}
		env = append(env, `]}`...)
		// The envelope itself carries no idem — the sub-ops are the replay
		// unit — so it is never cached as a whole.
		return json.RawMessage(env), ""
	})
	// Prepare gets a dedicated streaming handler: its body scales with the
	// population partition, so buffering it through the generic path would
	// hold the whole partition in memory beside the staged arenas (and the
	// generic 64MB body cap would refuse large rotations outright).
	mux.HandleFunc(PathNodePrepare, prepareHandler(n, cache))
	handlePost(PathNodeCommit, true, func(body []byte) (any, string) {
		var req CommitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Commit(req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	handlePost(PathNodeAbort, true, func(body []byte) (any, string) {
		var req AbortRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nodeAck{Err: badBody(err)}, ""
		}
		if err := n.Abort(req.Epoch, req.Idem); err != nil {
			return nodeAck{Err: nodeError(err, req.Epoch)}, ""
		}
		return nodeAck{OK: true}, req.Idem
	})
	return mux
}

// execOp runs one envelope sub-operation, mirroring the matching single-op
// handler exactly: same response shape, same error taxonomy, and the same
// convention that an error returns idem "" so failures are never cached.
func execOp(n *Node, op OpRequest) (any, string) {
	switch op.Kind {
	case OpInsert:
		if err := n.Insert(hst.Code(op.Code), op.ID, op.Capacity, op.Epoch, op.Idem); err != nil {
			return nodeAck{Err: nodeError(err, op.Epoch)}, ""
		}
		return nodeAck{OK: true}, op.Idem
	case OpAddCapacity:
		if err := n.AddCapacity(hst.Code(op.Code), op.ID, op.Epoch, op.Idem); err != nil {
			return nodeAck{Err: nodeError(err, op.Epoch)}, ""
		}
		return nodeAck{OK: true}, op.Idem
	case OpRemove:
		units, found, err := n.Remove(hst.Code(op.Code), op.ID, op.Idem)
		if err != nil {
			return RemoveResponse{Err: nodeError(err, 0)}, ""
		}
		return RemoveResponse{OK: true, Units: units, Found: found}, op.Idem
	case OpAssignSubtree:
		id, lvl, found, err := n.AssignSubtree(hst.Code(op.Code), op.Epoch, op.Idem)
		if err != nil {
			return AssignResponse{Err: nodeError(err, op.Epoch)}, ""
		}
		return AssignResponse{OK: true, ID: id, Level: lvl, Found: found}, op.Idem
	case OpConsume:
		if err := n.Consume(hst.Code(op.Code), op.ID, op.Epoch, op.Idem); err != nil {
			return nodeAck{Err: nodeError(err, op.Epoch)}, ""
		}
		return nodeAck{OK: true}, op.Idem
	default:
		return nodeAck{Err: &platform.Error{
			Code:    platform.CodeBadRequest,
			Message: fmt.Sprintf("cluster: unknown op kind %q", op.Kind),
		}}, ""
	}
}

// prepareHandler decodes a prepare body incrementally and feeds the
// inserts straight into the node's staging pass, so the node's transient
// memory during a rotation is one staged engine — never the JSON document.
// It accepts the exact wire form the materialized client sends (the
// PrepareRequest field order keeps "inserts" last, which is what lets the
// scalar fields land before the array streams). The idempotency key is
// honoured when it precedes the inserts — both clients emit it first; a
// replayed prepare is answered from the cache without re-staging.
func prepareHandler(n *Node, cache *replayCache) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeNodeJSON(w, http.StatusMethodNotAllowed, &platform.Error{
				Code:    platform.CodeMethodNotAllowed,
				Message: fmt.Sprintf("cluster: %s requires POST, got %s", PathNodePrepare, r.Method),
			})
			return
		}
		var (
			req      PrepareRequest // scalar fields only; Inserts stays nil
			dec      = json.NewDecoder(r.Body)
			staged   bool
			stageErr error
		)
		respond := func(resp nodeAck, idem string) {
			out, err := json.Marshal(resp)
			if err != nil {
				writeNodeJSON(w, http.StatusInternalServerError, &platform.Error{
					Code: platform.CodeInternal, Message: err.Error(),
				})
				return
			}
			cache.put(idem, out)
			w.Header().Set("Content-Type", "application/json")
			w.Write(out)
		}
		fail := func(err error) { respond(nodeAck{Err: badBody(err)}, "") }

		tok, err := dec.Token()
		if err != nil {
			fail(err)
			return
		}
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			fail(fmt.Errorf("expected object, got %v", tok))
			return
		}
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				fail(err)
				return
			}
			key, _ := keyTok.(string)
			switch key {
			case "idem":
				if err := dec.Decode(&req.Idem); err != nil {
					fail(err)
					return
				}
				if cached, ok := cache.get(req.Idem); ok && !staged {
					// Replay: the mutation already applied; drain the body so
					// the streaming client's write completes cleanly.
					io.Copy(io.Discard, r.Body)
					w.Header().Set("Content-Type", "application/json")
					w.Write(cached)
					return
				}
			case "epoch":
				if err := dec.Decode(&req.Epoch); err != nil {
					fail(err)
					return
				}
			case "shards":
				if err := dec.Decode(&req.Shards); err != nil {
					fail(err)
					return
				}
			case "tree":
				if err := dec.Decode(&req.Tree); err != nil {
					fail(err)
					return
				}
			case "inserts":
				if staged {
					fail(fmt.Errorf("duplicate inserts field"))
					return
				}
				tok, err := dec.Token()
				if err != nil {
					fail(err)
					return
				}
				var next func() (engine.EpochInsert, bool, error)
				switch {
				case tok == nil: // "inserts":null — an empty partition
					next = func() (engine.EpochInsert, bool, error) {
						return engine.EpochInsert{}, false, nil
					}
				default:
					if d, ok := tok.(json.Delim); !ok || d != '[' {
						fail(fmt.Errorf("inserts field: expected array, got %v", tok))
						return
					}
					next = func() (engine.EpochInsert, bool, error) {
						if !dec.More() {
							if _, err := dec.Token(); err != nil { // consume ']'
								return engine.EpochInsert{}, false, err
							}
							return engine.EpochInsert{}, false, nil
						}
						var wi WireInsert
						if err := dec.Decode(&wi); err != nil {
							return engine.EpochInsert{}, false, err
						}
						return engine.EpochInsert{Code: hst.Code(wi.Code), ID: wi.ID, Cap: wi.Cap}, true, nil
					}
				}
				stageErr = n.PrepareSeq(req.Epoch, req.Tree, req.Shards, next, req.Idem)
				staged = true
				if stageErr != nil {
					// The staging pass may have stopped mid-array, leaving
					// the decoder unusable; answer now rather than parse on.
					respond(nodeAck{Err: nodeError(stageErr, req.Epoch)}, "")
					return
				}
			default:
				if err := skipJSONValue(dec); err != nil {
					fail(err)
					return
				}
			}
		}
		if _, err := dec.Token(); err != nil { // consume '}'
			fail(err)
			return
		}
		if !staged {
			// No inserts field at all: a legal empty prepare.
			stageErr = n.PrepareSeq(req.Epoch, req.Tree, req.Shards, func() (engine.EpochInsert, bool, error) {
				return engine.EpochInsert{}, false, nil
			}, req.Idem)
		}
		if stageErr != nil {
			respond(nodeAck{Err: nodeError(stageErr, req.Epoch)}, "")
			return
		}
		respond(nodeAck{OK: true}, req.Idem)
	}
}

// skipJSONValue consumes one JSON value of any shape off a decoder.
func skipJSONValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}

func badBody(err error) *platform.Error {
	return &platform.Error{Code: platform.CodeBadRequest, Message: "cluster: bad request: " + err.Error()}
}

func writeNodeJSON(w http.ResponseWriter, status int, e *platform.Error) {
	cb := wire.Get()
	defer wire.Put(cb)
	if err := cb.Encode(e); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(cb.Len()))
	w.WriteHeader(status)
	w.Write(cb.Bytes())
}

// httpNode is a NodeConn over the /v2 wire protocol.
type httpNode struct {
	baseURL  string
	client   *http.Client
	timeouts NodeTimeouts
}

// NodeTimeouts bounds each /v2 round trip by operation class. A single
// flat client timeout cannot serve both: routed mutations and mining must
// fail fast (the coordinator holds locks across them), while a rotation
// prepare ships an entire population partition and legitimately runs for
// minutes at 10M workers — under a flat 30s budget large rotations time
// out forever. Zero fields take the defaults.
type NodeTimeouts struct {
	// Op bounds every routed call: insert, remove, assign, status, mine,
	// consume, commit, abort, init.
	Op time.Duration
	// Prepare bounds the rotation prepare, whose body and staging time
	// scale with the population partition.
	Prepare time.Duration
}

const (
	// DefaultOpTimeout is the per-call deadline for routed operations.
	DefaultOpTimeout = 30 * time.Second
	// DefaultPrepareTimeout is deliberately generous: a 10M-worker prepare
	// streams hundreds of megabytes and rebuilds the node's arenas.
	DefaultPrepareTimeout = 10 * time.Minute
)

func (t NodeTimeouts) op() time.Duration {
	if t.Op > 0 {
		return t.Op
	}
	return DefaultOpTimeout
}

func (t NodeTimeouts) prepare() time.Duration {
	if t.Prepare > 0 {
		return t.Prepare
	}
	return DefaultPrepareTimeout
}

// DialNode returns a NodeConn for a backend base URL (e.g.
// "http://node0:8080") with default per-operation deadlines. The
// connection is stateless; no eager handshake happens — the coordinator's
// Init is the first contact.
func DialNode(baseURL string) NodeConn {
	return DialNodeTimeouts(baseURL, NodeTimeouts{})
}

// nodeClient is the process-wide client for coordinator→node traffic: one
// tuned connection pool (keep-alives, generous per-host idle conns) shared
// by every dialed node, so a coordinator fanning out to N backends reuses
// warm connections instead of re-dialing under load.
var nodeClient = &http.Client{Transport: platform.NewTransport()}

// DialNodeTimeouts is DialNode with explicit per-operation deadlines
// (zero fields take the defaults).
func DialNodeTimeouts(baseURL string, to NodeTimeouts) NodeConn {
	return &httpNode{baseURL: baseURL, client: nodeClient, timeouts: to}
}

// DialNodeClient is DialNode with a caller-supplied HTTP client (tests pin
// transports; deployments pin proxies). Per-operation deadlines still
// apply on top; a non-zero hc.Timeout caps every call — including the
// rotation prepare — so deployments should leave it zero and use
// DialNodeTimeouts instead.
func DialNodeClient(baseURL string, hc *http.Client) NodeConn {
	return &httpNode{baseURL: baseURL, client: hc}
}

// deadlineErr is the typed refusal for an expired per-operation deadline:
// retryable-unavailable, so the serving layer reports a backend that is up
// but too slow exactly like one that is down — the caller may retry, the
// mutation (keyed by idem) cannot double-apply.
func deadlineErr(path string, d time.Duration) error {
	return &platform.Error{
		Code:      platform.CodeUnavailable,
		Message:   fmt.Sprintf("cluster: %s exceeded its %s deadline", path, d),
		Retryable: true,
	}
}

// post sends one /v2 request and decodes the response envelope. An error
// status or an envelope Err decodes into a typed error: stale_epoch
// refusals surface as engine.ErrStaleEpoch so the coordinator's staleness
// handling does not depend on the transport. Failures of the transport
// itself — connection refused, truncated reads, undecodable responses —
// wrap errTransport: the coordinator retries those (with the same
// idempotency key), never application refusals. An expired deadline is
// NOT a transport failure: it surfaces as a typed retryable-unavailable
// error immediately, because blindly re-running a call that just consumed
// its full time budget doubles the stall without changing the outcome.
func (h *httpNode) post(path string, in, out any) error {
	cb := wire.Get()
	defer wire.Put(cb)
	if err := cb.Encode(in); err != nil {
		return fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	return h.postBody(path, cb.Reader(), out, h.timeouts.op())
}

// postBody is post with a caller-supplied body stream and deadline — the
// rotation prepare streams its body and runs under the prepare deadline.
func (h *httpNode) postBody(path string, body io.Reader, out any, d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("cluster: build %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// The body may be pooled codec scratch; it must not be re-read after
	// this call returns.
	req.GetBody = nil
	resp, err := h.client.Do(req)
	if err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return deadlineErr(path, d)
		}
		return fmt.Errorf("%w: POST %s: %v", errTransport, path, err)
	}
	defer resp.Body.Close()
	rb := wire.Get()
	defer wire.Put(rb)
	// ReadAll drains the body past the cap, so the keep-alive connection
	// returns to the pool clean.
	if err := rb.ReadAll(resp.Body, 64<<20); err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return deadlineErr(path, d)
		}
		return fmt.Errorf("%w: read %s: %v", errTransport, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var we platform.Error
		raw := bytes.TrimSpace(rb.Bytes())
		if json.Unmarshal(raw, &we) == nil && we.Code != "" {
			return &we
		}
		return fmt.Errorf("%w: %s returned %s: %s", errTransport, path, resp.Status, raw)
	}
	if err := rb.Unmarshal(out); err != nil {
		return fmt.Errorf("%w: decode %s: %v", errTransport, path, err)
	}
	return nil
}

// envErr converts a response envelope's Err into a Go error, restoring the
// engine staleness sentinel for stale_epoch codes.
func envErr(e *platform.Error) error {
	if e == nil {
		return nil
	}
	if e.Code == platform.CodeStaleEpoch {
		return fmt.Errorf("%w: %s", engine.ErrStaleEpoch, e.Message)
	}
	return e
}

func (h *httpNode) Init(req InitRequest) error {
	var resp nodeAck
	if err := h.post(PathNodeInit, req, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Status(epoch int64) (StatusResponse, error) {
	var resp StatusResponse
	if err := h.post(PathNodeStatus, StatusRequest{Epoch: epoch}, &resp); err != nil {
		return StatusResponse{}, err
	}
	return resp, envErr(resp.Err)
}

func (h *httpNode) Insert(code hst.Code, id, capacity int, epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeInsert, InsertRequest{
		Code: []byte(code), ID: id, Capacity: capacity, Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) AddCapacity(code hst.Code, id int, epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeAddCapacity, AddCapacityRequest{
		Code: []byte(code), ID: id, Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Remove(code hst.Code, id int, idem string) (int, bool, error) {
	var resp RemoveResponse
	if err := h.post(PathNodeRemove, RemoveRequest{Code: []byte(code), ID: id, Idem: idem}, &resp); err != nil {
		return 0, false, err
	}
	return resp.Units, resp.Found, envErr(resp.Err)
}

func (h *httpNode) AssignSubtree(code hst.Code, epoch int64, idem string) (int, int, bool, error) {
	var resp AssignResponse
	if err := h.post(PathNodeAssignSubtree, AssignSubtreeRequest{
		Code: []byte(code), Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return engine.None, 0, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, 0, false, err
	}
	return resp.ID, resp.Level, resp.Found, nil
}

func (h *httpNode) MinID(epoch int64) (int, bool, error) {
	var resp MinIDResponse
	if err := h.post(PathNodeMinID, MinIDRequest{Epoch: epoch}, &resp); err != nil {
		return engine.None, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, false, err
	}
	return resp.ID, resp.Found, nil
}

func (h *httpNode) PopMin(epoch int64, idem string) (int, int, bool, error) {
	var resp AssignResponse
	if err := h.post(PathNodePopMin, PopMinRequest{Epoch: epoch, Idem: idem}, &resp); err != nil {
		return engine.None, 0, false, err
	}
	if err := envErr(resp.Err); err != nil {
		return engine.None, 0, false, err
	}
	return resp.ID, resp.Level, resp.Found, nil
}

func (h *httpNode) Mine(codes []hst.Code, k int, epoch int64) (*engine.WindowMine, error) {
	wire := make([][]byte, len(codes))
	for i, c := range codes {
		wire[i] = []byte(c)
	}
	var resp MineResponse
	if err := h.post(PathNodeMine, MineRequest{Codes: wire, K: k, Epoch: epoch}, &resp); err != nil {
		return nil, err
	}
	if err := envErr(resp.Err); err != nil {
		return nil, err
	}
	wm := &engine.WindowMine{
		Epoch: resp.Epoch,
		Pool:  resp.Pool,
		Own:   fromWireCands(resp.Own),
		Pads:  fromWireCands(resp.Pads),
	}
	// JSON drops empty inner slices to null; re-shape so indexing by task
	// and shard stays valid.
	if wm.Own == nil {
		wm.Own = make([][]hst.Candidate, len(codes))
	}
	return wm, nil
}

func (h *httpNode) Consume(code hst.Code, id int, epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeConsume, ConsumeRequest{
		Code: []byte(code), ID: id, Epoch: epoch, Idem: idem,
	}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

// Ops ships one coalesced envelope and returns the raw per-op results in
// order. Envelope-level failures (transport, refused envelope, a result
// count that does not match) surface as errors; per-op outcomes stay raw
// for the caller to decode against the op's own response shape.
func (h *httpNode) Ops(ops []OpRequest) ([]json.RawMessage, error) {
	var resp OpsResponse
	if err := h.post(PathNodeOps, OpsRequest{Ops: ops}, &resp); err != nil {
		return nil, err
	}
	if err := envErr(resp.Err); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(ops) {
		return nil, fmt.Errorf("%w: %s answered %d results for %d ops",
			errTransport, PathNodeOps, len(resp.Results), len(ops))
	}
	return resp.Results, nil
}

func (h *httpNode) Prepare(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert, idem string) error {
	i := 0
	return h.PrepareSeq(epoch, tree, shards, func() (engine.EpochInsert, bool, error) {
		if i >= len(inserts) {
			return engine.EpochInsert{}, false, nil
		}
		in := inserts[i]
		i++
		return in, true, nil
	}, idem)
}

// PrepareSeq streams the prepare body: the idem and scalar fields first
// (so the node can replay-check before any work), the tree, then the
// inserts encoded one at a time through an io.Pipe — the partition is
// never materialized as wire structs or an encoded document on this side.
// Runs under the prepare deadline, not the op deadline.
func (h *httpNode) PrepareSeq(epoch int64, tree *hst.Tree, shards int, next func() (engine.EpochInsert, bool, error), idem string) error {
	treeJSON, err := json.Marshal(tree)
	if err != nil {
		return fmt.Errorf("cluster: encode %s tree: %w", PathNodePrepare, err)
	}
	idemJSON, err := json.Marshal(idem)
	if err != nil {
		return fmt.Errorf("cluster: encode %s idem: %w", PathNodePrepare, err)
	}
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 1<<16)
		fmt.Fprintf(bw, `{"idem":%s,"epoch":%d,"shards":%d,"tree":%s,"inserts":[`,
			idemJSON, epoch, shards, treeJSON)
		comma := false
		for {
			in, ok, err := next()
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if !ok {
				break
			}
			if comma {
				bw.WriteByte(',')
			}
			comma = true
			b, err := json.Marshal(WireInsert{Code: []byte(in.Code), ID: in.ID, Cap: in.Cap})
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if _, err := bw.Write(b); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		bw.WriteString("]}")
		pw.CloseWithError(bw.Flush())
	}()
	var resp nodeAck
	if err := h.postBody(PathNodePrepare, pr, &resp, h.timeouts.prepare()); err != nil {
		pr.Close() // stop the encoder goroutine if it is still writing
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Commit(epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeCommit, CommitRequest{Epoch: epoch, Idem: idem}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

func (h *httpNode) Abort(epoch int64, idem string) error {
	var resp nodeAck
	if err := h.post(PathNodeAbort, AbortRequest{Epoch: epoch, Idem: idem}, &resp); err != nil {
		return err
	}
	return envErr(resp.Err)
}

var (
	_ NodeConn    = (*httpNode)(nil)
	_ seqPreparer = (*httpNode)(nil)
	_ seqPreparer = (*Node)(nil)
)
