package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/engine"
)

// postRaw POSTs a prebuilt body and returns the status and response bytes.
func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

// TestOpsEnvelopeReplayByteExact pins the envelope replay contract: a
// duplicated /v2/node/ops request replays every sub-op byte-exactly from
// the per-op cache without re-applying a single mutation — and keeps doing
// so after a cache generation rotation (the keys survive in the previous
// generation).
func TestOpsEnvelopeReplayByteExact(t *testing.T) {
	tree := buildTree(t, 7)
	node := NewNode()
	ts := httptest.NewServer(NodeHandler(node))
	defer ts.Close()
	conn := DialNode(ts.URL)
	if err := conn.Init(InitRequest{Tree: tree, Idem: "init-1"}); err != nil {
		t.Fatal(err)
	}

	env, err := json.Marshal(OpsRequest{Ops: []OpRequest{
		{Kind: OpInsert, Idem: "e-1", Code: []byte(tree.CodeOf(0)), ID: 1, Epoch: 1},
		{Kind: OpInsert, Idem: "e-2", Code: []byte(tree.CodeOf(1)), ID: 2, Epoch: 1},
		{Kind: OpAssignSubtree, Idem: "e-3", Code: []byte(tree.CodeOf(0)), Epoch: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	status, first := postRaw(t, ts.URL+PathNodeOps, env)
	if status != http.StatusOK || !strings.Contains(string(first), `"ok":true`) {
		t.Fatalf("envelope refused: %d %s", status, first)
	}
	eng, _ := node.engine()
	wantLen := eng.Len()

	_, second := postRaw(t, ts.URL+PathNodeOps, env)
	if !bytes.Equal(first, second) {
		t.Fatalf("envelope replay differs:\n%s\n---\n%s", first, second)
	}
	if got := eng.Len(); got != wantLen {
		t.Fatalf("replay re-applied mutations: pool %d, want %d", got, wantLen)
	}

	// A sub-op re-sent on its own single-op endpoint replays the same
	// recorded result: the cache is shared, the sub-op is the replay unit.
	var envResp OpsResponse
	if err := json.Unmarshal(first, &envResp); err != nil {
		t.Fatal(err)
	}
	single := `{"code":` + jsonBytes(tree.CodeOf(0)) + `,"id":1,"epoch":1,"idem":"e-1"}`
	_, solo := postRaw(t, ts.URL+PathNodeInsert, []byte(single))
	if !bytes.Equal(bytes.TrimSpace(solo), bytes.TrimSpace(envResp.Results[0])) {
		t.Fatalf("single-op replay differs from envelope result:\n%s\n---\n%s",
			solo, envResp.Results[0])
	}

	// Rotate the replay cache one generation (replayCapPerGen further
	// distinct keyed mutations) and replay again: the keys must survive in
	// the previous generation.
	filler := make([]OpRequest, 0, 128)
	id := 1000
	for n := 0; n < replayCapPerGen; n += len(filler) {
		filler = filler[:0]
		for i := 0; i < 128 && n+i < replayCapPerGen; i++ {
			filler = append(filler, OpRequest{
				Kind: OpInsert, Idem: fmt.Sprintf("fill-%d", id),
				Code: []byte(tree.CodeOf(id % tree.NumPoints())), ID: id, Epoch: 1,
			})
			id++
		}
		fenv, err := json.Marshal(OpsRequest{Ops: filler})
		if err != nil {
			t.Fatal(err)
		}
		if status, _ := postRaw(t, ts.URL+PathNodeOps, fenv); status != http.StatusOK {
			t.Fatalf("filler envelope refused: %d", status)
		}
	}
	wantLen = eng.Len()
	_, third := postRaw(t, ts.URL+PathNodeOps, env)
	if !bytes.Equal(first, third) {
		t.Fatalf("replay after generation rotation differs:\n%s\n---\n%s", first, third)
	}
	if got := eng.Len(); got != wantLen {
		t.Fatalf("post-rotation replay re-applied mutations: pool %d, want %d", got, wantLen)
	}
}

// TestOpsEnvelopeMixedOutcomesCachePerOp pins per-op caching on a mixed
// batch: successful sub-ops replay from the cache, refused sub-ops are
// never cached — the keyed retry re-executes, and succeeds once the
// refusal's cause is gone.
func TestOpsEnvelopeMixedOutcomesCachePerOp(t *testing.T) {
	tree := buildTree(t, 7)
	node := NewNode()
	ts := httptest.NewServer(NodeHandler(node))
	defer ts.Close()
	conn := DialNode(ts.URL)
	if err := conn.Init(InitRequest{Tree: tree, Idem: "init-1"}); err != nil {
		t.Fatal(err)
	}

	// Op m-2 pins epoch 2 while the node serves epoch 1: a stale_epoch
	// refusal between two successes.
	env, err := json.Marshal(OpsRequest{Ops: []OpRequest{
		{Kind: OpInsert, Idem: "m-1", Code: []byte(tree.CodeOf(0)), ID: 1, Epoch: 1},
		{Kind: OpInsert, Idem: "m-2", Code: []byte(tree.CodeOf(1)), ID: 2, Epoch: 2},
		{Kind: OpInsert, Idem: "m-3", Code: []byte(tree.CodeOf(2)), ID: 3, Epoch: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, first := postRaw(t, ts.URL+PathNodeOps, env)
	var resp OpsResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Results) != 3 {
		t.Fatalf("envelope answer: %s", first)
	}
	for i, want := range []string{`"ok":true`, "stale_epoch", `"ok":true`} {
		if !strings.Contains(string(resp.Results[i]), want) {
			t.Fatalf("op %d: got %s, want %q", i, resp.Results[i], want)
		}
	}
	eng, _ := node.engine()
	if got := eng.Len(); got != 2 {
		t.Fatalf("applied %d inserts, want 2", got)
	}

	// Rotate the node to epoch 2 and re-send the identical envelope: the
	// two successes replay (pool unchanged by them), the refused op
	// re-executes — a cached error would replay the refusal — and now
	// lands.
	if err := conn.Prepare(2, tree, 0, []engine.EpochInsert{
		{Code: tree.CodeOf(0), ID: 1, Cap: 1},
		{Code: tree.CodeOf(2), ID: 3, Cap: 1},
	}, "prep-2"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Commit(2, "commit-2"); err != nil {
		t.Fatal(err)
	}
	_, second := postRaw(t, ts.URL+PathNodeOps, env)
	if err := json.Unmarshal(second, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Results[1]), `"ok":true`) {
		t.Fatalf("retried op still refused after rotation (error was cached?): %s", resp.Results[1])
	}
	if got := eng.Len(); got != 3 {
		t.Fatalf("pool %d after retry, want 3 (replays must not re-apply, retry must apply once)", got)
	}
}

// TestCoalescedMatchesPerOpTape is the differential gate for the
// coalescer: the same randomised operation tape — inserts, removals,
// multi-window batch assignments, with an epoch rotation mid-tape — driven
// through a coalescing coordinator and a per-op (NoCoalesce) coordinator
// over real HTTP backends produces identical answers, both pinned to the
// single-process engine.
func TestCoalescedMatchesPerOpTape(t *testing.T) {
	tree := buildTree(t, 7)
	next := buildTree(t, 8)
	for _, tc := range []struct {
		name       string
		noCoalesce bool
	}{
		{"coalesced", false},
		{"per-op", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := engine.PolicyByName("batch-optimal:k=4")
			if err != nil {
				t.Fatal(err)
			}
			core, err := newFanCore(httpNodes(t, 3), tree, 0, pol, "batch-optimal:k=4", 1, tc.noCoalesce)
			if err != nil {
				t.Fatal(err)
			}
			if tc.noCoalesce {
				for _, b := range core.batchers {
					if b != nil {
						t.Fatal("NoCoalesce left a batcher attached")
					}
				}
			} else {
				active := 0
				for _, b := range core.batchers {
					if b != nil {
						active++
					}
				}
				if active != len(core.nodes) {
					t.Fatalf("coalescing attached %d/%d batchers", active, len(core.nodes))
				}
			}
			refPol, _ := engine.PolicyByName("batch-optimal:k=4")
			eng, err := engine.NewWithOptions(tree, 0, engine.WithPolicy(refPol))
			if err != nil {
				t.Fatal(err)
			}
			runTape(t, core, eng, tree, 99)

			// Mid-tape rotation, then more tape: the coalesced wire path
			// must hand over epochs exactly like the per-op one.
			var inserts []engine.EpochInsert
			for i := 0; i < 160; i++ {
				inserts = append(inserts, engine.EpochInsert{
					Code: next.CodeOf((i * 7) % next.NumPoints()), ID: i, Cap: 1,
				})
			}
			if err := core.SwapEpoch(2, next, 0, inserts); err != nil {
				t.Fatal(err)
			}
			if err := eng.SwapEpoch(2, next, 0, inserts); err != nil {
				t.Fatal(err)
			}
			rnd := rand.New(rand.NewSource(77))
			leaves := next.NumPoints()
			for i := 0; i < 200; i++ {
				code := next.CodeOf(rnd.Intn(leaves))
				gid, glvl, gok := core.Assign(code)
				wid, wlvl, wok := eng.Assign(code)
				if gid != wid || glvl != wlvl || gok != wok {
					t.Fatalf("post-swap assign %d: cluster (%d,%d,%v) engine (%d,%d,%v)",
						i, gid, glvl, gok, wid, wlvl, wok)
				}
			}
		})
	}
}

// TestCoalescerConcurrentOps exercises real multi-op envelopes: many
// goroutines inserting and assigning through a coalescing core over HTTP
// land exactly once each, and the pool balances.
func TestCoalescerConcurrentOps(t *testing.T) {
	tree := buildTree(t, 11)
	pol, _ := engine.PolicyByName("greedy")
	core, err := newFanCore(httpNodes(t, 2), tree, 0, pol, "greedy", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perG    = 25
	)
	leaves := tree.NumPoints()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := g*perG + i
				if err := core.InsertEpoch(tree.CodeOf(id%leaves), id, 0); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := core.Len(); got != workers*perG {
		t.Fatalf("pool %d after concurrent inserts, want %d", got, workers*perG)
	}
	assigned := make([]map[int]bool, workers)
	for g := 0; g < workers; g++ {
		assigned[g] = map[int]bool{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if id, _, ok := core.Assign(tree.CodeOf((g*perG + i) % leaves)); ok {
					if assigned[g][id] {
						t.Errorf("worker %d assigned twice within one goroutine", id)
					}
					assigned[g][id] = true
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	seen := map[int]bool{}
	for g := 0; g < workers; g++ {
		for id := range assigned[g] {
			if seen[id] {
				t.Fatalf("worker %d assigned to two tasks (capacity 1)", id)
			}
			seen[id] = true
			total++
		}
	}
	if got := core.Len(); got != workers*perG-total {
		t.Fatalf("pool %d after %d assignments of %d, want %d",
			got, total, workers*perG, workers*perG-total)
	}
}
