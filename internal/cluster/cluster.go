package cluster

import (
	"errors"
	"fmt"
	"net/http"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
	"github.com/pombm/pombm/internal/rng"
)

// Config describes a coordinator deployment: the published infrastructure
// (identical knobs to platform.NewServer) plus the backend set the engine
// is sharded across.
type Config struct {
	// Region, Cols, Rows, Epsilon, Seed are the published infrastructure,
	// exactly as a single pombm-server would build it: same grid, same
	// derived HST, same privacy budget.
	Region  geo.Rect
	Cols    int
	Rows    int
	Epsilon float64
	Seed    uint64

	// Nodes are the backends the engine shards across. Required.
	Nodes []NodeConn

	// Shards is the per-node shard-count request (0 = engine default).
	// Every node is initialised with the same value — shard indices are
	// global across the cluster.
	Shards int

	// Policy is the assignment policy spec by name (see
	// engine.PolicyNames); "" is greedy.
	Policy string

	// DefaultCapacity is the per-worker capacity a registration without an
	// explicit capacity gets (0 = 1).
	DefaultCapacity int

	// Lifetime, when positive, enforces the per-worker lifetime ε budget
	// (see platform.WithLifetimeBudget).
	Lifetime float64

	// Tree, when non-nil, is published instead of deriving one from the
	// grid and seed (the simulator injects its own).
	Tree *hst.Tree

	// NoCoalesce disables the coordinator's op coalescer: every routed
	// operation ships on its own single-op endpoint, exactly the pre-ops
	// wire behaviour. The answers are identical either way — this is a
	// diagnostic/differential knob, not a semantic one.
	NoCoalesce bool
}

// Coordinator is the cluster's serving tier: one platform.Server (the
// full single-node serving stack — slot tables, privacy-budget
// accounting, rotation planning) running over a fanned-out core instead
// of a local engine. Agents talk to it exactly as they would a single
// pombm-server; every answer is bit-identical to the single-node
// deployment on the same operation sequence.
type Coordinator struct {
	srv  *platform.Server
	core *fanCore
}

// New builds the coordinator: derives (or adopts) the published tree,
// initialises every backend with the shared engine configuration, and
// mounts the serving stack over the fanned-out core.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no backend nodes configured")
	}
	tree := cfg.Tree
	if tree == nil {
		grid, err := geo.NewGrid(cfg.Region, cfg.Cols, cfg.Rows)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		// Same derivation as platform.NewServer: identical region, grid and
		// seed publish an identical tree whatever the deployment shape.
		tree, err = hst.Build(grid.Points(), rng.New(cfg.Seed).Derive("server-hst"))
		if err != nil {
			return nil, err
		}
	}
	pol, err := engine.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	core, err := newFanCore(cfg.Nodes, tree, cfg.Shards, pol, cfg.Policy, cfg.DefaultCapacity, cfg.NoCoalesce)
	if err != nil {
		return nil, err
	}
	opts := []platform.ServerOption{platform.WithCore(core)}
	if cfg.Lifetime > 0 {
		opts = append(opts, platform.WithLifetimeBudget(cfg.Lifetime))
	}
	srv, err := platform.NewServer(cfg.Region, cfg.Cols, cfg.Rows, cfg.Epsilon, cfg.Seed, opts...)
	if err != nil {
		return nil, err
	}
	return &Coordinator{srv: srv, core: core}, nil
}

// Server returns the serving stack; everything a single-node deployment
// does with a *platform.Server works unchanged against it.
func (c *Coordinator) Server() *platform.Server { return c.srv }

// Handler returns the coordinator's agent-facing HTTP API — the same /v1
// surface a pombm-server exposes.
func (c *Coordinator) Handler() http.Handler { return platform.Handler(c.srv) }

// Client is an HTTP client against a coordinator. The coordinator speaks
// the same agent protocol as a single pombm-server, so Client is the
// platform client under a deployment-shape-honest name; it satisfies
// platform.API alongside platform.Client.
type Client struct {
	*platform.Client
}

// Dial fetches the coordinator's publication and returns a client.
func Dial(baseURL string) (*Client, error) {
	pc, err := platform.NewClient(baseURL)
	if err != nil {
		return nil, err
	}
	return &Client{Client: pc}, nil
}

var _ platform.API = (*Client)(nil)
