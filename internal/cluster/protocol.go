// Package cluster shards the assignment engine across pombm-server
// backends behind one coordinator, without changing a single answer.
//
// The decomposition leans on the engine's own sharding invariant: every
// worker sharing a task's top HST branch lives in one shard, and a shard —
// together, under sub-sharding, with its whole sibling group — can be
// pinned to one node. The coordinator routes every code-addressed
// operation (Register, Reregister, Release, Withdraw, Submit) to the node
// owning the code's shard group; only the greedy rule's root tier (a
// min-of-mins) and the batch-optimal window solve (a scatter-gather
// matching over per-node candidate mines) need more than one node, and
// both recompose the single-process decision exactly. Epoch rotation is a
// distributed two-phase commit: every node stages the new epoch's
// partition (engine.PrepareSwap), and only when all prepares succeed does
// the coordinator commit each — any failure aborts cluster-wide and the
// old epoch keeps serving everywhere.
//
// The node side speaks the /v2 wire protocol below: versioned endpoints,
// explicit node epochs on every operation, idempotency keys on every
// mutating call (a coordinator retry after a lost response replays the
// recorded answer instead of double-applying), and the structured
// platform.Error taxonomy instead of ad-hoc status strings.
package cluster

import (
	"encoding/json"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
)

// /v2 node endpoint paths. They live beside the /v1 agent API on a
// pombm-server: /v1 is what workers and tasks talk to a single-node
// deployment; /v2/node is what a coordinator drives a backend with.
const (
	PathNodeInit          = "/v2/node/init"
	PathNodeStatus        = "/v2/node/status"
	PathNodeInsert        = "/v2/node/insert"
	PathNodeAddCapacity   = "/v2/node/add-capacity"
	PathNodeRemove        = "/v2/node/remove"
	PathNodeAssignSubtree = "/v2/node/assign-subtree"
	PathNodeMinID         = "/v2/node/min-id"
	PathNodePopMin        = "/v2/node/pop-min"
	PathNodeMine          = "/v2/node/mine"
	PathNodeConsume       = "/v2/node/consume"
	PathNodePrepare       = "/v2/node/rotate/prepare"
	PathNodeCommit        = "/v2/node/rotate/commit"
	PathNodeAbort         = "/v2/node/rotate/abort"
	PathNodeOps           = "/v2/node/ops"
)

// Op kinds carried by the /v2/node/ops envelope. Each is one of the
// single-worker routed operations; anything whose answer spans nodes
// (min-id, mine, the rotation verbs) stays on its own endpoint.
const (
	OpInsert        = "insert"
	OpAddCapacity   = "add-capacity"
	OpRemove        = "remove"
	OpAssignSubtree = "assign-subtree"
	OpConsume       = "consume"
)

// OpRequest is one sub-operation of an ops envelope: the union of the
// single-op request shapes, discriminated by Kind, with its own
// idempotency key. Replay semantics are per-op and shared with the
// single-op endpoints — the node caches each sub-result under its own key,
// so a duplicated envelope (or the same op re-sent individually) replays
// byte-for-byte.
type OpRequest struct {
	Kind     string `json:"kind"`
	Idem     string `json:"idem,omitempty"`
	Code     []byte `json:"code,omitempty"`
	ID       int    `json:"id,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
	Epoch    int64  `json:"epoch,omitempty"`
}

// OpsRequest carries N independent single-worker operations in one round
// trip — the coordinator's coalescer batches concurrent ops routed to the
// same node into one envelope. The envelope itself has no idempotency key:
// the sub-ops are the replay unit, and a retried envelope regroups however
// the retry timing falls.
type OpsRequest struct {
	Ops []OpRequest `json:"ops"`
}

// OpsResponse answers an envelope with one raw sub-response per op, in
// order. Results stay raw JSON end to end so a replayed sub-op is
// byte-identical to its first answer regardless of which envelope (or
// single-op request) carries it.
type OpsResponse struct {
	OK      bool              `json:"ok"`
	Err     *platform.Error   `json:"error,omitempty"`
	Results []json.RawMessage `json:"results"`
}

// InitRequest (re)builds a node's engine: the shared tree, the shared
// shard count, and the shared policy spec and default capacity. Every node
// of a cluster is initialised identically — same layout, same capacity
// clamping — which is what makes shard indices global and routing exact.
type InitRequest struct {
	Tree            *hst.Tree `json:"tree"`
	Shards          int       `json:"shards,omitempty"`
	Policy          string    `json:"policy,omitempty"`
	DefaultCapacity int       `json:"default_capacity,omitempty"`
	Idem            string    `json:"idem,omitempty"`
}

// nodeAck is the plain OK/error envelope shared by mutating endpoints.
type nodeAck struct {
	OK  bool            `json:"ok"`
	Err *platform.Error `json:"error,omitempty"`
}

// StatusRequest polls a node; a non-zero Epoch pins the read.
type StatusRequest struct {
	Epoch int64 `json:"epoch,omitempty"`
}

// StatusResponse reports a node's serving epoch and pool.
type StatusResponse struct {
	OK    bool            `json:"ok"`
	Err   *platform.Error `json:"error,omitempty"`
	Epoch int64           `json:"epoch"`
	Len   int             `json:"len"`
	Units int             `json:"units"`
}

// InsertRequest lands a worker on its routed node. Capacity ≤ 0 selects
// the node engine's default (all nodes share it).
type InsertRequest struct {
	Code     []byte `json:"code"`
	ID       int    `json:"id"`
	Capacity int    `json:"capacity,omitempty"`
	Epoch    int64  `json:"epoch,omitempty"`
	Idem     string `json:"idem,omitempty"`
}

// AddCapacityRequest returns one unit to a worker on its routed node.
type AddCapacityRequest struct {
	Code  []byte `json:"code"`
	ID    int    `json:"id"`
	Epoch int64  `json:"epoch,omitempty"`
	Idem  string `json:"idem,omitempty"`
}

// RemoveRequest withdraws a worker's pooled units from its routed node.
type RemoveRequest struct {
	Code []byte `json:"code"`
	ID   int    `json:"id"`
	Idem string `json:"idem,omitempty"`
}

// RemoveResponse reports how many units were pooled (Found false when the
// worker was not available).
type RemoveResponse struct {
	OK    bool            `json:"ok"`
	Err   *platform.Error `json:"error,omitempty"`
	Units int             `json:"units,omitempty"`
	Found bool            `json:"found"`
}

// AssignSubtreeRequest runs the greedy rule's node-local tiers for a task.
type AssignSubtreeRequest struct {
	Code  []byte `json:"code"`
	Epoch int64  `json:"epoch,omitempty"`
	Idem  string `json:"idem,omitempty"`
}

// AssignResponse carries a pop outcome: Found false means no worker on
// this node can serve the tier(s) asked of it.
type AssignResponse struct {
	OK    bool            `json:"ok"`
	Err   *platform.Error `json:"error,omitempty"`
	ID    int             `json:"id,omitempty"`
	Level int             `json:"level,omitempty"`
	Found bool            `json:"found"`
}

// MinIDRequest asks for the node's smallest available worker id.
type MinIDRequest struct {
	Epoch int64 `json:"epoch,omitempty"`
}

// MinIDResponse answers the root-tier min-of-mins poll.
type MinIDResponse struct {
	OK    bool            `json:"ok"`
	Err   *platform.Error `json:"error,omitempty"`
	ID    int             `json:"id,omitempty"`
	Found bool            `json:"found"`
}

// PopMinRequest pops the node's smallest available worker id (the root
// tier commit, after MinID elected this node).
type PopMinRequest struct {
	Epoch int64  `json:"epoch,omitempty"`
	Idem  string `json:"idem,omitempty"`
}

// WireCandidate is hst.Candidate on the wire (codes as raw digit bytes).
type WireCandidate struct {
	ID    int    `json:"id"`
	Code  []byte `json:"code"`
	Level int    `json:"level"`
	Cap   int    `json:"cap"`
}

// MineRequest scatters a batch window's mining to one node: the window
// tasks routed here plus the per-shard pad lists every node contributes.
type MineRequest struct {
	Codes [][]byte `json:"codes"`
	K     int      `json:"k"`
	Epoch int64    `json:"epoch,omitempty"`
}

// MineResponse is the node's engine.WindowMine on the wire.
type MineResponse struct {
	OK    bool              `json:"ok"`
	Err   *platform.Error   `json:"error,omitempty"`
	Epoch int64             `json:"epoch"`
	Pool  int               `json:"pool"`
	Own   [][]WireCandidate `json:"own,omitempty"`
	Pads  [][]WireCandidate `json:"pads,omitempty"`
}

// ConsumeRequest commits one matched unit of a window on the node that
// mined the candidate.
type ConsumeRequest struct {
	Code  []byte `json:"code"`
	ID    int    `json:"id"`
	Epoch int64  `json:"epoch,omitempty"`
	Idem  string `json:"idem,omitempty"`
}

// WireInsert is engine.EpochInsert on the wire.
type WireInsert struct {
	Code []byte `json:"code"`
	ID   int    `json:"id"`
	Cap  int    `json:"cap,omitempty"`
}

// PrepareRequest stages this node's partition of the next epoch: phase one
// of the distributed rotation. The node builds and validates the staged
// state off to the side while the old epoch keeps serving.
//
// Field order is part of the wire contract: the node decodes prepare
// bodies incrementally, so Idem must come first (replay check before any
// work) and Inserts must stay last (the scalar fields and the tree land
// before the population streams).
type PrepareRequest struct {
	Idem    string       `json:"idem,omitempty"`
	Epoch   int64        `json:"epoch"`
	Shards  int          `json:"shards,omitempty"`
	Tree    *hst.Tree    `json:"tree"`
	Inserts []WireInsert `json:"inserts"`
}

// CommitRequest publishes the staged epoch: phase two. A commit for an
// epoch the node already serves acks idempotently (the earlier commit's
// response was lost, not its effect).
type CommitRequest struct {
	Epoch int64  `json:"epoch"`
	Idem  string `json:"idem,omitempty"`
}

// AbortRequest drops a staged epoch after a sibling node's prepare failed.
type AbortRequest struct {
	Epoch int64  `json:"epoch"`
	Idem  string `json:"idem,omitempty"`
}

func toWireCands(in [][]hst.Candidate) [][]WireCandidate {
	if in == nil {
		return nil
	}
	out := make([][]WireCandidate, len(in))
	for i, cs := range in {
		if cs == nil {
			continue
		}
		ws := make([]WireCandidate, len(cs))
		for j, c := range cs {
			ws[j] = WireCandidate{ID: c.ID, Code: []byte(c.Code), Level: c.Level, Cap: c.Cap}
		}
		out[i] = ws
	}
	return out
}

func fromWireCands(in [][]WireCandidate) [][]hst.Candidate {
	if in == nil {
		return nil
	}
	out := make([][]hst.Candidate, len(in))
	for i, ws := range in {
		if ws == nil {
			continue
		}
		cs := make([]hst.Candidate, len(ws))
		for j, w := range ws {
			cs[j] = hst.Candidate{ID: w.ID, Code: hst.Code(w.Code), Level: w.Level, Cap: w.Cap}
		}
		out[i] = cs
	}
	return out
}
