package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/platform"
)

// slowPaths wraps a node handler, delaying the listed paths — a backend
// that is up but too slow, the failure mode a flat client timeout
// mishandles.
func slowPaths(h http.Handler, delay time.Duration, paths ...string) http.Handler {
	slow := map[string]bool{}
	for _, p := range paths {
		slow[p] = true
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow[r.URL.Path] {
			time.Sleep(delay)
		}
		h.ServeHTTP(w, r)
	})
}

// TestOpDeadlineTypedError pins the deadline contract: an operation that
// outlives its per-op deadline comes back as a typed retryable
// unavailable error — not a transport failure (which would trigger a
// blind retry and double the stall), not a raw context error.
func TestOpDeadlineTypedError(t *testing.T) {
	ts := httptest.NewServer(slowPaths(NodeHandler(NewNode()), 300*time.Millisecond, PathNodeStatus))
	defer ts.Close()
	conn := DialNodeTimeouts(ts.URL, NodeTimeouts{Op: 20 * time.Millisecond})

	_, err := conn.Status(0)
	if err == nil {
		t.Fatal("status outlived its deadline without error")
	}
	var pe *platform.Error
	if !errors.As(err, &pe) {
		t.Fatalf("deadline error is untyped: %v", err)
	}
	if pe.Code != platform.CodeUnavailable || !pe.Retryable {
		t.Fatalf("deadline error = %+v, want retryable %s", pe, platform.CodeUnavailable)
	}
	if isTransport(err) {
		t.Fatalf("deadline expiry classified as transport failure: %v", err)
	}
	// A fast call on the same connection still works: the deadline is
	// per-request, not a poisoned client.
	if err := conn.Init(InitRequest{Tree: buildTree(t, 7)}); err != nil {
		t.Fatalf("fast init after a timed-out status: %v", err)
	}
}

// TestPrepareDeadlineIndependent pins the two deadline classes apart: a
// rotation prepare slower than the op deadline but within the prepare
// deadline succeeds, while the same slowness on a routed op times out.
// Under the old flat client timeout these were inseparable — large
// rotations timed out forever or every op waited minutes.
func TestPrepareDeadlineIndependent(t *testing.T) {
	tree := buildTree(t, 7)
	next := buildTree(t, 8)
	node := NewNode()
	ts := httptest.NewServer(slowPaths(NodeHandler(node), 150*time.Millisecond, PathNodePrepare, PathNodeInsert))
	defer ts.Close()
	conn := DialNodeTimeouts(ts.URL, NodeTimeouts{Op: 50 * time.Millisecond, Prepare: 5 * time.Second})

	if err := conn.Init(InitRequest{Tree: tree}); err != nil {
		t.Fatal(err)
	}
	// The slow routed op breaches its 50ms budget.
	err := conn.Insert(tree.CodeOf(0), 1, 1, 0, "idem-ins")
	var pe *platform.Error
	if !errors.As(err, &pe) || pe.Code != platform.CodeUnavailable {
		t.Fatalf("slow insert error = %v, want typed unavailable", err)
	}
	// The equally slow prepare fits comfortably in the prepare budget.
	inserts := []engine.EpochInsert{{Code: next.CodeOf(0), ID: 3, Cap: 1}}
	if err := conn.Prepare(2, next, 0, inserts, "idem-prep"); err != nil {
		t.Fatalf("prepare under its own deadline: %v", err)
	}
	if err := conn.Commit(2, "idem-commit"); err != nil {
		t.Fatal(err)
	}
	st, err := conn.Status(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 || st.Len != 1 {
		t.Fatalf("post-commit status %+v, want epoch 2 with 1 worker", st)
	}
}
