package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/flow"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/platform"
)

// fanCore is the coordinator's platform.Core: the same engine surface the
// serving layer drives single-node, fanned out across NodeConn backends.
// Put behind platform.WithCore, the whole serving stack — slot tables,
// budget accounting, rotation planning — runs verbatim above it, which is
// what pins the cluster bit-identical to the single-node deployment.
//
// Concurrency: routed single-worker operations (insert, remove, assign's
// node-local tiers) run under a shared read lock — they are independent
// exactly when their codes route to different nodes, mirroring the
// engine's shard independence. Anything whose answer spans nodes — the
// greedy root tier's min-of-mins, a batch-optimal window, the two-phase
// epoch swap — takes the lock exclusively, making it atomic with respect
// to every other coordinator-driven mutation. Every node mutation flows
// through this core, so exclusivity here is global mutual exclusion.
type fanCore struct {
	nodes      []NodeConn
	policy     engine.Policy
	policySpec string
	defaultCap int
	shardsCfg  int // requested shard count, passed to every node

	// batchers[i] coalesces concurrent routed ops bound for nodes[i] into
	// /v2/node/ops envelopes; nil when the conn cannot carry envelopes
	// (in-process) or coalescing is disabled.
	batchers []*batcher

	state atomic.Pointer[coreState]
	opMu  sync.RWMutex

	windows atomic.Int64
	idemSeq atomic.Int64

	// Batch-window scratch, all touched only under opMu held exclusively:
	// the solver and the warm worker potentials it carries from window to
	// window (cleared when the epoch moves, like the single-process
	// policy's state-pinned warm map).
	solver    *flow.Bipartite
	warm      map[int]float64
	warmEpoch int64
}

// coreState is the epoch-scoped identity of the cluster: published tree,
// shard layout (shared by every node), and epoch id. Swapped with one
// pointer store at rotation commit.
type coreState struct {
	tree   *hst.Tree
	layout engine.Layout
	epoch  int64
}

// errNodeDown is wrapped into transport failures by httpNode (and the
// retry helpers below) so the core can tell a dead backend from an
// application refusal.
var errTransport = errors.New("cluster: node transport failed")

// newFanCore builds the core and initialises every node with the shared
// configuration. Unless noCoalesce is set, every connection that can carry
// op envelopes gets a coalescing batcher.
func newFanCore(nodes []NodeConn, tree *hst.Tree, shards int, policy engine.Policy, policySpec string, defaultCap int, noCoalesce bool) (*fanCore, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if defaultCap == 0 {
		defaultCap = 1
	}
	c := &fanCore{
		nodes:      nodes,
		policy:     policy,
		policySpec: policySpec,
		defaultCap: defaultCap,
		shardsCfg:  shards,
		batchers:   make([]*batcher, len(nodes)),
		solver:     flow.NewBipartite(),
		warm:       map[int]float64{},
		warmEpoch:  engine.FirstEpoch,
	}
	if !noCoalesce {
		for i, n := range nodes {
			if oc, ok := n.(opsConn); ok {
				c.batchers[i] = &batcher{conn: oc}
			}
		}
	}
	c.state.Store(&coreState{tree: tree, layout: engine.LayoutFor(tree, shards), epoch: engine.FirstEpoch})
	for i, n := range nodes {
		if err := n.Init(InitRequest{
			Tree: tree, Shards: shards, Policy: policySpec, DefaultCapacity: defaultCap,
			Idem: c.nextIdem("init-" + strconv.Itoa(i)),
		}); err != nil {
			return nil, fmt.Errorf("cluster: init node %d: %w", i, err)
		}
	}
	return c, nil
}

func (c *fanCore) nextIdem(op string) string {
	return "op-" + op + "-" + strconv.FormatInt(c.idemSeq.Add(1), 10)
}

// routeIdx returns the node owning a code's shard group.
func (c *fanCore) routeIdx(st *coreState, code hst.Code) int {
	return st.layout.GroupOf(code) % len(c.nodes)
}

// ownerIdx returns the node owning a shard index.
func (c *fanCore) ownerIdx(st *coreState, shard int) int {
	return st.layout.GroupOfShard(shard) % len(c.nodes)
}

func isStale(err error) bool {
	return errors.Is(err, engine.ErrStaleEpoch)
}

func isTransport(err error) bool {
	return errors.Is(err, errTransport)
}

// unavailable wraps a twice-failed backend call into the typed taxonomy.
func unavailable(nd int, err error) error {
	return &platform.Error{
		Code:      platform.CodeUnavailable,
		Message:   fmt.Sprintf("cluster: node %d unavailable: %v", nd, err),
		Retryable: true,
	}
}

// Identity and configuration (platform.Core).

func (c *fanCore) Tree() *hst.Tree       { return c.state.Load().tree }
func (c *fanCore) Epoch() int64          { return c.state.Load().epoch }
func (c *fanCore) Shards() int           { return c.state.Load().layout.Shards }
func (c *fanCore) Policy() engine.Policy { return c.policy }
func (c *fanCore) DefaultCapacity() int  { return c.defaultCap }
func (c *fanCore) Windows() int64        { return c.windows.Load() }

// statusAll polls every node concurrently — a status sweep is N
// independent reads, so its latency should be the slowest node's, not the
// sum. Unreachable nodes yield a zero StatusResponse with ok false.
func (c *fanCore) statusAll(epoch int64) []StatusResponse {
	out := make([]StatusResponse, len(c.nodes))
	var wg sync.WaitGroup
	for i, nd := range c.nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s, err := nd.Status(epoch); err == nil {
				out[i] = s
			}
		}()
	}
	wg.Wait()
	return out
}

// Len sums the available workers across reachable nodes.
func (c *fanCore) Len() int {
	c.opMu.RLock()
	defer c.opMu.RUnlock()
	n := 0
	for _, s := range c.statusAll(0) {
		n += s.Len
	}
	return n
}

// CapacityUnits sums remaining units across reachable nodes.
func (c *fanCore) CapacityUnits() int {
	c.opMu.RLock()
	defer c.opMu.RUnlock()
	n := 0
	for _, s := range c.statusAll(0) {
		n += s.Units
	}
	return n
}

// Routed mutations (platform.Core). Each routes by the code's shard group
// and retries a transport failure once with the same idempotency key — a
// lost response must not double-apply — before reporting the backend
// unavailable.

func (c *fanCore) InsertEpoch(code hst.Code, id int, epoch int64) error {
	return c.InsertCapEpoch(code, id, 0, epoch)
}

func (c *fanCore) InsertCapEpoch(code hst.Code, id, capacity int, epoch int64) error {
	c.opMu.RLock()
	defer c.opMu.RUnlock()
	st := c.state.Load()
	if err := st.tree.CheckCode(code); err != nil {
		return err
	}
	nd := c.routeIdx(st, code)
	idem := c.nextIdem("ins")
	err := c.opInsert(nd, code, id, capacity, epoch, idem)
	if isTransport(err) {
		err = c.opInsert(nd, code, id, capacity, epoch, idem)
		if isTransport(err) {
			return unavailable(nd, err)
		}
	}
	return err
}

func (c *fanCore) AddCapacityEpoch(code hst.Code, id int, epoch int64) error {
	c.opMu.RLock()
	defer c.opMu.RUnlock()
	st := c.state.Load()
	if err := st.tree.CheckCode(code); err != nil {
		return err
	}
	nd := c.routeIdx(st, code)
	idem := c.nextIdem("addcap")
	err := c.opAddCapacity(nd, code, id, epoch, idem)
	if isTransport(err) {
		err = c.opAddCapacity(nd, code, id, epoch, idem)
		if isTransport(err) {
			return unavailable(nd, err)
		}
	}
	return err
}

func (c *fanCore) Remove(code hst.Code, id int) bool {
	_, ok := c.RemoveUnits(code, id)
	return ok
}

func (c *fanCore) RemoveUnits(code hst.Code, id int) (int, bool) {
	c.opMu.RLock()
	defer c.opMu.RUnlock()
	st := c.state.Load()
	if st.tree.CheckCode(code) != nil {
		return 0, false
	}
	nd := c.routeIdx(st, code)
	idem := c.nextIdem("rm")
	units, found, err := c.opRemove(nd, code, id, idem)
	if isTransport(err) {
		units, found, err = c.opRemove(nd, code, id, idem)
	}
	if err != nil {
		return 0, false
	}
	return units, found
}

// Assign runs the greedy rule across the cluster (platform.Core).
func (c *fanCore) Assign(code hst.Code) (int, int, bool) {
	id, lvl, ok, _ := c.AssignErr(code)
	return id, lvl, ok
}

// AssignErr is Assign surfacing backend failures, the assignErrer
// extension platform.Server's Submit uses for typed refusals.
//
// Tier structure: the routed node resolves everything below the root tier
// atomically (own-shard fast path, locked re-check, sibling sub-shards).
// Only when no worker shares the task's top branch there does the root
// tier run — a min-of-mins across every node, taken under the exclusive
// lock so the elect-then-pop pair cannot be split by another assignment.
func (c *fanCore) AssignErr(code hst.Code) (int, int, bool, error) {
	c.opMu.RLock()
	st := c.state.Load()
	id, lvl, ok, err := c.assignRouted(st, code)
	c.opMu.RUnlock()
	if err != nil || ok {
		return id, lvl, ok, err
	}
	if st.tree.CheckCode(code) != nil {
		return engine.None, 0, false, nil
	}

	c.opMu.Lock()
	defer c.opMu.Unlock()
	st = c.state.Load()
	// Re-run the routed tiers under exclusivity: a worker may have landed
	// on the task's branch between the read-locked miss and here.
	id, lvl, ok, err = c.assignRouted(st, code)
	if err != nil || ok {
		return id, lvl, ok, err
	}
	return c.assignRoot(st)
}

// assignRouted runs the node-local tiers at the routed node, retrying one
// transport failure with the same idempotency key.
func (c *fanCore) assignRouted(st *coreState, code hst.Code) (int, int, bool, error) {
	if st.tree.CheckCode(code) != nil {
		return engine.None, 0, false, nil
	}
	nd := c.routeIdx(st, code)
	idem := c.nextIdem("as")
	id, lvl, found, err := c.opAssignSubtree(nd, code, st.epoch, idem)
	if isTransport(err) {
		id, lvl, found, err = c.opAssignSubtree(nd, code, st.epoch, idem)
		if isTransport(err) {
			return engine.None, 0, false, unavailable(nd, err)
		}
	}
	return id, lvl, found, err
}

// assignRoot resolves the greedy root tier: every remaining worker is
// equidistant from the task, so only the global minimum id matters —
// min-of-mins across nodes, then a pop at the elected node. Caller holds
// opMu exclusively, so no coordinator-driven mutation can slip between
// the election and the pop.
func (c *fanCore) assignRoot(st *coreState) (int, int, bool, error) {
	// Poll all nodes concurrently: the election needs every answer anyway,
	// so the round's latency is the slowest node's, not the sum.
	type minPoll struct {
		id    int
		found bool
		err   error
	}
	polls := make([]minPoll, len(c.nodes))
	var wg sync.WaitGroup
	for nd := range c.nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, found, err := c.nodes[nd].MinID(st.epoch)
			if isTransport(err) {
				id, found, err = c.nodes[nd].MinID(st.epoch)
			}
			polls[nd] = minPoll{id: id, found: found, err: err}
		}()
	}
	wg.Wait()
	best, bestID := -1, int(^uint(0)>>1)
	for nd, p := range polls {
		if isTransport(p.err) {
			// A dead node may hold the true minimum; electing around it
			// would silently change the answer.
			return engine.None, 0, false, unavailable(nd, p.err)
		}
		if p.err != nil {
			return engine.None, 0, false, p.err
		}
		if p.found && p.id < bestID {
			best, bestID = nd, p.id
		}
	}
	if best < 0 {
		return engine.None, 0, false, nil
	}
	idem := c.nextIdem("popmin")
	id, lvl, found, err := c.nodes[best].PopMin(st.epoch, idem)
	if isTransport(err) {
		id, lvl, found, err = c.nodes[best].PopMin(st.epoch, idem)
		if isTransport(err) {
			return engine.None, 0, false, unavailable(best, err)
		}
	}
	return id, lvl, found, err
}

// AssignBatch serves a batch (platform.Core): sequential greedy for
// non-window policies (the engine's batch path is defined as bit-identical
// to one-by-one submission), scatter-gather window solves for
// batch-optimal.
func (c *fanCore) AssignBatch(codes []hst.Code) ([]int, []int) {
	ids := make([]int, len(codes))
	lvls := make([]int, len(codes))
	for i := range ids {
		ids[i] = engine.None
	}
	tk, windowed := c.policy.(engine.TopKer)
	if !windowed {
		for i, code := range codes {
			id, lvl, ok, _ := c.AssignErr(code)
			if ok {
				ids[i], lvls[i] = id, lvl
			}
		}
		return ids, lvls
	}
	// Chunk exactly as the single-process policy does; an empty batch is
	// still one (empty) window — the counter must agree with the engine's.
	if len(codes) == 0 {
		c.solveWindow(codes, ids, lvls, tk.TopK())
		return ids, lvls
	}
	for start := 0; start < len(codes); start += engine.BatchWindowSize {
		end := min(start+engine.BatchWindowSize, len(codes))
		c.solveWindow(codes[start:end], ids[start:end], lvls[start:end], tk.TopK())
	}
	return ids, lvls
}

// clusterCand is one merged window candidate: what the single-process
// policy holds as an arena ref, code-addressed for the cross-node commit.
type clusterCand struct {
	id    int
	code  hst.Code
	level int
	cap   int
}

// solveWindow replicates the single-process batch-optimal window over the
// cluster: scatter the mining, merge own-shard regions and cross-shard
// pads by the exact single-process merge rule, solve one restricted
// matching, commit the matched units at their owning nodes. It holds opMu
// exclusively, which is what the single-process all-shard-locks hold is to
// one engine: the window is atomic against every other mutation.
func (c *fanCore) solveWindow(codes []hst.Code, ids, lvls []int, k int) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	defer c.windows.Add(1)
	st := c.state.Load()

	for i := range codes {
		ids[i], lvls[i] = engine.None, 0
	}
	valid := make([]int, 0, len(codes))
	for i, code := range codes {
		if st.tree.CheckCode(code) == nil {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return
	}

	for attempt := 0; attempt < 3; attempt++ {
		if done := c.solveWindowOnce(st, codes, valid, ids, lvls, k); done {
			return
		}
		// A commit conflict undid the window; re-mine against the live
		// pool. Unreachable when every mutation flows through this core
		// (exclusivity makes the mine-to-commit span atomic), defensive
		// against an externally mutated backend.
	}
}

// solveWindowOnce runs one mine→solve→commit pass; false means a commit
// conflict rolled the pass back and the window should re-mine.
func (c *fanCore) solveWindowOnce(st *coreState, codes []hst.Code, valid []int, ids, lvls []int, k int) bool {
	N := len(c.nodes)
	S := st.layout.Shards

	// Scatter: each node mines the window tasks routed to it, and every
	// node contributes its per-shard pad lists (its pool may serve tasks
	// routed elsewhere).
	nodeCodes := make([][]hst.Code, N)
	nodeTis := make([][]int, N)
	for ti, i := range valid {
		nd := c.routeIdx(st, codes[i])
		nodeCodes[nd] = append(nodeCodes[nd], codes[i])
		nodeTis[nd] = append(nodeTis[nd], ti)
	}
	mines := make([]*engine.WindowMine, N)
	mineErrs := make([]error, N)
	var wg sync.WaitGroup
	for nd := 0; nd < N; nd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wm, err := c.nodes[nd].Mine(nodeCodes[nd], k, st.epoch)
			if isTransport(err) {
				wm, err = c.nodes[nd].Mine(nodeCodes[nd], k, st.epoch)
			}
			mines[nd], mineErrs[nd] = wm, err
		}()
	}
	wg.Wait()
	pool := 0
	for nd := 0; nd < N; nd++ {
		if mineErrs[nd] != nil {
			// A window cannot be solved around a missing node: its pool
			// (and its tasks' own regions) would silently vanish from the
			// matching. Answer the whole window unmatched instead.
			return true
		}
		pool += mines[nd].Pool
	}
	if pool == 0 {
		return true
	}

	// Merge: per-task own-shard regions from the routed node, global
	// per-shard pad lists from each shard's owner.
	regions := make([][]hst.Candidate, len(valid))
	for nd := 0; nd < N; nd++ {
		for j, ti := range nodeTis[nd] {
			if j < len(mines[nd].Own) {
				regions[ti] = mines[nd].Own[j]
			}
		}
	}
	pads := make([][]hst.Candidate, S)
	for s := 0; s < S; s++ {
		nd := c.ownerIdx(st, s)
		if mines[nd] != nil && s < len(mines[nd].Pads) {
			pads[s] = mines[nd].Pads[s]
		}
	}

	// Pad tasks whose own shard ran short, by the single-process merge
	// rule: rank foreign shards by (pad level, head id) — sibling
	// sub-shards of the task's top branch sit one level closer — and
	// restamp the level on append.
	depth, degree, sub := st.layout.Depth, st.layout.Degree, st.layout.Sub
	if S > 1 {
		padHeads := make([]int, S)
		for ti, i := range valid {
			need := k - len(regions[ti])
			if need <= 0 {
				continue
			}
			code := codes[i]
			own := st.layout.ShardIdx(code)
			q0 := -1
			if sub > 1 {
				q0 = int(code[0])
			}
			padLvl := func(s int) int {
				if q0 >= 0 && s%degree == q0 {
					return depth - 1
				}
				return depth
			}
			for s := range padHeads {
				padHeads[s] = 0
			}
			region := regions[ti]
			for ; need > 0; need-- {
				best := -1
				for s := 0; s < S; s++ {
					if s == own || padHeads[s] >= len(pads[s]) {
						continue
					}
					if best < 0 {
						best = s
						continue
					}
					ls, lb := padLvl(s), padLvl(best)
					if ls < lb || (ls == lb && pads[s][padHeads[s]].ID < pads[best][padHeads[best]].ID) {
						best = s
					}
				}
				if best < 0 {
					break
				}
				cc := pads[best][padHeads[best]]
				cc.Level = padLvl(best)
				region = append(region, cc)
				padHeads[best]++
			}
			regions[ti] = region
		}
	}

	// Build and solve: deduplicate candidates into solver columns in
	// task-major first-seen order (worker ids are unique pool-wide, so id
	// dedup is the single-process (shard, arena-node, id) dedup), seed the
	// warm potentials, arcs in mined order.
	dedup := make(map[int]int)
	var workers []clusterCand
	var arcLvl []int
	for ti := range valid {
		for _, cand := range regions[ti] {
			if _, seen := dedup[cand.ID]; !seen {
				dedup[cand.ID] = len(workers)
				workers = append(workers, clusterCand{id: cand.ID, code: cand.Code, level: cand.Level, cap: cand.Cap})
			}
		}
	}
	sol := c.solver
	sol.Reset(len(valid), len(workers))
	if c.warmEpoch != st.epoch {
		clear(c.warm)
		c.warmEpoch = st.epoch
	}
	for w, cw := range workers {
		sol.SetWorker(w, cw.cap, c.warm[cw.id])
	}
	for ti := range valid {
		for _, cand := range regions[ti] {
			if err := sol.AddArc(ti, dedup[cand.ID], hst.LevelDist(cand.Level)); err != nil {
				panic(fmt.Sprintf("cluster: window arc build: %v", err))
			}
			arcLvl = append(arcLvl, cand.Level)
		}
	}
	sol.Run()

	// Commit matched units at their owning nodes. The commits of one
	// window are independent decrements (each targets the matched worker at
	// its mined leaf), so they run concurrently — the coalescer folds the
	// ones sharing a node into /v2/node/ops envelopes, collapsing a
	// window's commit phase to one round trip per involved node. Any
	// conflict (worker no longer at its mined leaf) rolls back every
	// commit that landed and re-mines.
	type commitRec struct {
		code hst.Code
		id   int
		nd   int
		ti   int // index into valid
		arc  int
		err  error
	}
	var commits []commitRec
	for ti := range valid {
		a := sol.MatchedArc(ti)
		if a < 0 {
			continue
		}
		cw := workers[sol.MatchedWorker(ti)]
		commits = append(commits, commitRec{
			code: cw.code, id: cw.id,
			nd: c.ownerIdx(st, st.layout.ShardIdx(cw.code)),
			ti: ti, arc: a,
		})
	}
	var cwg sync.WaitGroup
	for j := range commits {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			u := &commits[j]
			idem := c.nextIdem("consume")
			err := c.opConsume(u.nd, u.code, u.id, st.epoch, idem)
			if isTransport(err) {
				err = c.opConsume(u.nd, u.code, u.id, st.epoch, idem)
			}
			u.err = err
		}()
	}
	cwg.Wait()
	failed := false
	for j := range commits {
		if commits[j].err != nil {
			failed = true
			break
		}
	}
	if failed {
		// Roll back the commits that did land; a lost unit here is
		// unrecoverable, exactly as a failed single-process window commit.
		for j := len(commits) - 1; j >= 0; j-- {
			u := &commits[j]
			if u.err != nil {
				continue
			}
			idem := c.nextIdem("undo")
			err := c.opAddCapacity(u.nd, u.code, u.id, st.epoch, idem)
			if isTransport(err) {
				err = c.opAddCapacity(u.nd, u.code, u.id, st.epoch, idem)
			}
			if err != nil {
				panic(fmt.Sprintf("cluster: window rollback lost unit (worker %d): %v", u.id, err))
			}
		}
		for _, v := range valid {
			ids[v], lvls[v] = engine.None, 0
		}
		return false
	}
	for j := range commits {
		u := &commits[j]
		ids[valid[u.ti]], lvls[valid[u.ti]] = u.id, arcLvl[u.arc]
	}

	// Bank the closing potentials for every column — matched or not — so
	// the next window warm-starts exactly as the single-process policy.
	for w, cw := range workers {
		c.warm[cw.id] = sol.WorkerPot(w)
	}
	return true
}

// SwapEpoch rotates the cluster (platform.Core): a distributed two-phase
// commit. Phase one stages every node's partition of the new population
// under the new tree's layout; any failure aborts all prepared nodes and
// the old epoch keeps serving everywhere. Phase two commits each node —
// past the point of no return, a node that cannot commit after preparing
// is a panic, exactly as a failed single-process swap commit would be.
func (c *fanCore) SwapEpoch(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if tree == nil {
		return errors.New("cluster: nil tree")
	}
	st := c.state.Load()
	if epoch <= st.epoch {
		return fmt.Errorf("cluster: swap to epoch %d, already serving %d", epoch, st.epoch)
	}
	if shards <= 0 {
		shards = c.shardsCfg
	}
	newLayout := engine.LayoutFor(tree, shards)
	N := len(c.nodes)
	for i := range inserts {
		if err := tree.CheckCode(inserts[i].Code); err != nil {
			return fmt.Errorf("cluster: swap insert %d: %w", inserts[i].ID, err)
		}
	}
	// Partition lazily: a streaming connection (seqPreparer) pulls its
	// partition straight off the inserts slice, so the coordinator never
	// holds a second copy of the population. Only a legacy NodeConn forces
	// the materialized partitions. Prepares run concurrently, so the lazy
	// build is guarded by a Once.
	var parts [][]engine.EpochInsert
	var partsOnce sync.Once
	partsFor := func(nd int) []engine.EpochInsert {
		partsOnce.Do(func() {
			parts = make([][]engine.EpochInsert, N)
			for _, in := range inserts {
				d := newLayout.GroupOf(in.Code) % N
				parts[d] = append(parts[d], in)
			}
		})
		return parts[nd]
	}
	// prepareNode runs one node's phase-one call; replayable, so a
	// transport retry re-streams the same partition under the same idem.
	prepareNode := func(nd int, idem string) error {
		if sp, ok := c.nodes[nd].(seqPreparer); ok {
			i := 0
			return sp.PrepareSeq(epoch, tree, shards, func() (engine.EpochInsert, bool, error) {
				for i < len(inserts) {
					in := inserts[i]
					i++
					if newLayout.GroupOf(in.Code)%N == nd {
						return in, true, nil
					}
				}
				return engine.EpochInsert{}, false, nil
			}, idem)
		}
		return c.nodes[nd].Prepare(epoch, tree, shards, partsFor(nd), idem)
	}

	// Phase one: prepare everywhere. The staged states are built and
	// validated off to the side; the old epoch keeps serving.
	prepared := make([]bool, N)
	abortAll := func() {
		for nd := 0; nd < N; nd++ {
			if !prepared[nd] {
				continue
			}
			idem := c.nextIdem("abort")
			if err := c.nodes[nd].Abort(epoch, idem); isTransport(err) {
				// Best effort: an unreachable node's staged state is inert
				// (it is never committed) and is dropped by its next
				// prepare.
				c.nodes[nd].Abort(epoch, idem)
			}
		}
	}
	// Prepares run concurrently: each node stages an independent partition,
	// so the phase's wall clock is the largest partition's staging time,
	// not the population's.
	prepErrs := make([]error, N)
	var pwg sync.WaitGroup
	for nd := 0; nd < N; nd++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			idem := c.nextIdem("prepare")
			err := prepareNode(nd, idem)
			if isTransport(err) {
				err = prepareNode(nd, idem)
				if isTransport(err) {
					err = unavailable(nd, err)
				}
			}
			prepErrs[nd] = err
			prepared[nd] = err == nil
		}()
	}
	pwg.Wait()
	for nd := 0; nd < N; nd++ {
		if prepErrs[nd] != nil {
			abortAll()
			return fmt.Errorf("cluster: prepare epoch %d on node %d: %w", epoch, nd, prepErrs[nd])
		}
	}

	// Phase two: commit everywhere, concurrently. Commits are idempotent (a
	// node already serving the epoch acks), so transport retries are safe.
	commitErrs := make([]error, N)
	var cwg sync.WaitGroup
	for nd := 0; nd < N; nd++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			idem := c.nextIdem("commit")
			var err error
			for try := 0; try < 3; try++ {
				if err = c.nodes[nd].Commit(epoch, idem); !isTransport(err) {
					break
				}
			}
			commitErrs[nd] = err
		}()
	}
	cwg.Wait()
	for nd := 0; nd < N; nd++ {
		if commitErrs[nd] != nil {
			// Some nodes now serve the new epoch and this one cannot:
			// there is no consistent epoch to retreat to.
			panic(fmt.Sprintf("cluster: commit epoch %d on node %d failed after prepare: %v", epoch, nd, commitErrs[nd]))
		}
	}
	c.state.Store(&coreState{tree: tree, layout: newLayout, epoch: epoch})
	return nil
}

var (
	_ platform.Core = (*fanCore)(nil)
)
