// Package core is the paper's primary contribution assembled into runnable
// pipelines: the Tree-Based Framework (TBF = HST mechanism + HST-Greedy,
// Sec. III) and the evaluation baselines Lap-GR, Lap-HG (Sec. IV-A) and
// Prob (Sec. IV-C), all driven through the four-step workflow of Fig. 1 —
// publish tree, obfuscate workers, obfuscate arriving tasks, match online.
//
// Pipelines separate client-side work (snapping, obfuscation) from
// server-side work (matching); reported running time covers exactly the
// server-side span "from receiving a task to the completion of the
// assignment", as the paper measures it.
package core

import (
	"fmt"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// Env is the published infrastructure shared by all parties: the predefined
// point grid and the HST built over it (Fig. 1 step 1). One Env serves many
// pipeline runs; building it is a server-side, once-per-deployment cost.
type Env struct {
	Grid *geo.Grid
	Tree *hst.Tree

	// realLeafIndex resolves any leaf code (including fake leaves) to the
	// nearest real leaf, giving obfuscated nodes a representative position
	// on the published grid when the size case study needs one.
	realLeafIndex *hst.LeafIndex

	// retainedBytes is the GC-settled heap cost of the published
	// infrastructure, charged to tree-based pipelines' memory metric.
	retainedBytes uint64
}

// RetainedBytes reports the measured heap footprint of the grid, tree, and
// leaf index.
func (e *Env) RetainedBytes() uint64 { return e.retainedBytes }

// DefaultGridCols is the default resolution of the predefined point set
// (N = 64 × 64 = 4096 points). The abl-grid ablation motivates the choice:
// coarser grids floor TBF's total distance at the snapping error, finer
// ones deepen the tree without improving the matching.
const DefaultGridCols = 64

// NewEnv builds the grid and HST for a region. src drives the random
// permutation and β of the HST construction.
func NewEnv(region geo.Rect, cols, rows int, src *rng.Source) (*Env, error) {
	before := markHeap()
	grid, err := geo.NewGrid(region, cols, rows)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tree, err := hst.Build(grid.Points(), src.Derive("hst"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	env, err := newEnvFrom(grid, tree)
	if err != nil {
		return nil, err
	}
	env.retainedBytes = retainedSince(before, env)
	return env, nil
}

// NewEnvFromTree wraps an existing grid and tree (e.g. received from a
// server over the wire) into an Env.
func NewEnvFromTree(grid *geo.Grid, tree *hst.Tree) (*Env, error) {
	if grid.Len() != tree.NumPoints() {
		return nil, fmt.Errorf("core: grid has %d points, tree %d", grid.Len(), tree.NumPoints())
	}
	return newEnvFrom(grid, tree)
}

func newEnvFrom(grid *geo.Grid, tree *hst.Tree) (*Env, error) {
	idx := hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
	for i := 0; i < tree.NumPoints(); i++ {
		if err := idx.Insert(tree.CodeOf(i), i); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return &Env{Grid: grid, Tree: tree, realLeafIndex: idx}, nil
}

// SnapCode maps a true location to its leaf code: nearest predefined point,
// then that point's leaf (Fig. 1, "map location to a node on the HST").
func (e *Env) SnapCode(p geo.Point) hst.Code {
	return e.Tree.CodeOf(e.Grid.Snap(p))
}

// LeafPosition returns a Euclidean position for any leaf code: its own
// predefined point for real leaves, or the predefined point of the
// tree-nearest real leaf for fake leaves.
func (e *Env) LeafPosition(c hst.Code) geo.Point {
	if i, ok := e.Tree.PointOf(c); ok {
		return e.Grid.Point(i)
	}
	i, _, ok := e.realLeafIndex.Nearest(c)
	if !ok {
		// Cannot happen: the index always holds all real leaves.
		return e.Grid.Region.Center()
	}
	return e.Grid.Point(i)
}
