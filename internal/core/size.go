package core

import (
	"fmt"
	"time"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// SizeResult summarises one matching-size case-study run (Sec. IV-C).
type SizeResult struct {
	Algorithm Algorithm
	// Assigned counts tasks the server paired with some worker.
	Assigned int
	// MatchingSize counts pairs that are true edges of the incomplete
	// bipartite graph — the true distance is within the worker's reach —
	// i.e. assignments that succeed in the real world. This is the
	// headline "matching size" metric.
	MatchingSize int
	// AssignTime is the cumulative server-side assignment time.
	AssignTime time.Duration
	// MemoryBytes approximates the server-side retained heap.
	MemoryBytes uint64
}

// RunSize executes the named size-objective pipeline. reaches[i] is worker
// i's reachable radius (known to the server, as in the paper's setup).
func RunSize(alg Algorithm, env *Env, inst *workload.Instance, reaches []float64, opt Options, src *rng.Source) (*SizeResult, error) {
	switch alg {
	case AlgTBF:
		return RunTBFSize(env, inst, reaches, opt, src)
	case AlgProb:
		return RunProbSize(env, inst, reaches, opt, src)
	default:
		return nil, fmt.Errorf("core: unknown size-objective algorithm %q", alg)
	}
}

// RunTBFSize is the paper's tree-based matcher under the size objective:
// obfuscate through the HST mechanism, then assign each task to the
// tree-nearest worker that looks reachable on the reported data.
func RunTBFSize(env *Env, inst *workload.Instance, reaches []float64, opt Options, src *rng.Source) (*SizeResult, error) {
	if len(reaches) != len(inst.Workers) {
		return nil, fmt.Errorf("core: %d reaches for %d workers", len(reaches), len(inst.Workers))
	}
	mech, err := privacy.NewHSTMechanism(env.Tree, opt.Epsilon)
	if err != nil {
		return nil, err
	}
	wSrc := src.Derive("workers")
	workers := make([]match.SizeWorker, len(inst.Workers))
	for i, w := range inst.Workers {
		code := mech.Obfuscate(env.SnapCode(w), wSrc)
		workers[i] = match.SizeWorker{
			Reported: env.LeafPosition(code),
			Code:     code,
			Reach:    reaches[i],
		}
	}
	tSrc := src.Derive("tasks")
	taskCodes := make([]hst.Code, len(inst.Tasks))
	taskPts := make([]geo.Point, len(inst.Tasks))
	for i, t := range inst.Tasks {
		taskCodes[i] = mech.Obfuscate(env.SnapCode(t), tSrc)
		taskPts[i] = env.LeafPosition(taskCodes[i])
	}

	res := &SizeResult{Algorithm: AlgTBF}
	m := match.NewTBFSize(env.Tree, workers)
	for i := range inst.Tasks {
		start := time.Now()
		w := m.Assign(taskPts[i], taskCodes[i])
		res.AssignTime += time.Since(start)
		scoreSize(res, inst, reaches, i, w)
	}
	res.MemoryBytes = env.RetainedBytes() + sizeWorkersBytes(workers) + codesBytes(taskCodes) + pointsBytes(taskPts) + boolsBytes(len(workers))
	return res, nil
}

// RunProbSize is the Prob baseline: planar Laplace on both sides, then
// posterior-probability assignment.
func RunProbSize(env *Env, inst *workload.Instance, reaches []float64, opt Options, src *rng.Source) (*SizeResult, error) {
	if len(reaches) != len(inst.Workers) {
		return nil, fmt.Errorf("core: %d reaches for %d workers", len(reaches), len(inst.Workers))
	}
	lap, err := privacy.NewPlanarLaplace(opt.Epsilon)
	if err != nil {
		return nil, err
	}
	wSrc := src.Derive("workers")
	workers := make([]match.SizeWorker, len(inst.Workers))
	for i, w := range inst.Workers {
		workers[i] = match.SizeWorker{
			Reported: lap.ObfuscatePoint(w, wSrc),
			Reach:    reaches[i],
		}
	}
	tSrc := src.Derive("tasks")
	reportedT := make([]geo.Point, len(inst.Tasks))
	for i, t := range inst.Tasks {
		reportedT[i] = lap.ObfuscatePoint(t, tSrc)
	}

	res := &SizeResult{Algorithm: AlgProb}
	m := match.NewProbSize(workers, opt.Epsilon)
	for i := range inst.Tasks {
		start := time.Now()
		w := m.Assign(reportedT[i])
		res.AssignTime += time.Since(start)
		scoreSize(res, inst, reaches, i, w)
	}
	res.MemoryBytes = sizeWorkersBytes(workers) + pointsBytes(reportedT) + boolsBytes(len(workers)) + m.CacheBytes()
	return res, nil
}

func scoreSize(res *SizeResult, inst *workload.Instance, reaches []float64, i, w int) {
	if w == match.NoWorker {
		return
	}
	res.Assigned++
	if inst.Tasks[i].Dist(inst.Workers[w]) <= reaches[w] {
		res.MatchingSize++
	}
}
