package core

import (
	"runtime"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
)

// Memory accounting mirrors the paper's metric: the server-side footprint
// of running one assignment workload. It has two parts:
//
//   - the published infrastructure (grid + HST + leaf index), measured once
//     with GC-settled heap readings when the Env is built and charged to
//     the algorithms that match on the tree (the paper: "TBF and Lap-HG
//     consume more space of no more than 1.2 MB to construct the HST");
//   - the per-run state — the obfuscated reports received from workers and
//     tasks plus the matcher bookkeeping — sized *analytically* from the
//     structure layouts. Run state is 0.1–1 MB, below forced-GC noise, so
//     deterministic byte accounting is both more precise and reproducible.

// heapMark is a GC-settled heap reading.
type heapMark uint64

// markHeap returns the live-heap size after a forced collection.
func markHeap() heapMark {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return heapMark(ms.HeapAlloc)
}

// retainedSince returns the heap growth since the mark, keeping the given
// values alive across the closing measurement so their memory is counted.
// Used for the one-off Env measurement where the delta is large.
func retainedSince(before heapMark, keep ...any) uint64 {
	after := markHeap()
	runtime.KeepAlive(keep)
	if uint64(after) > uint64(before) {
		return uint64(after) - uint64(before)
	}
	return 0
}

// Structure-size constants (amd64 layouts; close enough on any 64-bit
// platform for a reporting metric).
const (
	bytesPerPoint      = 16 // geo.Point: two float64
	bytesPerString     = 16 // string header
	bytesPerSliceHdr   = 24
	bytesPerSizeWorker = 16 + 16 + 8 // Reported + Code header + Reach
)

// pointsBytes sizes a []geo.Point.
func pointsBytes(pts []geo.Point) uint64 {
	return uint64(len(pts))*bytesPerPoint + bytesPerSliceHdr
}

// codesBytes sizes a []hst.Code (headers plus digit payloads).
func codesBytes(codes []hst.Code) uint64 {
	total := uint64(bytesPerSliceHdr)
	for _, c := range codes {
		total += bytesPerString + uint64(len(c))
	}
	return total
}

// boolsBytes sizes the matcher's assignment bitmap.
func boolsBytes(n int) uint64 { return uint64(n) + bytesPerSliceHdr }

// sizeWorkersBytes sizes a []match.SizeWorker including code payloads.
func sizeWorkersBytes(ws []match.SizeWorker) uint64 {
	total := uint64(bytesPerSliceHdr)
	for _, w := range ws {
		total += bytesPerSizeWorker + uint64(len(w.Code))
	}
	return total
}
