package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// Algorithm names the compared pipelines.
type Algorithm string

// The pipelines of the evaluation (Sec. IV-A and IV-C).
const (
	AlgTBF   Algorithm = "TBF"    // HST mechanism + HST-Greedy (ours)
	AlgLapGR Algorithm = "Lap-GR" // planar Laplace + Euclidean greedy
	AlgLapHG Algorithm = "Lap-HG" // planar Laplace + HST-Greedy
	AlgProb  Algorithm = "Prob"   // planar Laplace + probability assignment
)

// Options tunes a pipeline run.
type Options struct {
	Epsilon float64
	// UseTrie selects the O(D) trie-indexed HST-Greedy instead of the
	// paper's O(n) scan. Off by default: the evaluation reproduces the
	// paper's complexity behaviour; the trie is the ablation.
	UseTrie bool
	// UseEngine selects the sharded concurrent assignment engine
	// (internal/engine) as the HST-Greedy implementation. Takes precedence
	// over UseTrie. Sequentially driven it reproduces the scan assignment
	// for assignment; its value is concurrency safety and shard-local
	// locking when tasks arrive on many goroutines.
	UseEngine bool
	// Shards is the engine shard count when UseEngine is set; 0 selects
	// the engine default.
	Shards int
	// Parallelism bounds the worker pool for the client-side obfuscation
	// fan-out in RunTBF and RunLapHG. 0 or 1 keeps the sequential draw
	// order the harness has always used (bit-for-bit reproducible against
	// earlier results); larger values obfuscate concurrently with
	// per-agent derived randomness, deterministic for a given seed
	// regardless of scheduling. Obfuscation is client-side work, so this
	// does not touch the server-side assignment timing the paper measures.
	Parallelism int
}

// Result summarises one distance-objective run.
type Result struct {
	Algorithm Algorithm
	// TotalDistance is Σ d(t, w) over matched pairs measured between TRUE
	// locations — the objective of Definition 5, which the server never
	// sees but the evaluation scores.
	TotalDistance float64
	// Matched is the number of tasks that received a worker.
	Matched int
	// AssignTime is the cumulative server-side assignment time.
	AssignTime time.Duration
	// MemoryBytes approximates the heap retained by the server-side
	// structures (mechanism inputs, matcher state) during the run.
	MemoryBytes uint64
}

// MeanLatency returns the average server-side time per task.
func (r *Result) MeanLatency() time.Duration {
	if r.Matched == 0 {
		return 0
	}
	return r.AssignTime / time.Duration(r.Matched)
}

// Run executes the named distance-objective pipeline on an instance.
func Run(alg Algorithm, env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	switch alg {
	case AlgTBF:
		return RunTBF(env, inst, opt, src)
	case AlgLapGR:
		return RunLapGR(env, inst, opt, src)
	case AlgLapHG:
		return RunLapHG(env, inst, opt, src)
	default:
		return nil, fmt.Errorf("core: unknown distance-objective algorithm %q", alg)
	}
}

// RunTBF is the paper's framework: snap → HST mechanism (random walk) →
// HST-Greedy on obfuscated leaves.
func RunTBF(env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	mech, err := privacy.NewHSTMechanism(env.Tree, opt.Epsilon)
	if err != nil {
		return nil, err
	}
	// Client side: every worker and task obfuscates its own snapped leaf.
	workerCodes := obfuscateHST(env, mech, inst.Workers, src.Derive("workers"), opt.Parallelism)
	taskCodes := obfuscateHST(env, mech, inst.Tasks, src.Derive("tasks"), opt.Parallelism)

	res := &Result{Algorithm: AlgTBF}
	assign, err := newHSTAssigner(env.Tree, workerCodes, opt)
	if err != nil {
		return nil, err
	}
	for i := range inst.Tasks {
		start := time.Now()
		w := assign(taskCodes[i])
		res.AssignTime += time.Since(start)
		score(res, inst, i, w)
	}
	res.MemoryBytes = env.RetainedBytes() + codesBytes(workerCodes) + codesBytes(taskCodes) + boolsBytes(len(workerCodes))
	return res, nil
}

// RunLapGR obfuscates both sides with planar Laplace and matches greedily
// in the Euclidean plane.
func RunLapGR(env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	lap, err := privacy.NewPlanarLaplace(opt.Epsilon)
	if err != nil {
		return nil, err
	}
	wSrc := src.Derive("workers")
	reportedW := make([]geo.Point, len(inst.Workers))
	for i, w := range inst.Workers {
		reportedW[i] = lap.ObfuscatePoint(w, wSrc)
	}
	tSrc := src.Derive("tasks")
	reportedT := make([]geo.Point, len(inst.Tasks))
	for i, t := range inst.Tasks {
		reportedT[i] = lap.ObfuscatePoint(t, tSrc)
	}

	res := &Result{Algorithm: AlgLapGR}
	g := match.NewEuclideanGreedy(reportedW)
	for i := range inst.Tasks {
		start := time.Now()
		w := g.Assign(reportedT[i])
		res.AssignTime += time.Since(start)
		score(res, inst, i, w)
	}
	res.MemoryBytes = pointsBytes(reportedW) + pointsBytes(reportedT) + boolsBytes(len(reportedW))
	return res, nil
}

// RunLapHG obfuscates with planar Laplace, snaps the noisy locations onto
// the published HST (post-processing, so ε-Geo-I is preserved) and runs
// HST-Greedy, the Meyerson-style tree matcher.
func RunLapHG(env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	lap, err := privacy.NewPlanarLaplace(opt.Epsilon)
	if err != nil {
		return nil, err
	}
	obf := func(p geo.Point, s *rng.Source) hst.Code {
		return env.SnapCode(lap.ObfuscatePoint(p, s))
	}
	workerCodes := obfuscateAll(inst.Workers, src.Derive("workers"), opt.Parallelism, obf)
	taskCodes := obfuscateAll(inst.Tasks, src.Derive("tasks"), opt.Parallelism, obf)

	res := &Result{Algorithm: AlgLapHG}
	assign, err := newHSTAssigner(env.Tree, workerCodes, opt)
	if err != nil {
		return nil, err
	}
	for i := range inst.Tasks {
		start := time.Now()
		w := assign(taskCodes[i])
		res.AssignTime += time.Since(start)
		score(res, inst, i, w)
	}
	res.MemoryBytes = env.RetainedBytes() + codesBytes(workerCodes) + codesBytes(taskCodes) + boolsBytes(len(workerCodes))
	return res, nil
}

// newHSTAssigner returns the configured HST-Greedy implementation as a
// plain assign function.
func newHSTAssigner(tree *hst.Tree, workers []hst.Code, opt Options) (func(hst.Code) int, error) {
	switch {
	case opt.UseEngine:
		g, err := match.NewHSTGreedyEngine(tree, workers, opt.Shards)
		if err != nil {
			return nil, err
		}
		return g.Assign, nil
	case opt.UseTrie:
		g, err := match.NewHSTGreedyTrie(tree, workers)
		if err != nil {
			return nil, err
		}
		return g.Assign, nil
	default:
		g := match.NewHSTGreedyScan(tree, workers)
		return g.Assign, nil
	}
}

// obfuscateHST maps every true location through snap + the HST mechanism.
// With parallelism ≤ 1 the whole wave goes through the mechanism's batch
// sampler, drawing from src in item order — exactly the random stream the
// per-item loop drew, so results are bit-for-bit unchanged while the
// per-item buffer and string allocations are amortised away. With
// parallelism > 1 the wave is split into contiguous chunks, each item
// drawing from its own index-derived child source — deterministic for a
// given seed no matter how the goroutines are scheduled or how wide the
// pool is — with one reusable digit scratch per goroutine.
func obfuscateHST(env *Env, mech *privacy.HSTMechanism, pts []geo.Point, src *rng.Source, parallelism int) []hst.Code {
	codes := make([]hst.Code, len(pts))
	if parallelism <= 1 || len(pts) < 2 {
		snapped := make([]hst.Code, len(pts))
		for i, p := range pts {
			snapped[i] = env.SnapCode(p)
		}
		return mech.ObfuscateInto(codes, snapped, src)
	}
	if parallelism > len(pts) {
		parallelism = len(pts)
	}
	var wg sync.WaitGroup
	chunk := (len(pts) + parallelism - 1) / parallelism
	for g := 0; g < parallelism; g++ {
		lo, hi := g*chunk, (g+1)*chunk
		if hi > len(pts) {
			hi = len(pts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scratch := make([]byte, env.Tree.Depth())
			for i := lo; i < hi; i++ {
				codes[i] = mech.ObfuscateWalkInto(env.SnapCode(pts[i]), src.DeriveN("item", i), scratch)
			}
		}(lo, hi)
	}
	wg.Wait()
	return codes
}

// obfuscateAll maps every point through obf into a leaf code; the
// non-tree pipelines (planar Laplace + snap) use it. With parallelism ≤ 1
// items draw sequentially from src, preserving the exact random stream the
// harness has always produced. With parallelism > 1 a worker pool fans the
// items out, each item drawing from its own index-derived child source —
// deterministic for a given seed no matter how the goroutines are
// scheduled or how wide the pool is.
func obfuscateAll(pts []geo.Point, src *rng.Source, parallelism int, obf func(geo.Point, *rng.Source) hst.Code) []hst.Code {
	codes := make([]hst.Code, len(pts))
	if parallelism <= 1 || len(pts) < 2 {
		for i, p := range pts {
			codes[i] = obf(p, src)
		}
		return codes
	}
	if parallelism > len(pts) {
		parallelism = len(pts)
	}
	var wg sync.WaitGroup
	for g := 0; g < parallelism; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(pts); i += parallelism {
				codes[i] = obf(pts[i], src.DeriveN("item", i))
			}
		}(g)
	}
	wg.Wait()
	return codes
}

// score accumulates the true-distance objective for task i matched to w.
func score(res *Result, inst *workload.Instance, i, w int) {
	if w == match.NoWorker {
		return
	}
	res.Matched++
	res.TotalDistance += inst.Tasks[i].Dist(inst.Workers[w])
}
