package core

import (
	"fmt"
	"time"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// Algorithm names the compared pipelines.
type Algorithm string

// The pipelines of the evaluation (Sec. IV-A and IV-C).
const (
	AlgTBF   Algorithm = "TBF"    // HST mechanism + HST-Greedy (ours)
	AlgLapGR Algorithm = "Lap-GR" // planar Laplace + Euclidean greedy
	AlgLapHG Algorithm = "Lap-HG" // planar Laplace + HST-Greedy
	AlgProb  Algorithm = "Prob"   // planar Laplace + probability assignment
)

// Options tunes a pipeline run.
type Options struct {
	Epsilon float64
	// UseTrie selects the O(D) trie-indexed HST-Greedy instead of the
	// paper's O(n) scan. Off by default: the evaluation reproduces the
	// paper's complexity behaviour; the trie is the ablation.
	UseTrie bool
}

// Result summarises one distance-objective run.
type Result struct {
	Algorithm Algorithm
	// TotalDistance is Σ d(t, w) over matched pairs measured between TRUE
	// locations — the objective of Definition 5, which the server never
	// sees but the evaluation scores.
	TotalDistance float64
	// Matched is the number of tasks that received a worker.
	Matched int
	// AssignTime is the cumulative server-side assignment time.
	AssignTime time.Duration
	// MemoryBytes approximates the heap retained by the server-side
	// structures (mechanism inputs, matcher state) during the run.
	MemoryBytes uint64
}

// MeanLatency returns the average server-side time per task.
func (r *Result) MeanLatency() time.Duration {
	if r.Matched == 0 {
		return 0
	}
	return r.AssignTime / time.Duration(r.Matched)
}

// Run executes the named distance-objective pipeline on an instance.
func Run(alg Algorithm, env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	switch alg {
	case AlgTBF:
		return RunTBF(env, inst, opt, src)
	case AlgLapGR:
		return RunLapGR(env, inst, opt, src)
	case AlgLapHG:
		return RunLapHG(env, inst, opt, src)
	default:
		return nil, fmt.Errorf("core: unknown distance-objective algorithm %q", alg)
	}
}

// RunTBF is the paper's framework: snap → HST mechanism (random walk) →
// HST-Greedy on obfuscated leaves.
func RunTBF(env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	mech, err := privacy.NewHSTMechanism(env.Tree, opt.Epsilon)
	if err != nil {
		return nil, err
	}
	// Client side: every worker and task obfuscates its own snapped leaf.
	wSrc := src.Derive("workers")
	workerCodes := make([]hst.Code, len(inst.Workers))
	for i, w := range inst.Workers {
		workerCodes[i] = mech.Obfuscate(env.SnapCode(w), wSrc)
	}
	tSrc := src.Derive("tasks")
	taskCodes := make([]hst.Code, len(inst.Tasks))
	for i, t := range inst.Tasks {
		taskCodes[i] = mech.Obfuscate(env.SnapCode(t), tSrc)
	}

	res := &Result{Algorithm: AlgTBF}
	assign, err := newHSTAssigner(env.Tree, workerCodes, opt.UseTrie)
	if err != nil {
		return nil, err
	}
	for i := range inst.Tasks {
		start := time.Now()
		w := assign(taskCodes[i])
		res.AssignTime += time.Since(start)
		score(res, inst, i, w)
	}
	res.MemoryBytes = env.RetainedBytes() + codesBytes(workerCodes) + codesBytes(taskCodes) + boolsBytes(len(workerCodes))
	return res, nil
}

// RunLapGR obfuscates both sides with planar Laplace and matches greedily
// in the Euclidean plane.
func RunLapGR(env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	lap, err := privacy.NewPlanarLaplace(opt.Epsilon)
	if err != nil {
		return nil, err
	}
	wSrc := src.Derive("workers")
	reportedW := make([]geo.Point, len(inst.Workers))
	for i, w := range inst.Workers {
		reportedW[i] = lap.ObfuscatePoint(w, wSrc)
	}
	tSrc := src.Derive("tasks")
	reportedT := make([]geo.Point, len(inst.Tasks))
	for i, t := range inst.Tasks {
		reportedT[i] = lap.ObfuscatePoint(t, tSrc)
	}

	res := &Result{Algorithm: AlgLapGR}
	g := match.NewEuclideanGreedy(reportedW)
	for i := range inst.Tasks {
		start := time.Now()
		w := g.Assign(reportedT[i])
		res.AssignTime += time.Since(start)
		score(res, inst, i, w)
	}
	res.MemoryBytes = pointsBytes(reportedW) + pointsBytes(reportedT) + boolsBytes(len(reportedW))
	return res, nil
}

// RunLapHG obfuscates with planar Laplace, snaps the noisy locations onto
// the published HST (post-processing, so ε-Geo-I is preserved) and runs
// HST-Greedy, the Meyerson-style tree matcher.
func RunLapHG(env *Env, inst *workload.Instance, opt Options, src *rng.Source) (*Result, error) {
	lap, err := privacy.NewPlanarLaplace(opt.Epsilon)
	if err != nil {
		return nil, err
	}
	wSrc := src.Derive("workers")
	workerCodes := make([]hst.Code, len(inst.Workers))
	for i, w := range inst.Workers {
		workerCodes[i] = env.SnapCode(lap.ObfuscatePoint(w, wSrc))
	}
	tSrc := src.Derive("tasks")
	taskCodes := make([]hst.Code, len(inst.Tasks))
	for i, t := range inst.Tasks {
		taskCodes[i] = env.SnapCode(lap.ObfuscatePoint(t, tSrc))
	}

	res := &Result{Algorithm: AlgLapHG}
	assign, err := newHSTAssigner(env.Tree, workerCodes, opt.UseTrie)
	if err != nil {
		return nil, err
	}
	for i := range inst.Tasks {
		start := time.Now()
		w := assign(taskCodes[i])
		res.AssignTime += time.Since(start)
		score(res, inst, i, w)
	}
	res.MemoryBytes = env.RetainedBytes() + codesBytes(workerCodes) + codesBytes(taskCodes) + boolsBytes(len(workerCodes))
	return res, nil
}

// newHSTAssigner returns the configured HST-Greedy implementation as a
// plain assign function.
func newHSTAssigner(tree *hst.Tree, workers []hst.Code, useTrie bool) (func(hst.Code) int, error) {
	if useTrie {
		g, err := match.NewHSTGreedyTrie(tree, workers)
		if err != nil {
			return nil, err
		}
		return g.Assign, nil
	}
	g := match.NewHSTGreedyScan(tree, workers)
	return g.Assign, nil
}

// score accumulates the true-distance objective for task i matched to w.
func score(res *Result, inst *workload.Instance, i, w int) {
	if w == match.NoWorker {
		return
	}
	res.Matched++
	res.TotalDistance += inst.Tasks[i].Dist(inst.Workers[w])
}
