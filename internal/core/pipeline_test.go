package core

import (
	"testing"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func testEnv(t testing.TB, cols int) *Env {
	t.Helper()
	env, err := NewEnv(workload.SyntheticRegion, cols, cols, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func testInstance(t testing.TB, nt, nw int, seed uint64) *workload.Instance {
	t.Helper()
	p := workload.DefaultSynthetic()
	p.NumTasks, p.NumWorkers = nt, nw
	in, err := workload.Synthetic(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(workload.SyntheticRegion, 0, 4, rng.New(1)); err == nil {
		t.Error("zero columns accepted")
	}
	env := testEnv(t, 8)
	if env.Tree.NumPoints() != 64 {
		t.Errorf("N = %d, want 64", env.Tree.NumPoints())
	}
}

func TestSnapCodeRoundTrip(t *testing.T) {
	env := testEnv(t, 8)
	for i := 0; i < env.Grid.Len(); i++ {
		if got := env.SnapCode(env.Grid.Point(i)); got != env.Tree.CodeOf(i) {
			t.Fatalf("SnapCode(grid point %d) mismatched", i)
		}
	}
}

func TestLeafPosition(t *testing.T) {
	env := testEnv(t, 8)
	// Real leaves map to their own grid point.
	for i := 0; i < env.Grid.Len(); i += 7 {
		if got := env.LeafPosition(env.Tree.CodeOf(i)); got != env.Grid.Point(i) {
			t.Fatalf("LeafPosition(real leaf %d) = %v", i, got)
		}
	}
	// A fake leaf maps to some real grid point (the tree-nearest).
	real := env.Tree.CodeOf(0)
	fake := []byte(real)
	fake[len(fake)-1] ^= 1
	if env.Tree.IsReal(hst.Code(fake)) {
		t.Skip("sibling happens to be real; nothing to test")
	}
	pos := env.LeafPosition(hst.Code(fake))
	found := false
	for i := 0; i < env.Grid.Len(); i++ {
		if env.Grid.Point(i) == pos {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("fake-leaf position %v is not a grid point", pos)
	}
}

func TestRunDispatch(t *testing.T) {
	env := testEnv(t, 8)
	inst := testInstance(t, 30, 50, 5)
	opt := Options{Epsilon: 0.6}
	for _, alg := range []Algorithm{AlgTBF, AlgLapGR, AlgLapHG} {
		res, err := Run(alg, env, inst, opt, rng.New(3))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Errorf("%s: result labelled %s", alg, res.Algorithm)
		}
		if res.Matched != len(inst.Tasks) {
			t.Errorf("%s: matched %d of %d tasks", alg, res.Matched, len(inst.Tasks))
		}
		if res.TotalDistance <= 0 {
			t.Errorf("%s: total distance %v", alg, res.TotalDistance)
		}
	}
	if _, err := Run("bogus", env, inst, opt, rng.New(3)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(AlgTBF, env, inst, Options{Epsilon: -1}, rng.New(3)); err == nil {
		t.Error("bad epsilon accepted")
	}
}

func TestMoreTasksThanWorkers(t *testing.T) {
	env := testEnv(t, 8)
	inst := testInstance(t, 40, 25, 6)
	for _, alg := range []Algorithm{AlgTBF, AlgLapGR, AlgLapHG} {
		res, err := Run(alg, env, inst, Options{Epsilon: 0.6}, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		if res.Matched != 25 {
			t.Errorf("%s: matched %d, want 25 (worker-limited)", alg, res.Matched)
		}
	}
}

func TestTBFDeterministicGivenSeed(t *testing.T) {
	env := testEnv(t, 8)
	inst := testInstance(t, 50, 80, 7)
	a, err := RunTBF(env, inst, Options{Epsilon: 0.6}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTBF(env, inst, Options{Epsilon: 0.6}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDistance != b.TotalDistance || a.Matched != b.Matched {
		t.Errorf("same seed diverged: %v vs %v", a.TotalDistance, b.TotalDistance)
	}
}

func TestTrieAndScanPipelineEquivalent(t *testing.T) {
	env := testEnv(t, 16)
	inst := testInstance(t, 150, 200, 8)
	for _, alg := range []Algorithm{AlgTBF, AlgLapHG} {
		scan, err := Run(alg, env, inst, Options{Epsilon: 0.6}, rng.New(10))
		if err != nil {
			t.Fatal(err)
		}
		trie, err := Run(alg, env, inst, Options{Epsilon: 0.6, UseTrie: true}, rng.New(10))
		if err != nil {
			t.Fatal(err)
		}
		if scan.TotalDistance != trie.TotalDistance {
			t.Errorf("%s: scan %v ≠ trie %v", alg, scan.TotalDistance, trie.TotalDistance)
		}
	}
}

// TestEngineAndScanPipelineEquivalent: the sharded engine breaks ties
// towards the lowest worker id like the scan does, so driven sequentially
// by the pipelines the totals agree exactly — not merely within the
// tie-breaking variance Alg. 4 permits.
func TestEngineAndScanPipelineEquivalent(t *testing.T) {
	env := testEnv(t, 16)
	inst := testInstance(t, 150, 200, 8)
	for _, alg := range []Algorithm{AlgTBF, AlgLapHG} {
		scan, err := Run(alg, env, inst, Options{Epsilon: 0.6}, rng.New(10))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{0, 1, 3} {
			eng, err := Run(alg, env, inst, Options{Epsilon: 0.6, UseEngine: true, Shards: shards}, rng.New(10))
			if err != nil {
				t.Fatal(err)
			}
			if scan.TotalDistance != eng.TotalDistance || scan.Matched != eng.Matched {
				t.Errorf("%s shards=%d: scan (%v, %d) ≠ engine (%v, %d)", alg, shards,
					scan.TotalDistance, scan.Matched, eng.TotalDistance, eng.Matched)
			}
		}
	}
}

// TestParallelObfuscationDeterministic: with Parallelism > 1 the result
// must depend only on the seed, not on the pool width or scheduling.
func TestParallelObfuscationDeterministic(t *testing.T) {
	env := testEnv(t, 16)
	inst := testInstance(t, 120, 160, 9)
	for _, alg := range []Algorithm{AlgTBF, AlgLapHG} {
		var ref *Result
		for _, par := range []int{2, 4, 8} {
			res, err := Run(alg, env, inst, Options{Epsilon: 0.6, Parallelism: par}, rng.New(12))
			if err != nil {
				t.Fatal(err)
			}
			if res.Matched != len(inst.Tasks) {
				t.Errorf("%s par=%d: matched %d of %d", alg, par, res.Matched, len(inst.Tasks))
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.TotalDistance != ref.TotalDistance || res.Matched != ref.Matched {
				t.Errorf("%s: par=%d total %v diverged from par=2 total %v",
					alg, par, res.TotalDistance, ref.TotalDistance)
			}
		}
	}
}

// TestShapeTBFBeatsBaselinesAtSmallEpsilon is the paper's headline claim in
// miniature: averaged over repetitions at strict privacy (ε = 0.2), TBF's
// total true distance is clearly below Lap-GR's and Lap-HG's (Fig. 7a).
func TestShapeTBFBeatsBaselinesAtSmallEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	env := testEnv(t, 32)
	opt := Options{Epsilon: 0.2}
	var tbf, gr, hg float64
	const reps = 5
	for rep := 0; rep < reps; rep++ {
		inst := testInstance(t, 400, 700, uint64(100+rep))
		seed := rng.New(uint64(200 + rep))
		a, err := RunTBF(env, inst, opt, seed.Derive("tbf"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunLapGR(env, inst, opt, seed.Derive("gr"))
		if err != nil {
			t.Fatal(err)
		}
		c, err := RunLapHG(env, inst, opt, seed.Derive("hg"))
		if err != nil {
			t.Fatal(err)
		}
		tbf += a.TotalDistance
		gr += b.TotalDistance
		hg += c.TotalDistance
	}
	if tbf >= gr {
		t.Errorf("TBF %v not below Lap-GR %v at ε=0.2", tbf/reps, gr/reps)
	}
	if tbf >= hg {
		t.Errorf("TBF %v not below Lap-HG %v at ε=0.2", tbf/reps, hg/reps)
	}
}

func TestEmptyInstance(t *testing.T) {
	env := testEnv(t, 8)
	inst := &workload.Instance{Region: workload.SyntheticRegion}
	for _, alg := range []Algorithm{AlgTBF, AlgLapGR, AlgLapHG} {
		res, err := Run(alg, env, inst, Options{Epsilon: 0.5}, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Matched != 0 || res.TotalDistance != 0 {
			t.Errorf("%s: nonzero result on empty instance", alg)
		}
		if res.MeanLatency() != 0 {
			t.Errorf("%s: MeanLatency on empty instance", alg)
		}
	}
}
