package core

import (
	"testing"

	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func TestRunSizeDispatch(t *testing.T) {
	env := testEnv(t, 16)
	inst := testInstance(t, 60, 100, 21)
	reaches := workload.Reaches(len(inst.Workers), 10, 20, rng.New(2))
	for _, alg := range []Algorithm{AlgTBF, AlgProb} {
		res, err := RunSize(alg, env, inst, reaches, Options{Epsilon: 0.6}, rng.New(3))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Errorf("%s: labelled %s", alg, res.Algorithm)
		}
		if res.MatchingSize > res.Assigned {
			t.Errorf("%s: valid %d > assigned %d", alg, res.MatchingSize, res.Assigned)
		}
		if res.Assigned > len(inst.Tasks) {
			t.Errorf("%s: assigned %d > tasks", alg, res.Assigned)
		}
	}
	if _, err := RunSize(AlgLapGR, env, inst, reaches, Options{Epsilon: 0.6}, rng.New(3)); err == nil {
		t.Error("Lap-GR accepted as size algorithm")
	}
	if _, err := RunSize(AlgTBF, env, inst, reaches[:3], Options{Epsilon: 0.6}, rng.New(3)); err == nil {
		t.Error("reach-length mismatch accepted")
	}
}

func TestSizePipelinesAchieveMatches(t *testing.T) {
	// Dense worker pool, generous reach: both algorithms must achieve a
	// substantial valid matching.
	env := testEnv(t, 16)
	inst := testInstance(t, 80, 400, 23)
	reaches := workload.Reaches(len(inst.Workers), 30, 40, rng.New(5))
	for _, alg := range []Algorithm{AlgTBF, AlgProb} {
		res, err := RunSize(alg, env, inst, reaches, Options{Epsilon: 1.0}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if res.MatchingSize < len(inst.Tasks)/2 {
			t.Errorf("%s: matching size %d of %d tasks", alg, res.MatchingSize, len(inst.Tasks))
		}
	}
}

// TestShapeTBFSizeBeatsProb mirrors Fig. 8: with strict privacy the
// tree-based matcher completes more true matches than Prob.
func TestShapeTBFSizeBeatsProb(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	env := testEnv(t, 32)
	var tbf, prob int
	const reps = 5
	for rep := 0; rep < reps; rep++ {
		inst := testInstance(t, 300, 600, uint64(300+rep))
		reaches := workload.Reaches(len(inst.Workers), 10, 20, rng.New(uint64(400+rep)))
		seed := rng.New(uint64(500 + rep))
		a, err := RunTBFSize(env, inst, reaches, Options{Epsilon: 0.2}, seed.Derive("tbf"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunProbSize(env, inst, reaches, Options{Epsilon: 0.2}, seed.Derive("prob"))
		if err != nil {
			t.Fatal(err)
		}
		tbf += a.MatchingSize
		prob += b.MatchingSize
	}
	if tbf <= prob {
		t.Errorf("TBF matching size %d not above Prob %d at ε=0.2", tbf, prob)
	}
}

func TestSizeEmptyInstance(t *testing.T) {
	env := testEnv(t, 8)
	inst := &workload.Instance{Region: workload.SyntheticRegion}
	for _, alg := range []Algorithm{AlgTBF, AlgProb} {
		res, err := RunSize(alg, env, inst, nil, Options{Epsilon: 0.5}, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Assigned != 0 || res.MatchingSize != 0 {
			t.Errorf("%s: nonzero on empty instance", alg)
		}
	}
}
