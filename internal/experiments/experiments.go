// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. IV): the Fig. 6/7 distance-objective sweeps, the Fig. 8
// matching-size case study, Table I's mechanism distribution, and the
// ablations DESIGN.md adds. Each experiment is addressed by id ("fig6a",
// "fig8c", "table1", "abl-index", ...), runs a parameter sweep with
// repetitions in the random-order model, and yields a Figure: labelled
// series ready for text, CSV, or bench reporting.
package experiments

import (
	"fmt"
	"sort"
)

// Figure is the result of one experiment: one series per algorithm over a
// common x axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
}

// Series is one algorithm's y values, aligned with Figure.X. Spread, when
// non-nil, carries the sample standard deviation across repetitions for
// each point (attached to the distance and matching-size metrics, whose
// workloads are resampled per repetition).
type Series struct {
	Label  string
	Values []float64
	Spread []float64
}

// Config tunes a Runner.
type Config struct {
	// Seed roots every random choice (tree construction, mechanisms,
	// workloads, arrival orders); equal seeds reproduce results exactly.
	Seed uint64
	// Reps is the number of repetitions averaged per sweep point (the
	// paper uses 10). Real-data experiments map repetition r to day r+1.
	Reps int
	// Scale multiplies workload sizes (|T|, |W|). 1.0 is paper scale;
	// smaller values produce CI-friendly runs with the same shapes.
	Scale float64
	// GridCols is the resolution of the predefined point grid (N = cols²).
	GridCols int
	// UseTrie switches TBF/Lap-HG to the O(D) trie matcher. The default
	// (false) follows the paper's complexity analysis.
	UseTrie bool
}

// DefaultConfig is paper-faithful except for repetitions (5 instead of 10)
// and keeps full workload sizes.
func DefaultConfig() Config {
	return Config{Seed: 2020, Reps: 5, Scale: 1.0, GridCols: 64}
}

// QuickConfig runs every experiment at roughly 1/10 scale for smoke tests.
func QuickConfig() Config {
	return Config{Seed: 2020, Reps: 2, Scale: 0.1, GridCols: 16}
}

func (c Config) validate() error {
	if c.Reps < 1 {
		return fmt.Errorf("experiments: Reps must be ≥ 1 (got %d)", c.Reps)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("experiments: Scale must be positive (got %v)", c.Scale)
	}
	if c.GridCols < 2 {
		return fmt.Errorf("experiments: GridCols must be ≥ 2 (got %d)", c.GridCols)
	}
	return nil
}

// scaled applies the workload scale with a floor that keeps instances
// meaningful.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 20 {
		v = 20
	}
	return v
}

// experiment is one registered experiment.
type experiment struct {
	id    string
	title string
	run   func(r *Runner) (*Figure, error)
}

var registry = map[string]experiment{}

func register(id, title string, run func(r *Runner) (*Figure, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = experiment{id: id, title: title, run: run}
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title for an experiment id.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}
