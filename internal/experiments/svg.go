package experiments

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the figure as a standalone SVG line chart (pure stdlib; no
// plotting dependencies). X positions are categorical in sweep order, the
// y axis is linear from zero (distances, times, sizes are all
// non-negative), and each series gets a line with point markers plus a
// legend entry. Series spreads, when present, draw as vertical error bars.
func (f *Figure) SVG() string {
	const (
		width   = 640
		height  = 420
		left    = 70
		right   = 160 // room for the legend
		top     = 48
		bottom  = 52
		tickLen = 4
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	// Y range.
	maxY := 0.0
	for _, s := range f.Series {
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			hi := v
			if i < len(s.Spread) {
				hi += s.Spread[i]
			}
			if hi > maxY {
				maxY = hi
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.05 // headroom

	xPos := func(i int) float64 {
		if len(f.X) == 1 {
			return float64(left) + plotW/2
		}
		return float64(left) + plotW*float64(i)/float64(len(f.X)-1)
	}
	yPos := func(v float64) float64 {
		return float64(top) + plotH*(1-v/maxY)
	}

	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	marker := []string{"circle", "square", "diamond", "triangle", "circle", "square"}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s — %s</text>`+"\n",
		left, xmlEscape(f.ID), xmlEscape(f.Title))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		left+int(plotW/2), height-12, xmlEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		top+int(plotH/2), top+int(plotH/2), xmlEscape(f.YLabel))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top, left, height-bottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, height-bottom, width-right, height-bottom)

	// Y ticks: 5 divisions.
	for t := 0; t <= 5; t++ {
		v := maxY * float64(t) / 5
		y := yPos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			left-tickLen, y, left, y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			left, y, width-right, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			left-tickLen-3, y, tickLabel(v))
	}
	// X ticks.
	for i, x := range f.X {
		px := xPos(i)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, height-bottom, px, height-bottom+tickLen)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, height-bottom+16, xmlEscape(x))
	}

	// Series.
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(i), yPos(v)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
				color, strings.Join(pts, " "))
		}
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			if i < len(s.Spread) && s.Spread[i] > 0 {
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
					xPos(i), yPos(v-s.Spread[i]), xPos(i), yPos(v+s.Spread[i]), color)
			}
			writeMarker(&b, marker[si%len(marker)], xPos(i), yPos(v), color)
		}
		// Legend.
		ly := top + 10 + si*18
		lx := width - right + 12
		writeMarker(&b, marker[si%len(marker)], float64(lx), float64(ly), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" dominant-baseline="middle">%s</text>`+"\n",
			lx+10, ly, xmlEscape(s.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func writeMarker(b *strings.Builder, kind string, x, y float64, color string) {
	const r = 3.5
	switch kind {
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	default:
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

func tickLabel(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e4 || math.Abs(v) < 1e-2:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
