package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Render formats a figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "y: %s\n", f.YLabel)

	headers := append([]string{f.XLabel}, labels(f.Series)...)
	rows := [][]string{headers}
	for i, x := range f.X {
		row := []string{x}
		for _, s := range f.Series {
			row = append(row, formatWithSpread(s, i))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[c]+3, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV formats a figure as comma-separated values with a header row.
// Series with spreads add a "<label> std" column after their value column.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
		if s.Spread != nil {
			b.WriteByte(',')
			b.WriteString(csvEscape(s.Label + " std"))
		}
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		b.WriteString(csvEscape(x))
		for _, s := range f.Series {
			b.WriteByte(',')
			writeCSVValue(&b, valueAt(s, i))
			if s.Spread != nil {
				b.WriteByte(',')
				writeCSVValue(&b, spreadAt(s, i))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func writeCSVValue(b *strings.Builder, v float64) {
	if !math.IsNaN(v) {
		fmt.Fprintf(b, "%g", v)
	}
}

// Markdown formats a figure as a GitHub-flavoured markdown table, used when
// generating EXPERIMENTS.md.
func (f *Figure) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + f.XLabel)
	for _, s := range f.Series {
		b.WriteString(" | " + s.Label)
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(f.Series); i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		b.WriteString("| " + x)
		for _, s := range f.Series {
			b.WriteString(" | " + formatWithSpread(s, i))
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func valueAt(s Series, i int) float64 {
	if i >= len(s.Values) {
		return math.NaN()
	}
	return s.Values[i]
}

func spreadAt(s Series, i int) float64 {
	if i >= len(s.Spread) {
		return math.NaN()
	}
	return s.Spread[i]
}

// formatWithSpread renders "value ±std" when a spread is recorded.
func formatWithSpread(s Series, i int) string {
	v := formatValue(valueAt(s, i))
	if s.Spread == nil {
		return v
	}
	sp := spreadAt(s, i)
	if math.IsNaN(sp) {
		return v
	}
	return v + " ±" + formatValue(sp)
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
