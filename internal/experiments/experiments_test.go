package experiments

import (
	"math"
	"strings"
	"testing"
)

func quickRunner(t testing.TB) *Runner {
	t.Helper()
	cfg := QuickConfig()
	cfg.Reps = 1
	cfg.Scale = 0.02
	cfg.GridCols = 8
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Reps: 0, Scale: 1, GridCols: 8},
		{Reps: 1, Scale: 0, GridCols: 8},
		{Reps: 1, Scale: 1, GridCols: 1},
	}
	for _, cfg := range bad {
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every panel of Fig. 6 (a–l), Fig. 7 (a–l), Fig. 8 (a–h), Table I,
	// and the five ablations must be registered.
	want := []string{"table1",
		"abl-walk", "abl-index", "abl-grid", "abl-cr", "abl-em", "abl-chain", "abl-road"}
	for _, ch := range "abcdefghijkl" {
		want = append(want, "fig6"+string(ch), "fig7"+string(ch))
	}
	for _, ch := range "abcdefgh" {
		want = append(want, "fig8"+string(ch))
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %q not registered", id)
		}
		if _, ok := Title(id); !ok {
			t.Errorf("experiment %q has no title", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.Run("fig99z"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestDistanceFigureSmoke(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Run("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 5 {
		t.Errorf("x points = %d, want 5", len(fig.X))
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Values) != len(fig.X) {
			t.Errorf("%s: %d values for %d x", s.Label, len(s.Values), len(fig.X))
		}
		for i, v := range s.Values {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("%s[%d] = %v", s.Label, i, v)
			}
		}
	}
}

func TestRealDataFigureSmoke(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Run("fig7c")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for i, v := range s.Values {
			if v <= 0 {
				t.Errorf("%s[%d] = %v, want positive distance", s.Label, i, v)
			}
		}
	}
}

func TestSizeFigureSmoke(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Run("fig8b")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2 (Prob, TBF)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Label != "Prob" && s.Label != "TBF" {
			t.Errorf("unexpected series %q", s.Label)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 5 {
		t.Fatalf("levels = %d, want 5 (0..4)", len(fig.X))
	}
	wantProb := []float64{0.394, 0.264, 0.119, 0.024, 0.001}
	var prob Series
	for _, s := range fig.Series {
		if s.Label == "per-leaf probability" {
			prob = s
		}
	}
	if prob.Label == "" {
		t.Fatal("per-leaf probability series missing")
	}
	for i, want := range wantProb {
		if math.Abs(prob.Values[i]-want) > 5e-4 {
			t.Errorf("level %d: prob %.4f, want %.3f", i, prob.Values[i], want)
		}
	}
}

func TestMeasurementCacheShared(t *testing.T) {
	// fig6a and fig6e share sweep points; the second must hit the cache.
	r := quickRunner(t)
	if _, err := r.Run("fig6a"); err != nil {
		t.Fatal(err)
	}
	n := len(r.distCache)
	if n == 0 {
		t.Fatal("no cache entries after fig6a")
	}
	if _, err := r.Run("fig6e"); err != nil {
		t.Fatal(err)
	}
	if len(r.distCache) != n {
		t.Errorf("fig6e added %d cache entries; sweeps not shared", len(r.distCache)-n)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	a := quickRunner(t)
	b := quickRunner(t)
	fa, err := a.Run("fig7a")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Run("fig7a")
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa.Series {
		if fa.Series[i].Label != fb.Series[i].Label {
			t.Fatal("series order unstable")
		}
		for j := range fa.Series[i].Values {
			// Distances are deterministic; times are not compared.
			if fa.YLabel == "total distance" && fa.Series[i].Values[j] != fb.Series[i].Values[j] {
				t.Errorf("series %s[%d] differs across identical runners", fa.Series[i].Label, j)
			}
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	text := fig.Render()
	if !strings.Contains(text, "table1") || !strings.Contains(text, "wt_i") {
		t.Errorf("Render output missing headers:\n%s", text)
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(fig.X) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(fig.X))
	}
	if !strings.HasPrefix(lines[0], "LCA level i,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	md := fig.Markdown()
	if !strings.HasPrefix(md, "| LCA level i") {
		t.Errorf("Markdown header = %q", strings.Split(md, "\n")[0])
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("comma: %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("quotes: %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("plain: %q", got)
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slower")
	}
	r := quickRunner(t)
	for _, id := range []string{"abl-grid", "abl-cr", "abl-em"} {
		fig, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 || len(fig.X) == 0 {
			t.Errorf("%s: empty figure", id)
		}
	}
}

// TestEveryExperimentRuns executes the complete registry at smoke scale:
// every panel and ablation must produce a well-formed figure whose series
// lengths match the x axis.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	r := quickRunner(t)
	for _, id := range IDs() {
		fig, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("%s: figure labelled %q", id, fig.ID)
		}
		if len(fig.X) == 0 || len(fig.Series) == 0 {
			t.Fatalf("%s: empty figure", id)
		}
		for _, s := range fig.Series {
			if len(s.Values) != len(fig.X) {
				t.Errorf("%s/%s: %d values for %d x", id, s.Label, len(s.Values), len(fig.X))
			}
			if s.Spread != nil && len(s.Spread) != len(fig.X) {
				t.Errorf("%s/%s: %d spreads for %d x", id, s.Label, len(s.Spread), len(fig.X))
			}
		}
		if _, ok := Title(id); !ok {
			t.Errorf("%s: missing title", id)
		}
	}
}
