package experiments

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func testFigure() *Figure {
	return &Figure{
		ID: "figX", Title: "Demo & test", XLabel: "|T|", YLabel: "distance",
		X: []string{"10", "20", "30"},
		Series: []Series{
			{Label: "alpha", Values: []float64{1, 2, 3}, Spread: []float64{0.1, 0.2, 0.3}},
			{Label: "beta <b>", Values: []float64{3, 2, 1}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := testFigure().SVG()
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "alpha", "figX", "&amp;", "&lt;b&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGHandlesNaNAndEmpty(t *testing.T) {
	fig := &Figure{
		ID: "nan", Title: "t", XLabel: "x", YLabel: "y",
		X: []string{"a", "b"},
		Series: []Series{
			{Label: "s", Values: []float64{math.NaN(), math.NaN()}},
		},
	}
	svg := fig.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("degenerate figure did not render")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG coordinates")
	}
	// Single-point x axis must not divide by zero.
	fig2 := &Figure{
		ID: "one", Title: "t", XLabel: "x", YLabel: "y",
		X:      []string{"only"},
		Series: []Series{{Label: "s", Values: []float64{5}}},
	}
	svg2 := fig2.SVG()
	if strings.Contains(svg2, "NaN") || strings.Contains(svg2, "Inf") {
		t.Error("single-point figure produced invalid coordinates")
	}
}

func TestSVGErrorBars(t *testing.T) {
	svg := testFigure().SVG()
	// The alpha series carries spreads; count vertical error-bar lines by
	// its stroke colour appearing in line elements beyond the grid.
	if c := strings.Count(svg, `stroke="#1f77b4" stroke-width="1"`); c != 3 {
		t.Errorf("error bars = %d, want 3", c)
	}
}

func TestSVGFromRealExperiment(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	svg := fig.SVG()
	if !strings.Contains(svg, "table1") {
		t.Error("real figure did not render")
	}
}
