package experiments

import (
	"fmt"

	"github.com/pombm/pombm/internal/core"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/stats"
	"github.com/pombm/pombm/internal/workload"
)

// Runner executes experiments under one Config, caching environments and
// per-point measurements so figure panels that share sweeps (e.g. fig6a,
// fig6e, fig6i) pay for their runs once.
type Runner struct {
	cfg  Config
	root *rng.Source

	env       *core.Env // shared: synthetic and Chengdu use the same region
	distCache map[string]distAgg
	sizeCache map[string]sizeAgg
}

// NewRunner returns a Runner for the config.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Runner{
		cfg:       cfg,
		root:      rng.New(cfg.Seed),
		distCache: map[string]distAgg{},
		sizeCache: map[string]sizeAgg{},
	}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// Run executes the experiment with the given id.
func (r *Runner) Run(id string) (*Figure, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.run(r)
}

// environment lazily builds the shared grid+HST (both workload regions are
// the 200×200 square, so one Env serves all experiments).
func (r *Runner) environment() (*core.Env, error) {
	if r.env != nil {
		return r.env, nil
	}
	env, err := core.NewEnv(workload.SyntheticRegion, r.cfg.GridCols, r.cfg.GridCols, r.root.Derive("env"))
	if err != nil {
		return nil, err
	}
	r.env = env
	return env, nil
}

// instanceSpec describes how to draw the instance for one sweep point.
type instanceSpec struct {
	// synthetic parameters (used when real is false)
	numTasks, numWorkers int
	mu, sigma            float64
	// real selects the Chengdu generator; rep r uses day (r mod 30)+1.
	real bool
}

func (s instanceSpec) key() string {
	return fmt.Sprintf("t%d-w%d-mu%g-s%g-real%v", s.numTasks, s.numWorkers, s.mu, s.sigma, s.real)
}

// instance draws the rep-th instance for the spec, already shuffled into a
// random arrival order.
func (r *Runner) instance(spec instanceSpec, rep int) (*workload.Instance, error) {
	var in *workload.Instance
	var err error
	if spec.real {
		day := rep%workload.ChengduDays + 1
		in, err = workload.Chengdu(
			workload.ChengduParams{Day: day, NumWorkers: spec.numWorkers},
			r.root.DeriveN("real-workers", rep),
		)
	} else {
		in, err = workload.Synthetic(workload.SyntheticParams{
			NumTasks:   spec.numTasks,
			NumWorkers: spec.numWorkers,
			Mu:         spec.mu,
			Sigma:      spec.sigma,
		}, r.root.DeriveN("synthetic-"+spec.key(), rep))
	}
	if err != nil {
		return nil, err
	}
	if spec.real {
		// The day's task multiset is fixed; the arrival order is the
		// random-order model's randomness.
		in.ShuffleTasks(r.root.DeriveN("order-"+spec.key(), rep))
	}
	return in, nil
}

// distAgg aggregates the three Fig. 6/7 metrics over repetitions.
type distAgg struct {
	distance    float64 // mean total true distance
	distanceStd float64 // sample std dev of the total distance
	seconds     float64 // mean total assignment time
	megabytes   float64 // mean retained MB
}

// distance-objective metrics, one per figure row.
type metricKind int

const (
	metricDistance metricKind = iota
	metricTime
	metricMemory
	metricSize
)

func (m metricKind) label() string {
	switch m {
	case metricDistance:
		return "total distance"
	case metricTime:
		return "running time (secs)"
	case metricMemory:
		return "memory usage (MB)"
	case metricSize:
		return "matching size"
	}
	return "?"
}

func (a distAgg) metric(m metricKind) float64 {
	switch m {
	case metricDistance:
		return a.distance
	case metricTime:
		return a.seconds
	case metricMemory:
		return a.megabytes
	}
	return 0
}

// distancePoint measures one (algorithm, spec, ε) sweep point, cached.
func (r *Runner) distancePoint(alg core.Algorithm, spec instanceSpec, eps float64) (distAgg, error) {
	key := fmt.Sprintf("%s|%s|eps%g", alg, spec.key(), eps)
	if agg, ok := r.distCache[key]; ok {
		return agg, nil
	}
	env, err := r.environment()
	if err != nil {
		return distAgg{}, err
	}
	opt := core.Options{Epsilon: eps, UseTrie: r.cfg.UseTrie}
	var agg distAgg
	var dist stats.Accumulator
	for rep := 0; rep < r.cfg.Reps; rep++ {
		inst, err := r.instance(spec, rep)
		if err != nil {
			return distAgg{}, err
		}
		res, err := core.Run(alg, env, inst, opt, r.root.DeriveN("run-"+key, rep))
		if err != nil {
			return distAgg{}, err
		}
		dist.Add(res.TotalDistance)
		agg.seconds += res.AssignTime.Seconds()
		agg.megabytes += float64(res.MemoryBytes) / 1e6
	}
	n := float64(r.cfg.Reps)
	agg.distance = dist.Mean()
	agg.distanceStd = dist.Std()
	agg.seconds /= n
	agg.megabytes /= n
	r.distCache[key] = agg
	return agg, nil
}

// sizeAgg aggregates the Fig. 8 metrics.
type sizeAgg struct {
	size    float64
	sizeStd float64
	seconds float64
}

// sizePoint measures one case-study sweep point, cached.
func (r *Runner) sizePoint(alg core.Algorithm, spec instanceSpec, eps float64, reach [2]float64) (sizeAgg, error) {
	key := fmt.Sprintf("size|%s|%s|eps%g|reach%v", alg, spec.key(), eps, reach)
	if agg, ok := r.sizeCache[key]; ok {
		return agg, nil
	}
	env, err := r.environment()
	if err != nil {
		return sizeAgg{}, err
	}
	opt := core.Options{Epsilon: eps, UseTrie: r.cfg.UseTrie}
	var agg sizeAgg
	var size stats.Accumulator
	for rep := 0; rep < r.cfg.Reps; rep++ {
		inst, err := r.instance(spec, rep)
		if err != nil {
			return sizeAgg{}, err
		}
		reaches := workload.Reaches(len(inst.Workers), reach[0], reach[1],
			r.root.DeriveN("reach-"+key, rep))
		res, err := core.RunSize(alg, env, inst, reaches, opt, r.root.DeriveN("run-"+key, rep))
		if err != nil {
			return sizeAgg{}, err
		}
		size.Add(float64(res.MatchingSize))
		agg.seconds += res.AssignTime.Seconds()
	}
	agg.size = size.Mean()
	agg.sizeStd = size.Std()
	agg.seconds /= float64(r.cfg.Reps)
	r.sizeCache[key] = agg
	return agg, nil
}
