package experiments

import (
	"fmt"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/roadnet"
	"github.com/pombm/pombm/internal/workload"
)

func init() {
	register("abl-road", "Ablation: HST built on the road-network metric vs the Euclidean metric", runAblRoad)
}

// runAblRoad evaluates task assignment when travel follows streets. A
// Manhattan-style network is generated over the synthetic region; the
// predefined points are its intersections. Two HSTs are built — one on
// network shortest-path distances (possible because Alg. 1 only consumes a
// metric), one on straight-line distances — and TBF runs on each. Matchings
// are scored by true *road* distance, plus Lap-GR as a planar baseline
// scored the same way.
func runAblRoad(r *Runner) (*Figure, error) {
	src := r.root.Derive("abl-road")
	const gridCols = 24
	network, err := roadnet.Manhattan(workload.SyntheticRegion, gridCols, gridCols, 0.6, 0.12, src.Derive("net"))
	if err != nil {
		return nil, err
	}
	nodes := make([]int, network.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	metric, err := network.MetricAmong(nodes)
	if err != nil {
		return nil, err
	}
	roadTree, err := hst.BuildMetric(metric.Len(), metric.Dist, src.Derive("road-tree"))
	if err != nil {
		return nil, err
	}
	eucTree, err := hst.Build(network.Positions(), src.Derive("euc-tree"))
	if err != nil {
		return nil, err
	}
	snap := geo.NewKDTree(network.Positions())

	fig := &Figure{
		ID: "abl-road", Title: "Task assignment on a road network",
		XLabel: "ε", YLabel: "total road distance",
	}
	road := Series{Label: "TBF, HST on road metric"}
	euc := Series{Label: "TBF, HST on Euclidean metric"}
	lap := Series{Label: "Lap-GR (road cost)"}

	spec := instanceSpec{
		numTasks: r.cfg.scaled(workload.DefaultNumTasks), numWorkers: r.cfg.scaled(workload.DefaultNumWorkers),
		mu: workload.DefaultMu, sigma: workload.DefaultSigma,
	}
	for _, eps := range workload.Epsilons {
		fig.X = append(fig.X, fmt.Sprint(eps))
		var sumRoad, sumEuc, sumLap float64
		for rep := 0; rep < r.cfg.Reps; rep++ {
			inst, err := r.instance(spec, rep)
			if err != nil {
				return nil, err
			}
			// True node of every agent: nearest intersection.
			taskNode := make([]int, len(inst.Tasks))
			for i, p := range inst.Tasks {
				taskNode[i], _ = snap.Nearest(p)
			}
			workerNode := make([]int, len(inst.Workers))
			for i, p := range inst.Workers {
				workerNode[i], _ = snap.Nearest(p)
			}
			repSrc := r.root.DeriveN(fmt.Sprintf("abl-road-%g", eps), rep)

			d, err := runRoadTBF(roadTree, metric, taskNode, workerNode, eps, repSrc.Derive("road"))
			if err != nil {
				return nil, err
			}
			sumRoad += d
			d, err = runRoadTBF(eucTree, metric, taskNode, workerNode, eps, repSrc.Derive("euc"))
			if err != nil {
				return nil, err
			}
			sumEuc += d
			sumLap += runRoadLapGR(network, metric, snap, inst, taskNode, workerNode, eps, repSrc.Derive("lap"))
		}
		n := float64(r.cfg.Reps)
		road.Values = append(road.Values, sumRoad/n)
		euc.Values = append(euc.Values, sumEuc/n)
		lap.Values = append(lap.Values, sumLap/n)
	}
	fig.Series = []Series{road, euc, lap}
	return fig, nil
}

// runRoadTBF obfuscates the agents' intersections on the given tree and
// matches with HST-Greedy; the returned total is in road distance.
func runRoadTBF(tree *hst.Tree, metric *roadnet.Metric, taskNode, workerNode []int, eps float64, src *rng.Source) (float64, error) {
	mech, err := privacy.NewHSTMechanism(tree, eps)
	if err != nil {
		return 0, err
	}
	codes := make([]hst.Code, len(workerNode))
	for i, node := range workerNode {
		codes[i] = mech.Obfuscate(tree.CodeOf(node), src)
	}
	g := match.NewHSTGreedyScan(tree, codes)
	var total float64
	for _, node := range taskNode {
		code := mech.Obfuscate(tree.CodeOf(node), src)
		if w := g.Assign(code); w != match.NoWorker {
			total += metric.Dist(node, workerNode[w])
		}
	}
	return total, nil
}

// runRoadLapGR runs the planar Laplace + Euclidean greedy baseline but
// scores matched pairs by road distance between their true intersections.
func runRoadLapGR(network *roadnet.Graph, metric *roadnet.Metric, snap *geo.KDTree,
	inst *workload.Instance, taskNode, workerNode []int, eps float64, src *rng.Source) float64 {
	lap, err := privacy.NewPlanarLaplace(eps)
	if err != nil {
		return 0
	}
	reportedW := make([]geo.Point, len(inst.Workers))
	for i, w := range inst.Workers {
		reportedW[i] = lap.ObfuscatePoint(w, src)
	}
	g := match.NewEuclideanGreedy(reportedW)
	var total float64
	for i, t := range inst.Tasks {
		if w := g.Assign(lap.ObfuscatePoint(t, src)); w != match.NoWorker {
			total += metric.Dist(taskNode[i], workerNode[w])
		}
	}
	return total
}
