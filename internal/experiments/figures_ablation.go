package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/pombm/pombm/internal/core"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/match"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/workload"
)

// paperExamplePoints are the Example 1 coordinates.
func paperExamplePoints() []geo.Point {
	return []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
}

func init() {
	register("abl-walk", "Ablation: sampler cost — Alg. 2 enumeration vs direct vs Alg. 3 random walk", runAblWalk)
	register("abl-index", "Ablation: matcher data structures — scans vs indexes (HST trie, Euclidean buckets)", runAblIndex)
	register("abl-grid", "Ablation: predefined-grid resolution vs TBF distance", runAblGrid)
	register("abl-cr", "Ablation: empirical competitive ratio vs offline optimum", runAblCR)
	register("abl-em", "Ablation: HST mechanism vs grid exponential mechanism", runAblEM)
	register("abl-chain", "Ablation: HST-Greedy (Alg. 4) vs Bansal-style chain matching", runAblChain)
}

// runAblChain swaps the greedy matcher of TBF for the chain rule of Bansal
// et al. [19] (route through matched workers until an unmatched one is
// found) and compares total true distance across privacy budgets.
func runAblChain(r *Runner) (*Figure, error) {
	env, err := r.environment()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "abl-chain", Title: "Tree matchers on TBF-obfuscated leaves",
		XLabel: "ε", YLabel: "total distance",
	}
	greedy := Series{Label: "HST-Greedy (Alg. 4)"}
	chain := Series{Label: "HST-Chain (Bansal et al.)"}
	spec := instanceSpec{
		numTasks: r.cfg.scaled(workload.DefaultNumTasks), numWorkers: r.cfg.scaled(workload.DefaultNumWorkers),
		mu: workload.DefaultMu, sigma: workload.DefaultSigma,
	}
	for _, eps := range workload.Epsilons {
		fig.X = append(fig.X, fmt.Sprint(eps))
		agg, err := r.distancePoint(core.AlgTBF, spec, eps)
		if err != nil {
			return nil, err
		}
		greedy.Values = append(greedy.Values, agg.distance)

		mech, err := privacy.NewHSTMechanism(env.Tree, eps)
		if err != nil {
			return nil, err
		}
		var total float64
		for rep := 0; rep < r.cfg.Reps; rep++ {
			inst, err := r.instance(spec, rep)
			if err != nil {
				return nil, err
			}
			src := r.root.DeriveN(fmt.Sprintf("abl-chain-%g", eps), rep)
			codes := make([]hst.Code, len(inst.Workers))
			for i, w := range inst.Workers {
				codes[i] = mech.Obfuscate(env.SnapCode(w), src)
			}
			g, err := match.NewHSTChain(env.Tree, codes)
			if err != nil {
				return nil, err
			}
			for i, task := range inst.Tasks {
				code := mech.Obfuscate(env.SnapCode(task), src)
				if w := g.Assign(code); w != match.NoWorker {
					total += inst.Tasks[i].Dist(inst.Workers[w])
				}
			}
		}
		chain.Values = append(chain.Values, total/float64(r.cfg.Reps))
	}
	fig.Series = []Series{greedy, chain}
	return fig, nil
}

// runAblWalk times the three samplers on the small Example 1 tree (where
// literal enumeration is feasible) and on the experiment grid tree (where
// it is not — reported as NaN).
func runAblWalk(r *Runner) (*Figure, error) {
	small, err := paperExampleTree()
	if err != nil {
		return nil, err
	}
	env, err := r.environment()
	if err != nil {
		return nil, err
	}
	big := env.Tree

	fig := &Figure{
		ID:     "abl-walk",
		Title:  "Sampler cost (ns/op)",
		XLabel: "tree",
		YLabel: "ns per obfuscation",
		X:      []string{fmt.Sprintf("example (N=%d, D=%d)", small.NumPoints(), small.Depth()), fmt.Sprintf("grid (N=%d, D=%d)", big.NumPoints(), big.Depth())},
	}
	eps := workload.DefaultEpsilon
	const samples = 20000
	timeIt := func(tree *hst.Tree, mode string) (float64, error) {
		mech, err := privacy.NewHSTMechanism(tree, eps)
		if err != nil {
			return 0, err
		}
		if mode == "enumerate" && tree.TotalLeaves() > privacy.EnumerateLimit {
			return math.NaN(), nil
		}
		src := r.root.Derive("abl-walk-" + mode + fmt.Sprint(tree.Depth()))
		x := tree.CodeOf(0)
		start := time.Now()
		for i := 0; i < samples; i++ {
			switch mode {
			case "enumerate":
				if _, err := mech.ObfuscateEnumerate(x, src); err != nil {
					return 0, err
				}
			case "direct":
				mech.ObfuscateDirect(x, src)
			default:
				mech.ObfuscateWalk(x, src)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / samples, nil
	}
	for _, mode := range []string{"enumerate", "direct", "walk"} {
		s := Series{Label: mode}
		for _, tree := range []*hst.Tree{small, big} {
			v, err := timeIt(tree, mode)
			if err != nil {
				return nil, err
			}
			s.Values = append(s.Values, v)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// runAblIndex compares total assignment time of the scan vs indexed
// implementations of both matchers — HST-Greedy (trie) and Euclidean
// greedy (bucketed dynamic NN) — across worker-set sizes. Each pair is
// assignment-for-assignment identical; only the data structure changes.
func runAblIndex(r *Runner) (*Figure, error) {
	env, err := r.environment()
	if err != nil {
		return nil, err
	}
	sizes := []int{2000, 4000, 8000, 16000}
	fig := &Figure{
		ID: "abl-index", Title: "Matcher data structures (identical assignments per pair)",
		XLabel: "|W|", YLabel: "assignment time (secs)",
	}
	scan := Series{Label: "HST scan O(D·n)"}
	trie := Series{Label: "HST trie O(D)"}
	escan := Series{Label: "Euclid scan O(n)"}
	eidx := Series{Label: "Euclid bucket index"}
	for _, nw := range sizes {
		n := r.cfg.scaled(nw)
		fig.X = append(fig.X, fmt.Sprint(n))
		spec := instanceSpec{
			numTasks: r.cfg.scaled(workload.DefaultNumTasks), numWorkers: n,
			mu: workload.DefaultMu, sigma: workload.DefaultSigma,
		}
		inst, err := r.instance(spec, 0)
		if err != nil {
			return nil, err
		}
		for _, useTrie := range []bool{false, true} {
			opt := core.Options{Epsilon: workload.DefaultEpsilon, UseTrie: useTrie}
			res, err := core.RunTBF(env, inst, opt, r.root.DeriveN("abl-index", n))
			if err != nil {
				return nil, err
			}
			if useTrie {
				trie.Values = append(trie.Values, res.AssignTime.Seconds())
			} else {
				scan.Values = append(scan.Values, res.AssignTime.Seconds())
			}
		}
		// Euclidean pair on identical Laplace-obfuscated reports.
		lap, err := privacy.NewPlanarLaplace(workload.DefaultEpsilon)
		if err != nil {
			return nil, err
		}
		src := r.root.DeriveN("abl-index-euclid", n)
		reportedW := make([]geo.Point, len(inst.Workers))
		for i, w := range inst.Workers {
			reportedW[i] = lap.ObfuscatePoint(w, src)
		}
		reportedT := make([]geo.Point, len(inst.Tasks))
		for i, t := range inst.Tasks {
			reportedT[i] = lap.ObfuscatePoint(t, src)
		}
		g := match.NewEuclideanGreedy(reportedW)
		start := time.Now()
		for _, t := range reportedT {
			g.Assign(t)
		}
		escan.Values = append(escan.Values, time.Since(start).Seconds())
		gi, err := match.NewEuclideanGreedyIndexed(workload.SyntheticRegion, reportedW)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for _, t := range reportedT {
			gi.Assign(t)
		}
		eidx.Values = append(eidx.Values, time.Since(start).Seconds())
	}
	fig.Series = []Series{scan, trie, escan, eidx}
	return fig, nil
}

// runAblGrid sweeps the predefined-grid resolution: finer grids reduce
// snapping error but deepen the tree (longer codes, more noise levels).
func runAblGrid(r *Runner) (*Figure, error) {
	cols := []int{8, 16, 32, 64}
	fig := &Figure{
		ID: "abl-grid", Title: "Grid resolution",
		XLabel: "grid", YLabel: "value",
	}
	dist := Series{Label: "TBF total distance"}
	depth := Series{Label: "tree depth D"}
	build := Series{Label: "env build time (secs)"}
	spec := instanceSpec{
		numTasks: r.cfg.scaled(workload.DefaultNumTasks), numWorkers: r.cfg.scaled(workload.DefaultNumWorkers),
		mu: workload.DefaultMu, sigma: workload.DefaultSigma,
	}
	inst, err := r.instance(spec, 0)
	if err != nil {
		return nil, err
	}
	for _, c := range cols {
		fig.X = append(fig.X, fmt.Sprintf("%dx%d", c, c))
		start := time.Now()
		env, err := core.NewEnv(workload.SyntheticRegion, c, c, r.root.DeriveN("abl-grid", c))
		if err != nil {
			return nil, err
		}
		build.Values = append(build.Values, time.Since(start).Seconds())
		res, err := core.RunTBF(env, inst, core.Options{Epsilon: workload.DefaultEpsilon}, r.root.DeriveN("abl-grid-run", c))
		if err != nil {
			return nil, err
		}
		dist.Values = append(dist.Values, res.TotalDistance)
		depth.Values = append(depth.Values, float64(env.Tree.Depth()))
	}
	fig.Series = []Series{dist, depth, build}
	return fig, nil
}

// runAblCR measures empirical competitive ratios against the offline
// optimal matching on true locations (Hungarian), for TBF and for a
// non-private Euclidean greedy (the privacy-free reference).
func runAblCR(r *Runner) (*Figure, error) {
	env, err := r.environment()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "abl-cr", Title: "Empirical competitive ratio (vs offline optimum on true locations)",
		XLabel: "k = |T|", YLabel: "E[d(M)] / d(MOPT)",
	}
	tbf := Series{Label: "TBF (ε=0.6)"}
	plain := Series{Label: "greedy, no privacy"}
	for _, k := range []int{50, 100, 200, 400} {
		fig.X = append(fig.X, fmt.Sprint(k))
		var rTBF, rPlain float64
		for rep := 0; rep < r.cfg.Reps; rep++ {
			spec := instanceSpec{
				numTasks: k, numWorkers: k * 3 / 2,
				mu: workload.DefaultMu, sigma: workload.DefaultSigma,
			}
			inst, err := r.instance(spec, rep)
			if err != nil {
				return nil, err
			}
			_, opt, err := match.Optimal(len(inst.Tasks), len(inst.Workers), func(t, w int) float64 {
				return inst.Tasks[t].Dist(inst.Workers[w])
			})
			if err != nil {
				return nil, err
			}
			if opt == 0 {
				continue
			}
			res, err := core.RunTBF(env, inst, core.Options{Epsilon: 0.6}, r.root.DeriveN("abl-cr-tbf", k*100+rep))
			if err != nil {
				return nil, err
			}
			rTBF += res.TotalDistance / opt
			// Privacy-free greedy: match on true locations directly.
			g := match.NewEuclideanGreedy(inst.Workers)
			var total float64
			for _, task := range inst.Tasks {
				if w := g.Assign(task); w != match.NoWorker {
					total += task.Dist(inst.Workers[w])
				}
			}
			rPlain += total / opt
		}
		tbf.Values = append(tbf.Values, rTBF/float64(r.cfg.Reps))
		plain.Values = append(plain.Values, rPlain/float64(r.cfg.Reps))
	}
	fig.Series = []Series{tbf, plain}
	return fig, nil
}

// runAblEM compares the HST mechanism against a grid exponential mechanism
// feeding the same HST-Greedy matcher, across privacy budgets.
func runAblEM(r *Runner) (*Figure, error) {
	env, err := r.environment()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "abl-em", Title: "Obfuscation mechanisms before HST-Greedy",
		XLabel: "ε", YLabel: "total distance",
	}
	tbf := Series{Label: "HST mechanism (TBF)"}
	em := Series{Label: "grid exponential mechanism"}
	spec := instanceSpec{
		numTasks: r.cfg.scaled(workload.DefaultNumTasks), numWorkers: r.cfg.scaled(workload.DefaultNumWorkers),
		mu: workload.DefaultMu, sigma: workload.DefaultSigma,
	}
	for _, eps := range workload.Epsilons {
		fig.X = append(fig.X, fmt.Sprint(eps))
		agg, err := r.distancePoint(core.AlgTBF, spec, eps)
		if err != nil {
			return nil, err
		}
		tbf.Values = append(tbf.Values, agg.distance)

		mech, err := privacy.NewGridExponential(eps, env.Grid.Points())
		if err != nil {
			return nil, err
		}
		var total float64
		for rep := 0; rep < r.cfg.Reps; rep++ {
			inst, err := r.instance(spec, rep)
			if err != nil {
				return nil, err
			}
			src := r.root.DeriveN(fmt.Sprintf("abl-em-%g", eps), rep)
			codes := make([]hst.Code, len(inst.Workers))
			for i, w := range inst.Workers {
				codes[i] = env.Tree.CodeOf(mech.ObfuscateIndex(w, src))
			}
			g := match.NewHSTGreedyScan(env.Tree, codes)
			for i, task := range inst.Tasks {
				code := env.Tree.CodeOf(mech.ObfuscateIndex(task, src))
				if w := g.Assign(code); w != match.NoWorker {
					total += inst.Tasks[i].Dist(inst.Workers[w])
				}
			}
		}
		em.Values = append(em.Values, total/float64(r.cfg.Reps))
	}
	fig.Series = []Series{tbf, em}
	return fig, nil
}
