package experiments

import (
	"fmt"

	"github.com/pombm/pombm/internal/core"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/workload"
)

// distAlgs are the compared algorithms of Fig. 6/7, in the paper's order.
var distAlgs = []core.Algorithm{core.AlgLapGR, core.AlgLapHG, core.AlgTBF}

// sizeAlgs are the compared algorithms of Fig. 8.
var sizeAlgs = []core.Algorithm{core.AlgProb, core.AlgTBF}

// distSweep is one x axis of the distance-objective evaluation.
type distSweep struct {
	xlabel string
	xs     []string
	specs  []instanceSpec
	eps    []float64
}

// the four Table II sweeps plus the ε, scalability and real-data sweeps.
func sweepTasks(c Config) distSweep {
	s := distSweep{xlabel: "|T|"}
	for _, nt := range workload.SyntheticTaskCounts {
		s.xs = append(s.xs, fmt.Sprint(nt))
		s.specs = append(s.specs, instanceSpec{
			numTasks: c.scaled(nt), numWorkers: c.scaled(workload.DefaultNumWorkers),
			mu: workload.DefaultMu, sigma: workload.DefaultSigma,
		})
		s.eps = append(s.eps, workload.DefaultEpsilon)
	}
	return s
}

func sweepWorkers(c Config) distSweep {
	s := distSweep{xlabel: "|W|"}
	for _, nw := range workload.SyntheticWorkerCounts {
		s.xs = append(s.xs, fmt.Sprint(nw))
		s.specs = append(s.specs, instanceSpec{
			numTasks: c.scaled(workload.DefaultNumTasks), numWorkers: c.scaled(nw),
			mu: workload.DefaultMu, sigma: workload.DefaultSigma,
		})
		s.eps = append(s.eps, workload.DefaultEpsilon)
	}
	return s
}

func sweepMu(c Config) distSweep {
	s := distSweep{xlabel: "µ"}
	for _, mu := range workload.SyntheticMus {
		s.xs = append(s.xs, fmt.Sprint(mu))
		s.specs = append(s.specs, instanceSpec{
			numTasks: c.scaled(workload.DefaultNumTasks), numWorkers: c.scaled(workload.DefaultNumWorkers),
			mu: mu, sigma: workload.DefaultSigma,
		})
		s.eps = append(s.eps, workload.DefaultEpsilon)
	}
	return s
}

func sweepSigma(c Config) distSweep {
	s := distSweep{xlabel: "σ"}
	for _, sigma := range workload.SyntheticSigmas {
		s.xs = append(s.xs, fmt.Sprint(sigma))
		s.specs = append(s.specs, instanceSpec{
			numTasks: c.scaled(workload.DefaultNumTasks), numWorkers: c.scaled(workload.DefaultNumWorkers),
			mu: workload.DefaultMu, sigma: sigma,
		})
		s.eps = append(s.eps, workload.DefaultEpsilon)
	}
	return s
}

func sweepEps(c Config) distSweep {
	s := distSweep{xlabel: "ε"}
	for _, eps := range workload.Epsilons {
		s.xs = append(s.xs, fmt.Sprint(eps))
		s.specs = append(s.specs, instanceSpec{
			numTasks: c.scaled(workload.DefaultNumTasks), numWorkers: c.scaled(workload.DefaultNumWorkers),
			mu: workload.DefaultMu, sigma: workload.DefaultSigma,
		})
		s.eps = append(s.eps, eps)
	}
	return s
}

func sweepScalability(c Config) distSweep {
	s := distSweep{xlabel: "|T|=|W|"}
	for _, n := range workload.ScalabilitySizes {
		s.xs = append(s.xs, fmt.Sprint(n))
		s.specs = append(s.specs, instanceSpec{
			numTasks: c.scaled(n), numWorkers: c.scaled(n),
			mu: workload.DefaultMu, sigma: workload.DefaultSigma,
		})
		s.eps = append(s.eps, workload.DefaultEpsilon)
	}
	return s
}

func sweepRealWorkers(c Config) distSweep {
	s := distSweep{xlabel: "|W|"}
	for _, nw := range workload.RealWorkerCounts {
		s.xs = append(s.xs, fmt.Sprint(nw))
		s.specs = append(s.specs, instanceSpec{numWorkers: c.scaled(nw), real: true})
		s.eps = append(s.eps, workload.DefaultEpsilon)
	}
	return s
}

func sweepRealEps(c Config) distSweep {
	s := distSweep{xlabel: "ε"}
	for _, eps := range workload.Epsilons {
		s.xs = append(s.xs, fmt.Sprint(eps))
		s.specs = append(s.specs, instanceSpec{numWorkers: c.scaled(workload.DefaultRealNumWorkers), real: true})
		s.eps = append(s.eps, eps)
	}
	return s
}

// runDistFigure materialises one Fig. 6/7 panel.
func runDistFigure(r *Runner, id, title string, metric metricKind, mkSweep func(Config) distSweep) (*Figure, error) {
	sweep := mkSweep(r.cfg)
	fig := &Figure{ID: id, Title: title, XLabel: sweep.xlabel, YLabel: metric.label(), X: sweep.xs}
	for _, alg := range distAlgs {
		series := Series{Label: string(alg)}
		for i := range sweep.specs {
			agg, err := r.distancePoint(alg, sweep.specs[i], sweep.eps[i])
			if err != nil {
				return nil, err
			}
			series.Values = append(series.Values, agg.metric(metric))
			if metric == metricDistance {
				series.Spread = append(series.Spread, agg.distanceStd)
			}
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// runSizeFigure materialises one Fig. 8 panel.
func runSizeFigure(r *Runner, id, title string, metric metricKind, mkSweep func(Config) distSweep, reach [2]float64) (*Figure, error) {
	sweep := mkSweep(r.cfg)
	fig := &Figure{ID: id, Title: title, XLabel: sweep.xlabel, YLabel: metric.label(), X: sweep.xs}
	for _, alg := range sizeAlgs {
		series := Series{Label: string(alg)}
		for i := range sweep.specs {
			agg, err := r.sizePoint(alg, sweep.specs[i], sweep.eps[i], reach)
			if err != nil {
				return nil, err
			}
			switch metric {
			case metricSize:
				series.Values = append(series.Values, agg.size)
				series.Spread = append(series.Spread, agg.sizeStd)
			case metricTime:
				series.Values = append(series.Values, agg.seconds)
			default:
				return nil, fmt.Errorf("experiments: size figures support size/time, not %v", metric)
			}
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

func init() {
	type panel struct {
		id, title string
		metric    metricKind
		sweep     func(Config) distSweep
	}
	panels := []panel{
		// Fig. 6: Table II sweeps × {distance, time, memory}.
		{"fig6a", "Total Distance of Varying |T| (synthetic)", metricDistance, sweepTasks},
		{"fig6b", "Total Distance of Varying |W| (synthetic)", metricDistance, sweepWorkers},
		{"fig6c", "Total Distance of Varying µ (synthetic)", metricDistance, sweepMu},
		{"fig6d", "Total Distance of Varying σ (synthetic)", metricDistance, sweepSigma},
		{"fig6e", "Running Time of Varying |T| (synthetic)", metricTime, sweepTasks},
		{"fig6f", "Running Time of Varying |W| (synthetic)", metricTime, sweepWorkers},
		{"fig6g", "Running Time of Varying µ (synthetic)", metricTime, sweepMu},
		{"fig6h", "Running Time of Varying σ (synthetic)", metricTime, sweepSigma},
		{"fig6i", "Memory of Varying |T| (synthetic)", metricMemory, sweepTasks},
		{"fig6j", "Memory of Varying |W| (synthetic)", metricMemory, sweepWorkers},
		{"fig6k", "Memory of Varying µ (synthetic)", metricMemory, sweepMu},
		{"fig6l", "Memory of Varying σ (synthetic)", metricMemory, sweepSigma},
		// Fig. 7: ε + scalability (synthetic), |W| + ε (real).
		{"fig7a", "Total Distance of Varying ε (synthetic)", metricDistance, sweepEps},
		{"fig7b", "Total Distance of Scalability (synthetic)", metricDistance, sweepScalability},
		{"fig7c", "Total Distance of Varying |W| (real)", metricDistance, sweepRealWorkers},
		{"fig7d", "Total Distance of Varying ε (real)", metricDistance, sweepRealEps},
		{"fig7e", "Running Time of Varying ε (synthetic)", metricTime, sweepEps},
		{"fig7f", "Running Time of Scalability (synthetic)", metricTime, sweepScalability},
		{"fig7g", "Running Time of Varying |W| (real)", metricTime, sweepRealWorkers},
		{"fig7h", "Running Time of Varying ε (real)", metricTime, sweepRealEps},
		{"fig7i", "Memory of Varying ε (synthetic)", metricMemory, sweepEps},
		{"fig7j", "Memory of Scalability (synthetic)", metricMemory, sweepScalability},
		{"fig7k", "Memory of Varying |W| (real)", metricMemory, sweepRealWorkers},
		{"fig7l", "Memory of Varying ε (real)", metricMemory, sweepRealEps},
	}
	for _, p := range panels {
		p := p
		register(p.id, p.title, func(r *Runner) (*Figure, error) {
			return runDistFigure(r, p.id, p.title, p.metric, p.sweep)
		})
	}

	sizePanels := []struct {
		id, title string
		metric    metricKind
		sweep     func(Config) distSweep
		reach     [2]float64
	}{
		{"fig8a", "Matching Size of Varying |W| (synthetic)", metricSize, sweepWorkers, workload.SyntheticReach},
		{"fig8b", "Matching Size of Varying ε (synthetic)", metricSize, sweepEps, workload.SyntheticReach},
		{"fig8c", "Matching Size of Varying |W| (real)", metricSize, sweepRealWorkers, workload.RealReach},
		{"fig8d", "Matching Size of Varying ε (real)", metricSize, sweepRealEps, workload.RealReach},
		{"fig8e", "Running Time of Varying |W| (synthetic, size)", metricTime, sweepWorkers, workload.SyntheticReach},
		{"fig8f", "Running Time of Varying ε (synthetic, size)", metricTime, sweepEps, workload.SyntheticReach},
		{"fig8g", "Running Time of Varying |W| (real, size)", metricTime, sweepRealWorkers, workload.RealReach},
		{"fig8h", "Running Time of Varying ε (real, size)", metricTime, sweepRealEps, workload.RealReach},
	}
	for _, p := range sizePanels {
		p := p
		register(p.id, p.title, func(r *Runner) (*Figure, error) {
			return runSizeFigure(r, p.id, p.title, p.metric, p.sweep, p.reach)
		})
	}

	register("table1", "Probability of leaf nodes being the obfuscated nodes (ε=0.1, Example 1 tree)", runTable1)
}

// runTable1 reproduces Table I: per-level weights and per-leaf obfuscation
// probabilities on the Example 1 tree at ε = 0.1.
func runTable1(r *Runner) (*Figure, error) {
	tree, err := paperExampleTree()
	if err != nil {
		return nil, err
	}
	mech, err := privacy.NewHSTMechanism(tree, 0.1)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "table1",
		Title:  "Probability of leaf nodes being the obfuscated nodes (ε=0.1)",
		XLabel: "LCA level i",
		YLabel: "value",
	}
	var wt, prob, count Series
	wt.Label, prob.Label, count.Label = "wt_i", "per-leaf probability", "|L_i|"
	for i := 0; i <= tree.Depth(); i++ {
		fig.X = append(fig.X, fmt.Sprint(i))
		wt.Values = append(wt.Values, mech.Weight(i))
		prob.Values = append(prob.Values, mech.Weight(i)/mech.TotalWeight())
		count.Values = append(count.Values, tree.SiblingSetSize(i))
	}
	fig.Series = []Series{wt, prob, count}
	return fig, nil
}

// paperExampleTree rebuilds the worked example of Sec. III (Fig. 2/3).
func paperExampleTree() (*hst.Tree, error) {
	pts := paperExamplePoints()
	return hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
}
