package numeric

import (
	"math"
	"testing"
)

func TestAdaptiveSimpsonPolynomials(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 5, 15},
		{"linear", func(x float64) float64 { return x }, 0, 4, 8},
		{"cubic", func(x float64) float64 { return x * x * x }, 0, 2, 4},
		{"sin over period", math.Sin, 0, 2 * math.Pi, 0},
		{"gaussian-ish", func(x float64) float64 { return math.Exp(-x * x) }, -8, 8, math.Sqrt(math.Pi)},
		{"exp decay", func(x float64) float64 { return math.Exp(-x) }, 0, 50, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AdaptiveSimpson(tt.f, tt.a, tt.b, 1e-10)
			if math.Abs(got-tt.want) > 1e-7 {
				t.Errorf("∫ = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAdaptiveSimpsonOrientation(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	fwd := AdaptiveSimpson(f, 0, 3, 1e-10)
	rev := AdaptiveSimpson(f, 3, 0, 1e-10)
	if math.Abs(fwd+rev) > 1e-9 {
		t.Errorf("reversed interval: %v vs %v", fwd, rev)
	}
	if AdaptiveSimpson(f, 2, 2, 1e-10) != 0 {
		t.Error("empty interval not 0")
	}
}

func TestLaplaceRadialDensityIntegratesToOne(t *testing.T) {
	// The planar Laplace radial density ε²ρe^{-ερ} must integrate to 1
	// (this is the kernel the Prob baseline integrates against).
	for _, eps := range []float64{0.2, 0.6, 1.0, 2.0} {
		f := func(rho float64) float64 { return eps * eps * rho * math.Exp(-eps*rho) }
		got := AdaptiveSimpson(f, 0, 200/eps, 1e-12)
		if math.Abs(got-1) > 1e-6 {
			t.Errorf("ε=%v: ∫ radial density = %v", eps, got)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("empty = %v", got)
	}
	if got := LogSumExp([]float64{0, 0}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("log(2) case = %v", got)
	}
	// Stability: huge magnitudes that would overflow naive exp.
	got := LogSumExp([]float64{1000, 1000, 1000})
	want := 1000 + math.Log(3)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("large inputs = %v, want %v", got, want)
	}
	got = LogSumExp([]float64{-5000, -5001})
	want = -5000 + math.Log(1+math.Exp(-1))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("small inputs = %v, want %v", got, want)
	}
}
