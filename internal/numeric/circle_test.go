package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestArcFractionExtremes(t *testing.T) {
	tests := []struct {
		name      string
		rho, d, r float64
		want      float64
	}{
		{"circle inside disc", 1, 1, 3, 1},
		{"circle far outside", 1, 10, 2, 0},
		{"disc inside annulus gap", 5, 0.5, 1, 0},
		{"degenerate circle inside", 0, 1, 2, 1},
		{"degenerate circle outside", 0, 5, 2, 0},
		{"centered circle inside", 2, 0, 3, 1},
		{"centered circle outside", 4, 0, 3, 0},
		{"negative input", -1, 1, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ArcFraction(tt.rho, tt.d, tt.r); got != tt.want {
				t.Errorf("ArcFraction(%v,%v,%v) = %v, want %v", tt.rho, tt.d, tt.r, got, tt.want)
			}
		})
	}
}

func TestArcFractionHalf(t *testing.T) {
	// When rho² + d² = r²+... pick symmetric case: d = r and rho small:
	// the chord through the origin's side. For rho→0 limit with d = r the
	// point sits on the boundary; exactly half the tiny circle is inside.
	got := ArcFraction(1e-9, 5, 5)
	if math.Abs(got-0.5) > 1e-3 {
		t.Errorf("boundary half-coverage = %v, want ~0.5", got)
	}
}

func TestArcFractionMonotoneInR(t *testing.T) {
	// Growing the disc can only cover more of the circle.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		rho := rng.Float64() * 10
		d := rng.Float64() * 10
		prev := 0.0
		for r := 0.0; r <= 25; r += 0.25 {
			cur := ArcFraction(rho, d, r)
			if cur+1e-12 < prev {
				t.Fatalf("ArcFraction not monotone: rho=%v d=%v r=%v: %v < %v", rho, d, r, cur, prev)
			}
			prev = cur
		}
		if prev < 1-1e-12 {
			t.Fatalf("ArcFraction(rho=%v,d=%v,r=25) = %v, want 1", rho, d, prev)
		}
	}
}

func TestArcFractionMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct{ rho, d, r float64 }{
		{2, 3, 4}, {5, 5, 3}, {1, 1.5, 1}, {3, 0.5, 3},
	}
	for _, c := range cases {
		const n = 200000
		in := 0
		for i := 0; i < n; i++ {
			th := rng.Float64() * 2 * math.Pi
			x, y := c.rho*math.Cos(th), c.rho*math.Sin(th)
			if math.Hypot(x-c.d, y) <= c.r {
				in++
			}
		}
		mc := float64(in) / n
		got := ArcFraction(c.rho, c.d, c.r)
		if math.Abs(got-mc) > 0.01 {
			t.Errorf("ArcFraction(%v,%v,%v) = %v, Monte Carlo = %v", c.rho, c.d, c.r, got, mc)
		}
	}
}

func TestDiscOverlapArea(t *testing.T) {
	// Disjoint.
	if a := DiscOverlapArea(1, 1, 5); a != 0 {
		t.Errorf("disjoint = %v", a)
	}
	// Contained.
	if a := DiscOverlapArea(1, 5, 1); math.Abs(a-math.Pi) > 1e-12 {
		t.Errorf("contained = %v, want π", a)
	}
	// Identical discs.
	if a := DiscOverlapArea(2, 2, 0); math.Abs(a-4*math.Pi) > 1e-12 {
		t.Errorf("identical = %v, want 4π", a)
	}
	// Symmetric half-overlap sanity via Monte Carlo.
	rng := rand.New(rand.NewSource(4))
	const n = 400000
	in := 0
	r1, r2, d := 2.0, 3.0, 2.5
	for i := 0; i < n; i++ {
		// Sample in disc 1.
		x, y := rng.Float64()*4-2, rng.Float64()*4-2
		if x*x+y*y > r1*r1 {
			i--
			continue
		}
		if math.Hypot(x-d, y) <= r2 {
			in++
		}
	}
	mc := float64(in) / n * math.Pi * r1 * r1
	got := DiscOverlapArea(r1, r2, d)
	if math.Abs(got-mc) > 0.05 {
		t.Errorf("overlap = %v, Monte Carlo = %v", got, mc)
	}
}
