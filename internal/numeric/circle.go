package numeric

import "math"

// ArcFraction returns the fraction (in [0,1]) of the circle of radius rho
// centred at the origin that lies within distance r of a point at distance
// d from the origin.
//
// This is the angular kernel in the Prob baseline's reachability integral:
// integrating it against the planar-Laplace radial density gives the
// probability that an obfuscated location's true position lies within a
// worker's reachable disc.
func ArcFraction(rho, d, r float64) float64 {
	switch {
	case rho < 0 || d < 0 || r < 0:
		return 0
	case rho == 0:
		if d <= r {
			return 1
		}
		return 0
	case d+rho <= r:
		return 1 // circle entirely inside the disc
	case math.Abs(d-rho) >= r:
		return 0 // circle entirely outside (or disc inside annulus gap)
	}
	// Law of cosines for the half-angle subtended by the intersection.
	cos := (rho*rho + d*d - r*r) / (2 * rho * d)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos) / math.Pi
}

// DiscOverlapArea returns the area of intersection of two discs with radii
// r1, r2 whose centres are distance d apart (the standard lens formula).
// Used to sanity-check ArcFraction by differentiation in tests and offered
// for density analyses.
func DiscOverlapArea(r1, r2, d float64) float64 {
	if r1 < 0 || r2 < 0 || d < 0 {
		return 0
	}
	if d >= r1+r2 {
		return 0
	}
	small, big := r1, r2
	if small > big {
		small, big = big, small
	}
	if d+small <= big {
		return math.Pi * small * small // smaller disc fully contained
	}
	d1 := (d*d + r1*r1 - r2*r2) / (2 * d)
	d2 := d - d1
	seg := func(r, x float64) float64 {
		c := x / r
		if c > 1 {
			c = 1
		} else if c < -1 {
			c = -1
		}
		return r*r*math.Acos(c) - x*math.Sqrt(math.Max(0, r*r-x*x))
	}
	return seg(r1, d1) + seg(r2, d2)
}
