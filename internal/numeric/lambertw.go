// Package numeric provides the numerical routines pombm needs beyond the
// standard library: Lambert W (for planar-Laplace inverse-CDF sampling),
// adaptive Simpson quadrature, circle-intersection arc fractions (for the
// Prob baseline's reachability probabilities), and stable log-sum-exp.
package numeric

import (
	"errors"
	"math"
)

// ErrDomain is returned when an input lies outside a function's domain.
var ErrDomain = errors.New("numeric: argument outside domain")

const invE = 1.0 / math.E

// LambertW0 computes the principal branch W₀(x), defined for x ≥ -1/e,
// satisfying W e^W = x with W ≥ -1.
func LambertW0(x float64) (float64, error) {
	if math.IsNaN(x) || x < -invE-1e-15 {
		return 0, ErrDomain
	}
	if x <= -invE {
		return -1, nil
	}
	if x == 0 {
		return 0, nil
	}
	// Initial guess.
	var w float64
	switch {
	case x < -0.25:
		// Series around the branch point x = -1/e.
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case x < 1:
		w = x * (1 - x + 1.5*x*x) // Taylor at 0
	default:
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}
	return halley(w, x), nil
}

// LambertWm1 computes the lower branch W₋₁(x), defined for -1/e ≤ x < 0,
// satisfying W e^W = x with W ≤ -1. This branch inverts the planar-Laplace
// radial CDF (Andrés et al., CCS'13, Eq. for C_ε⁻¹).
func LambertWm1(x float64) (float64, error) {
	if math.IsNaN(x) || x < -invE-1e-15 || x >= 0 {
		return 0, ErrDomain
	}
	if x <= -invE {
		return -1, nil
	}
	// Initial guess.
	var w float64
	if x > -0.25 {
		// Asymptotic near 0⁻: W₋₁(x) ≈ ln(-x) - ln(-ln(-x)).
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	} else {
		// Series around the branch point, lower sign.
		p := -math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	}
	return halley(w, x), nil
}

// halley refines w towards the solution of w e^w = x using Halley's method,
// which is cubically convergent; a handful of iterations reaches 1 ulp.
func halley(w, x float64) float64 {
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			break
		}
		w1 := w + 1
		denom := ew*w1 - (w+2)*f/(2*w1)
		if denom == 0 {
			break
		}
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	return w
}
