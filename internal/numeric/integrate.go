package numeric

import "math"

// AdaptiveSimpson integrates f over [a, b] to within tol using adaptive
// Simpson quadrature. The interval is first split into a fixed number of
// panels so that narrow peaks far from the endpoints are not missed by the
// initial coarse estimate (a standard failure mode of the pure recursive
// scheme on kernels like ρe^{-ερ} over long tails).
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -AdaptiveSimpson(f, b, a, tol)
	}
	const panels = 16
	h := (b - a) / panels
	var total float64
	ptol := tol / panels
	for i := 0; i < panels; i++ {
		pa := a + float64(i)*h
		pb := pa + h
		if i == panels-1 {
			pb = b
		}
		c := (pa + pb) / 2
		fa, fb, fc := f(pa), f(pb), f(c)
		s := simpson(pa, pb, fa, fc, fb)
		total += adaptAux(f, pa, pb, fa, fb, fc, s, ptol, 30)
	}
	return total
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptAux(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	d, e := (a+c)/2, (c+b)/2
	fd, fe := f(d), f(e)
	left := simpson(a, c, fa, fd, fc)
	right := simpson(c, b, fc, fe, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptAux(f, a, c, fa, fc, fd, left, tol/2, depth-1) +
		adaptAux(f, c, b, fc, fb, fe, right, tol/2, depth-1)
}

// LogSumExp returns log(Σ exp(xs[i])) computed stably. It returns -Inf for
// an empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
