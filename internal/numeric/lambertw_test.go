package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0Identity(t *testing.T) {
	// W₀(x)·e^{W₀(x)} = x across the domain.
	for _, x := range []float64{-invE + 1e-12, -0.3, -0.1, -1e-6, 0, 1e-6, 0.1, 0.5, 1, math.E, 10, 1e3, 1e8} {
		w, err := LambertW0(x)
		if err != nil {
			t.Fatalf("W0(%v): %v", x, err)
		}
		got := w * math.Exp(w)
		if math.Abs(got-x) > 1e-9*math.Max(1, math.Abs(x)) {
			t.Errorf("W0(%v)=%v, w·e^w=%v", x, w, got)
		}
		if w < -1-1e-9 {
			t.Errorf("W0(%v)=%v below -1", x, w)
		}
	}
}

func TestLambertWm1Identity(t *testing.T) {
	for _, x := range []float64{-invE + 1e-12, -0.36, -0.3, -0.2, -0.1, -0.01, -1e-4, -1e-8, -1e-15} {
		w, err := LambertWm1(x)
		if err != nil {
			t.Fatalf("Wm1(%v): %v", x, err)
		}
		got := w * math.Exp(w)
		if math.Abs(got-x) > 1e-9*math.Max(math.Abs(x), 1e-12) {
			t.Errorf("Wm1(%v)=%v, w·e^w=%v", x, w, got)
		}
		if w > -1+1e-9 {
			t.Errorf("Wm1(%v)=%v above -1", x, w)
		}
	}
}

func TestLambertWKnownValues(t *testing.T) {
	// W₀(1) is the omega constant.
	w, _ := LambertW0(1)
	if math.Abs(w-0.5671432904097838) > 1e-12 {
		t.Errorf("W0(1) = %v", w)
	}
	// W₀(e) = 1.
	w, _ = LambertW0(math.E)
	if math.Abs(w-1) > 1e-12 {
		t.Errorf("W0(e) = %v", w)
	}
	// W₋₁(-2e⁻²) = -2 (since -2·e^{-2} = x).
	w, _ = LambertWm1(-2 * math.Exp(-2))
	if math.Abs(w+2) > 1e-9 {
		t.Errorf("Wm1(-2e^-2) = %v, want -2", w)
	}
	// Branch point: both branches meet at -1.
	w0, _ := LambertW0(-invE)
	wm, _ := LambertWm1(-invE)
	if w0 != -1 || wm != -1 {
		t.Errorf("branch point: W0=%v Wm1=%v", w0, wm)
	}
}

func TestLambertWDomainErrors(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Error("W0(-1) should fail")
	}
	if _, err := LambertWm1(0); err == nil {
		t.Error("Wm1(0) should fail")
	}
	if _, err := LambertWm1(0.5); err == nil {
		t.Error("Wm1(0.5) should fail")
	}
	if _, err := LambertWm1(math.NaN()); err == nil {
		t.Error("Wm1(NaN) should fail")
	}
}

func TestLambertWm1RoundTripQuick(t *testing.T) {
	// For any w ≤ -1, Wm1(w·e^w) = w.
	f := func(raw float64) bool {
		w := -1 - math.Abs(math.Mod(raw, 30)) // w in [-31, -1]
		x := w * math.Exp(w)
		if x == 0 { // severe underflow for very negative w
			return true
		}
		got, err := LambertWm1(x)
		if err != nil {
			return false
		}
		return math.Abs(got-w) <= 1e-8*math.Abs(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLambertW0RoundTripQuick(t *testing.T) {
	f := func(raw float64) bool {
		w := math.Mod(math.Abs(raw), 50) - 1 // w in [-1, 49]
		x := w * math.Exp(w)
		got, err := LambertW0(x)
		if err != nil {
			return false
		}
		return math.Abs(got-w) <= 1e-8*math.Max(1, math.Abs(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
