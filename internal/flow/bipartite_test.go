package flow

import (
	"math"
	"math/rand"
	"testing"
)

// bipInstance is one random restricted-assignment problem.
type bipInstance struct {
	nTasks int
	caps   []int       // worker capacities
	arcs   [][]int     // per task: candidate worker ids
	costs  [][]float64 // per task: candidate costs (parallel to arcs)
}

func randBip(r *rand.Rand) bipInstance {
	in := bipInstance{nTasks: 1 + r.Intn(12)}
	nW := 1 + r.Intn(10)
	in.caps = make([]int, nW)
	for w := range in.caps {
		in.caps[w] = 1 + r.Intn(3)
	}
	in.arcs = make([][]int, in.nTasks)
	in.costs = make([][]float64, in.nTasks)
	for t := 0; t < in.nTasks; t++ {
		k := r.Intn(5) // possibly no candidates at all
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			w := r.Intn(nW)
			if seen[w] {
				continue
			}
			seen[w] = true
			in.arcs[t] = append(in.arcs[t], w)
			in.costs[t] = append(in.costs[t], float64(r.Intn(25)))
		}
	}
	return in
}

// solveBip runs the Bipartite solver on the instance with the given warm
// potentials (nil = cold) and returns cardinality and total cost.
func solveBip(t *testing.T, b *Bipartite, in bipInstance, warm []float64) (int, float64) {
	t.Helper()
	b.Reset(in.nTasks, len(in.caps))
	for w, c := range in.caps {
		pot := 0.0
		if warm != nil {
			pot = warm[w]
		}
		b.SetWorker(w, c, pot)
	}
	for task := range in.arcs {
		for j, w := range in.arcs[task] {
			if err := b.AddArc(task, w, in.costs[task][j]); err != nil {
				t.Fatalf("AddArc(%d, %d, %v): %v", task, w, in.costs[task][j], err)
			}
		}
	}
	matched := b.Run()
	return matched, b.MatchedCost()
}

// oracleBip solves the same instance with the min-cost max-flow solver.
func oracleBip(t *testing.T, in bipInstance) (int, float64) {
	t.Helper()
	nW := len(in.caps)
	src, sink := 0, in.nTasks+nW+1
	f := NewMinCostFlow(in.nTasks + nW + 2)
	add := func(u, v, c int, cost float64) {
		t.Helper()
		if _, err := f.AddEdge(u, v, c, cost); err != nil {
			t.Fatal(err)
		}
	}
	for task := 0; task < in.nTasks; task++ {
		add(src, 1+task, 1, 0)
	}
	for task := range in.arcs {
		for j, w := range in.arcs[task] {
			add(1+task, 1+in.nTasks+w, 1, in.costs[task][j])
		}
	}
	for w, c := range in.caps {
		add(1+in.nTasks+w, sink, c, 0)
	}
	return f.Run(src, sink, in.nTasks)
}

// TestBipartiteMatchesFlowOracle pins the window solver's optimum against
// the shared min-cost max-flow solver on random instances: identical
// cardinality and identical total cost, with the solver arena reused
// across every instance.
func TestBipartiteMatchesFlowOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		r := rand.New(rand.NewSource(seed))
		b := NewBipartite()
		for cycle := 0; cycle < 120; cycle++ {
			in := randBip(r)
			gotN, gotC := solveBip(t, b, in, nil)
			wantN, wantC := oracleBip(t, in)
			if gotN != wantN || math.Abs(gotC-wantC) > 1e-9 {
				t.Fatalf("seed %d cycle %d: Bipartite (%d, %v), flow oracle (%d, %v)",
					seed, cycle, gotN, gotC, wantN, wantC)
			}
		}
	}
}

// TestBipartiteWarmStartPreservesOptimum pins the warm-start contract: at
// window start no arc carries flow, so ANY seeded potentials — random,
// negative, wildly inconsistent — must leave the optimum untouched. Only
// the choice among equal-cost optima may move.
func TestBipartiteWarmStartPreservesOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	b := NewBipartite()
	for cycle := 0; cycle < 150; cycle++ {
		in := randBip(r)
		warm := make([]float64, len(in.caps))
		for w := range warm {
			warm[w] = float64(r.Intn(101) - 50)
		}
		gotN, gotC := solveBip(t, b, in, warm)
		wantN, wantC := oracleBip(t, in)
		if gotN != wantN || math.Abs(gotC-wantC) > 1e-9 {
			t.Fatalf("cycle %d warm %v: Bipartite (%d, %v), flow oracle (%d, %v)",
				cycle, warm, gotN, gotC, wantN, wantC)
		}
	}
}

// TestBipartiteDeterministic pins tie-breaking: replaying the same window
// with the same potentials yields the identical assignment, arc for arc.
func TestBipartiteDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := randBip(r)
	a, b := NewBipartite(), NewBipartite()
	solveBip(t, a, in, nil)
	solveBip(t, b, in, nil)
	for task := 0; task < in.nTasks; task++ {
		if a.MatchedWorker(task) != b.MatchedWorker(task) || a.MatchedArc(task) != b.MatchedArc(task) {
			t.Fatalf("task %d: worker %d/arc %d vs worker %d/arc %d",
				task, a.MatchedWorker(task), a.MatchedArc(task), b.MatchedWorker(task), b.MatchedArc(task))
		}
	}
}

// TestBipartiteRematchesThroughChain pins the augmenting-path machinery
// with a case that forces a rematch: worker 0 is best for both tasks but
// has one unit, so task 1's arrival must push task 0 onto its alternative.
func TestBipartiteRematchesThroughChain(t *testing.T) {
	b := NewBipartite()
	b.Reset(2, 2)
	b.SetWorker(0, 1, 0)
	b.SetWorker(1, 1, 0)
	mustArc := func(task, w int, cost float64) {
		if err := b.AddArc(task, w, cost); err != nil {
			t.Fatal(err)
		}
	}
	mustArc(0, 0, 1) // task 0: cheap on 0, dear on 1
	mustArc(0, 1, 5)
	mustArc(1, 0, 1) // task 1: only worker 0
	if got := b.Run(); got != 2 {
		t.Fatalf("matched %d, want 2", got)
	}
	if b.MatchedWorker(0) != 1 || b.MatchedWorker(1) != 0 {
		t.Fatalf("assignment (%d, %d), want (1, 0)", b.MatchedWorker(0), b.MatchedWorker(1))
	}
	if c := b.MatchedCost(); math.Abs(c-6) > 1e-9 {
		t.Fatalf("cost %v, want 6", c)
	}
}

// TestBipartiteAddArcRejectsBadInput pins the validation surface.
func TestBipartiteAddArcRejectsBadInput(t *testing.T) {
	b := NewBipartite()
	b.Reset(2, 2)
	cases := []struct {
		name string
		t, w int
		cost float64
	}{
		{"task out of range", 2, 0, 1},
		{"worker out of range", 0, 2, 1},
		{"negative cost", 0, 0, -1},
		{"nan cost", 0, 0, math.NaN()},
		{"inf cost", 0, 0, math.Inf(1)},
	}
	for _, tc := range cases {
		if err := b.AddArc(tc.t, tc.w, tc.cost); err == nil {
			t.Errorf("%s: AddArc(%d, %d, %v) accepted", tc.name, tc.t, tc.w, tc.cost)
		}
	}
	if err := b.AddArc(1, 0, 1); err != nil {
		t.Fatalf("valid arc rejected: %v", err)
	}
	if err := b.AddArc(0, 0, 1); err == nil {
		t.Error("out-of-order arc accepted")
	}
}
