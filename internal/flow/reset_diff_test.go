package flow

import (
	"math"
	"math/rand"
	"testing"
)

// tapeEdge is one AddEdge op of a differential tape.
type tapeEdge struct {
	u, v, cap int
	cost      float64
}

// randTape draws a random graph: node count, edge list, and a flow demand.
// Edges always point forward (u < v) so the graph is a DAG: negative costs
// stay exercised without ever forming a negative cycle, which successive
// shortest paths does not handle (and the engine never produces — negative
// costs only appear on residual arcs under the potential invariant).
func randTape(r *rand.Rand) (n int, edges []tapeEdge, maxFlow int) {
	n = 2 + r.Intn(14)
	m := r.Intn(40)
	edges = make([]tapeEdge, m)
	for i := range edges {
		u := r.Intn(n - 1)
		edges[i] = tapeEdge{
			u:   u,
			v:   u + 1 + r.Intn(n-1-u),
			cap: r.Intn(6),
			// Integer costs, negative included: exact arithmetic, no
			// epsilon ambiguity between the two solvers.
			cost: float64(r.Intn(13) - 3),
		}
	}
	return n, edges, 1 + r.Intn(10)
}

// runTape replays a tape on f (already Reset/fresh for n nodes).
func runTape(t *testing.T, f *MinCostFlow, edges []tapeEdge, maxFlow int) (flow int, cost float64, residuals []int) {
	t.Helper()
	fwd := make([]int, 0, len(edges))
	for _, e := range edges {
		id, err := f.AddEdge(e.u, e.v, e.cap, e.cost)
		if err != nil {
			t.Fatalf("AddEdge(%+v): %v", e, err)
		}
		fwd = append(fwd, id)
	}
	flow, cost = f.Run(0, f.n-1, maxFlow)
	residuals = make([]int, len(fwd))
	for i, id := range fwd {
		residuals[i] = f.Residual(id)
	}
	return flow, cost, residuals
}

// TestResetDifferential pins the arena life-cycle: one solver Reset across
// many random problems must report exactly the flow, cost, and per-edge
// residuals of a fresh NewMinCostFlow per problem. Any slab state leaking
// across Reset shows up as a divergence.
func TestResetDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 21, 99} {
		r := rand.New(rand.NewSource(seed))
		reused := NewMinCostFlow(0)
		for cycle := 0; cycle < 60; cycle++ {
			n, edges, maxFlow := randTape(r)
			reused.Reset(n)
			gotFlow, gotCost, gotRes := runTape(t, reused, edges, maxFlow)
			fresh := NewMinCostFlow(n)
			wantFlow, wantCost, wantRes := runTape(t, fresh, edges, maxFlow)
			if gotFlow != wantFlow || math.Abs(gotCost-wantCost) > 1e-9 {
				t.Fatalf("seed %d cycle %d: reused (flow %d, cost %v), fresh (flow %d, cost %v)",
					seed, cycle, gotFlow, gotCost, wantFlow, wantCost)
			}
			for i := range gotRes {
				if gotRes[i] != wantRes[i] {
					t.Fatalf("seed %d cycle %d: edge %d residual %d (reused) vs %d (fresh)",
						seed, cycle, i, gotRes[i], wantRes[i])
				}
			}
		}
	}
}
