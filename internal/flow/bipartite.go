package flow

import (
	"fmt"
	"math"
)

// Bipartite solves the engine's per-window restricted assignment problem:
// nTasks tasks, each carrying a small candidate arc list, against nWorkers
// capacitated workers. It computes a maximum-cardinality matching of
// minimum total cost within the candidate graph — the same optimum
// MinCostFlow finds on the equivalent source/sink network — but via
// successive shortest augmenting paths over reduced costs (Dijkstra with
// Johnson potentials), which visits O(arcs near the path) nodes per task
// in the steady state instead of relaxing the whole graph per
// augmentation.
//
// Internally the graph is completed with two implicit nodes that make
// per-task augmentation globally optimal:
//
//   - a virtual worker every task can reach at cost M (one more than the
//     sum of all real arc costs), so every augmentation succeeds and a
//     task "matched" virtually is simply unmatched. Because M dwarfs any
//     real cost difference, minimizing total cost first maximizes real
//     cardinality — and a later task can reroute an earlier one onto the
//     virtual worker, which is exactly the rematch that plain sequential
//     augmentation misses when a task must go unmatched.
//   - a super-sink behind all workers, reached at cost 0 from any worker
//     with spare capacity. Dijkstra stops when the sink pops, which is
//     correct even when warm-started worker potentials are unequal;
//     stopping at the first free worker instead would bias the search
//     toward high-potential workers rather than the cheapest real path.
//
// The struct is an arena with a warm-start seam. Reset prepares the next
// window reusing every slab, and SetWorker accepts a carried-over
// potential for each worker. Potentials are duals, not constraints: at
// window start no arc carries flow, so any potential assignment is valid
// and cannot change the optimum — a warm value merely starts the price of
// a worker where the previous window left it, which makes the first
// Dijkstra pop of a typical task land directly on its final worker. Read
// the updated potentials back with WorkerPot after Run.
//
// Determinism: equal-distance Dijkstra fronts break ties toward the
// smaller node index (tasks in submission order before workers in
// first-seen order), so a window's outcome is a pure function of its
// input and the seeded potentials. Warm values never change the matching's
// cardinality or total cost — only which of several equal-cost optima is
// picked — so replaying the same window sequence reproduces the same
// assignments bit for bit.
type Bipartite struct {
	nTasks   int
	nWorkers int

	// Candidate arcs, grouped per task in insertion order.
	arcTask  []int32
	arcW     []int32
	arcCost  []float64
	taskArcs []int32 // len nTasks+1: task t's arcs are [taskArcs[t], taskArcs[t+1])

	// Worker state; slot nWorkers is the virtual unmatched-absorber.
	wcap []int32   // remaining window capacity per worker
	wpot []float64 // worker potentials (duals), warm-startable
	tpot []float64 // task potentials, derived per window

	sinkPot float64 // super-sink potential
	bigM    float64 // virtual arc cost, 1 + sum of all real arc costs

	matchArc []int32 // per task: matched arc id, virtual sentinel ≤ -2, or nilEdge
	wHead    []int32 // per worker (incl. virtual): head of its matched-task list
	tNext    []int32 // per task: next task matched to the same worker

	// Dijkstra scratch. Node v < nTasks is task v; node nTasks+w is worker
	// w (w == nWorkers being the virtual worker); the last node is the
	// super-sink. seen stamps avoid clearing dist between augmentations.
	dist    []float64
	prevArc []int32
	seen    []int32
	done    []int32
	reach   []int32 // nodes finalized this augmentation, for the dual update
	heap    []heapEntry
	stamp   int32
}

type heapEntry struct {
	dist float64
	node int32
}

// virtArc encodes "task t is matched to the virtual worker" in matchArc:
// values ≤ -2 are virtual, distinct from nilEdge (-1, never matched).
func virtArc(t int32) int32 { return -2 - t }

// NewBipartite returns an empty solver; Reset sizes it.
func NewBipartite() *Bipartite { return &Bipartite{} }

// Reset prepares the solver for a window of nTasks tasks over nWorkers
// workers, reusing every internal slab. Workers must then be declared with
// SetWorker and arcs added task by task with AddArc.
func (b *Bipartite) Reset(nTasks, nWorkers int) {
	b.nTasks, b.nWorkers = nTasks, nWorkers
	nw := nWorkers + 1         // +1: virtual worker slot
	n := nTasks + nWorkers + 2 // +2: virtual worker and super-sink nodes
	if cap(b.wcap) < nw {
		b.wcap = make([]int32, nw)
		b.wpot = make([]float64, nw)
		b.wHead = make([]int32, nw)
	}
	b.wcap = b.wcap[:nw]
	b.wpot = b.wpot[:nw]
	b.wHead = b.wHead[:nw]
	for i := range b.wHead {
		b.wHead[i] = nilEdge
	}
	if cap(b.matchArc) < nTasks {
		b.matchArc = make([]int32, nTasks)
		b.tNext = make([]int32, nTasks)
		b.tpot = make([]float64, nTasks)
	}
	b.matchArc = b.matchArc[:nTasks]
	b.tNext = b.tNext[:nTasks]
	b.tpot = b.tpot[:nTasks]
	for i := range b.matchArc {
		b.matchArc[i] = nilEdge
	}
	if cap(b.dist) < n {
		b.dist = make([]float64, n)
		b.prevArc = make([]int32, n)
		b.seen = make([]int32, n)
		b.done = make([]int32, n)
	}
	b.dist = b.dist[:n]
	b.prevArc = b.prevArc[:n]
	b.seen = b.seen[:n]
	b.done = b.done[:n]
	if b.stamp == 0 { // fresh slabs: stamps start above the zero value
		for i := range b.seen {
			b.seen[i] = 0
			b.done[i] = 0
		}
	}
	b.arcTask = b.arcTask[:0]
	b.arcW = b.arcW[:0]
	b.arcCost = b.arcCost[:0]
	b.taskArcs = append(b.taskArcs[:0], 0)
}

// SetWorker declares worker w's capacity for this window and seeds its
// potential (0 for a cold start, the previous window's closing potential
// for a warm one).
func (b *Bipartite) SetWorker(w, capacity int, pot float64) {
	b.wcap[w] = int32(capacity)
	b.wpot[w] = pot
}

// AddArc adds a candidate arc from task t to worker w at the given cost.
// Arcs must be added grouped by task, in task order; costs must be finite
// and non-negative, and endpoints in range.
func (b *Bipartite) AddArc(t, w int, cost float64) error {
	if t < 0 || t >= b.nTasks || w < 0 || w >= b.nWorkers {
		return fmt.Errorf("flow: arc task %d → worker %d outside the %d×%d window", t, w, b.nTasks, b.nWorkers)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) || cost < 0 {
		return fmt.Errorf("flow: arc task %d → worker %d has invalid cost %v", t, w, cost)
	}
	if cur := len(b.taskArcs) - 2; t < cur {
		return fmt.Errorf("flow: arcs for task %d added after task %d", t, cur)
	}
	for len(b.taskArcs) < t+2 {
		b.taskArcs = append(b.taskArcs, int32(len(b.arcW)))
	}
	b.arcTask = append(b.arcTask, int32(t))
	b.arcW = append(b.arcW, int32(w))
	b.arcCost = append(b.arcCost, cost)
	b.taskArcs[t+1] = int32(len(b.arcW))
	return nil
}

// Run augments every task in order and returns the number matched to a
// real worker. The result is a maximum-cardinality matching of minimum
// total cost within the candidate graph.
func (b *Bipartite) Run() int {
	for len(b.taskArcs) <= b.nTasks {
		b.taskArcs = append(b.taskArcs, int32(len(b.arcW)))
	}
	b.bigM = 1
	for _, c := range b.arcCost {
		b.bigM += c
	}
	virt := b.nWorkers
	b.wcap[virt] = int32(b.nTasks)
	b.wpot[virt] = 0
	// The sink starts below every worker so each forward worker→sink arc
	// carries a non-negative reduced cost even under warm potentials.
	b.sinkPot = 0
	for _, p := range b.wpot[:virt] {
		if p < b.sinkPot {
			b.sinkPot = p
		}
	}
	for t := 0; t < b.nTasks; t++ {
		b.augment(int32(t))
	}
	matched := 0
	for _, a := range b.matchArc {
		if a >= 0 {
			matched++
		}
	}
	return matched
}

// MatchedArc returns the arc id (AddArc insertion order, 0-based) that
// task t is matched through, or -1 when the task is unmatched. Valid
// after Run.
func (b *Bipartite) MatchedArc(t int) int {
	if a := b.matchArc[t]; a >= 0 {
		return int(a)
	}
	return -1
}

// MatchedWorker returns the worker matched to task t, or -1.
func (b *Bipartite) MatchedWorker(t int) int {
	if a := b.matchArc[t]; a >= 0 {
		return int(b.arcW[a])
	}
	return -1
}

// WorkerPot returns worker w's closing potential, for carrying into the
// next window's SetWorker.
func (b *Bipartite) WorkerPot(w int) float64 { return b.wpot[w] }

// MatchedCost returns the total cost of the matching. Valid after Run.
func (b *Bipartite) MatchedCost() float64 {
	var total float64
	for _, a := range b.matchArc {
		if a >= 0 {
			total += b.arcCost[a]
		}
	}
	return total
}

// arcWorkerOf resolves an arc id — real or virtual sentinel — to its
// internal worker index.
func (b *Bipartite) arcWorkerOf(a int32) int32 {
	if a >= 0 {
		return b.arcW[a]
	}
	return int32(b.nWorkers)
}

// arcCostOf resolves an arc id — real or virtual sentinel — to its cost.
func (b *Bipartite) arcCostOf(a int32) float64 {
	if a >= 0 {
		return b.arcCost[a]
	}
	return b.bigM
}

// augment runs one Dijkstra over reduced costs from task t0, stopping
// when the super-sink is finalized, then updates the duals and flips the
// augmenting path. The virtual worker guarantees a path exists. Reduced
// costs stay non-negative by the standard successive-shortest-path
// invariant; every cost in an engine window is an exact small integer, so
// the arithmetic is exact.
func (b *Bipartite) augment(t0 int32) {
	nT := int32(b.nTasks)
	virt := int32(b.nWorkers)
	sink := nT + virt + 1
	// Task potential: the largest value keeping every outgoing arc's
	// reduced cost non-negative (virtual arc included), so arbitrary warm
	// worker potentials are always valid and the cheapest arc starts tight.
	pot := b.wpot[virt] - b.bigM
	for a := b.taskArcs[t0]; a < b.taskArcs[t0+1]; a++ {
		if p := b.wpot[b.arcW[a]] - b.arcCost[a]; p > pot {
			pot = p
		}
	}
	b.tpot[t0] = pot

	b.stamp++
	stamp := b.stamp
	b.heap = b.heap[:0]
	b.reach = b.reach[:0]
	b.setDist(t0, 0, nilEdge, stamp)
	var sinkD float64
	for len(b.heap) > 0 {
		e := b.popHeap()
		v := e.node
		if b.done[v] == stamp {
			continue
		}
		b.done[v] = stamp
		b.dist[v] = e.dist
		b.reach = append(b.reach, v)
		if v == sink {
			sinkD = e.dist
			break
		}
		if v >= nT {
			w := v - nT
			if b.wcap[w] > 0 && b.done[sink] != stamp {
				// prevArc at the sink records the entering worker index —
				// the only node whose predecessor is not an arc.
				b.setDist(sink, e.dist+b.wpot[w]-b.sinkPot, w, stamp)
			}
			// Cross back over each matched task's flow arc.
			for t := b.wHead[w]; t != nilEdge; t = b.tNext[t] {
				if b.done[t] == stamp {
					continue
				}
				a := b.matchArc[t]
				rc := -b.arcCostOf(a) + b.wpot[w] - b.tpot[t]
				b.setDist(t, e.dist+rc, a, stamp)
			}
			continue
		}
		// Task node: forward over its non-flow arcs, virtual included.
		for a, hi := b.taskArcs[v], b.taskArcs[v+1]; a < hi; a++ {
			if a == b.matchArc[v] {
				continue
			}
			w := b.arcW[a]
			wn := nT + w
			if b.done[wn] == stamp {
				continue
			}
			rc := b.arcCost[a] + b.tpot[v] - b.wpot[w]
			b.setDist(wn, e.dist+rc, a, stamp)
		}
		if b.matchArc[v] >= nilEdge && b.done[nT+virt] != stamp {
			rc := b.bigM + b.tpot[v] - b.wpot[virt]
			b.setDist(nT+virt, e.dist+rc, virtArc(v), stamp)
		}
	}
	// Dual update: finalized nodes move by dist − D (a uniform −D shift of
	// the textbook π += min(dist, D), which leaves reduced costs invariant
	// for untouched nodes), making the augmenting path tight.
	for _, v := range b.reach {
		if v == sink {
			continue
		}
		if v < nT {
			b.tpot[v] += b.dist[v] - sinkD
		} else {
			b.wpot[v-nT] += b.dist[v] - sinkD
		}
	}
	// Flip the path: the sink's predecessor is the worker absorbing the
	// new unit; walk back over prevArc from there, rematching each task.
	w := b.prevArc[sink]
	b.wcap[w]--
	v := nT + w
	for {
		a := b.prevArc[v]
		t := -2 - a
		if a >= 0 {
			t = b.arcTask[a]
		}
		old := b.matchArc[t]
		// Detach before attach: attach overwrites tNext[t], which detach
		// still needs to unlink t from its old worker's list.
		if old != nilEdge {
			b.detach(b.arcWorkerOf(old), t)
		}
		b.matchArc[t] = a
		b.attach(b.arcWorkerOf(a), t)
		if t == t0 {
			break
		}
		v = nT + b.arcWorkerOf(old)
	}
}

// setDist relaxes node v to distance d through arc a. Finalized nodes are
// never re-relaxed: their prevArc is part of the committed shortest-path
// tree the flip walks afterwards.
func (b *Bipartite) setDist(v int32, d float64, a int32, stamp int32) {
	if b.done[v] == stamp {
		return
	}
	if b.seen[v] == stamp && d >= b.dist[v] {
		return
	}
	b.seen[v] = stamp
	b.dist[v] = d
	b.prevArc[v] = a
	b.heap = append(b.heap, heapEntry{dist: d, node: v})
	b.up(len(b.heap) - 1)
}

// attach links task t into worker w's matched list.
func (b *Bipartite) attach(w, t int32) {
	b.tNext[t] = b.wHead[w]
	b.wHead[w] = t
}

// detach unlinks task t from worker w's matched list.
func (b *Bipartite) detach(w, t int32) {
	if b.wHead[w] == t {
		b.wHead[w] = b.tNext[t]
		return
	}
	for p := b.wHead[w]; p != nilEdge; p = b.tNext[p] {
		if b.tNext[p] == t {
			b.tNext[p] = b.tNext[t]
			return
		}
	}
}

// heapLess orders by (dist, node): the smaller node index wins ties, which
// pins the solver's equal-cost decisions deterministically.
func (b *Bipartite) heapLess(i, j int) bool {
	if b.heap[i].dist != b.heap[j].dist {
		return b.heap[i].dist < b.heap[j].dist
	}
	return b.heap[i].node < b.heap[j].node
}

func (b *Bipartite) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !b.heapLess(i, p) {
			return
		}
		b.heap[i], b.heap[p] = b.heap[p], b.heap[i]
		i = p
	}
}

func (b *Bipartite) popHeap() heapEntry {
	top := b.heap[0]
	n := len(b.heap) - 1
	b.heap[0] = b.heap[n]
	b.heap = b.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && b.heapLess(l, s) {
			s = l
		}
		if r < n && b.heapLess(r, s) {
			s = r
		}
		if s == i {
			return top
		}
		b.heap[i], b.heap[s] = b.heap[s], b.heap[i]
		i = s
	}
}
