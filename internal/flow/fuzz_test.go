package flow

import (
	"math"
	"testing"
)

// FuzzFlowReset drives one reused solver through a multi-problem tape
// decoded from the fuzz input and cross-checks every problem against a
// fresh solver: identical flow, cost, and forward-edge residuals, no
// matter how the previous problem shaped the arena. Wired into the
// nightly fuzz lane alongside the trie and obfuscation fuzzers.
func FuzzFlowReset(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 3, 0, 1, 5, 3, 1, 2, 4, 9, 2, 3, 1})
	f.Add([]byte{2, 1, 0, 1, 200, 7, 6, 2, 0, 1, 3, 2, 1, 2, 9, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		reused := NewMinCostFlow(0)
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		for cycle := 0; cycle < 8; cycle++ {
			nb, ok := next()
			if !ok {
				return
			}
			n := 2 + int(nb%14)
			mb, _ := next()
			m := int(mb % 24)
			reused.Reset(n)
			fresh := NewMinCostFlow(n)
			type edge struct{ a, b int }
			var fwd []edge // forward ids in (reused, fresh); identical by contract
			for i := 0; i < m; i++ {
				ub, ok1 := next()
				vb, ok2 := next()
				cb, ok3 := next()
				wb, ok4 := next()
				if !ok1 || !ok2 || !ok3 || !ok4 {
					break
				}
				// Forward-only (u < v) keeps the graph a DAG, so negative
				// costs can't form a negative cycle (which successive
				// shortest paths does not handle and the engine never
				// produces).
				u := int(ub) % (n - 1)
				v := u + 1 + int(vb)%(n-1-u)
				capa := int(cb % 6)
				cost := float64(int(wb%16) - 4)
				ra, errA := reused.AddEdge(u, v, capa, cost)
				rb, errB := fresh.AddEdge(u, v, capa, cost)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("cycle %d: AddEdge error divergence: %v vs %v", cycle, errA, errB)
				}
				if errA != nil {
					continue
				}
				if ra != rb {
					t.Fatalf("cycle %d: edge id %d (reused) vs %d (fresh)", cycle, ra, rb)
				}
				fwd = append(fwd, edge{ra, rb})
			}
			fb, _ := next()
			maxFlow := 1 + int(fb%9)
			gf, gc := reused.Run(0, n-1, maxFlow)
			wf, wc := fresh.Run(0, n-1, maxFlow)
			if gf != wf || math.Abs(gc-wc) > 1e-9 {
				t.Fatalf("cycle %d: reused (flow %d, cost %v), fresh (flow %d, cost %v)", cycle, gf, gc, wf, wc)
			}
			for _, e := range fwd {
				if reused.Residual(e.a) != fresh.Residual(e.b) {
					t.Fatalf("cycle %d: residual %d vs %d on edge %d", cycle, reused.Residual(e.a), fresh.Residual(e.b), e.a)
				}
			}
		}
	})
}
