// Package flow implements the matching back-ends shared across the repo:
// a successive-shortest-path min-cost max-flow solver over a directed graph
// with integer capacities and float64 costs (MinCostFlow), and a
// warm-startable restricted bipartite assignment solver (Bipartite) tuned
// for the engine's batch-optimal window serving. internal/match builds its
// offline optimal and capacity-constrained assignments on MinCostFlow; the
// engine's batch-optimal policy solves each window with Bipartite and uses
// MinCostFlow as its correctness oracle in tests.
package flow

import (
	"fmt"
	"math"
)

// nilEdge terminates the per-node adjacency chains.
const nilEdge = int32(-1)

// MinCostFlow is the solver. Build the graph with AddEdge, then Run. The
// struct is an arena: Reset reuses every internal slab for the next
// problem, so a solver held across problems reaches a high-water mark and
// then stops allocating — NewMinCostFlow per problem is never required.
type MinCostFlow struct {
	n int

	// Adjacency in insertion order: first/last anchor each node's edge
	// chain, next threads it. Insertion order is part of the solver's
	// deterministic behaviour (equal-cost augmenting paths are explored in
	// the order edges were added), so the chains append rather than prepend.
	first []int32
	last  []int32
	next  []int32

	to   []int32
	capa []int
	cost []float64

	// Run scratch, owned so repeated runs do not allocate.
	dist     []float64
	inQueue  []bool
	prevEdge []int32
	queue    []int32
}

// NewMinCostFlow returns a solver over n nodes (0..n−1).
func NewMinCostFlow(n int) *MinCostFlow {
	f := &MinCostFlow{}
	f.Reset(n)
	return f
}

// Reset discards the current graph and prepares the solver for a fresh
// problem over n nodes, reusing every internal slab. Edge ids restart at 0.
func (f *MinCostFlow) Reset(n int) {
	if n < 0 {
		n = 0
	}
	f.n = n
	if cap(f.first) < n {
		f.first = make([]int32, n)
		f.last = make([]int32, n)
	}
	f.first = f.first[:n]
	f.last = f.last[:n]
	for i := range f.first {
		f.first[i] = nilEdge
	}
	f.next = f.next[:0]
	f.to = f.to[:0]
	f.capa = f.capa[:0]
	f.cost = f.cost[:0]
}

// NumEdges returns the number of edge slots added so far (two per AddEdge:
// the forward edge and its residual reverse).
func (f *MinCostFlow) NumEdges() int { return len(f.to) }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, plus its residual reverse edge. It returns the forward edge's id,
// usable with Residual after Run to read how much of the edge was used.
// Endpoints must be valid nodes, capacity must be non-negative, and the
// cost must be finite (negative is fine — the SPFA search tolerates it);
// anything else is rejected before it can corrupt the search.
func (f *MinCostFlow) AddEdge(u, v, capacity int, cost float64) (int, error) {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		return 0, fmt.Errorf("flow: edge %d→%d outside the %d-node graph", u, v, f.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: edge %d→%d has negative capacity %d", u, v, capacity)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 0, fmt.Errorf("flow: edge %d→%d has non-finite cost %v", u, v, cost)
	}
	e := f.append(u, v, capacity, cost)
	f.append(v, u, 0, -cost)
	return int(e), nil
}

// append links one raw edge slot onto u's chain, preserving insertion order.
func (f *MinCostFlow) append(u, v, capacity int, cost float64) int32 {
	e := int32(len(f.to))
	f.to = append(f.to, int32(v))
	f.capa = append(f.capa, capacity)
	f.cost = append(f.cost, cost)
	f.next = append(f.next, nilEdge)
	if f.first[u] == nilEdge {
		f.first[u] = e
	} else {
		f.next[f.last[u]] = e
	}
	f.last[u] = e
	return e
}

// Residual returns the remaining capacity of edge e (a forward edge id from
// AddEdge): 0 means the edge is saturated, its original capacity means it
// carries no flow.
func (f *MinCostFlow) Residual(e int) int { return f.capa[e] }

// Run pushes up to maxFlow units from s to t along successive
// shortest-cost augmenting paths (SPFA, which tolerates the negative
// residual arcs). It returns the flow achieved and its total cost.
func (f *MinCostFlow) Run(s, t, maxFlow int) (int, float64) {
	flow := 0
	var total float64
	if cap(f.dist) < f.n {
		f.dist = make([]float64, f.n)
		f.inQueue = make([]bool, f.n)
		f.prevEdge = make([]int32, f.n)
	}
	dist := f.dist[:f.n]
	inQueue := f.inQueue[:f.n]
	prevEdge := f.prevEdge[:f.n]
	for flow < maxFlow {
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = nilEdge
		}
		dist[s] = 0
		queue := append(f.queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			inQueue[u] = false
			for e := f.first[u]; e != nilEdge; e = f.next[e] {
				if f.capa[e] <= 0 {
					continue
				}
				v := f.to[e]
				if nd := dist[u] + f.cost[e]; nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		f.queue = queue[:0]
		if math.IsInf(dist[t], 1) {
			break // no augmenting path remains
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := int32(t); v != int32(s); {
			e := prevEdge[v]
			if f.capa[e] < push {
				push = f.capa[e]
			}
			v = f.to[e^1]
		}
		for v := int32(t); v != int32(s); {
			e := prevEdge[v]
			f.capa[e] -= push
			f.capa[e^1] += push
			v = f.to[e^1]
		}
		flow += push
		total += dist[t] * float64(push)
	}
	return flow, total
}
