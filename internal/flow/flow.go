// Package flow implements a successive-shortest-path min-cost max-flow
// solver over a directed graph with integer capacities and float64 costs.
// It is the shared matching back-end: internal/match builds its offline
// optimal and capacity-constrained assignments on it, and the engine's
// batch-optimal assignment policy solves each window's restricted bipartite
// problem with it.
package flow

import "math"

// MinCostFlow is the solver. Build the graph with AddEdge, then Run.
type MinCostFlow struct {
	n    int
	head [][]int // adjacency: node → edge ids
	to   []int
	capa []int
	cost []float64
}

// NewMinCostFlow returns a solver over n nodes (0..n−1).
func NewMinCostFlow(n int) *MinCostFlow {
	return &MinCostFlow{n: n, head: make([][]int, n)}
}

// NumEdges returns the number of edge slots added so far (two per AddEdge:
// the forward edge and its residual reverse).
func (f *MinCostFlow) NumEdges() int { return len(f.to) }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, plus its residual reverse edge. It returns the forward edge's id,
// usable with Residual after Run to read how much of the edge was used.
func (f *MinCostFlow) AddEdge(u, v, capacity int, cost float64) int {
	e := len(f.to)
	f.head[u] = append(f.head[u], e)
	f.to = append(f.to, v)
	f.capa = append(f.capa, capacity)
	f.cost = append(f.cost, cost)

	f.head[v] = append(f.head[v], len(f.to))
	f.to = append(f.to, u)
	f.capa = append(f.capa, 0)
	f.cost = append(f.cost, -cost)
	return e
}

// Residual returns the remaining capacity of edge e (a forward edge id from
// AddEdge): 0 means the edge is saturated, its original capacity means it
// carries no flow.
func (f *MinCostFlow) Residual(e int) int { return f.capa[e] }

// Run pushes up to maxFlow units from s to t along successive
// shortest-cost augmenting paths (SPFA, which tolerates the negative
// residual arcs). It returns the flow achieved and its total cost.
func (f *MinCostFlow) Run(s, t, maxFlow int) (int, float64) {
	flow := 0
	var total float64
	dist := make([]float64, f.n)
	inQueue := make([]bool, f.n)
	prevEdge := make([]int, f.n)
	for flow < maxFlow {
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, e := range f.head[u] {
				if f.capa[e] <= 0 {
					continue
				}
				v := f.to[e]
				if nd := dist[u] + f.cost[e]; nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path remains
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := t; v != s; {
			e := prevEdge[v]
			if f.capa[e] < push {
				push = f.capa[e]
			}
			v = f.to[e^1]
		}
		for v := t; v != s; {
			e := prevEdge[v]
			f.capa[e] -= push
			f.capa[e^1] += push
			v = f.to[e^1]
		}
		flow += push
		total += dist[t] * float64(push)
	}
	return flow, total
}
