package flow

import (
	"math"
	"testing"
)

func TestSimplePath(t *testing.T) {
	f := NewMinCostFlow(3)
	e0 := f.AddEdge(0, 1, 3, 1)
	e1 := f.AddEdge(1, 2, 3, 2)
	if e0 != 0 || e1 != 2 {
		t.Fatalf("edge ids %d, %d — forward edges must sit at even slots", e0, e1)
	}
	if f.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", f.NumEdges())
	}
	flow, cost := f.Run(0, 2, 10)
	if flow != 3 || math.Abs(cost-9) > 1e-9 {
		t.Errorf("flow=%d cost=%v, want 3, 9", flow, cost)
	}
	if f.Residual(e0) != 0 || f.Residual(e1) != 0 {
		t.Errorf("residuals %d, %d after saturation", f.Residual(e0), f.Residual(e1))
	}
}

func TestPrefersCheapPathAndReportsResiduals(t *testing.T) {
	// Two parallel 0→1 edges; the cheap one has capacity 1.
	f := NewMinCostFlow(2)
	cheap := f.AddEdge(0, 1, 1, 1)
	dear := f.AddEdge(0, 1, 5, 10)
	flow, cost := f.Run(0, 1, 3)
	if flow != 3 || math.Abs(cost-21) > 1e-9 {
		t.Errorf("flow=%d cost=%v, want 3, 21 (1 + 2×10)", flow, cost)
	}
	if f.Residual(cheap) != 0 {
		t.Errorf("cheap edge residual %d, want 0", f.Residual(cheap))
	}
	if f.Residual(dear) != 3 {
		t.Errorf("dear edge residual %d, want 3", f.Residual(dear))
	}
}

func TestDisconnectedSinkStopsEarly(t *testing.T) {
	f := NewMinCostFlow(3)
	f.AddEdge(0, 1, 4, 1)
	flow, cost := f.Run(0, 2, 4)
	if flow != 0 || cost != 0 {
		t.Errorf("flow=%d cost=%v on a disconnected sink", flow, cost)
	}
}
