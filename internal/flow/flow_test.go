package flow

import (
	"math"
	"testing"
)

func mustEdge(t *testing.T, f *MinCostFlow, u, v, capacity int, cost float64) int {
	t.Helper()
	e, err := f.AddEdge(u, v, capacity, cost)
	if err != nil {
		t.Fatalf("AddEdge(%d, %d, %d, %v): %v", u, v, capacity, cost, err)
	}
	return e
}

func TestSimplePath(t *testing.T) {
	f := NewMinCostFlow(3)
	e0 := mustEdge(t, f, 0, 1, 3, 1)
	e1 := mustEdge(t, f, 1, 2, 3, 2)
	if e0 != 0 || e1 != 2 {
		t.Fatalf("edge ids %d, %d — forward edges must sit at even slots", e0, e1)
	}
	if f.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", f.NumEdges())
	}
	flow, cost := f.Run(0, 2, 10)
	if flow != 3 || math.Abs(cost-9) > 1e-9 {
		t.Errorf("flow=%d cost=%v, want 3, 9", flow, cost)
	}
	if f.Residual(e0) != 0 || f.Residual(e1) != 0 {
		t.Errorf("residuals %d, %d after saturation", f.Residual(e0), f.Residual(e1))
	}
}

func TestPrefersCheapPathAndReportsResiduals(t *testing.T) {
	// Two parallel 0→1 edges; the cheap one has capacity 1.
	f := NewMinCostFlow(2)
	cheap := mustEdge(t, f, 0, 1, 1, 1)
	dear := mustEdge(t, f, 0, 1, 5, 10)
	flow, cost := f.Run(0, 1, 3)
	if flow != 3 || math.Abs(cost-21) > 1e-9 {
		t.Errorf("flow=%d cost=%v, want 3, 21 (1 + 2×10)", flow, cost)
	}
	if f.Residual(cheap) != 0 {
		t.Errorf("cheap edge residual %d, want 0", f.Residual(cheap))
	}
	if f.Residual(dear) != 3 {
		t.Errorf("dear edge residual %d, want 3", f.Residual(dear))
	}
}

func TestDisconnectedSinkStopsEarly(t *testing.T) {
	f := NewMinCostFlow(3)
	mustEdge(t, f, 0, 1, 4, 1)
	flow, cost := f.Run(0, 2, 4)
	if flow != 0 || cost != 0 {
		t.Errorf("flow=%d cost=%v on a disconnected sink", flow, cost)
	}
}

func TestAddEdgeRejectsBadInput(t *testing.T) {
	f := NewMinCostFlow(2)
	cases := []struct {
		name    string
		u, v, c int
		cost    float64
	}{
		{"negative capacity", 0, 1, -1, 0},
		{"nan cost", 0, 1, 1, math.NaN()},
		{"+inf cost", 0, 1, 1, math.Inf(1)},
		{"-inf cost", 0, 1, 1, math.Inf(-1)},
		{"u out of range", -1, 1, 1, 0},
		{"v out of range", 0, 2, 1, 0},
	}
	for _, tc := range cases {
		if _, err := f.AddEdge(tc.u, tc.v, tc.c, tc.cost); err == nil {
			t.Errorf("%s: AddEdge accepted (%d, %d, %d, %v)", tc.name, tc.u, tc.v, tc.c, tc.cost)
		}
	}
	if f.NumEdges() != 0 {
		t.Errorf("rejected edges left %d slots behind", f.NumEdges())
	}
	// Negative finite cost stays legal: residual arcs and shortcut edges
	// need it.
	if _, err := f.AddEdge(0, 1, 1, -8); err != nil {
		t.Errorf("negative finite cost rejected: %v", err)
	}
}

func TestResetReusesArena(t *testing.T) {
	f := NewMinCostFlow(3)
	mustEdge(t, f, 0, 1, 3, 1)
	mustEdge(t, f, 1, 2, 3, 2)
	if flow, _ := f.Run(0, 2, 10); flow != 3 {
		t.Fatalf("pre-reset flow %d, want 3", flow)
	}
	f.Reset(2)
	if f.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after Reset", f.NumEdges())
	}
	e := mustEdge(t, f, 0, 1, 2, 5)
	if e != 0 {
		t.Fatalf("first post-reset edge id %d, want 0", e)
	}
	flow, cost := f.Run(0, 1, 10)
	if flow != 2 || math.Abs(cost-10) > 1e-9 {
		t.Errorf("post-reset flow=%d cost=%v, want 2, 10", flow, cost)
	}
}
