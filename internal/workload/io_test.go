package workload

import (
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestCSVRoundTrip(t *testing.T) {
	in, err := Synthetic(SyntheticParams{NumTasks: 40, NumWorkers: 60, Mu: 100, Sigma: 20}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := in.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workers) != 60 || len(back.Tasks) != 40 {
		t.Fatalf("sizes %d/%d", len(back.Workers), len(back.Tasks))
	}
	for i := range in.Workers {
		if in.Workers[i] != back.Workers[i] {
			t.Fatalf("worker %d changed: %v vs %v", i, in.Workers[i], back.Workers[i])
		}
	}
	for i := range in.Tasks {
		if in.Tasks[i] != back.Tasks[i] {
			t.Fatalf("task %d order/position changed", i)
		}
	}
	// All synthetic points fit the standard region, so it is preserved.
	if back.Region != SyntheticRegion {
		t.Errorf("region = %v, want synthetic region", back.Region)
	}
}

func TestReadCSVInfersRegionForForeignData(t *testing.T) {
	csv := "kind,x,y\nworker,-50,0\nworker,500,300\ntask,100,100\n"
	in, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range append(in.Workers, in.Tasks...) {
		if !in.Region.Contains(p) {
			t.Fatalf("inferred region %v excludes %v", in.Region, p)
		}
	}
	if in.Region == SyntheticRegion {
		t.Error("foreign data kept the synthetic region")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty", ""},
		{"bad header", "a,b,c\nworker,1,2\n"},
		{"bad kind", "kind,x,y\ndrone,1,2\n"},
		{"bad x", "kind,x,y\nworker,abc,2\n"},
		{"bad y", "kind,x,y\nworker,1,\n"},
		{"nan", "kind,x,y\nworker,NaN,2\n"},
		{"no agents", "kind,x,y\n"},
		{"wrong fields", "kind,x,y\nworker,1\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.data)); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestWriteCSVDegeneratePoint(t *testing.T) {
	in := &Instance{
		Region:  SyntheticRegion,
		Workers: []geo.Point{geo.Pt(1, 1)},
	}
	var sb strings.Builder
	if err := in.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workers) != 1 || len(back.Tasks) != 0 {
		t.Errorf("sizes %d/%d", len(back.Workers), len(back.Tasks))
	}
}
