// Package workload generates the task/worker location sets used by the
// evaluation: the synthetic Normal(µ, σ) workloads of Table II and a
// synthetic stand-in for the Didi Chuxing Chengdu dataset of Table III.
//
// The real dataset (7M GAIA trip records, November 2016) is proprietary;
// per DESIGN.md the Chengdu generator reproduces its relevant structure —
// a fixed city-wide hotspot mixture sampled over 30 days with 4245–5034
// peak-hour task origins per day in a 10 km × 10 km region — from a fixed
// seed, so "days" are stable across runs like a real dataset would be.
package workload

import (
	"fmt"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// Instance is one POMBM problem instance: worker locations known upfront
// and task locations in arrival order.
type Instance struct {
	Region  geo.Rect
	Workers []geo.Point
	Tasks   []geo.Point
}

// Clone returns a deep copy; the experiment runner shuffles task order per
// repetition without disturbing the base instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Region: in.Region}
	out.Workers = append([]geo.Point(nil), in.Workers...)
	out.Tasks = append([]geo.Point(nil), in.Tasks...)
	return out
}

// ShuffleTasks permutes the task arrival order in place (the random-order
// model of Definition 8).
func (in *Instance) ShuffleTasks(src *rng.Source) {
	rng.PermInPlace(src, in.Tasks)
}

// SyntheticParams mirrors Table II: locations are Normal(µ, σ) per
// coordinate inside a 200 × 200 space.
type SyntheticParams struct {
	NumTasks   int
	NumWorkers int
	Mu         float64
	Sigma      float64
}

// SyntheticRegion is the paper's synthetic space.
var SyntheticRegion = geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))

// Synthetic draws an instance per Table II. Coordinates are clamped to the
// region, matching how a bounded city region would truncate a Normal draw.
func Synthetic(p SyntheticParams, src *rng.Source) (*Instance, error) {
	if p.NumTasks < 0 || p.NumWorkers < 0 {
		return nil, fmt.Errorf("workload: negative sizes (%d tasks, %d workers)", p.NumTasks, p.NumWorkers)
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("workload: negative sigma %v", p.Sigma)
	}
	in := &Instance{Region: SyntheticRegion}
	ws := src.Derive("workers")
	ts := src.Derive("tasks")
	in.Workers = normalPoints(p.NumWorkers, p.Mu, p.Sigma, SyntheticRegion, ws)
	in.Tasks = normalPoints(p.NumTasks, p.Mu, p.Sigma, SyntheticRegion, ts)
	return in, nil
}

func normalPoints(n int, mu, sigma float64, region geo.Rect, src *rng.Source) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = region.Clamp(geo.Pt(src.Normal(mu, sigma), src.Normal(mu, sigma)))
	}
	return pts
}

// Reaches draws per-worker reachable radii uniformly in [lo, hi] for the
// matching-size case study (Sec. IV-C: [10,20] synthetic; 500–1000 m real,
// i.e. [10,20] in the Chengdu generator's 50 m units).
func Reaches(n int, lo, hi float64, src *rng.Source) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Uniform(lo, hi)
	}
	return out
}
