package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/pombm/pombm/internal/geo"
)

// Instance CSV format: a header row, then one row per agent:
//
//	kind,x,y
//	worker,12.5,80.25
//	task,100.0,99.5
//
// Tasks appear in arrival order. This lets deployments bring their own
// data to the pipelines and the bench harness (cmd/pombm-gen converts the
// built-in generators to files and back).

// WriteCSV serialises the instance.
func (in *Instance) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "x", "y"}); err != nil {
		return err
	}
	write := func(kind string, pts []geo.Point) error {
		for _, p := range pts {
			err := cw.Write([]string{
				kind,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("worker", in.Workers); err != nil {
		return err
	}
	if err := write("task", in.Tasks); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses an instance. The region is inferred as the bounding box of
// all agents expanded by 5% (so boundary agents do not sit exactly on the
// region edge), unless every point fits the standard synthetic region, in
// which case that region is kept for comparability.
func ReadCSV(r io.Reader) (*Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	if header[0] != "kind" || header[1] != "x" || header[2] != "y" {
		return nil, fmt.Errorf("workload: unexpected header %v", header)
	}
	in := &Instance{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad x %q", line, rec[1])
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad y %q", line, rec[2])
		}
		p := geo.Pt(x, y)
		if !p.IsFinite() {
			return nil, fmt.Errorf("workload: line %d: non-finite point", line)
		}
		switch rec[0] {
		case "worker":
			in.Workers = append(in.Workers, p)
		case "task":
			in.Tasks = append(in.Tasks, p)
		default:
			return nil, fmt.Errorf("workload: line %d: unknown kind %q", line, rec[0])
		}
	}
	if len(in.Workers) == 0 && len(in.Tasks) == 0 {
		return nil, fmt.Errorf("workload: file contains no agents")
	}
	in.Region = inferRegion(append(append([]geo.Point{}, in.Workers...), in.Tasks...))
	return in, nil
}

func inferRegion(pts []geo.Point) geo.Rect {
	std := SyntheticRegion
	allInside := true
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts {
		if !std.Contains(p) {
			allInside = false
		}
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if allInside {
		return std
	}
	padX := (maxX - minX) * 0.05
	padY := (maxY - minY) * 0.05
	if padX == 0 {
		padX = 1
	}
	if padY == 0 {
		padY = 1
	}
	return geo.NewRect(geo.Pt(minX-padX, minY-padY), geo.Pt(maxX+padX, maxY+padY))
}
