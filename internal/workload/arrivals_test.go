package workload

import (
	"math"
	"reflect"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestPoissonTimesSortedAndBounded(t *testing.T) {
	src := rng.New(7).Derive("poisson")
	times := PoissonTimes(3.0, 100, src)
	if len(times) == 0 {
		t.Fatal("expected events at rate 3 over 100 time units")
	}
	for i, x := range times {
		if x < 0 || x >= 100 {
			t.Fatalf("time %d = %v outside [0, 100)", i, x)
		}
		if i > 0 && x < times[i-1] {
			t.Fatalf("times not sorted at %d: %v < %v", i, x, times[i-1])
		}
	}
	// Mean count is rate·duration = 300; a 4σ band is ±70.
	if n := len(times); n < 230 || n > 370 {
		t.Errorf("count %d far from expectation 300", n)
	}
}

func TestPoissonTimesDegenerate(t *testing.T) {
	src := rng.New(1)
	if got := PoissonTimes(0, 10, src); got != nil {
		t.Errorf("rate 0: got %v, want nil", got)
	}
	if got := PoissonTimes(2, 0, src); got != nil {
		t.Errorf("duration 0: got %v, want nil", got)
	}
}

func TestPoissonTimesDeterministic(t *testing.T) {
	a := PoissonTimes(5, 50, rng.New(42).Derive("p"))
	b := PoissonTimes(5, 50, rng.New(42).Derive("p"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different Poisson streams")
	}
}

func TestRateProfileTimes(t *testing.T) {
	p := RateProfile{{Until: 10, Rate: 1}, {Until: 20, Rate: 50}, {Until: 30, Rate: 1}}
	if d := p.Duration(); d != 30 {
		t.Fatalf("Duration = %v, want 30", d)
	}
	times, err := p.Times(rng.New(3).Derive("profile"))
	if err != nil {
		t.Fatal(err)
	}
	var mid int
	for i, x := range times {
		if x < 0 || x >= 30 {
			t.Fatalf("time %v outside [0, 30)", x)
		}
		if i > 0 && x < times[i-1] {
			t.Fatalf("times not sorted at %d", i)
		}
		if x >= 10 && x < 20 {
			mid++
		}
	}
	// The burst segment holds ~500 of the ~520 expected events.
	if mid < 350 {
		t.Errorf("burst segment got %d events, expected ≈500", mid)
	}
	if outside := len(times) - mid; outside > 60 {
		t.Errorf("quiet segments got %d events, expected ≈20", outside)
	}
}

func TestRateProfileRejectsBadSegments(t *testing.T) {
	if _, err := (RateProfile{{Until: 5, Rate: 1}, {Until: 5, Rate: 2}}).Times(rng.New(1)); err == nil {
		t.Error("non-increasing Until accepted")
	}
	if _, err := (RateProfile{{Until: 5, Rate: -1}}).Times(rng.New(1)); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestConstantProfile(t *testing.T) {
	p := Constant(2, 15)
	if len(p) != 1 || p[0].Until != 15 || p[0].Rate != 2 {
		t.Fatalf("Constant(2, 15) = %+v", p)
	}
}

func TestSamplersStayInRegion(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))
	samplers := map[string]PointSampler{
		"uniform": UniformSampler(region),
		"normal":  NormalSampler(100, 60, region),
		"chengdu": ChengduSampler(0.2),
	}
	for name, sample := range samplers {
		src := rng.New(9).Derive(name)
		for i := 0; i < 2000; i++ {
			p := sample(src)
			if p.X < region.MinX || p.X > region.MaxX || p.Y < region.MinY || p.Y > region.MaxY {
				t.Fatalf("%s: point %v outside region", name, p)
			}
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				t.Fatalf("%s: NaN point", name)
			}
		}
	}
}

func TestChengduSamplerMatchesBatchStructure(t *testing.T) {
	// The sampler and the batch generator share the fixed city mixture, so
	// their samples concentrate in the same places: compare hotspot-cell
	// occupancy coarsely.
	sample := ChengduSampler(0.12)
	src := rng.New(11).Derive("cmp")
	var nearCentre int
	const n = 4000
	for i := 0; i < n; i++ {
		p := sample(src)
		if math.Hypot(p.X-100, p.Y-100) < 80 {
			nearCentre++
		}
	}
	// Hotspots concentrate towards the centre; well over half the mass
	// lands within 80 units of it (uniform would put ~44% there).
	if frac := float64(nearCentre) / n; frac < 0.55 {
		t.Errorf("central mass %.2f, want > 0.55", frac)
	}
}
