package workload

import (
	"fmt"
	"sort"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// Temporal structure for online scenarios. The paper's evaluation feeds
// each matcher a pre-drawn task sequence in shuffled order; the event
// simulator (internal/sim) instead needs arrival *times* — Poisson streams,
// rush-hour double peaks, flash-crowd spikes — and per-arrival locations
// drawn on demand. Both pieces live here so every generator that defines a
// workload stays in this package.

// PoissonTimes draws the event times of a homogeneous Poisson process with
// the given rate (events per unit time) on [0, duration), in increasing
// order. A non-positive rate or duration yields no events.
func PoissonTimes(rate, duration float64, src *rng.Source) []float64 {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	var times []float64
	t := src.Exponential(rate)
	for t < duration {
		times = append(times, t)
		t += src.Exponential(rate)
	}
	return times
}

// RateSegment is one piece of a piecewise-constant arrival-rate profile:
// the process runs at Rate events per unit time until time Until.
type RateSegment struct {
	Until float64
	Rate  float64
}

// RateProfile is a piecewise-constant intensity function for an
// inhomogeneous Poisson process. Segments must have strictly increasing
// Until bounds; the profile ends at the last segment's Until.
type RateProfile []RateSegment

// Duration returns the profile's end time (0 for an empty profile).
func (p RateProfile) Duration() float64 {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1].Until
}

// Times draws the arrival times of the inhomogeneous Poisson process with
// this intensity, in increasing order. Each constant-rate segment is an
// independent homogeneous process on its own interval, which is exactly
// the superposition a piecewise-constant intensity defines.
func (p RateProfile) Times(src *rng.Source) ([]float64, error) {
	var times []float64
	start := 0.0
	for i, seg := range p {
		if seg.Until <= start {
			return nil, fmt.Errorf("workload: rate segment %d ends at %v, not after %v", i, seg.Until, start)
		}
		if seg.Rate < 0 {
			return nil, fmt.Errorf("workload: rate segment %d has negative rate %v", i, seg.Rate)
		}
		for _, t := range PoissonTimes(seg.Rate, seg.Until-start, src) {
			times = append(times, start+t)
		}
		start = seg.Until
	}
	// Per-segment generation already yields sorted times; keep the
	// guarantee explicit against future segment reordering.
	sort.Float64s(times)
	return times, nil
}

// Constant returns the profile of a homogeneous process: one segment at
// the given rate for the whole duration.
func Constant(rate, duration float64) RateProfile {
	return RateProfile{{Until: duration, Rate: rate}}
}

// A PointSampler draws one location per call. The simulator uses one
// sampler per population (workers, tasks) so spatial structure and
// temporal structure compose freely.
type PointSampler func(src *rng.Source) geo.Point

// UniformSampler draws points uniformly over the region.
func UniformSampler(region geo.Rect) PointSampler {
	return func(src *rng.Source) geo.Point {
		return geo.Pt(
			src.Uniform(region.MinX, region.MaxX),
			src.Uniform(region.MinY, region.MaxY),
		)
	}
}

// NormalSampler draws Normal(µ, σ) points per coordinate, clamped to the
// region — the per-point form of the Table II synthetic generator.
func NormalSampler(mu, sigma float64, region geo.Rect) PointSampler {
	return func(src *rng.Source) geo.Point {
		return region.Clamp(geo.Pt(src.Normal(mu, sigma), src.Normal(mu, sigma)))
	}
}

// ChengduSampler draws points from the fixed Chengdu hotspot mixture with
// the given uniform-background fraction (tasks use ≈0.12, cruising workers
// ≈0.25, matching the batch generator in chengdu.go).
func ChengduSampler(background float64) PointSampler {
	city := chengduCity()
	weights := make([]float64, len(city))
	for i, h := range city {
		weights[i] = h.weight
	}
	return func(src *rng.Source) geo.Point {
		if src.Float64() < background {
			return geo.Pt(
				src.Uniform(ChengduRegion.MinX, ChengduRegion.MaxX),
				src.Uniform(ChengduRegion.MinY, ChengduRegion.MaxY),
			)
		}
		h := city[src.WeightedIndex(weights)]
		return ChengduRegion.Clamp(geo.Pt(
			src.Normal(h.center.X, h.sigma),
			src.Normal(h.center.Y, h.sigma),
		))
	}
}
