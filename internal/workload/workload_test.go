package workload

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestSyntheticValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Synthetic(SyntheticParams{NumTasks: -1}, src); err == nil {
		t.Error("negative tasks accepted")
	}
	if _, err := Synthetic(SyntheticParams{Sigma: -2}, src); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestSyntheticShapeAndBounds(t *testing.T) {
	src := rng.New(7)
	p := SyntheticParams{NumTasks: 500, NumWorkers: 800, Mu: 100, Sigma: 20}
	in, err := Synthetic(p, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 500 || len(in.Workers) != 800 {
		t.Fatalf("sizes %d/%d", len(in.Tasks), len(in.Workers))
	}
	for _, pt := range append(append([]geo.Point{}, in.Tasks...), in.Workers...) {
		if !in.Region.Contains(pt) {
			t.Fatalf("point %v outside region", pt)
		}
	}
	// Sample mean near µ (σ/√n tolerance with slack for clamping).
	var sx, sy float64
	for _, pt := range in.Workers {
		sx += pt.X
		sy += pt.Y
	}
	n := float64(len(in.Workers))
	if math.Abs(sx/n-100) > 3 || math.Abs(sy/n-100) > 3 {
		t.Errorf("worker mean (%v, %v), want ≈(100,100)", sx/n, sy/n)
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	p := DefaultSynthetic()
	p.NumTasks, p.NumWorkers = 50, 60
	a, err := Synthetic(p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatal("same seed produced different tasks")
		}
	}
	c, err := Synthetic(p, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Tasks {
		if a.Tasks[i] == c.Tasks[i] {
			same++
		}
	}
	if same == len(a.Tasks) {
		t.Error("different seeds produced identical tasks")
	}
}

func TestCloneAndShuffle(t *testing.T) {
	src := rng.New(3)
	in, err := Synthetic(SyntheticParams{NumTasks: 100, NumWorkers: 10, Mu: 100, Sigma: 20}, src)
	if err != nil {
		t.Fatal(err)
	}
	cp := in.Clone()
	cp.ShuffleTasks(src.Derive("shuffle"))
	// Same multiset, different order (overwhelmingly likely).
	count := map[geo.Point]int{}
	for _, p := range in.Tasks {
		count[p]++
	}
	for _, p := range cp.Tasks {
		count[p]--
	}
	for _, c := range count {
		if c != 0 {
			t.Fatal("shuffle changed the task multiset")
		}
	}
	same := true
	for i := range in.Tasks {
		if in.Tasks[i] != cp.Tasks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("shuffle left order unchanged")
	}
	if &in.Tasks[0] == &cp.Tasks[0] {
		t.Error("Clone shares backing array")
	}
}

func TestChengduValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Chengdu(ChengduParams{Day: 0, NumWorkers: 10}, src); err == nil {
		t.Error("day 0 accepted")
	}
	if _, err := Chengdu(ChengduParams{Day: 31, NumWorkers: 10}, src); err == nil {
		t.Error("day 31 accepted")
	}
	if _, err := Chengdu(ChengduParams{Day: 1, NumWorkers: -5}, src); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestChengduDayStability(t *testing.T) {
	// Tasks for a given day are a fixed dataset: independent of the
	// caller's source and identical across calls.
	a, err := Chengdu(ChengduParams{Day: 7, NumWorkers: 100}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chengdu(ChengduParams{Day: 7, NumWorkers: 100}, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatal("day tasks depend on caller source")
		}
	}
	// Different days differ.
	c, err := Chengdu(ChengduParams{Day: 8, NumWorkers: 100}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) == len(c.Tasks) {
		same := true
		for i := range a.Tasks {
			if a.Tasks[i] != c.Tasks[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("two days produced identical tasks")
		}
	}
}

func TestChengduTaskCountsInRange(t *testing.T) {
	src := rng.New(5)
	for day := 1; day <= ChengduDays; day++ {
		in, err := Chengdu(ChengduParams{Day: day, NumWorkers: 10}, src)
		if err != nil {
			t.Fatal(err)
		}
		n := len(in.Tasks)
		if n < ChengduTaskRange[0] || n > ChengduTaskRange[1] {
			t.Errorf("day %d: %d tasks outside %v", day, n, ChengduTaskRange)
		}
		for _, p := range in.Tasks {
			if !ChengduRegion.Contains(p) {
				t.Fatalf("day %d: task %v outside region", day, p)
			}
		}
	}
}

func TestChengduIsClustered(t *testing.T) {
	// The hotspot mixture must produce visibly non-uniform density:
	// compare quadrant counts against a uniform draw.
	in, err := Chengdu(ChengduParams{Day: 3, NumWorkers: 0}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	q := geo.NewQuadtree(ChengduRegion, 64, 8)
	for _, p := range in.Tasks {
		q.Insert(p)
	}
	// Max 25-unit cell count must far exceed the uniform expectation.
	var max int
	for x := 0.0; x < 200; x += 25 {
		for y := 0.0; y < 200; y += 25 {
			c := q.CountIn(geo.NewRect(geo.Pt(x, y), geo.Pt(x+25, y+25)))
			if c > max {
				max = c
			}
		}
	}
	uniform := float64(len(in.Tasks)) / 64
	if float64(max) < 2.5*uniform {
		t.Errorf("max cell %d vs uniform %v: not clustered", max, uniform)
	}
}

func TestReaches(t *testing.T) {
	src := rng.New(9)
	rs := Reaches(1000, 10, 20, src)
	if len(rs) != 1000 {
		t.Fatalf("len = %d", len(rs))
	}
	for _, r := range rs {
		if r < 10 || r >= 20 {
			t.Fatalf("reach %v outside [10,20)", r)
		}
	}
}

func TestParamTablesMatchPaper(t *testing.T) {
	if len(SyntheticTaskCounts) != 5 || SyntheticTaskCounts[0] != 1000 || SyntheticTaskCounts[4] != 5000 {
		t.Error("Table II task counts wrong")
	}
	if len(Epsilons) != 5 || Epsilons[0] != 0.2 || Epsilons[4] != 1.0 {
		t.Error("epsilon sweep wrong")
	}
	if len(ScalabilitySizes) != 5 || ScalabilitySizes[4] != 100000 {
		t.Error("scalability sweep wrong")
	}
	if len(RealWorkerCounts) != 5 || RealWorkerCounts[0] != 6000 {
		t.Error("Table III worker counts wrong")
	}
	d := DefaultSynthetic()
	if d.NumTasks != 3000 || d.NumWorkers != 5000 || d.Mu != 100 || d.Sigma != 20 {
		t.Error("defaults drifted from DESIGN.md")
	}
}
