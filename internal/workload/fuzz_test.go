package workload

import (
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the parser and that
// anything it accepts round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("kind,x,y\nworker,1,2\ntask,3,4\n")
	f.Add("kind,x,y\n")
	f.Add("garbage")
	f.Add("kind,x,y\nworker,1e308,-1e308\n")
	f.Fuzz(func(t *testing.T, data string) {
		in, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var sb strings.Builder
		if err := in.WriteCSV(&sb); err != nil {
			t.Fatalf("WriteCSV after successful read: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back.Workers) != len(in.Workers) || len(back.Tasks) != len(in.Tasks) {
			t.Fatalf("round trip changed sizes")
		}
		for i := range in.Workers {
			if in.Workers[i] != back.Workers[i] {
				t.Fatalf("worker %d changed", i)
			}
		}
		for i := range in.Tasks {
			if in.Tasks[i] != back.Tasks[i] {
				t.Fatalf("task %d changed", i)
			}
		}
	})
}
