package workload

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// ChengduRegion is the 10 km × 10 km study region in units of 50 m
// (200 × 200 units), chosen so the paper's real-data reachable radii of
// 500–1000 m land on the same [10, 20] scale as the synthetic ones and the
// privacy budgets ε ∈ [0.2, 1] produce noise comparable to worker spacing.
var ChengduRegion = geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))

// ChengduDays is the number of days in the generated "dataset"
// (November 2016 in the original).
const ChengduDays = 30

// chengduSeed fixes the city structure: hotspots play the role of the real
// city's business districts and stay identical across days and runs.
const chengduSeed = 0xC43D

// chengduHotspot is one persistent demand centre.
type chengduHotspot struct {
	center geo.Point
	sigma  float64
	weight float64
}

// chengduCity lazily builds the fixed hotspot mixture.
func chengduCity() []chengduHotspot {
	src := rng.New(chengduSeed).Derive("city")
	const n = 14
	hs := make([]chengduHotspot, n)
	for i := range hs {
		// Hotspots concentrate towards the centre like CBDs do; weights
		// follow a heavy-ish tail so a few districts dominate demand.
		hs[i] = chengduHotspot{
			center: ChengduRegion.Clamp(geo.Pt(src.Normal(100, 45), src.Normal(100, 45))),
			sigma:  src.Uniform(6, 18),
			weight: math.Exp(src.Normal(0, 0.8)),
		}
	}
	return hs
}

// ChengduParams selects one generated day and a worker-fleet size.
type ChengduParams struct {
	Day        int // 1-based, 1..ChengduDays
	NumWorkers int
}

// ChengduTaskRange bounds the per-day peak-hour task counts (Table III:
// 4245 to 5034 tasks per day).
var ChengduTaskRange = [2]int{4245, 5034}

// Chengdu generates the instance for one day. Task counts and locations
// depend only on the day (the "dataset" is fixed); worker locations depend
// on the day and the supplied source, since the paper's real data has no
// workers and varies |W| synthetically.
func Chengdu(p ChengduParams, src *rng.Source) (*Instance, error) {
	if p.Day < 1 || p.Day > ChengduDays {
		return nil, fmt.Errorf("workload: day %d outside 1..%d", p.Day, ChengduDays)
	}
	if p.NumWorkers < 0 {
		return nil, fmt.Errorf("workload: negative worker count %d", p.NumWorkers)
	}
	city := chengduCity()
	daySrc := rng.New(chengduSeed).DeriveN("day", p.Day)

	lo, hi := ChengduTaskRange[0], ChengduTaskRange[1]
	numTasks := lo + daySrc.Intn(hi-lo+1)

	in := &Instance{Region: ChengduRegion}
	in.Tasks = chengduPoints(numTasks, city, 0.12, daySrc.Derive("tasks"))
	// Workers spread slightly wider than demand (drivers cruise between
	// hotspots), with a higher uniform background share.
	in.Workers = chengduPoints(p.NumWorkers, city, 0.25, src.Derive("chengdu-workers"))
	return in, nil
}

// chengduPoints draws n points from the hotspot mixture with the given
// uniform-background fraction.
func chengduPoints(n int, city []chengduHotspot, background float64, src *rng.Source) []geo.Point {
	weights := make([]float64, len(city))
	for i, h := range city {
		weights[i] = h.weight
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		if src.Float64() < background {
			pts[i] = geo.Pt(
				src.Uniform(ChengduRegion.MinX, ChengduRegion.MaxX),
				src.Uniform(ChengduRegion.MinY, ChengduRegion.MaxY),
			)
			continue
		}
		h := city[src.WeightedIndex(weights)]
		pts[i] = ChengduRegion.Clamp(geo.Pt(
			src.Normal(h.center.X, h.sigma),
			src.Normal(h.center.Y, h.sigma),
		))
	}
	return pts
}
