package workload

// Parameter sweeps from Tables II and III. Bold (default) entries are not
// recoverable from the paper text, so defaults are the middle value of each
// sweep, as documented in DESIGN.md §3.

// Table II — synthetic data.
var (
	SyntheticTaskCounts   = []int{1000, 2000, 3000, 4000, 5000}
	SyntheticWorkerCounts = []int{3000, 4000, 5000, 6000, 7000}
	SyntheticMus          = []float64{50, 75, 100, 125, 150}
	SyntheticSigmas       = []float64{10, 15, 20, 25, 30}
	Epsilons              = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	ScalabilitySizes      = []int{20000, 40000, 60000, 80000, 100000}
)

// Defaults for synthetic sweeps.
const (
	DefaultNumTasks   = 3000
	DefaultNumWorkers = 5000
	DefaultMu         = 100.0
	DefaultSigma      = 20.0
	DefaultEpsilon    = 0.6
)

// Table III — real (Chengdu) data.
var RealWorkerCounts = []int{6000, 7000, 8000, 9000, 10000}

// DefaultRealNumWorkers is the middle of the Table III sweep.
const DefaultRealNumWorkers = 8000

// Reachable-radius ranges for the matching-size case study (Sec. IV-C).
// Real-data radii of 500–1000 m equal 10–20 units of the 50 m Chengdu grid.
var (
	SyntheticReach = [2]float64{10, 20}
	RealReach      = [2]float64{10, 20}
)

// DefaultSynthetic returns the default Table II parameter point.
func DefaultSynthetic() SyntheticParams {
	return SyntheticParams{
		NumTasks:   DefaultNumTasks,
		NumWorkers: DefaultNumWorkers,
		Mu:         DefaultMu,
		Sigma:      DefaultSigma,
	}
}
