package hst

import (
	"encoding/json"
	"fmt"

	"github.com/pombm/pombm/internal/geo"
)

// Published is the wire form of an HST: exactly the information the server
// publishes to workers and tasks (Sec. III-A step 1). Clients need the
// predefined points (to snap their location), each point's leaf code, and
// the completion parameters (D, c) that drive the obfuscation mechanism;
// the internal cluster structure stays on the server.
type Published struct {
	Depth  int         `json:"depth"`
	Degree int         `json:"degree"`
	Beta   float64     `json:"beta"`
	Scale  float64     `json:"scale"`
	Points []geo.Point `json:"points"`
	Codes  [][]byte    `json:"codes"` // Codes[i] is the leaf code of Points[i]
}

// Publish returns the wire form of the tree.
func (t *Tree) Publish() *Published {
	codes := make([][]byte, len(t.codes))
	for i, c := range t.codes {
		codes[i] = []byte(c)
	}
	return &Published{
		Depth:  t.depth,
		Degree: t.degree,
		Beta:   t.beta,
		Scale:  t.scale,
		Points: t.pts,
		Codes:  codes,
	}
}

// Tree reconstructs a Tree from its published form. The reconstructed tree
// has no cluster structure (Root returns nil) but supports every code
// operation, the privacy mechanism, and matching.
func (p *Published) Tree() (*Tree, error) {
	if p.Depth < 1 {
		return nil, fmt.Errorf("hst: published depth %d invalid", p.Depth)
	}
	if p.Degree < 1 || p.Degree > 255 {
		return nil, fmt.Errorf("hst: published degree %d invalid", p.Degree)
	}
	if len(p.Points) == 0 {
		return nil, ErrNoPoints
	}
	if len(p.Codes) != len(p.Points) {
		return nil, fmt.Errorf("hst: %d codes for %d points", len(p.Codes), len(p.Points))
	}
	t := &Tree{
		pts:    p.Points,
		beta:   p.Beta,
		scale:  p.Scale,
		depth:  p.Depth,
		degree: p.Degree,
		codes:  make([]Code, len(p.Codes)),
		byCode: make(map[Code]int, len(p.Codes)),
	}
	for i, raw := range p.Codes {
		c := Code(raw)
		if !t.validCode(c) {
			return nil, fmt.Errorf("hst: published code %d malformed", i)
		}
		if prev, dup := t.byCode[c]; dup {
			return nil, fmt.Errorf("hst: published codes %d and %d collide", prev, i)
		}
		t.codes[i] = c
		t.byCode[c] = i
	}
	return t, nil
}

// MarshalJSON serialises the tree in its published form.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Publish())
}

// UnmarshalJSON reconstructs a tree from its published form.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var p Published
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	nt, err := p.Tree()
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}
