package hst

import (
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

func mkCode(digits ...byte) Code { return Code(digits) }

func TestLeafIndexBasics(t *testing.T) {
	x := NewLeafIndex(3)
	if x.Len() != 0 {
		t.Fatalf("Len = %d", x.Len())
	}
	if _, _, ok := x.Nearest(mkCode(0, 0, 0)); ok {
		t.Error("Nearest on empty index returned ok")
	}
	if err := x.Insert(mkCode(0, 1), 7); err == nil {
		t.Error("short code accepted")
	}
	if err := x.Insert(mkCode(0, 1, 2), 7); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
	id, lvl, ok := x.Nearest(mkCode(0, 1, 2))
	if !ok || id != 7 || lvl != 0 {
		t.Errorf("exact Nearest = (%d,%d,%v)", id, lvl, ok)
	}
	// Diverge at the last digit: LCA level 1.
	_, lvl, _ = x.Nearest(mkCode(0, 1, 0))
	if lvl != 1 {
		t.Errorf("lvl = %d, want 1", lvl)
	}
	// Diverge at the first digit: LCA level 3.
	_, lvl, _ = x.Nearest(mkCode(2, 1, 2))
	if lvl != 3 {
		t.Errorf("lvl = %d, want 3", lvl)
	}
}

func TestLeafIndexRemove(t *testing.T) {
	x := NewLeafIndex(2)
	x.Insert(mkCode(0, 0), 1)
	x.Insert(mkCode(0, 0), 2) // same leaf, second item
	x.Insert(mkCode(1, 1), 3)
	if !x.Remove(mkCode(0, 0), 1) {
		t.Error("Remove existing failed")
	}
	if x.Remove(mkCode(0, 0), 1) {
		t.Error("Remove twice succeeded")
	}
	if x.Remove(mkCode(0, 1), 2) {
		t.Error("Remove at wrong code succeeded")
	}
	if x.Len() != 2 {
		t.Errorf("Len = %d", x.Len())
	}
	id, lvl, ok := x.Nearest(mkCode(0, 0))
	if !ok || id != 2 || lvl != 0 {
		t.Errorf("Nearest after removal = (%d,%d,%v)", id, lvl, ok)
	}
	x.Remove(mkCode(0, 0), 2)
	id, lvl, ok = x.Nearest(mkCode(0, 0))
	if !ok || id != 3 || lvl != 2 {
		t.Errorf("Nearest after clearing leaf = (%d,%d,%v)", id, lvl, ok)
	}
}

func TestLeafIndexNearestMatchesBruteForce(t *testing.T) {
	// The trie must return an item at the minimal LCA level; compare the
	// level (not the id: ties are arbitrary) with a linear scan.
	src := rng.New(42)
	const depth = 6
	const degree = 4
	randCode := func(s *rng.Source) Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(s.Intn(degree))
		}
		return Code(b)
	}
	for trial := 0; trial < 30; trial++ {
		s := src.DeriveN("trial", trial)
		x := NewLeafIndex(depth)
		type item struct {
			code Code
			id   int
		}
		var items []item
		n := 1 + s.Intn(200)
		for i := 0; i < n; i++ {
			c := randCode(s)
			items = append(items, item{c, i})
			x.Insert(c, i)
		}
		lca := func(a, b Code) int {
			for j := 0; j < depth; j++ {
				if a[j] != b[j] {
					return depth - j
				}
			}
			return 0
		}
		for q := 0; q < 100; q++ {
			query := randCode(s)
			id, lvl, ok := x.Nearest(query)
			if !ok {
				t.Fatal("Nearest returned !ok on non-empty index")
			}
			best := depth + 1
			bestID := -1
			for _, it := range items {
				l := lca(query, it.code)
				if l < best || (l == best && it.id < bestID) {
					best = l
					bestID = it.id
				}
			}
			if lvl != best {
				t.Fatalf("trial %d: Nearest level %d, brute %d", trial, lvl, best)
			}
			// Ties resolve deterministically to the lowest id.
			if id != bestID {
				t.Fatalf("returned id %d, brute lowest-id %d at level %d", id, bestID, lvl)
			}
		}
	}
}

func TestLeafIndexPopNearestMatchesNearest(t *testing.T) {
	// PopNearest must return exactly what Nearest would, and remove it.
	src := rng.New(99)
	const depth = 6
	const degree = 4
	randCode := func(s *rng.Source) Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(s.Intn(degree))
		}
		return Code(b)
	}
	for trial := 0; trial < 20; trial++ {
		s := src.DeriveN("trial", trial)
		x := NewLeafIndex(depth)
		y := NewLeafIndex(depth)
		codes := map[int]Code{}
		n := 1 + s.Intn(150)
		for i := 0; i < n; i++ {
			c := randCode(s)
			codes[i] = c
			x.Insert(c, i)
			y.Insert(c, i)
		}
		for x.Len() > 0 {
			query := randCode(s)
			wantID, wantLvl, _ := y.Nearest(query)
			id, lvl, ok := x.PopNearest(query)
			if !ok || id != wantID || lvl != wantLvl {
				t.Fatalf("trial %d: PopNearest = (%d,%d,%v), Nearest = (%d,%d)",
					trial, id, lvl, ok, wantID, wantLvl)
			}
			if !y.Remove(codes[id], id) {
				t.Fatalf("trial %d: mirror removal of %d failed", trial, id)
			}
			if x.Len() != y.Len() {
				t.Fatalf("trial %d: Len diverged %d vs %d", trial, x.Len(), y.Len())
			}
		}
		if _, _, ok := x.PopNearest(randCode(s)); ok {
			t.Fatal("PopNearest on empty index returned ok")
		}
	}
}

func TestLeafIndexPopNearestWithin(t *testing.T) {
	x := NewLeafIndex(3)
	x.Insert(mkCode(2, 1, 0), 5)
	// The only item is at LCA level 3 from this query; a cap of 2 must
	// refuse to pop but still report the level.
	if id, lvl, ok := x.PopNearestWithin(mkCode(0, 1, 0), 2); ok {
		t.Errorf("capped pop succeeded: (%d,%d)", id, lvl)
	} else if lvl != 3 {
		t.Errorf("capped pop reported level %d, want 3", lvl)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d after refused pop", x.Len())
	}
	if id, lvl, ok := x.PopNearestWithin(mkCode(2, 1, 1), 1); !ok || id != 5 || lvl != 1 {
		t.Errorf("pop within cap = (%d,%d,%v)", id, lvl, ok)
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d after pop", x.Len())
	}
}

func TestLeafIndexMinIDAndPopMin(t *testing.T) {
	x := NewLeafIndex(2)
	if _, ok := x.MinID(); ok {
		t.Error("MinID on empty index returned ok")
	}
	if _, ok := x.PopMin(); ok {
		t.Error("PopMin on empty index returned ok")
	}
	x.Insert(mkCode(1, 1), 9)
	x.Insert(mkCode(0, 0), 4)
	x.Insert(mkCode(0, 1), 6)
	if id, ok := x.MinID(); !ok || id != 4 {
		t.Errorf("MinID = (%d,%v), want 4", id, ok)
	}
	for _, want := range []int{4, 6, 9} {
		id, ok := x.PopMin()
		if !ok || id != want {
			t.Fatalf("PopMin = (%d,%v), want %d", id, ok, want)
		}
	}
	if x.Len() != 0 {
		t.Errorf("Len = %d after draining", x.Len())
	}
}

func TestLeafIndexCountPrefix(t *testing.T) {
	x := NewLeafIndex(3)
	x.Insert(mkCode(0, 1, 2), 1)
	x.Insert(mkCode(0, 1, 1), 2)
	x.Insert(mkCode(0, 2, 0), 3)
	x.Insert(mkCode(1, 0, 0), 4)
	cases := []struct {
		prefix Code
		want   int
	}{
		{Code(""), 4},
		{mkCode(0), 3},
		{mkCode(0, 1), 2},
		{mkCode(0, 1, 2), 1},
		{mkCode(1), 1},
		{mkCode(2), 0},
		{mkCode(0, 1, 2, 0), 0}, // longer than depth
	}
	for _, c := range cases {
		if got := x.CountPrefix(c.prefix); got != c.want {
			t.Errorf("CountPrefix(%v) = %d, want %d", []byte(c.prefix), got, c.want)
		}
	}
	x.Remove(mkCode(0, 1, 1), 2)
	if got := x.CountPrefix(mkCode(0, 1)); got != 1 {
		t.Errorf("CountPrefix after removal = %d, want 1", got)
	}
}

func TestLeafIndexInterleavedInsertRemove(t *testing.T) {
	src := rng.New(17)
	const depth = 5
	x := NewLeafIndex(depth)
	live := map[int]Code{}
	nextID := 0
	randCode := func() Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(src.Intn(3))
		}
		return Code(b)
	}
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || src.Float64() < 0.55 {
			c := randCode()
			x.Insert(c, nextID)
			live[nextID] = c
			nextID++
		} else {
			// Remove an arbitrary live item.
			for id, c := range live {
				if !x.Remove(c, id) {
					t.Fatalf("failed to remove live item %d", id)
				}
				delete(live, id)
				break
			}
		}
		if x.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", x.Len(), len(live))
		}
	}
	// Every remaining item is reachable via Walk.
	found := map[int]Code{}
	x.Walk(func(c Code, id int) { found[id] = c })
	if len(found) != len(live) {
		t.Fatalf("Walk found %d items, want %d", len(found), len(live))
	}
	for id, c := range live {
		if found[id] != c {
			t.Fatalf("item %d at %v, want %v", id, found[id], c)
		}
	}
}
